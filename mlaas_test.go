package mlaas

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestCorpusFacade(t *testing.T) {
	if got := len(Corpus()); got != 119 {
		t.Fatalf("corpus size %d", got)
	}
	if _, ok := CorpusByName("CIRCLE"); !ok {
		t.Fatal("CIRCLE missing")
	}
	ds := Dataset("LINEAR")
	if ds.N() == 0 || ds.D() != 2 {
		t.Fatalf("LINEAR shape %dx%d", ds.N(), ds.D())
	}
}

func TestDatasetPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dataset("nope")
}

func TestSplitAndRunPipeline(t *testing.T) {
	ds := Dataset("LINEAR")
	split := Split(ds, DefaultSeed)
	if split.Train.N()+split.Test.N() != ds.N() {
		t.Fatal("split loses samples")
	}
	scores, err := RunPipeline(Config{Classifier: "logreg", Params: map[string]any{}}, split, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if scores.F1 < 0.7 {
		t.Fatalf("F1 %.3f", scores.F1)
	}
}

func TestPlatformFacade(t *testing.T) {
	names := Platforms()
	if len(names) != 7 {
		t.Fatalf("platforms %v", names)
	}
	for _, n := range names {
		p, err := Platform(n)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != n {
			t.Fatalf("platform %s reports %s", n, p.Name())
		}
	}
	if _, err := Platform("watson"); err == nil {
		t.Fatal("expected error")
	}
}

func TestBoundaryFacade(t *testing.T) {
	circle, linear := ProbeDatasets(Quick, DefaultSeed)
	if circle.Name != "CIRCLE" || linear.Name != "LINEAR" {
		t.Fatalf("probe names %s/%s", circle.Name, linear.Name)
	}
	google, err := Platform("google")
	if err != nil {
		t.Fatal(err)
	}
	bm, err := ExtractBoundary(google, circle, Config{}, 12, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(bm.Labels) != 144 {
		t.Fatalf("mesh %d", len(bm.Labels))
	}
}

func TestServerClientFacade(t *testing.T) {
	srv := httptest.NewServer(NewServer(func(string, ...any) {}))
	defer srv.Close()
	c := NewClient(srv.URL)
	infos, err := c.Platforms(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 7 {
		t.Fatalf("%d platforms over HTTP", len(infos))
	}
	ds := Dataset("LINEAR")
	split := Split(ds, DefaultSeed)
	scores, err := c.Measure(context.Background(), "bigml", split, Config{Classifier: "logreg", Params: map[string]any{}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if scores.F1 < 0.7 {
		t.Fatalf("F1 %.3f over the wire", scores.F1)
	}
}

func TestSmallSweepFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	opts := DefaultSweepOptions()
	opts.MaxDatasets = 2
	opts.Platforms = []string{"google", "amazon"}
	sw, err := RunSweep(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	rows := sw.Fig4()
	if len(rows) != 2 {
		t.Fatalf("%d fig4 rows", len(rows))
	}
}

func TestCrossValidateFacade(t *testing.T) {
	ds := Dataset("LINEAR")
	scores, err := CrossValidate(Config{Classifier: "logreg", Params: map[string]any{}}, ds, 4, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 4 {
		t.Fatalf("%d folds", len(scores))
	}
}

func TestSelectConfigFacade(t *testing.T) {
	ds := Dataset("CIRCLE")
	lr := Config{Classifier: "logreg", Params: map[string]any{}}
	dt := Config{Classifier: "dtree", Params: map[string]any{}}
	best, f1, err := SelectConfig([]Config{lr, dt}, ds, 3, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if best.Classifier != "dtree" || f1 < 0.5 {
		t.Fatalf("selected %s at %.3f", best.Classifier, f1)
	}
}

func TestExploreFacade(t *testing.T) {
	p, err := Platform("bigml")
	if err != nil {
		t.Fatal(err)
	}
	split := Split(Dataset("CIRCLE"), DefaultSeed)
	res, err := ExploreRandomClassifiers(p, split, 2, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tried) != 2 {
		t.Fatalf("tried %v", res.Tried)
	}
}

func TestWriteFig3Facade(t *testing.T) {
	var buf bytes.Buffer
	WriteFig3(&buf, Quick, DefaultSeed)
	if !strings.Contains(buf.String(), "Figure 3(a)") {
		t.Fatal("fig3 output malformed")
	}
}
