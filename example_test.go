package mlaas_test

import (
	"fmt"

	"mlaasbench"
)

// ExampleRunPipeline trains a decision tree on the CIRCLE probe dataset and
// reports whether it learned the non-linear concept.
func ExampleRunPipeline() {
	ds := mlaas.Dataset("CIRCLE")
	split := mlaas.Split(ds, mlaas.DefaultSeed)
	scores, err := mlaas.RunPipeline(mlaas.Config{
		Classifier: "dtree",
		Params:     map[string]any{"max_depth": 8},
	}, split, mlaas.DefaultSeed)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(scores.F1 > 0.9)
	// Output: true
}

// ExamplePlatform shows that a black-box platform refuses configuration but
// still trains, choosing its classifier internally.
func ExamplePlatform() {
	google, err := mlaas.Platform("google")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	split := mlaas.Split(mlaas.Dataset("CIRCLE"), mlaas.DefaultSeed)
	res, err := google.Run(mlaas.Config{}, split.Train, split.Test, mlaas.DefaultSeed)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.Config.Classifier) // the internal choice stays hidden
	fmt.Println(res.Scores.F1 > 0.9)   // ...but it solved the circle
	// Output:
	// auto
	// true
}

// ExampleCorpus prints the corpus scale.
func ExampleCorpus() {
	fmt.Println(len(mlaas.Corpus()))
	// Output: 119
}
