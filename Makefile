# Standard pre-merge gate: `make check` runs vet, the full test suite, the
# race detector over the concurrency-bearing packages (telemetry, service,
# client, wire, and the parallel sweep engine in core/pipeline/platforms), a
# short loadgen smoke that exercises the serving path end-to-end, a wire
# smoke (binary-vs-JSON equivalence over a live server + decoder fuzz seed
# corpus), a perf-tracking smoke (mlaas-perf run/compare/report against
# perf/results/), a profiling smoke (bundle capture -> list -> diff
# through mlaas-profile, SLO watchdog tests under -race), and a cluster
# smoke (binary predict through the router, kill-one-replica failover,
# sharded-sweep-equals-serial, and a 2-replica scaling run).
# CI (.github/workflows/ci.yml) and humans alike should run it before merging.

GO ?= go

RACE_PKGS := ./internal/telemetry ./internal/service ./internal/client \
	./internal/wire ./internal/pipeline ./internal/platforms ./internal/store \
	./internal/profiling ./internal/cluster

.PHONY: all build vet test race check bench bench-quick bench-kernels loadgen-smoke trace-smoke wire-smoke store-smoke perf-smoke profile-smoke cluster-smoke perf-run perf-compare perf-report

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The core race run is restricted to the parallel-engine tests: racing the
# whole analysis suite re-runs the shared 8-dataset sweep under the race
# detector, which triples check time without exercising new interleavings.
race:
	$(GO) test -race $(RACE_PKGS)
	$(GO) test -race -run 'TestParallel|TestSweepCancellation' ./internal/core

check: vet test race bench-kernels loadgen-smoke trace-smoke wire-smoke store-smoke perf-smoke profile-smoke cluster-smoke

# A ~2s end-to-end run of the closed-loop load generator against in-process
# servers: proves upload/train/predict and the refit-vs-forward comparison
# still work before merging. Full benchmark instructions: EXPERIMENTS.md.
loadgen-smoke:
	$(GO) run ./cmd/mlaas-loadgen -clients 2 -batch 32 -duration 1s

# Flight-recorder smoke: a ~2s traced loadgen run exports its trace JSONL
# and mlaas-trace must summarize a non-empty export — proves cross-process
# stitching, the ring buffer, and the analysis CLI end to end.
trace-smoke:
	$(GO) run ./cmd/mlaas-loadgen -clients 2 -batch 32 -duration 1s \
		-trace-out /tmp/mlaas-trace-smoke.jsonl >/dev/null
	$(GO) run ./cmd/mlaas-trace /tmp/mlaas-trace-smoke.jsonl

# Binary wire-path smoke: the JSON-oracle equivalence and negotiation tests
# over a live in-process server, the decoder fuzz seed corpus (one pass —
# malformed frames must 400, never panic), and a short binary-codec loadgen
# run end to end. Extend the corpus with `go test -fuzz FuzzFrameDecoder
# ./internal/wire`.
wire-smoke:
	$(GO) test -count=1 -run 'TestBinaryPredict|TestAccept|TestMultiFrame|TestPredictRejects' ./internal/service
	$(GO) test -count=1 -run FuzzFrameDecoder ./internal/wire
	$(GO) run ./cmd/mlaas-loadgen -clients 2 -batch 32 -duration 1s -codec binary >/dev/null

# Artifact-store smoke: the MLDS/MLMF round-trip and corruption tests, both
# decoder fuzz seed corpora (corrupt artifacts must error, never panic), a
# cross-compile of the store package for a platform without the mmap fast
# path (the portable read path must build everywhere), a convert->inspect
# CLI round trip, and a short warm-restart A/B (warm arm must run 0 fits).
store-smoke:
	$(GO) test -count=1 ./internal/store
	$(GO) test -count=1 -run 'FuzzDatasetDecoder|FuzzModelDecoder' ./internal/store
	GOOS=windows GOARCH=amd64 $(GO) build ./internal/store
	$(GO) run ./cmd/mlaas-datasets convert -out /tmp/mlaas-mlds-smoke -name CIRCLE
	$(GO) run ./cmd/mlaas-datasets inspect -in /tmp/mlaas-mlds-smoke/CIRCLE.mlds >/dev/null
	$(GO) run ./cmd/mlaas-loadgen -restart -restart-trials 3 >/dev/null

# Performance-tracking smoke: one single-iteration pass of the kernel trio
# through mlaas-perf, then a report-only diff against the committed history
# in perf/results/ and a trajectory render. Proves the run -> compare ->
# report loop end to end without gating on numbers (CI machines differ, so
# the diff is informational here; gate locally with `make perf-compare`).
perf-smoke:
	$(GO) run ./cmd/mlaas-perf run -count 1 -benchtime 1x -cv-gate 0 \
		-no-save -out /tmp/mlaas-perf-smoke.json
	$(GO) run ./cmd/mlaas-perf compare -candidate /tmp/mlaas-perf-smoke.json -report-only
	$(GO) run ./cmd/mlaas-perf report >/dev/null

# Continuous-profiling smoke: a capture -> list -> diff round trip through
# the real CLI against bundles captured during a loadgen pass, plus the SLO
# watchdog's window arithmetic and trigger path under the race detector.
# (The full e2e — breach-triggered capture with trace refs, hot-symbol
# diff — runs in `make test` via internal/profiling; this target proves
# the operator-facing loop.)
profile-smoke:
	rm -rf /tmp/mlaas-profile-smoke
	$(GO) run ./cmd/mlaas-loadgen -clients 2 -batch 32 -duration 1s \
		-profile-dir /tmp/mlaas-profile-smoke >/dev/null
	$(GO) run ./cmd/mlaas-profile -dir /tmp/mlaas-profile-smoke list
	$(GO) run ./cmd/mlaas-profile -dir /tmp/mlaas-profile-smoke show latest >/dev/null
	$(GO) run ./cmd/mlaas-profile -dir /tmp/mlaas-profile-smoke diff first latest -top 5
	$(GO) test -race -count=1 -run 'TestBurnWindow|TestWatchdog|TestSLOBreach' ./internal/profiling

# Cluster-serving smoke: binary-codec predicts through the router must
# match a single-process server byte-for-byte, every request must survive
# one of three replicas dying (failover + lazy repair), a fleet-sharded
# sweep must merge byte-identically to a serial one, and a short 2-replica
# scaling run through budget-capped replicas must complete with zero
# errors. The committed 1/2/4-replica scaling record lives in
# perf/results/ (label pr10-cluster); method in EXPERIMENTS.md.
cluster-smoke:
	$(GO) test -count=1 -run 'TestRouterBinaryPredictMatchesDirect|TestRouterFailoverKillOneOfThree|TestRouterLazyRepair|TestRingGolden' ./internal/cluster
	$(GO) test -count=1 -run 'TestFleetSweepByteIdentical/replicas=3' ./internal/core
	$(GO) run ./cmd/mlaas-loadgen -cluster 1,2 -classifier logreg -codec binary \
		-duration 1s -replica-budget 100 -cluster-models 8 >/dev/null

# A real measured run appended to the committed history (5 rounds, CV-gated
# reruns). Commit the new perf/results/ file with the change it measures.
perf-run:
	$(GO) run ./cmd/mlaas-perf run -label $(or $(LABEL),dev)

# Gate: latest committed record vs the one before it; exits 2 on regression.
perf-compare:
	$(GO) run ./cmd/mlaas-perf compare

perf-report:
	$(GO) run ./cmd/mlaas-perf report

# The serial-vs-parallel sweep-engine pair (BenchmarkSweepSerial /
# BenchmarkSweepParallel4); results are committed as BENCH_*.json.
bench:
	$(GO) test -bench=Sweep -benchmem -run '^$$' .

# A fast smoke sweep with the telemetry summary, for eyeballing where the
# time goes.
bench-quick:
	$(GO) run ./cmd/mlaas-bench -datasets 5 table2 timecost

# One-iteration smoke of the batch compute kernels (blocked GEMM, batch
# forward pass, batched distances): proves the benchmarks still compile and
# run, not a measurement. Real numbers (-benchtime=1s interleaved A/B) are
# committed as BENCH_PR5.json; method in EXPERIMENTS.md.
bench-kernels:
	$(GO) test -run '^$$' -bench 'BenchmarkGEMM$$|MLPForwardBatch|KNNPredictBatch' \
		-benchtime 1x ./internal/linalg ./internal/classifiers
