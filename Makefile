# Standard pre-merge gate: `make check` runs vet, the full test suite, and
# the race detector over the concurrency-bearing packages (telemetry,
# service, client). CI and humans alike should run it before merging.

GO ?= go

RACE_PKGS := ./internal/telemetry ./internal/service ./internal/client

.PHONY: all build vet test race check bench-quick

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

check: vet test race

# A fast smoke sweep with the telemetry summary, for eyeballing where the
# time goes.
bench-quick:
	$(GO) run ./cmd/mlaas-bench -datasets 5 table2 timecost
