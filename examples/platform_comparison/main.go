// Platform comparison: a miniature version of the paper's headline
// experiment (Figure 4 / Table 3). Sweeps every platform's full control
// surface over a slice of the corpus and prints baseline vs optimized
// F-scores, per-control improvements and the measurement-scale table.
//
// Run with -datasets 119 for the full corpus (several minutes); the default
// 10-dataset slice finishes quickly and already shows the shape.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"mlaasbench"
)

func main() {
	nDatasets := flag.Int("datasets", 10, "number of corpus datasets to sweep")
	verbose := flag.Bool("v", false, "progress output")
	flag.Parse()

	opts := mlaas.DefaultSweepOptions()
	opts.MaxDatasets = *nDatasets
	if *verbose {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}

	fmt.Printf("sweeping %d datasets across %d platforms...\n", *nDatasets, len(mlaas.Platforms()))
	sweep, err := mlaas.RunSweep(context.Background(), opts)
	if err != nil {
		log.Fatal(err)
	}

	sweep.WriteTable2(os.Stdout)
	fmt.Println()
	sweep.WriteFig4(os.Stdout)
	fmt.Println()
	sweep.WriteFig5(os.Stdout)
	fmt.Println()
	sweep.WriteFig6(os.Stdout)
}
