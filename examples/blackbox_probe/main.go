// Black-box probe: the §6.1 methodology end-to-end over HTTP. Starts the
// simulated MLaaS service in-process, then — acting as an external
// measurement client with no knowledge of the server internals — uploads
// the CIRCLE and LINEAR probe datasets to a black-box platform, queries a
// mesh of predictions, and renders the decision boundary (Figures 10/13).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"strings"

	"mlaasbench"
)

func main() {
	platform := flag.String("platform", "google", "platform to probe (google, abm, amazon)")
	steps := flag.Int("steps", 36, "mesh resolution")
	flag.Parse()

	// Host the simulated services locally; the client below only ever
	// talks HTTP, exactly like the paper's measurement scripts.
	srv := httptest.NewServer(mlaas.NewServer(func(string, ...any) {}))
	defer srv.Close()
	c := mlaas.NewClient(srv.URL)
	ctx := context.Background()

	circle, linear := mlaas.ProbeDatasets(mlaas.Quick, mlaas.DefaultSeed)
	for _, probe := range []*mlaas.DatasetT{circle, linear} {
		fmt.Printf("\n%s on %s:\n", *platform, probe.Name)
		boundary, err := probeBoundary(ctx, c, *platform, probe, *steps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(boundary)
	}
}

// probeBoundary uploads the dataset, trains a model (configs rejected by
// black boxes, so Amazon gets its default LR), and rasterizes mesh
// predictions.
func probeBoundary(ctx context.Context, c *mlaas.Client, platform string, probe *mlaas.DatasetT, steps int) (string, error) {
	dsID, err := c.Upload(ctx, platform, probe)
	if err != nil {
		return "", fmt.Errorf("upload: %w", err)
	}
	cfg := mlaas.Config{}
	if platform == "amazon" {
		cfg = mlaas.Config{Classifier: "logreg", Params: map[string]any{}}
	}
	modelID, err := c.Train(ctx, platform, dsID, cfg, mlaas.DefaultSeed)
	if err != nil {
		return "", fmt.Errorf("train: %w", err)
	}
	mesh := probe.MeshGrid(steps, 0.25)
	labels, err := c.Predict(ctx, platform, modelID, mesh)
	if err != nil {
		return "", fmt.Errorf("predict: %w", err)
	}
	var sb strings.Builder
	for j := steps - 1; j >= 0; j-- {
		for i := 0; i < steps; i++ {
			if labels[i*steps+j] == 1 {
				sb.WriteByte('#')
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}
