// Risk analysis: the paper's §5 question — does more control mean more risk?
// Runs the k-random-classifier strategy (Figure 8) on real corpus datasets
// and contrasts the spread of outcomes a non-expert faces at k=1 against
// the near-optimal results at k=3, using the library's exploration API.
package main

import (
	"flag"
	"fmt"
	"log"

	"mlaasbench"
)

func main() {
	platformName := flag.String("platform", "local", "platform with classifier choice")
	flag.Parse()

	p, err := mlaas.Platform(*platformName)
	if err != nil {
		log.Fatal(err)
	}
	if len(p.Surface().Classifiers) < 2 {
		log.Fatalf("%s offers no classifier choice; try local, microsoft, bigml or predictionio", *platformName)
	}

	// A mixed bag: one linear concept, one non-linear, one noisy.
	datasets := []string{"LINEAR", "CIRCLE", "comp-00"}
	fmt.Printf("platform %s: exploring random classifier subsets (§5.2 / Figure 8)\n\n", *platformName)
	for _, name := range datasets {
		ds := mlaas.Dataset(name)
		split := mlaas.Split(ds, mlaas.DefaultSeed)
		fmt.Printf("%s (n=%d, d=%d):\n", name, ds.N(), ds.D())
		for _, k := range []int{1, 3, len(p.Surface().Classifiers)} {
			// Average over a few random draws to show the risk at each k.
			var worst, best, sum float64
			worst = 1
			const draws = 5
			for d := 0; d < draws; d++ {
				res, err := mlaas.ExploreRandomClassifiers(p, split, k, uint64(1000*d+k))
				if err != nil {
					log.Fatal(err)
				}
				sum += res.TestF1
				if res.TestF1 < worst {
					worst = res.TestF1
				}
				if res.TestF1 > best {
					best = res.TestF1
				}
			}
			fmt.Printf("  k=%-2d  mean F1 %.3f   worst %.3f   best %.3f\n", k, sum/draws, worst, best)
		}
		fmt.Println()
	}
	fmt.Println("k=1 is a gamble — a poor draw lands a linear model on a non-linear")
	fmt.Println("concept; by k=3 the worst draw is already close to the full sweep.")
}
