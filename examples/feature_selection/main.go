// Feature selection walkthrough: the FEAT control dimension (§4.2) on a
// deliberately noisy, high-dimensional dataset. Compares a baseline
// Logistic Regression against every filter method and scaler the local
// library exposes, showing which transformations rescue performance when
// most features are noise.
package main

import (
	"fmt"
	"log"
	"sort"

	"mlaasbench"
)

func main() {
	// 6 informative dimensions drowned in 18 noise features.
	spec := mlaas.Spec{
		Name:       "noisy-highdim",
		Gen:        "linear",
		N:          240,
		D:          6,
		Noise:      0.3,
		NoiseFeats: 18,
	}
	ds := mlaas.Generate(spec, mlaas.Quick, mlaas.DefaultSeed)
	split := mlaas.Split(ds, mlaas.DefaultSeed)
	fmt.Printf("dataset: %d samples, %d features (6 informative, %d noise)\n\n",
		ds.N(), ds.D(), ds.D()-6)

	local, err := mlaas.Platform("local")
	if err != nil {
		log.Fatal(err)
	}
	base, err := local.Surface().DefaultConfig("logreg")
	if err != nil {
		log.Fatal(err)
	}

	type result struct {
		feat string
		f1   float64
	}
	var results []result
	for _, feat := range local.Surface().FeatOptions() {
		cfg := base
		cfg.Feat = feat
		res, err := local.Run(cfg, split.Train, split.Test, mlaas.DefaultSeed)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, result{feat: feat.String(), f1: res.Scores.F1})
	}
	sort.Slice(results, func(a, b int) bool { return results[a].f1 > results[b].f1 })

	fmt.Println("FEAT option ranking (Logistic Regression, default params):")
	for i, r := range results {
		marker := " "
		if r.feat == "none" {
			marker = "←baseline"
		}
		fmt.Printf("  %2d. %-18s F1 = %.3f %s\n", i+1, r.feat, r.f1, marker)
	}
	fmt.Println("\nfilter methods that score features against the label recover the")
	fmt.Println("signal; pure rescaling cannot remove the noise dimensions (§4.2:")
	fmt.Println("FEAT gives the second-largest improvement after classifier choice).")
}
