// Quickstart: generate a corpus dataset, train classifiers on the most
// configurable platform, and compare the zero-control baseline against a
// tuned configuration — the paper's core contrast (Figure 4) on one dataset.
package main

import (
	"fmt"
	"log"

	"mlaasbench"
)

func main() {
	// CIRCLE is the paper's non-linearly-separable probe (§6.1).
	ds := mlaas.Dataset("CIRCLE")
	split := mlaas.Split(ds, mlaas.DefaultSeed)
	fmt.Printf("dataset %s: %d samples, %d features, %.0f%% positive\n",
		ds.Name, ds.N(), ds.D(), 100*ds.ClassBalance())

	platform, err := mlaas.Platform("microsoft")
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: the platform default — Logistic Regression, no feature
	// engineering, default parameters (§3.2).
	baseline, err := platform.Surface().DefaultConfig("logreg")
	if err != nil {
		log.Fatal(err)
	}
	baseRes, err := platform.Run(baseline, split.Train, split.Test, mlaas.DefaultSeed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline  (default LR):        F1 = %.3f\n", baseRes.Scores.F1)

	// Tuned: a sensible expert choice — boosted trees.
	tuned, err := platform.Surface().DefaultConfig("boosted")
	if err != nil {
		log.Fatal(err)
	}
	tuned.Params["n_estimators"] = 100
	tunedRes, err := platform.Run(tuned, split.Train, split.Test, mlaas.DefaultSeed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuned     (boosted trees):     F1 = %.3f\n", tunedRes.Scores.F1)

	// The black boxes decide for themselves.
	google, err := mlaas.Platform("google")
	if err != nil {
		log.Fatal(err)
	}
	autoRes, err := google.Run(mlaas.Config{}, split.Train, split.Test, mlaas.DefaultSeed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("automatic (google 1-click):    F1 = %.3f\n", autoRes.Scores.F1)

	fmt.Println("\nclassifier choice dominates: a poor default on a non-linear")
	fmt.Println("dataset costs dearly, while the black box recovers by silently")
	fmt.Println("switching classifier families (§6).")
}
