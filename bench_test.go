// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index). One measurement sweep is
// shared by all benchmarks; the timed region of each benchmark is the
// analysis that turns raw measurements into the artifact, and each
// benchmark prints its artifact once in the paper's layout.
//
// Environment knobs:
//
//	MLAAS_PROFILE=quick|full   corpus scale (default quick)
//	MLAAS_DATASETS=N           limit the corpus to N datasets (default all 119)
//	MLAAS_SEED=S               measurement seed
//	MLAAS_CACHE=path           sweep cache file (load if present, else save)
//
// Absolute values differ from the paper (its substrate was the 2016/17
// production services); the shapes the paper reports are asserted by the
// test suite and visible in the printed artifacts.
package mlaas

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"mlaasbench/internal/core"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/platforms"
	"mlaasbench/internal/rng"
	"mlaasbench/internal/synth"
)

// rngSplit derives a named deterministic RNG for bench-local experiments.
func rngSplit(seed uint64, name string) *rng.RNG {
	return rng.New(seed).Split(name)
}

var (
	benchOnce  sync.Once
	benchSweep *core.Sweep
	benchErr   error
	printOnce  sync.Map // experiment name → *sync.Once
)

func benchOptions() core.Options {
	opts := core.DefaultOptions()
	if v := os.Getenv("MLAAS_PROFILE"); v != "" {
		p, err := synth.ProfileByName(v)
		if err == nil {
			opts.Profile = p
		}
	}
	if v := os.Getenv("MLAAS_DATASETS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			opts.MaxDatasets = n
		}
	}
	if v := os.Getenv("MLAAS_SEED"); v != "" {
		if s, err := strconv.ParseUint(v, 10, 64); err == nil {
			opts.Seed = s
		}
	}
	return opts
}

// sweep runs (once) the measurement campaign every benchmark analyzes.
func sweep(b *testing.B) *core.Sweep {
	b.Helper()
	benchOnce.Do(func() {
		opts := benchOptions()
		n := opts.MaxDatasets
		if n <= 0 || n > 119 {
			n = 119
		}
		fmt.Fprintf(os.Stderr, "[bench] running measurement sweep: %d datasets, profile %s (one-time cost)\n",
			n, opts.Profile.Name)
		benchSweep, benchErr = core.LoadOrRunSweep(context.Background(), os.Getenv("MLAAS_CACHE"), opts)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSweep
}

// printArtifact emits the rendered artifact once per experiment across all
// b.N iterations.
func printArtifact(name string, render func()) {
	onceAny, _ := printOnce.LoadOrStore(name, &sync.Once{})
	onceAny.(*sync.Once).Do(render)
}

// benchmarkSweepEngine times the measurement engine itself (not the
// analyses): a fresh RunSweep over a fixed corpus slice at the given worker
// count. The serial/parallel pair feeds the BENCH_*.json trajectory and
// demonstrates the worker-pool speedup; `make bench` runs them.
func benchmarkSweepEngine(b *testing.B, workers int) {
	opts := core.DefaultOptions()
	opts.MaxDatasets = 6
	opts.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw, err := core.RunSweep(context.Background(), opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(sw.Datasets) != opts.MaxDatasets {
			b.Fatalf("sweep returned %d datasets", len(sw.Datasets))
		}
	}
}

// BenchmarkSweepSerial is the single-worker baseline of the engine pair.
func BenchmarkSweepSerial(b *testing.B) { benchmarkSweepEngine(b, 1) }

// BenchmarkSweepParallel4 runs the same campaign with a four-worker pool;
// its measurements are byte-identical to the serial run's.
func BenchmarkSweepParallel4(b *testing.B) { benchmarkSweepEngine(b, 4) }

// BenchmarkFig3_Corpus regenerates the corpus characteristics (Fig 3a-c).
func BenchmarkFig3_Corpus(b *testing.B) {
	opts := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = synth.GenerateCorpus(opts.Profile, opts.Seed)
	}
	printArtifact("fig3", func() {
		core.WriteFig3(os.Stdout, opts.Profile, opts.Seed)
	})
}

// BenchmarkTable2_Scale regenerates the measurement-scale table.
func BenchmarkTable2_Scale(b *testing.B) {
	sw := sweep(b)
	b.ResetTimer()
	var total int
	for i := 0; i < b.N; i++ {
		total = 0
		for _, p := range sw.Platforms() {
			total += sw.ConfigCount(p) * len(sw.Datasets)
		}
	}
	b.ReportMetric(float64(total), "measurements")
	printArtifact("table2", func() { sw.WriteTable2(os.Stdout) })
}

// BenchmarkFig4_OptimizedVsBaseline regenerates the paper's headline figure.
func BenchmarkFig4_OptimizedVsBaseline(b *testing.B) {
	sw := sweep(b)
	b.ResetTimer()
	var rows []core.PlatformPerformance
	for i := 0; i < b.N; i++ {
		rows = sw.Fig4()
	}
	for _, r := range rows {
		if r.Platform == "local" {
			b.ReportMetric(r.OptimizedF1, "local-optimized-F1")
		}
		if r.Platform == "microsoft" {
			b.ReportMetric(r.OptimizedF1, "msft-optimized-F1")
		}
	}
	printArtifact("fig4", func() { sw.WriteFig4(os.Stdout) })
}

// BenchmarkTable3_Rankings regenerates both halves of Table 3.
func BenchmarkTable3_Rankings(b *testing.B) {
	sw := sweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sw.Table3(false)
		_ = sw.Table3(true)
	}
	printArtifact("table3", func() { sw.WriteTable3(os.Stdout) })
}

// BenchmarkFig5_ControlImprovement regenerates the per-control improvements.
func BenchmarkFig5_ControlImprovement(b *testing.B) {
	sw := sweep(b)
	b.ResetTimer()
	var rows []core.ControlImprovement
	for i := 0; i < b.N; i++ {
		rows = sw.Fig5()
	}
	clfSum, clfN := 0.0, 0
	for _, r := range rows {
		if r.Dimension == "clf" && r.Supported {
			clfSum += r.Percent
			clfN++
		}
	}
	if clfN > 0 {
		b.ReportMetric(clfSum/float64(clfN), "avg-CLF-gain-%")
	}
	printArtifact("fig5", func() { sw.WriteFig5(os.Stdout) })
}

// BenchmarkTable4_TopClassifiers regenerates the classifier rankings.
func BenchmarkTable4_TopClassifiers(b *testing.B) {
	sw := sweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range []string{"bigml", "predictionio", "microsoft", "local"} {
			_ = sw.Table4(p, false)
			_ = sw.Table4(p, true)
		}
	}
	printArtifact("table4", func() { sw.WriteTable4(os.Stdout) })
}

// BenchmarkFig6_Variation regenerates the performance-variation analysis.
func BenchmarkFig6_Variation(b *testing.B) {
	sw := sweep(b)
	b.ResetTimer()
	var rows []core.VariationPoint
	for i := 0; i < b.N; i++ {
		rows = sw.Fig6()
	}
	for _, r := range rows {
		if r.Platform == "local" {
			b.ReportMetric(r.Max-r.Min, "local-F1-range")
		}
	}
	printArtifact("fig6", func() { sw.WriteFig6(os.Stdout) })
}

// BenchmarkFig7_ControlVariation regenerates per-control variation shares.
func BenchmarkFig7_ControlVariation(b *testing.B) {
	sw := sweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sw.Fig7()
	}
	printArtifact("fig7", func() { sw.WriteFig7(os.Stdout) })
}

// BenchmarkFig8_KClassifiers regenerates the random-subset exploration
// curves.
func BenchmarkFig8_KClassifiers(b *testing.B) {
	sw := sweep(b)
	b.ResetTimer()
	var pts []core.KSubsetPoint
	for i := 0; i < b.N; i++ {
		pts = sw.Fig8()
	}
	for _, pt := range pts {
		if pt.Platform == "local" && pt.K == 3 {
			b.ReportMetric(pt.AvgBestF, "local-k3-F1")
		}
	}
	printArtifact("fig8", func() { sw.WriteFig8(os.Stdout) })
}

// BenchmarkFig9_Probes regenerates the CIRCLE/LINEAR probe datasets.
func BenchmarkFig9_Probes(b *testing.B) {
	opts := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = core.ProbeDatasets(opts.Profile, opts.Seed)
	}
}

// BenchmarkFig10_Boundaries regenerates the black-box decision boundaries
// (Figure 10) plus Amazon's (Figure 13).
func BenchmarkFig10_Boundaries(b *testing.B) {
	opts := benchOptions()
	circle, linear := core.ProbeDatasets(opts.Profile, opts.Seed)
	probes := []struct {
		platform string
		ds       string
	}{
		{"google", "CIRCLE"}, {"google", "LINEAR"},
		{"abm", "CIRCLE"}, {"abm", "LINEAR"},
		{"amazon", "CIRCLE"}, // Figure 13
	}
	b.ResetTimer()
	var maps []*core.BoundaryMap
	for i := 0; i < b.N; i++ {
		maps = maps[:0]
		for _, pr := range probes {
			p, err := platforms.New(pr.platform)
			if err != nil {
				b.Fatal(err)
			}
			ds := circle
			if pr.ds == "LINEAR" {
				ds = linear
			}
			cfg := pipeline.Config{}
			if p.BaselineClassifier() != "" {
				cfg, err = p.Surface().DefaultConfig(p.BaselineClassifier())
				if err != nil {
					b.Fatal(err)
				}
			}
			bm, err := core.ExtractBoundary(p, ds, cfg, 40, opts.Seed)
			if err != nil {
				b.Fatal(err)
			}
			maps = append(maps, bm)
		}
	}
	b.StopTimer()
	printArtifact("fig10", func() {
		for i, bm := range maps {
			fmt.Printf("%s on %s (linearity %.3f)\n", probes[i].platform, probes[i].ds, bm.LinearityScore())
			fmt.Print(bm.ASCII())
		}
	})
}

// BenchmarkFig11_FamilyCDFs regenerates the linear/non-linear F-score CDFs
// on the probe datasets.
func BenchmarkFig11_FamilyCDFs(b *testing.B) {
	sw := sweep(b)
	ds := probeDatasetName(sw)
	if ds == "" {
		b.Skip("probe datasets not in the sweep slice (raise MLAAS_DATASETS)")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = sw.FamilyCDFs(ds)
	}
	printArtifact("fig11", func() { sw.WriteFamilyCDFs(os.Stdout, ds) })
}

func probeDatasetName(sw *core.Sweep) string {
	for _, name := range []string{"CIRCLE", "LINEAR"} {
		if _, ok := sw.Dataset(name); ok {
			return name
		}
	}
	return ""
}

// BenchmarkFig12_Inference regenerates the §6.2 classifier-family inference
// (Figure 12 plus the per-platform family splits).
func BenchmarkFig12_Inference(b *testing.B) {
	sw := sweep(b)
	b.ResetTimer()
	var rep *core.InferenceReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = sw.InferFamilies(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rep.Qualified)), "qualified-datasets")
	printArtifact("fig12", func() { core.WriteInference(os.Stdout, rep) })
}

// BenchmarkTable6_Fig14_Naive regenerates the §6.3 naive-strategy
// comparison against both black boxes.
func BenchmarkTable6_Fig14_Naive(b *testing.B) {
	sw := sweep(b)
	rep, err := sw.InferFamilies(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	type outcome struct {
		cmp        *core.NaiveComparison
		switchBest int
	}
	results := map[string]outcome{}
	for i := 0; i < b.N; i++ {
		for _, p := range []string{"google", "abm"} {
			cmp, err := sw.CompareNaive(p, rep)
			if err != nil {
				b.Fatal(err)
			}
			sb, err := sw.SwitchIsBestCount(p, rep)
			if err != nil {
				b.Fatal(err)
			}
			results[p] = outcome{cmp: cmp, switchBest: sb}
		}
	}
	if g, ok := results["google"]; ok {
		b.ReportMetric(float64(g.cmp.TotalWins), "naive-beats-google")
	}
	printArtifact("table6", func() {
		for _, p := range []string{"google", "abm"} {
			o := results[p]
			core.WriteNaive(os.Stdout, o.cmp, o.switchBest)
		}
	})
}

// BenchmarkAblation_AutoSelection quantifies the black boxes' hidden
// classifier auto-selection (DESIGN.md §4): Google's automatic baseline vs
// the same substrate forced to the plain Logistic Regression default (the
// local platform's baseline). The gap is the value of the server-side test
// the paper detects in §6.
func BenchmarkAblation_AutoSelection(b *testing.B) {
	sw := sweep(b)
	b.ResetTimer()
	var auto, fixed float64
	for i := 0; i < b.N; i++ {
		auto, fixed = 0, 0
		n := 0.0
		for _, ds := range sw.DatasetNames() {
			g, okG := sw.Baseline("google", ds)
			l, okL := sw.Baseline("local", ds)
			if !okG || !okL {
				continue
			}
			auto += g.Scores.F1
			fixed += l.Scores.F1
			n++
		}
		if n > 0 {
			auto /= n
			fixed /= n
		}
	}
	b.ReportMetric(auto, "google-auto-F1")
	b.ReportMetric(fixed, "fixed-LR-F1")
	printArtifact("ablation-auto", func() {
		fmt.Printf("Ablation: auto-selection — google %.3f vs fixed default LR %.3f\n", auto, fixed)
	})
}

// BenchmarkAblation_AmazonBinning quantifies Amazon's hidden quantile
// binning on the CIRCLE probe: binned LR (Amazon) vs plain LR (local), the
// mechanism behind Figure 13.
func BenchmarkAblation_AmazonBinning(b *testing.B) {
	opts := benchOptions()
	circle, _ := core.ProbeDatasets(opts.Profile, opts.Seed)
	split := circle.StratifiedSplit(0.7, rngSplit(opts.Seed, circle.Name))
	b.ResetTimer()
	var binned, plain float64
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"amazon", "local"} {
			p, err := platforms.New(name)
			if err != nil {
				b.Fatal(err)
			}
			cfg, err := p.Surface().DefaultConfig("logreg")
			if err != nil {
				b.Fatal(err)
			}
			res, err := p.Run(cfg, split.Train, split.Test, opts.Seed)
			if err != nil {
				b.Fatal(err)
			}
			if name == "amazon" {
				binned = res.Scores.F1
			} else {
				plain = res.Scores.F1
			}
		}
	}
	b.ReportMetric(binned, "binned-LR-F1")
	b.ReportMetric(plain, "plain-LR-F1")
	printArtifact("ablation-binning", func() {
		fmt.Printf("Ablation: Amazon binning on CIRCLE — binned LR %.3f vs plain LR %.3f\n", binned, plain)
	})
}

// BenchmarkAblation_MetricAgreement validates the §3.2 choice of average
// F-score by its Spearman agreement with the Friedman ranking.
func BenchmarkAblation_MetricAgreement(b *testing.B) {
	sw := sweep(b)
	b.ResetTimer()
	var base, opt float64
	for i := 0; i < b.N; i++ {
		base = sw.MetricAgreement(false)
		opt = sw.MetricAgreement(true)
	}
	b.ReportMetric(base, "baseline-spearman")
	b.ReportMetric(opt, "optimized-spearman")
	printArtifact("ablation-metric", func() {
		fmt.Printf("Ablation: avg-F vs Friedman ranking agreement — baseline %.2f, optimized %.2f\n", base, opt)
	})
}

// BenchmarkAblation_Imputation compares the paper's median imputation
// against naive zero-fill on a missing-heavy dataset (DESIGN.md §4).
func BenchmarkAblation_Imputation(b *testing.B) {
	opts := benchOptions()
	spec := synth.Spec{
		Name: "ablate-missing", Gen: synth.GenLinear,
		N: 240, D: 8, Noise: 0.3, MissingRate: 0.25,
	}
	b.ResetTimer()
	var median, zero float64
	for i := 0; i < b.N; i++ {
		for _, mode := range []string{"median", "zero"} {
			ds := synth.Generate(spec, opts.Profile, opts.Seed)
			ds.EncodeCategorical()
			if mode == "median" {
				ds.Impute()
			} else {
				ds.ImputeConstant(0)
			}
			split := ds.StratifiedSplit(0.7, rngSplit(opts.Seed, spec.Name+mode))
			res, err := pipeline.Run(pipeline.Config{Classifier: "logreg", Params: map[string]any{}},
				split.Train, split.Test, rngSplit(opts.Seed, "fit"+mode))
			if err != nil {
				b.Fatal(err)
			}
			if mode == "median" {
				median = res.Scores.F1
			} else {
				zero = res.Scores.F1
			}
		}
	}
	b.ReportMetric(median, "median-impute-F1")
	b.ReportMetric(zero, "zero-impute-F1")
	printArtifact("ablation-impute", func() {
		fmt.Printf("Ablation: imputation — median %.3f vs zero-fill %.3f (25%% missing)\n", median, zero)
	})
}

// BenchmarkAblation_GridRule compares the paper's one-at-a-time parameter
// scan against the exhaustive cartesian product on one platform surface —
// the DESIGN.md ablation showing PARA gains saturate.
func BenchmarkAblation_GridRule(b *testing.B) {
	p, err := platforms.New("bigml")
	if err != nil {
		b.Fatal(err)
	}
	surf := p.Surface()
	b.ResetTimer()
	var scan, full int
	for i := 0; i < b.N; i++ {
		scan, full = 0, 0
		for _, cs := range surf.Classifiers {
			scan += len(pipeline.ParamGrid(cs))
			full += len(pipeline.ParamGridFull(cs))
		}
	}
	b.ReportMetric(float64(scan), "scan-configs")
	b.ReportMetric(float64(full), "cartesian-configs")
}
