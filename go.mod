module mlaasbench

go 1.22
