// Package mlaas is a reproduction of "Complexity vs. Performance: Empirical
// Analysis of Machine Learning as a Service" (Yao et al., IMC 2017) as a
// reusable Go library.
//
// It bundles four layers, each usable on its own:
//
//   - a pure-Go binary-classification library: 13 classifiers, 8 filter
//     feature-selection methods, 6 scalers and deterministic training
//     (subpackages internal/classifiers, internal/featsel,
//     internal/preprocess, re-exported here through RunPipeline);
//
//   - simulated MLaaS platforms with the exact control surfaces the paper
//     measured — ABM, Google, Amazon, PredictionIO, BigML, Microsoft and a
//     fully controllable "local" arm — including the black boxes' hidden
//     classifier auto-selection and Amazon's hidden quantile binning;
//
//   - an HTTP service/client pair mirroring the web-API measurement
//     methodology;
//
//   - the measurement framework and analyses that regenerate every table
//     and figure of the paper's evaluation (RunSweep plus the Sweep
//     methods; see DESIGN.md for the experiment index).
//
// Quickstart:
//
//	ds := mlaas.Dataset("CIRCLE")                  // one of the 119-corpus datasets
//	split := mlaas.Split(ds, 0x5eed)               // stratified 70/30
//	p, _ := mlaas.Platform("microsoft")
//	cfg, _ := p.Surface().DefaultConfig("boosted") // defaults for one classifier
//	res, _ := p.Run(cfg, split.Train, split.Test, 0x5eed)
//	fmt.Println(res.Scores.F1)
package mlaas

import (
	"context"
	"io"
	"net/http"

	"mlaasbench/internal/client"
	"mlaasbench/internal/core"
	"mlaasbench/internal/dataset"
	"mlaasbench/internal/metrics"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/platforms"
	"mlaasbench/internal/rng"
	"mlaasbench/internal/service"
	"mlaasbench/internal/synth"
)

// Re-exported core types. The aliases keep one importable surface while the
// implementation stays in focused internal packages.
type (
	// DatasetT is a labeled binary-classification dataset.
	DatasetT = dataset.Dataset
	// SplitT is a train/test partition.
	SplitT = dataset.Split
	// Config selects one pipeline configuration (FEAT + CLF + PARA).
	Config = pipeline.Config
	// Feat is one option of the FEAT control dimension.
	Feat = pipeline.Feat
	// Scores bundles F-score, accuracy, precision and recall.
	Scores = metrics.Scores
	// PlatformT is a simulated MLaaS platform.
	PlatformT = platforms.Platform
	// Sweep is a completed measurement campaign with analysis methods
	// (Fig4, Table3, Fig5, Table4, Fig6, Fig7, Fig8, InferFamilies,
	// NaiveStrategy, ...).
	Sweep = core.Sweep
	// SweepOptions configures RunSweep.
	SweepOptions = core.Options
	// Measurement is one (platform, dataset, config) observation.
	Measurement = core.Measurement
	// Profile caps corpus generation cost ("quick" or "full").
	Profile = synth.Profile
	// Spec describes one synthetic corpus dataset.
	Spec = synth.Spec
	// BoundaryMap is a labeled decision-boundary mesh (§6.1).
	BoundaryMap = core.BoundaryMap
	// Client measures platforms over HTTP.
	Client = client.Client
)

// Profiles.
var (
	// Quick is the laptop-scale corpus profile (default).
	Quick = synth.Quick
	// Full pushes dataset sizes closer to paper scale.
	Full = synth.Full
)

// DefaultSeed roots all randomness of the standard experiments.
const DefaultSeed = synth.CorpusSeed

// Corpus returns the 119-dataset catalog (Figure 3 marginals).
func Corpus() []Spec { return synth.Corpus() }

// Dataset generates one corpus dataset by name under the Quick profile,
// preprocessed as in §3.1 (categoricals encoded, missing values imputed).
// It panics on unknown names; use CorpusByName for a checked lookup.
func Dataset(name string) *DatasetT {
	spec, ok := synth.CorpusByName(name)
	if !ok {
		panic("mlaas: unknown corpus dataset " + name)
	}
	return synth.GenerateClean(spec, synth.Quick, DefaultSeed)
}

// CorpusByName returns the spec for a corpus dataset.
func CorpusByName(name string) (Spec, bool) { return synth.CorpusByName(name) }

// Generate materializes a custom spec under a profile.
func Generate(spec Spec, p Profile, seed uint64) *DatasetT {
	return synth.GenerateClean(spec, p, seed)
}

// Split partitions a dataset 70/30 with stratified sampling (§3.1).
func Split(ds *DatasetT, seed uint64) SplitT {
	return ds.StratifiedSplit(0.7, rng.New(seed).Split("split/"+ds.Name))
}

// Platform constructs a simulated platform: "google", "abm", "amazon",
// "bigml", "predictionio", "microsoft" or "local".
func Platform(name string) (PlatformT, error) { return platforms.New(name) }

// Platforms lists the platform names in complexity order.
func Platforms() []string { return platforms.Names() }

// RunPipeline executes one configuration on a split using the local
// library (no platform restrictions) and returns its scores.
func RunPipeline(cfg Config, split SplitT, seed uint64) (Scores, error) {
	res, err := pipeline.Run(cfg, split.Train, split.Test, rng.New(seed))
	if err != nil {
		return Scores{}, err
	}
	return res.Scores, nil
}

// RunSweep executes the full measurement campaign and returns the analysis
// object behind every table and figure.
func RunSweep(ctx context.Context, opts SweepOptions) (*Sweep, error) {
	return core.RunSweep(ctx, opts)
}

// DefaultSweepOptions returns the standard quick-profile options.
func DefaultSweepOptions() SweepOptions { return core.DefaultOptions() }

// ExtractBoundary probes a platform's decision boundary on a 2-D dataset
// with a steps×steps mesh (§6.1).
func ExtractBoundary(p PlatformT, probe *DatasetT, cfg Config, steps int, seed uint64) (*BoundaryMap, error) {
	return core.ExtractBoundary(p, probe, cfg, steps, seed)
}

// ProbeDatasets returns the §6 CIRCLE and LINEAR probe datasets.
func ProbeDatasets(p Profile, seed uint64) (circle, linear *DatasetT) {
	return core.ProbeDatasets(p, seed)
}

// CrossValidate evaluates a configuration with stratified k-fold cross
// validation and returns per-fold scores.
func CrossValidate(cfg Config, ds *DatasetT, k int, seed uint64) ([]Scores, error) {
	return pipeline.CrossValidate(cfg, ds, k, rng.New(seed))
}

// SelectConfig picks the best of the configurations by cross-validated
// F-score on the training data.
func SelectConfig(configs []Config, train *DatasetT, k int, seed uint64) (Config, float64, error) {
	return pipeline.SelectConfig(configs, train, k, rng.New(seed))
}

// ExploreRandomClassifiers applies the paper's §5.2 recipe: try a random
// subset of k of the platform's classifiers (each tuned by CV on the
// training data) and return the winner — near-optimal at k≈3 (Figure 8).
func ExploreRandomClassifiers(p PlatformT, split SplitT, k int, seed uint64) (*core.ExploreResult, error) {
	return core.ExploreRandomClassifiers(p, split, k, seed)
}

// LoadOrRunSweep loads a cached sweep from path when present and matching
// opts, otherwise runs the sweep and caches it at path (if non-empty).
func LoadOrRunSweep(ctx context.Context, path string, opts SweepOptions) (*Sweep, error) {
	return core.LoadOrRunSweep(ctx, path, opts)
}

// NewServer returns an HTTP handler hosting all simulated platforms under
// the /v1 MLaaS API. Pass a nil logf for default logging.
func NewServer(logf func(format string, args ...any)) http.Handler {
	return service.NewServer(logf).Handler()
}

// NewClient returns a measurement client for an MLaaS service endpoint.
func NewClient(baseURL string) *Client { return client.New(baseURL) }

// WriteFig3 renders the corpus-characteristics figure to w.
func WriteFig3(w io.Writer, p Profile, seed uint64) { core.WriteFig3(w, p, seed) }
