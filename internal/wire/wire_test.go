package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"math"
	"testing"

	"mlaasbench/internal/rng"
)

// specials are the float64 values JSON cannot carry (or normalizes) and the
// binary codec must round-trip bit-exactly: quiet NaN, a payload-carrying
// NaN, ±Inf, and both zeros.
var specials = []float64{
	math.NaN(),
	math.Float64frombits(0x7ff8_0000_0000_0001),
	math.Float64frombits(0xfff0_0000_0000_0001),
	math.Inf(1),
	math.Inf(-1),
	math.Copysign(0, -1),
	0,
	math.MaxFloat64,
	math.SmallestNonzeroFloat64,
}

func bitsEqual(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if math.Float64bits(a[i][j]) != math.Float64bits(b[i][j]) {
				return false
			}
		}
	}
	return true
}

func randMatrix(r *rng.RNG, rows, cols int, withSpecials bool) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
		for j := range m[i] {
			if withSpecials && r.Bernoulli(0.2) {
				m[i][j] = specials[r.Intn(len(specials))]
			} else {
				m[i][j] = r.Normal(0, 100)
			}
		}
	}
	return m
}

// TestMatrixRoundTripShapes round-trips random matrices over a spread of
// shapes — empty, 1-row, 1-col, wide, tall — asserting exact bit equality
// including special values.
func TestMatrixRoundTripShapes(t *testing.T) {
	r := rng.New(42).Split("wire/shapes")
	shapes := [][2]int{{0, 0}, {0, 5}, {1, 1}, {1, 17}, {3, 1}, {7, 4}, {64, 6}, {129, 3}, {512, 16}, {1000, 2}}
	for _, sh := range shapes {
		rows, cols := sh[0], sh[1]
		m := randMatrix(r, rows, cols, true)
		for _, chunk := range []int{0, 1, 7, rows} {
			body := EncodeMatrixStream(nil, m, chunk)
			got, err := DecodeMatrixStream(bytes.NewReader(body))
			if err != nil {
				t.Fatalf("shape %dx%d chunk %d: decode: %v", rows, cols, chunk, err)
			}
			if len(got) != rows {
				t.Fatalf("shape %dx%d chunk %d: got %d rows", rows, cols, chunk, len(got))
			}
			if !bitsEqual(m, got) {
				t.Fatalf("shape %dx%d chunk %d: bits differ after round trip", rows, cols, chunk)
			}
		}
	}
}

// TestMatrixMatchesJSONOracle cross-checks the two codecs on payloads JSON
// can represent: a matrix round-tripped through encoding/json and through
// wire frames must land on identical bits.
func TestMatrixMatchesJSONOracle(t *testing.T) {
	r := rng.New(7).Split("wire/oracle")
	for trial := 0; trial < 20; trial++ {
		m := randMatrix(r, 1+r.Intn(40), 1+r.Intn(12), false)
		// -0 is JSON-representable in Go (marshals as "-0") — include it.
		m[0][0] = math.Copysign(0, -1)

		blob, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("json marshal: %v", err)
		}
		var viaJSON [][]float64
		if err := json.Unmarshal(blob, &viaJSON); err != nil {
			t.Fatalf("json unmarshal: %v", err)
		}

		viaWire, err := DecodeMatrixStream(bytes.NewReader(EncodeMatrixStream(nil, m, 0)))
		if err != nil {
			t.Fatalf("wire decode: %v", err)
		}
		if !bitsEqual(viaJSON, viaWire) {
			t.Fatalf("trial %d: JSON and wire round trips disagree", trial)
		}
	}
}

func TestLabelsRoundTrip(t *testing.T) {
	cases := [][]int{
		{},
		{0},
		{1, 0, 1, 1, 0},
		{-1, math.MaxInt32, math.MinInt32, 7},
	}
	for _, labels := range cases {
		body := AppendLabelsFrame(nil, labels, FlagLast)
		got, err := DecodeLabelsStream(bytes.NewReader(body))
		if err != nil {
			t.Fatalf("labels %v: %v", labels, err)
		}
		if len(got) != len(labels) {
			t.Fatalf("labels %v: got %v", labels, got)
		}
		for i := range labels {
			if got[i] != labels[i] {
				t.Fatalf("labels %v: got %v", labels, got)
			}
		}
	}
}

// TestMultiFrameLabels stitches label frames the way the server writes a
// streamed response: one frame per request frame, last flagged.
func TestMultiFrameLabels(t *testing.T) {
	body := AppendLabelsFrame(nil, []int{1, 2}, 0)
	body = AppendLabelsFrame(body, []int{3}, 0)
	body = AppendLabelsFrame(body, []int{4, 5, 6}, FlagLast)
	got, err := DecodeLabelsStream(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 4, 5, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

// TestStreamWithoutLastFlag: clean EOF on a frame boundary ends the stream
// even when no frame carried LAST (a tolerant reader, per the doc).
func TestStreamWithoutLastFlag(t *testing.T) {
	body := AppendMatrixFrame(nil, [][]float64{{1, 2}}, 0)
	body = AppendMatrixFrame(body, [][]float64{{3, 4}}, 0)
	got, err := DecodeMatrixStream(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1][1] != 4 {
		t.Fatalf("got %v", got)
	}
}

func TestNegotiates(t *testing.T) {
	yes := []string{
		ContentType,
		ContentType + "; charset=binary",
		"application/json, " + ContentType,
		"  " + ContentType + " ;q=0.9",
	}
	no := []string{"", "application/json", "text/csv", "application/x-mlaas-frames2"}
	for _, h := range yes {
		if !Negotiates(h) {
			t.Errorf("Negotiates(%q) = false, want true", h)
		}
	}
	for _, h := range no {
		if Negotiates(h) {
			t.Errorf("Negotiates(%q) = true, want false", h)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	valid := AppendMatrixFrame(nil, [][]float64{{1, 2}, {3, 4}}, FlagLast)

	corrupt := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		mutate(b)
		return b
	}
	cases := map[string][]byte{
		"bad magic":         corrupt(func(b []byte) { b[0] = 'X' }),
		"bad version":       corrupt(func(b []byte) { b[4] = 99 }),
		"unknown flags":     corrupt(func(b []byte) { b[5] |= 0x80 }),
		"reserved nonzero":  corrupt(func(b []byte) { b[6] = 1 }),
		"truncated header":  valid[:HeaderSize-3],
		"truncated payload": valid[:HeaderSize+5],
		"rows over limit": corrupt(func(b []byte) {
			binary.LittleEndian.PutUint32(b[8:], MaxFrameRows+1)
		}),
		"cols over limit": corrupt(func(b []byte) {
			binary.LittleEndian.PutUint32(b[12:], MaxFrameCols+1)
		}),
		"payload over limit": corrupt(func(b []byte) {
			binary.LittleEndian.PutUint32(b[8:], 1<<21)
			binary.LittleEndian.PutUint32(b[12:], 1<<13)
		}),
		"labels cols != 1": corrupt(func(b []byte) { b[5] |= FlagLabels }),
		"empty body":       {},
	}
	for name, body := range cases {
		_, err := DecodeMatrixStream(bytes.NewReader(body))
		if err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
			continue
		}
		if name != "empty body" && !errors.Is(err, ErrFormat) && err != io.EOF {
			t.Errorf("%s: error %v not tagged ErrFormat", name, err)
		}
	}

	// Frame-kind mismatches.
	if _, err := DecodeLabelsStream(bytes.NewReader(valid)); !errors.Is(err, ErrFormat) {
		t.Errorf("labels decode of matrix frame: %v, want ErrFormat", err)
	}
	lbl := AppendLabelsFrame(nil, []int{1}, FlagLast)
	if _, err := DecodeMatrixStream(bytes.NewReader(lbl)); !errors.Is(err, ErrFormat) {
		t.Errorf("matrix decode of labels frame: %v, want ErrFormat", err)
	}
}

// TestReaderBoundedAllocation: a header claiming a huge payload backed by a
// tiny body must fail after allocating roughly what arrived, not what was
// claimed. We can't measure allocation directly without flakiness, but we
// assert the error path triggers with a payload claim near the cap.
func TestReaderBoundedAllocation(t *testing.T) {
	var head [HeaderSize]byte
	putHeader(head[:], Header{Rows: MaxFrameRows, Cols: 2}) // 64 MiB claim
	body := append(head[:], 1, 2, 3)
	_, err := DecodeMatrixStream(bytes.NewReader(body))
	if !errors.Is(err, ErrFormat) {
		t.Fatalf("got %v, want ErrFormat", err)
	}
}

func TestBufferPool(t *testing.T) {
	b := GetBuffer()
	if len(b) != 0 {
		t.Fatalf("pooled buffer has length %d", len(b))
	}
	b = AppendMatrixFrame(b, [][]float64{{1}}, FlagLast)
	PutBuffer(b)
	// Oversized buffers must be dropped, not pooled.
	PutBuffer(make([]byte, maxPooledFrame+1))
}
