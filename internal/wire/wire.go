// Package wire is the binary serving codec: a length-prefixed frame format
// for predict request/response bodies that replaces reflection-driven JSON
// on the hot path. After the fit-once cache (PR 3) and the batch kernels
// (PR 5), profiles put the predict endpoint's time in encoding/json, not
// the forward pass — the same cloud-side serving overhead MLBench measures
// dominating end-to-end MLaaS latency. A frame carries raw little-endian
// float64 rows that decode straight into one flat caller-owned backing
// slice feeding the GEMM tiles: zero reflection, two allocations per frame
// (backing + row headers), and exact bit round-trips for NaN, ±Inf and -0,
// which JSON either mangles or rejects outright.
//
// Frame layout (all integers little-endian):
//
//	offset size field
//	0      4    magic "MLWF"
//	4      1    version (currently 1)
//	5      1    flags: bit0 LAST (final frame of the stream)
//	            bit1 LABELS (payload is int64 labels, not float64 rows)
//	6      2    reserved, must be zero
//	8      4    rows
//	12     4    cols (labels frames: must be 1)
//	16     -    payload: rows*cols float64, or rows int64 for labels
//
// A body is one or more frames; the stream ends at a frame with the LAST
// flag or at clean EOF on a frame boundary. Multi-frame bodies are the
// streaming form: a large predict pipelines through the server chunk by
// chunk over one connection instead of re-dialing per chunk or decoding
// one giant matrix allocation.
//
// The codec is negotiated over HTTP: requests declare a binary body with
// Content-Type: application/x-mlaas-frames and ask for a binary response
// with the same value in Accept. JSON remains the default and the
// compatibility oracle — predictions are asserted byte-identical across
// codecs. Error responses are always the JSON error envelope regardless
// of Accept, so failures stay debuggable with curl.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
)

// ContentType is the media type both sides use to negotiate binary frames
// (request bodies via Content-Type, response bodies via Accept).
const ContentType = "application/x-mlaas-frames"

const (
	// HeaderSize is the fixed frame-header length in bytes.
	HeaderSize = 16
	// Version is the format version this package reads and writes.
	Version = 1

	// FlagLast marks the final frame of a stream.
	FlagLast byte = 1 << 0
	// FlagLabels marks an int64 label payload instead of float64 rows.
	FlagLabels byte = 1 << 1

	flagsKnown = FlagLast | FlagLabels
)

// Decode limits. They bound what a single frame header can demand before
// any payload bytes arrive, so a forged header cannot make a reader
// allocate or loop unboundedly (the fuzz target leans on this).
const (
	// MaxFrameRows caps rows per frame.
	MaxFrameRows = 1 << 22
	// MaxFrameCols caps columns per frame.
	MaxFrameCols = 1 << 16
	// MaxFramePayload caps a frame's payload size in bytes (64 MiB).
	MaxFramePayload = 1 << 26
)

var magic = [4]byte{'M', 'L', 'W', 'F'}

// ErrFormat tags every malformed-frame error so transports can map codec
// failures to a 400 instead of a 500.
var ErrFormat = errors.New("wire: malformed frame")

func formatErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrFormat, fmt.Sprintf(format, args...))
}

// Negotiates reports whether an HTTP header value (Content-Type or Accept)
// selects the binary frame codec. Parameters after ';' are ignored;
// Accept-style lists match if any element is the frame media type.
func Negotiates(header string) bool {
	for _, part := range strings.Split(header, ",") {
		mt, _, _ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(mt) == ContentType {
			return true
		}
	}
	return false
}

// Header is one parsed frame header.
type Header struct {
	Flags byte
	Rows  int
	Cols  int
}

// Last reports the LAST flag.
func (h Header) Last() bool { return h.Flags&FlagLast != 0 }

// Labels reports the LABELS flag.
func (h Header) Labels() bool { return h.Flags&FlagLabels != 0 }

// payloadBytes is the exact payload size the header demands. Both label
// and matrix payloads are 8-byte words, so rows*cols*8 covers both
// (labels frames carry cols == 1).
func (h Header) payloadBytes() int { return h.Rows * h.Cols * 8 }

func putHeader(dst []byte, h Header) {
	copy(dst, magic[:])
	dst[4] = Version
	dst[5] = h.Flags
	dst[6], dst[7] = 0, 0
	binary.LittleEndian.PutUint32(dst[8:], uint32(h.Rows))
	binary.LittleEndian.PutUint32(dst[12:], uint32(h.Cols))
}

func parseHeader(b []byte) (Header, error) {
	if b[0] != magic[0] || b[1] != magic[1] || b[2] != magic[2] || b[3] != magic[3] {
		return Header{}, formatErr("bad magic %q", b[:4])
	}
	if b[4] != Version {
		return Header{}, formatErr("unsupported version %d (want %d)", b[4], Version)
	}
	h := Header{Flags: b[5]}
	if h.Flags&^flagsKnown != 0 {
		return Header{}, formatErr("unknown flag bits 0x%02x", h.Flags&^flagsKnown)
	}
	if b[6] != 0 || b[7] != 0 {
		return Header{}, formatErr("reserved header bytes must be zero")
	}
	rows := binary.LittleEndian.Uint32(b[8:])
	cols := binary.LittleEndian.Uint32(b[12:])
	if rows > MaxFrameRows {
		return Header{}, formatErr("frame rows %d exceed limit %d", rows, MaxFrameRows)
	}
	if cols > MaxFrameCols {
		return Header{}, formatErr("frame cols %d exceed limit %d", cols, MaxFrameCols)
	}
	h.Rows, h.Cols = int(rows), int(cols)
	if h.Labels() && h.Cols != 1 {
		return Header{}, formatErr("labels frame cols %d (want 1)", h.Cols)
	}
	if h.payloadBytes() > MaxFramePayload {
		return Header{}, formatErr("frame payload %d bytes exceeds limit %d", h.payloadBytes(), MaxFramePayload)
	}
	return h, nil
}

// bufPool recycles frame encode buffers. Buffers that grew past the pool
// cap are dropped on return so one huge frame cannot pin memory.
const maxPooledFrame = 1 << 20

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// GetBuffer hands out a pooled scratch buffer (length 0). Callers that
// assemble multi-frame bodies with AppendMatrixFrame/AppendLabelsFrame use
// it to keep the hot path allocation-free; return it with PutBuffer.
func GetBuffer() []byte { return (*bufPool.Get().(*[]byte))[:0] }

// PutBuffer returns a buffer obtained from GetBuffer (or grown from one).
func PutBuffer(b []byte) {
	if cap(b) <= maxPooledFrame {
		b = b[:0]
		bufPool.Put(&b)
	}
}

// AppendMatrixFrame appends one float64 matrix frame to dst and returns
// the extended slice. Rows must be rectangular; the caller guarantees it
// (the service validates widths before encoding). Float bits are copied
// verbatim, so NaN payloads and -0 survive exactly.
func AppendMatrixFrame(dst []byte, rows [][]float64, flags byte) []byte {
	cols := 0
	if len(rows) > 0 {
		cols = len(rows[0])
	}
	n := len(dst)
	dst = append(dst, make([]byte, HeaderSize+len(rows)*cols*8)...)
	putHeader(dst[n:], Header{Flags: flags &^ FlagLabels, Rows: len(rows), Cols: cols})
	off := n + HeaderSize
	for _, row := range rows {
		for _, v := range row {
			binary.LittleEndian.PutUint64(dst[off:], math.Float64bits(v))
			off += 8
		}
	}
	return dst
}

// MarkLast sets the LAST flag on the frame whose header starts at off in
// an assembled body. Streaming writers append frames as input arrives and
// only learn which one was final when the input ends; they patch the flag
// in place instead of buffering a frame of lookahead.
func MarkLast(body []byte, off int) { body[off+5] |= FlagLast }

// AppendLabelsFrame appends one int64 labels frame to dst.
func AppendLabelsFrame(dst []byte, labels []int, flags byte) []byte {
	n := len(dst)
	dst = append(dst, make([]byte, HeaderSize+len(labels)*8)...)
	putHeader(dst[n:], Header{Flags: flags | FlagLabels, Rows: len(labels), Cols: 1})
	off := n + HeaderSize
	for _, v := range labels {
		binary.LittleEndian.PutUint64(dst[off:], uint64(int64(v)))
		off += 8
	}
	return dst
}

// EncodeMatrixStream appends a whole instance matrix to dst as a stream of
// frames of at most chunk rows each (chunk <= 0 means one frame), the last
// frame flagged LAST. This is the client-side batched-predict body: one
// HTTP request, many frames, no giant contiguous payload buffer on the
// decode side.
func EncodeMatrixStream(dst []byte, rows [][]float64, chunk int) []byte {
	if chunk <= 0 || chunk > len(rows) {
		chunk = len(rows)
	}
	if len(rows) == 0 {
		return AppendMatrixFrame(dst, nil, FlagLast)
	}
	for start := 0; start < len(rows); start += chunk {
		end := start + chunk
		var flags byte
		if end >= len(rows) {
			end = len(rows)
			flags = FlagLast
		}
		dst = AppendMatrixFrame(dst, rows[start:end], flags)
	}
	return dst
}

// Reader decodes a stream of frames. It reads payloads in bounded chunks,
// so allocation tracks bytes actually delivered, not what a (possibly
// forged) header claims.
type Reader struct {
	r       io.Reader
	scratch []byte
	head    [HeaderSize]byte
}

// NewReader wraps r for frame decoding.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// next reads and validates the next frame header. Clean EOF on the frame
// boundary returns io.EOF; a partial header is ErrUnexpectedEOF.
func (d *Reader) next() (Header, error) {
	if _, err := io.ReadFull(d.r, d.head[:]); err != nil {
		if err == io.EOF {
			return Header{}, io.EOF
		}
		return Header{}, formatErr("truncated header: %v", err)
	}
	return parseHeader(d.head[:])
}

// readPayload returns the next n payload bytes, reading in capped chunks
// so a truncated stream never allocates more than roughly what arrived.
// The returned slice aliases the reader's scratch buffer and is only valid
// until the next call.
func (d *Reader) readPayload(n int) ([]byte, error) {
	const step = 1 << 18 // 256 KiB
	if cap(d.scratch) < n && n <= step {
		d.scratch = make([]byte, n)
	}
	if cap(d.scratch) >= n {
		buf := d.scratch[:n]
		if _, err := io.ReadFull(d.r, buf); err != nil {
			return nil, formatErr("truncated payload: %v", err)
		}
		return buf, nil
	}
	// Large payload: grow with the data, not the claim.
	buf := d.scratch[:0]
	for len(buf) < n {
		chunk := n - len(buf)
		if chunk > step {
			chunk = step
		}
		start := len(buf)
		buf = append(buf, make([]byte, chunk)...)
		if _, err := io.ReadFull(d.r, buf[start:]); err != nil {
			return nil, formatErr("truncated payload: %v", err)
		}
	}
	d.scratch = buf
	return buf, nil
}

// NextMatrix decodes the next float64 matrix frame: one flat backing
// allocation the row slices index into, ready to feed the batch kernels.
// It returns io.EOF at clean end of stream; last reports the LAST flag.
func (d *Reader) NextMatrix() (rows [][]float64, last bool, err error) {
	h, err := d.next()
	if err != nil {
		return nil, false, err
	}
	if h.Labels() {
		return nil, false, formatErr("unexpected labels frame (want matrix)")
	}
	payload, err := d.readPayload(h.payloadBytes())
	if err != nil {
		return nil, false, err
	}
	flat := make([]float64, h.Rows*h.Cols)
	for i := range flat {
		flat[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[i*8:]))
	}
	rows = make([][]float64, h.Rows)
	for i := range rows {
		rows[i] = flat[i*h.Cols : (i+1)*h.Cols : (i+1)*h.Cols]
	}
	return rows, h.Last(), nil
}

// NextLabels decodes the next labels frame. io.EOF at clean end of stream.
func (d *Reader) NextLabels() (labels []int, last bool, err error) {
	h, err := d.next()
	if err != nil {
		return nil, false, err
	}
	if !h.Labels() {
		return nil, false, formatErr("unexpected matrix frame (want labels)")
	}
	payload, err := d.readPayload(h.payloadBytes())
	if err != nil {
		return nil, false, err
	}
	labels = make([]int, h.Rows)
	for i := range labels {
		labels[i] = int(int64(binary.LittleEndian.Uint64(payload[i*8:])))
	}
	return labels, h.Last(), nil
}

// DecodeLabelsStream decodes every labels frame of body (the client side
// of a predict response) into one label slice.
func DecodeLabelsStream(body io.Reader) ([]int, error) {
	d := NewReader(body)
	var out []int
	for {
		labels, lastFrame, err := d.NextLabels()
		if err == io.EOF {
			if out == nil {
				return nil, formatErr("empty stream")
			}
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = labels
		} else {
			out = append(out, labels...)
		}
		if lastFrame {
			return out, nil
		}
	}
}

// DecodeMatrixStream decodes every matrix frame of body into one instance
// matrix (test/oracle convenience; the server consumes frames one at a
// time instead).
func DecodeMatrixStream(body io.Reader) ([][]float64, error) {
	d := NewReader(body)
	var out [][]float64
	seen := false
	for {
		rows, lastFrame, err := d.NextMatrix()
		if err == io.EOF {
			if !seen {
				return nil, formatErr("empty stream")
			}
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		seen = true
		out = append(out, rows...)
		if lastFrame {
			return out, nil
		}
	}
}
