package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzFrameDecoder throws arbitrary bytes at both stream decoders. The
// invariants: never panic, never allocate unboundedly (headers are
// validated against the frame limits before payloads are read, and
// payloads are read in chunks bounded by delivered bytes), and every
// failure is a returned error. `go test` runs the seed corpus on every
// check; `go test -fuzz FuzzFrameDecoder ./internal/wire` explores.
func FuzzFrameDecoder(f *testing.F) {
	// Valid single matrix frame.
	f.Add(AppendMatrixFrame(nil, [][]float64{{1.5, -2.5}, {3.25, 4}}, FlagLast))
	// Valid multi-frame stream.
	f.Add(EncodeMatrixStream(nil, [][]float64{{1}, {2}, {3}}, 1))
	// Valid labels stream.
	f.Add(AppendLabelsFrame(nil, []int{1, 0, -3}, FlagLast))
	// Empty matrix frame.
	f.Add(AppendMatrixFrame(nil, nil, FlagLast))
	// Truncations and garbage.
	f.Add(AppendMatrixFrame(nil, [][]float64{{1, 2}}, FlagLast)[:HeaderSize+3])
	f.Add([]byte{})
	f.Add([]byte("MLWF"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	// Forged header claiming a huge payload with no data behind it.
	huge := make([]byte, HeaderSize)
	putHeader(huge, Header{Rows: MaxFrameRows, Cols: 2})
	f.Add(huge)
	// Over-limit rows/cols.
	over := make([]byte, HeaderSize)
	putHeader(over, Header{Rows: 1, Cols: 1})
	binary.LittleEndian.PutUint32(over[8:], ^uint32(0))
	f.Add(over)
	// Unknown flags / reserved bytes / wrong version.
	bad := AppendMatrixFrame(nil, [][]float64{{9}}, 0)
	bad[5] |= 0x40
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		rows, err := DecodeMatrixStream(bytes.NewReader(data))
		if err == nil {
			// Decoded matrices must be rectangular and within limits.
			if len(rows) > 0 {
				w := len(rows[0])
				for _, r := range rows {
					if len(r) != w {
						t.Fatalf("ragged decode: %d vs %d", len(r), w)
					}
				}
			}
		}
		if labels, err := DecodeLabelsStream(bytes.NewReader(data)); err == nil && labels == nil {
			t.Fatal("nil labels with nil error")
		}
	})
}
