package wire

import (
	"bytes"
	"encoding/json"
	"testing"

	"mlaasbench/internal/rng"
)

// The codec pair the wire path replaces: a 512x16 predict body (the
// client's default batch upper bound) through encoding/json versus frames.
// These run under mlaas-perf (the WireCodec series in perf/results/), so
// the JSON-vs-binary gap is tracked over time, not just claimed once.

func benchMatrix() [][]float64 {
	return randMatrix(rng.New(3).Split("wire/bench"), 512, 16, false)
}

func BenchmarkWireCodecEncode(b *testing.B) {
	m := benchMatrix()
	buf := GetBuffer()
	defer PutBuffer(buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = EncodeMatrixStream(buf[:0], m, 0)
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkWireCodecDecode(b *testing.B) {
	m := benchMatrix()
	body := EncodeMatrixStream(nil, m, 0)
	b.ReportAllocs()
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeMatrixStream(bytes.NewReader(body)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireCodecEncodeJSON(b *testing.B) {
	m := benchMatrix()
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := json.NewEncoder(&buf).Encode(m); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkWireCodecDecodeJSON(b *testing.B) {
	m := benchMatrix()
	body, err := json.Marshal(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out [][]float64
		if err := json.Unmarshal(body, &out); err != nil {
			b.Fatal(err)
		}
	}
}
