// Package preprocess implements the data-transformation step of the ML
// pipeline (Figure 1): feature scalers and normalizers. In the paper only
// Microsoft (and the local scikit-learn arm) expose this control; the scaler
// set below mirrors Table 1's local-library FEAT list (GaussianNorm /
// StandardScaler, MinMaxScaler, MaxAbsScaler, L1/L2 normalization) plus the
// quantile binning Amazon applies server-side.
//
// Every scaler follows the fit-on-train / apply-to-both discipline: Fit
// learns statistics from training rows only, Transform applies them to any
// rows, so no information leaks from the test set.
package preprocess

import (
	"fmt"
	"math"
	"sort"
)

// Scaler learns a feature-wise transformation from training data and applies
// it to feature vectors.
type Scaler interface {
	// Name identifies the scaler in configs and reports.
	Name() string
	// Fit learns the transformation statistics from training rows.
	Fit(x [][]float64)
	// Transform returns transformed copies of the rows; inputs are not
	// modified.
	Transform(x [][]float64) [][]float64
}

// New constructs a scaler by name. Valid names: "identity", "standard",
// "minmax", "maxabs", "l1norm", "l2norm", "binning".
func New(name string) (Scaler, error) {
	switch name {
	case "", "identity":
		return &Identity{}, nil
	case "standard", "gaussian":
		return &Standard{}, nil
	case "minmax":
		return &MinMax{}, nil
	case "maxabs":
		return &MaxAbs{}, nil
	case "l1norm":
		return &RowNorm{P: 1}, nil
	case "l2norm":
		return &RowNorm{P: 2}, nil
	case "binning":
		return &QuantileBinning{Bins: 10}, nil
	default:
		return nil, fmt.Errorf("preprocess: unknown scaler %q", name)
	}
}

// Names lists the constructible scaler names (excluding identity).
func Names() []string {
	return []string{"standard", "minmax", "maxabs", "l1norm", "l2norm"}
}

// Identity passes features through unchanged (the baseline configuration).
type Identity struct{}

// Name implements Scaler.
func (*Identity) Name() string { return "identity" }

// Fit implements Scaler.
func (*Identity) Fit([][]float64) {}

// Transform implements Scaler.
func (*Identity) Transform(x [][]float64) [][]float64 { return copyRows(x) }

// Standard centers features to zero mean and unit variance (scikit-learn's
// StandardScaler / the paper's GaussianNorm).
type Standard struct {
	mean, std []float64
}

// Name implements Scaler.
func (*Standard) Name() string { return "standard" }

// Fit implements Scaler.
func (s *Standard) Fit(x [][]float64) {
	d := width(x)
	s.mean = make([]float64, d)
	s.std = make([]float64, d)
	if len(x) == 0 {
		return
	}
	for _, row := range x {
		for j, v := range row {
			s.mean[j] += v
		}
	}
	for j := range s.mean {
		s.mean[j] /= float64(len(x))
	}
	for _, row := range x {
		for j, v := range row {
			dv := v - s.mean[j]
			s.std[j] += dv * dv
		}
	}
	for j := range s.std {
		s.std[j] = math.Sqrt(s.std[j] / float64(len(x)))
		if s.std[j] == 0 {
			s.std[j] = 1
		}
	}
}

// Transform implements Scaler.
func (s *Standard) Transform(x [][]float64) [][]float64 {
	out := copyRows(x)
	for _, row := range out {
		for j := range row {
			row[j] = (row[j] - s.mean[j]) / s.std[j]
		}
	}
	return out
}

// MinMax rescales each feature to [0, 1] using the training min and max.
type MinMax struct {
	min, span []float64
}

// Name implements Scaler.
func (*MinMax) Name() string { return "minmax" }

// Fit implements Scaler.
func (m *MinMax) Fit(x [][]float64) {
	d := width(x)
	m.min = make([]float64, d)
	m.span = make([]float64, d)
	for j := 0; j < d; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, row := range x {
			lo = math.Min(lo, row[j])
			hi = math.Max(hi, row[j])
		}
		if len(x) == 0 {
			lo, hi = 0, 1
		}
		m.min[j] = lo
		m.span[j] = hi - lo
		if m.span[j] == 0 {
			m.span[j] = 1
		}
	}
}

// Transform implements Scaler.
func (m *MinMax) Transform(x [][]float64) [][]float64 {
	out := copyRows(x)
	for _, row := range out {
		for j := range row {
			row[j] = (row[j] - m.min[j]) / m.span[j]
		}
	}
	return out
}

// MaxAbs divides each feature by its training maximum absolute value,
// preserving sparsity and sign.
type MaxAbs struct {
	scale []float64
}

// Name implements Scaler.
func (*MaxAbs) Name() string { return "maxabs" }

// Fit implements Scaler.
func (m *MaxAbs) Fit(x [][]float64) {
	d := width(x)
	m.scale = make([]float64, d)
	for j := 0; j < d; j++ {
		maxAbs := 0.0
		for _, row := range x {
			maxAbs = math.Max(maxAbs, math.Abs(row[j]))
		}
		if maxAbs == 0 {
			maxAbs = 1
		}
		m.scale[j] = maxAbs
	}
}

// Transform implements Scaler.
func (m *MaxAbs) Transform(x [][]float64) [][]float64 {
	out := copyRows(x)
	for _, row := range out {
		for j := range row {
			row[j] /= m.scale[j]
		}
	}
	return out
}

// RowNorm normalizes each sample vector to unit Lp norm (p ∈ {1, 2}). It is
// stateless across Fit.
type RowNorm struct {
	P int
}

// Name implements Scaler.
func (r *RowNorm) Name() string {
	if r.P == 1 {
		return "l1norm"
	}
	return "l2norm"
}

// Fit implements Scaler.
func (*RowNorm) Fit([][]float64) {}

// Transform implements Scaler.
func (r *RowNorm) Transform(x [][]float64) [][]float64 {
	out := copyRows(x)
	for _, row := range out {
		norm := 0.0
		for _, v := range row {
			if r.P == 1 {
				norm += math.Abs(v)
			} else {
				norm += v * v
			}
		}
		if r.P != 1 {
			norm = math.Sqrt(norm)
		}
		if norm == 0 {
			continue
		}
		for j := range row {
			row[j] /= norm
		}
	}
	return out
}

// QuantileBinning replaces each feature with the index of its training
// quantile bin. Amazon ML applies this server-side to give Logistic
// Regression non-linear expressive power — the behaviour §6.2 detects on
// the CIRCLE dataset (Figure 13).
type QuantileBinning struct {
	Bins  int
	edges [][]float64
}

// Name implements Scaler.
func (*QuantileBinning) Name() string { return "binning" }

// Fit implements Scaler.
func (q *QuantileBinning) Fit(x [][]float64) {
	if q.Bins < 2 {
		q.Bins = 10
	}
	d := width(x)
	q.edges = make([][]float64, d)
	for j := 0; j < d; j++ {
		col := make([]float64, len(x))
		for i, row := range x {
			col[i] = row[j]
		}
		sort.Float64s(col)
		edges := make([]float64, 0, q.Bins-1)
		for b := 1; b < q.Bins; b++ {
			if len(col) == 0 {
				break
			}
			pos := float64(b) / float64(q.Bins) * float64(len(col)-1)
			edges = append(edges, col[int(pos)])
		}
		q.edges[j] = edges
	}
}

// Transform implements Scaler.
func (q *QuantileBinning) Transform(x [][]float64) [][]float64 {
	out := copyRows(x)
	for _, row := range out {
		for j := range row {
			if j >= len(q.edges) {
				continue
			}
			bin := sort.SearchFloat64s(q.edges[j], row[j])
			row[j] = float64(bin)
		}
	}
	return out
}

// OneHotBinning quantile-bins each feature and expands it into per-bin
// indicator features, so a downstream linear model learns an independent
// weight per bin — a piecewise-constant additive model. This is Amazon ML's
// documented "quantile binning" recipe and the mechanism behind the
// non-linear Logistic Regression boundary the paper observes on CIRCLE
// (Figure 13).
type OneHotBinning struct {
	Bins  int
	edges [][]float64
}

// Name implements Scaler.
func (*OneHotBinning) Name() string { return "onehotbin" }

// Fit implements Scaler.
func (o *OneHotBinning) Fit(x [][]float64) {
	if o.Bins < 2 {
		o.Bins = 10
	}
	q := &QuantileBinning{Bins: o.Bins}
	q.Fit(x)
	o.edges = q.edges
}

// Transform implements Scaler. Output width is #features × Bins.
func (o *OneHotBinning) Transform(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	d := len(o.edges)
	for i, row := range x {
		wide := make([]float64, d*o.Bins)
		for j := 0; j < d && j < len(row); j++ {
			bin := sort.SearchFloat64s(o.edges[j], row[j])
			wide[j*o.Bins+bin] = 1
		}
		out[i] = wide
	}
	return out
}

func width(x [][]float64) int {
	if len(x) == 0 {
		return 0
	}
	return len(x[0])
}

func copyRows(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = append([]float64(nil), row...)
	}
	return out
}
