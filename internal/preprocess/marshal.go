package preprocess

import (
	"fmt"

	"mlaasbench/internal/codec"
)

// Binary tags for the fitted-scaler codec (MLMF artifacts). Append-only:
// new scalers get new tags, existing tags never change meaning.
const (
	scalerIdentity = iota + 1
	scalerStandard
	scalerMinMax
	scalerMaxAbs
	scalerRowNorm
	scalerQuantileBinning
	scalerOneHotBinning
)

// Decode limits for fitted scaler state. Features are bounded well above
// anything the corpus produces; bins match QuantileBinning's practical
// range.
const (
	maxScalerFeatures = 1 << 20
	maxScalerBins     = 1 << 16
)

// AppendScaler serializes a fitted scaler's learned statistics. The bit
// patterns of every float are preserved exactly, so a decoded scaler
// transforms byte-identically to the resident one.
func AppendScaler(b []byte, s Scaler) ([]byte, error) {
	switch t := s.(type) {
	case *Identity:
		return codec.AppendU8(b, scalerIdentity), nil
	case *Standard:
		b = codec.AppendU8(b, scalerStandard)
		b = codec.AppendF64s(b, t.mean)
		return codec.AppendF64s(b, t.std), nil
	case *MinMax:
		b = codec.AppendU8(b, scalerMinMax)
		b = codec.AppendF64s(b, t.min)
		return codec.AppendF64s(b, t.span), nil
	case *MaxAbs:
		b = codec.AppendU8(b, scalerMaxAbs)
		return codec.AppendF64s(b, t.scale), nil
	case *RowNorm:
		b = codec.AppendU8(b, scalerRowNorm)
		return codec.AppendU8(b, uint8(t.P)), nil
	case *QuantileBinning:
		b = codec.AppendU8(b, scalerQuantileBinning)
		return appendEdges(b, t.Bins, t.edges), nil
	case *OneHotBinning:
		b = codec.AppendU8(b, scalerOneHotBinning)
		return appendEdges(b, t.Bins, t.edges), nil
	default:
		return nil, fmt.Errorf("preprocess: cannot serialize scaler %T", s)
	}
}

// DecodeScaler reconstructs a fitted scaler written by AppendScaler.
func DecodeScaler(r *codec.Reader) (Scaler, error) {
	tag := r.U8()
	var s Scaler
	switch tag {
	case scalerIdentity:
		s = &Identity{}
	case scalerStandard:
		t := &Standard{}
		t.mean = r.F64s(maxScalerFeatures)
		t.std = r.F64s(maxScalerFeatures)
		s = t
	case scalerMinMax:
		t := &MinMax{}
		t.min = r.F64s(maxScalerFeatures)
		t.span = r.F64s(maxScalerFeatures)
		s = t
	case scalerMaxAbs:
		t := &MaxAbs{}
		t.scale = r.F64s(maxScalerFeatures)
		s = t
	case scalerRowNorm:
		s = &RowNorm{P: int(r.U8())}
	case scalerQuantileBinning:
		t := &QuantileBinning{}
		t.Bins, t.edges = readEdges(r)
		s = t
	case scalerOneHotBinning:
		t := &OneHotBinning{}
		t.Bins, t.edges = readEdges(r)
		s = t
	default:
		if err := r.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: unknown scaler tag %d", codec.ErrCorrupt, tag)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

func appendEdges(b []byte, bins int, edges [][]float64) []byte {
	b = codec.AppendU32(b, uint32(bins))
	b = codec.AppendU32(b, uint32(len(edges)))
	for _, col := range edges {
		b = codec.AppendF64s(b, col)
	}
	return b
}

func readEdges(r *codec.Reader) (bins int, edges [][]float64) {
	bins = int(r.U32())
	if r.Err() == nil && bins > maxScalerBins {
		r.Fail("bins %d over limit %d", bins, maxScalerBins)
		return 0, nil
	}
	// Each column carries at least its own 4-byte count.
	n := r.Count(maxScalerFeatures, 4)
	if r.Err() != nil || n == 0 {
		return bins, nil
	}
	edges = make([][]float64, n)
	for j := range edges {
		edges[j] = r.F64s(maxScalerBins)
	}
	return bins, edges
}
