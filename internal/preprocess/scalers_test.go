package preprocess

import (
	"math"
	"testing"
	"testing/quick"

	"mlaasbench/internal/rng"
)

var trainRows = [][]float64{
	{1, -10},
	{2, 0},
	{3, 10},
	{4, 20},
}

func TestNewResolvesAllNames(t *testing.T) {
	for _, name := range append(Names(), "identity", "binning", "gaussian", "") {
		s, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s == nil {
			t.Fatalf("New(%q) returned nil", name)
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Fatal("expected error for unknown scaler")
	}
}

func TestIdentityPassThrough(t *testing.T) {
	s := &Identity{}
	s.Fit(trainRows)
	out := s.Transform(trainRows)
	for i := range trainRows {
		for j := range trainRows[i] {
			if out[i][j] != trainRows[i][j] {
				t.Fatal("identity modified data")
			}
		}
	}
	// Must copy, not alias.
	out[0][0] = 999
	if trainRows[0][0] == 999 {
		t.Fatal("identity aliases input")
	}
}

func TestStandardScaler(t *testing.T) {
	s := &Standard{}
	s.Fit(trainRows)
	out := s.Transform(trainRows)
	for j := 0; j < 2; j++ {
		mean, variance := 0.0, 0.0
		for i := range out {
			mean += out[i][j]
		}
		mean /= float64(len(out))
		for i := range out {
			d := out[i][j] - mean
			variance += d * d
		}
		variance /= float64(len(out))
		if math.Abs(mean) > 1e-10 {
			t.Fatalf("feature %d mean %v after standardization", j, mean)
		}
		if math.Abs(variance-1) > 1e-10 {
			t.Fatalf("feature %d variance %v after standardization", j, variance)
		}
	}
}

func TestStandardScalerConstantColumn(t *testing.T) {
	s := &Standard{}
	rows := [][]float64{{5, 1}, {5, 2}, {5, 3}}
	s.Fit(rows)
	out := s.Transform(rows)
	for i := range out {
		if math.IsNaN(out[i][0]) || math.IsInf(out[i][0], 0) {
			t.Fatal("constant column produced NaN/Inf")
		}
	}
}

func TestStandardUsesTrainStatsOnly(t *testing.T) {
	s := &Standard{}
	s.Fit(trainRows)
	test := [][]float64{{100, 100}}
	out := s.Transform(test)
	// (100 - 2.5) / std(1..4): definitely not zero-centered — proving test
	// rows don't influence the statistics.
	if out[0][0] < 10 {
		t.Fatalf("test transform %v looks like it leaked test stats", out[0][0])
	}
}

func TestMinMax(t *testing.T) {
	s := &MinMax{}
	s.Fit(trainRows)
	out := s.Transform(trainRows)
	for i := range out {
		for j := range out[i] {
			if out[i][j] < 0 || out[i][j] > 1 {
				t.Fatalf("minmax value %v outside [0,1]", out[i][j])
			}
		}
	}
	if out[0][0] != 0 || out[3][0] != 1 {
		t.Fatalf("extremes not mapped to 0/1: %v %v", out[0][0], out[3][0])
	}
}

func TestMaxAbs(t *testing.T) {
	s := &MaxAbs{}
	s.Fit([][]float64{{-4, 2}, {2, -8}})
	out := s.Transform([][]float64{{-4, 2}, {2, -8}})
	if out[0][0] != -1 || out[1][1] != -1 {
		t.Fatalf("maxabs extremes %v %v", out[0][0], out[1][1])
	}
	if out[1][0] != 0.5 || out[0][1] != 0.25 {
		t.Fatalf("maxabs scaling wrong: %v", out)
	}
}

func TestRowNormL2(t *testing.T) {
	s := &RowNorm{P: 2}
	out := s.Transform([][]float64{{3, 4}, {0, 0}})
	if math.Abs(math.Hypot(out[0][0], out[0][1])-1) > 1e-12 {
		t.Fatalf("row not unit norm: %v", out[0])
	}
	// Zero rows must stay zero, not NaN.
	if out[1][0] != 0 || out[1][1] != 0 {
		t.Fatalf("zero row mangled: %v", out[1])
	}
}

func TestRowNormL1(t *testing.T) {
	s := &RowNorm{P: 1}
	out := s.Transform([][]float64{{2, -2}})
	if math.Abs(out[0][0]-0.5) > 1e-12 || math.Abs(out[0][1]+0.5) > 1e-12 {
		t.Fatalf("l1 normalization wrong: %v", out[0])
	}
}

func TestQuantileBinning(t *testing.T) {
	q := &QuantileBinning{Bins: 4}
	var rows [][]float64
	for i := 0; i < 100; i++ {
		rows = append(rows, []float64{float64(i)})
	}
	q.Fit(rows)
	out := q.Transform(rows)
	// Values must be integer bin indices 0..3 and monotone in the input.
	prev := -1.0
	for i := range out {
		v := out[i][0]
		if v != math.Trunc(v) || v < 0 || v > 3 {
			t.Fatalf("bin index %v", v)
		}
		if v < prev {
			t.Fatal("binning not monotone")
		}
		prev = v
	}
	if out[0][0] == out[99][0] {
		t.Fatal("binning collapsed all values")
	}
}

func TestQuantileBinningMakesLRNonLinearReady(t *testing.T) {
	// A radial feature |x| binned becomes monotone-separable: the key
	// behaviour behind Amazon's CIRCLE boundary (Fig 13). Here we simply
	// check bins spread radius information across distinct values.
	r := rng.New(1)
	var rows [][]float64
	for i := 0; i < 200; i++ {
		rows = append(rows, []float64{r.NormFloat64()})
	}
	q := &QuantileBinning{Bins: 8}
	q.Fit(rows)
	out := q.Transform(rows)
	distinct := map[float64]bool{}
	for _, row := range out {
		distinct[row[0]] = true
	}
	if len(distinct) < 6 {
		t.Fatalf("only %d distinct bins", len(distinct))
	}
}

func TestOneHotBinningShape(t *testing.T) {
	o := &OneHotBinning{Bins: 4}
	r := rng.New(7)
	var rows [][]float64
	for i := 0; i < 50; i++ {
		rows = append(rows, []float64{r.NormFloat64(), r.NormFloat64()})
	}
	o.Fit(rows)
	out := o.Transform(rows)
	if len(out[0]) != 8 {
		t.Fatalf("one-hot width %d, want 2 features × 4 bins = 8", len(out[0]))
	}
	// Each original feature contributes exactly one hot bit.
	for i, row := range out {
		for f := 0; f < 2; f++ {
			sum := 0.0
			for b := 0; b < 4; b++ {
				v := row[f*4+b]
				if v != 0 && v != 1 {
					t.Fatalf("non-indicator value %v", v)
				}
				sum += v
			}
			if sum != 1 {
				t.Fatalf("row %d feature %d has %v hot bits", i, f, sum)
			}
		}
	}
}

func TestOneHotBinningGeneralizes(t *testing.T) {
	// Out-of-range test values must still land in a valid bin.
	o := &OneHotBinning{Bins: 5}
	var rows [][]float64
	for i := 0; i < 20; i++ {
		rows = append(rows, []float64{float64(i)})
	}
	o.Fit(rows)
	out := o.Transform([][]float64{{-1000}, {1000}})
	for _, row := range out {
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if sum != 1 {
			t.Fatalf("out-of-range value produced %v hot bits", sum)
		}
	}
}

// Property: scalers never produce NaN/Inf from finite input and never change
// the shape.
func TestQuickScalersFinite(t *testing.T) {
	names := append(Names(), "binning")
	f := func(seed uint64, scalerIdx uint8) bool {
		name := names[int(scalerIdx)%len(names)]
		s, err := New(name)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		n, d := 2+r.Intn(30), 1+r.Intn(8)
		rows := make([][]float64, n)
		for i := range rows {
			row := make([]float64, d)
			for j := range row {
				row[j] = r.Normal(0, 100)
			}
			rows[i] = row
		}
		s.Fit(rows)
		out := s.Transform(rows)
		if len(out) != n {
			return false
		}
		for i := range out {
			if len(out[i]) != d {
				return false
			}
			for _, v := range out[i] {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
