package service_test

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mlaasbench/internal/service"
)

// Failure-injection tests: the service must answer malformed traffic with
// honest status codes, never panics or hangs.

func robustServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(service.NewServer(func(string, ...any) {}).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func TestMalformedJSONUpload(t *testing.T) {
	srv := robustServer(t)
	resp, err := http.Post(srv.URL+"/v1/platforms/local/datasets", "application/json",
		strings.NewReader(`{"name": "x", "x": [[1,`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated JSON got %d, want 400", resp.StatusCode)
	}
}

func TestMalformedCSVUpload(t *testing.T) {
	srv := robustServer(t)
	for _, body := range []string{
		"",                       // empty
		"f0\n1\n",                // no label column
		"f0,label\nabc,1\n",      // non-numeric feature
		"f0,label\n1,7\n",        // invalid label
		"f0,label\n1,0\n2,1,3\n", // ragged
	} {
		resp, err := http.Post(srv.URL+"/v1/platforms/local/datasets", "text/csv", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("csv %q got %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestWrongMethods(t *testing.T) {
	srv := robustServer(t)
	cases := []struct {
		method, path string
	}{
		{http.MethodDelete, "/v1/platforms"},
		{http.MethodGet, "/v1/platforms/local/datasets"},
		{http.MethodPut, "/v1/platforms/local/models"},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, srv.URL+c.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed && resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s got %d, want 405/404", c.method, c.path, resp.StatusCode)
		}
	}
}

func TestTrainOnMissingDataset(t *testing.T) {
	srv := robustServer(t)
	resp, err := http.Post(srv.URL+"/v1/platforms/local/models", "application/json",
		strings.NewReader(`{"dataset": "ds-999", "classifier": "logreg"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("train on missing dataset got %d, want 404", resp.StatusCode)
	}
}

func TestPredictEmptyInstances(t *testing.T) {
	srv := robustServer(t)
	// Upload + train a real model first.
	up, err := http.Post(srv.URL+"/v1/platforms/local/datasets", "text/csv",
		strings.NewReader("f0,label\n1,0\n2,0\n3,1\n4,1\n5,0\n6,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	up.Body.Close()
	tr, err := http.Post(srv.URL+"/v1/platforms/local/models", "application/json",
		strings.NewReader(`{"dataset": "ds-1", "classifier": "logreg"}`))
	if err != nil {
		t.Fatal(err)
	}
	tr.Body.Close()
	resp, err := http.Post(srv.URL+"/v1/platforms/local/models/m-2/predictions", "application/json",
		strings.NewReader(`{"instances": []}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty instances got %d, want 400", resp.StatusCode)
	}
}

func TestUnknownPlatformEverywhere(t *testing.T) {
	srv := robustServer(t)
	paths := []string{
		"/v1/platforms/watson/datasets",
		"/v1/platforms/watson/models",
		"/v1/platforms/watson/models/m-1/predictions",
	}
	for _, p := range paths {
		resp, err := http.Post(srv.URL+p, "application/json", strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s got %d, want 404", p, resp.StatusCode)
		}
	}
}

func TestConcurrentUploadsAndTrains(t *testing.T) {
	srv := robustServer(t)
	const workers = 8
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			resp, err := http.Post(srv.URL+"/v1/platforms/bigml/datasets", "text/csv",
				strings.NewReader("f0,f1,label\n1,0,0\n2,1,0\n3,0,1\n4,1,1\n5,0,0\n6,1,1\n"))
			if err != nil {
				errc <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				errc <- nil
			}
			errc <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
