package service

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mlaasbench/internal/platforms"
	"mlaasbench/internal/telemetry"
)

// stubModel is a FittedModel that remembers which fit produced it.
type stubModel struct{ id int }

func (m *stubModel) Predict(points [][]float64) []int { return make([]int, len(points)) }

func testCache(capacity int) (*modelCache, *telemetry.Registry) {
	reg := telemetry.NewRegistry()
	return newModelCache(capacity, func() *telemetry.Registry { return reg }), reg
}

func counter(reg *telemetry.Registry, name string) int64 {
	return reg.Counter(name).Value()
}

func TestModelCacheHitServesResidentModel(t *testing.T) {
	c, reg := testCache(4)
	fits := 0
	fit := func() (platforms.FittedModel, error) { fits++; return &stubModel{id: fits}, nil }

	m1, refit, err := c.get("k", fit)
	if err != nil || !refit {
		t.Fatalf("first get: refit=%v err=%v", refit, err)
	}
	m2, refit, err := c.get("k", fit)
	if err != nil || refit {
		t.Fatalf("second get: refit=%v err=%v", refit, err)
	}
	if m1 != m2 || fits != 1 {
		t.Fatalf("resident model not reused: %d fits", fits)
	}
	if h, m := counter(reg, telemetry.ModelCacheHits), counter(reg, telemetry.ModelCacheMisses); h != 1 || m != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", h, m)
	}
}

func TestModelCacheLRUEvictionOrder(t *testing.T) {
	c, reg := testCache(2)
	fit := func(id int) func() (platforms.FittedModel, error) {
		return func() (platforms.FittedModel, error) { return &stubModel{id: id}, nil }
	}
	if _, _, err := c.get("a", fit(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.get("b", fit(2)); err != nil {
		t.Fatal(err)
	}
	// Touch "a" so "b" becomes the LRU tail, then overflow.
	if _, refit, _ := c.get("a", fit(0)); refit {
		t.Fatal("touching a resident model must not refit")
	}
	if _, _, err := c.get("c", fit(3)); err != nil {
		t.Fatal(err)
	}
	if ev := counter(reg, telemetry.ModelCacheEvictions); ev != 1 {
		t.Fatalf("evictions=%d, want 1", ev)
	}
	if c.size() != 2 {
		t.Fatalf("size=%d, want 2", c.size())
	}
	// "a" survived, "b" was evicted and transparently refits.
	if _, refit, _ := c.get("a", fit(0)); refit {
		t.Fatal("a should still be resident")
	}
	if _, refit, _ := c.get("b", fit(4)); !refit {
		t.Fatal("evicted b must refit")
	}
}

func TestModelCacheZeroCapacityAlwaysRefits(t *testing.T) {
	c, reg := testCache(0)
	fits := 0
	fit := func() (platforms.FittedModel, error) { fits++; return &stubModel{id: fits}, nil }
	for i := 0; i < 3; i++ {
		if _, refit, err := c.get("k", fit); err != nil || !refit {
			t.Fatalf("get %d: refit=%v err=%v", i, refit, err)
		}
	}
	if fits != 3 || c.size() != 0 {
		t.Fatalf("fits=%d size=%d, want 3/0 with the cache disabled", fits, c.size())
	}
	if h := counter(reg, telemetry.ModelCacheHits); h != 0 {
		t.Fatalf("hits=%d with the cache disabled", h)
	}
}

func TestModelCacheErrorsAreNotCached(t *testing.T) {
	c, _ := testCache(4)
	calls := 0
	fit := func() (platforms.FittedModel, error) {
		calls++
		if calls == 1 {
			return nil, errFirst
		}
		return &stubModel{}, nil
	}
	if _, _, err := c.get("k", fit); err == nil {
		t.Fatal("first fit must fail")
	}
	if m, _, err := c.get("k", fit); err != nil || m == nil {
		t.Fatalf("retry after failed fit: %v", err)
	}
	if calls != 2 {
		t.Fatalf("calls=%d, want 2 (error retried, success cached)", calls)
	}
}

var errFirst = &trainError{"transient"}

type trainError struct{ msg string }

func (e *trainError) Error() string { return e.msg }

// TestModelCacheSingleflightCoalesces proves the dedup deterministically:
// one fit blocks while followers for the same key arrive; every follower is
// counted as coalesced, waits, and shares the single fitted model.
func TestModelCacheSingleflightCoalesces(t *testing.T) {
	c, reg := testCache(4)
	const followers = 5

	block := make(chan struct{})
	started := make(chan struct{})
	var fits atomic.Int32
	leaderModel := &stubModel{id: 99}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m, refit, err := c.get("k", func() (platforms.FittedModel, error) {
			fits.Add(1)
			close(started)
			<-block
			return leaderModel, nil
		})
		if err != nil || !refit || m != leaderModel {
			t.Errorf("leader: m=%v refit=%v err=%v", m, refit, err)
		}
	}()
	<-started

	results := make(chan platforms.FittedModel, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, refit, err := c.get("k", func() (platforms.FittedModel, error) {
				fits.Add(1)
				return &stubModel{}, nil
			})
			if err != nil || !refit {
				t.Errorf("follower: refit=%v err=%v", refit, err)
			}
			results <- m
		}()
	}
	// Wait until every follower has registered against the in-flight fit,
	// then release the leader.
	deadline := time.Now().Add(5 * time.Second)
	for counter(reg, telemetry.ModelCacheCoalesced) < followers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d coalesced after 5s", counter(reg, telemetry.ModelCacheCoalesced))
		}
		time.Sleep(time.Millisecond)
	}
	close(block)
	wg.Wait()
	close(results)

	for m := range results {
		if m != leaderModel {
			t.Fatal("follower received a different model than the leader fitted")
		}
	}
	if got := fits.Load(); got != 1 {
		t.Fatalf("%d fits ran, want 1", got)
	}
	if co, mi := counter(reg, telemetry.ModelCacheCoalesced), counter(reg, telemetry.ModelCacheMisses); co != followers || mi != 1 {
		t.Fatalf("coalesced=%d misses=%d, want %d/1", co, mi, followers)
	}
}
