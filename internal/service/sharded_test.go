package service_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"mlaasbench/internal/client"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/service"
	"mlaasbench/internal/telemetry"
)

// TestShardedPredictMatchesSerial drives the same batch through servers at
// several predict-shard settings (including the per-CPU default) and
// requires byte-identical labels, plus a recorded batch-size observation.
// The per-row reference comes from size-1 requests against the serial
// server, so the sharded path is also checked against the unbatched one.
func TestShardedPredictMatchesSerial(t *testing.T) {
	sp := testSplit(t)
	ctx := context.Background()
	cfg := pipeline.Config{Classifier: "mlp", Params: map[string]any{"max_iter": 10}}

	predictAll := func(shards int) ([]int, *telemetry.Registry) {
		reg := telemetry.NewRegistry()
		s := service.NewServer(func(string, ...any) {}).WithRegistry(reg).WithPredictShards(shards)
		srv := httptest.NewServer(s.Handler())
		defer srv.Close()
		c := client.New(srv.URL)
		dsID, err := c.Upload(ctx, "local", sp.Train)
		if err != nil {
			t.Fatal(err)
		}
		mID, err := c.Train(ctx, "local", dsID, cfg, 7)
		if err != nil {
			t.Fatal(err)
		}
		labels, err := c.Predict(ctx, "local", mID, sp.Test.X)
		if err != nil {
			t.Fatal(err)
		}
		return labels, reg
	}

	serial, _ := predictAll(1)
	for _, shards := range []int{0, 2, 5} {
		sharded, reg := predictAll(shards)
		mustSameLabels(t, "sharded predict", sharded, serial)
		if n := reg.Histogram(telemetry.PredictBatchSizeHistogram).Count(); n == 0 {
			t.Fatalf("shards=%d: no batch-size observation recorded", shards)
		}
	}

	// Per-row reference: one request per instance on a serial server.
	reg := telemetry.NewRegistry()
	s := service.NewServer(func(string, ...any) {}).WithRegistry(reg).WithPredictShards(1)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := client.New(srv.URL)
	dsID, err := c.Upload(ctx, "local", sp.Train)
	if err != nil {
		t.Fatal(err)
	}
	mID, err := c.Train(ctx, "local", dsID, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	perRow := make([]int, 0, len(sp.Test.X))
	for _, inst := range sp.Test.X {
		l, err := c.Predict(ctx, "local", mID, [][]float64{inst})
		if err != nil {
			t.Fatal(err)
		}
		perRow = append(perRow, l...)
	}
	mustSameLabels(t, "per-row vs batched", perRow, serial)
}
