package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mlaasbench/internal/client"
	"mlaasbench/internal/dataset"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/rng"
	"mlaasbench/internal/service"
	"mlaasbench/internal/synth"
)

func newTestServer(t *testing.T) (*httptest.Server, *client.Client) {
	t.Helper()
	srv := httptest.NewServer(service.NewServer(func(string, ...any) {}).Handler())
	t.Cleanup(srv.Close)
	return srv, client.New(srv.URL)
}

func testSplit(t *testing.T) dataset.Split {
	t.Helper()
	ds := synth.GenerateClean(synth.Spec{Name: "svc", Gen: synth.GenLinear, N: 120, D: 3, Noise: 0.2}, synth.Quick, 1)
	return ds.StratifiedSplit(0.7, rng.New(2))
}

func TestListPlatforms(t *testing.T) {
	_, c := newTestServer(t)
	infos, err := c.Platforms(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 7 {
		t.Fatalf("%d platforms", len(infos))
	}
	if infos[0].Name != "google" || !infos[0].BlackBox {
		t.Fatalf("first platform %+v", infos[0])
	}
	if infos[6].Name != "local" || infos[6].Classifiers != 10 {
		t.Fatalf("last platform %+v", infos[6])
	}
}

func TestSurfaceEndpoint(t *testing.T) {
	_, c := newTestServer(t)
	doc, err := c.Surface(context.Background(), "microsoft")
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Feats) != 8 || len(doc.Classifiers) != 7 {
		t.Fatalf("microsoft surface %d feats, %d classifiers", len(doc.Feats), len(doc.Classifiers))
	}
	if _, err := c.Surface(context.Background(), "watson"); err == nil {
		t.Fatal("expected 404")
	}
}

func TestEndToEndMeasurement(t *testing.T) {
	_, c := newTestServer(t)
	sp := testSplit(t)
	cfg := pipeline.Config{Classifier: "logreg", Params: map[string]any{}}
	scores, err := c.Measure(context.Background(), "local", sp, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if scores.F1 < 0.7 {
		t.Fatalf("F1 %.3f over the wire on separable data", scores.F1)
	}
}

func TestBlackBoxOverHTTP(t *testing.T) {
	_, c := newTestServer(t)
	sp := testSplit(t)
	scores, err := c.Measure(context.Background(), "google", sp, pipeline.Config{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if scores.F1 < 0.7 {
		t.Fatalf("google F1 %.3f", scores.F1)
	}
}

func TestBlackBoxRejectsConfig(t *testing.T) {
	_, c := newTestServer(t)
	sp := testSplit(t)
	ctx := context.Background()
	dsID, err := c.Upload(ctx, "abm", sp.Train)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.Config{Classifier: "logreg", Params: map[string]any{}}
	if _, err := c.Train(ctx, "abm", dsID, cfg, 1); err == nil {
		t.Fatal("black box must reject explicit configuration")
	}
}

func TestTrainRejectsForeignClassifier(t *testing.T) {
	_, c := newTestServer(t)
	sp := testSplit(t)
	ctx := context.Background()
	dsID, err := c.Upload(ctx, "amazon", sp.Train)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.Config{Classifier: "randomforest", Params: map[string]any{}}
	if _, err := c.Train(ctx, "amazon", dsID, cfg, 1); err == nil {
		t.Fatal("amazon must reject classifiers outside its surface")
	}
}

func TestTrainRejectsUnknownParam(t *testing.T) {
	_, c := newTestServer(t)
	sp := testSplit(t)
	ctx := context.Background()
	dsID, _ := c.Upload(ctx, "amazon", sp.Train)
	cfg := pipeline.Config{Classifier: "logreg", Params: map[string]any{"gamma": 1.0}}
	if _, err := c.Train(ctx, "amazon", dsID, cfg, 1); err == nil {
		t.Fatal("unexposed parameter must be rejected")
	}
}

func TestUploadRejectsMissingValues(t *testing.T) {
	srv, _ := newTestServer(t)
	body := `{"name":"m","x":[[1],[null]],"y":[0,1]}`
	resp, err := http.Post(srv.URL+"/v1/platforms/local/datasets", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// null decodes to 0 actually... send NaN via CSV instead: empty field.
	csv := "f0,label\n1,0\n,1\n"
	resp2, err := http.Post(srv.URL+"/v1/platforms/local/datasets", "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing-value upload got %d, want 400", resp2.StatusCode)
	}
}

func TestUploadCSV(t *testing.T) {
	srv, c := newTestServer(t)
	sp := testSplit(t)
	var buf bytes.Buffer
	if err := sp.Train.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/platforms/local/datasets", "text/csv", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("csv upload status %d", resp.StatusCode)
	}
	var up service.UploadResponse
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	if up.Samples != sp.Train.N() || up.Columns != sp.Train.D() {
		t.Fatalf("upload echo %+v", up)
	}
	// The CSV-uploaded dataset must be trainable.
	cfg := pipeline.Config{Classifier: "logreg", Params: map[string]any{}}
	if _, err := c.Train(context.Background(), "local", up.ID, cfg, 1); err != nil {
		t.Fatal(err)
	}
}

func TestPredictValidatesWidth(t *testing.T) {
	_, c := newTestServer(t)
	sp := testSplit(t)
	ctx := context.Background()
	dsID, _ := c.Upload(ctx, "local", sp.Train)
	cfg := pipeline.Config{Classifier: "logreg", Params: map[string]any{}}
	mID, err := c.Train(ctx, "local", dsID, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Predict(ctx, "local", mID, [][]float64{{1, 2}}); err == nil {
		t.Fatal("expected width mismatch error")
	}
}

func TestPredictUnknownModel(t *testing.T) {
	_, c := newTestServer(t)
	if _, err := c.Predict(context.Background(), "local", "m-999", [][]float64{{1, 2, 3}}); err == nil {
		t.Fatal("expected 404")
	}
}

func TestModelsAreDeterministicOverHTTP(t *testing.T) {
	_, c := newTestServer(t)
	sp := testSplit(t)
	ctx := context.Background()
	dsID, _ := c.Upload(ctx, "local", sp.Train)
	cfg := pipeline.Config{Classifier: "randomforest", Params: map[string]any{"n_estimators": 5}}
	mID, err := c.Train(ctx, "local", dsID, cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Predict(ctx, "local", mID, sp.Test.X)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Predict(ctx, "local", mID, sp.Test.X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same model id produced different predictions")
		}
	}
}

func TestDatasetsAreScopedPerPlatform(t *testing.T) {
	_, c := newTestServer(t)
	sp := testSplit(t)
	ctx := context.Background()
	dsID, _ := c.Upload(ctx, "local", sp.Train)
	cfg := pipeline.Config{Classifier: "logreg", Params: map[string]any{}}
	if _, err := c.Train(ctx, "bigml", dsID, cfg, 1); err == nil {
		t.Fatal("dataset ids must not leak across platforms")
	}
}
