package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mlaasbench/internal/telemetry"
)

func newTestAdmission(concurrency, queue int) (*admission, *telemetry.Registry) {
	reg := telemetry.NewRegistry()
	return newAdmission("predict", concurrency, queue, func() *telemetry.Registry { return reg }), reg
}

// TestAdmissionShedsWhenFull: one slot, zero queue. The second concurrent
// request sheds instead of waiting; after release the slot is reusable.
func TestAdmissionShedsWhenFull(t *testing.T) {
	a, reg := newTestAdmission(1, 0)
	ctx := context.Background()

	release, ok := a.admit(ctx)
	if !ok {
		t.Fatal("first admit should get the free slot")
	}
	if _, ok := a.admit(ctx); ok {
		t.Fatal("second admit should shed with the slot held and queue=0")
	}
	release()
	release2, ok := a.admit(ctx)
	if !ok {
		t.Fatal("admit after release should succeed")
	}
	release2()

	if n := reg.Counter(telemetry.AdmissionAdmittedTotal, "route", "predict").Value(); n != 2 {
		t.Errorf("admitted=%d, want 2", n)
	}
	if n := reg.Counter(telemetry.AdmissionShedTotal, "route", "predict").Value(); n != 1 {
		t.Errorf("shed=%d, want 1", n)
	}
	if d := reg.Gauge(telemetry.AdmissionQueueDepth, "route", "predict").Value(); d != 0 {
		t.Errorf("queue depth=%d, want 0 at rest", d)
	}
}

// TestAdmissionQueueWaitsForSlot: one slot, one queue position. A waiter
// parks in the queue (visible on the depth gauge), is admitted when the
// slot frees, and a third request arriving while the queue is occupied
// sheds immediately.
func TestAdmissionQueueWaitsForSlot(t *testing.T) {
	a, reg := newTestAdmission(1, 1)
	ctx := context.Background()
	depth := reg.Gauge(telemetry.AdmissionQueueDepth, "route", "predict")

	release, ok := a.admit(ctx)
	if !ok {
		t.Fatal("first admit should succeed")
	}
	admitted := make(chan func(), 1)
	go func() {
		rel, ok := a.admit(ctx)
		if !ok {
			admitted <- nil
			return
		}
		admitted <- rel
	}()
	waitFor(t, "waiter to park in the queue", func() bool { return depth.Value() == 1 })

	if _, ok := a.admit(ctx); ok {
		t.Fatal("third admit should shed: slot held, queue occupied")
	}

	release()
	select {
	case rel := <-admitted:
		if rel == nil {
			t.Fatal("queued waiter was shed instead of admitted")
		}
		rel()
	case <-time.After(5 * time.Second):
		t.Fatal("queued waiter never admitted after release")
	}
	if d := depth.Value(); d != 0 {
		t.Errorf("queue depth=%d, want 0 after drain", d)
	}
	if n := reg.Counter(telemetry.AdmissionShedTotal, "route", "predict").Value(); n != 1 {
		t.Errorf("shed=%d, want 1", n)
	}
}

// TestAdmissionContextCancelWhileQueued: a queued waiter whose context dies
// counts as shed and leaves the gauge clean.
func TestAdmissionContextCancelWhileQueued(t *testing.T) {
	a, reg := newTestAdmission(1, 4)
	release, ok := a.admit(context.Background())
	if !ok {
		t.Fatal("first admit should succeed")
	}
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, ok := a.admit(ctx); ok {
		t.Fatal("admit with dead context should shed")
	}
	if n := reg.Counter(telemetry.AdmissionShedTotal, "route", "predict").Value(); n != 1 {
		t.Errorf("shed=%d, want 1", n)
	}
	if d := reg.Gauge(telemetry.AdmissionQueueDepth, "route", "predict").Value(); d != 0 {
		t.Errorf("queue depth=%d, want 0 after cancellation", d)
	}
}

// TestAdmissionShedHTTP drives the gate through the HTTP stack: with the
// single slot occupied and no queue, a predict request gets 503 with the
// Retry-After hint and the structured "overloaded" code — before any
// platform or model lookup runs.
func TestAdmissionShedHTTP(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := NewServer(func(string, ...any) {}).WithRegistry(reg).WithAdmission(1, 0)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	s.admit.slots <- struct{}{} // occupy the only execution slot
	defer func() { <-s.admit.slots }()

	resp, err := http.Post(srv.URL+"/v1/platforms/local/models/nope/predictions",
		"application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After %q, want \"1\"", ra)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var env apiError
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("shed envelope is not JSON: %v (%q)", err, raw)
	}
	if env.Code != codeOverloaded {
		t.Errorf("code %q, want %q", env.Code, codeOverloaded)
	}
	if n := reg.Counter(telemetry.AdmissionShedTotal, "route", "predict").Value(); n != 1 {
		t.Errorf("shed counter=%d, want 1", n)
	}
}

// TestWithAdmissionDisabled: concurrency <= 0 leaves the route ungated.
func TestWithAdmissionDisabled(t *testing.T) {
	s := NewServer(func(string, ...any) {}).WithAdmission(0, 10)
	if s.admit != nil {
		t.Fatal("admission gate installed despite concurrency=0")
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
