package service

import (
	"container/list"
	"errors"
	"sync"
	"time"

	"mlaasbench/internal/platforms"
	"mlaasbench/internal/store"
	"mlaasbench/internal/telemetry"
)

// DefaultModelCacheModels bounds the fitted-model LRU when the server is
// constructed. Fitted models at this repo's scale are small (weights, tree
// nodes, binner edges — kilobytes to a few megabytes each), so the default
// comfortably covers a busy multi-tenant mix while keeping worst-case
// memory proportional to the bound, never to request history.
const DefaultModelCacheModels = 128

// modelCache is the fitted-model store behind the serving path: a bounded
// LRU keyed by the (platform, dataset, config, seed) model identity, with
// singleflight dedup so concurrent identical requests share one fit instead
// of training the same model in parallel, and an optional disk tier
// (internal/store) beneath the LRU: fitted models are persisted as MLMF
// artifacts, evicted models are demoted to disk instead of dropped, and a
// fill checks the disk tier before paying for a fit.
//
// Correctness never depends on cache state. The stored model *description*
// remains the durable identity (the training substrate is deterministic, so
// the same key always refits to the same model, and a disk artifact decodes
// to a model that predicts byte-identically); the cache only removes
// redundant fitting. An evicted model transparently reloads or refits on its
// next use, and a capacity of zero disables residency entirely — every
// request refits, which is exactly the pre-cache behaviour.
type modelCache struct {
	// reg is read per operation rather than captured at construction so the
	// cache follows Server.WithRegistry redirection.
	reg func() *telemetry.Registry

	// store is the optional disk tier; nil keeps the cache RAM-only.
	// Set before serving starts, read-only afterwards.
	store *store.Store

	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*fitCall
}

// cacheItem is one resident model; the key is kept for map cleanup when the
// LRU tail is dropped.
type cacheItem struct {
	key   string
	model platforms.FittedModel
}

// fitCall is one in-flight fill. Followers block on done and share the
// result; model, refit and err are written before done closes and read only
// after.
type fitCall struct {
	done  chan struct{}
	model platforms.FittedModel
	refit bool
	err   error
}

func newModelCache(capacity int, reg func() *telemetry.Registry) *modelCache {
	return &modelCache{
		reg:      reg,
		capacity: capacity,
		ll:       list.New(),
		items:    map[string]*list.Element{},
		inflight: map[string]*fitCall{},
	}
}

// setCapacity rebounds the LRU, evicting immediately if it shrank. Zero (or
// negative) disables caching: every get runs its own fit.
func (c *modelCache) setCapacity(n int) {
	c.mu.Lock()
	c.capacity = n
	demoted := c.evictLocked()
	c.mu.Unlock()
	c.demote(demoted)
}

// evictLocked drops LRU tails until the cache fits its capacity, returning
// the dropped items so the caller can demote them to the disk tier outside
// the lock (artifact encoding must not serialize the serving path).
func (c *modelCache) evictLocked() []*cacheItem {
	var demoted []*cacheItem
	for c.ll.Len() > c.capacity && c.ll.Len() > 0 {
		back := c.ll.Back()
		c.ll.Remove(back)
		item := back.Value.(*cacheItem)
		delete(c.items, item.key)
		c.reg().Counter(telemetry.ModelCacheEvictions).Inc()
		if c.store != nil {
			demoted = append(demoted, item)
		}
	}
	return demoted
}

// demote hands evicted models to the disk tier. Artifacts are deterministic
// per key and writes are atomic, so if write-through already persisted the
// key (the common case) the existing artifact satisfies the demotion.
func (c *modelCache) demote(items []*cacheItem) {
	for _, item := range items {
		if err := c.store.PutModel(item.key, item.model); err == nil {
			c.reg().Counter(telemetry.StoreDemotions).Inc()
		}
	}
}

// get returns the fitted model for key, running the fill at most once
// across concurrent callers of the same key. A fill tries the disk tier
// first (load, no fit) and falls back to fit, persisting the result. refit
// reports whether the caller's latency includes a model fit — a miss that
// actually fitted, or a coalesced wait on one — rather than a cache hit or
// an artifact load; failed fits are never cached, so errors retry
// naturally.
func (c *modelCache) get(key string, fit func() (platforms.FittedModel, error)) (m platforms.FittedModel, refit bool, err error) {
	c.mu.Lock()
	if c.capacity <= 0 {
		c.mu.Unlock()
		m, err := fit()
		return m, true, err
	}
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		m := el.Value.(*cacheItem).model
		c.mu.Unlock()
		c.reg().Counter(telemetry.ModelCacheHits).Inc()
		return m, false, nil
	}
	if call, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		c.reg().Counter(telemetry.ModelCacheCoalesced).Inc()
		<-call.done
		return call.model, call.refit, call.err
	}
	call := &fitCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.mu.Unlock()

	c.fill(key, call, fit)

	c.mu.Lock()
	delete(c.inflight, key)
	var demoted []*cacheItem
	if call.err == nil && c.capacity > 0 {
		if el, ok := c.items[key]; ok {
			// A concurrent warm scan inserted this key while the fill was in
			// flight; keep that copy (artifacts are deterministic, the models
			// are identical) rather than pushing a duplicate element.
			c.ll.MoveToFront(el)
		} else {
			c.items[key] = c.ll.PushFront(&cacheItem{key: key, model: call.model})
		}
		demoted = c.evictLocked()
	}
	close(call.done)
	c.mu.Unlock()
	c.demote(demoted)
	return call.model, call.refit, call.err
}

// fill resolves a key that is neither resident nor in flight: disk tier
// first, then fit. ModelCacheMisses counts only fills that actually ran a
// fit, so a warmed or demoted key re-hits with a miss count of zero.
func (c *modelCache) fill(key string, call *fitCall, fit func() (platforms.FittedModel, error)) {
	if c.store != nil {
		start := time.Now()
		if m, ok, err := c.store.GetModel(key); err == nil && ok {
			c.reg().Counter(telemetry.StoreHits).Inc()
			c.reg().Histogram(telemetry.StoreLoadHistogram, "op", "hit").
				Observe(time.Since(start).Seconds())
			call.model, call.refit = m, false
			return
		}
		// Missing or unreadable artifact: either way the fit below
		// re-creates it, so corruption degrades to a refit, never an error.
		c.reg().Counter(telemetry.StoreMisses).Inc()
	}
	c.reg().Counter(telemetry.ModelCacheMisses).Inc()
	call.model, call.err = fit()
	call.refit = true
	if call.err == nil && c.store != nil {
		// Write-through: persisting at fit time (not just at eviction)
		// makes every fitted model durable, so a restarted replica can warm
		// its cache even if this process never evicted anything.
		_ = c.store.PutModel(key, call.model)
	}
}

// errWarmDone stops the warm scan once the cache is full.
var errWarmDone = errors.New("service: warm capacity reached")

// warm fills the cache from the disk tier up to capacity, returning how
// many models were loaded. Runs at boot before serving starts.
func (c *modelCache) warm() (int, error) {
	if c.store == nil {
		return 0, nil
	}
	n := 0
	err := c.store.Models(func(key string, m platforms.FittedModel, load time.Duration) error {
		c.mu.Lock()
		if c.capacity <= 0 || c.ll.Len() >= c.capacity {
			c.mu.Unlock()
			return errWarmDone
		}
		if _, ok := c.items[key]; ok {
			c.mu.Unlock()
			return nil
		}
		c.items[key] = c.ll.PushFront(&cacheItem{key: key, model: m})
		c.mu.Unlock()
		n++
		c.reg().Counter(telemetry.StoreWarmLoads).Inc()
		c.reg().Histogram(telemetry.StoreLoadHistogram, "op", "warm").
			Observe(load.Seconds())
		return nil
	})
	if errors.Is(err, errWarmDone) {
		err = nil
	}
	return n, err
}

// size reports how many fitted models are resident.
func (c *modelCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
