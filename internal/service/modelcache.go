package service

import (
	"container/list"
	"sync"

	"mlaasbench/internal/platforms"
	"mlaasbench/internal/telemetry"
)

// DefaultModelCacheModels bounds the fitted-model LRU when the server is
// constructed. Fitted models at this repo's scale are small (weights, tree
// nodes, binner edges — kilobytes to a few megabytes each), so the default
// comfortably covers a busy multi-tenant mix while keeping worst-case
// memory proportional to the bound, never to request history.
const DefaultModelCacheModels = 128

// modelCache is the fitted-model store behind the serving path: a bounded
// LRU keyed by the (platform, dataset, config, seed) model identity, with
// singleflight dedup so concurrent identical requests share one fit instead
// of training the same model in parallel.
//
// Correctness never depends on cache state. The stored model *description*
// remains the durable identity (the training substrate is deterministic, so
// the same key always refits to the same model); the cache only removes
// redundant fitting. An evicted model transparently refits on its next use,
// and a capacity of zero disables residency entirely — every request refits,
// which is exactly the pre-cache behaviour.
type modelCache struct {
	// reg is read per operation rather than captured at construction so the
	// cache follows Server.WithRegistry redirection.
	reg func() *telemetry.Registry

	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*fitCall
}

// cacheItem is one resident model; the key is kept for map cleanup when the
// LRU tail is dropped.
type cacheItem struct {
	key   string
	model platforms.FittedModel
}

// fitCall is one in-flight fit. Followers block on done and share the
// result; model and err are written before done closes and read only after.
type fitCall struct {
	done  chan struct{}
	model platforms.FittedModel
	err   error
}

func newModelCache(capacity int, reg func() *telemetry.Registry) *modelCache {
	return &modelCache{
		reg:      reg,
		capacity: capacity,
		ll:       list.New(),
		items:    map[string]*list.Element{},
		inflight: map[string]*fitCall{},
	}
}

// setCapacity rebounds the LRU, evicting immediately if it shrank. Zero (or
// negative) disables caching: every get runs its own fit.
func (c *modelCache) setCapacity(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = n
	c.evictLocked()
}

// evictLocked drops LRU tails until the cache fits its capacity.
func (c *modelCache) evictLocked() {
	for c.ll.Len() > c.capacity && c.ll.Len() > 0 {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheItem).key)
		c.reg().Counter(telemetry.ModelCacheEvictions).Inc()
	}
}

// get returns the fitted model for key, running fit at most once across
// concurrent callers of the same key. refit reports whether the caller's
// latency includes a model fit — a miss or a coalesced wait — rather than a
// pure cache hit; failed fits are never cached, so errors retry naturally.
func (c *modelCache) get(key string, fit func() (platforms.FittedModel, error)) (m platforms.FittedModel, refit bool, err error) {
	c.mu.Lock()
	if c.capacity <= 0 {
		c.mu.Unlock()
		m, err := fit()
		return m, true, err
	}
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		m := el.Value.(*cacheItem).model
		c.mu.Unlock()
		c.reg().Counter(telemetry.ModelCacheHits).Inc()
		return m, false, nil
	}
	if call, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		c.reg().Counter(telemetry.ModelCacheCoalesced).Inc()
		<-call.done
		return call.model, true, call.err
	}
	call := &fitCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.mu.Unlock()

	c.reg().Counter(telemetry.ModelCacheMisses).Inc()
	call.model, call.err = fit()

	c.mu.Lock()
	delete(c.inflight, key)
	if call.err == nil && c.capacity > 0 {
		c.items[key] = c.ll.PushFront(&cacheItem{key: key, model: call.model})
		c.evictLocked()
	}
	close(call.done)
	c.mu.Unlock()
	return call.model, true, call.err
}

// size reports how many fitted models are resident.
func (c *modelCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
