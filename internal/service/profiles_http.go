// The /debug/profiles surface: list the continuous profiler's on-disk
// bundles, fetch one bundle's sidecar, and download individual .pprof
// files — enough for mlaas-profile (or go tool pprof) to work against a
// remote server without shell access to its profile directory.
package service

import (
	"fmt"
	"net/http"
	"os"

	"mlaasbench/internal/profiling"
)

// WithProfileStore exposes a profile bundle ring at /debug/profiles and
// returns the server (chainable). The server only reads the store; the
// continuous profiler that writes it is wired up in the main.
func (s *Server) WithProfileStore(ps *profiling.Store) *Server {
	s.profiles = ps
	return s
}

// profileIndexResponse is the GET /debug/profiles body.
type profileIndexResponse struct {
	Bundles []profiling.Meta `json:"bundles"`
}

func (s *Server) handleProfileIndex(w http.ResponseWriter, _ *http.Request) {
	if s.profiles == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "profiling disabled (start the server with -profile-dir)"})
		return
	}
	metas, err := s.profiles.List()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, profileIndexResponse{Bundles: metas})
}

func (s *Server) handleProfileGet(w http.ResponseWriter, r *http.Request) {
	if s.profiles == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "profiling disabled (start the server with -profile-dir)"})
		return
	}
	id := r.PathValue("bundle")
	meta, err := s.profiles.Get(id)
	if err != nil {
		status := http.StatusNotFound
		if !os.IsNotExist(err) {
			status = http.StatusBadRequest
		}
		writeJSON(w, status, apiError{Error: fmt.Sprintf("bundle %q: %v", id, err)})
		return
	}
	writeJSON(w, http.StatusOK, meta)
}

// handleProfileFetch streams one raw gzipped-proto profile; the store
// validates both path components against traversal.
func (s *Server) handleProfileFetch(w http.ResponseWriter, r *http.Request) {
	if s.profiles == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "profiling disabled (start the server with -profile-dir)"})
		return
	}
	id, kind := r.PathValue("bundle"), r.PathValue("kind")
	path, err := s.profiles.ProfilePath(id, kind)
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%s-%s.pprof", id, kind))
	http.ServeFile(w, r, path)
}
