package service

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// pacer is a serialized token pacer: each admitted request claims the
// next slot on a fixed-interval schedule and sleeps until its slot
// arrives. Unlike a token bucket it never bursts, so measured throughput
// converges to exactly the configured rate.
//
// Its job is to model a *node* of fixed size. The paper's platforms
// sell serving capacity in per-node quota units; a replica with a serve
// budget behaves like one such node regardless of how much CPU the host
// happens to have. That makes cluster scaling measurable on any machine:
// N budget-capped replicas behind the router serve ~N x budget, so the
// loadgen cluster sweep observes the router's scaling behaviour rather
// than the host's core count. Multi-core deployments that want raw
// hardware speed simply leave the budget off.
type pacer struct {
	mu       sync.Mutex
	interval time.Duration
	next     time.Time
}

func newPacer(rps float64) *pacer {
	if rps <= 0 {
		return nil
	}
	return &pacer{interval: time.Duration(float64(time.Second) / rps)}
}

// wait blocks until this request's schedule slot arrives, or the context
// dies. Past slots are not banked: an idle pacer restarts the schedule
// at "now" instead of releasing a burst.
func (p *pacer) wait(ctx context.Context) error {
	p.mu.Lock()
	now := time.Now()
	if p.next.Before(now) {
		p.next = now
	}
	due := p.next
	p.next = p.next.Add(p.interval)
	p.mu.Unlock()
	d := time.Until(due)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return ctx.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// WithServeBudget caps the predict route at rps requests per second and
// returns the server (chainable). Zero or negative removes the cap (the
// default). The cap is a capacity model, not a limiter-for-safety: it
// makes one replica behave like a fixed-size serving node so that
// cluster scaling experiments measure the router and fleet, not the
// host's core count. See the "Cluster serving" README section.
func (s *Server) WithServeBudget(rps float64) *Server {
	s.budget = newPacer(rps)
	return s
}

// paced wraps a handler behind the serve-budget pacer when one is
// configured. Runs inside the admission gate, so a paced server under
// overload still sheds excess load with 503 instead of queueing
// unboundedly on the pacer.
func (s *Server) paced(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if p := s.budget; p != nil {
			if err := p.wait(r.Context()); err != nil {
				// The caller gave up while waiting for capacity.
				s.failCode(w, r, http.StatusServiceUnavailable, codeOverloaded,
					"request canceled while awaiting serve budget: %v", err)
				return
			}
		}
		h(w, r)
	}
}
