package service_test

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"

	"mlaasbench/internal/client"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/service"
	"mlaasbench/internal/telemetry"
)

// newServingServer spins a server with a private registry and the given
// model-cache bound.
func newServingServer(t *testing.T, cacheModels int) (*httptest.Server, *client.Client, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	s := service.NewServer(func(string, ...any) {}).WithRegistry(reg).WithModelCache(cacheModels)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv, client.New(srv.URL), reg
}

func mustSameLabels(t *testing.T, ctx string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d labels, want %d", ctx, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: label %d is %d, want %d", ctx, i, got[i], want[i])
		}
	}
}

// TestServingPathMatchesRefitPath is the HTTP-level equivalence check: the
// same upload/train/predict sequence against a fit-once server and a
// cache-disabled (retrain-per-request) server must produce identical labels,
// across a user platform, Amazon's hidden binning and a black box.
func TestServingPathMatchesRefitPath(t *testing.T) {
	sp := testSplit(t)
	ctx := context.Background()
	cases := []struct {
		platform string
		cfg      pipeline.Config
	}{
		{"local", pipeline.Config{Classifier: "randomforest", Params: map[string]any{"n_estimators": 5}}},
		{"amazon", pipeline.Config{Classifier: "logreg", Params: map[string]any{"max_iter": 20}}},
		{"google", pipeline.Config{}},
	}
	_, cached, cachedReg := newServingServer(t, service.DefaultModelCacheModels)
	_, refit, _ := newServingServer(t, 0)
	for _, tc := range cases {
		var labels [2][]int
		for i, c := range []*client.Client{cached, refit} {
			dsID, err := c.Upload(ctx, tc.platform, sp.Train)
			if err != nil {
				t.Fatal(err)
			}
			mID, err := c.Train(ctx, tc.platform, dsID, tc.cfg, 9)
			if err != nil {
				t.Fatal(err)
			}
			labels[i], err = c.Predict(ctx, tc.platform, mID, sp.Test.X)
			if err != nil {
				t.Fatal(err)
			}
		}
		mustSameLabels(t, tc.platform, labels[0], labels[1])
	}
	// The cached server must have served the predicts without refitting:
	// every train missed once, every predict hit the resident model.
	if h := cachedReg.Counter(telemetry.ModelCacheHits).Value(); h < int64(len(cases)) {
		t.Fatalf("cache hits %d, want ≥ %d (one per predict)", h, len(cases))
	}
}

// TestEvictedModelRefitsTransparently bounds the cache at one model, trains
// two, and checks that predicting with the evicted one still returns the
// exact labels — correctness never depends on cache state — while the
// eviction and the refit are visible in telemetry.
func TestEvictedModelRefitsTransparently(t *testing.T) {
	sp := testSplit(t)
	ctx := context.Background()
	_, c, reg := newServingServer(t, 1)

	dsID, err := c.Upload(ctx, "local", sp.Train)
	if err != nil {
		t.Fatal(err)
	}
	cfgA := pipeline.Config{Classifier: "logreg", Params: map[string]any{}}
	cfgB := pipeline.Config{Classifier: "dtree", Params: map[string]any{}}
	mA, err := c.Train(ctx, "local", dsID, cfgA, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantA, err := c.Predict(ctx, "local", mA, sp.Test.X) // A resident: forward pass
	if err != nil {
		t.Fatal(err)
	}
	mB, err := c.Train(ctx, "local", dsID, cfgB, 3) // evicts A
	if err != nil {
		t.Fatal(err)
	}
	if ev := reg.Counter(telemetry.ModelCacheEvictions).Value(); ev < 1 {
		t.Fatalf("evictions=%d after overflowing a 1-model cache", ev)
	}
	gotA, err := c.Predict(ctx, "local", mA, sp.Test.X) // transparent refit
	if err != nil {
		t.Fatal(err)
	}
	mustSameLabels(t, "evicted model", gotA, wantA)
	if _, err := c.Predict(ctx, "local", mB, sp.Test.X); err != nil {
		t.Fatal(err)
	}
	// The post-eviction predict must have taken the refit path.
	if n := reg.Histogram(telemetry.PredictPathHistogram, "path", "refit").Count(); n < 1 {
		t.Fatalf("refit-path observations %d, want ≥ 1", n)
	}
	if n := reg.Histogram(telemetry.PredictPathHistogram, "path", "forward").Count(); n < 1 {
		t.Fatalf("forward-path observations %d, want ≥ 1", n)
	}
}

// TestConcurrentPredictsWithTrainInFlight hammers one resident model with
// concurrent predicts while identical train requests are in flight — the
// singleflight + shared-model path the race detector must stay quiet on
// (this package is part of the `make race` set).
func TestConcurrentPredictsWithTrainInFlight(t *testing.T) {
	sp := testSplit(t)
	ctx := context.Background()
	_, c, reg := newServingServer(t, service.DefaultModelCacheModels)

	dsID, err := c.Upload(ctx, "local", sp.Train)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.Config{Classifier: "mlp", Params: map[string]any{"max_iter": 40}}
	mID, err := c.Train(ctx, "local", dsID, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.Predict(ctx, "local", mID, sp.Test.X)
	if err != nil {
		t.Fatal(err)
	}

	const (
		trainers   = 4
		predictors = 8
	)
	var wg sync.WaitGroup
	errs := make(chan error, trainers+predictors)
	labels := make(chan []int, predictors)
	for i := 0; i < trainers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Identical description → identical model key → coalesces or
			// hits; never a second fit of a different artifact.
			if _, err := c.Train(ctx, "local", dsID, cfg, 5); err != nil {
				errs <- err
			}
		}()
	}
	for i := 0; i < predictors; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := c.Predict(ctx, "local", mID, sp.Test.X)
			if err != nil {
				errs <- err
				return
			}
			labels <- got
		}()
	}
	wg.Wait()
	close(errs)
	close(labels)
	for err := range errs {
		t.Fatal(err)
	}
	for got := range labels {
		mustSameLabels(t, "concurrent predict", got, want)
	}
	// Exactly one fit for this description across every train and predict.
	if mi := reg.Counter(telemetry.ModelCacheMisses).Value(); mi != 1 {
		t.Fatalf("misses=%d, want 1 (one fit total)", mi)
	}
}
