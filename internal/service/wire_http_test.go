package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"testing"

	"mlaasbench/internal/client"
	"mlaasbench/internal/dataset"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/service"
	"mlaasbench/internal/telemetry"
	"mlaasbench/internal/wire"
)

// trainOn uploads the split's train fold and trains one model, returning the
// model id for predict calls.
func trainOn(t *testing.T, c *client.Client, platform string, cfg pipeline.Config, sp dataset.Split) string {
	t.Helper()
	ctx := context.Background()
	dsID, err := c.Upload(ctx, platform, sp.Train)
	if err != nil {
		t.Fatalf("upload on %s: %v", platform, err)
	}
	mID, err := c.Train(ctx, platform, dsID, cfg, 9)
	if err != nil {
		t.Fatalf("train on %s: %v", platform, err)
	}
	return mID
}

// TestBinaryPredictMatchesJSON is the cross-codec oracle at the HTTP level:
// the same trained model predicting the same instances must return
// byte-identical labels whether the rows travel as a JSON body or as binary
// frames, across a user platform, Amazon's hidden binning and a black box.
func TestBinaryPredictMatchesJSON(t *testing.T) {
	sp := testSplit(t)
	ctx := context.Background()
	srv, jsonC, reg := newServingServer(t, service.DefaultModelCacheModels)
	binC := client.New(srv.URL).WithCodec(client.CodecBinary)

	cases := []struct {
		platform string
		cfg      pipeline.Config
	}{
		{"local", pipeline.Config{Classifier: "randomforest", Params: map[string]any{"n_estimators": 5}}},
		{"amazon", pipeline.Config{Classifier: "logreg", Params: map[string]any{"max_iter": 20}}},
		{"google", pipeline.Config{}},
	}
	for _, tc := range cases {
		mID := trainOn(t, jsonC, tc.platform, tc.cfg, sp)
		want, err := jsonC.Predict(ctx, tc.platform, mID, sp.Test.X)
		if err != nil {
			t.Fatalf("%s json predict: %v", tc.platform, err)
		}
		got, err := binC.Predict(ctx, tc.platform, mID, sp.Test.X)
		if err != nil {
			t.Fatalf("%s binary predict: %v", tc.platform, err)
		}
		mustSameLabels(t, tc.platform+" json-vs-binary", got, want)
	}
	if n := reg.Counter(telemetry.CodecRequestsTotal, "codec", "binary").Value(); n < int64(len(cases)) {
		t.Errorf("binary codec counter %d, want >= %d", n, len(cases))
	}
	if n := reg.Counter(telemetry.CodecRequestsTotal, "codec", "json").Value(); n < int64(len(cases)) {
		t.Errorf("json codec counter %d, want >= %d", n, len(cases))
	}
	if n := reg.Histogram(telemetry.WireFrameBytesHistogram, "dir", "rx").Count(); n < 1 {
		t.Errorf("no rx frame-bytes observations")
	}
	if n := reg.Histogram(telemetry.WireFrameBytesHistogram, "dir", "tx").Count(); n < 1 {
		t.Errorf("no tx frame-bytes observations")
	}
}

// TestBinaryPredictNegativeZeroMatchesJSON pushes -0.0 through both codecs.
// encoding/json round-trips "-0" and the wire codec is bit-exact, so the
// forward passes must see identical inputs and emit identical labels.
func TestBinaryPredictNegativeZeroMatchesJSON(t *testing.T) {
	sp := testSplit(t)
	ctx := context.Background()
	srv, jsonC, _ := newServingServer(t, service.DefaultModelCacheModels)
	binC := client.New(srv.URL).WithCodec(client.CodecBinary)
	mID := trainOn(t, jsonC, "local", pipeline.Config{Classifier: "logreg", Params: map[string]any{}}, sp)

	negZero := math.Copysign(0, -1)
	instances := make([][]float64, len(sp.Test.X))
	for i, row := range sp.Test.X {
		r := append([]float64(nil), row...)
		r[i%len(r)] = negZero
		instances[i] = r
	}
	want, err := jsonC.Predict(ctx, "local", mID, instances)
	if err != nil {
		t.Fatalf("json predict: %v", err)
	}
	got, err := binC.Predict(ctx, "local", mID, instances)
	if err != nil {
		t.Fatalf("binary predict: %v", err)
	}
	mustSameLabels(t, "-0 payload", got, want)
}

// TestBinarySpecialFloatsDeterministic covers the payloads JSON cannot carry
// at all: NaN and ±Inf rows must transport bit-exact over the binary codec
// and predict deterministically — two identical requests, identical labels.
func TestBinarySpecialFloatsDeterministic(t *testing.T) {
	sp := testSplit(t)
	ctx := context.Background()
	srv, jsonC, _ := newServingServer(t, service.DefaultModelCacheModels)
	binC := client.New(srv.URL).WithCodec(client.CodecBinary)
	mID := trainOn(t, jsonC, "local", pipeline.Config{Classifier: "logreg", Params: map[string]any{}}, sp)

	width := len(sp.Test.X[0])
	row := func(v float64) []float64 {
		r := make([]float64, width)
		for i := range r {
			r[i] = v
		}
		return r
	}
	instances := [][]float64{row(math.NaN()), row(math.Inf(1)), row(math.Inf(-1)), sp.Test.X[0]}
	first, err := binC.Predict(ctx, "local", mID, instances)
	if err != nil {
		t.Fatalf("binary predict with specials: %v", err)
	}
	second, err := binC.Predict(ctx, "local", mID, instances)
	if err != nil {
		t.Fatalf("second binary predict: %v", err)
	}
	mustSameLabels(t, "special floats repeat", second, first)
}

// postRaw fires one hand-built predict request and returns the response.
func postRaw(t *testing.T, url, contentType, accept string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// errCode decodes the structured error envelope and returns its code.
func errCode(t *testing.T, raw []byte) string {
	t.Helper()
	var env struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("error envelope is not JSON: %v (%q)", err, raw)
	}
	return env.Code
}

// TestPredictRejectsBadBodiesBothCodecs drives the validation satellite:
// ragged or wrong-width rows, garbage bodies and empty batches must all
// come back as 400 with the structured code — in both codecs — before any
// row reaches a kernel.
func TestPredictRejectsBadBodiesBothCodecs(t *testing.T) {
	sp := testSplit(t)
	srv, c, _ := newServingServer(t, service.DefaultModelCacheModels)
	mID := trainOn(t, c, "local", pipeline.Config{Classifier: "logreg", Params: map[string]any{}}, sp)
	url := srv.URL + "/v1/platforms/local/models/" + mID + "/predictions"
	width := len(sp.Test.X[0])

	wrongWidth := make([][]float64, 2)
	for i := range wrongWidth {
		wrongWidth[i] = make([]float64, width+1)
	}
	cases := []struct {
		name        string
		contentType string
		body        []byte
		wantCode    string
	}{
		{"json ragged row", "application/json",
			mustJSON(t, map[string]any{"instances": [][]float64{make([]float64, width), make([]float64, width-1)}}),
			"bad_row_width"},
		{"json wide row", "application/json",
			mustJSON(t, map[string]any{"instances": wrongWidth}),
			"bad_row_width"},
		{"json empty batch", "application/json",
			mustJSON(t, map[string]any{"instances": [][]float64{}}),
			"no_instances"},
		{"json garbage", "application/json", []byte("{nope"), "bad_payload"},
		{"binary wrong width", wire.ContentType,
			wire.EncodeMatrixStream(nil, wrongWidth, 0), "bad_row_width"},
		{"binary empty body", wire.ContentType, nil, "no_instances"},
		{"binary garbage", wire.ContentType, []byte("MLWFgarbage-here"), "bad_payload"},
		{"binary truncated", wire.ContentType,
			wire.EncodeMatrixStream(nil, sp.Test.X[:2], 0)[:wire.HeaderSize+3], "bad_payload"},
	}
	for _, tc := range cases {
		resp, raw := postRaw(t, url, tc.contentType, "", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, raw)
			continue
		}
		if got := errCode(t, raw); got != tc.wantCode {
			t.Errorf("%s: code %q, want %q", tc.name, got, tc.wantCode)
		}
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestAcceptHeaderSwitchesResponseCodec exercises asymmetric negotiation:
// a JSON request with Accept: frames gets a binary response, and a binary
// request with Accept: application/json gets JSON — same labels each way.
func TestAcceptHeaderSwitchesResponseCodec(t *testing.T) {
	sp := testSplit(t)
	ctx := context.Background()
	srv, c, _ := newServingServer(t, service.DefaultModelCacheModels)
	mID := trainOn(t, c, "local", pipeline.Config{Classifier: "logreg", Params: map[string]any{}}, sp)
	url := srv.URL + "/v1/platforms/local/models/" + mID + "/predictions"

	want, err := c.Predict(ctx, "local", mID, sp.Test.X)
	if err != nil {
		t.Fatal(err)
	}

	// JSON in, frames out.
	resp, raw := postRaw(t, url, "application/json",
		wire.ContentType, mustJSON(t, map[string]any{"instances": sp.Test.X}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upgrade status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentType {
		t.Fatalf("upgrade response Content-Type %q, want %q", ct, wire.ContentType)
	}
	got, err := wire.DecodeLabelsStream(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("decode upgraded response: %v", err)
	}
	mustSameLabels(t, "json->frames upgrade", got, want)

	// Frames in, JSON out.
	resp, raw = postRaw(t, url, wire.ContentType,
		"application/json", wire.EncodeMatrixStream(nil, sp.Test.X, 0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("downgrade status %d: %s", resp.StatusCode, raw)
	}
	var pr struct {
		Labels []int `json:"labels"`
	}
	if err := json.Unmarshal(raw, &pr); err != nil {
		t.Fatalf("downgrade response is not JSON: %v (%q)", err, raw)
	}
	mustSameLabels(t, "frames->json downgrade", pr.Labels, want)
}

// TestMultiFrameStreamingPredict sends the batch as many small frames in one
// request body and expects the stitched labels to match the single-frame
// request exactly — the server predicts frame by frame, in order.
func TestMultiFrameStreamingPredict(t *testing.T) {
	sp := testSplit(t)
	ctx := context.Background()
	srv, c, _ := newServingServer(t, service.DefaultModelCacheModels)
	mID := trainOn(t, c, "local", pipeline.Config{Classifier: "logreg", Params: map[string]any{}}, sp)
	url := srv.URL + "/v1/platforms/local/models/" + mID + "/predictions"

	want, err := c.Predict(ctx, "local", mID, sp.Test.X)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 3, 7} {
		body := wire.EncodeMatrixStream(nil, sp.Test.X, chunk)
		resp, raw := postRaw(t, url, wire.ContentType, "", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("chunk %d: status %d: %s", chunk, resp.StatusCode, raw)
		}
		got, err := wire.DecodeLabelsStream(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("chunk %d: decode: %v", chunk, err)
		}
		mustSameLabels(t, "multi-frame", got, want)
	}
}
