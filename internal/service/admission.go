package service

import (
	"context"
	"net/http"
	"sync/atomic"

	"mlaasbench/internal/telemetry"
)

// DefaultAdmissionQueue is the waiting-room bound used when admission
// control is enabled without an explicit queue size.
const DefaultAdmissionQueue = 64

// admission is a bounded per-route admission queue: at most `concurrency`
// requests execute at once, at most `queue` more wait for a slot, and
// everything beyond that is shed immediately with 503 + Retry-After.
//
// The point is graceful degradation past saturation. An unbounded server
// past the knee queues work it will never catch up on: latency grows
// without bound, every request eventually times out, and goodput
// collapses. Shedding the excess instead keeps the admitted requests fast,
// so goodput stays pinned at capacity no matter how much load is offered —
// the saturation sweep in mlaas-loadgen plots exactly this (flat goodput
// at 2x the knee instead of collapse).
type admission struct {
	route   string
	reg     func() *telemetry.Registry
	slots   chan struct{}
	queue   int
	waiting atomic.Int64
}

func newAdmission(route string, concurrency, queue int, reg func() *telemetry.Registry) *admission {
	if concurrency < 1 {
		concurrency = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &admission{
		route: route,
		reg:   reg,
		slots: make(chan struct{}, concurrency),
		queue: queue,
	}
}

// admit tries to claim an execution slot, waiting in the bounded queue if
// none is free. It returns (release, true) on admission — the caller must
// invoke release exactly once — or (nil, false) when the request should be
// shed (queue full, or the caller's context died while waiting).
func (a *admission) admit(ctx context.Context) (func(), bool) {
	release := func() { <-a.slots }
	select {
	case a.slots <- struct{}{}: // free slot, no queueing
		a.reg().Counter(telemetry.AdmissionAdmittedTotal, "route", a.route).Inc()
		return release, true
	default:
	}
	depth := a.reg().Gauge(telemetry.AdmissionQueueDepth, "route", a.route)
	if n := a.waiting.Add(1); n > int64(a.queue) {
		a.waiting.Add(-1)
		a.reg().Counter(telemetry.AdmissionShedTotal, "route", a.route).Inc()
		return nil, false
	}
	depth.Inc()
	defer func() {
		a.waiting.Add(-1)
		depth.Dec()
	}()
	select {
	case a.slots <- struct{}{}:
		a.reg().Counter(telemetry.AdmissionAdmittedTotal, "route", a.route).Inc()
		return release, true
	case <-ctx.Done():
		a.reg().Counter(telemetry.AdmissionShedTotal, "route", a.route).Inc()
		return nil, false
	}
}

// WithAdmission bounds the predict route with an admission queue of
// `concurrency` executing slots and `queue` waiting slots, and returns the
// server (chainable). Requests beyond both bounds receive 503 with a
// Retry-After header instead of queueing unboundedly. concurrency <= 0
// disables admission control (the default: no behaviour change).
func (s *Server) WithAdmission(concurrency, queue int) *Server {
	if concurrency <= 0 {
		s.admit = nil
		return s
	}
	s.admit = newAdmission("predict", concurrency, queue, func() *telemetry.Registry { return s.reg })
	return s
}

// admitted wraps a handler with the admission gate when one is configured.
// Shed responses carry Retry-After: 1 — the client's backoff floor — and
// the structured "overloaded" error code so load generators can separate
// sheds from real failures.
func (s *Server) admitted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		gate := s.admit
		if gate == nil {
			h(w, r)
			return
		}
		release, ok := gate.admit(r.Context())
		if !ok {
			w.Header().Set("Retry-After", "1")
			s.failCode(w, r, http.StatusServiceUnavailable, codeOverloaded,
				"admission queue full; retry after backoff")
			return
		}
		defer release()
		h(w, r)
	}
}
