package service

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"mlaasbench/internal/platforms"
	"mlaasbench/internal/rng"
	"mlaasbench/internal/store"
	"mlaasbench/internal/synth"
	"mlaasbench/internal/telemetry"
)

// storeFixture builds a cache with a disk tier plus a set of distinct real
// models (one per key, varying the fit seed) and their oracle predictions.
type storeFixture struct {
	cache  *modelCache
	reg    *telemetry.Registry
	store  *store.Store
	keys   []string
	fit    map[string]func() (platforms.FittedModel, error)
	oracle map[string][]int
	points [][]float64
}

func newStoreFixture(t *testing.T, capacity, nKeys int) *storeFixture {
	t.Helper()
	full := synth.GenerateClean(synth.Spec{Name: "store-cache", Gen: synth.GenClusters, N: 70, D: 4, Noise: 0.3}, synth.Quick, 3)
	sp := full.StratifiedSplit(0.7, rng.New(2))
	train, points := sp.Train, sp.Test.X

	p, err := platforms.New("local")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := p.Surface().DefaultConfig("randomforest")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Params["n_estimators"] = 4

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cache, reg := testCache(capacity)
	cache.store = st

	fx := &storeFixture{
		cache: cache, reg: reg, store: st, points: points,
		fit:    map[string]func() (platforms.FittedModel, error){},
		oracle: map[string][]int{},
	}
	for i := 0; i < nKeys; i++ {
		seed := uint64(i + 1)
		key := fmt.Sprintf("local/ds-1/%s/%d", cfg.String(), seed)
		fx.keys = append(fx.keys, key)
		fx.fit[key] = func() (platforms.FittedModel, error) { return p.Fit(cfg, train, seed) }
		m, err := p.Fit(cfg, train, seed)
		if err != nil {
			t.Fatal(err)
		}
		fx.oracle[key] = m.Predict(points)
	}
	return fx
}

func (fx *storeFixture) check(t *testing.T, ctx, key string, m platforms.FittedModel) {
	t.Helper()
	got, want := m.Predict(fx.points), fx.oracle[key]
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: %s label %d is %d, want %d", ctx, key, i, got[i], want[i])
		}
	}
}

// TestStoreDemoteThenRehitByteIdentical: cap the LRU at one, fit two keys
// so the first demotes to disk, then re-request it. The rehit must load the
// artifact (no fit, no model-cache miss) and predict byte-identically.
func TestStoreDemoteThenRehitByteIdentical(t *testing.T) {
	fx := newStoreFixture(t, 1, 2)
	a, b := fx.keys[0], fx.keys[1]
	fitsA := 0
	countedFitA := func() (platforms.FittedModel, error) { fitsA++; return fx.fit[a]() }

	m, refit, err := fx.cache.get(a, countedFitA)
	if err != nil || !refit {
		t.Fatalf("first get(a): refit=%v err=%v", refit, err)
	}
	fx.check(t, "first fill", a, m)
	if _, _, err := fx.cache.get(b, fx.fit[b]); err != nil {
		t.Fatal(err)
	}
	if !fx.store.Has(a) {
		t.Fatal("evicted model was not demoted to disk")
	}

	missesBefore := counter(fx.reg, telemetry.ModelCacheMisses)
	m, refit, err = fx.cache.get(a, countedFitA)
	if err != nil {
		t.Fatal(err)
	}
	if refit {
		t.Fatal("rehit of a demoted key reported a refit")
	}
	if fitsA != 1 {
		t.Fatalf("fit ran %d times for key a, want 1 (second resolve must load from disk)", fitsA)
	}
	fx.check(t, "disk rehit", a, m)
	if got := counter(fx.reg, telemetry.ModelCacheMisses); got != missesBefore {
		t.Fatalf("disk rehit counted as model-cache miss (%d → %d)", missesBefore, got)
	}
	if counter(fx.reg, telemetry.StoreHits) < 1 {
		t.Fatal("no store hit recorded")
	}
	if counter(fx.reg, telemetry.ModelCacheEvictions) < 1 {
		t.Fatal("no eviction recorded")
	}
}

// TestWarmFromStoreServesWithoutFit: artifacts on disk, a fresh cache, one
// warm scan — every warmed key must then serve as a plain cache hit whose
// fit callback never runs.
func TestWarmFromStoreServesWithoutFit(t *testing.T) {
	fx := newStoreFixture(t, 8, 3)
	for _, key := range fx.keys {
		m, err := fx.fit[key]()
		if err != nil {
			t.Fatal(err)
		}
		if err := fx.store.PutModel(key, m); err != nil {
			t.Fatal(err)
		}
	}
	fresh, reg := testCache(8)
	fresh.store = fx.store
	n, err := fresh.warm()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(fx.keys) {
		t.Fatalf("warmed %d models, want %d", n, len(fx.keys))
	}
	if counter(reg, telemetry.StoreWarmLoads) != int64(n) {
		t.Fatalf("warm loads counter %d, want %d", counter(reg, telemetry.StoreWarmLoads), n)
	}
	for _, key := range fx.keys {
		m, refit, err := fresh.get(key, func() (platforms.FittedModel, error) {
			t.Fatalf("fit ran for warmed key %s", key)
			return nil, nil
		})
		if err != nil || refit {
			t.Fatalf("get(%s): refit=%v err=%v", key, refit, err)
		}
		fx.check(t, "warmed", key, m)
	}
	if counter(reg, telemetry.ModelCacheMisses) != 0 {
		t.Fatalf("warmed keys produced %d model-cache misses, want 0", counter(reg, telemetry.ModelCacheMisses))
	}
}

// TestWarmFromStoreRespectsCapacity: the warm scan stops at the LRU bound.
func TestWarmFromStoreRespectsCapacity(t *testing.T) {
	fx := newStoreFixture(t, 8, 3)
	for _, key := range fx.keys {
		m, err := fx.fit[key]()
		if err != nil {
			t.Fatal(err)
		}
		if err := fx.store.PutModel(key, m); err != nil {
			t.Fatal(err)
		}
	}
	small, _ := testCache(2)
	small.store = fx.store
	n, err := small.warm()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || small.size() != 2 {
		t.Fatalf("warmed %d resident %d, want 2/2", n, small.size())
	}
}

// TestConcurrentEvictDemoteWarmRefit is the satellite race check: a tiny
// LRU over more keys than fit, hammered from many goroutines while warm
// scans run concurrently. Invariants: no data race (run under -race via
// make race), at most one fit in flight per key, at most one fit *ever*
// per key (write-through means every later resolve loads the artifact),
// and every returned model predicts byte-identically to the oracle.
func TestConcurrentEvictDemoteWarmRefit(t *testing.T) {
	const (
		capacity   = 2
		nKeys      = 4
		goroutines = 8
		iters      = 20
	)
	fx := newStoreFixture(t, capacity, nKeys)
	inflight := make([]atomic.Int32, nKeys)
	everFit := make([]atomic.Int32, nKeys)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ki := (g + i) % nKeys
				key := fx.keys[ki]
				m, _, err := fx.cache.get(key, func() (platforms.FittedModel, error) {
					if inflight[ki].Add(1) != 1 {
						t.Errorf("double in-flight fit for %s", key)
					}
					defer inflight[ki].Add(-1)
					everFit[ki].Add(1)
					return fx.fit[key]()
				})
				if err != nil {
					t.Errorf("get(%s): %v", key, err)
					return
				}
				fx.check(t, "concurrent", key, m)
			}
		}(g)
	}
	// Warm scans race the gets: insertion vs fill vs eviction on live keys.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := fx.cache.warm(); err != nil {
				t.Errorf("warm: %v", err)
			}
		}()
	}
	wg.Wait()
	for ki := range everFit {
		if n := everFit[ki].Load(); n > 1 {
			t.Errorf("key %s fitted %d times; artifact should have served every resolve after the first", fx.keys[ki], n)
		}
	}
	// After the dust settles the cache must still be internally consistent:
	// bounded residency and every key still resolvable and correct.
	if fx.cache.size() > capacity {
		t.Fatalf("resident %d models with capacity %d", fx.cache.size(), capacity)
	}
	for _, key := range fx.keys {
		m, _, err := fx.cache.get(key, fx.fit[key])
		if err != nil {
			t.Fatal(err)
		}
		fx.check(t, "settled", key, m)
	}
}
