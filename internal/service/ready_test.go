package service_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mlaasbench/internal/client"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/service"
	"mlaasbench/internal/store"
	"mlaasbench/internal/telemetry"
)

func healthz(t *testing.T, url string) service.HealthResponse {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h service.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// TestColdBootReadinessFlip pins the readiness lifecycle a cluster
// router depends on: a server without a disk tier is born ready; one
// with a store dir is NOT ready until the boot warm scan completes, so
// the router keeps it out of rotation while it would still be refitting
// everything from scratch.
func TestColdBootReadinessFlip(t *testing.T) {
	plain := service.NewServer(func(string, ...any) {}).WithRegistry(telemetry.NewRegistry())
	plainSrv := httptest.NewServer(plain.Handler())
	defer plainSrv.Close()
	if h := healthz(t, plainSrv.URL); !h.Ready {
		t.Fatal("storeless server not born ready")
	}

	dir := t.TempDir()
	// Seed the store with one artifact so the warm scan has work to do.
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	seed := service.NewServer(func(string, ...any) {}).WithRegistry(telemetry.NewRegistry()).WithStore(st)
	seedSrv := httptest.NewServer(seed.Handler())
	if _, err := seed.WarmFromStore(); err != nil {
		t.Fatal(err)
	}
	sp := testSplit(t)
	c := client.New(seedSrv.URL)
	dsID, err := c.Upload(context.Background(), "local", sp.Train)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Train(context.Background(), "local", dsID, pipeline.Config{Classifier: "logreg", Params: map[string]any{}}, 7); err != nil {
		t.Fatal(err)
	}
	seedSrv.Close()

	// Cold boot over the same artifacts: alive immediately, ready only
	// after the warm scan.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := service.NewServer(func(string, ...any) {}).WithRegistry(telemetry.NewRegistry()).WithStore(st2)
	coldSrv := httptest.NewServer(cold.Handler())
	defer coldSrv.Close()
	if h := healthz(t, coldSrv.URL); h.Ready {
		t.Fatal("cold-booting server claimed ready before its warm scan")
	}
	if cold.Ready() {
		t.Fatal("Ready() true before warm")
	}
	n, err := cold.WarmFromStore()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("warmed %d models, want 1", n)
	}
	if h := healthz(t, coldSrv.URL); !h.Ready {
		t.Fatal("server still not ready after warm scan completed")
	}
}

// TestServeBudgetPacesPredicts checks the per-node capacity model: with
// a serve budget of B req/s, N serial predicts cannot finish faster than
// (N-1)/B — each request waits for its schedule slot. The pacer never
// banks idle time into bursts, so the lower bound is hard.
func TestServeBudgetPacesPredicts(t *testing.T) {
	api := service.NewServer(func(string, ...any) {}).WithRegistry(telemetry.NewRegistry()).WithServeBudget(400)
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()
	sp := testSplit(t)
	ctx := context.Background()
	c := client.New(srv.URL)
	dsID, err := c.Upload(ctx, "local", sp.Train)
	if err != nil {
		t.Fatal(err)
	}
	mID, err := c.Train(ctx, "local", dsID, pipeline.Config{Classifier: "logreg", Params: map[string]any{}}, 7)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := c.Predict(ctx, "local", mID, sp.Test.X[:4]); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	floor := time.Duration(n-1) * (time.Second / 400)
	if elapsed < floor {
		t.Fatalf("%d predicts at 400 req/s budget took %s, paced floor is %s", n, elapsed, floor)
	}
}
