package service_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"mlaasbench/internal/service"
	"mlaasbench/internal/telemetry"
)

// newObservedServer spins a server with an isolated registry so counters
// are attributable to this test alone.
func newObservedServer(t *testing.T) (*httptest.Server, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	s := service.NewServer(func(string, ...any) {}).WithRegistry(reg)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv, reg
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestHealthz(t *testing.T) {
	srv, _ := newObservedServer(t)
	resp, body := get(t, srv.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h service.HealthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Platforms != 7 || h.UptimeSeconds < 0 {
		t.Fatalf("healthz %+v", h)
	}
	// The env fingerprint rides along so scraped numbers are attributable.
	if h.GoVersion != runtime.Version() {
		t.Errorf("healthz go_version = %q, want %q", h.GoVersion, runtime.Version())
	}
	if h.NumCPU != runtime.NumCPU() || h.GOMAXPROCS <= 0 {
		t.Errorf("healthz cpu fields %+v", h)
	}
	if h.ResidentModels < 0 {
		t.Errorf("healthz resident_models %d", h.ResidentModels)
	}
}

func TestMetricsExposureChangesUnderLoad(t *testing.T) {
	srv, _ := newObservedServer(t)

	// Before any API traffic, the request counter family is absent.
	_, before := get(t, srv.URL+"/metrics")
	if strings.Contains(string(before), "mlaas_http_requests_total{") {
		t.Fatalf("request counters present before traffic:\n%s", before)
	}

	for i := 0; i < 3; i++ {
		if resp, _ := get(t, srv.URL+"/v1/platforms"); resp.StatusCode != http.StatusOK {
			t.Fatalf("list status %d", resp.StatusCode)
		}
	}
	// One failing request too, to get a 4xx class series.
	get(t, srv.URL+"/v1/platforms/watson/surface")

	resp, body := get(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	out := string(body)
	for _, want := range []string{
		`mlaas_http_requests_total{route="list_platforms",platform="",class="2xx"} 3`,
		`mlaas_http_requests_total{route="surface",platform="watson",class="4xx"} 1`,
		"# TYPE mlaas_http_request_duration_seconds histogram",
		`mlaas_http_request_duration_seconds_count{route="list_platforms"} 3`,
		"mlaas_http_in_flight",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsJSONSnapshot(t *testing.T) {
	srv, _ := newObservedServer(t)
	get(t, srv.URL+"/v1/platforms")
	resp, body := get(t, srv.URL+"/metrics.json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics.json status %d", resp.StatusCode)
	}
	var snap telemetry.SnapshotData
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("snapshot not JSON: %v\n%s", err, body)
	}
	if len(snap.Counters) == 0 || len(snap.Histograms) == 0 {
		t.Fatalf("snapshot empty after traffic: %+v", snap)
	}
	found := false
	for _, h := range snap.Histograms {
		if h.Name == "mlaas_http_request_duration_seconds" && h.Count == 1 && h.P95 >= h.P50 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no latency histogram with quantiles in snapshot: %+v", snap.Histograms)
	}
}

func TestRequestIDEchoedAndGenerated(t *testing.T) {
	srv, _ := newObservedServer(t)

	// Client-supplied id is echoed back.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/platforms", nil)
	req.Header.Set(telemetry.RequestIDHeader, "sweep-17")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(telemetry.RequestIDHeader); got != "sweep-17" {
		t.Fatalf("echoed request id %q, want sweep-17", got)
	}

	// Without one, the server generates an id.
	resp2, _ := get(t, srv.URL+"/v1/platforms")
	if resp2.Header.Get(telemetry.RequestIDHeader) == "" {
		t.Fatal("server did not generate a request id")
	}
}

func TestErrorEnvelopeCarriesRequestID(t *testing.T) {
	srv, _ := newObservedServer(t)
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/platforms/watson/surface", nil)
	req.Header.Set(telemetry.RequestIDHeader, "err-trace-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var env struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.RequestID != "err-trace-1" {
		t.Fatalf("error envelope request_id %q, want err-trace-1 (%s)", env.RequestID, body)
	}
}

func TestInFlightGaugeReturnsToZero(t *testing.T) {
	srv, reg := newObservedServer(t)
	for i := 0; i < 5; i++ {
		get(t, srv.URL+"/v1/platforms")
	}
	if got := reg.Gauge("mlaas_http_in_flight").Value(); got != 0 {
		t.Fatalf("in-flight gauge = %d after requests completed", got)
	}
}
