package service_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"mlaasbench/internal/client"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/service"
	"mlaasbench/internal/store"
	"mlaasbench/internal/telemetry"
)

// TestWarmRestartServesFirstPredictWithoutRefit is the end-to-end restart
// contract: a server with a store dir fits models and persists artifacts; a
// fresh server process over the same dir warms its cache at boot and serves
// the same upload→train→predict sequence with zero model fits — the train
// is a cache hit on the warmed key and the predictions are byte-identical.
func TestWarmRestartServesFirstPredictWithoutRefit(t *testing.T) {
	sp := testSplit(t)
	ctx := context.Background()
	dir := t.TempDir()
	cases := []struct {
		platform string
		cfg      pipeline.Config
	}{
		{"local", pipeline.Config{Classifier: "randomforest", Params: map[string]any{"n_estimators": 5}}},
		{"amazon", pipeline.Config{Classifier: "logreg", Params: map[string]any{"max_iter": 20}}},
		{"google", pipeline.Config{}},
	}

	run := func(s *service.Server) map[string][]int {
		srv := httptest.NewServer(s.Handler())
		defer srv.Close()
		c := client.New(srv.URL)
		labels := map[string][]int{}
		for _, tc := range cases {
			dsID, err := c.Upload(ctx, tc.platform, sp.Train)
			if err != nil {
				t.Fatal(err)
			}
			mID, err := c.Train(ctx, tc.platform, dsID, tc.cfg, 9)
			if err != nil {
				t.Fatal(err)
			}
			labels[tc.platform], err = c.Predict(ctx, tc.platform, mID, sp.Test.X)
			if err != nil {
				t.Fatal(err)
			}
		}
		return labels
	}

	// Cold process: every train fits, every fit persists an artifact.
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	coldReg := telemetry.NewRegistry()
	cold := service.NewServer(func(string, ...any) {}).WithRegistry(coldReg).WithStore(st1)
	want := run(cold)
	if n := coldReg.Counter(telemetry.ModelCacheMisses).Value(); n != int64(len(cases)) {
		t.Fatalf("cold server: %d fits, want %d", n, len(cases))
	}
	if n, err := st1.Len(); err != nil || n != len(cases) {
		t.Fatalf("store holds %d artifacts (%v), want %d", n, err, len(cases))
	}

	// Warm restart: a brand-new server over the same store dir. The same
	// client sequence re-issues the uploads (dataset ids restart at ds-1, so
	// the model keys are identical) and the trains hit the warmed cache.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warmReg := telemetry.NewRegistry()
	warm := service.NewServer(func(string, ...any) {}).WithRegistry(warmReg).WithStore(st2)
	n, err := warm.WarmFromStore()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(cases) {
		t.Fatalf("warmed %d models, want %d", n, len(cases))
	}
	got := run(warm)

	if misses := warmReg.Counter(telemetry.ModelCacheMisses).Value(); misses != 0 {
		t.Fatalf("warm server ran %d fits, want 0 (model-cache miss count must be zero for warmed keys)", misses)
	}
	if hits := warmReg.Counter(telemetry.ModelCacheHits).Value(); hits < int64(2*len(cases)) {
		t.Fatalf("warm server cache hits %d, want ≥ %d (train + predict per case)", hits, 2*len(cases))
	}
	for _, tc := range cases {
		mustSameLabels(t, "warm restart "+tc.platform, got[tc.platform], want[tc.platform])
	}
}
