// Package service exposes the simulated MLaaS platforms over HTTP, mirroring
// the query interface the paper measured through (§3.2: "we leverage web
// APIs provided by the platforms, allowing us to automate experiments").
//
// The API is deliberately shaped like the 2016-era services:
//
//	GET  /v1/platforms                            → list platforms + controls
//	GET  /v1/platforms/{p}/surface                → control surface detail
//	POST /v1/platforms/{p}/datasets               → upload a training dataset
//	POST /v1/platforms/{p}/models                 → train a model (black boxes
//	                                                ignore the config, like the
//	                                                real 1-click services)
//	POST /v1/platforms/{p}/models/{id}/predictions → query predictions
//
// Models are identified by the (dataset, config, seed) triple and the
// training substrate is deterministic, so the *durable* identity of a model
// is its description — a model id always means the same model, even across
// server restarts. Serving, however, is fit-once: training a model fits the
// full pipeline immediately and parks the fitted artifact (transform state,
// classifier weights, hidden preprocessing) in a bounded LRU, so prediction
// is a pure forward pass — the shape of real MLaaS serving (cf. Clipper's
// model containers, TensorFlow-Serving's loaded servables). Evicted or
// restart-lost models transparently refit from their description on the
// next request, so cache state never affects answers, only latency.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mlaasbench/internal/classifiers"
	"mlaasbench/internal/dataset"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/platforms"
	"mlaasbench/internal/profiling"
	"mlaasbench/internal/store"
	"mlaasbench/internal/telemetry"
	"mlaasbench/internal/wire"
)

// Server hosts every simulated platform under one HTTP handler.
type Server struct {
	mu       sync.RWMutex
	plats    map[string]platforms.Platform
	datasets map[string]*storedDataset // key: platform/id
	models   map[string]*storedModel   // key: platform/id
	nextID   int
	logf     func(format string, args ...any)
	reg      *telemetry.Registry
	started  time.Time
	fits     *modelCache
	logger   *slog.Logger
	slowReq  time.Duration
	// predictShards bounds the goroutines one predict request's forward
	// pass fans its rows across (0 = one per CPU, 1 = serial).
	predictShards int
	// admit, when non-nil, gates the predict route behind a bounded
	// admission queue; excess load is shed with 503 + Retry-After.
	admit *admission
	// budget, when non-nil, paces the predict route to a fixed request
	// rate — the per-node capacity model for cluster scaling runs.
	budget *pacer
	// notReady is set while the server cannot yet serve at full fidelity
	// (boot warm scan still running); /healthz reports ready:false and
	// cluster routers keep the replica out of rotation. Zero value =
	// ready, so servers without a disk tier are born ready.
	notReady atomic.Bool
	// profiles, when non-nil, exposes the continuous profiler's bundle
	// ring at /debug/profiles (see profiles_http.go).
	profiles *profiling.Store
}

type storedDataset struct {
	platform string
	data     *dataset.Dataset
}

// storedModel is the durable description of a model; the fitted artifact it
// resolves to lives in the server's modelCache under modelKey.
type storedModel struct {
	platform  string
	datasetID string
	config    pipeline.Config
	seed      uint64
}

// modelKey is the fit-cache identity: everything that determines the
// trained artifact in the deterministic substrate. Distinct model ids with
// identical descriptions intentionally share one fitted model.
func modelKey(platform, datasetID string, cfg pipeline.Config, seed uint64) string {
	return fmt.Sprintf("%s/%s/%s/%d", platform, datasetID, cfg.String(), seed)
}

// NewServer constructs a server hosting all platforms. logf defaults to
// log.Printf; pass a no-op to silence request logging. Metrics record into
// the process-wide telemetry.Default() registry (so in-process pipeline
// stage timings and HTTP metrics share one /metrics page); use WithRegistry
// for an isolated registry.
func NewServer(logf func(format string, args ...any)) *Server {
	if logf == nil {
		logf = log.Printf
	}
	s := &Server{
		plats:    map[string]platforms.Platform{},
		datasets: map[string]*storedDataset{},
		models:   map[string]*storedModel{},
		logf:     logf,
		reg:      telemetry.Default(),
		started:  time.Now(),
	}
	for _, p := range platforms.All() {
		s.plats[p.Name()] = p
	}
	s.fits = newModelCache(DefaultModelCacheModels, func() *telemetry.Registry { return s.reg })
	return s
}

// WithRegistry redirects the server's metrics into reg and returns the
// server (chainable). Tests use it to isolate counters per server.
func (s *Server) WithRegistry(reg *telemetry.Registry) *Server {
	s.reg = reg
	return s
}

// WithLogger attaches a structured logger and returns the server
// (chainable). When set, every request emits a Debug record stamped with
// its request and trace ids, and requests slower than the
// WithSlowRequestThreshold value are escalated to Warn.
func (s *Server) WithLogger(l *slog.Logger) *Server {
	s.logger = l
	return s
}

// WithSlowRequestThreshold sets the latency above which a request logs at
// Warn instead of Debug (chainable). Zero disables slow-request escalation.
func (s *Server) WithSlowRequestThreshold(d time.Duration) *Server {
	s.slowReq = d
	return s
}

// WithModelCache bounds the fitted-model LRU to n models and returns the
// server (chainable). Zero disables residency entirely — every predict
// refits from the model description, the pre-cache behaviour — which is the
// baseline arm of the mlaas-loadgen comparison.
func (s *Server) WithModelCache(n int) *Server {
	s.fits.setCapacity(n)
	return s
}

// WithStore attaches a disk tier beneath the fitted-model LRU and returns
// the server (chainable). Every fitted model is persisted as an MLMF
// artifact, evicted models demote to disk instead of dropping, and cache
// fills load from disk before paying for a fit. Call before serving starts.
//
// Attaching a store marks the server not ready until WarmFromStore
// completes: a replica that would refit everything from scratch should
// not take cluster traffic while its warm scan is still loading
// artifacts.
func (s *Server) WithStore(st *store.Store) *Server {
	s.fits.store = st
	s.notReady.Store(true)
	return s
}

// WarmFromStore fills the model cache from the attached disk tier, up to
// the cache capacity, and returns how many models were loaded. A warmed key
// serves its first predict as a pure forward pass — no refit, miss count
// zero. Call at boot, before serving starts; on success the server
// becomes ready (/healthz ready:true) and routers admit it to rotation.
func (s *Server) WarmFromStore() (int, error) {
	n, err := s.fits.warm()
	if err == nil {
		s.notReady.Store(false)
	}
	return n, err
}

// Ready reports whether the server is ready for cluster traffic (the
// boot warm scan, if any, has completed).
func (s *Server) Ready() bool { return !s.notReady.Load() }

// WithPredictShards bounds how many goroutines one predict request's
// forward pass may fan its instance rows across and returns the server
// (chainable). Zero (the default) means one shard per CPU; one forces the
// serial path. Small batches never split regardless (see
// pipeline.ShardCount), and predictions are byte-identical at any setting.
func (s *Server) WithPredictShards(n int) *Server {
	s.predictShards = n
	return s
}

// ResidentModels reports how many fitted models the cache currently holds.
func (s *Server) ResidentModels() int { return s.fits.size() }

// Registry returns the telemetry registry the server records into.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Handler returns the HTTP handler for the MLaaS API, with every route
// instrumented: per-route/per-platform request counters by status class,
// an in-flight gauge, latency histograms, and X-Request-ID propagation.
func (s *Server) Handler() http.Handler {
	s.describeMetrics()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/platforms", s.instrument("list_platforms", s.handleListPlatforms))
	mux.HandleFunc("GET /v1/platforms/{platform}/surface", s.instrument("surface", s.handleSurface))
	mux.HandleFunc("POST /v1/platforms/{platform}/datasets", s.instrument("upload", s.handleUpload))
	mux.HandleFunc("POST /v1/platforms/{platform}/models", s.instrument("train", s.handleTrain))
	mux.HandleFunc("POST /v1/platforms/{platform}/models/{model}/predictions", s.instrument("predict", s.admitted(s.paced(s.handlePredict))))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("GET /debug/traces", s.handleTraceIndex)
	mux.HandleFunc("GET /debug/traces/{trace}", s.handleTraceGet)
	mux.HandleFunc("GET /debug/profiles", s.handleProfileIndex)
	mux.HandleFunc("GET /debug/profiles/{bundle}", s.handleProfileGet)
	mux.HandleFunc("GET /debug/profiles/{bundle}/{kind}", s.handleProfileFetch)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func (s *Server) describeMetrics() {
	s.reg.Describe("mlaas_http_requests_total", "HTTP requests by route, platform and status class.")
	s.reg.Describe("mlaas_http_request_duration_seconds", "HTTP request latency by route.")
	s.reg.Describe("mlaas_http_in_flight", "Requests currently being served.")
	s.reg.Describe(telemetry.ModelCacheHits, "Fitted-model cache hits (resident model served).")
	s.reg.Describe(telemetry.ModelCacheMisses, "Fitted-model cache misses (model fitted).")
	s.reg.Describe(telemetry.ModelCacheEvictions, "Fitted models evicted from the LRU (refit on next use).")
	s.reg.Describe(telemetry.ModelCacheCoalesced, "Requests that waited on an identical in-flight fit.")
	s.reg.Describe(telemetry.PredictPathHistogram, "Predict latency split by serving path (forward vs refit).")
	s.reg.Describe(telemetry.PredictBatchSizeHistogram, "Instances per predict request (rows, power-of-two buckets).")
	s.reg.Describe(telemetry.KernelHistogram, "Batch linalg kernel duration by kernel (gemm, gemm_nt, gemv, distance).")
	s.reg.Describe(telemetry.CodecRequestsTotal, "Predict requests by wire codec (json or binary).")
	s.reg.Describe(telemetry.WireFrameBytesHistogram, "Binary frame sizes in bytes, by direction (rx or tx).")
	s.reg.Describe(telemetry.AdmissionAdmittedTotal, "Requests admitted past the admission queue, by route.")
	s.reg.Describe(telemetry.AdmissionShedTotal, "Requests shed with 503 + Retry-After, by route.")
	s.reg.Describe(telemetry.AdmissionQueueDepth, "Requests currently waiting in the admission queue, by route.")
	s.reg.Describe(telemetry.StoreHits, "Model-cache misses served by loading a disk artifact instead of refitting.")
	s.reg.Describe(telemetry.StoreMisses, "Model-cache misses with no disk artifact (fit ran, artifact persisted).")
	s.reg.Describe(telemetry.StoreDemotions, "Evicted models demoted to disk artifacts.")
	s.reg.Describe(telemetry.StoreWarmLoads, "Models warmed into the cache from disk at boot.")
	s.reg.Describe(telemetry.StoreLoadHistogram, "Disk artifact load duration in seconds, by op (hit or warm).")
}

// statusWriter captures the response status code for metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

func codeClass(code int) string {
	switch {
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// instrument wraps a handler with the telemetry middleware. The route label
// is static per registration; the platform label comes from the request
// path ("" for platform-less routes).
//
// Each request runs under an "http:<route>" span recorded into the server's
// registry. When the caller sent a Traceparent header the span joins the
// caller's trace — the cross-process stitch that lets one client retry show
// up as sibling attempts under one rpc span — and the response echoes the
// server span's own trace context so callers can look the trace up at
// /debug/traces/{id}.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get(telemetry.RequestIDHeader)
		if reqID == "" {
			reqID = telemetry.NewRequestID()
		}
		w.Header().Set(telemetry.RequestIDHeader, reqID)
		ctx := telemetry.WithRequestID(r.Context(), reqID)
		ctx = telemetry.WithRegistry(ctx, s.reg)
		if tid, sid, ok := telemetry.ParseTraceParent(r.Header.Get(telemetry.TraceParentHeader)); ok {
			ctx = telemetry.WithRemoteParent(ctx, tid, sid)
		}
		ctx, span := telemetry.StartSpan(ctx, "http:"+route)
		span.SetAttr("route", route).SetAttr("request_id", reqID)
		if p := r.PathValue("platform"); p != "" {
			span.SetAttr("platform", p)
		}
		w.Header().Set(telemetry.TraceParentHeader, telemetry.FormatTraceParent(span.TraceID(), span.SpanID()))
		r = r.WithContext(ctx)

		inFlight := s.reg.Gauge("mlaas_http_in_flight")
		inFlight.Inc()
		defer inFlight.Dec()

		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(sw, r)
		dur := time.Since(start)
		span.SetAttr("status", fmt.Sprintf("%d", sw.code))
		if sw.code >= 500 {
			span.SetError(fmt.Errorf("http %d", sw.code))
		}
		span.End()
		s.reg.Histogram("mlaas_http_request_duration_seconds", "route", route).
			Observe(dur.Seconds())
		s.reg.Counter("mlaas_http_requests_total",
			"route", route,
			"platform", r.PathValue("platform"),
			"class", codeClass(sw.code)).Inc()
		if s.logger != nil {
			lvl, msg := slog.LevelDebug, "request"
			if s.slowReq > 0 && dur >= s.slowReq {
				lvl, msg = slog.LevelWarn, "slow request"
			}
			s.logger.Log(ctx, lvl, msg,
				"route", route,
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.code,
				"duration_ms", float64(dur)/float64(time.Millisecond),
				"request_id", reqID,
				"trace_id", span.TraceID(),
			)
		}
	}
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// handleMetricsJSON serves the registry snapshot with precomputed
// p50/p95/p99 per histogram series.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.Snapshot())
}

// handleTraceIndex serves the flight recorder's index: one summary line per
// retained trace, newest first.
func (s *Server) handleTraceIndex(w http.ResponseWriter, _ *http.Request) {
	sums := s.reg.Traces().Summaries()
	if sums == nil {
		sums = []telemetry.TraceSummary{}
	}
	writeJSON(w, http.StatusOK, sums)
}

// handleTraceGet serves one retained trace as its full span tree.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("trace")
	td, ok := s.reg.Traces().Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("trace %q not retained (evicted, sampled out, or never seen)", id)})
		return
	}
	writeJSON(w, http.StatusOK, td)
}

// HealthResponse is the GET /healthz body. Beyond liveness it carries the
// build/environment fingerprint (go version, GOMAXPROCS, NumCPU, git SHA
// when the binary was VCS-stamped), so any number scraped alongside it is
// attributable to the machine and toolchain that produced it — plus the
// two signals a saturation probe needs without parsing /metrics: the
// predict admission queue depth and the disk-tier traffic counters.
type HealthResponse struct {
	Status string `json:"status"`
	// Ready is false while the boot warm scan is still loading artifacts
	// from the disk tier — alive but not fit for cluster traffic. The
	// cluster router keeps not-ready replicas out of rotation.
	Ready         bool    `json:"ready"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Platforms      int     `json:"platforms"`
	ResidentModels int     `json:"resident_models"`
	GoVersion      string  `json:"go_version"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
	NumCPU         int     `json:"num_cpu"`
	GitSHA         string  `json:"git_sha,omitempty"`
	// AdmissionQueueDepth is how many predict requests are waiting for an
	// execution slot right now (always 0 with admission control off).
	AdmissionQueueDepth int64 `json:"admission_queue_depth"`
	// Store mirrors the disk-tier counters from /metrics; all zero when
	// no -store-dir is attached.
	Store StoreHealth `json:"store"`
}

// StoreHealth is the disk-tier counter block inside HealthResponse.
type StoreHealth struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Demotions int64 `json:"demotions"`
	WarmLoads int64 `json:"warm_loads"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	fp := telemetry.Fingerprint()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:              "ok",
		Ready:               s.Ready(),
		UptimeSeconds:       time.Since(s.started).Seconds(),
		Platforms:           len(s.plats),
		ResidentModels:      s.fits.size(),
		GoVersion:           fp.GoVersion,
		GOMAXPROCS:          fp.GOMAXPROCS,
		NumCPU:              fp.NumCPU,
		GitSHA:              fp.GitSHA,
		AdmissionQueueDepth: s.reg.Gauge(telemetry.AdmissionQueueDepth, "route", "predict").Value(),
		Store: StoreHealth{
			Hits:      s.reg.Counter(telemetry.StoreHits).Value(),
			Misses:    s.reg.Counter(telemetry.StoreMisses).Value(),
			Demotions: s.reg.Counter(telemetry.StoreDemotions).Value(),
			WarmLoads: s.reg.Counter(telemetry.StoreWarmLoads).Value(),
		},
	})
}

// apiError is the uniform error envelope. RequestID carries the request's
// correlation id so clients can match an error to server-side logs; Code,
// when present, is a stable machine-readable discriminator (load
// generators key on it to split sheds from malformed payloads without
// parsing prose).
type apiError struct {
	Error     string `json:"error"`
	Code      string `json:"code,omitempty"`
	RequestID string `json:"request_id,omitempty"`
}

// Stable error codes for the predict path. Error responses are always the
// JSON envelope regardless of the negotiated body codec.
const (
	codeBadRowWidth = "bad_row_width"
	codeBadPayload  = "bad_payload"
	codeNoInstances = "no_instances"
	codeOverloaded  = "overloaded"
)

func (s *Server) fail(w http.ResponseWriter, r *http.Request, code int, format string, args ...any) {
	s.failCode(w, r, code, "", format, args...)
}

func (s *Server) failCode(w http.ResponseWriter, r *http.Request, code int, errCode, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	reqID := telemetry.RequestID(r.Context())
	s.logf("service: %d %s (request %s)", code, msg, reqID)
	writeJSON(w, code, apiError{Error: msg, Code: errCode, RequestID: reqID})
}

// jsonBufPool recycles JSON encode/decode buffers across requests: the
// predict hot path would otherwise allocate a fresh scratch buffer per
// request. Buffers that grew past maxPooledBuf are dropped on return so one
// huge batch cannot pin memory for the life of the pool.
const maxPooledBuf = 1 << 20

var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getBuf() *bytes.Buffer {
	b := jsonBufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putBuf(b *bytes.Buffer) {
	if b.Cap() <= maxPooledBuf {
		jsonBufPool.Put(b)
	}
}

// readJSON decodes a request body through a pooled buffer.
func readJSON(r io.Reader, v any) error {
	buf := getBuf()
	defer putBuf(buf)
	if _, err := buf.ReadFrom(r); err != nil {
		return err
	}
	return json.Unmarshal(buf.Bytes(), v)
}

// writeJSON encodes through a pooled buffer, then writes in one shot.
func writeJSON(w http.ResponseWriter, code int, v any) {
	buf := getBuf()
	defer putBuf(buf)
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(buf.Bytes())
}

// PlatformInfo is the directory entry for one platform.
type PlatformInfo struct {
	Name        string `json:"name"`
	Complexity  int    `json:"complexity"`
	BlackBox    bool   `json:"black_box"`
	Classifiers int    `json:"classifiers"`
	FeatOptions int    `json:"feat_options"`
}

func (s *Server) handleListPlatforms(w http.ResponseWriter, _ *http.Request) {
	var out []PlatformInfo
	for _, name := range platforms.Names() {
		p := s.plats[name]
		surf := p.Surface()
		out = append(out, PlatformInfo{
			Name:        p.Name(),
			Complexity:  p.Complexity(),
			BlackBox:    p.BaselineClassifier() == "",
			Classifiers: len(surf.Classifiers),
			FeatOptions: len(surf.Feats),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// SurfaceDoc describes one platform's user-visible controls.
type SurfaceDoc struct {
	Platform    string          `json:"platform"`
	Feats       []string        `json:"feats"`
	Classifiers []ClassifierDoc `json:"classifiers"`
}

// ClassifierDoc documents one classifier's tunable parameters.
type ClassifierDoc struct {
	Name   string     `json:"name"`
	Params []ParamDoc `json:"params"`
}

// ParamDoc documents one tunable parameter.
type ParamDoc struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"` // "categorical" | "numeric"
	Options []any  `json:"options,omitempty"`
	Default any    `json:"default"`
}

func (s *Server) handleSurface(w http.ResponseWriter, r *http.Request) {
	p, ok := s.platform(r)
	if !ok {
		s.fail(w, r, http.StatusNotFound, "unknown platform %q", r.PathValue("platform"))
		return
	}
	surf := p.Surface()
	doc := SurfaceDoc{Platform: p.Name()}
	for _, f := range surf.Feats {
		doc.Feats = append(doc.Feats, f.String())
	}
	for _, cs := range surf.Classifiers {
		cd := ClassifierDoc{Name: cs.Name}
		for _, ps := range cs.Params {
			kind := "numeric"
			if ps.Kind == classifiers.Categorical {
				kind = "categorical"
			}
			cd.Params = append(cd.Params, ParamDoc{
				Name:    ps.Name,
				Kind:    kind,
				Options: ps.Options,
				Default: ps.DefaultValue(),
			})
		}
		doc.Classifiers = append(doc.Classifiers, cd)
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) platform(r *http.Request) (platforms.Platform, bool) {
	p, ok := s.plats[r.PathValue("platform")]
	return p, ok
}

// UploadRequest carries a dataset as JSON. CSV uploads use Content-Type
// text/csv with the dataset.WriteCSV layout as the body.
type UploadRequest struct {
	Name string      `json:"name"`
	X    [][]float64 `json:"x"`
	Y    []int       `json:"y"`
}

// UploadResponse returns the stored dataset id.
type UploadResponse struct {
	ID      string `json:"id"`
	Samples int    `json:"samples"`
	Columns int    `json:"columns"`
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	p, ok := s.platform(r)
	if !ok {
		s.fail(w, r, http.StatusNotFound, "unknown platform %q", r.PathValue("platform"))
		return
	}
	var ds *dataset.Dataset
	ct := r.Header.Get("Content-Type")
	switch {
	case strings.HasPrefix(ct, "text/csv"):
		parsed, err := dataset.ReadCSV(r.Body, "upload")
		if err != nil {
			s.fail(w, r, http.StatusBadRequest, "parse csv: %v", err)
			return
		}
		ds = parsed
	default:
		var req UploadRequest
		if err := readJSON(r.Body, &req); err != nil {
			s.fail(w, r, http.StatusBadRequest, "parse json: %v", err)
			return
		}
		ds = &dataset.Dataset{Name: req.Name, X: req.X, Y: req.Y}
	}
	if err := ds.Validate(); err != nil {
		s.fail(w, r, http.StatusBadRequest, "invalid dataset: %v", err)
		return
	}
	if ds.N() == 0 {
		s.fail(w, r, http.StatusBadRequest, "empty dataset")
		return
	}
	// Like the real services, no data cleaning happens server-side (§2);
	// datasets with missing values are rejected rather than silently fixed.
	if ds.HasMissing() {
		s.fail(w, r, http.StatusBadRequest, "dataset has missing values; clean before upload")
		return
	}

	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("ds-%d", s.nextID)
	s.datasets[p.Name()+"/"+id] = &storedDataset{platform: p.Name(), data: ds}
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, UploadResponse{ID: id, Samples: ds.N(), Columns: ds.D()})
}

// TrainRequest asks the platform to build a model.
type TrainRequest struct {
	Dataset    string         `json:"dataset"`
	Feat       string         `json:"feat,omitempty"`       // FEAT option (pipeline.Feat syntax)
	Classifier string         `json:"classifier,omitempty"` // ignored by black boxes
	Params     map[string]any `json:"params,omitempty"`
	Seed       uint64         `json:"seed,omitempty"`
}

// TrainResponse returns the model id.
type TrainResponse struct {
	ID string `json:"id"`
}

func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request) {
	p, ok := s.platform(r)
	if !ok {
		s.fail(w, r, http.StatusNotFound, "unknown platform %q", r.PathValue("platform"))
		return
	}
	var req TrainRequest
	if err := readJSON(r.Body, &req); err != nil {
		s.fail(w, r, http.StatusBadRequest, "parse json: %v", err)
		return
	}
	s.mu.RLock()
	sd, ok := s.datasets[p.Name()+"/"+req.Dataset]
	s.mu.RUnlock()
	if !ok {
		s.fail(w, r, http.StatusNotFound, "unknown dataset %q on %s", req.Dataset, p.Name())
		return
	}
	cfg, err := s.buildConfig(p, req)
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	// Fit the real model now, at model-creation time, and park the fitted
	// artifact in the cache for the first predict. Train errors therefore
	// surface here, matching the paper's platforms, which likewise failed
	// at train time. Identical concurrent train requests coalesce into a
	// single fit.
	ctx := r.Context()
	if _, _, err := s.fits.get(modelKey(p.Name(), req.Dataset, cfg, req.Seed), func() (platforms.FittedModel, error) {
		return fitInSpan(ctx, p, cfg, sd.data, req.Seed)
	}); err != nil {
		s.fail(w, r, http.StatusUnprocessableEntity, "train: %v", err)
		return
	}

	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("m-%d", s.nextID)
	s.models[p.Name()+"/"+id] = &storedModel{
		platform:  p.Name(),
		datasetID: req.Dataset,
		config:    cfg,
		seed:      req.Seed,
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, TrainResponse{ID: id})
}

// buildConfig converts a TrainRequest into a pipeline config appropriate for
// the platform: black boxes accept no configuration at all.
func (s *Server) buildConfig(p platforms.Platform, req TrainRequest) (pipeline.Config, error) {
	if p.BaselineClassifier() == "" {
		if req.Classifier != "" || req.Feat != "" || len(req.Params) > 0 {
			return pipeline.Config{}, errors.New("platform is fully automated and accepts no configuration")
		}
		return pipeline.Config{}, nil
	}
	clf := req.Classifier
	if clf == "" {
		clf = p.BaselineClassifier()
	}
	cfg, err := p.Surface().DefaultConfig(clf)
	if err != nil {
		return pipeline.Config{}, err
	}
	if req.Feat != "" {
		f, err := pipeline.ParseFeat(req.Feat)
		if err != nil {
			return pipeline.Config{}, err
		}
		cfg.Feat = f
	}
	for k, v := range req.Params {
		if _, known := cfg.Params[k]; !known {
			return pipeline.Config{}, fmt.Errorf("parameter %q not exposed by %s/%s", k, p.Name(), clf)
		}
		// JSON numbers arrive as float64; normalize int-typed defaults.
		if _, isInt := cfg.Params[k].(int); isInt {
			if f, isFloat := v.(float64); isFloat {
				v = int(f)
			}
		}
		cfg.Params[k] = v
	}
	return cfg, nil
}

// PredictRequest carries query instances.
type PredictRequest struct {
	Instances [][]float64 `json:"instances"`
}

// PredictResponse returns predicted labels aligned with the instances. The
// label slice is the classifier's own output — allocated once at exactly
// len(instances), never copied or regrown on the way to the encoder.
type PredictResponse struct {
	Labels []int `json:"labels"`
}

// negotiatePredict picks the request and response codecs. A binary body is
// declared via Content-Type; the response follows the request codec unless
// Accept explicitly asks for the other one (Accept: application/json on a
// binary request downgrades the response; Accept: application/x-mlaas-frames
// on a JSON request upgrades it).
func negotiatePredict(r *http.Request) (binaryIn, binaryOut bool) {
	binaryIn = wire.Negotiates(r.Header.Get("Content-Type"))
	accept := r.Header.Get("Accept")
	switch {
	case wire.Negotiates(accept):
		binaryOut = true
	case strings.Contains(accept, "application/json"):
		binaryOut = false
	default:
		binaryOut = binaryIn
	}
	return binaryIn, binaryOut
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	p, ok := s.platform(r)
	if !ok {
		s.fail(w, r, http.StatusNotFound, "unknown platform %q", r.PathValue("platform"))
		return
	}
	s.mu.RLock()
	m, ok := s.models[p.Name()+"/"+r.PathValue("model")]
	s.mu.RUnlock()
	if !ok {
		s.fail(w, r, http.StatusNotFound, "unknown model %q on %s", r.PathValue("model"), p.Name())
		return
	}
	s.mu.RLock()
	sd := s.datasets[p.Name()+"/"+m.datasetID]
	s.mu.RUnlock()
	if sd == nil {
		s.fail(w, r, http.StatusGone, "model's dataset was removed")
		return
	}
	width := sd.data.D()
	binaryIn, binaryOut := negotiatePredict(r)
	codec := "json"
	if binaryIn {
		codec = "binary"
	}
	s.reg.Counter(telemetry.CodecRequestsTotal, "codec", codec).Inc()

	// The hot path: resolve the resident fitted model (refitting from the
	// description only after an eviction or restart) and run a pure forward
	// pass. The resolve happens before the body is consumed because binary
	// bodies stream: each frame predicts as it is decoded, so the model
	// must be ready when the first frame lands. The latency histogram
	// splits the two regimes so the cache's effect is visible per request
	// class, and the resolve/forward split is visible as child spans in
	// the request trace.
	ctx := r.Context()
	start := time.Now()
	resCtx, resolve := telemetry.StartSpan(ctx, "model_resolve")
	fm, refit, err := s.fits.get(modelKey(m.platform, m.datasetID, m.config, m.seed), func() (platforms.FittedModel, error) {
		return fitInSpan(resCtx, p, m.config, sd.data, m.seed)
	})
	path := "forward"
	if refit {
		path = "refit"
	}
	resolve.SetAttr("path", path)
	resolve.SetError(err)
	resolve.End()
	if err != nil {
		s.fail(w, r, http.StatusInternalServerError, "predict: %v", err)
		return
	}
	// Large batches fan across a bounded set of row shards, each an
	// independent forward pass over a contiguous instance range stitched
	// back in input order — byte-identical to the serial pass. Shard spans
	// attach concurrently to the forward span; the trace tree is
	// mutex-guarded so that is safe.
	fwdCtx, forward := telemetry.StartSpan(ctx, "forward")
	predict := fm.Predict
	if cp, ok := fm.(platforms.ContextPredictor); ok {
		predict = func(points [][]float64) []int { return cp.PredictCtx(fwdCtx, points) }
	}
	predictRows := func(instances [][]float64) []int {
		return pipeline.PredictSharded(predict, instances, pipeline.ShardCount(len(instances), s.predictShards))
	}

	var (
		labels    []int  // JSON response accumulation
		respBuf   []byte // binary response frames
		lastFrame = -1   // offset of the newest label frame in respBuf
		totalRows int
		frames    int
	)
	if binaryOut {
		respBuf = wire.GetBuffer()
		defer func() { wire.PutBuffer(respBuf) }()
	}
	emit := func(part [][]float64) {
		got := predictRows(part)
		totalRows += len(part)
		frames++
		if binaryOut {
			lastFrame = len(respBuf)
			respBuf = wire.AppendLabelsFrame(respBuf, got, 0)
			s.reg.Histogram(telemetry.WireFrameBytesHistogram, "dir", "tx").
				Observe(float64(len(respBuf) - lastFrame))
		} else if labels == nil {
			// Single-batch JSON responses hand the classifier's own output
			// slice to the encoder, never copied or regrown.
			labels = got
		} else {
			labels = append(labels, got...)
		}
	}

	if binaryIn {
		// Streaming decode: every frame is validated, predicted and its
		// label frame appended before the next frame is read, so a
		// multi-frame body pipelines through the server without one giant
		// matrix allocation. Nothing is written until the whole body has
		// decoded cleanly, so malformed later frames still get a clean 400.
		dec := wire.NewReader(r.Body)
		rxBytes := s.reg.Histogram(telemetry.WireFrameBytesHistogram, "dir", "rx")
		for {
			rows, last, err := dec.NextMatrix()
			if err == io.EOF {
				break
			}
			if err != nil {
				forward.End()
				s.failCode(w, r, http.StatusBadRequest, codeBadPayload, "decode frame %d: %v", frames, err)
				return
			}
			if len(rows) > 0 {
				rxBytes.Observe(float64(wire.HeaderSize + 8*len(rows)*len(rows[0])))
				if len(rows[0]) != width {
					forward.End()
					s.failCode(w, r, http.StatusBadRequest, codeBadRowWidth,
						"frame %d rows have %d features, dataset has %d", frames, len(rows[0]), width)
					return
				}
				emit(rows)
			}
			if last {
				break
			}
		}
		if totalRows == 0 {
			forward.End()
			s.failCode(w, r, http.StatusBadRequest, codeNoInstances, "no instances")
			return
		}
	} else {
		var req PredictRequest
		if err := readJSON(r.Body, &req); err != nil {
			forward.End()
			s.failCode(w, r, http.StatusBadRequest, codeBadPayload, "parse json: %v", err)
			return
		}
		if len(req.Instances) == 0 {
			forward.End()
			s.failCode(w, r, http.StatusBadRequest, codeNoInstances, "no instances")
			return
		}
		// Clamp every row to the model's feature width before any of them
		// reaches the forward pass — a ragged row would otherwise index
		// out of range deep inside a kernel.
		for i, inst := range req.Instances {
			if len(inst) != width {
				forward.End()
				s.failCode(w, r, http.StatusBadRequest, codeBadRowWidth,
					"instance %d has %d features, dataset has %d", i, len(inst), width)
				return
			}
		}
		emit(req.Instances)
	}

	forward.SetAttr("batch_rows", strconv.Itoa(totalRows)).
		SetAttr("shards", strconv.Itoa(pipeline.ShardCount(totalRows, s.predictShards))).
		SetAttr("codec", codec).
		SetAttr("frames", strconv.Itoa(frames))
	forward.End()
	s.reg.Histogram(telemetry.PredictPathHistogram, "path", path).Observe(time.Since(start).Seconds())
	s.reg.Histogram(telemetry.PredictBatchSizeHistogram).Observe(float64(totalRows))
	if binaryOut {
		wire.MarkLast(respBuf, lastFrame)
		w.Header().Set("Content-Type", wire.ContentType)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(respBuf)
		return
	}
	writeJSON(w, http.StatusOK, PredictResponse{Labels: labels})
}

// fitInSpan runs the platform fit inside a "model_fit" child span of ctx,
// taking the trace-aware fit path when the platform offers one (the
// pipeline's own "fit"/"preprocess"/"featsel" stage spans nest below it).
// It only runs for the request that actually fits: coalesced waiters and
// cache hits never enter the modelCache fill function.
func fitInSpan(ctx context.Context, p platforms.Platform, cfg pipeline.Config, ds *dataset.Dataset, seed uint64) (platforms.FittedModel, error) {
	fitCtx, span := telemetry.StartSpan(ctx, "model_fit")
	var fm platforms.FittedModel
	var err error
	if cf, ok := p.(platforms.ContextFitter); ok {
		fm, err = cf.FitCtx(fitCtx, cfg, ds, seed)
	} else {
		fm, err = p.Fit(cfg, ds, seed)
	}
	span.SetError(err)
	span.End()
	return fm, err
}
