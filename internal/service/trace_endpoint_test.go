package service_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"mlaasbench/internal/client"
	"mlaasbench/internal/dataset"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/service"
	"mlaasbench/internal/telemetry"
)

// TestDebugTracesEndpoints drives one train+predict round trip and then
// reads the flight recorder back over HTTP: /debug/traces must index the
// handler traces, /debug/traces/{id} must return the full span tree, and a
// bogus id must 404.
func TestDebugTracesEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := httptest.NewServer(service.NewServer(func(string, ...any) {}).WithRegistry(reg).Handler())
	defer srv.Close()
	c := client.New(srv.URL)

	split := dataset.Split{
		Train: &dataset.Dataset{Name: "tr", X: [][]float64{{-1}, {-2}, {1}, {2}}, Y: []int{0, 0, 1, 1}},
		Test:  &dataset.Dataset{Name: "te", X: [][]float64{{-3}, {3}}, Y: []int{0, 1}},
	}
	if _, err := c.Measure(context.Background(), "google", split, pipeline.Config{}, 1); err != nil {
		t.Fatalf("measure: %v", err)
	}

	resp, err := http.Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatalf("GET /debug/traces: %v", err)
	}
	var index []telemetry.TraceSummary
	if err := json.NewDecoder(resp.Body).Decode(&index); err != nil {
		t.Fatalf("decode index: %v", err)
	}
	_ = resp.Body.Close()
	if len(index) < 3 {
		t.Fatalf("index has %d traces, want at least upload+train+predict", len(index))
	}
	names := map[string]bool{}
	for _, s := range index {
		names[s.Name] = true
	}
	for _, want := range []string{"http:upload", "http:train", "http:predict"} {
		if !names[want] {
			t.Errorf("index lacks %s; got %v", want, names)
		}
	}

	resp, err = http.Get(srv.URL + "/debug/traces/" + index[0].TraceID)
	if err != nil {
		t.Fatalf("GET trace: %v", err)
	}
	var td telemetry.TraceData
	if err := json.NewDecoder(resp.Body).Decode(&td); err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	_ = resp.Body.Close()
	if td.TraceID != index[0].TraceID {
		t.Errorf("trace id %q, want %q", td.TraceID, index[0].TraceID)
	}
	if td.Root.SpanID == "" || td.Root.Name == "" {
		t.Errorf("trace root not populated: %+v", td.Root)
	}

	resp, err = http.Get(srv.URL + "/debug/traces/ffffffffffffffffffffffffffffffff")
	if err != nil {
		t.Fatalf("GET missing trace: %v", err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing trace returned %d, want 404", resp.StatusCode)
	}
}
