package perf

import (
	"math"
	"testing"
	"time"
)

var legacyTimes = map[string]time.Time{
	"seed": time.Date(2026, 8, 5, 11, 6, 11, 0, time.UTC),
	"pr2":  time.Date(2026, 8, 5, 12, 29, 37, 0, time.UTC),
	"pr3":  time.Date(2026, 8, 5, 12, 57, 15, 0, time.UTC),
	"pr4":  time.Date(2026, 8, 5, 13, 37, 13, 0, time.UTC),
	"pr5":  time.Date(2026, 8, 5, 14, 21, 30, 0, time.UTC),
}

func TestConvertLegacyPR2Shape(t *testing.T) {
	blob := []byte(`{
	  "benchmark": "RunSweep quick",
	  "host": {"cpu": "Intel Xeon @ 2.10GHz", "cpus_visible": 1},
	  "runs_seconds_per_op": {
	    "seed_engine": [32.50, 32.51, 32.74],
	    "pr2_workers1": [16.77, 16.71],
	    "pr2_workers4": [16.89, 15.65, 16.30]
	  }
	}`)
	recs, err := ConvertLegacy(blob, "BENCH_PR2.json", legacyTimes)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want seed + pr2", len(recs))
	}
	seed, pr2 := recs[0], recs[1]
	if seed.Label != "seed" || pr2.Label != "pr2" {
		t.Fatalf("labels %q %q", seed.Label, pr2.Label)
	}
	if !seed.Time.Before(pr2.Time) {
		t.Error("seed record must predate pr2")
	}
	ss := seed.Result("BenchmarkSweepSerial", "ns/op")
	if ss == nil || len(ss.Runs) != 3 || ss.Runs[0] != 32.50e9 {
		t.Fatalf("seed sweep serial wrong: %+v", ss)
	}
	if pr2.Result("BenchmarkSweepParallel4", "ns/op") == nil ||
		pr2.Result("BenchmarkSweepSerial", "ns/op") == nil {
		t.Fatalf("pr2 results wrong: %+v", pr2.Results)
	}
	if seed.Env.NumCPU != 1 || seed.Env.CPUModel == "" {
		t.Errorf("host fingerprint not carried: %+v", seed.Env)
	}
}

func TestConvertLegacyPR5Shape(t *testing.T) {
	blob := []byte(`{
	  "host": {"cpu": "Intel Xeon", "cpus_visible": 1},
	  "runs_ns_per_op": {
	    "pr4_gemm": [2054098, 2134719],
	    "pr5_gemm": [2162159, 2205752],
	    "pr4_sweep_serial_s": [16.24, 16.74],
	    "pr5_sweep_serial_s": [12.95, 16.88]
	  }
	}`)
	recs, err := ConvertLegacy(blob, "BENCH_PR5.json", legacyTimes)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want pr4 + pr5", len(recs))
	}
	pr4 := recs[0]
	if pr4.Label != "pr4" {
		t.Fatalf("first record %q, want pr4 (older)", pr4.Label)
	}
	sw := pr4.Result("BenchmarkSweepSerial", "ns/op")
	if sw == nil || math.Abs(sw.Runs[0]-16.24e9) > 1 {
		t.Fatalf("seconds key not scaled to ns: %+v", sw)
	}
	if g := pr4.Result("BenchmarkGEMM", "ns/op"); g == nil || g.Runs[0] != 2054098 {
		t.Fatalf("ns key rescaled wrongly: %+v", g)
	}
}

func TestConvertLegacyPR3Shape(t *testing.T) {
	blob := []byte(`{
	  "platform": "local", "classifier": "mlp", "config": "none|mlp",
	  "clients": 4, "batch": 64,
	  "passes": [
	    {"name": "refit", "requests": 439, "req_per_sec": 145.7, "instances_per_sec": 8743.0,
	     "mean_ms": 27.4, "p50_ms": 20.7, "p95_ms": 41.2, "p99_ms": 43.0},
	    {"name": "forward", "requests": 14291, "req_per_sec": 4763.2, "instances_per_sec": 285792.9,
	     "mean_ms": 0.84, "p50_ms": 0.79, "p95_ms": 1.11, "p99_ms": 1.66}
	  ]
	}`)
	recs, err := ConvertLegacy(blob, "BENCH_PR3.json", legacyTimes)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Kind != KindLoadgen || recs[0].Label != "pr3" {
		t.Fatalf("loadgen conversion wrong: %+v", recs)
	}
	fwd := recs[0].Result("loadgen/forward", "req/s")
	if fwd == nil || fwd.Mean != 4763.2 || !fwd.HigherIsBetter {
		t.Fatalf("forward req/s wrong: %+v", fwd)
	}
	if p95 := recs[0].Result("loadgen/refit", "p95_ms"); p95 == nil || p95.HigherIsBetter {
		t.Fatalf("refit p95 wrong: %+v", p95)
	}
}

func TestConvertLegacyRejectsUnknown(t *testing.T) {
	if _, err := ConvertLegacy([]byte(`{"something": "else"}`), "x.json", legacyTimes); err == nil {
		t.Fatal("unknown shape must error")
	}
	if _, err := ConvertLegacy([]byte(`{"runs_ns_per_op": {"mystery_key": [1]}}`), "x.json", legacyTimes); err == nil {
		t.Fatal("unknown legacy key must error, not fabricate history")
	}
	if _, err := ConvertLegacy([]byte(`{"runs_ns_per_op": {"pr4_gemm": [1]}}`), "x.json", map[string]time.Time{}); err == nil {
		t.Fatal("missing timestamp must error")
	}
}
