package perf

import (
	"fmt"
	"io"
	"sort"
)

// CompareOptions tune regression detection.
type CompareOptions struct {
	// Threshold is the minimum relative change-for-the-worse that counts
	// as a regression (0.10 = 10%).
	Threshold float64
	// NoiseMult widens the floor for noisy series: a change must also
	// exceed NoiseMult × max(old CV, new CV) before it is believed. With
	// the CV gate keeping CVs small this rarely dominates; for series
	// flagged HighVariance it is what keeps false alarms down.
	NoiseMult float64
}

// DefaultCompareOptions: 10% threshold, 2× the observed CV as noise floor.
func DefaultCompareOptions() CompareOptions {
	return CompareOptions{Threshold: 0.10, NoiseMult: 2.0}
}

// Delta is one (name, unit) series diffed across two records.
type Delta struct {
	Name    string  `json:"name"`
	Unit    string  `json:"unit"`
	OldMean float64 `json:"old_mean"`
	NewMean float64 `json:"new_mean"`
	// Pct is the relative change (new-old)/old; sign follows the raw
	// values, not better/worse.
	Pct            float64 `json:"pct"`
	OldCV          float64 `json:"old_cv"`
	NewCV          float64 `json:"new_cv"`
	HigherIsBetter bool    `json:"higher_is_better,omitempty"`
	// Floor is the effective significance bar this delta was judged
	// against: max(Threshold, NoiseMult×max CV).
	Floor       float64 `json:"floor"`
	Regression  bool    `json:"regression,omitempty"`
	Improvement bool    `json:"improvement,omitempty"`
}

// Comparison is the full diff of two records.
type Comparison struct {
	OldLabel string  `json:"old_label"`
	NewLabel string  `json:"new_label"`
	EnvMatch bool    `json:"env_match"`
	Deltas   []Delta `json:"deltas"`
	// OnlyOld / OnlyNew name series present in exactly one record
	// (rendered informationally, never judged).
	OnlyOld     []string `json:"only_old,omitempty"`
	OnlyNew     []string `json:"only_new,omitempty"`
	Regressions int      `json:"regressions"`
}

// Compare diffs every series the two records share. It never errors on
// partial overlap — history entries legitimately cover different suites —
// but returns an error when nothing overlaps at all, since that compare
// would vacuously "pass".
func Compare(old, new *Record, opts CompareOptions) (*Comparison, error) {
	cmp := &Comparison{
		OldLabel: recLabel(old),
		NewLabel: recLabel(new),
		EnvMatch: old.Env.Same(new.Env),
	}
	seen := map[[2]string]bool{}
	for _, nr := range new.Results {
		or := old.Result(nr.Name, nr.Unit)
		if or == nil {
			cmp.OnlyNew = append(cmp.OnlyNew, nr.Name+" ("+nr.Unit+")")
			continue
		}
		seen[[2]string{nr.Name, nr.Unit}] = true
		cmp.Deltas = append(cmp.Deltas, judge(*or, nr, opts))
	}
	for _, or := range old.Results {
		if !seen[[2]string{or.Name, or.Unit}] {
			cmp.OnlyOld = append(cmp.OnlyOld, or.Name+" ("+or.Unit+")")
		}
	}
	if len(cmp.Deltas) == 0 {
		return nil, fmt.Errorf("records %q and %q share no (name, unit) series; nothing to compare", cmp.OldLabel, cmp.NewLabel)
	}
	sort.Slice(cmp.Deltas, func(i, j int) bool {
		if cmp.Deltas[i].Name != cmp.Deltas[j].Name {
			return cmp.Deltas[i].Name < cmp.Deltas[j].Name
		}
		return cmp.Deltas[i].Unit < cmp.Deltas[j].Unit
	})
	for _, d := range cmp.Deltas {
		if d.Regression {
			cmp.Regressions++
		}
	}
	return cmp, nil
}

func judge(old, new Result, opts CompareOptions) Delta {
	d := Delta{
		Name: new.Name, Unit: new.Unit,
		OldMean: old.Mean, NewMean: new.Mean,
		OldCV: old.CV, NewCV: new.CV,
		HigherIsBetter: new.HigherIsBetter,
	}
	if old.Mean != 0 {
		d.Pct = (new.Mean - old.Mean) / old.Mean
	}
	maxCV := old.CV
	if new.CV > maxCV {
		maxCV = new.CV
	}
	d.Floor = opts.Threshold
	if noise := opts.NoiseMult * maxCV; noise > d.Floor {
		d.Floor = noise
	}
	worse := d.Pct
	if d.HigherIsBetter {
		worse = -d.Pct
	}
	switch {
	case worse > d.Floor:
		d.Regression = true
	case -worse > d.Floor:
		d.Improvement = true
	}
	return d
}

func recLabel(rec *Record) string {
	if rec.Label != "" {
		return rec.Label
	}
	return rec.Time.UTC().Format("20060102T150405Z")
}

// WriteComparison renders the diff as a text table: one row per shared
// series, flagged ! for regressions and + for improvements.
func WriteComparison(w io.Writer, cmp *Comparison) {
	fmt.Fprintf(w, "compare: %s -> %s\n", cmp.OldLabel, cmp.NewLabel)
	if !cmp.EnvMatch {
		fmt.Fprintf(w, "  note: environment fingerprints differ; deltas may reflect the machine, not the code\n")
	}
	fmt.Fprintf(w, "  %-34s %-12s %14s %14s %9s %8s  %s\n",
		"series", "unit", "old", "new", "delta", "floor", "verdict")
	for _, d := range cmp.Deltas {
		verdict := "ok"
		switch {
		case d.Regression:
			verdict = "! REGRESSION"
		case d.Improvement:
			verdict = "+ improved"
		}
		fmt.Fprintf(w, "  %-34s %-12s %14s %14s %+8.1f%% %7.1f%%  %s\n",
			d.Name, d.Unit, formatValue(d.OldMean, d.Unit), formatValue(d.NewMean, d.Unit),
			d.Pct*100, d.Floor*100, verdict)
	}
	for _, s := range cmp.OnlyNew {
		fmt.Fprintf(w, "  new series (no baseline): %s\n", s)
	}
	for _, s := range cmp.OnlyOld {
		fmt.Fprintf(w, "  series gone from latest: %s\n", s)
	}
}

// formatValue renders a value with a human scale for duration units.
func formatValue(v float64, unit string) string {
	if unit == "ns/op" {
		switch {
		case v >= 1e9:
			return fmt.Sprintf("%.2fs", v/1e9)
		case v >= 1e6:
			return fmt.Sprintf("%.2fms", v/1e6)
		case v >= 1e3:
			return fmt.Sprintf("%.1fµs", v/1e3)
		}
		return fmt.Sprintf("%.0fns", v)
	}
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.3g", v)
	case v >= 100:
		return fmt.Sprintf("%.1f", v)
	}
	return fmt.Sprintf("%.3f", v)
}
