package perf

import (
	"strings"
	"testing"
	"time"
)

func mkResult(name, unit string, runs ...float64) Result {
	r := Result{Name: name, Unit: unit, Runs: runs, HigherIsBetter: HigherBetterUnit(unit)}
	r.Finalize()
	return r
}

func mkRecord(label string, results ...Result) *Record {
	return &Record{
		Schema: SchemaVersion, Kind: KindBench, Label: label,
		Time: time.Unix(0, 0), Results: results,
	}
}

// TestCompareDetectsSyntheticRegression is the doctored-history self-test:
// an injected 50% slowdown must flag a regression, while the unchanged
// series stays quiet.
func TestCompareDetectsSyntheticRegression(t *testing.T) {
	old := mkRecord("old",
		mkResult("BenchmarkGEMM", "ns/op", 1000, 1010, 990),
		mkResult("BenchmarkStable", "ns/op", 500, 505, 495),
	)
	doctored := mkRecord("new",
		mkResult("BenchmarkGEMM", "ns/op", 1500, 1510, 1490), // +50%
		mkResult("BenchmarkStable", "ns/op", 501, 499, 500),
	)
	cmp, err := Compare(old, doctored, DefaultCompareOptions())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Regressions != 1 {
		t.Fatalf("regressions = %d, want 1: %+v", cmp.Regressions, cmp.Deltas)
	}
	for _, d := range cmp.Deltas {
		switch d.Name {
		case "BenchmarkGEMM":
			if !d.Regression {
				t.Errorf("GEMM +50%% not flagged: %+v", d)
			}
		case "BenchmarkStable":
			if d.Regression || d.Improvement {
				t.Errorf("Stable wrongly flagged: %+v", d)
			}
		}
	}
}

func TestCompareUnchangedRunPasses(t *testing.T) {
	old := mkRecord("old", mkResult("BenchmarkGEMM", "ns/op", 1000, 1010, 990))
	same := mkRecord("new", mkResult("BenchmarkGEMM", "ns/op", 1005, 995, 1002))
	cmp, err := Compare(old, same, DefaultCompareOptions())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Regressions != 0 {
		t.Fatalf("unchanged run flagged %d regressions: %+v", cmp.Regressions, cmp.Deltas)
	}
}

// Higher-is-better units regress downward: a req/s drop is the failure.
func TestCompareHigherIsBetterDirection(t *testing.T) {
	old := mkRecord("old", mkResult("loadgen/forward", "req/s", 4800, 4750))
	slower := mkRecord("new", mkResult("loadgen/forward", "req/s", 3000, 3010))
	cmp, err := Compare(old, slower, DefaultCompareOptions())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Regressions != 1 {
		t.Fatalf("req/s drop not flagged: %+v", cmp.Deltas)
	}
	faster := mkRecord("new", mkResult("loadgen/forward", "req/s", 6000, 6010))
	cmp, err = Compare(old, faster, DefaultCompareOptions())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Regressions != 0 || !cmp.Deltas[0].Improvement {
		t.Fatalf("req/s gain misjudged: %+v", cmp.Deltas)
	}
}

// The noise floor widens for noisy series: a 15% delta on a 10%-CV series
// must not alarm under NoiseMult 2.
func TestCompareNoiseFloor(t *testing.T) {
	old := mkRecord("old", mkResult("BenchmarkJittery", "ns/op", 900, 1100, 1000)) // CV ~10%
	newer := mkRecord("new", mkResult("BenchmarkJittery", "ns/op", 1150, 1150, 1150))
	cmp, err := Compare(old, newer, DefaultCompareOptions())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Deltas[0].Regression {
		t.Fatalf("15%% delta inside 2x10%% noise floor flagged: %+v", cmp.Deltas[0])
	}
	if cmp.Deltas[0].Floor <= 0.10 {
		t.Errorf("floor %v should exceed the base threshold", cmp.Deltas[0].Floor)
	}
}

func TestCompareDisjointSeriesErrors(t *testing.T) {
	old := mkRecord("old", mkResult("BenchmarkA", "ns/op", 1))
	newer := mkRecord("new", mkResult("BenchmarkB", "ns/op", 1))
	if _, err := Compare(old, newer, DefaultCompareOptions()); err == nil {
		t.Fatal("disjoint records must not vacuously pass")
	}
}

func TestComparePartialOverlapListsExtras(t *testing.T) {
	old := mkRecord("old",
		mkResult("BenchmarkA", "ns/op", 100),
		mkResult("BenchmarkGone", "ns/op", 100),
	)
	newer := mkRecord("new",
		mkResult("BenchmarkA", "ns/op", 101),
		mkResult("BenchmarkFresh", "ns/op", 100),
	)
	cmp, err := Compare(old, newer, DefaultCompareOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.OnlyOld) != 1 || len(cmp.OnlyNew) != 1 || len(cmp.Deltas) != 1 {
		t.Fatalf("overlap accounting wrong: %+v", cmp)
	}
	var sb strings.Builder
	WriteComparison(&sb, cmp)
	out := sb.String()
	if !strings.Contains(out, "BenchmarkFresh") || !strings.Contains(out, "BenchmarkGone") {
		t.Errorf("rendered comparison omits extras:\n%s", out)
	}
}
