package perf

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// fakeExec scripts benchmark output per invocation and records the -bench
// regex each round asked for.
type fakeExec struct {
	outputs []string
	calls   []string
}

func (f *fakeExec) exec(_ RunConfig, benchRegex string) ([]byte, error) {
	f.calls = append(f.calls, benchRegex)
	if len(f.outputs) == 0 {
		return nil, fmt.Errorf("fakeExec: no scripted output left")
	}
	out := f.outputs[0]
	f.outputs = f.outputs[1:]
	return []byte(out), nil
}

func benchLine(name string, ns float64) string {
	return fmt.Sprintf("%s 100 %g ns/op\n", name, ns)
}

// TestRunnerCVGateTriggersRerun scripts a stable benchmark next to a
// high-variance one: the gate must rerun only the noisy benchmark, merge
// the rerun samples, and settle once the CV drops under the gate.
func TestRunnerCVGateTriggersRerun(t *testing.T) {
	calm := ""
	for i := 0; i < 12; i++ {
		calm += benchLine("BenchmarkNoisy", 1080)
	}
	fe := &fakeExec{outputs: []string{
		// 3 suite rounds: Stable at ~100, Noisy swinging (CV ~13%).
		benchLine("BenchmarkStable", 100) + benchLine("BenchmarkNoisy", 1000),
		benchLine("BenchmarkStable", 101) + benchLine("BenchmarkNoisy", 1250),
		benchLine("BenchmarkStable", 99) + benchLine("BenchmarkNoisy", 1000),
		// CV-gate rerun round: only Noisy, calm samples dilute the swing
		// until the merged CV (~5%) settles under the 10% gate.
		calm,
	}}
	r := &Runner{Exec: fe.exec, Now: func() time.Time { return time.Unix(0, 0) }}
	rec, err := r.Run(RunConfig{
		Bench: "Stable|Noisy", Count: 3, CVGate: 0.10, MaxReruns: 3, Label: "t",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fe.calls) != 4 {
		t.Fatalf("exec called %d times (%v), want 3 suite rounds + 1 rerun", len(fe.calls), fe.calls)
	}
	if got := fe.calls[3]; got != "^(BenchmarkNoisy)$" {
		t.Errorf("rerun regex %q, want only the noisy benchmark", got)
	}
	stable := rec.Result("BenchmarkStable", "ns/op")
	if stable == nil || len(stable.Runs) != 3 || stable.Reruns != 0 || stable.HighVariance {
		t.Errorf("stable result wrong: %+v", stable)
	}
	noisy := rec.Result("BenchmarkNoisy", "ns/op")
	if noisy == nil || len(noisy.Runs) != 15 || noisy.Reruns != 1 {
		t.Fatalf("noisy result wrong: %+v", noisy)
	}
	if noisy.CV > 0.10 {
		t.Errorf("noisy CV %v still above gate after merge", noisy.CV)
	}
	if noisy.HighVariance {
		t.Error("noisy flagged high-variance despite settling")
	}
}

// TestRunnerFlagsUnsettledVariance exhausts MaxReruns on a benchmark that
// never calms down: it must come back flagged, not silently accepted.
func TestRunnerFlagsUnsettledVariance(t *testing.T) {
	swing := func(a, b float64) string { return benchLine("BenchmarkWild", a) + benchLine("BenchmarkWild", b) }
	fe := &fakeExec{outputs: []string{
		swing(1000, 3000), // suite round (count=1 gives both lines in one round)
		swing(500, 4000),  // rerun 1
		swing(100, 5000),  // rerun 2
	}}
	r := &Runner{Exec: fe.exec, Now: func() time.Time { return time.Unix(0, 0) }}
	rec, err := r.Run(RunConfig{Bench: "Wild", Count: 1, CVGate: 0.05, MaxReruns: 2})
	if err != nil {
		t.Fatal(err)
	}
	res := rec.Result("BenchmarkWild", "ns/op")
	if res == nil || !res.HighVariance || res.Reruns != 2 {
		t.Fatalf("want high-variance flag after exhausted reruns, got %+v", res)
	}
	if len(fe.calls) != 3 {
		t.Errorf("exec called %d times, want 1 suite + 2 reruns", len(fe.calls))
	}
}

func TestRunnerNoGateNoReruns(t *testing.T) {
	fe := &fakeExec{outputs: []string{
		benchLine("BenchmarkX", 100),
		benchLine("BenchmarkX", 10000),
	}}
	r := &Runner{Exec: fe.exec, Now: func() time.Time { return time.Unix(0, 0) }}
	rec, err := r.Run(RunConfig{Bench: "X", Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(fe.calls) != 2 {
		t.Errorf("gate disabled but exec ran %d times", len(fe.calls))
	}
	if res := rec.Result("BenchmarkX", "ns/op"); res.HighVariance {
		t.Error("high-variance flag set with gate disabled")
	}
}

func TestRunnerErrorsOnEmptyOutput(t *testing.T) {
	fe := &fakeExec{outputs: []string{"PASS\nok pkg 0.1s\n"}}
	r := &Runner{Exec: fe.exec}
	if _, err := r.Run(RunConfig{Bench: "None", Count: 1}); err == nil ||
		!strings.Contains(err.Error(), "no benchmark results") {
		t.Fatalf("want no-results error, got %v", err)
	}
}
