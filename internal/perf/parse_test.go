package perf

import (
	"math"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	out := []byte(`goos: linux
goarch: amd64
pkg: mlaasbench/internal/linalg
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkGEMM     	     546	   2162159 ns/op	  524288 B/op	       3 allocs/op
BenchmarkMLPForwardBatch-8 	    5919	    201731 ns/op
Benchmark 12 garbage ns/op
BenchmarkBadIters abc 123 ns/op
PASS
ok  	mlaasbench/internal/linalg	2.5s
`)
	samples := ParseBenchOutput(out)
	want := []Sample{
		{Name: "BenchmarkGEMM", Procs: 1, Unit: "ns/op", Value: 2162159, Iters: 546},
		{Name: "BenchmarkGEMM", Procs: 1, Unit: "B/op", Value: 524288, Iters: 546},
		{Name: "BenchmarkGEMM", Procs: 1, Unit: "allocs/op", Value: 3, Iters: 546},
		{Name: "BenchmarkMLPForwardBatch", Procs: 8, Unit: "ns/op", Value: 201731, Iters: 5919},
	}
	if len(samples) != len(want) {
		t.Fatalf("got %d samples, want %d: %+v", len(samples), len(want), samples)
	}
	for i, s := range samples {
		if s != want[i] {
			t.Errorf("sample %d = %+v, want %+v", i, s, want[i])
		}
	}
}

func TestSplitProcsKeepsDashedNames(t *testing.T) {
	for _, tc := range []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkGEMM-16", "BenchmarkGEMM", 16},
		{"BenchmarkGEMM", "BenchmarkGEMM", 1},
		{"BenchmarkFoo/sub-case", "BenchmarkFoo/sub-case", 1},
	} {
		name, procs := splitProcs(tc.in)
		if name != tc.name || procs != tc.procs {
			t.Errorf("splitProcs(%q) = %q,%d want %q,%d", tc.in, name, procs, tc.name, tc.procs)
		}
	}
}

func TestMergeSamplesAccumulatesRuns(t *testing.T) {
	var results []Result
	results = MergeSamples(results, []Sample{{Name: "BenchmarkX", Unit: "ns/op", Value: 100}})
	results = MergeSamples(results, []Sample{{Name: "BenchmarkX", Unit: "ns/op", Value: 110}})
	results = MergeSamples(results, []Sample{{Name: "BenchmarkY", Unit: "req/s", Value: 50}})
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	x := results[0]
	if len(x.Runs) != 2 || x.Mean != 105 {
		t.Errorf("BenchmarkX runs %v mean %v, want 2 runs mean 105", x.Runs, x.Mean)
	}
	wantCV := (math.Sqrt(50) / 105)
	if math.Abs(x.CV-wantCV) > 1e-12 {
		t.Errorf("BenchmarkX cv %v, want %v", x.CV, wantCV)
	}
	if x.HigherIsBetter {
		t.Error("ns/op marked higher-is-better")
	}
	if !results[1].HigherIsBetter {
		t.Error("req/s not marked higher-is-better")
	}
}

func TestMeanCVEdgeCases(t *testing.T) {
	if m, cv := MeanCV(nil); m != 0 || cv != 0 {
		t.Errorf("empty: %v %v", m, cv)
	}
	if m, cv := MeanCV([]float64{42}); m != 42 || cv != 0 {
		t.Errorf("single: %v %v", m, cv)
	}
	if m, cv := MeanCV([]float64{-1, 1}); m != 0 || cv != 0 {
		t.Errorf("zero mean must not divide: %v %v", m, cv)
	}
}
