package perf

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestHistoryRoundTripAndOrder(t *testing.T) {
	dir := t.TempDir()
	t2 := mkRecord("two", mkResult("BenchmarkA", "ns/op", 110))
	t2.Time = time.Date(2026, 2, 1, 0, 0, 0, 0, time.UTC)
	t1 := mkRecord("one", mkResult("BenchmarkA", "ns/op", 100))
	t1.Time = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	lg := mkRecord("lg", mkResult("loadgen/forward", "req/s", 5000))
	lg.Kind = KindLoadgen
	lg.Time = time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	for _, rec := range []*Record{t2, t1, lg} {
		if _, err := rec.WriteFile(dir); err != nil {
			t.Fatal(err)
		}
	}

	entries, err := LoadHistory(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("loaded %d entries, want 3", len(entries))
	}
	labels := []string{}
	for _, e := range entries {
		labels = append(labels, e.Record.Label)
	}
	if strings.Join(labels, ",") != "one,two,lg" {
		t.Fatalf("history order %v, want oldest first", labels)
	}

	prev, latest, ok := LatestPair(entries, KindBench)
	if !ok || prev.Record.Label != "one" || latest.Record.Label != "two" {
		t.Fatalf("LatestPair bench = %v/%v ok=%v", prev.Record, latest.Record, ok)
	}
	if _, _, ok := LatestPair(entries, KindLoadgen); ok {
		t.Fatal("one loadgen record must not form a pair")
	}
}

// A targeted A/B record (disjoint series) committed between two runs of
// the default suite must not become the compare baseline: both Baseline
// and LatestPair skip back to the newest comparable record.
func TestBaselineSkipsDisjointSuites(t *testing.T) {
	dir := t.TempDir()
	old := mkRecord("kernels-old", mkResult("BenchmarkA", "ns/op", 100))
	old.Time = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	ab := mkRecord("targeted-ab", mkResult("BenchmarkServePredict", "ns/op", 80000))
	ab.Time = time.Date(2026, 2, 1, 0, 0, 0, 0, time.UTC)
	newest := mkRecord("kernels-new", mkResult("BenchmarkA", "ns/op", 105))
	newest.Time = time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	for _, rec := range []*Record{old, ab, newest} {
		if _, err := rec.WriteFile(dir); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := LoadHistory(dir)
	if err != nil {
		t.Fatal(err)
	}

	cand := mkRecord("candidate", mkResult("BenchmarkA", "ns/op", 103))
	base, ok := Baseline(entries, KindBench, cand)
	if !ok || base.Record.Label != "kernels-new" {
		t.Fatalf("Baseline = %v ok=%v, want kernels-new", base.Record, ok)
	}
	prev, latest, ok := LatestPair(entries, KindBench)
	if !ok || prev.Record.Label != "kernels-old" || latest.Record.Label != "kernels-new" {
		t.Fatalf("LatestPair = %v/%v ok=%v, want kernels-old/kernels-new", prev.Record, latest.Record, ok)
	}

	// A candidate sharing nothing with any record has no baseline.
	alien := mkRecord("alien", mkResult("BenchmarkZ", "ns/op", 1))
	if _, ok := Baseline(entries, KindBench, alien); ok {
		t.Fatal("disjoint candidate must have no baseline")
	}
}

func TestLoadHistoryMissingDirIsEmpty(t *testing.T) {
	entries, err := LoadHistory(filepath.Join(t.TempDir(), "nope"))
	if err != nil || entries != nil {
		t.Fatalf("missing dir: %v %v", entries, err)
	}
}

func TestLoadHistoryRejectsCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte(`{"kind":"bench"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadHistory(dir); err == nil {
		t.Fatal("corrupt record must fail the load")
	}
}

func TestReadRecordRejectsNewerSchema(t *testing.T) {
	dir := t.TempDir()
	rec := mkRecord("future", mkResult("BenchmarkA", "ns/op", 1))
	rec.Schema = SchemaVersion + 1
	path, err := rec.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRecord(path); err == nil {
		t.Fatal("newer schema must be rejected")
	}
}

func TestFilenameSortsByTime(t *testing.T) {
	a := mkRecord("b-label", mkResult("BenchmarkA", "ns/op", 1))
	a.Time = time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	if got, want := a.Filename(), "20260102T030405Z-bench-b-label.json"; got != want {
		t.Errorf("Filename() = %q, want %q", got, want)
	}
	a.Label = "we?rd label"
	if got := a.Filename(); strings.ContainsAny(got, "? ") {
		t.Errorf("label not sanitized: %q", got)
	}
}
