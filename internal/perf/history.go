package perf

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Entry is one loaded history record plus where it came from.
type Entry struct {
	Path   string
	Record *Record
}

// LoadHistory reads every *.json record in dir, sorted oldest-first by
// record time (ties broken by filename, which embeds the time anyway).
// A missing dir is an empty history, not an error; unreadable or
// non-record files fail loudly — a corrupt history should never be
// silently compared around.
func LoadHistory(dir string) ([]Entry, error) {
	names, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []Entry
	for _, de := range names {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			continue
		}
		path := filepath.Join(dir, de.Name())
		rec, err := ReadRecord(path)
		if err != nil {
			return nil, fmt.Errorf("load history: %w", err)
		}
		entries = append(entries, Entry{Path: path, Record: rec})
	}
	sort.Slice(entries, func(i, j int) bool {
		ti, tj := entries[i].Record.Time, entries[j].Record.Time
		if !ti.Equal(tj) {
			return ti.Before(tj)
		}
		return entries[i].Path < entries[j].Path
	})
	return entries, nil
}

// FilterKind returns the entries whose record kind matches (all entries
// when kind is empty).
func FilterKind(entries []Entry, kind string) []Entry {
	if kind == "" {
		return entries
	}
	var out []Entry
	for _, e := range entries {
		if e.Record.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// LatestPair returns the newest and second-newest entries of a kind — the
// default compare operands. ok is false with fewer than two.
func LatestPair(entries []Entry, kind string) (prev, latest Entry, ok bool) {
	filtered := FilterKind(entries, kind)
	if len(filtered) < 2 {
		return Entry{}, Entry{}, false
	}
	return filtered[len(filtered)-2], filtered[len(filtered)-1], true
}
