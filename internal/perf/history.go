package perf

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Entry is one loaded history record plus where it came from.
type Entry struct {
	Path   string
	Record *Record
}

// LoadHistory reads every *.json record in dir, sorted oldest-first by
// record time (ties broken by filename, which embeds the time anyway).
// A missing dir is an empty history, not an error; unreadable or
// non-record files fail loudly — a corrupt history should never be
// silently compared around.
func LoadHistory(dir string) ([]Entry, error) {
	names, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []Entry
	for _, de := range names {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			continue
		}
		path := filepath.Join(dir, de.Name())
		rec, err := ReadRecord(path)
		if err != nil {
			return nil, fmt.Errorf("load history: %w", err)
		}
		entries = append(entries, Entry{Path: path, Record: rec})
	}
	sort.Slice(entries, func(i, j int) bool {
		ti, tj := entries[i].Record.Time, entries[j].Record.Time
		if !ti.Equal(tj) {
			return ti.Before(tj)
		}
		return entries[i].Path < entries[j].Path
	})
	return entries, nil
}

// FilterKind returns the entries whose record kind matches (all entries
// when kind is empty).
func FilterKind(entries []Entry, kind string) []Entry {
	if kind == "" {
		return entries
	}
	var out []Entry
	for _, e := range entries {
		if e.Record.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// SharesSeries reports whether the two records have at least one
// (name, unit) series in common — the precondition for a meaningful
// Compare.
func SharesSeries(a, b *Record) bool {
	for _, r := range b.Results {
		if a.Result(r.Name, r.Unit) != nil {
			return true
		}
	}
	return false
}

// Baseline returns the newest entry of kind that shares at least one
// series with cand. The history legitimately interleaves suites — the
// default kernel trio, targeted A/B records, loadgen sweeps — so the
// right baseline is the newest *comparable* record, not merely the
// newest one. ok is false when nothing comparable exists.
func Baseline(entries []Entry, kind string, cand *Record) (Entry, bool) {
	filtered := FilterKind(entries, kind)
	for i := len(filtered) - 1; i >= 0; i-- {
		if SharesSeries(filtered[i].Record, cand) {
			return filtered[i], true
		}
	}
	return Entry{}, false
}

// LatestPair returns the newest entry of a kind and its compare
// baseline: the newest earlier entry sharing at least one series.
// Entries from a disjoint suite sitting between two runs of the same
// suite are skipped rather than producing a vacuous compare. ok is
// false when no comparable pair exists.
func LatestPair(entries []Entry, kind string) (prev, latest Entry, ok bool) {
	filtered := FilterKind(entries, kind)
	if len(filtered) < 2 {
		return Entry{}, Entry{}, false
	}
	latest = filtered[len(filtered)-1]
	prev, ok = Baseline(filtered[:len(filtered)-1], kind, latest.Record)
	if !ok {
		return Entry{}, Entry{}, false
	}
	return prev, latest, true
}
