package perf

import (
	"strings"
	"testing"
	"time"
)

func historyFixture() []Entry {
	seed := mkRecord("seed", mkResult("BenchmarkSweepSerial", "ns/op", 32.5e9, 32.7e9))
	seed.Time = time.Date(2026, 8, 5, 11, 0, 0, 0, time.UTC)
	seed.Env = Env{GoVersion: "go1.23.0", NumCPU: 1, GOMAXPROCS: 1}
	pr2 := mkRecord("pr2",
		mkResult("BenchmarkSweepSerial", "ns/op", 16.7e9, 16.8e9),
		mkResult("BenchmarkSweepParallel4", "ns/op", 16.3e9),
	)
	pr2.Time = time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	pr2.Env = Env{GoVersion: "go1.24.0", NumCPU: 1, GOMAXPROCS: 1}
	return []Entry{{Path: "a.json", Record: seed}, {Path: "b.json", Record: pr2}}
}

func TestTrajectoriesFoldHistory(t *testing.T) {
	trs := Trajectories(historyFixture())
	if len(trs) != 2 {
		t.Fatalf("got %d trajectories, want 2", len(trs))
	}
	// Sorted by name: Parallel4 before Serial.
	serial := trs[1]
	if serial.Name != "BenchmarkSweepSerial" || len(serial.Points) != 2 {
		t.Fatalf("serial trajectory wrong: %+v", serial)
	}
	if !serial.Points[1].EnvChanged {
		t.Error("go version change between points not flagged")
	}
	if serial.Points[0].Mean <= serial.Points[1].Mean {
		t.Error("trajectory order lost the improvement")
	}
}

func TestWriteReportRendersTrajectory(t *testing.T) {
	var sb strings.Builder
	WriteReport(&sb, historyFixture())
	out := sb.String()
	for _, want := range []string{"BenchmarkSweepSerial", "seed", "pr2", "env-changed", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	WriteReport(&sb, nil)
	if !strings.Contains(sb.String(), "empty") {
		t.Error("empty history should say so")
	}
}

// benchfmt output must round-trip through our own parser (which accepts
// the same format benchstat does).
func TestWriteBenchFormatRoundTrips(t *testing.T) {
	rec := mkRecord("x",
		mkResult("BenchmarkGEMM", "ns/op", 2054098, 2134719),
		mkResult("BenchmarkGEMM", "allocs/op", 3),
		mkResult("loadgen/forward", "req/s", 4763), // not benchfmt: skipped
	)
	rec.Env = Env{GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 1, CPUModel: "Intel Xeon"}
	var sb strings.Builder
	WriteBenchFormat(&sb, rec)
	out := sb.String()
	if strings.Contains(out, "req/s") {
		t.Errorf("loadgen unit leaked into benchfmt:\n%s", out)
	}
	samples := ParseBenchOutput([]byte(out))
	if len(samples) != 3 {
		t.Fatalf("round-trip got %d samples, want 3:\n%s", len(samples), out)
	}
	if samples[0].Name != "BenchmarkGEMM" || samples[0].Value != 2054098 {
		t.Errorf("round-trip sample wrong: %+v", samples[0])
	}
}
