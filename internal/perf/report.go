package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TrajectoryPoint is one record's value for one series.
type TrajectoryPoint struct {
	Label        string  `json:"label"`
	Time         string  `json:"time"`
	Mean         float64 `json:"mean"`
	CV           float64 `json:"cv"`
	HighVariance bool    `json:"high_variance,omitempty"`
	EnvChanged   bool    `json:"env_changed,omitempty"` // fingerprint differs from the previous point
}

// Trajectory is the tracked history of one (name, unit) series.
type Trajectory struct {
	Name   string            `json:"name"`
	Unit   string            `json:"unit"`
	Points []TrajectoryPoint `json:"points"`
}

// Trajectories folds a history into per-series trajectories, ordered by
// series name then unit. Entries should be oldest-first (LoadHistory
// order).
func Trajectories(entries []Entry) []Trajectory {
	idx := map[[2]string]int{}
	var out []Trajectory
	lastEnv := map[[2]string]Env{}
	for _, e := range entries {
		rec := e.Record
		for _, res := range rec.Results {
			key := [2]string{res.Name, res.Unit}
			i, ok := idx[key]
			if !ok {
				out = append(out, Trajectory{Name: res.Name, Unit: res.Unit})
				i = len(out) - 1
				idx[key] = i
			}
			pt := TrajectoryPoint{
				Label:        recLabel(rec),
				Time:         rec.Time.UTC().Format("2006-01-02T15:04:05Z"),
				Mean:         res.Mean,
				CV:           res.CV,
				HighVariance: res.HighVariance,
			}
			if prev, seen := lastEnv[key]; seen && !prev.Same(rec.Env) {
				pt.EnvChanged = true
			}
			lastEnv[key] = rec.Env
			out[i].Points = append(out[i].Points, pt)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Unit < out[j].Unit
	})
	return out
}

// WriteReport renders the history as a text trajectory: one block per
// series, one line per record, with the relative change from the previous
// point. An env-fingerprint change between points is flagged, since a
// jump across it is a machine delta as much as a code delta.
func WriteReport(w io.Writer, entries []Entry) {
	if len(entries) == 0 {
		fmt.Fprintln(w, "perf history is empty")
		return
	}
	fmt.Fprintf(w, "perf history: %d records, %s .. %s\n",
		len(entries),
		entries[0].Record.Time.UTC().Format("2006-01-02"),
		entries[len(entries)-1].Record.Time.UTC().Format("2006-01-02"))
	latest := entries[len(entries)-1].Record
	fmt.Fprintf(w, "latest env: %s\n", latest.Env)
	for _, tr := range Trajectories(entries) {
		fmt.Fprintf(w, "%s (%s)\n", tr.Name, tr.Unit)
		for i, pt := range tr.Points {
			delta := ""
			if i > 0 && tr.Points[i-1].Mean != 0 {
				delta = fmt.Sprintf("%+7.1f%%", (pt.Mean-tr.Points[i-1].Mean)/tr.Points[i-1].Mean*100)
			}
			flags := ""
			if pt.HighVariance {
				flags += " high-variance"
			}
			if pt.EnvChanged {
				flags += " env-changed"
			}
			fmt.Fprintf(w, "  %-20s %-11s %14s  cv %4.1f%% %8s%s\n",
				pt.Label, pt.Time[:10], formatValue(pt.Mean, tr.Unit), pt.CV*100, delta, flags)
		}
	}
}

// WriteReportJSON renders the same trajectory data as JSON.
func WriteReportJSON(w io.Writer, entries []Entry) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Trajectories(entries))
}

// WriteBenchFormat renders one record in the Go benchmark data format
// (with the fingerprint as configuration lines), so a history entry can
// be handed straight to benchstat:
//
//	mlaas-perf report -format benchfmt -record old.json > old.txt
//	benchstat old.txt new.txt
//
// Each kept run prints as its own Benchmark line — benchstat needs the
// per-run samples, not the mean, to do its statistics. Only ns/op-family
// units are emitted; loadgen units (req/s, p95_ms) are not benchfmt.
func WriteBenchFormat(w io.Writer, rec *Record) {
	if rec.Env.GOOS != "" {
		fmt.Fprintf(w, "goos: %s\n", rec.Env.GOOS)
	}
	if rec.Env.GOARCH != "" {
		fmt.Fprintf(w, "goarch: %s\n", rec.Env.GOARCH)
	}
	if rec.Env.CPUModel != "" {
		fmt.Fprintf(w, "cpu: %s\n", rec.Env.CPUModel)
	}
	procs := rec.Env.GOMAXPROCS
	suffix := ""
	if procs > 1 {
		suffix = fmt.Sprintf("-%d", procs)
	}
	for _, res := range rec.Results {
		switch res.Unit {
		case "ns/op", "B/op", "allocs/op":
		default:
			continue
		}
		for _, v := range res.Runs {
			fmt.Fprintf(w, "%s%s 1 %g %s\n", res.Name, suffix, v, res.Unit)
		}
	}
}
