package perf

import (
	"strconv"
	"strings"
)

// Sample is one parsed benchmark measurement: one `Benchmark...` output
// line contributes one Sample per value/unit pair (ns/op always; B/op and
// allocs/op under -benchmem).
type Sample struct {
	Name  string // "BenchmarkGEMM" — procs suffix stripped into Procs
	Procs int    // GOMAXPROCS suffix ("-8"); 1 when absent
	Unit  string
	Value float64
	Iters int64 // the benchmark's iteration count (b.N)
}

// ParseBenchOutput extracts benchmark samples from `go test -bench`
// output, in the standard Go benchmark data format benchstat consumes:
//
//	BenchmarkGEMM-8   546   2162159 ns/op   524288 B/op   3 allocs/op
//
// Non-benchmark lines (goos/pkg headers, PASS, ok) are ignored, so the
// raw combined output of a run can be fed in unfiltered.
func ParseBenchOutput(out []byte) []Sample {
	var samples []Sample
	for _, line := range strings.Split(string(out), "\n") {
		samples = append(samples, parseBenchLine(line)...)
	}
	return samples
}

func parseBenchLine(line string) []Sample {
	fields := strings.Fields(line)
	// Shortest valid line: name, iters, value, unit.
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return nil
	}
	// "Benchmark" alone is a header word, not a result; the name must
	// continue with an uppercase letter or digit per the benchmark format.
	if fields[0] == "Benchmark" {
		return nil
	}
	name, procs := splitProcs(fields[0])
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil
	}
	var out []Sample
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil
		}
		out = append(out, Sample{Name: name, Procs: procs, Unit: fields[i+1], Value: val, Iters: iters})
	}
	return out
}

// splitProcs strips a trailing "-N" GOMAXPROCS suffix from a benchmark
// name. Sub-benchmark names may themselves contain dashes, so only a
// trailing all-digit segment counts.
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return name, 1
	}
	return name[:i], n
}

// MergeSamples folds samples into results keyed by (Name, Unit),
// appending each sample's value as one run. Existing results (from
// earlier rounds) gain samples; new (name, unit) pairs create results.
// Finalize is called on every touched result.
func MergeSamples(results []Result, samples []Sample) []Result {
	idx := map[[2]string]int{}
	for i, r := range results {
		idx[[2]string{r.Name, r.Unit}] = i
	}
	touched := map[int]bool{}
	for _, s := range samples {
		key := [2]string{s.Name, s.Unit}
		i, ok := idx[key]
		if !ok {
			results = append(results, Result{
				Name: s.Name, Unit: s.Unit,
				HigherIsBetter: HigherBetterUnit(s.Unit),
			})
			i = len(results) - 1
			idx[key] = i
		}
		results[i].Runs = append(results[i].Runs, s.Value)
		touched[i] = true
	}
	for i := range touched {
		results[i].Finalize()
	}
	return results
}
