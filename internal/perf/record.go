// Package perf is the continuous performance observability layer: it
// defines the run-record schema committed under perf/results/, parses Go
// benchmark output, runs the benchmark suite with variance gating
// (runner.go), diffs runs for regressions (compare.go), and renders the
// tracked trajectory (report.go).
//
// The paper's argument rests on trustworthy repeated measurement of the
// same workloads over time (§3.2); this package applies the same
// discipline to the reproduction itself. Every banked performance claim
// (the 2.0× sweep, 32.7× serving, 1.6× kernel wins) becomes one Record in
// an append-only history, each stamped with the machine/environment
// fingerprint it was measured on, so "measurably faster" is a diff against
// the previous history entry rather than a hand-rolled one-off file.
package perf

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"mlaasbench/internal/telemetry"
)

// SchemaVersion identifies the record layout. Readers reject newer
// schemas rather than misinterpreting them.
const SchemaVersion = 1

// Record kinds. A "bench" record holds go test -bench results (ns/op and
// friends); a "loadgen" record holds closed-loop serving-path results
// (req/s, latency quantiles) in the same shape, so both trajectories live
// in one history.
const (
	KindBench   = "bench"
	KindLoadgen = "loadgen"
)

// Env is the machine/environment fingerprint stamped on every record.
// Comparing records from different fingerprints is allowed but the diff
// calls it out: a "regression" measured on different hardware is a
// different claim.
type Env struct {
	GoVersion  string `json:"go_version,omitempty"`
	GOOS       string `json:"goos,omitempty"`
	GOARCH     string `json:"goarch,omitempty"`
	NumCPU     int    `json:"num_cpu,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs,omitempty"`
	GitSHA     string `json:"git_sha,omitempty"`
	CPUModel   string `json:"cpu_model,omitempty"`
	Note       string `json:"note,omitempty"`
}

// String renders the fingerprint on one line (the bench summary and the
// report header use it).
func (e Env) String() string {
	parts := []string{}
	if e.GoVersion != "" {
		parts = append(parts, e.GoVersion)
	}
	if e.GOOS != "" || e.GOARCH != "" {
		parts = append(parts, e.GOOS+"/"+e.GOARCH)
	}
	parts = append(parts, fmt.Sprintf("gomaxprocs=%d", e.GOMAXPROCS), fmt.Sprintf("numcpu=%d", e.NumCPU))
	if e.GitSHA != "" {
		parts = append(parts, "sha="+shortSHA(e.GitSHA))
	}
	if e.CPUModel != "" {
		parts = append(parts, e.CPUModel)
	}
	return strings.Join(parts, " ")
}

// Same reports whether two fingerprints describe comparable measurement
// conditions (same toolchain, arch and CPU budget; git SHA is expected to
// differ between runs and is ignored).
func (e Env) Same(o Env) bool {
	return e.GoVersion == o.GoVersion && e.GOOS == o.GOOS && e.GOARCH == o.GOARCH &&
		e.NumCPU == o.NumCPU && e.GOMAXPROCS == o.GOMAXPROCS
}

func shortSHA(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}

// CurrentEnv fingerprints the running process: toolchain and CPU budget
// from the runtime, git SHA from the enclosing checkout (best-effort, via
// telemetry.Fingerprint's build info first, then `git rev-parse`), CPU
// model from /proc/cpuinfo where available.
func CurrentEnv() Env {
	fp := telemetry.Fingerprint()
	env := Env{
		GoVersion:  fp.GoVersion,
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     fp.NumCPU,
		GOMAXPROCS: fp.GOMAXPROCS,
		GitSHA:     fp.GitSHA,
		CPUModel:   cpuModel(),
	}
	if env.GitSHA == "" {
		env.GitSHA = gitHead()
	}
	return env
}

// gitHead asks git for the current commit. Test binaries and `go run`
// builds carry no VCS stamp, so this is the path that usually fires.
func gitHead() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// cpuModel reads the first "model name" line from /proc/cpuinfo; empty on
// platforms without one.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, val, found := strings.Cut(name, ":"); found {
				return strings.TrimSpace(val)
			}
		}
	}
	return ""
}

// Result is one tracked metric series inside a record: a benchmark's
// ns/op, a loadgen pass's req/s, an allocation count. Identity for
// comparison across records is the (Name, Unit) pair.
type Result struct {
	Name string `json:"name"` // e.g. "BenchmarkGEMM", "loadgen/forward"
	Unit string `json:"unit"` // e.g. "ns/op", "req/s", "p95_ms"
	// Runs holds every kept sample, one per suite iteration (plus any
	// CV-gate reruns). Mean/CV are derived but stored so the history is
	// greppable without recomputation.
	Runs []float64 `json:"runs"`
	Mean float64   `json:"mean"`
	CV   float64   `json:"cv"` // stddev/mean, 0 when undefined
	// Reruns counts extra variance-gate rounds this benchmark needed;
	// HighVariance marks a series still above the gate when reruns ran out
	// (compare treats it with a wider noise floor).
	Reruns       int  `json:"reruns,omitempty"`
	HighVariance bool `json:"high_variance,omitempty"`
	// HigherIsBetter orients regression detection (req/s up is good,
	// ns/op up is bad). Derived from Unit at creation; stored so readers
	// never guess.
	HigherIsBetter bool `json:"higher_is_better,omitempty"`
}

// Finalize recomputes Mean and CV from Runs (call after appending
// samples).
func (r *Result) Finalize() {
	r.Mean, r.CV = MeanCV(r.Runs)
}

// MeanCV returns the sample mean and coefficient of variation
// (stddev/mean) of xs. CV is 0 for fewer than two samples or a zero mean.
func MeanCV(xs []float64) (mean, cv float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean = sum / float64(len(xs))
	if len(xs) < 2 || mean == 0 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(len(xs)-1))
	return mean, sd / mean
}

// HigherBetterUnit reports whether larger values of unit mean better
// performance. Throughput-shaped units are higher-better; durations,
// bytes and counts are lower-better.
func HigherBetterUnit(unit string) bool {
	switch unit {
	case "req/s", "ops/s", "instances/s", "rows/s":
		return true
	}
	return strings.HasSuffix(unit, "/s") && !strings.HasSuffix(unit, "s/op")
}

// Record is one history entry: a full benchmark-suite or loadgen run.
type Record struct {
	Schema int       `json:"schema"`
	Kind   string    `json:"kind"`  // KindBench or KindLoadgen
	Label  string    `json:"label"` // short human tag, e.g. "pr6", "smoke"
	Time   time.Time `json:"time"`
	Env    Env       `json:"env"`
	// Source notes provenance: the go test command line for live runs, or
	// the file a converted record came from.
	Source  string   `json:"source,omitempty"`
	Notes   string   `json:"notes,omitempty"`
	Results []Result `json:"results"`
}

// Result returns the record's series for (name, unit), or nil.
func (rec *Record) Result(name, unit string) *Result {
	for i := range rec.Results {
		if rec.Results[i].Name == name && rec.Results[i].Unit == unit {
			return &rec.Results[i]
		}
	}
	return nil
}

// Filename returns the canonical history filename for the record:
// <UTC time>-<kind>-<label>.json, which sorts lexically in time order.
func (rec *Record) Filename() string {
	label := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, rec.Label)
	if label == "" {
		label = "run"
	}
	return fmt.Sprintf("%s-%s-%s.json", rec.Time.UTC().Format("20060102T150405Z"), rec.Kind, label)
}

// WriteFile writes the record into dir under its canonical filename,
// creating dir if needed, and returns the full path.
func (rec *Record) WriteFile(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, rec.Filename())
	blob, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(blob, '\n'), 0o644)
}

// ReadRecord loads and validates one record file.
func ReadRecord(path string) (*Record, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(blob, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rec.Schema > SchemaVersion {
		return nil, fmt.Errorf("%s: schema %d is newer than this binary understands (%d)", path, rec.Schema, SchemaVersion)
	}
	if rec.Kind == "" || len(rec.Results) == 0 {
		return nil, fmt.Errorf("%s: not a perf record (missing kind or results)", path)
	}
	return &rec, nil
}
