package perf

import (
	"fmt"
	"os/exec"
	"sort"
	"strings"
	"time"
)

// RunConfig describes one benchmark collection run.
type RunConfig struct {
	Pkgs      []string // package patterns handed to go test
	Bench     string   // -bench regex selecting the suite
	Benchtime string   // -benchtime per benchmark invocation ("1s", "1x")
	Count     int      // full-suite rounds (samples per benchmark)
	Benchmem  bool     // collect B/op and allocs/op too

	// CVGate is the coefficient-of-variation threshold (e.g. 0.05 = 5%):
	// after the Count rounds, benchmarks whose ns/op CV exceeds it are
	// rerun — alone, so the reruns are cheap — for up to MaxReruns extra
	// rounds each, appending samples until the CV settles under the gate.
	// Zero disables the gate.
	CVGate    float64
	MaxReruns int

	Label string
	Kind  string // defaults to KindBench
}

// Runner collects a benchmark Record. Exec runs one suite round for a
// given -bench regex and returns the raw go test output; it defaults to a
// `go test` subprocess and is injectable for tests. Logf (optional)
// receives progress lines.
type Runner struct {
	Exec func(cfg RunConfig, benchRegex string) ([]byte, error)
	Logf func(format string, args ...any)
	// Now stamps the record; defaults to time.Now (tests pin it).
	Now func() time.Time
}

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// Run executes cfg.Count rounds of the suite, applies the CV gate, and
// returns the finished record (not yet written anywhere).
func (r *Runner) Run(cfg RunConfig) (*Record, error) {
	if cfg.Count < 1 {
		cfg.Count = 1
	}
	if cfg.Kind == "" {
		cfg.Kind = KindBench
	}
	execFn := r.Exec
	if execFn == nil {
		execFn = execGoTest
	}
	now := r.Now
	if now == nil {
		now = time.Now
	}

	var results []Result
	for round := 1; round <= cfg.Count; round++ {
		r.logf("round %d/%d: go test -bench %s", round, cfg.Count, cfg.Bench)
		out, err := execFn(cfg, cfg.Bench)
		if err != nil {
			return nil, fmt.Errorf("bench round %d: %w\n%s", round, err, out)
		}
		samples := ParseBenchOutput(out)
		if len(samples) == 0 {
			return nil, fmt.Errorf("bench round %d: no benchmark results in output:\n%s", round, out)
		}
		results = MergeSamples(results, samples)
	}

	// Variance gate: rerun every benchmark whose primary (ns/op) series is
	// still noisier than the gate, all in one go test invocation per extra
	// round so N noisy benchmarks don't cost N compiles.
	reruns := 0
	for cfg.CVGate > 0 && reruns < cfg.MaxReruns {
		noisy := noisyBenchmarks(results, cfg.CVGate)
		if len(noisy) == 0 {
			break
		}
		reruns++
		regex := "^(" + strings.Join(noisy, "|") + ")$"
		r.logf("cv gate: rerun %d/%d for %s", reruns, cfg.MaxReruns, strings.Join(noisy, " "))
		out, err := execFn(cfg, regex)
		if err != nil {
			return nil, fmt.Errorf("cv-gate rerun %d: %w\n%s", reruns, err, out)
		}
		results = MergeSamples(results, ParseBenchOutput(out))
		for i := range results {
			for _, name := range noisy {
				if results[i].Name == name {
					results[i].Reruns = reruns
				}
			}
		}
	}
	if cfg.CVGate > 0 {
		for i := range results {
			if results[i].Unit == "ns/op" && results[i].CV > cfg.CVGate {
				results[i].HighVariance = true
				r.logf("warning: %s CV %.1f%% still above the %.1f%% gate after %d reruns",
					results[i].Name, results[i].CV*100, cfg.CVGate*100, reruns)
			}
		}
	}

	sort.Slice(results, func(i, j int) bool {
		if results[i].Name != results[j].Name {
			return results[i].Name < results[j].Name
		}
		return results[i].Unit < results[j].Unit
	})
	return &Record{
		Schema:  SchemaVersion,
		Kind:    cfg.Kind,
		Label:   cfg.Label,
		Time:    now().UTC(),
		Env:     CurrentEnv(),
		Source:  strings.Join(append([]string{"go test -run ^$ -bench", cfg.Bench, "-benchtime", cfg.Benchtime, fmt.Sprintf("-count=%d rounds", cfg.Count)}, cfg.Pkgs...), " "),
		Results: results,
	}, nil
}

// noisyBenchmarks lists benchmark names whose ns/op CV exceeds gate.
func noisyBenchmarks(results []Result, gate float64) []string {
	var names []string
	for _, res := range results {
		if res.Unit == "ns/op" && res.CV > gate {
			names = append(names, res.Name)
		}
	}
	sort.Strings(names)
	return names
}

// execGoTest runs one benchmark round as a go test subprocess. Combined
// output is returned even on error so failures carry the compiler/test
// noise that explains them.
func execGoTest(cfg RunConfig, benchRegex string) ([]byte, error) {
	args := []string{"test", "-run", "^$", "-bench", benchRegex}
	if cfg.Benchtime != "" {
		args = append(args, "-benchtime", cfg.Benchtime)
	}
	if cfg.Benchmem {
		args = append(args, "-benchmem")
	}
	args = append(args, cfg.Pkgs...)
	return exec.Command("go", args...).CombinedOutput()
}
