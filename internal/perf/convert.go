package perf

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// Legacy conversion: the BENCH_PR2 / BENCH_PR3 / BENCH_PR5 JSON files
// were hand-rolled one-offs, each with its own shape. ConvertLegacy
// sniffs the shape and re-emits the same measurements as schema records,
// so the tracked history starts with the banked wins instead of empty.
//
// The key→benchmark mapping is deliberately a closed table: these three
// files are the entire legacy corpus, and guessing at unknown keys would
// fabricate history.

// legacyArm maps one runs_* key to the record arm it belongs to and the
// canonical benchmark series it measured. Arms become separate records —
// BENCH_PR2.json interleaved the seed engine and the PR 2 engine, which
// are different points on the trajectory, not one run.
type legacyArm struct {
	arm     string
	name    string
	seconds bool // values are s/op (converted to ns/op)
}

var legacyBenchKeys = map[string]legacyArm{
	// BENCH_PR2.json (runs_seconds_per_op)
	"seed_engine":  {"seed", "BenchmarkSweepSerial", true},
	"pr2_workers1": {"pr2", "BenchmarkSweepSerial", true},
	"pr2_workers4": {"pr2", "BenchmarkSweepParallel4", true},
	// BENCH_PR5.json (runs_ns_per_op; *_s keys are seconds)
	"pr4_mlp_forward_batch": {"pr4", "BenchmarkMLPForwardBatch", false},
	"pr5_mlp_forward_batch": {"pr5", "BenchmarkMLPForwardBatch", false},
	"pr4_knn_predict_batch": {"pr4", "BenchmarkKNNPredictBatch", false},
	"pr5_knn_predict_batch": {"pr5", "BenchmarkKNNPredictBatch", false},
	"pr4_gemm":              {"pr4", "BenchmarkGEMM", false},
	"pr5_gemm":              {"pr5", "BenchmarkGEMM", false},
	"pr4_sweep_serial_s":    {"pr4", "BenchmarkSweepSerial", true},
	"pr5_sweep_serial_s":    {"pr5", "BenchmarkSweepSerial", true},
}

// legacyBenchFile matches BENCH_PR2.json / BENCH_PR5.json.
type legacyBenchFile struct {
	Benchmark string `json:"benchmark"`
	Host      struct {
		CPU         string `json:"cpu"`
		CPUsVisible int    `json:"cpus_visible"`
	} `json:"host"`
	RunsSeconds map[string][]float64 `json:"runs_seconds_per_op"`
	RunsNs      map[string][]float64 `json:"runs_ns_per_op"`
}

// legacyLoadgenFile matches BENCH_PR3.json (the loadgen Report shape).
type legacyLoadgenFile struct {
	Platform string `json:"platform"`
	Config   string `json:"config"`
	Clients  int    `json:"clients"`
	Batch    int    `json:"batch"`
	Passes   []struct {
		Name       string  `json:"name"`
		Requests   int     `json:"requests"`
		ReqPerSec  float64 `json:"req_per_sec"`
		InstPerSec float64 `json:"instances_per_sec"`
		MeanMs     float64 `json:"mean_ms"`
		P50Ms      float64 `json:"p50_ms"`
		P95Ms      float64 `json:"p95_ms"`
		P99Ms      float64 `json:"p99_ms"`
	} `json:"passes"`
}

// ConvertLegacy converts one legacy BENCH_PR*.json blob into history
// records. times assigns each produced record (keyed by its arm label) a
// timestamp — the commit date the measurement landed with; arms without
// an entry fail, because an undated history entry cannot be ordered.
// source names the input file for provenance.
func ConvertLegacy(blob []byte, source string, times map[string]time.Time) ([]*Record, error) {
	var bench legacyBenchFile
	if err := json.Unmarshal(blob, &bench); err == nil &&
		(len(bench.RunsSeconds) > 0 || len(bench.RunsNs) > 0) {
		return convertLegacyBench(bench, source, times)
	}
	var lg legacyLoadgenFile
	if err := json.Unmarshal(blob, &lg); err == nil && len(lg.Passes) > 0 && lg.Platform != "" {
		return convertLegacyLoadgen(lg, source, times)
	}
	return nil, fmt.Errorf("%s: unrecognized legacy benchmark shape", source)
}

func convertLegacyBench(f legacyBenchFile, source string, times map[string]time.Time) ([]*Record, error) {
	runs := f.RunsSeconds
	if len(runs) == 0 {
		runs = f.RunsNs
	}
	byArm := map[string]*Record{}
	keys := make([]string, 0, len(runs))
	for k := range runs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		la, ok := legacyBenchKeys[key]
		if !ok {
			return nil, fmt.Errorf("%s: unknown legacy benchmark key %q", source, key)
		}
		rec := byArm[la.arm]
		if rec == nil {
			t, ok := times[la.arm]
			if !ok {
				return nil, fmt.Errorf("%s: no timestamp given for arm %q", source, la.arm)
			}
			rec = &Record{
				Schema: SchemaVersion,
				Kind:   KindBench,
				Label:  la.arm,
				Time:   t.UTC(),
				Env: Env{
					NumCPU:     f.Host.CPUsVisible,
					GOMAXPROCS: f.Host.CPUsVisible,
					CPUModel:   f.Host.CPU,
				},
				Source: "converted from " + source,
				Notes:  f.Benchmark,
			}
			byArm[la.arm] = rec
		}
		res := Result{Name: la.name, Unit: "ns/op"}
		for _, v := range runs[key] {
			if la.seconds {
				v *= 1e9
			}
			res.Runs = append(res.Runs, v)
		}
		res.Finalize()
		rec.Results = append(rec.Results, res)
	}
	var out []*Record
	for _, rec := range byArm {
		sort.Slice(rec.Results, func(i, j int) bool { return rec.Results[i].Name < rec.Results[j].Name })
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out, nil
}

func convertLegacyLoadgen(f legacyLoadgenFile, source string, times map[string]time.Time) ([]*Record, error) {
	const arm = "pr3"
	t, ok := times[arm]
	if !ok {
		return nil, fmt.Errorf("%s: no timestamp given for arm %q", source, arm)
	}
	rec := &Record{
		Schema: SchemaVersion,
		Kind:   KindLoadgen,
		Label:  arm,
		Time:   t.UTC(),
		Source: "converted from " + source,
		Notes: fmt.Sprintf("closed-loop loadgen: %s %s, %d clients, batch %d",
			f.Platform, f.Config, f.Clients, f.Batch),
	}
	for _, p := range f.Passes {
		rec.Results = append(rec.Results, LoadgenResults("loadgen/"+p.Name, p.ReqPerSec, p.InstPerSec, p.MeanMs, p.P50Ms, p.P95Ms, p.P99Ms)...)
	}
	return []*Record{rec}, nil
}

// LoadgenResults builds the standard series set for one loadgen pass —
// shared by the legacy converter and cmd/mlaas-loadgen's live -perf-out
// path, so both produce the same (name, unit) identities and the
// trajectory is continuous across the conversion boundary.
func LoadgenResults(name string, reqPerSec, instPerSec, meanMs, p50Ms, p95Ms, p99Ms float64) []Result {
	mk := func(unit string, v float64) Result {
		r := Result{Name: name, Unit: unit, Runs: []float64{v}, HigherIsBetter: HigherBetterUnit(unit)}
		r.Finalize()
		return r
	}
	return []Result{
		mk("req/s", reqPerSec),
		mk("instances/s", instPerSec),
		mk("mean_ms", meanMs),
		mk("p50_ms", p50Ms),
		mk("p95_ms", p95Ms),
		mk("p99_ms", p99Ms),
	}
}
