package synth

import (
	"math"
	"testing"
	"testing/quick"

	"mlaasbench/internal/dataset"
)

func TestCorpusSize(t *testing.T) {
	specs := Corpus()
	if len(specs) != 119 {
		t.Fatalf("corpus has %d datasets, want 119", len(specs))
	}
}

func TestCorpusDomainBreakdown(t *testing.T) {
	counts := map[dataset.Domain]int{}
	for _, s := range Corpus() {
		counts[s.Domain]++
	}
	want := map[dataset.Domain]int{
		dataset.DomainLifeScience: 44,
		dataset.DomainComputer:    18,
		dataset.DomainSynthetic:   17,
		dataset.DomainSocial:      10,
		dataset.DomainPhysical:    10,
		dataset.DomainFinancial:   7,
		dataset.DomainOther:       13,
	}
	for dom, n := range want {
		if counts[dom] != n {
			t.Errorf("domain %s: %d datasets, want %d (Figure 3a)", dom, counts[dom], n)
		}
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a := Corpus()
	b := Corpus()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("corpus spec %d differs between calls", i)
		}
	}
}

func TestCorpusNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Corpus() {
		if seen[s.Name] {
			t.Fatalf("duplicate dataset name %q", s.Name)
		}
		seen[s.Name] = true
	}
	if !seen["CIRCLE"] || !seen["LINEAR"] {
		t.Fatal("corpus must include the CIRCLE and LINEAR probes")
	}
}

func TestCorpusSizeRange(t *testing.T) {
	minN, maxN := math.MaxInt, 0
	minD, maxD := math.MaxInt, 0
	for _, s := range Corpus() {
		if s.N < minN {
			minN = s.N
		}
		if s.N > maxN {
			maxN = s.N
		}
		if s.D < minD {
			minD = s.D
		}
		if s.TotalD() > maxD {
			maxD = s.TotalD()
		}
	}
	if minN < 15 {
		t.Fatalf("min nominal samples %d < 15", minN)
	}
	if maxN < 10000 {
		t.Fatalf("max nominal samples %d — corpus should span into the 10k+ range (Fig 3b)", maxN)
	}
	if minD < 1 || maxD < 100 {
		t.Fatalf("feature range [%d, %d] too narrow (Fig 3c)", minD, maxD)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := CircleSpec()
	a := Generate(spec, Quick, 1)
	b := Generate(spec, Quick, 1)
	if a.N() != b.N() {
		t.Fatal("sizes differ")
	}
	for i := range a.X {
		for j := range a.X[i] {
			av, bv := a.X[i][j], b.X[i][j]
			if av != bv && !(math.IsNaN(av) && math.IsNaN(bv)) {
				t.Fatalf("sample %d feature %d differs", i, j)
			}
		}
		if a.Y[i] != b.Y[i] {
			t.Fatal("labels differ")
		}
	}
}

func TestGenerateRespectsProfileCaps(t *testing.T) {
	spec := Spec{Name: "big", Domain: dataset.DomainOther, Gen: GenBlobs, N: 100000, D: 1000}
	ds := Generate(spec, Quick, 1)
	if ds.N() > Quick.MaxN {
		t.Fatalf("n = %d exceeds cap %d", ds.N(), Quick.MaxN)
	}
	if ds.D() > Quick.MaxD {
		t.Fatalf("d = %d exceeds cap %d", ds.D(), Quick.MaxD)
	}
}

func TestGenerateAuxiliaryFeaturesCapped(t *testing.T) {
	spec := Spec{Name: "aux", Gen: GenBlobs, N: 100, D: 20, NoiseFeats: 50, RedundFeats: 50}
	ds := Generate(spec, Quick, 1)
	if ds.D() > Quick.MaxD {
		t.Fatalf("total d = %d exceeds cap %d", ds.D(), Quick.MaxD)
	}
}

func TestCircleProbeGeometry(t *testing.T) {
	ds := Generate(CircleSpec(), Quick, CorpusSeed)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if !hasBothClasses(ds) {
		t.Fatal("CIRCLE missing a class")
	}
	if ds.Linear {
		t.Fatal("CIRCLE must be marked non-linear")
	}
	// Inner circle (class 1) should have systematically smaller radius.
	var rIn, rOut float64
	var nIn, nOut int
	for i, row := range ds.X {
		radius := math.Hypot(row[0], row[1])
		if ds.Y[i] == 1 {
			rIn += radius
			nIn++
		} else {
			rOut += radius
			nOut++
		}
	}
	if rIn/float64(nIn) >= rOut/float64(nOut) {
		t.Fatalf("inner mean radius %v >= outer %v", rIn/float64(nIn), rOut/float64(nOut))
	}
}

func TestLinearProbeIsSeparableDirection(t *testing.T) {
	ds := Generate(LinearSpec(), Quick, CorpusSeed)
	if !ds.Linear {
		t.Fatal("LINEAR must be marked linear")
	}
	// Class means must be separated (margin shift of ±0.5 along w).
	var m0, m1 [2]float64
	var n0, n1 float64
	for i, row := range ds.X {
		if ds.Y[i] == 0 {
			m0[0] += row[0]
			m0[1] += row[1]
			n0++
		} else {
			m1[0] += row[0]
			m1[1] += row[1]
			n1++
		}
	}
	dx := m0[0]/n0 - m1[0]/n1
	dy := m0[1]/n0 - m1[1]/n1
	if math.Hypot(dx, dy) < 0.5 {
		t.Fatalf("class mean separation %v too small", math.Hypot(dx, dy))
	}
}

func TestGeneratorsProduceValidDatasets(t *testing.T) {
	gens := []Generator{GenBlobs, GenLinear, GenSparse, GenCircles, GenMoons, GenXOR, GenQuadratic, GenClusters}
	for _, g := range gens {
		spec := Spec{Name: "t-" + string(g), Gen: g, N: 120, D: 5, Noise: 0.2}
		ds := Generate(spec, Quick, 7)
		if err := ds.Validate(); err != nil {
			t.Fatalf("%s: %v", g, err)
		}
		if !hasBothClasses(ds) {
			t.Fatalf("%s: missing a class", g)
		}
		if ds.N() < 15 {
			t.Fatalf("%s: only %d samples", g, ds.N())
		}
	}
}

func TestImbalanceApplied(t *testing.T) {
	spec := Spec{Name: "imb", Gen: GenBlobs, N: 400, D: 3, Imbalance: 0.2}
	ds := Generate(spec, Full, 3)
	b := ds.ClassBalance()
	if b < 0.1 || b > 0.3 {
		t.Fatalf("balance %v, want ~0.2", b)
	}
}

func TestMissingAndCategoricalApplied(t *testing.T) {
	spec := Spec{Name: "mc", Gen: GenLinear, N: 200, D: 6, CategFrac: 0.5, MissingRate: 0.05}
	ds := Generate(spec, Quick, 4)
	if !ds.HasMissing() {
		t.Fatal("expected missing values")
	}
	nCat := 0
	for _, k := range ds.Kinds {
		if k == dataset.Categorical {
			nCat++
		}
	}
	if nCat == 0 {
		t.Fatal("expected categorical features")
	}
}

func TestGenerateCleanReadyForTraining(t *testing.T) {
	spec := Spec{Name: "clean", Gen: GenLinear, N: 100, D: 4, CategFrac: 0.5, MissingRate: 0.1}
	ds := GenerateClean(spec, Quick, 5)
	if ds.HasMissing() {
		t.Fatal("clean dataset still has missing values")
	}
	for _, k := range ds.Kinds {
		if k == dataset.Categorical {
			t.Fatal("clean dataset still has categorical kinds")
		}
	}
}

func TestCorpusByName(t *testing.T) {
	if _, ok := CorpusByName("CIRCLE"); !ok {
		t.Fatal("CIRCLE not found")
	}
	if _, ok := CorpusByName("nope"); ok {
		t.Fatal("unexpected hit")
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("")
	if err != nil || p.Name != "quick" {
		t.Fatalf("default profile: %v %v", p, err)
	}
	if _, err := ProfileByName("huge"); err == nil {
		t.Fatal("expected error")
	}
	if p, _ := ProfileByName("full"); p.MaxN <= Quick.MaxN {
		t.Fatal("full profile should allow more samples")
	}
}

func TestLinearityGroundTruth(t *testing.T) {
	for _, s := range Corpus() {
		want := s.Gen == GenBlobs || s.Gen == GenLinear || s.Gen == GenSparse
		if s.Linear() != want {
			t.Fatalf("%s: Linear() = %v for generator %s", s.Name, s.Linear(), s.Gen)
		}
	}
}

func hasBothClasses(d *dataset.Dataset) bool {
	b := d.ClassBalance()
	return b > 0 && b < 1
}

// Property: every generated dataset validates, has both classes, and honours
// profile caps regardless of spec parameters.
func TestQuickGenerateAlwaysValid(t *testing.T) {
	gens := []Generator{GenBlobs, GenLinear, GenSparse, GenCircles, GenMoons, GenXOR, GenQuadratic, GenClusters}
	f := func(seed uint64, genIdx, nRaw, dRaw uint8, noise, labelNoise, imb float64) bool {
		spec := Spec{
			Name:       "q",
			Gen:        gens[int(genIdx)%len(gens)],
			N:          15 + int(nRaw),
			D:          1 + int(dRaw)%30,
			Noise:      math.Abs(math.Mod(noise, 1)),
			LabelNoise: math.Abs(math.Mod(labelNoise, 0.3)),
			Imbalance:  0.15 + math.Abs(math.Mod(imb, 0.7)),
		}
		ds := Generate(spec, Quick, seed)
		if err := ds.Validate(); err != nil {
			return false
		}
		return ds.N() >= 8 && ds.N() <= Quick.MaxN && ds.D() <= Quick.MaxD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGenerateCorpusQuick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = GenerateCorpus(Quick, CorpusSeed)
	}
}
