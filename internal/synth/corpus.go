package synth

import (
	"math"

	"mlaasbench/internal/dataset"
	"mlaasbench/internal/rng"
)

// CorpusSeed is the seed every corpus-level experiment derives from. Change
// it and every table regenerates under a fresh-but-reproducible corpus.
const CorpusSeed uint64 = 0x1727_2017

// domainPlan fixes the Figure 3(a) breakdown: 44 Life Science, 18 Computer &
// Games, 17 Synthetic, 10 Social Science, 10 Physical Science, 7 Financial &
// Business, 13 Other = 119 datasets.
var domainPlan = []struct {
	domain dataset.Domain
	count  int
	gens   []Generator // concept families plausible for the domain
}{
	{dataset.DomainLifeScience, 44, []Generator{GenBlobs, GenQuadratic, GenSparse, GenClusters, GenLinear}},
	{dataset.DomainComputer, 18, []Generator{GenXOR, GenMoons, GenClusters, GenBlobs}},
	{dataset.DomainSynthetic, 17, []Generator{GenCircles, GenLinear, GenMoons, GenXOR, GenBlobs}},
	{dataset.DomainSocial, 10, []Generator{GenLinear, GenBlobs, GenClusters}},
	{dataset.DomainPhysical, 10, []Generator{GenQuadratic, GenBlobs, GenLinear}},
	{dataset.DomainFinancial, 7, []Generator{GenLinear, GenBlobs, GenSparse}},
	{dataset.DomainOther, 13, []Generator{GenBlobs, GenMoons, GenLinear, GenQuadratic}},
}

// Corpus returns the full 119-dataset catalog. The specs (names, domains,
// nominal sizes, difficulty knobs) are deterministic: the same call always
// returns the same catalog, so experiment results are addressable by
// dataset name.
func Corpus() []Spec {
	r := rng.New(CorpusSeed).Split("corpus")
	var specs []Spec
	for _, plan := range domainPlan {
		dr := r.Split(string(plan.domain))
		for i := 0; i < plan.count; i++ {
			spec := randomSpec(dr, plan.domain, plan.gens, i)
			specs = append(specs, spec)
		}
	}
	// Overwrite two Synthetic slots with the paper's §6 probe datasets,
	// generated exactly as sklearn's make_circles / make_classification.
	for i := range specs {
		if specs[i].Domain != dataset.DomainSynthetic {
			continue
		}
		specs[i] = CircleSpec()
		for j := i + 1; j < len(specs); j++ {
			if specs[j].Domain == dataset.DomainSynthetic {
				specs[j] = LinearSpec()
				break
			}
		}
		break
	}
	return specs
}

// randomSpec draws one dataset spec whose marginals follow Figure 3(b)/(c):
// sample counts log-uniform-ish across 15…245k, feature counts skewed low
// across 1…4.7k.
func randomSpec(r *rng.RNG, dom dataset.Domain, gens []Generator, idx int) Spec {
	sr := r.Split(specName(dom, idx))
	// Sample count: log-uniform between 15 and 245,057 with the top decade
	// thinned (the paper deliberately limited >100k datasets).
	n := int(math.Exp(sr.Uniform(math.Log(15), math.Log(245057))))
	if n > 100000 && sr.Bernoulli(0.7) {
		n /= 20
	}
	// Feature count: log-uniform 1…4702, skewed toward ≤100 (Fig 3c shows
	// ~80% of datasets under 100 features).
	d := int(math.Exp(sr.Uniform(0, math.Log(4702))))
	if d > 100 && sr.Bernoulli(0.75) {
		d = 1 + d%100
	}
	if d < 1 {
		d = 1
	}
	gen := gens[sr.Intn(len(gens))]
	// Geometry-dependent generators need at least 2 dims.
	if d < 2 {
		switch gen {
		case GenCircles, GenMoons, GenXOR, GenClusters, GenQuadratic:
			d = 2
		}
	}
	spec := Spec{
		Name:       specName(dom, idx),
		Domain:     dom,
		Gen:        gen,
		N:          n,
		D:          d,
		Noise:      sr.Uniform(0.05, 0.5),
		LabelNoise: sr.Uniform(0, 0.12),
		Imbalance:  0.5,
	}
	// A third of datasets are imbalanced, matching the paper's motivation
	// for using F-score over accuracy.
	if sr.Bernoulli(0.33) {
		spec.Imbalance = sr.Uniform(0.1, 0.35)
	}
	if sr.Bernoulli(0.4) {
		spec.NoiseFeats = 1 + sr.Intn(maxInt(d/2, 2))
	}
	if sr.Bernoulli(0.3) {
		spec.RedundFeats = 1 + sr.Intn(maxInt(d/3, 2))
	}
	// Social/financial/life-science data carries categorical fields and
	// missing values more often than synthetic data.
	switch dom {
	case dataset.DomainSocial, dataset.DomainFinancial:
		spec.CategFrac = sr.Uniform(0.2, 0.6)
		spec.MissingRate = sr.Uniform(0, 0.08)
	case dataset.DomainLifeScience, dataset.DomainOther:
		if sr.Bernoulli(0.5) {
			spec.CategFrac = sr.Uniform(0, 0.3)
		}
		if sr.Bernoulli(0.4) {
			spec.MissingRate = sr.Uniform(0, 0.05)
		}
	}
	return spec
}

func specName(dom dataset.Domain, idx int) string {
	prefix := map[dataset.Domain]string{
		dataset.DomainLifeScience: "life",
		dataset.DomainComputer:    "comp",
		dataset.DomainSynthetic:   "synth",
		dataset.DomainSocial:      "social",
		dataset.DomainPhysical:    "phys",
		dataset.DomainFinancial:   "fin",
		dataset.DomainOther:       "other",
	}[dom]
	return prefix + "-" + twoDigits(idx)
}

func twoDigits(i int) string {
	return string([]byte{byte('0' + i/10), byte('0' + i%10)})
}

// CircleSpec is the paper's CIRCLE probe: sklearn make_circles — two
// concentric circles, non-linearly separable (Figure 9a).
func CircleSpec() Spec {
	return Spec{
		Name:   "CIRCLE",
		Domain: dataset.DomainSynthetic,
		Gen:    GenCircles,
		N:      500,
		D:      2,
		Noise:  0.1,
	}
}

// LinearSpec is the paper's LINEAR probe: sklearn make_classification — a
// noisy linearly separable concept (Figure 9b).
func LinearSpec() Spec {
	return Spec{
		Name:   "LINEAR",
		Domain: dataset.DomainSynthetic,
		Gen:    GenLinear,
		N:      500,
		D:      2,
		Noise:  0.6,
	}
}

// GenerateCorpus materializes every corpus dataset under the profile,
// applying the paper's local preprocessing (§3.1): categorical→ordinal
// encoding and median imputation. Datasets arrive ready for upload.
func GenerateCorpus(p Profile, seed uint64) []*dataset.Dataset {
	specs := Corpus()
	out := make([]*dataset.Dataset, len(specs))
	for i, spec := range specs {
		out[i] = GenerateClean(spec, p, seed)
	}
	return out
}

// GenerateClean generates one dataset and applies the paper's preprocessing
// steps (encode categoricals, impute missing values).
func GenerateClean(spec Spec, p Profile, seed uint64) *dataset.Dataset {
	ds := Generate(spec, p, seed)
	ds.EncodeCategorical()
	ds.Impute()
	return ds
}

// CorpusByName returns the spec with the given name, or false.
func CorpusByName(name string) (Spec, bool) {
	for _, s := range Corpus() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
