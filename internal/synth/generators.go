// Package synth generates the labeled-dataset corpus the reproduction runs
// on. The paper used 119 datasets (94 UCI + 16 scikit-learn synthetic + 9
// from applied-ML studies); those raw files are proprietary-or-offline here,
// so per the substitution rule we synthesize a corpus with the same
// *marginals*: the Figure 3(a) domain breakdown, the Figure 3(b)/3(c)
// sample- and feature-count distributions (scaled), mixed numeric and
// categorical features, missing values, class imbalance and varying
// linearity. The two probe datasets of §6 — CIRCLE (make_circles) and
// LINEAR (make_classification) — are generated exactly as in scikit-learn.
package synth

import (
	"fmt"
	"math"

	"mlaasbench/internal/dataset"
	"mlaasbench/internal/rng"
)

// Generator identifies a concept family used to synthesize a dataset.
type Generator string

// Generator kinds. Linear concepts are separable by a hyperplane (up to
// label noise); the rest require a non-linear decision boundary.
const (
	GenBlobs     Generator = "blobs"     // two Gaussian clusters (≈linear)
	GenLinear    Generator = "linear"    // random-hyperplane concept (linear)
	GenSparse    Generator = "sparse"    // high-dim, few informative, linear
	GenCircles   Generator = "circles"   // concentric circles (non-linear)
	GenMoons     Generator = "moons"     // interleaved half-moons (non-linear)
	GenXOR       Generator = "xor"       // checkerboard parity (non-linear)
	GenQuadratic Generator = "quadratic" // sign of a quadratic form (non-linear)
	GenClusters  Generator = "clusters"  // multi-cluster per class (non-linear)
)

// Spec fully describes one synthetic dataset. Generation is deterministic
// given the Spec and a seed.
type Spec struct {
	Name   string
	Domain dataset.Domain
	Gen    Generator

	N int // nominal sample count (paper scale, before profile capping)
	D int // nominal informative feature count

	// Difficulty and realism knobs.
	Noise       float64 // generator-specific geometric noise
	LabelNoise  float64 // fraction of labels flipped
	Imbalance   float64 // target positive-class fraction (0.5 = balanced)
	NoiseFeats  int     // extra pure-noise features appended
	RedundFeats int     // extra features that are linear combos of real ones
	CategFrac   float64 // fraction of final features cast to categorical
	MissingRate float64 // fraction of cells blanked before imputation
}

// Linear reports whether the underlying concept is linearly separable.
func (s Spec) Linear() bool {
	switch s.Gen {
	case GenBlobs, GenLinear, GenSparse:
		return true
	default:
		return false
	}
}

// TotalD returns the total feature count including noise and redundant
// features.
func (s Spec) TotalD() int { return s.D + s.NoiseFeats + s.RedundFeats }

// Profile caps generation cost so the full suite reruns quickly. The paper
// corpus spans 15–245,057 samples and 1–4,702 features; Quick preserves the
// *shape* of those distributions at laptop scale, Full pushes closer to
// paper scale.
type Profile struct {
	Name string
	MaxN int
	MaxD int
}

// Profiles available to the harness.
var (
	Quick = Profile{Name: "quick", MaxN: 260, MaxD: 24}
	Full  = Profile{Name: "full", MaxN: 4000, MaxD: 320}
)

// ProfileByName resolves "quick" or "full".
func ProfileByName(name string) (Profile, error) {
	switch name {
	case "", "quick":
		return Quick, nil
	case "full":
		return Full, nil
	default:
		return Profile{}, fmt.Errorf("synth: unknown profile %q", name)
	}
}

// Generate materializes the dataset described by spec under the given
// profile. The same (spec, profile, seed) always yields the same dataset.
func Generate(spec Spec, p Profile, seed uint64) *dataset.Dataset {
	r := rng.New(seed).Split("gen/" + spec.Name)
	n := spec.N
	if n > p.MaxN {
		n = p.MaxN
	}
	if n < 15 {
		n = 15
	}
	d := spec.D
	maxInformative := p.MaxD
	if d > maxInformative {
		d = maxInformative
	}
	if d < 1 {
		d = 1
	}
	noiseFeats, redundFeats := spec.NoiseFeats, spec.RedundFeats
	// Scale the auxiliary features down proportionally if the informative
	// ones were capped.
	if spec.D > 0 && d < spec.D {
		ratio := float64(d) / float64(spec.D)
		noiseFeats = int(float64(noiseFeats) * ratio)
		redundFeats = int(float64(redundFeats) * ratio)
	}
	if d+noiseFeats+redundFeats > p.MaxD {
		over := d + noiseFeats + redundFeats - p.MaxD
		take := min(over, noiseFeats)
		noiseFeats -= take
		over -= take
		redundFeats -= min(over, redundFeats)
	}

	x, y := generateCore(spec, n, d, r)

	// Rebalance classes to the target imbalance by relabeling geometry-
	// preserving flips is wrong; instead we resample: drop surplus
	// minority/majority points and regenerate until the ratio holds.
	x, y = rebalance(x, y, spec.Imbalance, r)

	// Append redundant features (random linear combinations of real ones).
	if redundFeats > 0 {
		coefs := make([][]float64, redundFeats)
		for k := range coefs {
			c := make([]float64, d)
			for j := range c {
				c[j] = r.NormFloat64()
			}
			coefs[k] = c
		}
		for i := range x {
			for k := 0; k < redundFeats; k++ {
				v := 0.0
				for j := 0; j < d; j++ {
					v += coefs[k][j] * x[i][j]
				}
				x[i] = append(x[i], v+0.05*r.NormFloat64())
			}
		}
	}
	// Append pure-noise features.
	for i := range x {
		for k := 0; k < noiseFeats; k++ {
			x[i] = append(x[i], r.NormFloat64())
		}
	}

	totalD := d + redundFeats + noiseFeats

	// Flip labels.
	if spec.LabelNoise > 0 {
		for i := range y {
			if r.Bernoulli(spec.LabelNoise) {
				y[i] = 1 - y[i]
			}
		}
	}

	ds := &dataset.Dataset{
		Name:   spec.Name,
		Domain: spec.Domain,
		X:      x,
		Y:      y,
		Linear: spec.Linear(),
	}

	// Cast a fraction of features to categorical by quantile binning into a
	// small alphabet; mark their kinds so EncodeCategorical applies.
	if spec.CategFrac > 0 && totalD > 0 {
		nCat := int(math.Round(spec.CategFrac * float64(totalD)))
		if nCat > 0 {
			ds.Kinds = make([]dataset.FeatureKind, totalD)
			catCols := r.Sample(totalD, nCat)
			for _, j := range catCols {
				ds.Kinds[j] = dataset.Categorical
				binColumn(ds.X, j, 3+r.Intn(5))
			}
		}
	}

	// Blank out cells.
	if spec.MissingRate > 0 {
		for i := range ds.X {
			for j := range ds.X[i] {
				if r.Bernoulli(spec.MissingRate) {
					ds.X[i][j] = dataset.Missing
				}
			}
		}
	}
	return ds
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// generateCore draws n samples of the base concept with d informative
// features. It returns roughly balanced classes; rebalancing happens later.
func generateCore(spec Spec, n, d int, r *rng.RNG) ([][]float64, []int) {
	switch spec.Gen {
	case GenCircles:
		return genCircles(n, d, spec.Noise, r)
	case GenMoons:
		return genMoons(n, d, spec.Noise, r)
	case GenXOR:
		return genXOR(n, d, spec.Noise, r)
	case GenQuadratic:
		return genQuadratic(n, d, spec.Noise, r)
	case GenClusters:
		return genClusters(n, d, spec.Noise, r)
	case GenLinear:
		return genLinear(n, d, spec.Noise, r)
	case GenSparse:
		return genSparse(n, d, spec.Noise, r)
	case GenBlobs:
		return genBlobs(n, d, spec.Noise, r)
	default:
		panic(fmt.Sprintf("synth: unknown generator %q", spec.Gen))
	}
}

// genCircles reproduces sklearn.datasets.make_circles: an outer circle
// (class 0) and an inner circle at factor 0.5 (class 1) with Gaussian noise.
// Extra dimensions beyond 2 are small-noise padding so the concept stays
// two-dimensional.
func genCircles(n, d int, noise float64, r *rng.RNG) ([][]float64, []int) {
	if noise <= 0 {
		noise = 0.1
	}
	const factor = 0.5
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		theta := 2 * math.Pi * r.Float64()
		radius := 1.0
		cls := 0
		if i%2 == 1 {
			radius = factor
			cls = 1
		}
		row := make([]float64, maxInt(d, 2))
		row[0] = radius*math.Cos(theta) + r.Normal(0, noise)
		row[1] = radius*math.Sin(theta) + r.Normal(0, noise)
		for j := 2; j < len(row); j++ {
			row[j] = r.Normal(0, 0.05)
		}
		x[i] = row[:maxInt(d, 2)]
		y[i] = cls
	}
	return x, y
}

// genMoons reproduces sklearn.datasets.make_moons.
func genMoons(n, d int, noise float64, r *rng.RNG) ([][]float64, []int) {
	if noise <= 0 {
		noise = 0.15
	}
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		t := math.Pi * r.Float64()
		row := make([]float64, maxInt(d, 2))
		if i%2 == 0 {
			row[0] = math.Cos(t)
			row[1] = math.Sin(t)
			y[i] = 0
		} else {
			row[0] = 1 - math.Cos(t)
			row[1] = 0.5 - math.Sin(t)
			y[i] = 1
		}
		row[0] += r.Normal(0, noise)
		row[1] += r.Normal(0, noise)
		for j := 2; j < len(row); j++ {
			row[j] = r.Normal(0, 0.05)
		}
		x[i] = row
	}
	return x, y
}

// genXOR draws points uniformly in [-1,1]^d and labels them by the parity of
// the quadrant sign of the first two coordinates — the classic non-linear
// checkerboard concept.
func genXOR(n, d int, noise float64, r *rng.RNG) ([][]float64, []int) {
	if noise <= 0 {
		noise = 0.05
	}
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		row := make([]float64, maxInt(d, 2))
		for j := range row {
			row[j] = r.Uniform(-1, 1)
		}
		cls := 0
		if (row[0] > 0) != (row[1] > 0) {
			cls = 1
		}
		row[0] += r.Normal(0, noise)
		row[1] += r.Normal(0, noise)
		x[i] = row
		y[i] = cls
	}
	return x, y
}

// genQuadratic labels by the sign of a random indefinite quadratic form,
// producing curved boundaries in all informative dimensions.
func genQuadratic(n, d int, noise float64, r *rng.RNG) ([][]float64, []int) {
	if noise <= 0 {
		noise = 0.1
	}
	dd := maxInt(d, 2)
	diag := make([]float64, dd)
	threshold := 0.0 // E[q] for standard-normal inputs is Σ diag[j]
	for j := range diag {
		diag[j] = r.Normal(0, 1)
		threshold += diag[j]
	}
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		row := make([]float64, dd)
		q := 0.0
		for j := range row {
			row[j] = r.NormFloat64()
			q += diag[j] * row[j] * row[j]
		}
		cls := 0
		if q-threshold+r.Normal(0, noise) > 0 {
			cls = 1
		}
		x[i] = row
		y[i] = cls
	}
	return x, y
}

// genClusters places each class on several Gaussian clusters so no single
// hyperplane separates them.
func genClusters(n, d int, noise float64, r *rng.RNG) ([][]float64, []int) {
	if noise <= 0 {
		noise = 0.4
	}
	dd := maxInt(d, 2)
	const perClass = 3
	centers := make([][][]float64, 2)
	for c := 0; c < 2; c++ {
		centers[c] = make([][]float64, perClass)
		for k := 0; k < perClass; k++ {
			ct := make([]float64, dd)
			for j := range ct {
				ct[j] = r.Uniform(-3, 3)
			}
			centers[c][k] = ct
		}
	}
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		ct := centers[cls][r.Intn(perClass)]
		row := make([]float64, dd)
		for j := range row {
			row[j] = ct[j] + r.Normal(0, noise)
		}
		x[i] = row
		y[i] = cls
	}
	return x, y
}

// genLinear reproduces the spirit of sklearn.datasets.make_classification
// with class_sep control: a random unit hyperplane labels standard-normal
// points, with Gaussian slack producing near-boundary noise.
func genLinear(n, d int, noise float64, r *rng.RNG) ([][]float64, []int) {
	if noise <= 0 {
		noise = 0.3
	}
	dd := maxInt(d, 1)
	w := make([]float64, dd)
	norm := 0.0
	for j := range w {
		w[j] = r.NormFloat64()
		norm += w[j] * w[j]
	}
	norm = math.Sqrt(norm)
	for j := range w {
		w[j] /= norm
	}
	b := r.Normal(0, 0.2)
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		row := make([]float64, dd)
		dot := b
		for j := range row {
			row[j] = r.NormFloat64()
			dot += w[j] * row[j]
		}
		cls := 0
		if dot+r.Normal(0, noise) > 0 {
			cls = 1
		}
		// Push the point away from the plane for a visible margin.
		shift := 0.5
		if cls == 0 {
			shift = -0.5
		}
		for j := range row {
			row[j] += shift * w[j]
		}
		x[i] = row
		y[i] = cls
	}
	return x, y
}

// genSparse generates a high-dimensional linear concept where only a handful
// of coordinates are informative — the shape of text-like UCI datasets.
func genSparse(n, d int, noise float64, r *rng.RNG) ([][]float64, []int) {
	if noise <= 0 {
		noise = 0.2
	}
	dd := maxInt(d, 4)
	informative := maxInt(dd/8, 2)
	w := make([]float64, dd)
	for _, j := range r.Sample(dd, informative) {
		w[j] = r.Normal(0, 2)
	}
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		row := make([]float64, dd)
		dot := 0.0
		for j := range row {
			// Sparse activations: most entries zero.
			if r.Bernoulli(0.3) {
				row[j] = r.Exponential(1)
			}
			dot += w[j] * row[j]
		}
		cls := 0
		if dot+r.Normal(0, noise) > 0 {
			cls = 1
		}
		x[i] = row
		y[i] = cls
	}
	return x, y
}

// genBlobs draws two Gaussian clusters whose separation is 4·(1-noise)… a
// nearly-linear concept with controllable overlap.
func genBlobs(n, d int, noise float64, r *rng.RNG) ([][]float64, []int) {
	if noise <= 0 {
		noise = 0.3
	}
	dd := maxInt(d, 1)
	sep := 3 * (1 - noise)
	if sep < 0.3 {
		sep = 0.3
	}
	dir := make([]float64, dd)
	norm := 0.0
	for j := range dir {
		dir[j] = r.NormFloat64()
		norm += dir[j] * dir[j]
	}
	norm = math.Sqrt(norm)
	for j := range dir {
		dir[j] = dir[j] / norm * sep / 2
	}
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		sign := 1.0
		if cls == 0 {
			sign = -1
		}
		row := make([]float64, dd)
		for j := range row {
			row[j] = sign*dir[j] + r.NormFloat64()
		}
		x[i] = row
		y[i] = cls
	}
	return x, y
}

// rebalance drops majority-class samples until the positive fraction is
// close to target (only when target deviates from 0.5 and enough samples
// remain). It never leaves fewer than 4 samples per class.
func rebalance(x [][]float64, y []int, target float64, r *rng.RNG) ([][]float64, []int) {
	if target <= 0 || target >= 1 || math.Abs(target-0.5) < 0.01 {
		return x, y
	}
	var pos, neg []int
	for i, v := range y {
		if v == 1 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	// Keep all of the minority side (per target) and subsample the other.
	// target = pos / (pos + neg').
	keepPos, keepNeg := len(pos), len(neg)
	wantNeg := int(math.Round(float64(len(pos)) * (1 - target) / target))
	if wantNeg <= len(neg) {
		keepNeg = maxInt(wantNeg, 4)
	} else {
		wantPos := int(math.Round(float64(len(neg)) * target / (1 - target)))
		keepPos = maxInt(minInt(wantPos, len(pos)), 4)
	}
	keepNeg = minInt(keepNeg, len(neg))
	keepPos = minInt(keepPos, len(pos))
	r.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	r.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	keep := append(append([]int(nil), pos[:keepPos]...), neg[:keepNeg]...)
	r.Shuffle(len(keep), func(i, j int) { keep[i], keep[j] = keep[j], keep[i] })
	nx := make([][]float64, len(keep))
	ny := make([]int, len(keep))
	for k, i := range keep {
		nx[k] = x[i]
		ny[k] = y[i]
	}
	return nx, ny
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// binColumn quantile-bins column j of x into nb categorical codes encoded as
// arbitrary distinct floats (the codes are then ordinal-mapped by
// EncodeCategorical, matching the paper's preprocessing).
func binColumn(x [][]float64, j, nb int) {
	vals := make([]float64, 0, len(x))
	for i := range x {
		vals = append(vals, x[i][j])
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi == lo {
		return
	}
	for i := range x {
		b := int(float64(nb) * (x[i][j] - lo) / (hi - lo))
		if b == nb {
			b--
		}
		// Encode the category as a non-ordinal-looking code so the
		// downstream ordinal mapping is exercised realistically.
		x[i][j] = float64((b*37)%97) + 1000
	}
}
