package pipeline

import (
	"context"
	"runtime"
	"sync"
)

// minRowsPerShard floors the per-goroutine work: batches smaller than this
// never split, and larger ones get at most one shard per minRowsPerShard
// rows, so goroutine overhead can't exceed the compute it parallelizes.
const minRowsPerShard = 16

type predictShardsKey struct{}

// WithPredictShards sets the shard count PredictShardsFrom reports for this
// context — how many goroutines RunCtx's predict/score stage may fan a test
// set across. It follows the core scheduler's worker-count convention:
// values <= 0 mean "one shard per CPU".
func WithPredictShards(ctx context.Context, shards int) context.Context {
	return context.WithValue(ctx, predictShardsKey{}, shards)
}

// PredictShardsFrom returns the shard count carried by ctx, defaulting to 1
// (serial) — inside the sweep the worker pool already saturates the cores,
// so intra-prediction parallelism is opt-in there.
func PredictShardsFrom(ctx context.Context) int {
	if v, ok := ctx.Value(predictShardsKey{}).(int); ok {
		return v
	}
	return 1
}

// ShardCount resolves the effective number of shards for a batch of the
// given row count: shards <= 0 means one per CPU (the core scheduler's
// convention), then capped so every shard has at least minRowsPerShard rows.
func ShardCount(rows, shards int) int {
	if shards <= 0 {
		shards = runtime.NumCPU()
	}
	if maxUseful := (rows + minRowsPerShard - 1) / minRowsPerShard; shards > maxUseful {
		shards = maxUseful
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}

// PredictSharded labels points by fanning contiguous row ranges of the
// batch across ShardCount(len(points), shards) goroutines and stitching the
// results back in input order. Classifier predictions are row-independent
// and each shard writes a disjoint range of the output, so the result is
// byte-identical to predict(points) at any shard count (asserted by
// TestParallelPredictMatchesSerial); with one shard it IS the serial call.
// predict must be safe for concurrent read-only use, which every fitted
// classifier's Predict is.
func PredictSharded(predict func([][]float64) []int, points [][]float64, shards int) []int {
	n := len(points)
	ns := ShardCount(n, shards)
	if ns <= 1 {
		return predict(points)
	}
	out := make([]int, n)
	chunk := (n + ns - 1) / ns
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			copy(out[lo:hi], predict(points[lo:hi]))
		}(lo, hi)
	}
	wg.Wait()
	return out
}
