package pipeline

import (
	"context"
	"fmt"
	"sort"

	"mlaasbench/internal/classifiers"
	"mlaasbench/internal/dataset"
	"mlaasbench/internal/featsel"
	"mlaasbench/internal/preprocess"
	"mlaasbench/internal/rng"
	"mlaasbench/internal/telemetry"
)

// FittedTransform is one FEAT option after fitting on a training set: the
// learned statistics (scaler moments, selected columns, LDA projection) kept
// resident so query points can be transformed without touching the training
// data again. Apply is read-only and safe for concurrent use.
type FittedTransform struct {
	feat   Feat
	scaler preprocess.Scaler // Kind "scaler"
	cols   []int             // Kind "filter": kept columns, ascending
	lda    *featsel.FisherLDA
}

// Feat returns the option this transform was fitted for.
func (t *FittedTransform) Feat() Feat { return t.feat }

// FitFeat fits the FEAT option on the training set and returns the reusable
// transform plus the transformed training matrix. Apply on any rows then
// yields exactly what applyFeat would produce for the same fitted state, so
// fit-once serving stays byte-identical to the refit path.
func FitFeat(f Feat, train *dataset.Dataset) (*FittedTransform, [][]float64, error) {
	return FitFeatCtx(context.Background(), f, train)
}

// FitFeatCtx is FitFeat with context-routed stage timing (see RunCtx).
func FitFeatCtx(ctx context.Context, f Feat, train *dataset.Dataset) (*FittedTransform, [][]float64, error) {
	switch f.Kind {
	case "scaler":
		defer telemetry.TimeCtx(ctx, "preprocess")()
	case "filter", "fisherlda":
		defer telemetry.TimeCtx(ctx, "featsel")()
	}
	t := &FittedTransform{feat: f}
	switch f.Kind {
	case "", "none":
		return t, train.X, nil
	case "scaler":
		sc, err := preprocess.New(f.Name)
		if err != nil {
			return nil, nil, err
		}
		sc.Fit(train.X)
		t.scaler = sc
		return t, sc.Transform(train.X), nil
	case "filter":
		sel, err := featsel.New(f.Name)
		if err != nil {
			return nil, nil, err
		}
		k := int(FilterKeepFraction * float64(train.D()))
		if k < 1 {
			k = 1
		}
		cols := sel.Select(train.X, train.Y, k)
		sort.Ints(cols)
		t.cols = cols
		return t, train.SelectFeatures(cols).X, nil
	case "fisherlda":
		lda := &featsel.FisherLDA{}
		xTr := lda.FitTransform(train.X, train.Y)
		t.lda = lda
		return t, xTr, nil
	default:
		return nil, nil, fmt.Errorf("pipeline: unknown FEAT kind %q", f.Kind)
	}
}

// Apply transforms query rows with the fitted statistics. The inputs are
// never modified; the "none" option returns the rows unchanged.
func (t *FittedTransform) Apply(points [][]float64) [][]float64 {
	return t.ApplyCtx(context.Background(), points)
}

// ApplyCtx is Apply with context-routed stage timing (see RunCtx).
func (t *FittedTransform) ApplyCtx(ctx context.Context, points [][]float64) [][]float64 {
	switch t.feat.Kind {
	case "", "none":
		return points
	case "scaler":
		defer telemetry.TimeCtx(ctx, "preprocess")()
		return t.scaler.Transform(points)
	case "filter":
		defer telemetry.TimeCtx(ctx, "featsel")()
		// One flat backing array for the whole batch: a single allocation
		// instead of one per row on the serving hot path.
		w := len(t.cols)
		flat := make([]float64, len(points)*w)
		out := make([][]float64, len(points))
		for i, row := range points {
			dst := flat[i*w : (i+1)*w : (i+1)*w]
			for k, c := range t.cols {
				dst[k] = row[c]
			}
			out[i] = dst
		}
		return out
	case "fisherlda":
		defer telemetry.TimeCtx(ctx, "featsel")()
		return t.lda.Transform(points)
	}
	// FitFeat rejects unknown kinds, so a FittedTransform always has a
	// recognized one.
	panic("pipeline: Apply on unfitted transform")
}

// FittedPipeline is a trained pipeline configuration: the fitted FEAT
// transform plus the trained classifier, kept resident so prediction is a
// pure forward pass. It is the artifact a serving system stores after
// training instead of re-running the fit per query. Predict is safe for
// concurrent use (classifiers and transforms never mutate state after Fit).
type FittedPipeline struct {
	Config    Config
	transform *FittedTransform
	clf       classifiers.Classifier
}

// Fit trains the configuration on train and returns the reusable fitted
// pipeline. The RNG discipline matches Run and PredictPoints exactly — the
// classifier trains under r.Split("fit/"+cfg.String()) — so Fit followed by
// Predict yields labels byte-identical to PredictPoints with the same
// arguments: same seed, same model.
func Fit(cfg Config, train *dataset.Dataset, r *rng.RNG) (*FittedPipeline, error) {
	return FitCtx(context.Background(), cfg, train, r)
}

// FitCtx is Fit with context-routed stage timing (see RunCtx).
func FitCtx(ctx context.Context, cfg Config, train *dataset.Dataset, r *rng.RNG) (*FittedPipeline, error) {
	t, xTr, err := FitFeatCtx(ctx, cfg.Feat, train)
	if err != nil {
		return nil, err
	}
	clf, err := classifiers.New(cfg.Classifier, cfg.Params)
	if err != nil {
		return nil, err
	}
	stopFit := telemetry.TimeCtx(ctx, "fit")
	err = clf.Fit(xTr, train.Y, r.Split("fit/"+cfg.String()))
	stopFit()
	if err != nil {
		return nil, fmt.Errorf("pipeline: fit %s on %s: %w", cfg.Classifier, train.Name, err)
	}
	return &FittedPipeline{Config: cfg, transform: t, clf: clf}, nil
}

// Predict labels query points with the resident model: transform with the
// fitted FEAT statistics, then one classifier forward pass. No training
// happens here.
func (fp *FittedPipeline) Predict(points [][]float64) []int {
	return fp.PredictCtx(context.Background(), points)
}

// PredictCtx is Predict with context-routed stage timing (see RunCtx).
func (fp *FittedPipeline) PredictCtx(ctx context.Context, points [][]float64) []int {
	xQ := fp.transform.ApplyCtx(ctx, points)
	stop := telemetry.TimeCtx(ctx, "predict")
	defer stop()
	return fp.clf.Predict(xQ)
}
