// Package pipeline assembles the Figure-1 ML pipeline: data transformation
// and feature selection (FEAT), classifier choice (CLF) and parameter
// tuning (PARA), then training and prediction. A Config names one point in
// that control space; Run executes it end-to-end on a train/test split.
//
// The package also implements the paper's configuration enumeration (§3.2):
// categorical parameters contribute every option, numeric parameters the
// {default/100, default, 100·default} grid, and the FEAT dimension iterates
// the platform's scaler and filter-method lists.
package pipeline

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"mlaasbench/internal/classifiers"
	"mlaasbench/internal/dataset"
	"mlaasbench/internal/metrics"
	"mlaasbench/internal/rng"
	"mlaasbench/internal/telemetry"
)

// Feat identifies one option of the FEAT control dimension: either no
// transformation, a scaler, a filter feature-selection method, or the
// Fisher-LDA projection (Microsoft's first FEAT entry).
type Feat struct {
	Kind string `json:"kind"` // "none", "scaler", "filter", "fisherlda"
	Name string `json:"name"` // scaler or filter method name ("" for none/fisherlda)
}

// String renders the FEAT option compactly, e.g. "scaler:standard".
func (f Feat) String() string {
	switch f.Kind {
	case "", "none":
		return "none"
	case "fisherlda":
		return "fisherlda"
	default:
		return f.Kind + ":" + f.Name
	}
}

// ParseFeat inverts Feat.String.
func ParseFeat(s string) (Feat, error) {
	switch s {
	case "", "none":
		return Feat{Kind: "none"}, nil
	case "fisherlda":
		return Feat{Kind: "fisherlda"}, nil
	}
	kind, name, ok := strings.Cut(s, ":")
	if !ok || (kind != "scaler" && kind != "filter") || name == "" {
		return Feat{}, fmt.Errorf("pipeline: bad FEAT option %q", s)
	}
	return Feat{Kind: kind, Name: name}, nil
}

// FilterKeepFraction is the fraction of features a filter method keeps.
// The paper does not report a per-dataset k; half the features is the
// conventional midpoint and applies uniformly.
const FilterKeepFraction = 0.5

// Config is one fully specified pipeline configuration.
type Config struct {
	Feat       Feat               `json:"feat"`
	Classifier string             `json:"classifier"`
	Params     classifiers.Params `json:"params"`
}

// String renders the config as a stable, human-readable id.
func (c Config) String() string {
	keys := make([]string, 0, len(c.Params))
	for k := range c.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(c.Feat.String())
	b.WriteString("|")
	b.WriteString(c.Classifier)
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%v", k, c.Params[k])
	}
	return b.String()
}

// Result is the outcome of running one config on one dataset split.
type Result struct {
	Config Config         `json:"config"`
	Scores metrics.Scores `json:"scores"`
	// Pred holds the test-set predictions, aligned with the split's test
	// rows. The §6.2 family-inference analysis consumes them.
	Pred []int `json:"pred,omitempty"`
}

// Run executes the config on the given split: fit FEAT on the training
// data, transform both sides, train the classifier, predict the test set
// and score. The RNG governs all stochastic training steps.
func Run(cfg Config, train, test *dataset.Dataset, r *rng.RNG) (Result, error) {
	return RunCtx(context.Background(), cfg, train, test, r, nil)
}

// RunWithCache is Run with an optional per-split FeatCache: when cache is
// non-nil the FEAT transform is fitted at most once per option and the
// transformed matrices are shared read-only across configs. A nil cache
// fits per call, exactly like Run.
func RunWithCache(cfg Config, train, test *dataset.Dataset, r *rng.RNG, cache *FeatCache) (Result, error) {
	return RunCtx(context.Background(), cfg, train, test, r, cache)
}

// RunCtx is RunWithCache threaded through a context: stage timings become
// child spans when ctx carries a span (so a measured config renders as one
// trace tree) and land in ctx's registry, falling back to plain Default
// registry timers otherwise. The computation itself is context-free —
// cancellation is the sweep scheduler's job, between configs.
func RunCtx(ctx context.Context, cfg Config, train, test *dataset.Dataset, r *rng.RNG, cache *FeatCache) (Result, error) {
	var (
		xTr, xTe [][]float64
		err      error
	)
	if cache != nil {
		xTr, xTe, err = cache.TransformCtx(ctx, cfg.Feat, train, test)
	} else {
		xTr, xTe, err = applyFeatCtx(ctx, cfg.Feat, train, test)
	}
	if err != nil {
		return Result{}, err
	}
	clf, err := classifiers.New(cfg.Classifier, cfg.Params)
	if err != nil {
		return Result{}, err
	}
	stopFit := telemetry.TimeCtx(ctx, "fit")
	err = clf.Fit(xTr, train.Y, r.Split("fit/"+cfg.String()))
	stopFit()
	if err != nil {
		return Result{}, fmt.Errorf("pipeline: fit %s on %s: %w", cfg.Classifier, train.Name, err)
	}
	stopPredict := telemetry.TimeCtx(ctx, "predict")
	pred := PredictSharded(clf.Predict, xTe, PredictShardsFrom(ctx))
	stopPredict()
	stopScore := telemetry.TimeCtx(ctx, "score")
	scores, err := metrics.Score(test.Y, pred)
	stopScore()
	if err != nil {
		return Result{}, fmt.Errorf("pipeline: score: %w", err)
	}
	return Result{Config: cfg, Scores: scores, Pred: pred}, nil
}

// PredictPoints trains the config on train and labels arbitrary query
// points — the mesh-grid primitive behind the §6.1 decision-boundary
// analysis.
func PredictPoints(cfg Config, train *dataset.Dataset, points [][]float64, r *rng.RNG) ([]int, error) {
	queries := &dataset.Dataset{Name: train.Name + "/mesh", X: points, Y: make([]int, len(points))}
	xTr, xQ, err := applyFeat(cfg.Feat, train, queries)
	if err != nil {
		return nil, err
	}
	clf, err := classifiers.New(cfg.Classifier, cfg.Params)
	if err != nil {
		return nil, err
	}
	stopFit := telemetry.Time("fit")
	err = clf.Fit(xTr, train.Y, r.Split("fit/"+cfg.String()))
	stopFit()
	if err != nil {
		return nil, fmt.Errorf("pipeline: fit %s: %w", cfg.Classifier, err)
	}
	stopPredict := telemetry.Time("predict")
	pred := clf.Predict(xQ)
	stopPredict()
	return pred, nil
}

// applyFeat fits the FEAT option on the training set and transforms both
// feature matrices — FitFeat plus one Apply. Scaling records under the
// "preprocess" stage, filter methods and Fisher-LDA under "featsel"; the
// no-op option records nothing.
func applyFeat(f Feat, train, test *dataset.Dataset) (xTr, xTe [][]float64, err error) {
	return applyFeatCtx(context.Background(), f, train, test)
}

func applyFeatCtx(ctx context.Context, f Feat, train, test *dataset.Dataset) (xTr, xTe [][]float64, err error) {
	t, xTr, err := FitFeatCtx(ctx, f, train)
	if err != nil {
		return nil, nil, err
	}
	return xTr, t.ApplyCtx(ctx, test.X), nil
}

// ClassifierSurface is the exposed tuning surface of one classifier on a
// platform: which of the registry's parameters the platform lets users
// touch (Table 1's per-platform parameter lists).
type ClassifierSurface struct {
	Name   string
	Params []classifiers.ParamSpec
}

// Surface is a platform's full user-visible control surface.
type Surface struct {
	Feats       []Feat // FEAT options; empty means the dimension is absent
	Classifiers []ClassifierSurface
}

// FeatOptions returns the FEAT options to iterate, always including "none".
func (s Surface) FeatOptions() []Feat {
	opts := []Feat{{Kind: "none"}}
	opts = append(opts, s.Feats...)
	return opts
}

// DefaultConfig returns the platform's zero-control baseline: no FEAT, the
// given classifier at the platform defaults for every exposed parameter.
func (s Surface) DefaultConfig(classifier string) (Config, error) {
	cs, err := s.classifier(classifier)
	if err != nil {
		return Config{}, err
	}
	params := classifiers.Params{}
	for _, spec := range cs.Params {
		params[spec.Name] = spec.DefaultValue()
	}
	return Config{Feat: Feat{Kind: "none"}, Classifier: classifier, Params: params}, nil
}

func (s Surface) classifier(name string) (ClassifierSurface, error) {
	for _, cs := range s.Classifiers {
		if cs.Name == name {
			return cs, nil
		}
	}
	return ClassifierSurface{}, fmt.Errorf("pipeline: classifier %q not on surface", name)
}

// ParamGrid enumerates the parameter assignments the sweep explores for one
// classifier surface, following the paper's §3.2 methodology: start from the
// platform defaults, then scan each tunable parameter's grid values
// (categorical: all options; numeric: default/100, default, 100·default)
// one at a time around the defaults. The first element is always the
// all-defaults assignment. (The paper's Table-2 counts likewise grow with
// the *sum* of per-parameter options — e.g. Microsoft was measured with
// "over 200 model configurations", not the 3²³ full product.)
func ParamGrid(cs ClassifierSurface) []classifiers.Params {
	defaults := classifiers.Params{}
	for _, spec := range cs.Params {
		defaults[spec.Name] = spec.DefaultValue()
	}
	out := []classifiers.Params{defaults}
	seen := map[string]bool{paramsKey(defaults): true}
	for _, spec := range cs.Params {
		for _, v := range spec.GridValues() {
			p := defaults.Clone()
			p[spec.Name] = v
			key := paramsKey(p)
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, p)
		}
	}
	return out
}

// ParamGridFull enumerates the complete cartesian product of the exposed
// parameter grids. It exists for ablations comparing the one-at-a-time scan
// against exhaustive search; the product explodes combinatorially, so the
// standard sweep uses ParamGrid.
func ParamGridFull(cs ClassifierSurface) []classifiers.Params {
	defaults := classifiers.Params{}
	for _, spec := range cs.Params {
		defaults[spec.Name] = spec.DefaultValue()
	}
	grids := make([][]any, len(cs.Params))
	for i, spec := range cs.Params {
		grids[i] = spec.GridValues()
	}
	out := []classifiers.Params{defaults}
	seen := map[string]bool{paramsKey(defaults): true}
	var recurse func(i int, cur classifiers.Params)
	recurse = func(i int, cur classifiers.Params) {
		if i == len(cs.Params) {
			key := paramsKey(cur)
			if !seen[key] {
				seen[key] = true
				out = append(out, cur.Clone())
			}
			return
		}
		for _, v := range grids[i] {
			cur[cs.Params[i].Name] = v
			recurse(i+1, cur)
		}
	}
	recurse(0, classifiers.Params{})
	return out
}

func paramsKey(p classifiers.Params) string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%v;", k, p[k])
	}
	return b.String()
}

// Enumerate lists every configuration on the surface: FEAT options ×
// classifiers × parameter grids. This is the sweep behind the paper's
// "optimized" numbers (§4.1) and Table 2's measurement counts.
func Enumerate(s Surface) []Config {
	var out []Config
	for _, feat := range s.FeatOptions() {
		for _, cs := range s.Classifiers {
			for _, params := range ParamGrid(cs) {
				out = append(out, Config{Feat: feat, Classifier: cs.Name, Params: params})
			}
		}
	}
	return out
}

// EnumerateDimension lists the configs that vary a single control dimension
// ("feat", "clf" or "para") while holding the others at the platform
// baseline — the §4.2/§5.2 per-control experiments. baseClassifier is the
// platform's default classifier (Logistic Regression in the paper).
func EnumerateDimension(s Surface, dim, baseClassifier string) ([]Config, error) {
	base, err := s.DefaultConfig(baseClassifier)
	if err != nil {
		return nil, err
	}
	switch dim {
	case "feat":
		var out []Config
		for _, feat := range s.FeatOptions() {
			c := base
			c.Feat = feat
			out = append(out, c)
		}
		return out, nil
	case "clf":
		var out []Config
		for _, cs := range s.Classifiers {
			c, err := s.DefaultConfig(cs.Name)
			if err != nil {
				return nil, err
			}
			out = append(out, c)
		}
		return out, nil
	case "para":
		cs, err := s.classifier(baseClassifier)
		if err != nil {
			return nil, err
		}
		var out []Config
		for _, params := range ParamGrid(cs) {
			out = append(out, Config{Feat: Feat{Kind: "none"}, Classifier: baseClassifier, Params: params})
		}
		return out, nil
	default:
		return nil, fmt.Errorf("pipeline: unknown dimension %q", dim)
	}
}

// WithDefault overrides one parameter's platform default in a spec list —
// §3.2 notes that default values vary across platforms ("All MLaaS
// platforms select a default set of parameters for Logistic Regression
// (values and parameters vary across platforms)"). For numeric parameters
// the default value changes (and with it the derived {D/100, D, 100·D}
// grid); for categorical parameters the chosen option is moved to the
// front, since the first option is the default.
func WithDefault(specs []classifiers.ParamSpec, name string, def any) []classifiers.ParamSpec {
	out := make([]classifiers.ParamSpec, len(specs))
	copy(out, specs)
	for i := range out {
		if out[i].Name != name {
			continue
		}
		switch v := def.(type) {
		case float64:
			out[i].Default = v
		case int:
			out[i].Default = float64(v)
		case string:
			opts := append([]any(nil), out[i].Options...)
			for j, o := range opts {
				if o == v {
					opts[0], opts[j] = opts[j], opts[0]
				}
			}
			out[i].Options = opts
		default:
			panic(fmt.Sprintf("pipeline: unsupported default type %T for %s", def, name))
		}
		return out
	}
	panic(fmt.Sprintf("pipeline: WithDefault: no parameter %s in spec list", name))
}

// SpecsFor returns the registry ParamSpecs whose names are listed — the
// helper platforms use to expose a subset of a classifier's parameters.
func SpecsFor(classifier string, paramNames ...string) []classifiers.ParamSpec {
	info, err := classifiers.Lookup(classifier)
	if err != nil {
		panic(err) // platform definitions are static; a typo is a programming error
	}
	var out []classifiers.ParamSpec
	for _, want := range paramNames {
		found := false
		for _, spec := range info.Params {
			if spec.Name == want {
				out = append(out, spec)
				found = true
				break
			}
		}
		if !found {
			panic(fmt.Sprintf("pipeline: classifier %s has no parameter %s", classifier, want))
		}
	}
	return out
}
