package pipeline

import (
	"fmt"

	"mlaasbench/internal/dataset"
	"mlaasbench/internal/metrics"
	"mlaasbench/internal/rng"
)

// CrossValidate evaluates a configuration with stratified k-fold cross
// validation on a dataset and returns the per-fold scores. The paper's
// family-inference methodology trains with 5-fold CV (§6.2); this is the
// general-purpose version exposed to library users.
func CrossValidate(cfg Config, ds *dataset.Dataset, k int, r *rng.RNG) ([]metrics.Scores, error) {
	if k < 2 {
		return nil, fmt.Errorf("pipeline: k-fold needs k ≥ 2, got %d", k)
	}
	if ds.N() < k {
		return nil, fmt.Errorf("pipeline: %d samples cannot fill %d folds", ds.N(), k)
	}
	folds := stratifiedFolds(ds, k, r)
	// The index buffers are sized once from the fold sizes and reused across
	// folds (Subset copies what it needs): growing them with append from nil
	// every fold is O(k²) allocation churn over the k iterations.
	maxFold := 0
	for _, fold := range folds {
		if len(fold) > maxFold {
			maxFold = len(fold)
		}
	}
	trainIdx := make([]int, 0, ds.N())
	testIdx := make([]int, 0, maxFold)
	out := make([]metrics.Scores, 0, k)
	for fi := 0; fi < k; fi++ {
		trainIdx, testIdx = trainIdx[:0], testIdx[:0]
		for fj, fold := range folds {
			if fj == fi {
				testIdx = append(testIdx, fold...)
			} else {
				trainIdx = append(trainIdx, fold...)
			}
		}
		if len(trainIdx) == 0 || len(testIdx) == 0 {
			continue
		}
		train := ds.Subset(trainIdx, fmt.Sprintf("/cv%d-train", fi))
		test := ds.Subset(testIdx, fmt.Sprintf("/cv%d-test", fi))
		res, err := Run(cfg, train, test, r.Split(fmt.Sprintf("cv/%d", fi)))
		if err != nil {
			return nil, fmt.Errorf("pipeline: fold %d: %w", fi, err)
		}
		out = append(out, res.Scores)
	}
	return out, nil
}

// MeanF1 averages the F-scores of a fold result set.
func MeanF1(scores []metrics.Scores) float64 {
	if len(scores) == 0 {
		return 0
	}
	s := 0.0
	for _, sc := range scores {
		s += sc.F1
	}
	return s / float64(len(scores))
}

// stratifiedFolds assigns sample indices to k folds, keeping the class
// ratio approximately constant per fold.
func stratifiedFolds(ds *dataset.Dataset, k int, r *rng.RNG) [][]int {
	var pos, neg []int
	for i, y := range ds.Y {
		if y == 1 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	r.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	r.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	folds := make([][]int, k)
	for i, idx := range pos {
		folds[i%k] = append(folds[i%k], idx)
	}
	for i, idx := range neg {
		// Offset the round-robin so small classes don't pile on fold 0.
		f := (i + len(pos)) % k
		folds[f] = append(folds[f], idx)
	}
	return folds
}

// SelectConfig picks the best of the given configurations by k-fold
// cross-validated F-score on the training data — model selection without
// touching the test set.
func SelectConfig(configs []Config, train *dataset.Dataset, k int, r *rng.RNG) (Config, float64, error) {
	if len(configs) == 0 {
		return Config{}, 0, fmt.Errorf("pipeline: no configurations to select from")
	}
	best := configs[0]
	bestF1 := -1.0
	for _, cfg := range configs {
		scores, err := CrossValidate(cfg, train, k, r.Split("sel/"+cfg.String()))
		if err != nil {
			continue // an untrainable config simply loses the selection
		}
		if f1 := MeanF1(scores); f1 > bestF1 {
			bestF1 = f1
			best = cfg
		}
	}
	if bestF1 < 0 {
		return Config{}, 0, fmt.Errorf("pipeline: every configuration failed cross-validation")
	}
	return best, bestF1, nil
}
