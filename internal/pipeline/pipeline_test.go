package pipeline

import (
	"strings"
	"testing"
	"testing/quick"

	"mlaasbench/internal/classifiers"
	"mlaasbench/internal/dataset"
	"mlaasbench/internal/rng"
	"mlaasbench/internal/synth"
)

func testSplit(t *testing.T) dataset.Split {
	t.Helper()
	ds := synth.GenerateClean(synth.Spec{Name: "p", Gen: synth.GenLinear, N: 150, D: 4, Noise: 0.2}, synth.Quick, 1)
	return ds.StratifiedSplit(0.7, rng.New(2))
}

func smallSurface() Surface {
	return Surface{
		Feats: []Feat{
			{Kind: "scaler", Name: "standard"},
			{Kind: "filter", Name: "pearson"},
		},
		Classifiers: []ClassifierSurface{
			{Name: "logreg", Params: SpecsFor("logreg", "penalty", "C")},
			{Name: "dtree", Params: SpecsFor("dtree", "criterion")},
		},
	}
}

func TestRunProducesScores(t *testing.T) {
	sp := testSplit(t)
	cfg := Config{Feat: Feat{Kind: "none"}, Classifier: "logreg", Params: classifiers.Params{}}
	res, err := Run(cfg, sp.Train, sp.Test, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Scores.F1 < 0.7 {
		t.Fatalf("F1 %.3f on easy linear data", res.Scores.F1)
	}
	if res.Scores.Accuracy <= 0 || res.Scores.Accuracy > 1 {
		t.Fatalf("accuracy %v", res.Scores.Accuracy)
	}
}

func TestRunAllFeatKinds(t *testing.T) {
	sp := testSplit(t)
	feats := []Feat{
		{Kind: "none"},
		{Kind: "scaler", Name: "standard"},
		{Kind: "scaler", Name: "minmax"},
		{Kind: "filter", Name: "fisher"},
		{Kind: "fisherlda"},
	}
	for _, f := range feats {
		cfg := Config{Feat: f, Classifier: "logreg", Params: classifiers.Params{}}
		res, err := Run(cfg, sp.Train, sp.Test, rng.New(4))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if res.Scores.F1 == 0 {
			t.Fatalf("%s: zero F1 on separable data", f)
		}
	}
}

func TestRunUnknownClassifier(t *testing.T) {
	sp := testSplit(t)
	cfg := Config{Classifier: "nope"}
	if _, err := Run(cfg, sp.Train, sp.Test, rng.New(1)); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunUnknownFeat(t *testing.T) {
	sp := testSplit(t)
	cfg := Config{Feat: Feat{Kind: "wavelet"}, Classifier: "logreg"}
	if _, err := Run(cfg, sp.Train, sp.Test, rng.New(1)); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunDeterministic(t *testing.T) {
	sp := testSplit(t)
	cfg := Config{Classifier: "randomforest", Params: classifiers.Params{"n_estimators": 5}}
	a, err := Run(cfg, sp.Train, sp.Test, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Run(cfg, sp.Train, sp.Test, rng.New(7))
	if a.Scores != b.Scores {
		t.Fatalf("nondeterministic: %+v vs %+v", a.Scores, b.Scores)
	}
}

func TestPredictPoints(t *testing.T) {
	sp := testSplit(t)
	pts := sp.Train.MeshGrid(10, 0.5)
	cfg := Config{Classifier: "dtree"}
	labels, err := PredictPoints(cfg, sp.Train, pts, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 100 {
		t.Fatalf("%d labels for 100 points", len(labels))
	}
	// Mesh over a dataset's own bounding box must see both classes for a
	// reasonable classifier on separable data.
	sum := 0
	for _, l := range labels {
		sum += l
	}
	if sum == 0 || sum == len(labels) {
		t.Fatalf("mesh predicted a single class everywhere (%d/%d)", sum, len(labels))
	}
}

func TestFeatStringRoundTrip(t *testing.T) {
	for _, f := range []Feat{
		{Kind: "none"},
		{Kind: "scaler", Name: "standard"},
		{Kind: "filter", Name: "chi"},
		{Kind: "fisherlda"},
	} {
		got, err := ParseFeat(f.String())
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if got.String() != f.String() {
			t.Fatalf("round trip %v → %v", f, got)
		}
	}
	if _, err := ParseFeat("bogus:x"); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := ParseFeat("scaler:"); err == nil {
		t.Fatal("expected parse error for empty name")
	}
}

func TestConfigStringStable(t *testing.T) {
	c := Config{
		Feat:       Feat{Kind: "scaler", Name: "standard"},
		Classifier: "logreg",
		Params:     classifiers.Params{"C": 1.0, "penalty": "l2"},
	}
	s1 := c.String()
	s2 := c.String()
	if s1 != s2 {
		t.Fatal("unstable config string")
	}
	if !strings.Contains(s1, "logreg") || !strings.Contains(s1, "C=1") {
		t.Fatalf("config string %q", s1)
	}
}

func TestParamGridOneAtATime(t *testing.T) {
	cs := ClassifierSurface{Name: "logreg", Params: SpecsFor("logreg", "penalty", "C")}
	grid := ParamGrid(cs)
	// Defaults + penalty:l1 + C:{0.01, 100} = 4 distinct assignments
	// (penalty:l2 and C:1 dedup against the defaults).
	if len(grid) != 4 {
		t.Fatalf("grid size %d, want 4: %v", len(grid), grid)
	}
	first := grid[0]
	if first.String("penalty", "") != "l2" || first.Float("C", 0) != 1 {
		t.Fatalf("first grid entry %v is not the defaults", first)
	}
	// Every non-default entry deviates from the defaults in exactly one
	// parameter (the one-at-a-time scan).
	for _, p := range grid[1:] {
		devs := 0
		if p.String("penalty", "") != "l2" {
			devs++
		}
		if p.Float("C", 0) != 1 {
			devs++
		}
		if devs != 1 {
			t.Fatalf("entry %v deviates in %d params, want 1", p, devs)
		}
	}
	// All entries distinct.
	seen := map[string]bool{}
	for _, p := range grid {
		k := paramsKey(p)
		if seen[k] {
			t.Fatalf("duplicate grid entry %v", p)
		}
		seen[k] = true
	}
}

func TestParamGridFullProduct(t *testing.T) {
	cs := ClassifierSurface{Name: "logreg", Params: SpecsFor("logreg", "penalty", "C")}
	grid := ParamGridFull(cs)
	// penalty: 2 options × C: 3 values = 6 combos.
	if len(grid) != 6 {
		t.Fatalf("full grid size %d, want 6", len(grid))
	}
	if len(ParamGridFull(ClassifierSurface{Name: "naivebayes"})) != 1 {
		t.Fatal("no-param full grid")
	}
}

func TestParamGridNoParams(t *testing.T) {
	cs := ClassifierSurface{Name: "naivebayes"}
	grid := ParamGrid(cs)
	if len(grid) != 1 || len(grid[0]) != 0 {
		t.Fatalf("no-param grid %v", grid)
	}
}

func TestEnumerateCounts(t *testing.T) {
	s := smallSurface()
	configs := Enumerate(s)
	// FEAT: none + 2 = 3. logreg grid: 4, dtree grid: 2 → 6 per FEAT → 18.
	if len(configs) != 18 {
		t.Fatalf("enumerated %d configs, want 18", len(configs))
	}
	// All distinct.
	seen := map[string]bool{}
	for _, c := range configs {
		if seen[c.String()] {
			t.Fatalf("duplicate config %s", c)
		}
		seen[c.String()] = true
	}
}

func TestEnumerateDimension(t *testing.T) {
	s := smallSurface()
	feat, err := EnumerateDimension(s, "feat", "logreg")
	if err != nil {
		t.Fatal(err)
	}
	if len(feat) != 3 {
		t.Fatalf("feat dimension %d configs, want 3", len(feat))
	}
	for _, c := range feat {
		if c.Classifier != "logreg" {
			t.Fatal("feat dimension must hold classifier at baseline")
		}
	}
	clf, err := EnumerateDimension(s, "clf", "logreg")
	if err != nil {
		t.Fatal(err)
	}
	if len(clf) != 2 {
		t.Fatalf("clf dimension %d configs, want 2", len(clf))
	}
	for _, c := range clf {
		if c.Feat.Kind != "none" {
			t.Fatal("clf dimension must hold FEAT at baseline")
		}
	}
	para, err := EnumerateDimension(s, "para", "logreg")
	if err != nil {
		t.Fatal(err)
	}
	if len(para) != 4 {
		t.Fatalf("para dimension %d configs, want 4", len(para))
	}
	if _, err := EnumerateDimension(s, "bogus", "logreg"); err == nil {
		t.Fatal("expected error for unknown dimension")
	}
}

func TestDefaultConfig(t *testing.T) {
	s := smallSurface()
	cfg, err := s.DefaultConfig("logreg")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Feat.Kind != "none" {
		t.Fatal("baseline must use no FEAT")
	}
	if cfg.Params.String("penalty", "") != "l2" {
		t.Fatalf("baseline params %v", cfg.Params)
	}
	if _, err := s.DefaultConfig("mlp"); err == nil {
		t.Fatal("expected error for classifier not on surface")
	}
}

func TestSpecsForPanicsOnTypo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SpecsFor("logreg", "no_such_param")
}

// Property: every config of the richest surfaces runs to completion on a
// random-but-valid dataset, with well-formed scores. This is the "no
// configuration can crash the service" guarantee the HTTP layer relies on.
func TestQuickAnySurfaceConfigRuns(t *testing.T) {
	ds := synth.GenerateClean(synth.Spec{Name: "anyconf", Gen: synth.GenMoons, N: 70, D: 3, Noise: 0.3}, synth.Quick, 13)
	sp := ds.StratifiedSplit(0.7, rng.New(14))
	surface := smallSurface()
	configs := Enumerate(surface)
	f := func(pick uint16, seed uint64) bool {
		cfg := configs[int(pick)%len(configs)]
		res, err := Run(cfg, sp.Train, sp.Test, rng.New(seed))
		if err != nil {
			return false
		}
		s := res.Scores
		return s.F1 >= 0 && s.F1 <= 1 && s.Accuracy >= 0 && s.Accuracy <= 1 &&
			s.Precision >= 0 && s.Precision <= 1 && s.Recall >= 0 && s.Recall <= 1 &&
			len(res.Pred) == sp.Test.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterReducesDimensions(t *testing.T) {
	ds := synth.GenerateClean(synth.Spec{Name: "wide", Gen: synth.GenLinear, N: 100, D: 10, Noise: 0.2}, synth.Quick, 9)
	sp := ds.StratifiedSplit(0.7, rng.New(2))
	xTr, xTe, err := applyFeat(Feat{Kind: "filter", Name: "fisher"}, sp.Train, sp.Test)
	if err != nil {
		t.Fatal(err)
	}
	want := int(FilterKeepFraction * float64(sp.Train.D()))
	if len(xTr[0]) != want || len(xTe[0]) != want {
		t.Fatalf("filter kept %d features, want %d", len(xTr[0]), want)
	}
}
