package pipeline

import (
	"fmt"

	"mlaasbench/internal/classifiers"
	"mlaasbench/internal/codec"
	"mlaasbench/internal/featsel"
	"mlaasbench/internal/preprocess"
)

// Decode limits for fitted-pipeline state, mirroring internal/wire.
const (
	maxFeatName   = 1 << 8
	maxFilterCols = 1 << 20
)

// AppendFittedPipeline serializes a trained pipeline: the config that
// produced it (feat, classifier, typed params), the fitted FEAT statistics,
// then the trained classifier. Every float is written bit-exact, so a
// decoded pipeline predicts byte-identically to the resident one.
func AppendFittedPipeline(b []byte, fp *FittedPipeline) ([]byte, error) {
	b = codec.AppendString(b, fp.Config.Feat.Kind)
	b = codec.AppendString(b, fp.Config.Feat.Name)
	b = codec.AppendString(b, fp.Config.Classifier)
	b, err := classifiers.AppendParams(b, fp.Config.Params)
	if err != nil {
		return nil, err
	}
	if b, err = appendFittedTransform(b, fp.transform); err != nil {
		return nil, err
	}
	return classifiers.AppendFitted(b, fp.clf)
}

// DecodeFittedPipeline reconstructs a pipeline written by
// AppendFittedPipeline.
func DecodeFittedPipeline(r *codec.Reader) (*FittedPipeline, error) {
	var cfg Config
	cfg.Feat.Kind = r.String(maxFeatName)
	cfg.Feat.Name = r.String(maxFeatName)
	cfg.Classifier = r.String(maxFeatName)
	cfg.Params = classifiers.ReadParams(r)
	if err := r.Err(); err != nil {
		return nil, err
	}
	t, err := decodeFittedTransform(r)
	if err != nil {
		return nil, err
	}
	clf, err := classifiers.DecodeFitted(r)
	if err != nil {
		return nil, err
	}
	return &FittedPipeline{Config: cfg, transform: t, clf: clf}, nil
}

func appendFittedTransform(b []byte, t *FittedTransform) ([]byte, error) {
	b = codec.AppendString(b, t.feat.Kind)
	b = codec.AppendString(b, t.feat.Name)
	switch t.feat.Kind {
	case "", "none":
		return b, nil
	case "scaler":
		return preprocess.AppendScaler(b, t.scaler)
	case "filter":
		return codec.AppendInts(b, t.cols), nil
	case "fisherlda":
		return featsel.AppendFisherLDA(b, t.lda), nil
	default:
		return nil, fmt.Errorf("pipeline: cannot serialize FEAT kind %q", t.feat.Kind)
	}
}

func decodeFittedTransform(r *codec.Reader) (*FittedTransform, error) {
	t := &FittedTransform{}
	t.feat.Kind = r.String(maxFeatName)
	t.feat.Name = r.String(maxFeatName)
	if err := r.Err(); err != nil {
		return nil, err
	}
	switch t.feat.Kind {
	case "", "none":
	case "scaler":
		sc, err := preprocess.DecodeScaler(r)
		if err != nil {
			return nil, err
		}
		t.scaler = sc
	case "filter":
		t.cols = r.Ints(maxFilterCols)
		for _, c := range t.cols {
			if c < 0 {
				r.Fail("filter column %d negative", c)
				break
			}
		}
	case "fisherlda":
		lda, err := featsel.DecodeFisherLDA(r)
		if err != nil {
			return nil, err
		}
		t.lda = lda
	default:
		return nil, fmt.Errorf("%w: unknown FEAT kind %q", codec.ErrCorrupt, t.feat.Kind)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return t, nil
}
