package pipeline

import (
	"context"
	"sync"

	"mlaasbench/internal/dataset"
	"mlaasbench/internal/telemetry"
)

// FeatCache memoizes fitted FEAT transforms for one train/test split. The
// sweep measures |classifiers| × |grid| configurations per FEAT option, and
// without a cache every one of them re-fits the same scaler, filter score or
// Fisher-LDA projection on the same training matrix. A FeatCache fits each
// option once and shares the transformed matrices read-only across configs —
// including across platforms measuring the same split, since a FEAT option's
// output depends only on the option and the split.
//
// The cache is safe for concurrent use: when several workers ask for the
// same option at once, exactly one fits and the rest block until the result
// is ready (singleflight semantics via a per-entry sync.Once). The cached
// matrices must therefore be treated as immutable, which every classifier in
// this repo already guarantees (Fit/Predict never write to their inputs).
//
// A FeatCache is scoped to exactly one split. Handing the same cache two
// different splits is a programming error and will silently return the first
// split's transforms.
type FeatCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
}

// cacheEntry is one memoized computation. once gates the fit; val/err are
// written inside once.Do and read only after it returns, so no further
// synchronization is needed.
type cacheEntry struct {
	once sync.Once
	val  any
	err  error
}

// featXY is the cached value of a FEAT transform: the train and test
// matrices after fitting on train.
type featXY struct {
	xTr, xTe [][]float64
}

// NewFeatCache returns an empty cache for one train/test split.
func NewFeatCache() *FeatCache {
	return &FeatCache{entries: map[string]*cacheEntry{}}
}

// entry returns (creating if needed) the memo slot for key and whether the
// slot already existed.
func (c *FeatCache) entry(key string) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	return e
}

// Memo returns the value computed for key, running compute at most once per
// cache lifetime. Concurrent callers with the same key block until the one
// executing compute finishes. Platforms use this for hidden per-split
// preprocessing that is not a FEAT option (Amazon's quantile binning).
func (c *FeatCache) Memo(key string, compute func() (any, error)) (any, error) {
	e := c.entry(key)
	e.once.Do(func() { e.val, e.err = compute() })
	return e.val, e.err
}

// Transform returns the FEAT-transformed train/test matrices for f, fitting
// the transform at most once. The "none" option bypasses the cache — it has
// nothing to fit and its matrices are the split's own.
func (c *FeatCache) Transform(f Feat, train, test *dataset.Dataset) (xTr, xTe [][]float64, err error) {
	return c.TransformCtx(context.Background(), f, train, test)
}

// TransformCtx is Transform with context-routed telemetry: the fitting
// goroutine's featsel/preprocess stage lands in its trace, and hit/miss
// counters go to ctx's registry (Default when absent). Coalesced waiters
// record a hit but no stage time — they did no fitting work.
func (c *FeatCache) TransformCtx(ctx context.Context, f Feat, train, test *dataset.Dataset) (xTr, xTe [][]float64, err error) {
	if f.Kind == "" || f.Kind == "none" {
		return train.X, test.X, nil
	}
	e := c.entry("feat/" + f.String())
	fitted := false
	e.once.Do(func() {
		fitted = true
		var v featXY
		v.xTr, v.xTe, e.err = applyFeatCtx(ctx, f, train, test)
		e.val = v
	})
	reg := telemetry.RegistryFrom(ctx)
	if fitted {
		reg.Counter(telemetry.FeatCacheMisses, "kind", f.Kind).Inc()
	} else {
		reg.Counter(telemetry.FeatCacheHits, "kind", f.Kind).Inc()
	}
	if e.err != nil {
		return nil, nil, e.err
	}
	v := e.val.(featXY)
	return v.xTr, v.xTe, nil
}
