package pipeline

import (
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"mlaasbench/internal/dataset"
	"mlaasbench/internal/rng"
)

func cacheTestSplit(t *testing.T) (train, test *dataset.Dataset) {
	t.Helper()
	r := rng.New(7)
	gen := func(name string, n int) *dataset.Dataset {
		x := make([][]float64, n)
		y := make([]int, n)
		for i := range x {
			row := make([]float64, 6)
			for j := range row {
				row[j] = r.NormFloat64()
			}
			if row[0]+row[1] > 0 {
				y[i] = 1
			}
			x[i] = row
		}
		return &dataset.Dataset{Name: name, X: x, Y: y}
	}
	return gen("cache-train", 80), gen("cache-test", 30)
}

// Every FEAT kind must transform identically through the cache and without
// it — the cache removes redundant fitting, never changes the fit.
func TestFeatCacheMatchesDirectApply(t *testing.T) {
	train, test := cacheTestSplit(t)
	feats := []Feat{
		{Kind: "none"},
		{Kind: "scaler", Name: "standard"},
		{Kind: "scaler", Name: "minmax"},
		{Kind: "filter", Name: "mutual"},
		{Kind: "fisherlda"},
	}
	cache := NewFeatCache()
	for _, f := range feats {
		wantTr, wantTe, err := applyFeat(f, train, test)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		for round := 0; round < 3; round++ {
			gotTr, gotTe, err := cache.Transform(f, train, test)
			if err != nil {
				t.Fatalf("%s round %d: %v", f, round, err)
			}
			if !reflect.DeepEqual(gotTr, wantTr) || !reflect.DeepEqual(gotTe, wantTe) {
				t.Fatalf("%s round %d: cached transform differs from direct", f, round)
			}
		}
	}
}

// Full pipeline equivalence: RunWithCache must score identically to Run for
// every FEAT option, repeatedly (hits and misses alike).
func TestRunWithCacheMatchesRun(t *testing.T) {
	train, test := cacheTestSplit(t)
	cache := NewFeatCache()
	for _, f := range []Feat{{Kind: "none"}, {Kind: "scaler", Name: "standard"}, {Kind: "filter", Name: "fisher"}, {Kind: "fisherlda"}} {
		cfg := Config{Feat: f, Classifier: "logreg", Params: map[string]any{}}
		want, err := Run(cfg, train, test, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunWithCache(cfg, train, test, rng.New(3), cache)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: cached result differs:\n  want %+v\n  got  %+v", f, want, got)
		}
	}
}

// Concurrent lookups of the same option must fit exactly once and all
// receive the same matrices (singleflight semantics, race-clean).
func TestFeatCacheConcurrentSingleFit(t *testing.T) {
	train, test := cacheTestSplit(t)
	cache := NewFeatCache()
	var fits atomic.Int64
	_, err := cache.Memo("probe", func() (any, error) { fits.Add(1); return "x", nil })
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	results := make([][][]float64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			xTr, _, err := cache.Transform(Feat{Kind: "scaler", Name: "standard"}, train, test)
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = xTr
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		// Same backing slice, not merely equal values: one fit shared.
		if &results[g][0][0] != &results[0][0][0] {
			t.Fatalf("goroutine %d received a distinct fit", g)
		}
	}

	for i := 0; i < 10; i++ {
		if _, err := cache.Memo("probe", func() (any, error) { fits.Add(1); return "x", nil }); err != nil {
			t.Fatal(err)
		}
	}
	if n := fits.Load(); n != 1 {
		t.Fatalf("Memo computed %d times, want 1", n)
	}
}

// Errors memoize too: a failing option fails every lookup without re-running.
func TestFeatCacheMemoizesErrors(t *testing.T) {
	train, test := cacheTestSplit(t)
	cache := NewFeatCache()
	bad := Feat{Kind: "filter", Name: "no-such-method"}
	_, _, err1 := cache.Transform(bad, train, test)
	_, _, err2 := cache.Transform(bad, train, test)
	if err1 == nil || err2 == nil {
		t.Fatal("expected errors for unknown filter")
	}
	if !errors.Is(err2, err1) && err1.Error() != err2.Error() {
		t.Fatalf("errors differ: %v vs %v", err1, err2)
	}
}
