package pipeline

import (
	"testing"

	"mlaasbench/internal/classifiers"
	"mlaasbench/internal/rng"
	"mlaasbench/internal/synth"
)

func TestCrossValidateFoldCount(t *testing.T) {
	ds := synth.GenerateClean(synth.Spec{Name: "cv", Gen: synth.GenLinear, N: 150, D: 4, Noise: 0.2}, synth.Quick, 1)
	cfg := Config{Classifier: "logreg", Params: classifiers.Params{}}
	scores, err := CrossValidate(cfg, ds, 5, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 5 {
		t.Fatalf("%d folds, want 5", len(scores))
	}
	if m := MeanF1(scores); m < 0.7 {
		t.Fatalf("mean CV F1 %.3f on separable data", m)
	}
}

func TestCrossValidateRejectsBadK(t *testing.T) {
	ds := synth.GenerateClean(synth.Spec{Name: "cv2", Gen: synth.GenLinear, N: 60, D: 2}, synth.Quick, 1)
	cfg := Config{Classifier: "logreg", Params: classifiers.Params{}}
	if _, err := CrossValidate(cfg, ds, 1, rng.New(1)); err == nil {
		t.Fatal("k=1 must be rejected")
	}
	tiny := ds.Subset([]int{0, 1, 2}, "/tiny")
	if _, err := CrossValidate(cfg, tiny, 5, rng.New(1)); err == nil {
		t.Fatal("more folds than samples must be rejected")
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	ds := synth.GenerateClean(synth.Spec{Name: "cv3", Gen: synth.GenMoons, N: 120, D: 2, Noise: 0.2}, synth.Quick, 3)
	cfg := Config{Classifier: "dtree", Params: classifiers.Params{}}
	a, err := CrossValidate(cfg, ds, 4, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := CrossValidate(cfg, ds, 4, rng.New(9))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different CV scores")
		}
	}
}

func TestStratifiedFoldsBalance(t *testing.T) {
	ds := synth.GenerateClean(synth.Spec{Name: "cv4", Gen: synth.GenBlobs, N: 200, D: 2, Imbalance: 0.3}, synth.Quick, 4)
	folds := stratifiedFolds(ds, 5, rng.New(5))
	total := 0
	for fi, fold := range folds {
		total += len(fold)
		pos := 0
		for _, i := range fold {
			pos += ds.Y[i]
		}
		frac := float64(pos) / float64(len(fold))
		if frac < 0.15 || frac > 0.45 {
			t.Fatalf("fold %d positive fraction %.2f, dataset is 0.30", fi, frac)
		}
	}
	if total != ds.N() {
		t.Fatalf("folds cover %d of %d samples", total, ds.N())
	}
	// No index twice.
	seen := map[int]bool{}
	for _, fold := range folds {
		for _, i := range fold {
			if seen[i] {
				t.Fatal("index in two folds")
			}
			seen[i] = true
		}
	}
}

func TestSelectConfigPicksWinner(t *testing.T) {
	// On CIRCLE, selection between default LR and default DT must pick DT.
	ds := synth.GenerateClean(synth.CircleSpec(), synth.Quick, synth.CorpusSeed)
	lr := Config{Classifier: "logreg", Params: classifiers.Params{}}
	dt := Config{Classifier: "dtree", Params: classifiers.Params{}}
	best, f1, err := SelectConfig([]Config{lr, dt}, ds, 4, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if best.Classifier != "dtree" {
		t.Fatalf("selected %s on CIRCLE, want dtree", best.Classifier)
	}
	if f1 < 0.7 {
		t.Fatalf("winner CV F1 %.3f", f1)
	}
}

func TestSelectConfigSkipsBroken(t *testing.T) {
	ds := synth.GenerateClean(synth.LinearSpec(), synth.Quick, 1)
	good := Config{Classifier: "logreg", Params: classifiers.Params{}}
	broken := Config{Classifier: "no-such", Params: classifiers.Params{}}
	best, _, err := SelectConfig([]Config{broken, good}, ds, 3, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if best.Classifier != "logreg" {
		t.Fatalf("selected %s", best.Classifier)
	}
	if _, _, err := SelectConfig([]Config{broken}, ds, 3, rng.New(8)); err == nil {
		t.Fatal("all-broken selection must fail")
	}
	if _, _, err := SelectConfig(nil, ds, 3, rng.New(8)); err == nil {
		t.Fatal("empty selection must fail")
	}
}
