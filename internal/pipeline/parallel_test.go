package pipeline

import (
	"context"
	"testing"

	"mlaasbench/internal/classifiers"
	"mlaasbench/internal/rng"
)

func shardTestData(n, d int) ([][]float64, []int) {
	r := rng.New(99)
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		row := make([]float64, d)
		for j := range row {
			row[j] = r.NormFloat64()
		}
		x[i] = row
		if r.Float64() > 0.5 {
			y[i] = 1
		}
	}
	return x, y
}

// TestParallelPredictMatchesSerial fits every predict-hot classifier and
// asserts PredictSharded returns byte-identical predictions to the plain
// Predict call at every shard count — including counts far above the row
// budget. Runs under -race via the Makefile race target, which also proves
// the fitted models tolerate concurrent read-only use.
func TestParallelPredictMatchesSerial(t *testing.T) {
	xTr, yTr := shardTestData(160, 8)
	queries, _ := shardTestData(333, 8)
	for _, name := range []string{"mlp", "knn", "lda", "logreg"} {
		t.Run(name, func(t *testing.T) {
			clf, err := classifiers.New(name, classifiers.Params{})
			if err != nil {
				t.Fatal(err)
			}
			if err := clf.Fit(xTr, yTr, rng.New(5)); err != nil {
				t.Fatal(err)
			}
			want := clf.Predict(queries)
			for _, shards := range []int{0, 1, 2, 3, 7, 16, 1000} {
				got := PredictSharded(clf.Predict, queries, shards)
				if len(got) != len(want) {
					t.Fatalf("shards=%d: %d predictions, want %d", shards, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("shards=%d: prediction %d = %d, want %d", shards, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestPredictShardsContext checks the context plumbing RunCtx's predict
// stage reads, including the serial default.
func TestPredictShardsContext(t *testing.T) {
	ctx := context.Background()
	if got := PredictShardsFrom(ctx); got != 1 {
		t.Fatalf("default shards = %d, want 1", got)
	}
	if got := PredictShardsFrom(WithPredictShards(ctx, 6)); got != 6 {
		t.Fatalf("shards = %d, want 6", got)
	}
}

func TestShardCount(t *testing.T) {
	cases := []struct{ rows, shards, want int }{
		{0, 4, 1},       // empty batch never splits
		{1, 4, 1},       // nor does a single row
		{16, 4, 1},      // one minRowsPerShard quantum → serial
		{17, 4, 2},      // just over one quantum
		{1000, 4, 4},    // plenty of rows: requested count wins
		{1000, 1, 1},    // explicit serial
		{40, 1000, 3},   // capped at ceil(rows/minRowsPerShard)
		{-5, 3, 1},      // nonsense row counts degrade to serial
	}
	for _, c := range cases {
		if got := ShardCount(c.rows, c.shards); got != c.want {
			t.Errorf("ShardCount(%d, %d) = %d, want %d", c.rows, c.shards, got, c.want)
		}
	}
	// shards <= 0 follows the scheduler convention: one per CPU, still
	// subject to the per-shard row floor.
	if got := ShardCount(16, 0); got != 1 {
		t.Errorf("ShardCount(16, 0) = %d, want 1", got)
	}
	if got := ShardCount(100000, 0); got < 1 {
		t.Errorf("ShardCount(100000, 0) = %d, want >= 1", got)
	}
}

// TestPredictShardedCoversAllRows uses an index-echo predictor to prove
// every row is labeled exactly once and stitched in input order.
func TestPredictShardedCoversAllRows(t *testing.T) {
	const n = 777
	points := make([][]float64, n)
	for i := range points {
		points[i] = []float64{float64(i)}
	}
	echo := func(pts [][]float64) []int {
		out := make([]int, len(pts))
		for i, p := range pts {
			out[i] = int(p[0])
		}
		return out
	}
	for _, shards := range []int{1, 2, 5, 48} {
		got := PredictSharded(echo, points, shards)
		for i, v := range got {
			if v != i {
				t.Fatalf("shards=%d: row %d labeled %d", shards, i, v)
			}
		}
	}
	if got := PredictSharded(echo, nil, 8); len(got) != 0 {
		t.Fatalf("empty batch returned %d labels", len(got))
	}
}
