package telemetry

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// A finished root span must deliver its whole tree — ids, parent links,
// attrs, error — to the registry's flight recorder.
func TestTraceTreeRetained(t *testing.T) {
	reg := NewRegistry()
	ctx := WithRegistry(context.Background(), reg)

	ctx, root := StartSpan(ctx, "http:predict")
	root.SetAttr("platform", "local").SetAttr("route", "predict")
	cctx, fit := StartSpan(ctx, "fit")
	fit.End()
	_, fwd := StartSpan(cctx, "forward")
	fwd.SetAttr("cache", "hit")
	fwd.End()
	root.End()

	traces := reg.Traces().Snapshot()
	if len(traces) != 1 {
		t.Fatalf("kept %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if len(tr.TraceID) != 32 || !isHex(tr.TraceID) {
		t.Fatalf("trace id %q is not 32 hex chars", tr.TraceID)
	}
	if tr.Spans != 3 {
		t.Fatalf("trace records %d spans, want 3", tr.Spans)
	}
	if tr.Root.Name != "http:predict" || tr.Root.Attrs["platform"] != "local" {
		t.Fatalf("root span mangled: %+v", tr.Root)
	}
	if len(tr.Root.Children) != 1 || tr.Root.Children[0].Name != "fit" {
		t.Fatalf("root children mangled: %+v", tr.Root.Children)
	}
	fitData := tr.Root.Children[0]
	if fitData.ParentID != tr.Root.SpanID {
		t.Fatalf("fit parent %q != root span %q", fitData.ParentID, tr.Root.SpanID)
	}
	if len(fitData.Children) != 1 || fitData.Children[0].Name != "forward" {
		t.Fatalf("forward should nest under fit (ctx from fit's StartSpan): %+v", fitData.Children)
	}
	if got := fitData.Children[0].Attrs["cache"]; got != "hit" {
		t.Fatalf("forward attrs lost: %+v", fitData.Children[0].Attrs)
	}
	if fitData.Children[0].Path != "http:predict/fit/forward" {
		t.Fatalf("path = %q", fitData.Children[0].Path)
	}
	if _, ok := reg.Traces().Get(tr.TraceID); !ok {
		t.Fatal("Get by trace id failed")
	}
}

// Satellite: repeat End calls must return the originally recorded duration,
// not a fresh (still growing) reading.
func TestSpanEndRepeatReturnsOriginalDuration(t *testing.T) {
	reg := NewRegistry()
	ctx := WithRegistry(context.Background(), reg)
	_, sp := StartSpan(ctx, "once")
	first := sp.End()
	time.Sleep(2 * time.Millisecond)
	second := sp.End()
	if second != first {
		t.Fatalf("repeat End returned %v, want the original %v", second, first)
	}
	if got := reg.Histogram(StageHistogram, "stage", "once").Count(); got != 1 {
		t.Fatalf("stage histogram count = %d, want 1", got)
	}
}

// When the ring is full the oldest kept trace is evicted, FIFO.
func TestTraceBufferEvictionOrder(t *testing.T) {
	reg := NewRegistry()
	buf := reg.ConfigureTraces(TraceConfig{Capacity: 3, KeepSlowest: 0, SampleRate: 1, Seed: 1})
	for i := 1; i <= 5; i++ {
		ctx := WithRegistry(context.Background(), reg)
		_, sp := StartSpan(ctx, fmt.Sprintf("t%d", i))
		sp.End()
	}
	got := buf.Snapshot()
	if len(got) != 3 {
		t.Fatalf("kept %d traces, want 3", len(got))
	}
	for i, want := range []string{"t3", "t4", "t5"} {
		if got[i].Root.Name != want {
			t.Fatalf("slot %d = %q, want %q (FIFO eviction order)", i, got[i].Root.Name, want)
		}
	}
	if n := reg.Counter(TracesEvictedTotal).Value(); n != 2 {
		t.Fatalf("evicted counter = %d, want 2", n)
	}
	sums := buf.Summaries()
	if len(sums) != 3 || sums[0].Name != "t5" {
		t.Fatalf("summaries should list newest first, got %+v", sums)
	}
}

// Tail sampling is a deterministic function of the seed and offer order.
func TestTraceSamplingDeterministic(t *testing.T) {
	kept := func(seed uint64) []string {
		reg := NewRegistry()
		buf := reg.ConfigureTraces(TraceConfig{Capacity: 64, KeepSlowest: 0, SampleRate: 0.5, Seed: seed})
		for i := 0; i < 32; i++ {
			buf.offer(TraceData{TraceID: fmt.Sprintf("%032x", i+1), Root: SpanData{Name: fmt.Sprintf("t%d", i)}})
		}
		var names []string
		for _, tr := range buf.Snapshot() {
			names = append(names, tr.Root.Name)
		}
		return names
	}
	a, b := kept(7), kept(7)
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("same seed kept different traces:\n%v\n%v", a, b)
	}
	if len(a) == 0 || len(a) == 32 {
		t.Fatalf("sampling at 0.5 kept %d/32 — coin looks broken", len(a))
	}
	c := kept(8)
	if strings.Join(a, ",") == strings.Join(c, ",") {
		t.Fatalf("seeds 7 and 8 kept identical traces: %v", a)
	}
}

// Errors and the slowest traces bypass sampling entirely.
func TestTraceKeepPolicy(t *testing.T) {
	reg := NewRegistry()
	buf := reg.ConfigureTraces(TraceConfig{Capacity: 16, KeepSlowest: 2, SampleRate: 0, Seed: 1})

	buf.offer(TraceData{TraceID: strings.Repeat("1", 32), DurationSeconds: 0.010, Root: SpanData{Name: "slow-a"}})
	buf.offer(TraceData{TraceID: strings.Repeat("2", 32), DurationSeconds: 0.020, Root: SpanData{Name: "slow-b"}})
	// Faster than both incumbents and not an error: sampled out at rate 0.
	buf.offer(TraceData{TraceID: strings.Repeat("3", 32), DurationSeconds: 0.001, Root: SpanData{Name: "fast"}})
	// Errors always stay, however fast.
	buf.offer(TraceData{TraceID: strings.Repeat("4", 32), DurationSeconds: 0.0001, Error: "boom", Root: SpanData{Name: "err"}})
	// Slower than the slowest-2 floor: admitted.
	buf.offer(TraceData{TraceID: strings.Repeat("5", 32), DurationSeconds: 0.030, Root: SpanData{Name: "slow-c"}})

	var names []string
	for _, tr := range buf.Snapshot() {
		names = append(names, tr.Root.Name)
	}
	if strings.Join(names, ",") != "slow-a,slow-b,err,slow-c" {
		t.Fatalf("kept %v", names)
	}
	if n := reg.Counter(TracesDroppedTotal).Value(); n != 1 {
		t.Fatalf("dropped counter = %d, want 1", n)
	}
	if n := reg.Counter(TracesKeptTotal, "reason", "error").Value(); n != 1 {
		t.Fatalf("kept{reason=error} = %d, want 1", n)
	}
}

// A span tree whose descendant failed makes the whole trace an error trace.
func TestTraceErrorPropagatesFromChild(t *testing.T) {
	reg := NewRegistry()
	reg.ConfigureTraces(TraceConfig{Capacity: 4, KeepSlowest: 0, SampleRate: 0, Seed: 1})
	ctx := WithRegistry(context.Background(), reg)
	ctx, root := StartSpan(ctx, "rpc:train")
	_, child := StartSpan(ctx, "fit")
	child.SetError(errors.New("singular matrix"))
	child.End()
	root.End()
	traces := reg.Traces().Snapshot()
	if len(traces) != 1 {
		t.Fatalf("error trace was sampled out: kept %d", len(traces))
	}
	if traces[0].Error != "singular matrix" {
		t.Fatalf("trace error = %q", traces[0].Error)
	}
}

func TestTraceParentRoundTrip(t *testing.T) {
	tid, sid := NewTraceID(), NewSpanID()
	h := FormatTraceParent(tid, sid)
	gotT, gotS, ok := ParseTraceParent(h)
	if !ok || gotT != tid || gotS != sid {
		t.Fatalf("round trip %q -> %q %q %v", h, gotT, gotS, ok)
	}
	for _, bad := range []string{
		"",
		"00-zz-11-01",
		"01-" + tid + "-" + sid + "-01", // wrong version
		"00-" + strings.Repeat("0", 32) + "-" + sid + "-01", // all-zero trace id
		"00-" + tid + "-" + sid,                             // missing flags
	} {
		if _, _, ok := ParseTraceParent(bad); ok {
			t.Fatalf("ParseTraceParent accepted %q", bad)
		}
	}
}

// A root span started under WithRemoteParent joins the caller's trace.
func TestRemoteParentStitchesTrace(t *testing.T) {
	reg := NewRegistry()
	tid, sid := NewTraceID(), NewSpanID()
	ctx := WithRemoteParent(WithRegistry(context.Background(), reg), tid, sid)
	_, sp := StartSpan(ctx, "http:train")
	if sp.TraceID() != tid {
		t.Fatalf("span trace id %q, want remote %q", sp.TraceID(), tid)
	}
	sp.End()
	tr, ok := reg.Traces().Get(tid)
	if !ok {
		t.Fatal("stitched trace not kept")
	}
	if tr.Root.ParentID != sid {
		t.Fatalf("root parent %q, want remote span %q", tr.Root.ParentID, sid)
	}
}

// TimeCtx under a span records into both the trace tree and the stage
// histogram — exactly once.
func TestTimeCtxRecordsSpanAndHistogram(t *testing.T) {
	reg := NewRegistry()
	ctx := WithRegistry(context.Background(), reg)
	ctx, root := StartSpan(ctx, "measure")
	stop := TimeCtx(ctx, "fit")
	stop()
	root.End()
	if got := reg.Histogram(StageHistogram, "stage", "fit").Count(); got != 1 {
		t.Fatalf("fit histogram count = %d, want 1", got)
	}
	tr := reg.Traces().Snapshot()
	if len(tr) != 1 || len(tr[0].Root.Children) != 1 || tr[0].Root.Children[0].Name != "fit" {
		t.Fatalf("fit span missing from trace: %+v", tr)
	}

	// Without a span in ctx it degrades to a plain registry timer.
	reg2 := NewRegistry()
	stop2 := TimeCtx(WithRegistry(context.Background(), reg2), "score")
	stop2()
	if got := reg2.Histogram(StageHistogram, "stage", "score").Count(); got != 1 {
		t.Fatalf("score histogram count = %d, want 1", got)
	}
	if got := reg2.Traces().Len(); got != 0 {
		t.Fatalf("plain timer produced %d traces", got)
	}
}

// Satellite: the stage and predict-path families use FineBuckets, so
// sub-millisecond quantiles stay accurate where DefBuckets crush them.
func TestFineBucketsSubMillisecondQuantiles(t *testing.T) {
	reg := NewRegistry()
	fine := reg.Histogram(PredictPathHistogram, "path", "forward")
	coarse := reg.HistogramBuckets("coarse_latency_seconds", DefBuckets)
	for us := 2; us <= 20; us += 2 { // 2,4,...,20µs — median 11µs
		v := float64(us) / 1e6
		fine.Observe(v)
		coarse.Observe(v)
	}
	if p50 := fine.Quantile(0.50); p50 < 6e-6 || p50 > 15e-6 {
		t.Fatalf("fine p50 = %.1fµs, want ~11µs", p50*1e6)
	}
	// Same data under DefBuckets: everything lands in the first (100µs)
	// bucket and the interpolated median is an order of magnitude off.
	if p50 := coarse.Quantile(0.50); p50 < 25e-6 {
		t.Fatalf("coarse p50 = %.1fµs — expected DefBuckets to overestimate", p50*1e6)
	}
	stage := reg.Histogram(StageHistogram, "stage", "predict")
	stage.Observe(10e-6)
	if p50 := stage.Quantile(0.50); p50 > 25e-6 {
		t.Fatalf("stage family did not pick up FineBuckets: p50 = %.1fµs", p50*1e6)
	}
}

// JSONL round-trips the full tree.
func TestTraceJSONLRoundTrip(t *testing.T) {
	reg := NewRegistry()
	ctx := WithRegistry(context.Background(), reg)
	for i := 0; i < 3; i++ {
		ctx2, root := StartSpan(ctx, "measure")
		root.SetAttr("platform", "bigml")
		_, fit := StartSpan(ctx2, "fit")
		fit.End()
		root.End()
	}
	out := reg.Traces().Snapshot()
	var buf bytes.Buffer
	if err := WriteTraceJSONL(&buf, out); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(out) {
		t.Fatalf("round trip %d -> %d traces", len(out), len(back))
	}
	for i := range back {
		if back[i].TraceID != out[i].TraceID || back[i].Root.Attrs["platform"] != "bigml" ||
			len(back[i].Root.Children) != 1 {
			t.Fatalf("trace %d mangled: %+v", i, back[i])
		}
	}
}
