package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "route", "train")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("requests_total", "route", "train"); again != c {
		t.Fatal("same name+labels must return the same counter")
	}
	if other := r.Counter("requests_total", "route", "predict"); other == c {
		t.Fatal("different labels must return a different counter")
	}

	g := r.Gauge("in_flight")
	g.Inc()
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge = %d, want 1", got)
	}
	g.Set(42)
	if got := g.Value(); got != 42 {
		t.Fatalf("gauge = %d, want 42", got)
	}
}

func TestHistogramCountSumQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "stage", "fit")
	// 100 observations spread uniformly across 1ms..100ms.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 1000)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	wantSum := 0.0
	for i := 1; i <= 100; i++ {
		wantSum += float64(i) / 1000
	}
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
	// Bucketed quantiles are approximations: p50 of 1..100ms must land
	// within the bucket straddling 50ms (25ms..50ms or 50ms..100ms).
	if q := h.Quantile(0.5); q < 0.025 || q > 0.1 {
		t.Fatalf("p50 = %v, want within [0.025, 0.1]", q)
	}
	if q99, q50 := h.Quantile(0.99), h.Quantile(0.5); q99 < q50 {
		t.Fatalf("p99 %v < p50 %v", q99, q50)
	}
	if q := NewRegistry().Histogram("empty").Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("h", []float64{0.001, 0.01})
	h.Observe(5) // beyond every bound → +Inf bucket
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	// +Inf observations are attributed to the largest finite bound.
	if q := h.Quantile(0.99); q != 0.01 {
		t.Fatalf("overflow quantile = %v, want 0.01", q)
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("c", "worker", "w").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", "stage", "s").Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c", "worker", "w").Value(); got != 4000 {
		t.Fatalf("counter = %d, want 4000", got)
	}
	if got := r.Histogram("h", "stage", "s").Count(); got != 4000 {
		t.Fatalf("histogram count = %d, want 4000", got)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Describe("requests_total", "HTTP requests by route.")
	r.Counter("requests_total", "route", "train").Add(3)
	r.Gauge("in_flight").Set(2)
	r.HistogramBuckets("lat", []float64{0.01, 0.1}, "route", "train").Observe(0.05)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# HELP requests_total HTTP requests by route.",
		"# TYPE requests_total counter",
		`requests_total{route="train"} 3`,
		"# TYPE in_flight gauge",
		"in_flight 2",
		"# TYPE lat histogram",
		`lat_bucket{route="train",le="0.01"} 0`,
		`lat_bucket{route="train",le="0.1"} 1`,
		`lat_bucket{route="train",le="+Inf"} 1`,
		`lat_sum{route="train"} 0.05`,
		`lat_count{route="train"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "k", `a"b\c`).Inc()
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `c{k="a\"b\\c"} 1`) {
		t.Fatalf("label not escaped:\n%s", buf.String())
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "a", "b").Add(7)
	r.Histogram("h", "stage", "fit").Observe(0.002)
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap SnapshotData
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 7 || snap.Counters[0].Labels["a"] != "b" {
		t.Fatalf("counters %+v", snap.Counters)
	}
	if len(snap.Histograms) != 1 || snap.Histograms[0].Count != 1 {
		t.Fatalf("histograms %+v", snap.Histograms)
	}
}

func TestMetricKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind collision")
		}
	}()
	r.Gauge("x")
}

func TestSpansNestAndRecord(t *testing.T) {
	r := NewRegistry()
	ctx := WithRegistry(context.Background(), r)
	ctx, outer := StartSpan(ctx, "measure")
	_, inner := StartSpan(ctx, "fit")
	if inner.Path() != "measure/fit" {
		t.Fatalf("path = %q", inner.Path())
	}
	if d := inner.End(); d < 0 {
		t.Fatalf("negative duration %v", d)
	}
	inner.End() // double-End must not double-count
	outer.End()
	if got := r.Histogram(StageHistogram, "stage", "fit").Count(); got != 1 {
		t.Fatalf("fit stage count = %d, want 1", got)
	}
	if got := r.Histogram(StageHistogram, "stage", "measure").Count(); got != 1 {
		t.Fatalf("measure stage count = %d, want 1", got)
	}
}

func TestTimeHelper(t *testing.T) {
	r := NewRegistry()
	stop := r.Time("score")
	time.Sleep(time.Millisecond)
	if d := stop(); d < time.Millisecond {
		t.Fatalf("duration %v too short", d)
	}
	if got := r.Histogram(StageHistogram, "stage", "score").Count(); got != 1 {
		t.Fatalf("stage count = %d", got)
	}
}

func TestRequestIDs(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == "" || a == b {
		t.Fatalf("request ids not unique: %q %q", a, b)
	}
	ctx := WithRequestID(context.Background(), a)
	if got := RequestID(ctx); got != a {
		t.Fatalf("RequestID = %q, want %q", got, a)
	}
	if got := RequestID(context.Background()); got != "" {
		t.Fatalf("empty context RequestID = %q", got)
	}
}

func TestWriteSummary(t *testing.T) {
	r := NewRegistry()
	var empty bytes.Buffer
	WriteSummary(&empty, r)
	if empty.Len() != 0 {
		t.Fatalf("empty registry summary wrote %q", empty.String())
	}
	r.Time("fit")()
	r.Counter("mlaas_client_retries_total", "endpoint", "train").Add(2)
	r.Gauge("in_flight").Set(1)
	var buf bytes.Buffer
	WriteSummary(&buf, r)
	out := buf.String()
	for _, want := range []string{"telemetry summary", StageHistogram, "fit", "mlaas_client_retries_total{endpoint=train}", "in_flight"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
