// The flight recorder: finished trace trees land in a bounded ring buffer
// per registry, with a keep policy tuned for post-hoc debugging — errors
// are always kept, the slowest traces seen so far are always kept, and the
// rest are tail-sampled with a deterministic (internal/rng-seeded) coin so
// tests can assert exactly which traces survive.
package telemetry

import (
	"encoding/json"
	"io"
	"sync"

	"mlaasbench/internal/rng"
)

// SpanData is the exportable form of one finished span.
type SpanData struct {
	SpanID          string            `json:"span_id"`
	ParentID        string            `json:"parent_id,omitempty"`
	Name            string            `json:"name"`
	Path            string            `json:"path"`
	StartUnixNano   int64             `json:"start_unix_nano"`
	DurationSeconds float64           `json:"duration_seconds"`
	Error           string            `json:"error,omitempty"`
	Attrs           map[string]string `json:"attrs,omitempty"`
	Children        []SpanData        `json:"children,omitempty"`
	// Unfinished marks a span that was still running when its root ended;
	// DurationSeconds is then the duration-so-far at snapshot time.
	Unfinished bool `json:"unfinished,omitempty"`
}

// TraceData is one finished trace tree, as stored in the buffer, served by
// /debug/traces/{id}, and exported as one JSONL line.
type TraceData struct {
	TraceID         string  `json:"trace_id"`
	DurationSeconds float64 `json:"duration_seconds"`
	Spans           int     `json:"spans"`
	DroppedSpans    int     `json:"dropped_spans,omitempty"`
	Error           string  `json:"error,omitempty"`
	Root            SpanData `json:"root"`
}

// TraceSummary is the index-listing form of a stored trace (GET
// /debug/traces).
type TraceSummary struct {
	TraceID         string  `json:"trace_id"`
	Name            string  `json:"name"`
	DurationSeconds float64 `json:"duration_seconds"`
	Spans           int     `json:"spans"`
	Error           string  `json:"error,omitempty"`
	StartUnixNano   int64   `json:"start_unix_nano"`
}

// TraceConfig tunes a registry's flight recorder.
type TraceConfig struct {
	// Capacity is the ring size; when full, the oldest kept trace is
	// evicted FIFO. <=0 means the default (256).
	Capacity int
	// KeepSlowest admits any trace slower than the KeepSlowest-th slowest
	// admitted so far, regardless of sampling. 0 disables the heuristic.
	KeepSlowest int
	// SampleRate is the probability a trace that is neither an error nor
	// among the slowest is kept. 1 keeps everything, 0 keeps none.
	SampleRate float64
	// Seed feeds the deterministic sampling coin (internal/rng), so a
	// fixed seed plus a fixed offer order always keeps the same traces.
	Seed uint64
}

// DefaultTraceConfig keeps every trace up to capacity — the right default
// for bench runs and tests; servers under load lower SampleRate.
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{Capacity: 256, KeepSlowest: 16, SampleRate: 1.0, Seed: 1}
}

func (c TraceConfig) normalized() TraceConfig {
	if c.Capacity <= 0 {
		c.Capacity = 256
	}
	if c.KeepSlowest < 0 {
		c.KeepSlowest = 0
	}
	if c.SampleRate < 0 {
		c.SampleRate = 0
	}
	if c.SampleRate > 1 {
		c.SampleRate = 1
	}
	return c
}

// TraceBuffer is the bounded, sampling-aware ring of kept traces. All
// methods are safe for concurrent use.
type TraceBuffer struct {
	reg *Registry

	mu      sync.Mutex
	cfg     TraceConfig
	buf     []TraceData
	head    int // index of the oldest kept trace
	n       int
	coin    *rng.RNG
	slowest []float64 // ascending durations of the slowest-N admitted
}

func newTraceBuffer(cfg TraceConfig, reg *Registry) *TraceBuffer {
	cfg = cfg.normalized()
	return &TraceBuffer{
		reg:  reg,
		cfg:  cfg,
		buf:  make([]TraceData, cfg.Capacity),
		coin: rng.New(cfg.Seed).Split("telemetry/traces"),
	}
}

// Traces returns the registry's flight recorder, creating it with
// DefaultTraceConfig on first use.
func (r *Registry) Traces() *TraceBuffer {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.traces == nil {
		r.traces = newTraceBuffer(DefaultTraceConfig(), r)
	}
	return r.traces
}

// ConfigureTraces replaces the registry's flight recorder with a fresh one
// using cfg (normalizing out-of-range fields). Existing kept traces are
// discarded.
func (r *Registry) ConfigureTraces(cfg TraceConfig) *TraceBuffer {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.traces = newTraceBuffer(cfg, r)
	return r.traces
}

// offer applies the keep policy and stores the trace if it qualifies.
func (b *TraceBuffer) offer(t TraceData) {
	b.mu.Lock()
	reason := b.keepReasonLocked(t)
	evicted := false
	if reason != "" {
		evicted = b.pushLocked(t)
	}
	b.mu.Unlock()
	// Counters are recorded outside b.mu: Registry.Counter takes the
	// registry lock, which is also held while constructing this buffer.
	if reason == "" {
		b.reg.Counter(TracesDroppedTotal).Inc()
		return
	}
	b.reg.Counter(TracesKeptTotal, "reason", reason).Inc()
	if evicted {
		b.reg.Counter(TracesEvictedTotal).Inc()
	}
}

func (b *TraceBuffer) keepReasonLocked(t TraceData) string {
	if t.Error != "" {
		return "error"
	}
	if b.cfg.KeepSlowest > 0 && (len(b.slowest) < b.cfg.KeepSlowest || t.DurationSeconds > b.slowest[0]) {
		b.admitSlowestLocked(t.DurationSeconds)
		return "slowest"
	}
	if b.cfg.SampleRate >= 1 {
		return "sampled"
	}
	if b.cfg.SampleRate > 0 && b.coin.Float64() < b.cfg.SampleRate {
		return "sampled"
	}
	return ""
}

// admitSlowestLocked inserts d into the ascending slowest-N list, dropping
// the smallest entry when over capacity. N is small (default 16), so the
// O(N) insertion is cheaper than a heap's bookkeeping.
func (b *TraceBuffer) admitSlowestLocked(d float64) {
	i := 0
	for i < len(b.slowest) && b.slowest[i] < d {
		i++
	}
	b.slowest = append(b.slowest, 0)
	copy(b.slowest[i+1:], b.slowest[i:])
	b.slowest[i] = d
	if len(b.slowest) > b.cfg.KeepSlowest {
		b.slowest = b.slowest[1:]
	}
}

// pushLocked appends to the ring, evicting the oldest trace when full.
// Reports whether an eviction happened.
func (b *TraceBuffer) pushLocked(t TraceData) bool {
	if b.n < len(b.buf) {
		b.buf[(b.head+b.n)%len(b.buf)] = t
		b.n++
		return false
	}
	b.buf[b.head] = t
	b.head = (b.head + 1) % len(b.buf)
	return true
}

// Len returns how many traces are currently kept.
func (b *TraceBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// Snapshot returns the kept traces, oldest first.
func (b *TraceBuffer) Snapshot() []TraceData {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]TraceData, 0, b.n)
	for i := 0; i < b.n; i++ {
		out = append(out, b.buf[(b.head+i)%len(b.buf)])
	}
	return out
}

// Get returns the kept trace with the given id.
func (b *TraceBuffer) Get(traceID string) (TraceData, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := 0; i < b.n; i++ {
		t := b.buf[(b.head+i)%len(b.buf)]
		if t.TraceID == traceID {
			return t, true
		}
	}
	return TraceData{}, false
}

// Summaries returns index entries for the kept traces, newest first (the
// order a human debugging "what just went slow" wants).
func (b *TraceBuffer) Summaries() []TraceSummary {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]TraceSummary, 0, b.n)
	for i := b.n - 1; i >= 0; i-- {
		t := b.buf[(b.head+i)%len(b.buf)]
		out = append(out, TraceSummary{
			TraceID:         t.TraceID,
			Name:            t.Root.Name,
			DurationSeconds: t.DurationSeconds,
			Spans:           t.Spans,
			Error:           t.Error,
			StartUnixNano:   t.Root.StartUnixNano,
		})
	}
	return out
}

// WriteTraceJSONL writes one JSON object per line — the export format
// consumed by cmd/mlaas-trace.
func WriteTraceJSONL(w io.Writer, traces []TraceData) error {
	enc := json.NewEncoder(w)
	for _, t := range traces {
		if err := enc.Encode(t); err != nil {
			return err
		}
	}
	return nil
}

// ReadTraceJSONL reads traces written by WriteTraceJSONL.
func ReadTraceJSONL(r io.Reader) ([]TraceData, error) {
	dec := json.NewDecoder(r)
	var out []TraceData
	for {
		var t TraceData
		if err := dec.Decode(&t); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, t)
	}
}
