package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples, histograms
// as cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) {
	var lastFamily string
	r.walk(func(f *family, labels []string, metric any) {
		if f.name != lastFamily {
			lastFamily = f.name
			if f.help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind.promType())
		}
		switch m := metric.(type) {
		case *Counter:
			fmt.Fprintf(w, "%s%s %d\n", f.name, promLabels(labels), m.Value())
		case *Gauge:
			fmt.Fprintf(w, "%s%s %d\n", f.name, promLabels(labels), m.Value())
		case *Histogram:
			cum, count, sum := m.snapshotBuckets()
			for i, bound := range m.bounds {
				le := strconv.FormatFloat(bound, 'g', -1, 64)
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, promLabels(labels, "le", le), cum[i])
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, promLabels(labels, "le", "+Inf"), cum[len(cum)-1])
			fmt.Fprintf(w, "%s_sum%s %g\n", f.name, promLabels(labels), sum)
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, promLabels(labels), count)
		}
	})
}

func (k kind) promType() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// promLabels renders {k="v",...}; extra pairs are appended after the series
// labels (used for the histogram le label). Empty label sets render as "".
func promLabels(pairs []string, extra ...string) string {
	all := append(append([]string(nil), pairs...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(all); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(all[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(all[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// SeriesValue is one counter or gauge sample in a Snapshot.
type SeriesValue struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// BucketValue is one cumulative histogram bucket in a Snapshot. Only
// finite bounds are listed; the +Inf total is the series Count.
type BucketValue struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// HistogramValue is one histogram series in a Snapshot, with interpolated
// quantiles precomputed for dashboards that don't want bucket math.
type HistogramValue struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	P50     float64           `json:"p50"`
	P95     float64           `json:"p95"`
	P99     float64           `json:"p99"`
	Buckets []BucketValue     `json:"buckets,omitempty"` // finite bounds only; Count is the +Inf total
}

// SnapshotData is the JSON shape served by GET /metrics.json.
type SnapshotData struct {
	Counters   []SeriesValue    `json:"counters,omitempty"`
	Gauges     []SeriesValue    `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state as plain data.
func (r *Registry) Snapshot() SnapshotData {
	var snap SnapshotData
	r.walk(func(f *family, labels []string, metric any) {
		lm := labelMap(labels)
		switch m := metric.(type) {
		case *Counter:
			snap.Counters = append(snap.Counters, SeriesValue{Name: f.name, Labels: lm, Value: m.Value()})
		case *Gauge:
			snap.Gauges = append(snap.Gauges, SeriesValue{Name: f.name, Labels: lm, Value: m.Value()})
		case *Histogram:
			cum, count, sum := m.snapshotBuckets()
			hv := HistogramValue{
				Name: f.name, Labels: lm, Count: count, Sum: sum,
				P50: m.Quantile(0.50), P95: m.Quantile(0.95), P99: m.Quantile(0.99),
			}
			for i, bound := range m.bounds {
				hv.Buckets = append(hv.Buckets, BucketValue{LE: bound, Count: cum[i]})
			}
			snap.Histograms = append(snap.Histograms, hv)
		}
	})
	return snap
}

func labelMap(pairs []string) map[string]string {
	if len(pairs) == 0 {
		return nil
	}
	m := make(map[string]string, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		m[pairs[i]] = pairs[i+1]
	}
	return m
}

// WriteSummary renders a human-readable digest of the registry — the
// bench-end report: per-stage latency quantiles first, then every other
// histogram family, then counter totals and live gauges. Writes nothing
// when the registry is empty.
func WriteSummary(w io.Writer, r *Registry) {
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) == 0 {
		return
	}
	fmt.Fprintln(w, "telemetry summary")

	// Histograms, the stage family first.
	byFamily := map[string][]HistogramValue{}
	var famOrder []string
	for _, hv := range snap.Histograms {
		if _, ok := byFamily[hv.Name]; !ok {
			famOrder = append(famOrder, hv.Name)
		}
		byFamily[hv.Name] = append(byFamily[hv.Name], hv)
	}
	for i, name := range famOrder {
		if name == StageHistogram && i != 0 {
			famOrder[0], famOrder[i] = famOrder[i], famOrder[0]
		}
	}
	for _, name := range famOrder {
		fmt.Fprintf(w, "  %s\n", name)
		fmt.Fprintf(w, "    %-28s %10s %10s %10s %10s %10s\n",
			"series", "count", "p50(ms)", "p95(ms)", "p99(ms)", "total(s)")
		for _, hv := range byFamily[name] {
			fmt.Fprintf(w, "    %-28s %10d %10.3f %10.3f %10.3f %10.2f\n",
				seriesLabel(hv.Labels), hv.Count,
				hv.P50*1e3, hv.P95*1e3, hv.P99*1e3, hv.Sum)
		}
	}
	if len(snap.Counters) > 0 {
		fmt.Fprintln(w, "  counters")
		for _, c := range snap.Counters {
			fmt.Fprintf(w, "    %-44s %12d\n", c.Name+seriesSuffix(c.Labels), c.Value)
		}
	}
	if len(snap.Gauges) > 0 {
		fmt.Fprintln(w, "  gauges")
		for _, g := range snap.Gauges {
			fmt.Fprintf(w, "    %-44s %12d\n", g.Name+seriesSuffix(g.Labels), g.Value)
		}
	}
}

// seriesLabel renders a label map compactly: a single label prints its
// value, multiple labels print k=v pairs.
func seriesLabel(labels map[string]string) string {
	switch len(labels) {
	case 0:
		return "(total)"
	case 1:
		for _, v := range labels {
			return v
		}
	}
	return strings.Trim(seriesSuffix(labels), "{}")
}

func seriesSuffix(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + labels[k]
	}
	return "{" + strings.Join(parts, ",") + "}"
}
