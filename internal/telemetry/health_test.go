package telemetry

import (
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestSetBuildInfo(t *testing.T) {
	reg := NewRegistry()
	SetBuildInfo(reg)
	SetBuildInfo(reg) // idempotent: same series, same value

	snap := reg.Snapshot()
	var found *SeriesValue
	for i := range snap.Gauges {
		if snap.Gauges[i].Name == BuildInfoGauge {
			if found != nil {
				t.Fatal("duplicate build_info series")
			}
			found = &snap.Gauges[i]
		}
	}
	if found == nil || found.Value != 1 {
		t.Fatalf("build_info gauge missing or not 1: %+v", found)
	}
	if found.Labels["go_version"] != runtime.Version() {
		t.Errorf("go_version label = %q", found.Labels["go_version"])
	}
	if found.Labels["num_cpu"] != strconv.Itoa(runtime.NumCPU()) {
		t.Errorf("num_cpu label = %q", found.Labels["num_cpu"])
	}
	if found.Labels["gomaxprocs"] == "" {
		t.Error("gomaxprocs label empty")
	}
}

func TestFingerprintString(t *testing.T) {
	s := Fingerprint().String()
	for _, want := range []string{runtime.Version(), "gomaxprocs=", "numcpu="} {
		if !strings.Contains(s, want) {
			t.Errorf("fingerprint %q missing %q", s, want)
		}
	}
}

// TestHealthSampler runs the sampler at a short interval under real GC
// pressure and checks every family reports.
func TestHealthSampler(t *testing.T) {
	reg := NewRegistry()
	stop := StartHealthSampler(reg, 10*time.Millisecond)
	// Generate garbage and force collections so GC metrics have cycles to
	// observe, across at least two ticks so deltas are exercised.
	for i := 0; i < 3; i++ {
		sink := make([][]byte, 256)
		for j := range sink {
			sink[j] = make([]byte, 4096)
		}
		runtime.GC()
		time.Sleep(15 * time.Millisecond)
	}
	stop()
	stop() // second stop is a no-op, not a double-close panic

	if v := reg.Gauge(GoroutinesGauge).Value(); v <= 0 {
		t.Errorf("goroutines gauge %d", v)
	}
	if v := reg.Gauge(HeapInuseGauge).Value(); v <= 0 {
		t.Errorf("heap inuse gauge %d", v)
	}
	if v := reg.Counter(HeapAllocTotal).Value(); v <= 0 {
		t.Errorf("alloc total %d", v)
	}
	if v := reg.Counter(GCCyclesTotal).Value(); v < 3 {
		t.Errorf("gc cycles %d, want >= 3 forced collections", v)
	}
	if n := reg.Histogram(GCPauseHistogram).Count(); n < 3 {
		t.Errorf("gc pause observations %d, want >= 3", n)
	}
	if n := reg.Histogram(SchedLatencyHistogram).Count(); n == 0 {
		t.Error("no sched latency probes recorded")
	}
	// After stop, no further samples land.
	before := reg.Histogram(SchedLatencyHistogram).Count()
	time.Sleep(30 * time.Millisecond)
	if after := reg.Histogram(SchedLatencyHistogram).Count(); after != before {
		t.Errorf("sampler still running after stop: %d -> %d", before, after)
	}
}

// TestHealthSamplerStopRestart pins the stop/restart contract: stop is
// idempotent (any number of calls, any interleaving), and a stopped
// registry can host a fresh sampler that resumes the same families without
// re-describe panics or counter resets.
func TestHealthSamplerStopRestart(t *testing.T) {
	reg := NewRegistry()

	stop1 := StartHealthSampler(reg, 5*time.Millisecond)
	time.Sleep(12 * time.Millisecond)
	stop1()
	stop1() // repeated stops of the same sampler are no-ops
	probesAfterFirst := reg.Histogram(SchedLatencyHistogram).Count()
	allocAfterFirst := reg.Counter(HeapAllocTotal).Value()
	if probesAfterFirst == 0 {
		t.Fatal("first sampler recorded nothing")
	}

	// Restart on the same registry: families are re-described (must not
	// conflict) and cumulative series keep growing from where they were.
	stop2 := StartHealthSampler(reg, 5*time.Millisecond)
	defer stop2()
	deadline := time.Now().Add(time.Second)
	for reg.Histogram(SchedLatencyHistogram).Count() <= probesAfterFirst {
		if time.Now().After(deadline) {
			t.Fatal("restarted sampler recorded no new probes")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if v := reg.Counter(HeapAllocTotal).Value(); v < allocAfterFirst {
		t.Errorf("alloc total went backwards across restart: %d -> %d", allocAfterFirst, v)
	}
	stop2()
	stop1() // stale stop from the first sampler must not kill the pattern
	stop2()
}
