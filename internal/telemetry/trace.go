package telemetry

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// RequestIDHeader is the HTTP header carrying the per-request correlation
// id. The client generates it, the service echoes it, and both sides stamp
// it into error messages so one failing sweep measurement can be matched to
// its server-side log line.
const RequestIDHeader = "X-Request-ID"

var reqIDFallback atomic.Uint64

// NewRequestID returns a fresh 16-hex-char correlation id. Randomness comes
// from crypto/rand; on the (practically impossible) failure of the system
// entropy source it degrades to a process-local counter.
func NewRequestID() string {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%08d", reqIDFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

type requestIDKey struct{}

// WithRequestID attaches a request id to the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the context's request id, or "" when absent.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

type spanKey struct{}

type registryKey struct{}

// WithRegistry routes spans started under ctx into reg instead of Default.
func WithRegistry(ctx context.Context, reg *Registry) context.Context {
	return context.WithValue(ctx, registryKey{}, reg)
}

func registryFrom(ctx context.Context) *Registry {
	if reg, ok := ctx.Value(registryKey{}).(*Registry); ok && reg != nil {
		return reg
	}
	return Default()
}

// Span is one timed stage of a request or sweep. Start times use time.Now,
// whose monotonic clock reading makes End durations immune to wall-clock
// adjustments mid-measurement.
type Span struct {
	name  string
	path  string
	start time.Time
	reg   *Registry
	ended atomic.Bool
}

// StartSpan begins a span named name under ctx. The returned context
// carries the span, so nested StartSpan calls record parent/child paths;
// the span observes into the registry from WithRegistry (Default otherwise)
// under the StageHistogram family with a "stage" label.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	sp := &Span{name: name, path: name, start: time.Now(), reg: registryFrom(ctx)}
	if parent, ok := ctx.Value(spanKey{}).(*Span); ok && parent != nil {
		sp.path = parent.path + "/" + name
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// SpanFrom returns the innermost span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// Name returns the span's own name.
func (s *Span) Name() string { return s.name }

// Path returns the slash-joined ancestry, e.g. "measure/upload".
func (s *Span) Path() string { return s.path }

// End stops the span, records its duration into the stage histogram and
// returns the duration. Safe to call more than once; only the first call
// records.
func (s *Span) End() time.Duration {
	d := time.Since(s.start)
	if s.ended.CompareAndSwap(false, true) {
		s.reg.Histogram(StageHistogram, "stage", s.name).Observe(d.Seconds())
	}
	return d
}

// Time starts a stage timer on the registry; the returned func stops it and
// records into the stage histogram. For hot paths without a context:
//
//	stop := reg.Time("fit")
//	clf.Fit(...)
//	stop()
func (r *Registry) Time(stage string) func() time.Duration {
	start := time.Now()
	return func() time.Duration {
		d := time.Since(start)
		r.Histogram(StageHistogram, "stage", stage).Observe(d.Seconds())
		return d
	}
}

// Time is Registry.Time on the Default registry.
func Time(stage string) func() time.Duration { return Default().Time(stage) }

// WriteDefaultSummary writes the Default registry's summary — what
// mlaas-bench prints when a run finishes.
func WriteDefaultSummary(w io.Writer) { WriteSummary(w, Default()) }
