package telemetry

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// RequestIDHeader is the HTTP header carrying the per-request correlation
// id. The client generates it, the service echoes it, and both sides stamp
// it into error messages so one failing sweep measurement can be matched to
// its server-side log line.
const RequestIDHeader = "X-Request-ID"

// TraceParentHeader carries the trace context over HTTP in the W3C
// traceparent layout: "00-<32 hex trace id>-<16 hex span id>-01". The
// client injects it from its in-flight RPC span; the service adopts the
// trace id and parents its server span under the client span, so one
// train or predict call renders as a single stitched tree.
const TraceParentHeader = "Traceparent"

// MaxSpansPerTrace bounds how many spans a single trace retains. Spans
// started past the cap still time themselves and record into the stage
// histogram, but are not attached to the tree; the trace reports how many
// were dropped. The cap exists so a runaway loop cannot turn one trace
// into an unbounded memory leak.
const MaxSpansPerTrace = 4096

var idFallback atomic.Uint64

// NewRequestID returns a fresh 16-hex-char correlation id. Randomness comes
// from crypto/rand; on the (practically impossible) failure of the system
// entropy source it degrades to a process-local counter.
func NewRequestID() string {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%08d", idFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// NewTraceID returns a 32-hex-char trace id (valid in a traceparent header
// even under the entropy-failure fallback).
func NewTraceID() string {
	var b [16]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return fmt.Sprintf("%032x", idFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// NewSpanID returns a 16-hex-char span id.
func NewSpanID() string {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return fmt.Sprintf("%016x", idFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// FormatTraceParent renders the header value for the given ids.
func FormatTraceParent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// ParseTraceParent splits a traceparent header value into its trace and
// span ids. It accepts only version 00, rejects malformed or all-zero ids,
// and lowercases the hex, per the W3C recommendation.
func ParseTraceParent(h string) (traceID, spanID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) != 4 || parts[0] != "00" {
		return "", "", false
	}
	traceID = strings.ToLower(parts[1])
	spanID = strings.ToLower(parts[2])
	if len(traceID) != 32 || len(spanID) != 16 || !isHex(traceID) || !isHex(spanID) {
		return "", "", false
	}
	if traceID == strings.Repeat("0", 32) || spanID == strings.Repeat("0", 16) {
		return "", "", false
	}
	return traceID, spanID, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

type requestIDKey struct{}

// WithRequestID attaches a request id to the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the context's request id, or "" when absent.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

type spanKey struct{}

type registryKey struct{}

type remoteParentKey struct{}

type remoteParent struct{ traceID, spanID string }

// WithRegistry routes spans started under ctx into reg instead of Default.
func WithRegistry(ctx context.Context, reg *Registry) context.Context {
	return context.WithValue(ctx, registryKey{}, reg)
}

func registryFrom(ctx context.Context) *Registry {
	if reg, ok := ctx.Value(registryKey{}).(*Registry); ok && reg != nil {
		return reg
	}
	return Default()
}

// RegistryFrom returns the registry carried by ctx (see WithRegistry), or
// Default. Library code that records metrics outside a span should use this
// so isolated registries (tests, per-arm load generators) see the traffic.
func RegistryFrom(ctx context.Context) *Registry { return registryFrom(ctx) }

// WithRemoteParent marks ctx so the next root span started under it joins
// the remote caller's trace: it adopts traceID and records spanID as its
// parent. Ids of the wrong width are ignored (the span starts a new trace).
func WithRemoteParent(ctx context.Context, traceID, spanID string) context.Context {
	if len(traceID) != 32 || len(spanID) != 16 {
		return ctx
	}
	return context.WithValue(ctx, remoteParentKey{}, remoteParent{traceID, spanID})
}

// Span is one timed stage of a request or sweep, retained as a tree node:
// ending the root span snapshots the whole tree into the registry's trace
// buffer (the flight recorder). Start times use time.Now, whose monotonic
// clock reading makes End durations immune to wall-clock adjustments
// mid-measurement.
//
// All spans of a tree share the root's mutex; contention is negligible
// because a trace is at most a handful of goroutines deep.
type Span struct {
	name     string
	path     string
	start    time.Time
	reg      *Registry
	traceID  string
	spanID   string
	parentID string
	root     *Span

	mu sync.Mutex // meaningful on the root only; guards the whole tree

	// Guarded by root.mu.
	ended    bool
	dur      time.Duration
	errMsg   string
	attrs    []string // ordered key/value pairs
	children []*Span

	// Root-only, guarded by root.mu.
	spanCount    int
	droppedSpans int
}

// StartSpan begins a span named name under ctx. The returned context
// carries the span, so nested StartSpan calls build a parent/child tree;
// the span observes into the registry from WithRegistry (Default otherwise)
// under the StageHistogram family with a "stage" label. A span with no
// local parent becomes a trace root: it gets a fresh trace id (or joins the
// remote trace from WithRemoteParent), and its End delivers the finished
// tree to the registry's TraceBuffer.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	sp := &Span{
		name:   name,
		path:   name,
		start:  time.Now(),
		reg:    registryFrom(ctx),
		spanID: NewSpanID(),
	}
	if parent, ok := ctx.Value(spanKey{}).(*Span); ok && parent != nil {
		root := parent.root
		sp.path = parent.path + "/" + name
		sp.traceID = root.traceID
		sp.parentID = parent.spanID
		sp.root = root
		root.mu.Lock()
		if root.spanCount >= MaxSpansPerTrace {
			root.droppedSpans++
		} else {
			root.spanCount++
			parent.children = append(parent.children, sp)
		}
		root.mu.Unlock()
	} else {
		sp.root = sp
		sp.spanCount = 1
		if rp, ok := ctx.Value(remoteParentKey{}).(remoteParent); ok {
			sp.traceID = rp.traceID
			sp.parentID = rp.spanID
		} else {
			sp.traceID = NewTraceID()
		}
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// SpanFrom returns the innermost span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// Name returns the span's own name.
func (s *Span) Name() string { return s.name }

// Path returns the slash-joined ancestry, e.g. "measure/upload".
func (s *Span) Path() string { return s.path }

// TraceID returns the 32-hex trace id shared by every span in the tree.
func (s *Span) TraceID() string { return s.traceID }

// SpanID returns this span's 16-hex id.
func (s *Span) SpanID() string { return s.spanID }

// SetAttr attaches (or replaces) a key/value attribute on the span, e.g.
// platform, dataset, config hash, cache hit/miss. Returns s for chaining.
func (s *Span) SetAttr(key, value string) *Span {
	root := s.root
	root.mu.Lock()
	for i := 0; i+1 < len(s.attrs); i += 2 {
		if s.attrs[i] == key {
			s.attrs[i+1] = value
			root.mu.Unlock()
			return s
		}
	}
	s.attrs = append(s.attrs, key, value)
	root.mu.Unlock()
	return s
}

// SetError marks the span failed. Error traces are always kept by the
// flight recorder regardless of sampling. nil is a no-op.
func (s *Span) SetError(err error) *Span {
	if err == nil {
		return s
	}
	root := s.root
	root.mu.Lock()
	s.errMsg = err.Error()
	root.mu.Unlock()
	return s
}

// End stops the span, records its duration into the stage histogram and
// returns the duration. Safe to call more than once: only the first call
// records, and repeat calls return the originally recorded duration (not a
// still-growing fresh reading). Ending a root span snapshots the finished
// tree into the registry's trace buffer.
func (s *Span) End() time.Duration {
	now := time.Now()
	root := s.root
	root.mu.Lock()
	if s.ended {
		d := s.dur
		root.mu.Unlock()
		return d
	}
	s.ended = true
	s.dur = now.Sub(s.start)
	d := s.dur
	var finished *TraceData
	if s == root {
		t := root.snapshotLocked(now)
		finished = &t
	}
	root.mu.Unlock()
	s.reg.Histogram(StageHistogram, "stage", s.name).Observe(d.Seconds())
	if finished != nil {
		s.reg.Traces().offer(*finished)
	}
	return d
}

// snapshotLocked converts the finished tree into its exportable form.
// Callers hold root.mu; s must be the root.
func (s *Span) snapshotLocked(now time.Time) TraceData {
	rootData := s.snapshotSpanLocked(now)
	td := TraceData{
		TraceID:         s.traceID,
		DurationSeconds: rootData.DurationSeconds,
		Spans:           s.spanCount,
		DroppedSpans:    s.droppedSpans,
		Root:            rootData,
	}
	td.Error = firstError(&td.Root)
	return td
}

func (s *Span) snapshotSpanLocked(now time.Time) SpanData {
	d := s.dur
	unfinished := false
	if !s.ended {
		// A child still running when the root ends is recorded with its
		// duration-so-far and flagged, rather than silently vanishing.
		d = now.Sub(s.start)
		unfinished = true
	}
	sd := SpanData{
		SpanID:          s.spanID,
		ParentID:        s.parentID,
		Name:            s.name,
		Path:            s.path,
		StartUnixNano:   s.start.UnixNano(),
		DurationSeconds: d.Seconds(),
		Error:           s.errMsg,
		Unfinished:      unfinished,
	}
	if len(s.attrs) > 0 {
		sd.Attrs = make(map[string]string, len(s.attrs)/2)
		for i := 0; i+1 < len(s.attrs); i += 2 {
			sd.Attrs[s.attrs[i]] = s.attrs[i+1]
		}
	}
	for _, c := range s.children {
		sd.Children = append(sd.Children, c.snapshotSpanLocked(now))
	}
	return sd
}

func firstError(sd *SpanData) string {
	if sd.Error != "" {
		return sd.Error
	}
	for i := range sd.Children {
		if msg := firstError(&sd.Children[i]); msg != "" {
			return msg
		}
	}
	return ""
}

// Time starts a stage timer on the registry; the returned func stops it and
// records into the stage histogram. For hot paths without a context:
//
//	stop := reg.Time("fit")
//	clf.Fit(...)
//	stop()
func (r *Registry) Time(stage string) func() time.Duration {
	start := time.Now()
	return func() time.Duration {
		d := time.Since(start)
		r.Histogram(StageHistogram, "stage", stage).Observe(d.Seconds())
		return d
	}
}

// Time is Registry.Time on the Default registry.
func Time(stage string) func() time.Duration { return Default().Time(stage) }

// TimeCtx times a stage under ctx: when ctx carries a span the stage
// becomes a child span (so it lands in the trace tree AND the stage
// histogram — one observation, two views, which is what keeps trace sums
// and histogram sums reconcilable); otherwise it degrades to a plain
// registry timer on ctx's registry.
func TimeCtx(ctx context.Context, stage string) func() time.Duration {
	if SpanFrom(ctx) != nil {
		_, sp := StartSpan(ctx, stage)
		return sp.End
	}
	return registryFrom(ctx).Time(stage)
}

// WriteDefaultSummary writes the Default registry's summary — what
// mlaas-bench prints when a run finishes.
func WriteDefaultSummary(w io.Writer) { WriteSummary(w, Default()) }
