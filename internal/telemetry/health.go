package telemetry

import (
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"
)

// Runtime health metric names. The sampler (StartHealthSampler) produces
// them; /metrics and /metrics.json expose them next to the request
// metrics, so a latency regression can be read against what the runtime
// was doing at the time (GC churn, goroutine pileup, scheduler delay).
const (
	// BuildInfoGauge is the constant-1 gauge whose labels carry the build
	// fingerprint (go_version, gomaxprocs, num_cpu, git_sha) — the
	// Prometheus idiom for attaching environment metadata to a scrape.
	BuildInfoGauge = "mlaas_build_info"

	// GoroutinesGauge is the live goroutine count.
	GoroutinesGauge = "mlaas_goroutines"

	// HeapInuseGauge is bytes of heap memory in active spans.
	HeapInuseGauge = "mlaas_heap_inuse_bytes"

	// HeapAllocTotal counts cumulative bytes allocated on the heap; its
	// rate is the allocation pressure the serving path generates.
	HeapAllocTotal = "mlaas_heap_alloc_bytes_total"

	// GCCyclesTotal counts completed GC cycles.
	GCCyclesTotal = "mlaas_gc_cycles_total"

	// GCPauseHistogram records individual stop-the-world pause durations.
	GCPauseHistogram = "mlaas_gc_pause_seconds"

	// SchedLatencyHistogram is a scheduling-latency proxy: each sample the
	// sampler sleeps for a fixed short interval and records how far past
	// the deadline the runtime actually woke it. Overshoot grows when the
	// scheduler is saturated (every P busy, timer goroutines queue).
	SchedLatencyHistogram = "mlaas_sched_latency_seconds"
)

// BuildFingerprint identifies the toolchain and CPU budget a process is
// running under — the minimum context every recorded number needs to be
// comparable later.
type BuildFingerprint struct {
	GoVersion  string
	GOMAXPROCS int
	NumCPU     int
	GitSHA     string // VCS revision from build info; often empty for go run / test binaries
}

// String renders the fingerprint on one line.
func (f BuildFingerprint) String() string {
	s := f.GoVersion + " " + runtime.GOOS + "/" + runtime.GOARCH +
		" gomaxprocs=" + strconv.Itoa(f.GOMAXPROCS) + " numcpu=" + strconv.Itoa(f.NumCPU)
	if f.GitSHA != "" {
		sha := f.GitSHA
		if len(sha) > 12 {
			sha = sha[:12]
		}
		s += " sha=" + sha
	}
	return s
}

var (
	fingerprintOnce sync.Once
	fingerprintVal  BuildFingerprint
)

// Fingerprint returns the process build fingerprint. GOMAXPROCS is read
// fresh each call (it can change); the rest is computed once.
func Fingerprint() BuildFingerprint {
	fingerprintOnce.Do(func() {
		fingerprintVal = BuildFingerprint{
			GoVersion: runtime.Version(),
			NumCPU:    runtime.NumCPU(),
		}
		if bi, ok := debug.ReadBuildInfo(); ok {
			for _, s := range bi.Settings {
				if s.Key == "vcs.revision" {
					fingerprintVal.GitSHA = s.Value
				}
			}
		}
	})
	fp := fingerprintVal
	fp.GOMAXPROCS = runtime.GOMAXPROCS(0)
	return fp
}

// SetBuildInfo registers the mlaas_build_info gauge in reg: value 1, with
// the fingerprint as labels. Call once at process start; calling again is
// harmless (same series, same value).
func SetBuildInfo(reg *Registry) {
	fp := Fingerprint()
	reg.Describe(BuildInfoGauge, "Build/environment fingerprint as labels; value is always 1.")
	labels := []string{
		"go_version", fp.GoVersion,
		"gomaxprocs", strconv.Itoa(fp.GOMAXPROCS),
		"num_cpu", strconv.Itoa(fp.NumCPU),
	}
	if fp.GitSHA != "" {
		labels = append(labels, "git_sha", fp.GitSHA)
	}
	reg.Gauge(BuildInfoGauge, labels...).Set(1)
}

// schedProbe is the sleep the sampler issues to measure wake-up
// overshoot. Long enough to be a real timer sleep, short enough that one
// probe per sample tick is free.
const schedProbe = time.Millisecond

// StartHealthSampler begins sampling runtime health into reg every
// interval and returns a stop function that halts the sampler and waits
// for its goroutine to exit. Each tick records the goroutine count, heap
// in-use, cumulative allocation, new GC cycles and their individual pause
// durations, and one scheduling-latency probe.
func StartHealthSampler(reg *Registry, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	reg.Describe(GoroutinesGauge, "Live goroutines.")
	reg.Describe(HeapInuseGauge, "Heap bytes in active spans.")
	reg.Describe(HeapAllocTotal, "Cumulative heap bytes allocated.")
	reg.Describe(GCCyclesTotal, "Completed GC cycles.")
	reg.Describe(GCPauseHistogram, "Individual GC stop-the-world pause durations.")
	reg.Describe(SchedLatencyHistogram, "Timer wake-up overshoot (scheduling latency proxy).")

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s := healthSampler{reg: reg}
		s.sample() // one immediate sample so short-lived processes still report
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				s.sample()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}

// healthSampler carries the deltas between ticks.
type healthSampler struct {
	reg       *Registry
	lastAlloc uint64
	lastNumGC uint32
}

func (s *healthSampler) sample() {
	s.reg.Gauge(GoroutinesGauge).Set(int64(runtime.NumGoroutine()))

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.reg.Gauge(HeapInuseGauge).Set(int64(ms.HeapInuse))
	if ms.TotalAlloc >= s.lastAlloc {
		s.reg.Counter(HeapAllocTotal).Add(int64(ms.TotalAlloc - s.lastAlloc))
	}
	s.lastAlloc = ms.TotalAlloc

	if n := ms.NumGC - s.lastNumGC; n > 0 {
		s.reg.Counter(GCCyclesTotal).Add(int64(n))
		// PauseNs is a circular buffer of the last 256 pause times; replay
		// only the cycles since the previous tick.
		replay := n
		if replay > uint32(len(ms.PauseNs)) {
			replay = uint32(len(ms.PauseNs))
		}
		h := s.reg.Histogram(GCPauseHistogram)
		for i := uint32(0); i < replay; i++ {
			idx := (ms.NumGC - i - 1 + 256) % 256
			h.Observe(float64(ms.PauseNs[idx]) / 1e9)
		}
	}
	s.lastNumGC = ms.NumGC

	// Scheduling-latency probe: how late does a 1ms timer fire?
	t0 := time.Now()
	time.Sleep(schedProbe)
	overshoot := time.Since(t0) - schedProbe
	if overshoot < 0 {
		overshoot = 0
	}
	s.reg.Histogram(SchedLatencyHistogram).Observe(overshoot.Seconds())
}
