package telemetry

// Shared metric names for the sweep engine. The producers live in
// internal/core (scheduler) and internal/pipeline (FeatCache); naming them
// here keeps the exposition surface documented in one place and lets the
// summary describe them without importing the producers.
const (
	// SweepWorkersGauge tracks how many sweep pool workers are executing a
	// unit of work (dataset generation or a config batch) right now.
	SweepWorkersGauge = "mlaas_sweep_inflight_workers"

	// SweepUnitHistogram records the wall-clock duration of one
	// (platform, dataset) measurement unit, labeled by platform.
	SweepUnitHistogram = "mlaas_sweep_unit_duration_seconds"

	// FeatCacheHits / FeatCacheMisses count FEAT-transform cache lookups,
	// labeled by FEAT kind ("scaler", "filter", "fisherlda"). A miss fits
	// the transform; a hit reuses previously fitted matrices.
	FeatCacheHits   = "mlaas_featcache_hits_total"
	FeatCacheMisses = "mlaas_featcache_misses_total"

	// ModelCache* count fitted-model cache traffic on the serving path
	// (internal/service): a hit serves a resident model, a miss runs a fit,
	// an eviction drops the LRU tail (the model transparently refits on its
	// next use), and a coalesced request waited on an identical in-flight
	// fit instead of starting its own.
	ModelCacheHits      = "mlaas_modelcache_hits_total"
	ModelCacheMisses    = "mlaas_modelcache_misses_total"
	ModelCacheEvictions = "mlaas_modelcache_evictions_total"
	ModelCacheCoalesced = "mlaas_modelcache_coalesced_total"

	// PredictPathHistogram splits predict-endpoint latency by serving path:
	// path="forward" served a resident model (pure forward pass),
	// path="refit" paid for a model fit first (cache miss, post-eviction
	// refill, or a coalesced wait on another request's fit).
	PredictPathHistogram = "mlaas_predict_path_duration_seconds"

	// PredictBatchSizeHistogram records how many instances each predict
	// request carried. Observed in rows, not seconds; the family uses
	// power-of-two count buckets (BatchSizeBuckets).
	PredictBatchSizeHistogram = "mlaas_predict_batch_size"

	// KernelHistogram records the wall-clock duration of one batch linalg
	// kernel invocation, labeled kernel="gemm"|"gemm_nt"|"gemv"|"distance".
	// Fed by linalg.SetKernelHook — installed by the server and bench/loadgen
	// mains, so library users pay nothing unless they opt in.
	KernelHistogram = "mlaas_kernel_gemm_duration_seconds"

	// Traces* count flight-recorder admissions: kept (labeled by reason:
	// "error", "slowest", "sampled"), dropped (sampled out), and evicted
	// (pushed out of the ring FIFO by a newer trace).
	TracesKeptTotal    = "mlaas_traces_kept_total"
	TracesDroppedTotal = "mlaas_traces_dropped_total"
	TracesEvictedTotal = "mlaas_traces_evicted_total"

	// CodecRequestsTotal counts predict requests by wire codec,
	// codec="json"|"binary" — the adoption curve of the binary frame path.
	CodecRequestsTotal = "mlaas_codec_requests_total"

	// WireFrameBytesHistogram records the size in bytes of each binary
	// frame the server decodes or encodes, labeled dir="rx"|"tx". Uses
	// FrameBytesBuckets (power-of-four bytes), not duration buckets.
	WireFrameBytesHistogram = "mlaas_wire_frame_bytes"

	// Admission* instrument the bounded per-route admission queue (load
	// shedding past saturation): admitted requests, shed requests (503 +
	// Retry-After), and the current queue depth gauge, all labeled by
	// route.
	AdmissionAdmittedTotal = "mlaas_admission_admitted_total"
	AdmissionShedTotal     = "mlaas_admission_shed_total"
	AdmissionQueueDepth    = "mlaas_admission_queue_depth"

	// Store* instrument the disk tier beneath the fitted-model LRU
	// (internal/store): a store hit loaded an artifact instead of refitting,
	// a store miss found no artifact for the key (the fit runs and is then
	// persisted), a demotion wrote an evicted model to disk, and a warm load
	// filled the cache from disk at boot.
	StoreHits      = "mlaas_store_hits_total"
	StoreMisses    = "mlaas_store_misses_total"
	StoreDemotions = "mlaas_store_demotions_total"
	StoreWarmLoads = "mlaas_store_warm_loads_total"

	// StoreLoadHistogram records how long loading one model artifact from
	// disk took, labeled op="hit"|"warm" — the disk-tier counterpart of the
	// fit time it replaces.
	StoreLoadHistogram = "mlaas_store_load_duration_seconds"

	// Profiling* instrument the continuous profiler (internal/profiling):
	// captures counts finished profile bundles by reason
	// ("periodic"|"trigger"|"manual"), triggers counts SLO-watchdog breach
	// captures by SLO name, and dropped counts captures that did not happen
	// or bundles that did not survive, by reason ("busy": the CPU profiler
	// was already running; "cooldown": a trigger landed inside the
	// per-SLO cooldown; "evict": the on-disk ring pruned the oldest bundle;
	// "error": the capture failed mid-write).
	ProfilingCapturesTotal = "mlaas_profiling_captures_total"
	ProfilingTriggersTotal = "mlaas_profiling_triggers_total"
	ProfilingDroppedTotal  = "mlaas_profiling_dropped_total"

	// SLOBurnRateMilli is the watchdog's rolling-window burn rate per SLO
	// and dimension (labels: slo, kind="latency"|"errors"), scaled by 1000
	// because gauges are integral: 1000 means the error budget is being
	// consumed exactly as fast as the SLO allows, 2000 twice as fast.
	SLOBurnRateMilli = "mlaas_slo_burn_rate_milli"

	// SLOBreachesTotal counts breach transitions per SLO — ticks where a
	// burn rate or queue-depth bound first crossed its threshold after
	// being healthy (edge-triggered, so sustained breaches count once).
	SLOBreachesTotal = "mlaas_slo_breaches_total"

	// Router* instrument the cluster front end (internal/cluster): requests
	// counts every proxied request by replica and outcome
	// ("ok"|"client_error"|"error"), in-flight gauges the requests each
	// replica is serving right now, state changes counts routable-state
	// transitions per replica ("up"|"warming"|"down") — each one is a ring
	// rebalance event, since keys owned by a down replica fail over to the
	// next owner — failovers counts attempts that moved to another owner
	// after a replica error, and repairs counts lazy re-provisioning of a
	// dataset or model onto an owner that was missing it (kind=
	// "dataset"|"model": late joiners and post-restart replicas heal on
	// first touch).
	RouterRequestsTotal            = "mlaas_router_requests_total"
	RouterReplicaInFlight          = "mlaas_router_replica_in_flight"
	RouterReplicaStateChangesTotal = "mlaas_router_replica_state_changes_total"
	RouterFailoversTotal           = "mlaas_router_failovers_total"
	RouterRepairsTotal             = "mlaas_router_repairs_total"

	// ClientFailoversTotal counts client-side base-URL rotations: attempts
	// a Client with failover endpoints sent to a different endpoint than
	// the previous attempt because that attempt failed retryably.
	ClientFailoversTotal = "mlaas_client_failovers_total"
)

func init() {
	Default().Describe(SweepWorkersGauge, "Sweep pool workers currently executing a unit of work.")
	Default().Describe(SweepUnitHistogram, "Duration of one (platform, dataset) measurement unit in seconds.")
	Default().Describe(FeatCacheHits, "FEAT transform cache hits (transform reused).")
	Default().Describe(FeatCacheMisses, "FEAT transform cache misses (transform fitted).")
	Default().Describe(ModelCacheHits, "Fitted-model cache hits (resident model served).")
	Default().Describe(ModelCacheMisses, "Fitted-model cache misses (model fitted).")
	Default().Describe(ModelCacheEvictions, "Fitted models evicted from the LRU (refit on next use).")
	Default().Describe(ModelCacheCoalesced, "Requests that waited on an identical in-flight fit.")
	Default().Describe(PredictPathHistogram, "Predict latency split by serving path (forward vs refit).")
	Default().Describe(PredictBatchSizeHistogram, "Instances per predict request (rows, power-of-two buckets).")
	Default().Describe(KernelHistogram, "Batch linalg kernel duration by kernel (gemm, gemm_nt, gemv, distance).")
	Default().Describe(TracesKeptTotal, "Traces admitted to the flight recorder, by keep reason.")
	Default().Describe(TracesDroppedTotal, "Traces rejected by tail sampling.")
	Default().Describe(TracesEvictedTotal, "Kept traces evicted FIFO by ring overflow.")
	Default().Describe(CodecRequestsTotal, "Predict requests by wire codec (json or binary).")
	Default().Describe(WireFrameBytesHistogram, "Binary frame sizes in bytes, by direction (rx or tx).")
	Default().Describe(AdmissionAdmittedTotal, "Requests admitted past the admission queue, by route.")
	Default().Describe(AdmissionShedTotal, "Requests shed with 503 + Retry-After, by route.")
	Default().Describe(AdmissionQueueDepth, "Requests currently waiting in the admission queue, by route.")
	Default().Describe(StoreHits, "Model-cache misses served by loading a disk artifact instead of refitting.")
	Default().Describe(StoreMisses, "Model-cache misses with no disk artifact (fit ran, artifact persisted).")
	Default().Describe(StoreDemotions, "Evicted models demoted to disk artifacts.")
	Default().Describe(StoreWarmLoads, "Models warmed into the cache from disk at boot.")
	Default().Describe(StoreLoadHistogram, "Disk artifact load duration in seconds, by op (hit or warm).")
	Default().Describe(ProfilingCapturesTotal, "Finished profile bundles, by reason (periodic, trigger, manual).")
	Default().Describe(ProfilingTriggersTotal, "SLO-watchdog breach captures, by SLO name.")
	Default().Describe(ProfilingDroppedTotal, "Captures skipped or bundles pruned, by reason (busy, cooldown, evict, error).")
	Default().Describe(SLOBurnRateMilli, "Rolling-window SLO burn rate x1000, by SLO and dimension (latency or errors).")
	Default().Describe(SLOBreachesTotal, "SLO breach transitions (healthy -> breached), by SLO name.")
	Default().Describe(RouterRequestsTotal, "Requests proxied by the cluster router, by replica and outcome.")
	Default().Describe(RouterReplicaInFlight, "Requests a replica is serving through the router right now.")
	Default().Describe(RouterReplicaStateChangesTotal, "Replica routable-state transitions (ring rebalance events), by replica and state.")
	Default().Describe(RouterFailoversTotal, "Proxy attempts that failed over to another ring owner, by route.")
	Default().Describe(RouterRepairsTotal, "Datasets/models lazily re-provisioned onto an owner that was missing them, by kind.")
	Default().Describe(ClientFailoversTotal, "Client attempts that rotated to a failover endpoint.")
}
