package telemetry

// Shared metric names for the sweep engine. The producers live in
// internal/core (scheduler) and internal/pipeline (FeatCache); naming them
// here keeps the exposition surface documented in one place and lets the
// summary describe them without importing the producers.
const (
	// SweepWorkersGauge tracks how many sweep pool workers are executing a
	// unit of work (dataset generation or a config batch) right now.
	SweepWorkersGauge = "mlaas_sweep_inflight_workers"

	// SweepUnitHistogram records the wall-clock duration of one
	// (platform, dataset) measurement unit, labeled by platform.
	SweepUnitHistogram = "mlaas_sweep_unit_duration_seconds"

	// FeatCacheHits / FeatCacheMisses count FEAT-transform cache lookups,
	// labeled by FEAT kind ("scaler", "filter", "fisherlda"). A miss fits
	// the transform; a hit reuses previously fitted matrices.
	FeatCacheHits   = "mlaas_featcache_hits_total"
	FeatCacheMisses = "mlaas_featcache_misses_total"
)

func init() {
	Default().Describe(SweepWorkersGauge, "Sweep pool workers currently executing a unit of work.")
	Default().Describe(SweepUnitHistogram, "Duration of one (platform, dataset) measurement unit in seconds.")
	Default().Describe(FeatCacheHits, "FEAT transform cache hits (transform reused).")
	Default().Describe(FeatCacheMisses, "FEAT transform cache misses (transform fitted).")
}
