package telemetry

import (
	"math"
	"testing"
)

// The perf report and /metrics.json lean on Histogram.Quantile; these
// tests pin its edge-case behaviour: empty histograms, a single
// observation, every observation in one bucket, the +Inf bucket, and
// out-of-range q.

func TestQuantileEmptyHistogram(t *testing.T) {
	h := NewRegistry().HistogramBuckets("empty", []float64{0.1, 1, 10})
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := h.Quantile(q); v != 0 {
			t.Errorf("empty histogram Quantile(%v) = %v, want 0", q, v)
		}
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	h := NewRegistry().HistogramBuckets("single", []float64{0.1, 1, 10})
	h.Observe(0.5) // lands in the (0.1, 1] bucket
	for _, q := range []float64{0, 0.25, 0.5, 0.95, 1} {
		v := h.Quantile(q)
		if v < 0.1 || v > 1 {
			t.Errorf("Quantile(%v) = %v, must stay inside the observation's bucket (0.1, 1]", q, v)
		}
	}
	// Exactly one observation: q=1 is the bucket's upper bound.
	if v := h.Quantile(1); v != 1 {
		t.Errorf("Quantile(1) = %v, want the bucket upper bound 1", v)
	}
}

func TestQuantileAllOneBucket(t *testing.T) {
	h := NewRegistry().HistogramBuckets("onebucket", []float64{0.1, 1, 10})
	for i := 0; i < 1000; i++ {
		h.Observe(0.5)
	}
	lo, hi := 0.1, 1.0
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99} {
		v := h.Quantile(q)
		if v < lo || v > hi {
			t.Errorf("Quantile(%v) = %v, outside the only occupied bucket (%v, %v]", q, v, lo, hi)
		}
	}
	// Interpolation must be monotone in q even inside one bucket.
	if h.Quantile(0.9) < h.Quantile(0.1) {
		t.Error("quantiles not monotone inside a single bucket")
	}
}

func TestQuantileFirstBucketInterpolatesFromZero(t *testing.T) {
	h := NewRegistry().HistogramBuckets("first", []float64{0.1, 1})
	h.Observe(0.05)
	if v := h.Quantile(0.5); v < 0 || v > 0.1 {
		t.Errorf("Quantile(0.5) = %v, want inside [0, 0.1]", v)
	}
}

func TestQuantileInfBucketClampsToLargestBound(t *testing.T) {
	h := NewRegistry().HistogramBuckets("inf", []float64{0.1, 1, 10})
	h.Observe(1e6) // beyond the last finite bound
	h.Observe(1e6)
	for _, q := range []float64{0.5, 0.99} {
		if v := h.Quantile(q); v != 10 {
			t.Errorf("Quantile(%v) = %v, want the largest finite bound 10", q, v)
		}
	}
}

func TestQuantileClampsQ(t *testing.T) {
	h := NewRegistry().HistogramBuckets("clamp", []float64{0.1, 1})
	h.Observe(0.5)
	if v := h.Quantile(-3); v != h.Quantile(0) {
		t.Errorf("Quantile(-3) = %v, want Quantile(0) = %v", v, h.Quantile(0))
	}
	if v := h.Quantile(7); v != h.Quantile(1) {
		t.Errorf("Quantile(7) = %v, want Quantile(1) = %v", v, h.Quantile(1))
	}
}

func TestQuantileIgnoresNaNObservations(t *testing.T) {
	h := NewRegistry().HistogramBuckets("nan", []float64{0.1, 1})
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Error("NaN observation counted")
	}
	h.Observe(0.5)
	if h.Count() != 1 {
		t.Error("real observation after NaN not counted")
	}
}
