// Package telemetry is the measurement harness around the measurement
// harness: stdlib-only metrics and tracing for the service, client and
// sweep stack. The paper's five-month campaign (§3.2) lived and died by
// knowing what the platforms' web APIs were doing — latency, failures,
// retries — so this reproduction records the same signals about itself.
//
// The package provides three metric kinds, all safe for concurrent use and
// cheap enough for per-request hot paths (lock-free after first touch):
//
//   - Counter: a monotonically increasing int64 on atomics;
//   - Gauge:   a settable int64 (in-flight requests, queue depths);
//   - Histogram: bucketed latency distribution with atomic bucket counts,
//     exposing count, sum and interpolated quantiles (p50/p95/p99).
//
// Metrics live in a Registry, addressed by name plus ordered label pairs:
//
//	reg.Counter("mlaas_http_requests_total", "route", "predict", "class", "2xx").Inc()
//
// A Registry renders itself as Prometheus text exposition (WritePrometheus)
// and as a JSON snapshot (Snapshot); see expose.go. Tracing spans and
// request-ID propagation live in trace.go.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// StageHistogram is the histogram family that spans and Time record into;
// one series per pipeline stage (upload, featsel, preprocess, fit, predict,
// score, ...).
const StageHistogram = "mlaas_stage_duration_seconds"

// DefBuckets are the default histogram bucket upper bounds in seconds:
// exponential-ish from 100µs (an in-process fit on a tiny dataset) to 60s
// (a full-profile training call over the wire).
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// FineBuckets extend DefBuckets down to 5µs. The fit-once serving path
// answers forward-pass predicts in tens of microseconds; under DefBuckets
// every such observation lands in the first bucket and the quantiles
// collapse to ~100µs. The stage and predict-path families use these.
var FineBuckets = append([]float64{
	0.000005, 0.00001, 0.000025, 0.00005,
}, DefBuckets...)

// BatchSizeBuckets are power-of-two count buckets for histograms that
// observe sizes (rows per request) rather than durations.
var BatchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}

// FrameBytesBuckets are power-of-four byte buckets for histograms that
// observe payload sizes — wide enough to span a 1-row frame (tens of
// bytes) through the 64 MiB frame cap.
var FrameBytesBuckets = []float64{
	64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216, 67108864,
}

// FamilyBuckets overrides the bucket bounds Histogram() uses for specific
// families. Consulted only when the family is first created; explicit
// HistogramBuckets calls bypass it.
var FamilyBuckets = map[string][]float64{
	StageHistogram:            FineBuckets,
	PredictPathHistogram:      FineBuckets,
	PredictBatchSizeHistogram: BatchSizeBuckets,
	WireFrameBytesHistogram:   FrameBytesBuckets,
	KernelHistogram:           FineBuckets,
	GCPauseHistogram:          FineBuckets,
	SchedLatencyHistogram:     FineBuckets,
}

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are a programming error and are ignored.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket latency histogram. Bucket bounds are upper
// bounds in seconds; observations above the last bound land in an implicit
// +Inf bucket. All mutation is atomic.
type Histogram struct {
	bounds  []float64       // finite upper bounds, ascending
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: bounds}
	h.buckets = make([]atomic.Uint64, len(bounds)+1)
	return h
}

// Observe records one value (in seconds for latency histograms).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// inside the bucket holding the target rank. Observations in the +Inf
// bucket are attributed to the largest finite bound. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i := range h.buckets {
		n := float64(h.buckets[i].Load())
		if n == 0 {
			cum += n
			continue
		}
		if cum+n >= rank {
			if i >= len(h.bounds) { // +Inf bucket
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - cum) / n
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Bounds returns the histogram's finite bucket upper bounds (ascending).
// The returned slice is the histogram's own backing; callers must not
// mutate it.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// CumulativeBelow returns how many observations landed in buckets whose
// upper bound is <= v — the "good" count for a latency SLO whose threshold
// is v. Thresholds between bucket bounds round down to the nearest bound,
// so a threshold that does not align with a bucket is judged
// conservatively (fewer observations count as good).
func (h *Histogram) CumulativeBelow(v float64) uint64 {
	var cum uint64
	for i, bound := range h.bounds {
		if bound > v {
			break
		}
		cum += h.buckets[i].Load()
	}
	return cum
}

// snapshotBuckets returns cumulative counts aligned with bounds + the +Inf
// bucket, plus count and sum, read once.
func (h *Histogram) snapshotBuckets() (cum []uint64, count uint64, sum float64) {
	cum = make([]uint64, len(h.buckets))
	var c uint64
	for i := range h.buckets {
		c += h.buckets[i].Load()
		cum[i] = c
	}
	return cum, h.count.Load(), h.Sum()
}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

// series is one labeled instance inside a family.
type series struct {
	labels []string // ordered name/value pairs
	metric any      // *Counter | *Gauge | *Histogram
}

// family groups all series of one metric name.
type family struct {
	name    string
	help    string
	kind    kind
	buckets []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*series
	order  []string
}

// Registry holds metric families. The zero value is not usable; construct
// with NewRegistry (or use Default).
type Registry struct {
	mu          sync.Mutex
	families    map[string]*family
	pendingHelp map[string]string // Describe calls before the family exists
	traces      *TraceBuffer      // flight recorder; lazily built (tracebuf.go)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. Library code (pipeline stages,
// the measurement client) records here unless handed an explicit registry,
// so one bench run's numbers end up in one place.
func Default() *Registry { return defaultRegistry }

// Describe sets the help text rendered in the Prometheus exposition for a
// family. Safe to call before or after the family's first series exists.
func (r *Registry) Describe(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		f.help = help
		return
	}
	if r.pendingHelp == nil {
		r.pendingHelp = map[string]string{}
	}
	r.pendingHelp[name] = help
}

func (r *Registry) getFamily(name string, k kind, buckets []float64, create bool) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if ok {
		if f.kind != k {
			panic(fmt.Sprintf("telemetry: %s registered as different metric kind", name))
		}
		return f
	}
	if !create {
		return nil
	}
	f = &family{name: name, kind: k, buckets: buckets, series: map[string]*series{}}
	if help, ok := r.pendingHelp[name]; ok {
		f.help = help
		delete(r.pendingHelp, name)
	}
	r.families[name] = f
	return f
}

func labelKey(pairs []string) string {
	if len(pairs)%2 != 0 {
		panic("telemetry: labels must be name/value pairs")
	}
	return strings.Join(pairs, "\xff")
}

func (f *family) get(pairs []string, make func() any) any {
	key := labelKey(pairs)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: append([]string(nil), pairs...), metric: make()}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s.metric
}

// Counter returns (creating if needed) the counter for name + label pairs.
func (r *Registry) Counter(name string, labelPairs ...string) *Counter {
	f := r.getFamily(name, kindCounter, nil, true)
	return f.get(labelPairs, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns (creating if needed) the gauge for name + label pairs.
func (r *Registry) Gauge(name string, labelPairs ...string) *Gauge {
	f := r.getFamily(name, kindGauge, nil, true)
	return f.get(labelPairs, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns (creating if needed) the histogram for name + label
// pairs. Bounds come from FamilyBuckets when the family has an override,
// DefBuckets otherwise.
func (r *Registry) Histogram(name string, labelPairs ...string) *Histogram {
	bounds := DefBuckets
	if b, ok := FamilyBuckets[name]; ok {
		bounds = b
	}
	return r.HistogramBuckets(name, bounds, labelPairs...)
}

// HistogramBuckets is Histogram with explicit bucket bounds. Bounds are
// fixed by the first registration of the family; later calls reuse them.
func (r *Registry) HistogramBuckets(name string, bounds []float64, labelPairs ...string) *Histogram {
	f := r.getFamily(name, kindHistogram, bounds, true)
	return f.get(labelPairs, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// SumCounters sums every counter series of the family whose labels include
// all the given name/value pairs (subset match; no pairs sums the whole
// family). Families that are not counters, or do not exist, sum to 0. The
// SLO watchdog uses it to collapse the per-platform dimension of the
// request counters into one per-route total.
func (r *Registry) SumCounters(name string, labelPairs ...string) int64 {
	f := r.family(name)
	if f == nil || f.kind != kindCounter {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var total int64
	for _, s := range f.series {
		if labelsInclude(s.labels, labelPairs) {
			if c, ok := s.metric.(*Counter); ok {
				total += c.Value()
			}
		}
	}
	return total
}

// labelsInclude reports whether the ordered label pairs contain every
// wanted name/value pair.
func labelsInclude(labels, want []string) bool {
	for i := 0; i+1 < len(want); i += 2 {
		found := false
		for j := 0; j+1 < len(labels); j += 2 {
			if labels[j] == want[i] && labels[j+1] == want[i+1] {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// familyNames returns registered family names, sorted (stable exposition).
func (r *Registry) familyNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.families))
	for name := range r.families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (r *Registry) family(name string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.families[name]
}

// walk visits every series of every family in deterministic order.
func (r *Registry) walk(visit func(f *family, labels []string, metric any)) {
	for _, name := range r.familyNames() {
		f := r.family(name)
		if f == nil {
			continue
		}
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		ser := make([]*series, 0, len(keys))
		for _, k := range keys {
			ser = append(ser, f.series[k])
		}
		f.mu.Unlock()
		for _, s := range ser {
			visit(f, s.labels, s.metric)
		}
	}
}
