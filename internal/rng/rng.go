// Package rng provides a deterministic, splittable pseudo-random number
// generator used throughout the reproduction. Every experiment in the paper
// harness derives its randomness from a single seed through named splits, so
// any table or figure can be regenerated bit-for-bit.
//
// The core generator is xoshiro256**, seeded via SplitMix64, following the
// reference implementations by Blackman and Vigna. It is not cryptographically
// secure; it is fast, well distributed, and reproducible, which is what a
// measurement harness needs.
package rng

import (
	"hash/fnv"
	"math"
)

// RNG is a deterministic random number generator. The zero value is not
// usable; construct with New or Split.
type RNG struct {
	s [4]uint64
}

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used for seeding so that nearby seeds produce unrelated streams.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro256** must not be seeded with all zeros; SplitMix64 of any
	// seed cannot produce four zero outputs, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split derives an independent generator from the current one and a name.
// The parent state is not consumed: splitting with the same name twice yields
// the same child, which makes experiment sub-streams addressable.
func (r *RNG) Split(name string) *RNG {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return New(r.s[0] ^ r.s[2] ^ h.Sum64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless method would be faster; modulo bias is
	// negligible for the n values used here but we still reject to be exact.
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Normal returns a normal variate with the given mean and standard deviation.
func (r *RNG) Normal(mean, std float64) float64 {
	return mean + std*r.NormFloat64()
}

// Perm returns a random permutation of [0, n) via Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly reorders n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.Float64() < p }

// Exponential returns an exponential variate with the given rate.
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential with non-positive rate")
	}
	return -math.Log(1-r.Float64()) / rate
}

// Uniform returns a uniform variate in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Choice returns a uniformly random index weighted by the non-negative
// weights. It panics if weights is empty or sums to zero.
func (r *RNG) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		total += w
	}
	if total == 0 || len(weights) == 0 {
		panic("rng: Choice with zero total weight")
	}
	x := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if x < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Sample returns k distinct indices drawn uniformly from [0, n) in random
// order. It panics if k > n.
func (r *RNG) Sample(n, k int) []int {
	if k > n {
		panic("rng: Sample with k > n")
	}
	p := r.Perm(n)
	return p[:k]
}
