package rng

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs in 100 draws", same)
	}
}

func TestSplitAddressable(t *testing.T) {
	r := New(7)
	a := r.Split("experiment-a")
	a2 := r.Split("experiment-a")
	b := r.Split("experiment-b")
	if a.Uint64() != a2.Uint64() {
		t.Fatal("same-name splits differ")
	}
	if a.Uint64() == b.Uint64() {
		t.Fatal("different-name splits collide")
	}
}

func TestSplitDoesNotConsumeParent(t *testing.T) {
	r := New(9)
	r2 := New(9)
	_ = r.Split("x")
	if r.Uint64() != r2.Uint64() {
		t.Fatal("Split consumed parent state")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(6)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	expect := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expect) > 5*math.Sqrt(expect) {
			t.Fatalf("bucket %d count %d too far from %v", i, c, expect)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(8)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestNormalScaling(t *testing.T) {
	r := New(10)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Normal(5, 2)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.05 {
		t.Fatalf("Normal(5,2) mean %v", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		sorted := append([]int(nil), p...)
		sort.Ints(sorted)
		for i, v := range sorted {
			if v != i {
				t.Fatalf("Perm(%d) missing %d", n, i)
			}
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(12)
	s := r.Sample(20, 10)
	if len(s) != 10 {
		t.Fatalf("Sample returned %d items", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 20 {
			t.Fatalf("sample value %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate sample value %d", v)
		}
		seen[v] = true
	}
}

func TestSamplePanicsWhenKTooLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Sample(3, 4)
}

func TestChoiceWeighted(t *testing.T) {
	r := New(13)
	const draws = 100000
	counts := [3]int{}
	for i := 0; i < draws; i++ {
		counts[r.Choice([]float64{1, 2, 7})]++
	}
	if f := float64(counts[2]) / draws; math.Abs(f-0.7) > 0.02 {
		t.Fatalf("weight-7 bucket frequency %v, want ~0.7", f)
	}
	if f := float64(counts[0]) / draws; math.Abs(f-0.1) > 0.02 {
		t.Fatalf("weight-1 bucket frequency %v, want ~0.1", f)
	}
}

func TestChoicePanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Choice([]float64{0, 0})
}

func TestExponentialMean(t *testing.T) {
	r := New(14)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exponential(2)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Exponential(2) mean %v, want ~0.5", mean)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(15)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Uniform(-3,7) = %v", v)
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(16)
	xs := []int{1, 2, 3, 4, 5, 6}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sort.Ints(xs)
	for i, v := range xs {
		if v != i+1 {
			t.Fatal("shuffle lost an element")
		}
	}
}

// Property: Intn output is always within bounds, for arbitrary seeds and sizes.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Perm always yields a valid permutation.
func TestQuickPermValid(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n % 64)
		p := New(seed).Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: splits with distinct names are independent of split order.
func TestQuickSplitOrderIndependent(t *testing.T) {
	f := func(seed uint64) bool {
		r1 := New(seed)
		r2 := New(seed)
		a1 := r1.Split("a")
		_ = r1.Split("b")
		_ = r2.Split("b")
		a2 := r2.Split("a")
		return a1.Uint64() == a2.Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}
