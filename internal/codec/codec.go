// Package codec holds the little-endian binary primitives shared by the
// durable artifact formats in internal/store (the MLDS dataset layout and
// the MLMF fitted-model layout) and by the per-package model marshalers
// that feed them. It is a leaf package — no imports from this repo — so
// classifiers, pipeline, preprocess, featsel and platforms can all encode
// their fitted state without creating an import cycle with the store.
//
// The decoding discipline mirrors internal/wire: every variable-length
// read takes an explicit element cap, counts are validated against both
// the cap and the bytes actually present before anything is allocated, and
// every failure is a sticky error on the Reader — corrupt or truncated
// input returns ErrCorrupt-wrapped errors, never panics, and never
// allocates more than the delivered bytes justify.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrCorrupt is wrapped by every decode error so callers can classify
// malformed artifacts with errors.Is.
var ErrCorrupt = errors.New("codec: corrupt data")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Append helpers build payloads by appending to a byte slice, the same
// shape as the wire package's frame builders.

// AppendU8 appends one byte.
func AppendU8(b []byte, v uint8) []byte { return append(b, v) }

// AppendU32 appends a little-endian uint32.
func AppendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

// AppendU64 appends a little-endian uint64.
func AppendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// AppendI64 appends a little-endian int64 (two's complement).
func AppendI64(b []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(v))
}

// AppendF64 appends a little-endian IEEE-754 float64. The bit pattern is
// preserved exactly: NaN payloads, ±Inf and -0 round-trip.
func AppendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// AppendBool appends a bool as one byte.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendString appends a u32 length prefix and the raw bytes.
func AppendString(b []byte, s string) []byte {
	b = AppendU32(b, uint32(len(s)))
	return append(b, s...)
}

// AppendF64s appends a u32 count prefix and the values.
func AppendF64s(b []byte, v []float64) []byte {
	b = AppendU32(b, uint32(len(v)))
	for _, x := range v {
		b = AppendF64(b, x)
	}
	return b
}

// AppendInts appends a u32 count prefix and the values as int64.
func AppendInts(b []byte, v []int) []byte {
	b = AppendU32(b, uint32(len(v)))
	for _, x := range v {
		b = AppendI64(b, int64(x))
	}
	return b
}

// Reader decodes a payload built with the Append helpers. Errors are
// sticky: after the first failure every read returns zero values and Err
// reports the original cause, so decoders can run a straight-line sequence
// of reads and check once at the end.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader wraps a fully materialized payload. Callers verify any
// checksum before handing bytes here — the Reader validates structure,
// not integrity.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining reports how many bytes are left to read.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// fail records the first error.
func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = corruptf(format, args...)
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.Remaining() < n {
		r.fail("need %d bytes at offset %d, have %d", n, r.off, r.Remaining())
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	s := r.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	s := r.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads a little-endian IEEE-754 float64, bit-exact.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads one byte as a bool; any nonzero value is true.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// count reads a u32 count prefix and validates it against the element cap
// and the bytes actually remaining (at elemSize bytes per element), so a
// forged count can never drive an allocation past the delivered payload.
func (r *Reader) count(max, elemSize int) int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if n < 0 || n > max {
		r.fail("count %d exceeds limit %d", n, max)
		return 0
	}
	if elemSize > 0 && n*elemSize > r.Remaining() {
		r.fail("count %d needs %d bytes, have %d", n, n*elemSize, r.Remaining())
		return 0
	}
	return n
}

// String reads a length-prefixed string of at most max bytes.
func (r *Reader) String(max int) string {
	n := r.count(max, 1)
	s := r.take(n)
	if s == nil {
		return ""
	}
	return string(s)
}

// F64s reads a count-prefixed float64 slice of at most max elements.
// A zero count returns nil, matching what AppendF64s(nil) wrote.
func (r *Reader) F64s(max int) []float64 {
	n := r.count(max, 8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.F64()
	}
	return out
}

// Ints reads a count-prefixed int slice of at most max elements.
func (r *Reader) Ints(max int) []int {
	n := r.count(max, 8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(r.I64())
	}
	return out
}

// Count reads a bare u32 count prefix validated against max and the
// remaining payload at elemSize bytes per element. Decoders use it for
// nested structures (rows of a matrix, levels of a DAG) where the elements
// are not a flat primitive slice.
func (r *Reader) Count(max, elemSize int) int { return r.count(max, elemSize) }

// Fail poisons the reader with a corrupt-data error; decoders call it when
// a structurally valid value is semantically out of range.
func (r *Reader) Fail(format string, args ...any) { r.fail(format, args...) }

// Expect fails the reader unless the next byte equals want; used for
// structure tags.
func (r *Reader) Expect(want uint8, what string) {
	got := r.U8()
	if r.err == nil && got != want {
		r.fail("%s: tag %d, want %d", what, got, want)
	}
}
