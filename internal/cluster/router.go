package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mlaasbench/internal/service"
	"mlaasbench/internal/telemetry"
)

// Router is the cluster front end: it owns the public dataset/model id
// space, consistent-hashes every model onto its R ring owners, and
// proxies the MLaaS API onto the replica fleet with health-aware
// failover. Bodies cross the router verbatim — a binary-frame predict is
// relayed as raw bytes, never decoded or re-encoded — so the PR 7 wire
// path stays binary hop-to-hop.
//
// Ids are the router's, not the replicas': each replica numbers datasets
// and models with its own local counter, so the router keeps a
// public-id → per-replica-id map and lazily provisions any owner that is
// missing an artifact (a late joiner, a restarted replica) by replaying
// the stored upload/train request. Training is deterministic, so a
// replayed train produces the same fitted model the original did.
type Router struct {
	ring     *Ring
	replicas []*replicaState // index-aligned with ring.Members()
	byName   map[string]*replicaState

	httpc        *http.Client
	reg          *telemetry.Registry
	logf         func(format string, args ...any)
	breakFails   int
	breakCool    time.Duration
	probeTimeout time.Duration
	started      time.Time

	mu       sync.RWMutex
	nextID   int
	datasets map[string]*routedDataset // key: platform/publicID
	models   map[string]*routedModel   // key: platform/publicID
}

// routedDataset is the router's durable record of one upload: the
// replayable body plus the per-replica remote ids it resolved to.
type routedDataset struct {
	platform    string
	body        []byte
	contentType string
	samples     int
	columns     int

	mu     sync.Mutex
	remote map[string]string // replica name -> remote dataset id
}

// routedModel is the router's durable record of one train request. The
// ring key fixes the owner set; remote maps each owner to its local
// model id.
type routedModel struct {
	platform  string
	datasetID string // public dataset id
	train     service.TrainRequest
	key       string
	owners    []string

	mu     sync.Mutex
	remote map[string]string // replica name -> remote model id
}

// Option configures a Router.
type Option func(*Router)

// WithRegistry redirects router metrics into reg (default: a fresh
// isolated registry).
func WithRegistry(reg *telemetry.Registry) Option { return func(rt *Router) { rt.reg = reg } }

// WithLogger sets the router's log function (default: silent).
func WithLogger(logf func(format string, args ...any)) Option {
	return func(rt *Router) { rt.logf = logf }
}

// WithReplication sets R, the owner count per model key.
func WithReplication(r int) Option {
	return func(rt *Router) { rt.ring = NewRing(rt.ring.Members(), rt.ring.vnodes, r) }
}

// WithVirtualNodes sets the virtual nodes per ring member.
func WithVirtualNodes(v int) Option {
	return func(rt *Router) { rt.ring = NewRing(rt.ring.Members(), v, rt.ring.replication) }
}

// WithBreaker tunes the per-replica circuit breaker.
func WithBreaker(failures int, cooldown time.Duration) Option {
	return func(rt *Router) { rt.breakFails, rt.breakCool = failures, cooldown }
}

// WithProbeTimeout bounds one health probe.
func WithProbeTimeout(d time.Duration) Option { return func(rt *Router) { rt.probeTimeout = d } }

// WithHTTPClient replaces the proxy HTTP client (connection pool tuning).
func WithHTTPClient(c *http.Client) Option { return func(rt *Router) { rt.httpc = c } }

// NewRouter builds a router over the given replica base URLs. The URLs
// are the ring member identities: the same fleet list yields the same
// key→owner assignment in every process.
func NewRouter(replicaURLs []string, opts ...Option) (*Router, error) {
	if len(replicaURLs) == 0 {
		return nil, fmt.Errorf("cluster: no replicas")
	}
	names := make([]string, len(replicaURLs))
	for i, u := range replicaURLs {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			return nil, fmt.Errorf("cluster: empty replica URL at index %d", i)
		}
		names[i] = u
	}
	rt := &Router{
		ring:         NewRing(names, 0, 0),
		byName:       make(map[string]*replicaState, len(names)),
		httpc:        &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64, MaxIdleConns: 256, IdleConnTimeout: 90 * time.Second}},
		reg:          telemetry.NewRegistry(),
		logf:         func(string, ...any) {},
		breakFails:   DefaultBreakerFailures,
		breakCool:    DefaultBreakerCooldown,
		probeTimeout: DefaultProbeTimeout,
		started:      time.Now(),
		datasets:     map[string]*routedDataset{},
		models:       map[string]*routedModel{},
	}
	for _, o := range opts {
		o(rt)
	}
	if len(rt.ring.Members()) != len(names) {
		return nil, fmt.Errorf("cluster: duplicate replica URLs")
	}
	for _, m := range rt.ring.Members() {
		rs := &replicaState{name: m, base: m}
		rt.replicas = append(rt.replicas, rs)
		rt.byName[m] = rs
	}
	rt.describeMetrics()
	return rt, nil
}

func (rt *Router) describeMetrics() {
	rt.reg.Describe(telemetry.RouterRequestsTotal, "Requests proxied by the cluster router, by replica and outcome.")
	rt.reg.Describe(telemetry.RouterReplicaInFlight, "Requests a replica is serving through the router right now.")
	rt.reg.Describe(telemetry.RouterReplicaStateChangesTotal, "Replica routable-state transitions (ring rebalance events), by replica and state.")
	rt.reg.Describe(telemetry.RouterFailoversTotal, "Proxy attempts that failed over to another ring owner, by route.")
	rt.reg.Describe(telemetry.RouterRepairsTotal, "Datasets/models lazily re-provisioned onto an owner that was missing them, by kind.")
}

// Registry returns the registry the router records into.
func (rt *Router) Registry() *telemetry.Registry { return rt.reg }

// Ring returns the router's consistent-hash ring.
func (rt *Router) Ring() *Ring { return rt.ring }

// ModelOwners reports the ring owner set of a routed model, primary
// first — the operator's answer to "which replicas hold this model".
// Nil for unknown models.
func (rt *Router) ModelOwners(platform, modelID string) []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if rm := rt.models[platform+"/"+modelID]; rm != nil {
		return append([]string(nil), rm.owners...)
	}
	return nil
}

// Handler returns the router's HTTP handler: the public MLaaS API
// proxied onto the fleet, plus the router's own /metrics and a fleet
// /healthz.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/platforms", rt.passthrough("list_platforms"))
	mux.HandleFunc("GET /v1/platforms/{platform}/surface", rt.passthrough("surface"))
	mux.HandleFunc("POST /v1/platforms/{platform}/datasets", rt.withSpan("upload", rt.handleUpload))
	mux.HandleFunc("POST /v1/platforms/{platform}/models", rt.withSpan("train", rt.handleTrain))
	mux.HandleFunc("POST /v1/platforms/{platform}/models/{model}/predictions", rt.withSpan("predict", rt.handlePredict))
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		rt.reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		rt.writeJSON(w, http.StatusOK, rt.reg.Snapshot())
	})
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	return mux
}

// withSpan wraps a handler in a "router:<route>" span that joins the
// caller's trace when a Traceparent header is present, and stamps the
// outbound context so proxied hops carry the router's span as parent —
// the client→router→replica stitch.
func (rt *Router) withSpan(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get(telemetry.RequestIDHeader)
		if reqID == "" {
			reqID = telemetry.NewRequestID()
		}
		w.Header().Set(telemetry.RequestIDHeader, reqID)
		ctx := telemetry.WithRequestID(r.Context(), reqID)
		ctx = telemetry.WithRegistry(ctx, rt.reg)
		if tid, sid, ok := telemetry.ParseTraceParent(r.Header.Get(telemetry.TraceParentHeader)); ok {
			ctx = telemetry.WithRemoteParent(ctx, tid, sid)
		}
		ctx, span := telemetry.StartSpan(ctx, "router:"+route)
		span.SetAttr("route", route).SetAttr("request_id", reqID)
		w.Header().Set(telemetry.TraceParentHeader, telemetry.FormatTraceParent(span.TraceID(), span.SpanID()))
		// The replica hop carries the router span as remote parent.
		r.Header.Set(telemetry.TraceParentHeader, telemetry.FormatTraceParent(span.TraceID(), span.SpanID()))
		r.Header.Set(telemetry.RequestIDHeader, reqID)
		h(w, r.WithContext(ctx))
		span.End()
	}
}

// RouterHealth is the router's GET /healthz body: fleet state.
type RouterHealth struct {
	Status            string          `json:"status"`
	UptimeSeconds     float64         `json:"uptime_seconds"`
	Replicas          []ReplicaHealth `json:"replicas"`
	AvailableReplicas int             `json:"available_replicas"`
	Replication       int             `json:"replication"`
	VirtualNodes      int             `json:"virtual_nodes"`
	Datasets          int             `json:"datasets"`
	Models            int             `json:"models"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	now := time.Now()
	out := RouterHealth{
		Status:        "ok",
		UptimeSeconds: time.Since(rt.started).Seconds(),
		Replication:   rt.ring.Replication(),
		VirtualNodes:  rt.ring.vnodes,
	}
	for _, rs := range rt.replicas {
		h := rs.snapshot(now)
		out.Replicas = append(out.Replicas, h)
		if h.Up && h.Ready && !h.BreakerOpen {
			out.AvailableReplicas++
		}
	}
	if out.AvailableReplicas == 0 {
		out.Status = "degraded"
	}
	rt.mu.RLock()
	out.Datasets, out.Models = len(rt.datasets), len(rt.models)
	rt.mu.RUnlock()
	rt.writeJSON(w, http.StatusOK, out)
}

// routerError is the router's error envelope, shaped like the service's
// so clients parse both identically.
type routerError struct {
	Error     string `json:"error"`
	Code      string `json:"code,omitempty"`
	RequestID string `json:"request_id,omitempty"`
}

func (rt *Router) writeJSON(w http.ResponseWriter, code int, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(buf.Bytes())
}

func (rt *Router) fail(w http.ResponseWriter, r *http.Request, status int, code, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	reqID := telemetry.RequestID(r.Context())
	rt.logf("router: %d %s (request %s)", status, msg, reqID)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	rt.writeJSON(w, status, routerError{Error: msg, Code: code, RequestID: reqID})
}

// available returns the replicas currently eligible for traffic, in ring
// member order.
func (rt *Router) availableReplicas() []*replicaState {
	now := time.Now()
	out := make([]*replicaState, 0, len(rt.replicas))
	for _, rs := range rt.replicas {
		if rs.available(now) {
			out = append(out, rs)
		}
	}
	return out
}

// proxied is one relayed replica response, body fully read so the
// router can fail over when a replica dies mid-response.
type proxied struct {
	status int
	header http.Header
	body   []byte
}

// proxy relays one request to a replica and reads the full response.
// Any transport error — including a connection that dies between the
// request and the end of the response body — returns an error so the
// caller can fail over to the next owner.
func (rt *Router) proxy(r *http.Request, rs *replicaState, method, path, contentType string, body []byte) (*proxied, error) {
	req, err := http.NewRequestWithContext(r.Context(), method, rs.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept := r.Header.Get("Accept"); accept != "" {
		req.Header.Set("Accept", accept)
	}
	req.Header.Set(telemetry.RequestIDHeader, r.Header.Get(telemetry.RequestIDHeader))
	req.Header.Set(telemetry.TraceParentHeader, r.Header.Get(telemetry.TraceParentHeader))

	inFlight := rt.reg.Gauge(telemetry.RouterReplicaInFlight, "replica", rs.name)
	inFlight.Inc()
	rs.inFlight.Add(1)
	defer func() {
		inFlight.Dec()
		rs.inFlight.Add(-1)
	}()

	resp, err := rt.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("read response: %w", err)
	}
	return &proxied{status: resp.StatusCode, header: resp.Header, body: raw}, nil
}

// relay writes a proxied replica response to the client verbatim.
func relay(w http.ResponseWriter, p *proxied) {
	if ct := p.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := p.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(p.status)
	_, _ = w.Write(p.body)
}

// outcomeOf maps a relayed status to the requests_total outcome label.
func outcomeOf(status int) string {
	switch {
	case status < 400:
		return "ok"
	case status < 500:
		return "client_error"
	default:
		return "error"
	}
}

// passthrough proxies a read-only route to the first available replica
// (any replica can answer — the platform directory is identical
// everywhere), failing over through the fleet.
func (rt *Router) passthrough(route string) http.HandlerFunc {
	return rt.withSpan(route, func(w http.ResponseWriter, r *http.Request) {
		for _, rs := range rt.availableReplicas() {
			p, err := rt.proxy(r, rs, http.MethodGet, r.URL.Path, "", nil)
			if err != nil || p.status >= 500 {
				rt.noteFailure(rs, route, err)
				continue
			}
			rt.noteSuccess(rs, p.status)
			relay(w, p)
			return
		}
		rt.fail(w, r, http.StatusServiceUnavailable, "no_replica", "no replica available for %s", route)
	})
}

// noteSuccess records a successful (or client-errored: the replica is
// healthy, the request was bad) proxy outcome.
func (rt *Router) noteSuccess(rs *replicaState, status int) {
	rs.recordSuccess()
	rt.reg.Counter(telemetry.RouterRequestsTotal, "replica", rs.name, "outcome", outcomeOf(status)).Inc()
}

// noteFailure records a failed proxy attempt and opens the breaker at
// the threshold.
func (rt *Router) noteFailure(rs *replicaState, route string, err error) {
	rt.reg.Counter(telemetry.RouterRequestsTotal, "replica", rs.name, "outcome", "error").Inc()
	rt.reg.Counter(telemetry.RouterFailoversTotal, "route", route).Inc()
	if rs.recordFailure(rt.breakFails, rt.breakCool) {
		rt.reg.Counter(telemetry.RouterReplicaStateChangesTotal, "replica", rs.name, "state", "breaker_open").Inc()
		rt.logf("router: breaker open for %s", rs.name)
	}
	if err != nil {
		rt.logf("router: %s attempt on %s failed: %v", route, rs.name, err)
	}
}

// handleUpload buffers the dataset body, assigns the public id, and
// pushes the dataset to every currently-available replica. Replicas that
// miss the broadcast (down, warming, joined later) are repaired lazily
// by ensureDataset on first need.
func (rt *Router) handleUpload(w http.ResponseWriter, r *http.Request) {
	platform := r.PathValue("platform")
	body, err := io.ReadAll(r.Body)
	if err != nil {
		rt.fail(w, r, http.StatusBadRequest, "bad_payload", "read body: %v", err)
		return
	}
	rd := &routedDataset{
		platform:    platform,
		body:        body,
		contentType: r.Header.Get("Content-Type"),
		remote:      map[string]string{},
	}
	var firstResp *proxied
	for _, rs := range rt.availableReplicas() {
		p, err := rt.proxy(r, rs, http.MethodPost, "/v1/platforms/"+platform+"/datasets", rd.contentType, body)
		if err != nil || p.status >= 500 {
			rt.noteFailure(rs, "upload", err)
			continue
		}
		rt.noteSuccess(rs, p.status)
		if p.status != http.StatusCreated {
			// Deterministic rejection (bad dataset, unknown platform):
			// every replica would answer the same — relay the first.
			relay(w, p)
			return
		}
		var ur service.UploadResponse
		if err := json.Unmarshal(p.body, &ur); err != nil {
			rt.noteFailure(rs, "upload", err)
			continue
		}
		rd.remote[rs.name] = ur.ID
		if firstResp == nil {
			firstResp = p
			rd.samples, rd.columns = ur.Samples, ur.Columns
		}
	}
	if firstResp == nil {
		rt.fail(w, r, http.StatusServiceUnavailable, "no_replica", "no replica accepted the dataset")
		return
	}
	rt.mu.Lock()
	rt.nextID++
	id := "ds-" + strconv.Itoa(rt.nextID)
	rt.datasets[platform+"/"+id] = rd
	rt.mu.Unlock()
	rt.writeJSON(w, http.StatusCreated, service.UploadResponse{ID: id, Samples: rd.samples, Columns: rd.columns})
}

// ensureDataset makes sure rs holds rd, replaying the upload if needed,
// and returns the replica-local dataset id.
func (rt *Router) ensureDataset(r *http.Request, rs *replicaState, rd *routedDataset) (string, error) {
	rd.mu.Lock()
	defer rd.mu.Unlock()
	if id, ok := rd.remote[rs.name]; ok {
		return id, nil
	}
	p, err := rt.proxy(r, rs, http.MethodPost, "/v1/platforms/"+rd.platform+"/datasets", rd.contentType, rd.body)
	if err != nil {
		return "", err
	}
	if p.status != http.StatusCreated {
		return "", fmt.Errorf("replica %s rejected dataset replay: http %d", rs.name, p.status)
	}
	var ur service.UploadResponse
	if err := json.Unmarshal(p.body, &ur); err != nil {
		return "", err
	}
	rd.remote[rs.name] = ur.ID
	rt.reg.Counter(telemetry.RouterRepairsTotal, "kind", "dataset").Inc()
	rt.logf("router: repaired dataset (%s, %d samples) onto %s as %s", rd.platform, rd.samples, rs.name, ur.ID)
	return ur.ID, nil
}

// modelRingKey is the ring identity of a model: everything that
// determines the fitted artifact, in the router's public namespace. It
// only needs to be internally consistent — the ring decides placement,
// the replicas decide bytes.
func modelRingKey(platform, datasetID string, req service.TrainRequest) string {
	params := make([]string, 0, len(req.Params))
	for k, v := range req.Params {
		b, _ := json.Marshal(v)
		params = append(params, k+"="+string(b))
	}
	sort.Strings(params)
	return "model/" + platform + "/" + datasetID + "/" + req.Feat + "/" + req.Classifier +
		"/" + strings.Join(params, ",") + "/" + strconv.FormatUint(req.Seed, 10)
}

// handleTrain decodes the train request, picks the model's R ring
// owners, and trains on every available owner. At least one owner must
// hold the model before the router acknowledges it.
func (rt *Router) handleTrain(w http.ResponseWriter, r *http.Request) {
	platform := r.PathValue("platform")
	var req service.TrainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		rt.fail(w, r, http.StatusBadRequest, "bad_payload", "parse json: %v", err)
		return
	}
	rt.mu.RLock()
	rd := rt.datasets[platform+"/"+req.Dataset]
	rt.mu.RUnlock()
	if rd == nil {
		rt.fail(w, r, http.StatusNotFound, "", "unknown dataset %q on %s", req.Dataset, platform)
		return
	}
	rm := &routedModel{
		platform:  platform,
		datasetID: req.Dataset,
		train:     req,
		key:       modelRingKey(platform, req.Dataset, req),
		remote:    map[string]string{},
	}
	rm.owners = rt.ring.Owners(rm.key)

	now := time.Now()
	trained := 0
	for _, owner := range rm.owners {
		rs := rt.byName[owner]
		if !rs.available(now) {
			continue
		}
		p, err := rt.trainOn(r, rs, rm)
		if err != nil {
			rt.noteFailure(rs, "train", err)
			continue
		}
		if p.status != http.StatusCreated {
			// A deterministic rejection (bad config): all owners would
			// reject identically, so relay the replica's verdict as-is.
			rt.noteSuccess(rs, p.status)
			relay(w, p)
			return
		}
		rt.noteSuccess(rs, p.status)
		trained++
	}
	if trained == 0 {
		rt.fail(w, r, http.StatusServiceUnavailable, "no_replica", "no ring owner available to train (owners: %s)", strings.Join(rm.owners, ", "))
		return
	}
	rt.mu.Lock()
	rt.nextID++
	id := "m-" + strconv.Itoa(rt.nextID)
	rt.models[platform+"/"+id] = rm
	rt.mu.Unlock()
	rt.writeJSON(w, http.StatusCreated, service.TrainResponse{ID: id})
}

// trainOn trains rm on one replica (ensuring its dataset first) and
// records the replica-local model id. The returned response is the
// replica's verbatim train response.
func (rt *Router) trainOn(r *http.Request, rs *replicaState, rm *routedModel) (*proxied, error) {
	rt.mu.RLock()
	rd := rt.datasets[rm.platform+"/"+rm.datasetID]
	rt.mu.RUnlock()
	if rd == nil {
		return nil, fmt.Errorf("model's dataset %s/%s is gone", rm.platform, rm.datasetID)
	}
	dsID, err := rt.ensureDataset(r, rs, rd)
	if err != nil {
		return nil, err
	}
	req := rm.train // copy; rewrite the dataset id into the replica's namespace
	req.Dataset = dsID
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	p, err := rt.proxy(r, rs, http.MethodPost, "/v1/platforms/"+rm.platform+"/models", "application/json", body)
	if err != nil {
		return nil, err
	}
	if p.status == http.StatusCreated {
		var tr service.TrainResponse
		if err := json.Unmarshal(p.body, &tr); err != nil {
			return nil, err
		}
		rm.mu.Lock()
		rm.remote[rs.name] = tr.ID
		rm.mu.Unlock()
	}
	return p, nil
}

// ensureModel makes sure rs holds rm's fitted model, replaying the train
// if needed, and returns the replica-local model id.
func (rt *Router) ensureModel(r *http.Request, rs *replicaState, rm *routedModel) (string, error) {
	rm.mu.Lock()
	id, ok := rm.remote[rs.name]
	rm.mu.Unlock()
	if ok {
		return id, nil
	}
	p, err := rt.trainOn(r, rs, rm)
	if err != nil {
		return "", err
	}
	if p.status != http.StatusCreated {
		return "", fmt.Errorf("replica %s rejected train replay: http %d", rs.name, p.status)
	}
	rm.mu.Lock()
	id = rm.remote[rs.name]
	rm.mu.Unlock()
	rt.reg.Counter(telemetry.RouterRepairsTotal, "kind", "model").Inc()
	rt.logf("router: repaired model %s (%s) onto %s as %s", rm.key, rm.platform, rs.name, id)
	return id, nil
}

// handlePredict is the hot path: route the request to the least-loaded
// of the model's ring owners, relay the body bytes verbatim (binary
// frames included — no re-encode), and fail over to the next owner on
// any replica error, including death mid-response. A 4xx is the caller's
// problem and is relayed from the first owner that answers; only replica
// failures (transport errors, 5xx) move on.
//
// Every owner holds the same fitted model (training is deterministic),
// so any of them may serve any predict; ordering the attempt list by
// current in-flight count — join-shortest-queue over the owner set —
// spreads a hot model's load across its R owners and keeps an uneven
// model→primary assignment from bottlenecking the fleet on one replica.
// Ties keep ring order, so an idle fleet still routes predictably.
func (rt *Router) handlePredict(w http.ResponseWriter, r *http.Request) {
	platform := r.PathValue("platform")
	rt.mu.RLock()
	rm := rt.models[platform+"/"+r.PathValue("model")]
	rt.mu.RUnlock()
	if rm == nil {
		rt.fail(w, r, http.StatusNotFound, "", "unknown model %q on %s", r.PathValue("model"), platform)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		rt.fail(w, r, http.StatusBadRequest, "bad_payload", "read body: %v", err)
		return
	}
	contentType := r.Header.Get("Content-Type")

	now := time.Now()
	type candidate struct {
		rs   *replicaState
		load int64
	}
	cands := make([]candidate, 0, len(rm.owners))
	for _, owner := range rm.owners {
		rs := rt.byName[owner]
		if !rs.available(now) {
			continue
		}
		cands = append(cands, candidate{rs, rs.inFlight.Load()})
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].load < cands[j].load })
	attempts := 0
	for _, cand := range cands {
		rs := cand.rs
		attempts++
		remoteID, err := rt.ensureModel(r, rs, rm)
		if err != nil {
			rt.noteFailure(rs, "predict", err)
			continue
		}
		p, err := rt.proxy(r, rs, http.MethodPost,
			"/v1/platforms/"+platform+"/models/"+remoteID+"/predictions", contentType, body)
		if err != nil || p.status >= 500 {
			rt.noteFailure(rs, "predict", err)
			continue
		}
		rt.noteSuccess(rs, p.status)
		relay(w, p)
		return
	}
	rt.fail(w, r, http.StatusServiceUnavailable, "no_replica",
		"no ring owner served the predict (owners: %s, attempted: %d)", strings.Join(rm.owners, ", "), attempts)
}
