// Package cluster turns the single-process MLaaS server into a serving
// fleet: a consistent-hash ring assigns every model key to R replica
// owners, a router proxies the public API onto the fleet with per-replica
// health checking and failover, and the whole thing stays byte-identical
// to a single process — the ring only decides *where* a deterministic
// computation runs, never *what* it computes.
//
// The architecture mirrors what the paper's platforms actually run behind
// their endpoints: a front end that hashes each customer model onto a
// small set of serving nodes so the fitted artifact stays cache-resident
// on exactly those nodes (cache-aware routing), with the satellite /
// storage-node split of systems like storj as the structural template.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring defaults. 128 virtual nodes per member keeps the per-member load
// spread within a few percent of uniform at fleet sizes this repo runs
// (2..16 replicas) while keeping the ring tiny (~2k points at 16 nodes).
const (
	DefaultVirtualNodes = 128
	DefaultReplication  = 2
)

// Ring is an immutable consistent-hash ring over a set of member names.
//
// Determinism is a hard contract: the hash is FNV-1a 64 (spec-fixed, no
// per-process seed), members are sorted before placement, and ties break
// by member order — so the same member set produces byte-identical
// key→owner assignments in every process, on every architecture, on every
// Go version. The golden-file test in ring_test.go pins this. Membership
// changes move only the keys adjacent to the joined/left member's virtual
// nodes (minimal movement), which is the property that makes cache-aware
// routing survive a replica joining or leaving: everyone else's resident
// models stay where they are.
type Ring struct {
	members     []string
	vnodes      int
	replication int
	points      []ringPoint // sorted by hash, ties by member index
}

type ringPoint struct {
	hash uint64
	idx  int // index into members
}

// NewRing places each member on the ring vnodes times and returns the
// ring. Member names are sorted and deduplicated; vnodes and replication
// default when non-positive. Replication is clamped to the member count.
func NewRing(members []string, vnodes, replication int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	if replication <= 0 {
		replication = DefaultReplication
	}
	ms := append([]string(nil), members...)
	sort.Strings(ms)
	ms = dedupe(ms)
	if replication > len(ms) {
		replication = len(ms)
	}
	r := &Ring{
		members:     ms,
		vnodes:      vnodes,
		replication: replication,
		points:      make([]ringPoint, 0, len(ms)*vnodes),
	}
	for i, m := range ms {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hashKey(m + "#" + strconv.Itoa(v)), idx: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].idx < r.points[b].idx
	})
	return r
}

// hashKey is the ring's one hash function, for both virtual nodes and
// keys. FNV-1a 64 is fixed by specification (no randomization, no
// dependence on word size or Go release) but has weak avalanche on the
// short, similar strings ring inputs are made of — "m1#0" vs "m2#0"
// land correlated, which skews member shares by 2-3x. The MurmurHash3
// fmix64 finalizer (fixed constants, equally spec-stable) restores the
// avalanche; measured spread at 128 vnodes is within ~15% of fair.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Members returns the ring's member names in sorted order.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Replication returns the configured owner count per key.
func (r *Ring) Replication() int { return r.replication }

// Owner returns the primary owner of key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	owners := r.OwnersN(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns the key's owner set: the first R distinct members
// encountered walking clockwise from the key's hash. The order is
// meaningful — owners[0] is the primary, the rest are the failover
// sequence — and deterministic for a given member set.
func (r *Ring) Owners(key string) []string { return r.OwnersN(key, r.replication) }

// OwnersN is Owners with an explicit owner count (clamped to the member
// count).
func (r *Ring) OwnersN(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[int]struct{}, n)
	out := make([]string, 0, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, ok := seen[p.idx]; ok {
			continue
		}
		seen[p.idx] = struct{}{}
		out = append(out, r.members[p.idx])
	}
	return out
}

func dedupe(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}
