package cluster_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"mlaasbench/internal/client"
	"mlaasbench/internal/cluster"
	"mlaasbench/internal/dataset"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/rng"
	"mlaasbench/internal/service"
	"mlaasbench/internal/store"
	"mlaasbench/internal/synth"
	"mlaasbench/internal/telemetry"
)

func clusterSplit(t *testing.T) dataset.Split {
	t.Helper()
	ds := synth.GenerateClean(synth.Spec{Name: "cluster", Gen: synth.GenLinear, N: 120, D: 4, Noise: 0.2}, synth.Quick, 1)
	return ds.StratifiedSplit(0.7, rng.New(2))
}

// newFleet starts n in-process replicas and a router over them,
// returning the router's test server and the replica servers (index ==
// ring position is not guaranteed; match by URL).
func newFleet(t *testing.T, n, replication int) (*httptest.Server, *cluster.Router, []*httptest.Server) {
	t.Helper()
	var urls []string
	var reps []*httptest.Server
	for i := 0; i < n; i++ {
		api := service.NewServer(func(string, ...any) {}).WithRegistry(telemetry.NewRegistry())
		srv := httptest.NewServer(api.Handler())
		t.Cleanup(srv.Close)
		reps = append(reps, srv)
		urls = append(urls, srv.URL)
	}
	rt, err := cluster.NewRouter(urls, cluster.WithReplication(replication))
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	return front, rt, reps
}

// TestRouterBinaryPredictMatchesDirect drives the full public API through
// the router on the binary wire codec and checks the predictions are
// byte-identical to a single-process server: the ring decides where the
// deterministic computation runs, never what it computes.
func TestRouterBinaryPredictMatchesDirect(t *testing.T) {
	sp := clusterSplit(t)
	ctx := context.Background()
	cfg := pipeline.Config{Classifier: "logreg", Params: map[string]any{}}

	// Oracle: one plain server, no cluster.
	solo := httptest.NewServer(service.NewServer(func(string, ...any) {}).WithRegistry(telemetry.NewRegistry()).Handler())
	defer solo.Close()
	sc := client.New(solo.URL)
	dsID, err := sc.Upload(ctx, "local", sp.Train)
	if err != nil {
		t.Fatal(err)
	}
	mID, err := sc.Train(ctx, "local", dsID, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sc.Predict(ctx, "local", mID, sp.Test.X)
	if err != nil {
		t.Fatal(err)
	}

	front, rt, _ := newFleet(t, 3, 2)
	c := client.New(front.URL).WithCodec(client.CodecBinary)
	rdsID, err := c.Upload(ctx, "local", sp.Train)
	if err != nil {
		t.Fatal(err)
	}
	rmID, err := c.Train(ctx, "local", rdsID, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.PredictBatched(ctx, "local", rmID, sp.Test.X, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("cluster predictions differ from single-process predictions")
	}
	// The hot path must have reached a replica through the router.
	if n := counterTotal(rt.Registry(), telemetry.RouterRequestsTotal); n == 0 {
		t.Fatal("router proxied no requests")
	}
}

// counterTotal sums a counter family across label sets.
func counterTotal(reg *telemetry.Registry, name string) int64 {
	var total int64
	for _, s := range reg.Snapshot().Counters {
		if s.Name == name {
			total += s.Value
		}
	}
	return total
}

// TestRouterFailoverKillOneOfThree is the acceptance failover drill:
// three replicas, a trained model replicated on two of them, one owner
// killed — every subsequent predict must still succeed, served by the
// surviving owner after the router fails over.
func TestRouterFailoverKillOneOfThree(t *testing.T) {
	sp := clusterSplit(t)
	ctx := context.Background()
	front, rt, reps := newFleet(t, 3, 2)
	byURL := map[string]*httptest.Server{}
	for _, r := range reps {
		byURL[r.URL] = r
	}

	c := client.New(front.URL).WithCodec(client.CodecBinary)
	dsID, err := c.Upload(ctx, "local", sp.Train)
	if err != nil {
		t.Fatal(err)
	}
	mID, err := c.Train(ctx, "local", dsID, pipeline.Config{Classifier: "logreg", Params: map[string]any{}}, 7)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.Predict(ctx, "local", mID, sp.Test.X)
	if err != nil {
		t.Fatal(err)
	}

	// Kill the model's PRIMARY owner — the replica the router would route
	// to first — so every subsequent predict must fail over to the
	// surviving owner.
	owners := rt.ModelOwners("local", mID)
	if len(owners) != 2 {
		t.Fatalf("model owners %v, want 2", owners)
	}
	victim := owners[0]
	byURL[victim].CloseClientConnections()
	byURL[victim].Close()

	for i := 0; i < 50; i++ {
		got, err := c.Predict(ctx, "local", mID, sp.Test.X)
		if err != nil {
			t.Fatalf("predict %d with one replica down: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("predict %d: labels changed after failover", i)
		}
	}
	if n := counterTotal(rt.Registry(), telemetry.RouterFailoversTotal); n == 0 {
		t.Fatal("primary owner died but the failover counter never moved")
	}
	resp, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h cluster.RouterHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.AvailableReplicas == 3 {
		t.Fatal("router still counts the killed replica available")
	}
}

// TestRouterLazyRepair proves a replica that missed a dataset and model
// (down at upload/train time) gets them replayed on first need: the
// healthy owner dies, the stale owner heals itself, and the predict
// still answers with identical labels.
func TestRouterLazyRepair(t *testing.T) {
	sp := clusterSplit(t)
	ctx := context.Background()

	// Replica B hides behind a gate that 503s everything until opened —
	// to the prober and router it is down, so uploads and trains miss it.
	apiA := service.NewServer(func(string, ...any) {}).WithRegistry(telemetry.NewRegistry())
	srvA := httptest.NewServer(apiA.Handler())
	defer srvA.Close()
	apiB := service.NewServer(func(string, ...any) {}).WithRegistry(telemetry.NewRegistry())
	var bOpen atomic.Bool
	srvB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !bOpen.Load() {
			http.Error(w, "starting", http.StatusServiceUnavailable)
			return
		}
		apiB.Handler().ServeHTTP(w, r)
	}))
	defer srvB.Close()

	rt, err := cluster.NewRouter([]string{srvA.URL, srvB.URL}, cluster.WithReplication(2))
	if err != nil {
		t.Fatal(err)
	}
	stop := rt.StartProber(50 * time.Millisecond)
	defer stop()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	waitAvailable(t, front.URL, 1)

	c := client.New(front.URL)
	dsID, err := c.Upload(ctx, "local", sp.Train)
	if err != nil {
		t.Fatal(err)
	}
	mID, err := c.Train(ctx, "local", dsID, pipeline.Config{Classifier: "logreg", Params: map[string]any{}}, 7)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.Predict(ctx, "local", mID, sp.Test.X)
	if err != nil {
		t.Fatal(err)
	}

	// B comes up; A dies. The only owner left never saw the dataset.
	bOpen.Store(true)
	waitAvailable(t, front.URL, 2)
	srvA.CloseClientConnections()
	srvA.Close()

	got, err := c.Predict(ctx, "local", mID, sp.Test.X)
	if err != nil {
		t.Fatalf("predict after repair: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("repaired replica served different labels")
	}
	if n := counterTotal(rt.Registry(), telemetry.RouterRepairsTotal); n < 2 {
		t.Fatalf("expected dataset+model repairs, counter %d", n)
	}
}

// TestRouterExcludesNotReadyReplica checks the readiness integration:
// a replica whose boot warm scan has not finished reports ready:false
// and stays out of rotation until WarmFromStore completes.
func TestRouterExcludesNotReadyReplica(t *testing.T) {
	readyAPI := service.NewServer(func(string, ...any) {}).WithRegistry(telemetry.NewRegistry())
	readySrv := httptest.NewServer(readyAPI.Handler())
	defer readySrv.Close()

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	warmAPI := service.NewServer(func(string, ...any) {}).WithRegistry(telemetry.NewRegistry()).WithStore(st)
	warmSrv := httptest.NewServer(warmAPI.Handler())
	defer warmSrv.Close()

	rt, err := cluster.NewRouter([]string{readySrv.URL, warmSrv.URL}, cluster.WithReplication(1))
	if err != nil {
		t.Fatal(err)
	}
	stop := rt.StartProber(30 * time.Millisecond)
	defer stop()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	waitAvailable(t, front.URL, 1) // warming replica excluded
	if _, err := warmAPI.WarmFromStore(); err != nil {
		t.Fatal(err)
	}
	waitAvailable(t, front.URL, 2) // readiness flip admits it
}

// waitAvailable polls the router /healthz until it reports exactly n
// available replicas.
func waitAvailable(t *testing.T, frontURL string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(frontURL + "/healthz")
		if err == nil {
			var h cluster.RouterHealth
			err = json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			if err == nil && h.AvailableReplicas == n {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("router never reported %d available replicas", n)
}
