package cluster

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the ring golden file")

// TestRingGolden pins the ring's key→owner assignment to a committed
// golden file: the same member set must produce byte-identical
// assignments in every process, on every architecture, on every Go
// version. If this test fails after an intentional ring change, the
// change broke cluster-wide cache residency for every deployed fleet —
// regenerate with -update only if that is understood.
func TestRingGolden(t *testing.T) {
	type golden struct {
		Members     []string            `json:"members"`
		VNodes      int                 `json:"vnodes"`
		Replication int                 `json:"replication"`
		Owners      map[string][]string `json:"owners"`
	}
	members := []string{
		"http://replica-a:8080",
		"http://replica-b:8080",
		"http://replica-c:8080",
		"http://replica-d:8080",
		"http://replica-e:8080",
	}
	ring := NewRing(members, DefaultVirtualNodes, 2)
	got := golden{Members: members, VNodes: DefaultVirtualNodes, Replication: 2, Owners: map[string][]string{}}
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("model/platform-%d/ds-%d/logreg/lambda=%d/%d", i%7, i%11, i%3, i)
		got.Owners[key] = ring.Owners(key)
	}

	path := filepath.Join("testdata", "ring_golden.json")
	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to generate): %v", err)
	}
	var want golden
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		for k, w := range want.Owners {
			if g := got.Owners[k]; !reflect.DeepEqual(g, w) {
				t.Errorf("key %s: owners %v, golden %v", k, g, w)
			}
		}
		t.Fatal("ring assignment diverged from golden file")
	}
}

// TestRingDeterministicAcrossOrder checks that member order at
// construction is irrelevant: two routers given the same fleet in a
// different order must agree on every assignment.
func TestRingDeterministicAcrossOrder(t *testing.T) {
	a := NewRing([]string{"m1", "m2", "m3", "m4"}, 64, 2)
	b := NewRing([]string{"m4", "m2", "m1", "m3"}, 64, 2)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if ga, gb := a.Owners(key), b.Owners(key); !reflect.DeepEqual(ga, gb) {
			t.Fatalf("key %s: %v vs %v", key, ga, gb)
		}
	}
}

// TestRingMinimalMovementJoin checks the consistent-hashing contract: when
// one member joins an N-1 fleet, only keys that now belong to the joiner
// move (everyone else's assignment is untouched), and the moved share is
// close to the fair 1/N — the property that keeps the fleet's resident
// models resident through a scale-up.
func TestRingMinimalMovementJoin(t *testing.T) {
	const keys = 10000
	members := []string{"m1", "m2", "m3", "m4", "m5", "m6", "m7", "m8"}
	before := NewRing(members, DefaultVirtualNodes, 1)
	after := NewRing(append(members, "m9"), DefaultVirtualNodes, 1)

	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		ob, oa := before.Owner(key), after.Owner(key)
		if ob != oa {
			moved++
			if oa != "m9" {
				t.Fatalf("key %s moved %s -> %s, not to the joiner", key, ob, oa)
			}
		}
	}
	fair := int(math.Ceil(float64(keys) / float64(len(members)+1)))
	slack := fair / 2 // vnode placement variance at 128 vnodes stays well inside 50%
	if moved > fair+slack {
		t.Fatalf("join moved %d keys, want <= %d (fair %d + slack %d)", moved, fair+slack, fair, slack)
	}
	if moved == 0 {
		t.Fatal("join moved no keys — the joiner owns nothing")
	}
	t.Logf("join: moved %d/%d keys (fair share %d)", moved, keys, fair)
}

// TestRingMinimalMovementLeave checks the inverse: when one member
// leaves, only its keys move, redistributing over the survivors.
func TestRingMinimalMovementLeave(t *testing.T) {
	const keys = 10000
	members := []string{"m1", "m2", "m3", "m4", "m5", "m6"}
	before := NewRing(members, DefaultVirtualNodes, 1)
	after := NewRing(members[:len(members)-1], DefaultVirtualNodes, 1) // m6 leaves

	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		ob, oa := before.Owner(key), after.Owner(key)
		if ob != oa {
			moved++
			if ob != "m6" {
				t.Fatalf("key %s moved %s -> %s but %s did not leave", key, ob, oa, ob)
			}
		}
	}
	fair := int(math.Ceil(float64(keys) / float64(len(members))))
	slack := fair / 2
	if moved > fair+slack {
		t.Fatalf("leave moved %d keys, want <= %d", moved, fair+slack)
	}
	t.Logf("leave: moved %d/%d keys (fair share %d)", moved, keys, fair)
}

// TestRingOwnersDistinct checks the replication invariant: R owners are
// R distinct members, in deterministic failover order, clamped to the
// fleet size.
func TestRingOwnersDistinct(t *testing.T) {
	ring := NewRing([]string{"a", "b", "c"}, 32, 2)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		owners := ring.Owners(key)
		if len(owners) != 2 {
			t.Fatalf("key %s: %d owners, want 2", key, len(owners))
		}
		if owners[0] == owners[1] {
			t.Fatalf("key %s: duplicate owner %s", key, owners[0])
		}
	}
	if got := ring.OwnersN("k", 10); len(got) != 3 {
		t.Fatalf("OwnersN over fleet size: %d owners, want 3", len(got))
	}
	if got := NewRing(nil, 8, 1).Owners("k"); got != nil {
		t.Fatalf("empty ring returned owners %v", got)
	}
}

// TestRingBalance sanity-checks the vnode spread: no member owns more
// than ~2x its fair share of the keyspace at the default vnode count.
func TestRingBalance(t *testing.T) {
	members := []string{"m1", "m2", "m3", "m4"}
	ring := NewRing(members, DefaultVirtualNodes, 1)
	counts := map[string]int{}
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[ring.Owner(fmt.Sprintf("key-%d", i))]++
	}
	fair := keys / len(members)
	for m, c := range counts {
		if c > 2*fair || c < fair/2 {
			t.Fatalf("member %s owns %d keys, fair share %d — vnode spread is broken", m, c, fair)
		}
	}
}
