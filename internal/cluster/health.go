package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"mlaasbench/internal/telemetry"
)

// Breaker defaults: a replica that fails proxied requests this many times
// in a row stops receiving traffic for the cooldown, then gets one trial
// request (half-open). Probe-based health runs independently and can
// revive a replica sooner.
const (
	DefaultBreakerFailures = 3
	DefaultBreakerCooldown = 2 * time.Second
	DefaultProbeInterval   = time.Second
	DefaultProbeTimeout    = 500 * time.Millisecond
)

// replicaState tracks one replica's observed health: the last probe
// verdict (up + ready, from its /healthz) and a proxy-outcome circuit
// breaker. Both feed available(), the single routing predicate.
type replicaState struct {
	name string
	base string // base URL, no trailing slash

	// inFlight counts requests this replica is serving through the router
	// right now; predict routing reads it to pick the least-loaded owner.
	inFlight atomic.Int64

	mu        sync.Mutex
	probed    bool // at least one probe completed
	up        bool
	ready     bool
	fails     int       // consecutive proxy failures
	openUntil time.Time // breaker open until (zero = closed)
	halfOpen  bool      // one trial request is in flight past openUntil
}

// available reports whether the router should send this replica traffic:
// the last probe (if any) saw it up and ready, and the breaker is not
// open. Past the cooldown one caller wins the half-open trial; its next
// recorded outcome closes or re-opens the breaker.
func (rs *replicaState) available(now time.Time) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.probed && (!rs.up || !rs.ready) {
		return false
	}
	if rs.openUntil.IsZero() || now.After(rs.openUntil) {
		if !rs.openUntil.IsZero() {
			if rs.halfOpen {
				return false // another trial is already probing the replica
			}
			rs.halfOpen = true
		}
		return true
	}
	return false
}

// recordSuccess closes the breaker.
func (rs *replicaState) recordSuccess() {
	rs.mu.Lock()
	rs.fails = 0
	rs.openUntil = time.Time{}
	rs.halfOpen = false
	rs.mu.Unlock()
}

// recordFailure counts a proxy failure and opens the breaker at the
// threshold (or re-opens it when a half-open trial fails).
func (rs *replicaState) recordFailure(threshold int, cooldown time.Duration) (opened bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.fails++
	rs.halfOpen = false
	if rs.fails >= threshold {
		wasOpen := !rs.openUntil.IsZero() && time.Now().Before(rs.openUntil)
		rs.openUntil = time.Now().Add(cooldown)
		return !wasOpen
	}
	return false
}

// setProbe records a health-probe verdict and reports whether the
// routable state (up && ready) changed — the caller counts transitions.
func (rs *replicaState) setProbe(up, ready bool) (changed bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	was := rs.probed && rs.up && rs.ready
	is := up && ready
	changed = !rs.probed || was != is
	rs.probed, rs.up, rs.ready = true, up, ready
	if is {
		// A healthy probe forgives past proxy failures: the replica came
		// back (restart, warm finished), so don't keep the breaker open.
		rs.fails = 0
		rs.openUntil = time.Time{}
		rs.halfOpen = false
	}
	return changed
}

// snapshot returns the state for /healthz reporting.
func (rs *replicaState) snapshot(now time.Time) ReplicaHealth {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return ReplicaHealth{
		Name:             rs.name,
		URL:              rs.base,
		Probed:           rs.probed,
		Up:               rs.up || !rs.probed,
		Ready:            rs.ready || !rs.probed,
		BreakerOpen:      !rs.openUntil.IsZero() && now.Before(rs.openUntil),
		ConsecutiveFails: rs.fails,
	}
}

// ReplicaHealth is one replica's entry in the router's /healthz body.
type ReplicaHealth struct {
	Name             string `json:"name"`
	URL              string `json:"url"`
	Probed           bool   `json:"probed"`
	Up               bool   `json:"up"`
	Ready            bool   `json:"ready"`
	BreakerOpen      bool   `json:"breaker_open"`
	ConsecutiveFails int    `json:"consecutive_fails"`
}

// replicaHealthz is the slice of the service /healthz body the prober
// reads: liveness is the HTTP 200, readiness is the ready field (absent
// on pre-readiness servers ⇒ treat 200 as ready, matching old behaviour).
type replicaHealthz struct {
	Status string `json:"status"`
	Ready  *bool  `json:"ready"`
}

// StartProber begins probing every replica's /healthz at the given
// interval and returns a stop function. A replica that fails the probe
// (connection error, non-200, undecodable body) is marked down; a 200
// with ready:false is up but not routable — the warming state the boot
// warm scan reports. Routable-state transitions are counted into
// mlaas_router_replica_state_changes_total{replica,state} — the ring
// rebalance signal — and logged.
func (rt *Router) StartProber(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		rt.probeAll() // immediate first pass so routing starts informed
		for {
			select {
			case <-tick.C:
				rt.probeAll()
			case <-done:
				return
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

// probeAll probes every replica once, concurrently.
func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	for _, rs := range rt.replicas {
		wg.Add(1)
		go func(rs *replicaState) {
			defer wg.Done()
			up, ready := rt.probeOne(rs)
			if rs.setProbe(up, ready) {
				state := "down"
				if up && ready {
					state = "up"
				} else if up {
					state = "warming"
				}
				rt.reg.Counter(telemetry.RouterReplicaStateChangesTotal,
					"replica", rs.name, "state", state).Inc()
				rt.logf("cluster: replica %s (%s) -> %s", rs.name, rs.base, state)
			}
		}(rs)
	}
	wg.Wait()
}

// probeOne fetches one replica's /healthz and interprets it.
func (rt *Router) probeOne(rs *replicaState) (up, ready bool) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rs.base+"/healthz", nil)
	if err != nil {
		return false, false
	}
	resp, err := rt.httpc.Do(req)
	if err != nil {
		return false, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, false
	}
	var body replicaHealthz
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return false, false
	}
	if body.Ready == nil {
		return true, true
	}
	return true, *body.Ready
}
