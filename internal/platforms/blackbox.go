package platforms

import (
	"context"

	"mlaasbench/internal/classifiers"
	"mlaasbench/internal/dataset"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/rng"
)

// blackBox implements the shared behaviour of the two fully automated
// "1-click" platforms, ABM and Google: no user-visible controls, and a
// hidden server-side choice between a linear and a non-linear classifier
// driven by an internal validation probe. §6.1 demonstrates exactly this
// behaviour from the outside (Figure 10), and §6.3 shows the choice is
// *imperfect* — which the probe reproduces naturally, because it judges
// from a small internal validation split.
type blackBox struct {
	name       string
	complexity int
	// linearName and nonLinearName select the two candidate families.
	// Google's non-linear boundary looks kernel-smooth (Figure 10a), so it
	// uses a distance-weighted kNN; ABM's looks axis-aligned (Figure 10c),
	// so it uses a decision tree.
	linearName    string
	nonLinearName string
	// bias is the F1 advantage the non-linear candidate must show on the
	// internal validation split before the platform switches away from the
	// linear default. A small positive bias mirrors the paper's finding
	// that the black boxes lean linear (Google 60.9%, ABM 68.8% linear).
	bias float64
}

// Name implements Platform.
func (b *blackBox) Name() string { return b.name }

// Complexity implements Platform.
func (b *blackBox) Complexity() int { return b.complexity }

// Surface implements Platform: black boxes expose nothing.
func (b *blackBox) Surface() pipeline.Surface { return pipeline.Surface{} }

// BaselineClassifier implements Platform: the baseline *is* the automatic
// pipeline.
func (b *blackBox) BaselineClassifier() string { return "" }

// choose runs the hidden model-selection probe: split the uploaded training
// data internally, train both candidates, keep the one that wins on the
// internal validation fold (with the linear default retained unless the
// non-linear candidate clearly wins).
func (b *blackBox) choose(train *dataset.Dataset, r *rng.RNG) pipeline.Config {
	return b.chooseCtx(context.Background(), train, r)
}

// chooseCtx is choose threaded through a context so the probe's internal
// fits land in the caller's trace. The RNG streams are identical to choose.
func (b *blackBox) chooseCtx(ctx context.Context, train *dataset.Dataset, r *rng.RNG) pipeline.Config {
	linearCfg := b.candidate(b.linearName)
	nonLinearCfg := b.candidate(b.nonLinearName)
	sp := train.StratifiedSplit(0.7, r.Split("probe-split"))
	linRes, errLin := pipeline.RunCtx(ctx, linearCfg, sp.Train, sp.Test, r.Split("probe-lin"), nil)
	nonRes, errNon := pipeline.RunCtx(ctx, nonLinearCfg, sp.Train, sp.Test, r.Split("probe-non"), nil)
	switch {
	case errLin != nil && errNon != nil:
		return linearCfg
	case errLin != nil:
		return nonLinearCfg
	case errNon != nil:
		return linearCfg
	}
	if nonRes.Scores.F1 > linRes.Scores.F1+b.bias {
		return nonLinearCfg
	}
	return linearCfg
}

func (b *blackBox) candidate(name string) pipeline.Config {
	params, err := classifiers.DefaultParams(name)
	if err != nil {
		panic(err) // candidate names are fixed at construction
	}
	return pipeline.Config{Feat: pipeline.Feat{Kind: "none"}, Classifier: name, Params: params}
}

// Run implements Platform. The user config is ignored: the service accepts
// only the dataset, like the real 1-click APIs.
func (b *blackBox) Run(cfg pipeline.Config, train, test *dataset.Dataset, seed uint64) (pipeline.Result, error) {
	return b.RunCtx(context.Background(), cfg, train, test, seed, nil)
}

// RunCtx implements ContextRunner. The cache is ignored: the black boxes
// expose no FEAT dimension and their hidden probe depends on the seed, so
// there is nothing split-cacheable.
func (b *blackBox) RunCtx(ctx context.Context, _ pipeline.Config, train, test *dataset.Dataset, seed uint64, _ *pipeline.FeatCache) (pipeline.Result, error) {
	r := runRNG(b.name, train.Name, seed)
	cfg := b.chooseCtx(ctx, train, r.Split("choose"))
	res, err := pipeline.RunCtx(ctx, cfg, train, test, r.Split("final"), nil)
	if err != nil {
		return pipeline.Result{}, err
	}
	// Hide the internal choice the way the services do: the reported
	// config names only the platform's automatic mode. §6.2 has to infer
	// the family from predictions, and so do our analyses.
	res.Config = pipeline.Config{Classifier: "auto", Params: classifiers.Params{}}
	return res, err
}

// PredictPoints implements Platform.
func (b *blackBox) PredictPoints(_ pipeline.Config, train *dataset.Dataset, points [][]float64, seed uint64) ([]int, error) {
	r := runRNG(b.name, train.Name, seed)
	cfg := b.choose(train, r.Split("choose"))
	return pipeline.PredictPoints(cfg, train, points, r.Split("final"))
}

// Fit implements Platform: run the hidden selection probe once, train the
// chosen candidate once, and keep the result resident. The RNG stream is
// exactly the one PredictPoints consumes ("choose" then "final"), so the
// fitted model — including which family the probe picked — predicts
// byte-identically to the refit path.
func (b *blackBox) Fit(cfg pipeline.Config, train *dataset.Dataset, seed uint64) (FittedModel, error) {
	return b.FitCtx(context.Background(), cfg, train, seed)
}

// FitCtx implements ContextFitter.
func (b *blackBox) FitCtx(ctx context.Context, _ pipeline.Config, train *dataset.Dataset, seed uint64) (FittedModel, error) {
	r := runRNG(b.name, train.Name, seed)
	cfg := b.chooseCtx(ctx, train, r.Split("choose"))
	return pipeline.FitCtx(ctx, cfg, train, r.Split("final"))
}

// ChosenFamily exposes whether the hidden probe picks the non-linear
// candidate for a dataset. It exists for white-box validation of the §6.2
// inference methodology in tests and ablations — the measurement analyses
// never call it.
func (b *blackBox) ChosenFamily(train *dataset.Dataset, seed uint64) (nonLinear bool) {
	r := runRNG(b.name, train.Name, seed)
	cfg := b.choose(train, r.Split("choose"))
	return cfg.Classifier == b.nonLinearName
}

// Google simulates the Google Prediction API: fully automated, no controls,
// internally switching between a linear model and a smooth non-linear model
// (its CIRCLE boundary is round — kernel-like, Figure 10a).
type Google struct {
	blackBox
}

func newGoogle() *Google {
	return &Google{blackBox{
		name:          "google",
		complexity:    0,
		linearName:    "logreg",
		nonLinearName: "knn",
		bias:          0.02,
	}}
}

// ABM simulates Automatic Business Modeler: fully automated, no controls,
// internally switching between a linear model and a tree model (its CIRCLE
// boundary is rectangular, Figure 10c). ABM leans linear harder than Google
// (68.8% vs 60.9% of datasets, §6.2), expressed as a larger switch bias.
type ABM struct {
	blackBox
}

func newABM() *ABM {
	return &ABM{blackBox{
		name:          "abm",
		complexity:    1,
		linearName:    "logreg",
		nonLinearName: "dtree",
		bias:          0.05,
	}}
}
