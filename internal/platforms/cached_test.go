package platforms

import (
	"reflect"
	"testing"

	"mlaasbench/internal/dataset"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/rng"
)

func cachedTestSplit(t *testing.T) dataset.Split {
	t.Helper()
	r := rng.New(21)
	n, d := 90, 5
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		row := make([]float64, d)
		for j := range row {
			row[j] = r.NormFloat64()
		}
		if row[0]-row[2] > 0 {
			y[i] = 1
		}
		x[i] = row
	}
	ds := &dataset.Dataset{Name: "cached-test", X: x, Y: y}
	return ds.StratifiedSplit(0.7, rng.New(22))
}

// RunCached must be observationally identical to Run on every platform that
// implements it — the cache removes redundant fitting, nothing else. Amazon
// matters most here: its override must preserve the hidden binning.
func TestRunCachedMatchesRun(t *testing.T) {
	sp := cachedTestSplit(t)
	for _, name := range Names() {
		p, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		cr, ok := p.(CachedRunner)
		if !ok {
			if p.BaselineClassifier() != "" {
				t.Errorf("%s: user-surface platform should implement CachedRunner", name)
			}
			continue
		}
		cache := pipeline.NewFeatCache()
		configs := pipeline.Enumerate(p.Surface())
		if len(configs) > 12 {
			configs = configs[:12]
		}
		for _, cfg := range configs {
			want, err := p.Run(cfg, sp.Train, sp.Test, 5)
			if err != nil {
				t.Fatalf("%s %s: %v", name, cfg, err)
			}
			got, err := cr.RunCached(cfg, sp.Train, sp.Test, 5, cache)
			if err != nil {
				t.Fatalf("%s %s cached: %v", name, cfg, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s %s: cached result differs from Run", name, cfg)
			}
			// Second pass hits the cache.
			again, err := cr.RunCached(cfg, sp.Train, sp.Test, 5, cache)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, again) {
				t.Fatalf("%s %s: cache hit differs from Run", name, cfg)
			}
		}
	}
}
