// Package platforms simulates the six MLaaS services the paper measures —
// ABM, Google Prediction API, Amazon Machine Learning, PredictionIO, BigML
// and Microsoft Azure ML Studio — plus the "local" scikit-learn arm. The
// real services are proprietary (and mostly discontinued); what the paper
// actually characterizes is each platform's *control surface* (Figure 1,
// Table 1) and the behaviour of the hidden server-side pipeline. Each
// simulated platform therefore:
//
//   - exposes exactly the documented FEAT/CLF/PARA controls as a
//     pipeline.Surface, with the provider's defaults;
//   - executes the shared classifier substrate for everything user-visible;
//   - implements the provider's *hidden* behaviour: ABM and Google pick a
//     classifier family per dataset with an internal validation probe
//     (§6.1-6.2), and Amazon silently quantile-bins features before its
//     Logistic Regression, which is how its CIRCLE boundary turns
//     non-linear (Figure 13).
//
// Platform order by complexity matches Figure 2/4: Google < ABM < Amazon <
// BigML < PredictionIO < Microsoft < Local.
package platforms

import (
	"context"
	"fmt"

	"mlaasbench/internal/dataset"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/rng"
)

// Platform is one MLaaS service (or the local library) under measurement.
type Platform interface {
	// Name is the platform identifier ("google", "abm", ...).
	Name() string
	// Complexity orders platforms by user control, ascending (Figure 2).
	Complexity() int
	// Surface returns the user-visible control surface. Black-box
	// platforms return an empty surface.
	Surface() pipeline.Surface
	// BaselineClassifier is the classifier used for the zero-control
	// baseline ("logreg" wherever the control exists; "" for black boxes,
	// whose baseline is their automatic pipeline).
	BaselineClassifier() string
	// Run trains and evaluates one configuration on the split. Black-box
	// platforms ignore cfg (they accept only the data, like the real
	// 1-click services).
	Run(cfg pipeline.Config, train, test *dataset.Dataset, seed uint64) (pipeline.Result, error)
	// PredictPoints trains on train and labels arbitrary query points —
	// the primitive the §6.1 boundary probing uses. It refits per call;
	// serving paths use Fit once and the returned model's Predict instead.
	PredictPoints(cfg pipeline.Config, train *dataset.Dataset, points [][]float64, seed uint64) ([]int, error)
	// Fit trains one configuration and returns a reusable fitted model.
	// The artifact bundles everything the platform's pipeline learned —
	// fitted scaler/filter/LDA, trained classifier, hidden preprocessing
	// (Amazon's binner) and the black boxes' resolved candidate choice —
	// so Predict on it is byte-identical to PredictPoints with the same
	// arguments (same seed → same model), without retraining.
	Fit(cfg pipeline.Config, train *dataset.Dataset, seed uint64) (FittedModel, error)
}

// FittedModel is a trained, reusable predictor — the artifact a real
// serving system keeps resident after training (cf. TensorFlow-Serving's
// loaded servable, Clipper's model container) so prediction is a pure
// lookup + forward pass. Predict takes points in the uploaded dataset's
// original feature space and is safe for concurrent use: nothing in the
// fitted pipeline mutates after Fit.
type FittedModel interface {
	Predict(points [][]float64) []int
}

// CachedRunner is the optional fast path the sweep engine uses: platforms
// that implement it can share fitted FEAT transforms (and hidden per-split
// preprocessing) across the many configurations measured on one split. The
// result must be identical to Run with the same arguments; the cache only
// removes redundant fitting, never changes what is fitted.
type CachedRunner interface {
	RunCached(cfg pipeline.Config, train, test *dataset.Dataset, seed uint64, cache *pipeline.FeatCache) (pipeline.Result, error)
}

// ContextRunner is the optional trace-aware path: RunCached threaded
// through a context so pipeline stage timings become spans in the caller's
// trace tree and land in the caller's registry. cache may be nil (black
// boxes ignore it — they have nothing split-cacheable). The measurements
// must be identical to Run/RunCached with the same arguments; the context
// only routes telemetry, never randomness.
type ContextRunner interface {
	RunCtx(ctx context.Context, cfg pipeline.Config, train, test *dataset.Dataset, seed uint64, cache *pipeline.FeatCache) (pipeline.Result, error)
}

// ContextFitter is the optional trace-aware Fit, used by the serving layer
// so model fits show up inside the request's trace.
type ContextFitter interface {
	FitCtx(ctx context.Context, cfg pipeline.Config, train *dataset.Dataset, seed uint64) (FittedModel, error)
}

// ContextPredictor is the optional trace-aware forward pass on a fitted
// model: per-stage timings (preprocess/featsel/predict) become spans in the
// serving request's trace instead of standalone histogram observations.
type ContextPredictor interface {
	PredictCtx(ctx context.Context, points [][]float64) []int
}

// Names lists the platforms in complexity order (Figure 4's x-axis).
func Names() []string {
	return []string{"google", "abm", "amazon", "bigml", "predictionio", "microsoft", "local"}
}

// New constructs a platform by name.
func New(name string) (Platform, error) {
	switch name {
	case "google":
		return newGoogle(), nil
	case "abm":
		return newABM(), nil
	case "amazon":
		return newAmazon(), nil
	case "bigml":
		return newBigML(), nil
	case "predictionio":
		return newPredictionIO(), nil
	case "microsoft":
		return newMicrosoft(), nil
	case "local":
		return newLocal(), nil
	default:
		return nil, fmt.Errorf("platforms: unknown platform %q", name)
	}
}

// All returns every platform in complexity order.
func All() []Platform {
	out := make([]Platform, 0, len(Names()))
	for _, n := range Names() {
		p, err := New(n)
		if err != nil {
			panic(err) // Names and New are defined together; a mismatch is a bug
		}
		out = append(out, p)
	}
	return out
}

// userPlatform implements the shared behaviour of every platform with a
// user-visible surface: Run validates the config against the surface and
// executes the standard pipeline.
type userPlatform struct {
	name       string
	complexity int
	surface    pipeline.Surface
}

func (u *userPlatform) Name() string               { return u.name }
func (u *userPlatform) Complexity() int            { return u.complexity }
func (u *userPlatform) Surface() pipeline.Surface  { return u.surface }
func (u *userPlatform) BaselineClassifier() string { return "logreg" }

func (u *userPlatform) validate(cfg pipeline.Config) error {
	for _, cs := range u.surface.Classifiers {
		if cs.Name == cfg.Classifier {
			return nil
		}
	}
	return fmt.Errorf("platforms: %s does not offer classifier %q", u.name, cfg.Classifier)
}

func (u *userPlatform) Run(cfg pipeline.Config, train, test *dataset.Dataset, seed uint64) (pipeline.Result, error) {
	if err := u.validate(cfg); err != nil {
		return pipeline.Result{}, err
	}
	return pipeline.Run(cfg, train, test, runRNG(u.name, train.Name, seed))
}

// RunCached implements CachedRunner: identical to Run, with FEAT transforms
// fitted at most once per (split, option) via the cache.
func (u *userPlatform) RunCached(cfg pipeline.Config, train, test *dataset.Dataset, seed uint64, cache *pipeline.FeatCache) (pipeline.Result, error) {
	return u.RunCtx(context.Background(), cfg, train, test, seed, cache)
}

// RunCtx implements ContextRunner.
func (u *userPlatform) RunCtx(ctx context.Context, cfg pipeline.Config, train, test *dataset.Dataset, seed uint64, cache *pipeline.FeatCache) (pipeline.Result, error) {
	if err := u.validate(cfg); err != nil {
		return pipeline.Result{}, err
	}
	return pipeline.RunCtx(ctx, cfg, train, test, runRNG(u.name, train.Name, seed), cache)
}

func (u *userPlatform) PredictPoints(cfg pipeline.Config, train *dataset.Dataset, points [][]float64, seed uint64) ([]int, error) {
	if err := u.validate(cfg); err != nil {
		return nil, err
	}
	return pipeline.PredictPoints(cfg, train, points, runRNG(u.name, train.Name, seed))
}

// Fit implements Platform: validate against the surface, then train the
// standard pipeline once under the same RNG stream PredictPoints derives.
func (u *userPlatform) Fit(cfg pipeline.Config, train *dataset.Dataset, seed uint64) (FittedModel, error) {
	return u.FitCtx(context.Background(), cfg, train, seed)
}

// FitCtx implements ContextFitter.
func (u *userPlatform) FitCtx(ctx context.Context, cfg pipeline.Config, train *dataset.Dataset, seed uint64) (FittedModel, error) {
	if err := u.validate(cfg); err != nil {
		return nil, err
	}
	return pipeline.FitCtx(ctx, cfg, train, runRNG(u.name, train.Name, seed))
}

// runRNG derives the deterministic RNG for one platform/dataset run.
func runRNG(platform, datasetName string, seed uint64) *rng.RNG {
	return rng.New(seed).Split("platform/" + platform + "/" + datasetName)
}
