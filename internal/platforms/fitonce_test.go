package platforms

import (
	"testing"

	"mlaasbench/internal/dataset"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/rng"
	"mlaasbench/internal/synth"
)

// fitOnceDatasets returns one linear and one non-linear training set, so the
// black boxes' hidden probe is exercised on both sides of its decision.
func fitOnceDatasets() []*dataset.Dataset {
	lin := synth.GenerateClean(synth.Spec{Name: "fitonce-lin", Gen: synth.GenLinear, N: 90, D: 4, Noise: 0.2}, synth.Quick, 11)
	circ := synth.GenerateClean(synth.CircleSpec(), synth.Quick, 11)
	return []*dataset.Dataset{lin, circ}
}

// assertSameLabels fails unless the two label slices are identical.
func assertSameLabels(t *testing.T, ctx string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d labels, want %d", ctx, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: label %d is %d, want %d", ctx, i, got[i], want[i])
		}
	}
}

// TestFitOnceMatchesRefitEveryPlatform is the serving-path equivalence
// proof: for every platform — including the black boxes' hidden probe and
// Amazon's hidden binning — Fit followed by Predict yields labels
// byte-identical to the legacy retrain-per-call PredictPoints path, and a
// resident model answers repeated queries identically (no hidden state).
func TestFitOnceMatchesRefitEveryPlatform(t *testing.T) {
	for _, ds := range fitOnceDatasets() {
		sp := ds.StratifiedSplit(0.7, rng.New(3))
		ds, points := sp.Train, sp.Test.X
		for _, p := range All() {
			var cfg pipeline.Config
			if base := p.BaselineClassifier(); base != "" {
				var err error
				cfg, err = p.Surface().DefaultConfig(base)
				if err != nil {
					t.Fatal(err)
				}
			}
			for _, seed := range []uint64{1, 42} {
				ctx := p.Name() + "/" + ds.Name
				m, err := p.Fit(cfg, ds, seed)
				if err != nil {
					t.Fatalf("%s: Fit: %v", ctx, err)
				}
				want, err := p.PredictPoints(cfg, ds, points, seed)
				if err != nil {
					t.Fatalf("%s: PredictPoints: %v", ctx, err)
				}
				assertSameLabels(t, ctx, m.Predict(points), want)
				// A fitted model is a pure function of its training: a second
				// forward pass must not drift.
				assertSameLabels(t, ctx+" (reuse)", m.Predict(points), want)
			}
		}
	}
}

// TestFitOnceMatchesRefitNonDefaultConfigs walks the heavier corners the
// loadgen leans on: ensembles, the MLP, and FEAT transforms that carry
// fitted state (scaler moments, filter column choice, the LDA projection).
func TestFitOnceMatchesRefitNonDefaultConfigs(t *testing.T) {
	full := synth.GenerateClean(synth.Spec{Name: "fitonce-cfg", Gen: synth.GenClusters, N: 100, D: 6, Noise: 0.3}, synth.Quick, 5)
	sp := full.StratifiedSplit(0.7, rng.New(3))
	ds, points := sp.Train, sp.Test.X
	cases := []struct {
		platform   string
		feat       pipeline.Feat
		classifier string
		params     map[string]any
	}{
		{"local", pipeline.Feat{Kind: "scaler", Name: "standard"}, "mlp", map[string]any{"max_iter": 50}},
		{"local", pipeline.Feat{Kind: "filter", Name: "fisher"}, "randomforest", map[string]any{"n_estimators": 5}},
		{"microsoft", pipeline.Feat{Kind: "fisherlda"}, "boosted", map[string]any{"n_estimators": 10}},
		{"amazon", pipeline.Feat{Kind: "none"}, "logreg", map[string]any{"max_iter": 20}},
		{"bigml", pipeline.Feat{Kind: "none"}, "bagging", map[string]any{"n_estimators": 4}},
		{"predictionio", pipeline.Feat{Kind: "none"}, "naivebayes", nil},
	}
	for _, tc := range cases {
		p, err := New(tc.platform)
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := p.Surface().DefaultConfig(tc.classifier)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Feat = tc.feat
		for k, v := range tc.params {
			cfg.Params[k] = v
		}
		ctx := tc.platform + "/" + cfg.String()
		m, err := p.Fit(cfg, ds, 7)
		if err != nil {
			t.Fatalf("%s: Fit: %v", ctx, err)
		}
		want, err := p.PredictPoints(cfg, ds, points, 7)
		if err != nil {
			t.Fatalf("%s: PredictPoints: %v", ctx, err)
		}
		assertSameLabels(t, ctx, m.Predict(points), want)
	}
}

// TestFitValidatesSurface mirrors Run/PredictPoints: a classifier outside
// the platform's surface is rejected at fit time.
func TestFitValidatesSurface(t *testing.T) {
	ds := fitOnceDatasets()[0]
	p, err := New("amazon")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Fit(pipeline.Config{Classifier: "randomforest"}, ds, 1); err == nil {
		t.Fatal("amazon must reject classifiers outside its surface at Fit")
	}
}
