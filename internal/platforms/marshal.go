package platforms

import (
	"fmt"

	"mlaasbench/internal/codec"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/preprocess"
)

// Model-kind tags for the MLMF artifact payload. Append-only.
const (
	modelPipeline = 1 // *pipeline.FittedPipeline (every platform but Amazon)
	modelBinned   = 2 // *binnedModel (Amazon: hidden binner + pipeline)
)

// AppendFittedModel serializes any FittedModel a platform Fit can return.
// The payload is self-describing (kind tag first), so DecodeFittedModel
// reconstructs the concrete type without out-of-band context.
func AppendFittedModel(b []byte, m FittedModel) ([]byte, error) {
	switch t := m.(type) {
	case *pipeline.FittedPipeline:
		b = codec.AppendU8(b, modelPipeline)
		return pipeline.AppendFittedPipeline(b, t)
	case *binnedModel:
		b = codec.AppendU8(b, modelBinned)
		b, err := preprocess.AppendScaler(b, t.q)
		if err != nil {
			return nil, err
		}
		return pipeline.AppendFittedPipeline(b, t.fp)
	default:
		return nil, fmt.Errorf("platforms: cannot serialize model %T", m)
	}
}

// DecodeFittedModel reconstructs a model written by AppendFittedModel. The
// decoded model predicts byte-identically to the one that was encoded.
func DecodeFittedModel(r *codec.Reader) (FittedModel, error) {
	switch tag := r.U8(); tag {
	case modelPipeline:
		return pipeline.DecodeFittedPipeline(r)
	case modelBinned:
		sc, err := preprocess.DecodeScaler(r)
		if err != nil {
			return nil, err
		}
		q, ok := sc.(*preprocess.OneHotBinning)
		if !ok {
			return nil, fmt.Errorf("%w: binned model carries %T, want one-hot binner", codec.ErrCorrupt, sc)
		}
		fp, err := pipeline.DecodeFittedPipeline(r)
		if err != nil {
			return nil, err
		}
		return &binnedModel{q: q, fp: fp}, nil
	default:
		if err := r.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: unknown model kind %d", codec.ErrCorrupt, tag)
	}
}
