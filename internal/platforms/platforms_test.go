package platforms

import (
	"math"
	"testing"

	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/rng"
	"mlaasbench/internal/synth"
)

func TestAllPlatformsConstruct(t *testing.T) {
	ps := All()
	if len(ps) != 7 {
		t.Fatalf("%d platforms, want 7", len(ps))
	}
	for i, p := range ps {
		if p.Name() != Names()[i] {
			t.Fatalf("platform %d is %s, want %s", i, p.Name(), Names()[i])
		}
		if p.Complexity() != i {
			t.Fatalf("%s complexity %d, want %d (Figure 2 order)", p.Name(), p.Complexity(), i)
		}
	}
	if _, err := New("watson"); err == nil {
		t.Fatal("expected error for unknown platform")
	}
}

func TestSurfaceSizesMatchTable1(t *testing.T) {
	cases := []struct {
		name        string
		classifiers int
		feats       int
	}{
		{"google", 0, 0},
		{"abm", 0, 0},
		{"amazon", 1, 0},
		{"bigml", 4, 0},
		{"predictionio", 3, 0},
		{"microsoft", 7, 8},
		{"local", 10, 8},
	}
	for _, tc := range cases {
		p, err := New(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		s := p.Surface()
		if len(s.Classifiers) != tc.classifiers {
			t.Errorf("%s: %d classifiers, want %d", tc.name, len(s.Classifiers), tc.classifiers)
		}
		if len(s.Feats) != tc.feats {
			t.Errorf("%s: %d FEAT options, want %d", tc.name, len(s.Feats), tc.feats)
		}
	}
}

func TestBaselineClassifier(t *testing.T) {
	for _, p := range All() {
		switch p.Name() {
		case "google", "abm":
			if p.BaselineClassifier() != "" {
				t.Errorf("%s: black box should have no baseline classifier", p.Name())
			}
		default:
			if p.BaselineClassifier() != "logreg" {
				t.Errorf("%s: baseline %q, want logreg (§3.2)", p.Name(), p.BaselineClassifier())
			}
		}
	}
}

func TestUserPlatformsRunBaseline(t *testing.T) {
	ds := synth.GenerateClean(synth.Spec{Name: "lin", Gen: synth.GenLinear, N: 150, D: 4, Noise: 0.2}, synth.Quick, 1)
	sp := ds.StratifiedSplit(0.7, rng.New(2))
	for _, p := range All() {
		if p.BaselineClassifier() == "" {
			continue
		}
		cfg, err := p.Surface().DefaultConfig(p.BaselineClassifier())
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		res, err := p.Run(cfg, sp.Train, sp.Test, 7)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.Scores.F1 < 0.7 {
			t.Errorf("%s: baseline F1 %.3f on separable data", p.Name(), res.Scores.F1)
		}
	}
}

func TestUserPlatformRejectsForeignClassifier(t *testing.T) {
	ds := synth.GenerateClean(synth.LinearSpec(), synth.Quick, 1)
	sp := ds.StratifiedSplit(0.7, rng.New(1))
	amazon, _ := New("amazon")
	cfg := pipeline.Config{Classifier: "randomforest"}
	if _, err := amazon.Run(cfg, sp.Train, sp.Test, 1); err == nil {
		t.Fatal("amazon must reject classifiers it does not offer")
	}
	if _, err := amazon.PredictPoints(cfg, sp.Train, sp.Train.MeshGrid(5, 0.1), 1); err == nil {
		t.Fatal("amazon must reject classifiers in PredictPoints too")
	}
}

func TestBlackBoxesRunWithoutConfig(t *testing.T) {
	ds := synth.GenerateClean(synth.LinearSpec(), synth.Quick, 3)
	sp := ds.StratifiedSplit(0.7, rng.New(4))
	for _, name := range []string{"google", "abm"} {
		p, _ := New(name)
		res, err := p.Run(pipeline.Config{}, sp.Train, sp.Test, 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Scores.F1 < 0.7 {
			t.Errorf("%s: F1 %.3f on LINEAR", name, res.Scores.F1)
		}
		if res.Config.Classifier != "auto" {
			t.Errorf("%s: leaked internal classifier %q", name, res.Config.Classifier)
		}
	}
}

func TestBlackBoxSwitchesFamilies(t *testing.T) {
	// §6.1: on CIRCLE the black boxes must choose non-linear, on LINEAR
	// they must stay linear.
	circle := synth.GenerateClean(synth.CircleSpec(), synth.Quick, synth.CorpusSeed)
	linear := synth.GenerateClean(synth.LinearSpec(), synth.Quick, synth.CorpusSeed)
	google := newGoogle()
	abm := newABM()
	if !google.ChosenFamily(circle, 11) {
		t.Error("google chose linear on CIRCLE")
	}
	if google.ChosenFamily(linear, 11) {
		t.Error("google chose non-linear on LINEAR")
	}
	if !abm.ChosenFamily(circle, 11) {
		t.Error("abm chose linear on CIRCLE")
	}
	if abm.ChosenFamily(linear, 11) {
		t.Error("abm chose non-linear on LINEAR")
	}
}

func TestBlackBoxBoundaryShapes(t *testing.T) {
	// Figure 10: on CIRCLE both black boxes produce a non-linear boundary —
	// the inner region predicted 1, far corners predicted 0.
	circle := synth.GenerateClean(synth.CircleSpec(), synth.Quick, synth.CorpusSeed)
	for _, name := range []string{"google", "abm", "amazon"} {
		p, _ := New(name)
		cfg := pipeline.Config{}
		if name == "amazon" {
			c, err := p.Surface().DefaultConfig("logreg")
			if err != nil {
				t.Fatal(err)
			}
			cfg = c
		}
		center := [][]float64{{0, 0}, {0.05, -0.05}, {-0.05, 0.05}}
		corners := [][]float64{{1.4, 1.4}, {-1.4, 1.4}, {1.4, -1.4}, {-1.4, -1.4}}
		centerPred, err := p.PredictPoints(cfg, circle, center, 13)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cornerPred, err := p.PredictPoints(cfg, circle, corners, 13)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		centerPos, cornerPos := 0, 0
		for _, v := range centerPred {
			centerPos += v
		}
		for _, v := range cornerPred {
			cornerPos += v
		}
		// Fig 10/13: inner class claimed at the center, outer at corners.
		if centerPos < 2 {
			t.Errorf("%s: center not predicted inner class (%d/3)", name, centerPos)
		}
		if cornerPos > 1 {
			t.Errorf("%s: corners predicted inner class (%d/4) — boundary is not closed", name, cornerPos)
		}
	}
}

func TestGoogleLinearBoundaryOnLINEAR(t *testing.T) {
	// Fig 10b: on LINEAR Google's boundary is a straight line; a cheap
	// necessary condition is that prediction is monotone along the
	// discriminant direction. We check predictions flip exactly once along
	// a line crossing the boundary.
	linear := synth.GenerateClean(synth.LinearSpec(), synth.Quick, synth.CorpusSeed)
	google := newGoogle()
	// Build a probe segment between the two class means.
	var m0, m1 [2]float64
	var n0, n1 float64
	for i, row := range linear.X {
		if linear.Y[i] == 0 {
			m0[0] += row[0]
			m0[1] += row[1]
			n0++
		} else {
			m1[0] += row[0]
			m1[1] += row[1]
			n1++
		}
	}
	m0[0] /= n0
	m0[1] /= n0
	m1[0] /= n1
	m1[1] /= n1
	var pts [][]float64
	const steps = 60
	for i := 0; i <= steps; i++ {
		tt := float64(i)/steps*3.0 - 1.0 // extend past both means
		pts = append(pts, []float64{m0[0] + tt*(m1[0]-m0[0]), m0[1] + tt*(m1[1]-m0[1])})
	}
	pred, err := google.PredictPoints(pipeline.Config{}, linear, pts, 17)
	if err != nil {
		t.Fatal(err)
	}
	flips := 0
	for i := 1; i < len(pred); i++ {
		if pred[i] != pred[i-1] {
			flips++
		}
	}
	if flips != 1 {
		t.Errorf("predictions along the discriminant flip %d times, want 1 (linear boundary)", flips)
	}
}

func TestAmazonBinningIsHidden(t *testing.T) {
	// Amazon's config surface is plain LR; binning must not appear in the
	// reported config, only in the behaviour.
	ds := synth.GenerateClean(synth.CircleSpec(), synth.Quick, 5)
	sp := ds.StratifiedSplit(0.7, rng.New(6))
	amazon, _ := New("amazon")
	cfg, _ := amazon.Surface().DefaultConfig("logreg")
	res, err := amazon.Run(cfg, sp.Train, sp.Test, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Feat.Kind != "none" {
		t.Fatalf("amazon leaked hidden FEAT: %v", res.Config.Feat)
	}
	// The binned LR should beat a plain local LR on CIRCLE.
	local, _ := New("local")
	lcfg, _ := local.Surface().DefaultConfig("logreg")
	lres, err := local.Run(lcfg, sp.Train, sp.Test, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scores.F1 <= lres.Scores.F1 {
		t.Errorf("binned amazon LR (%.3f) should beat plain LR (%.3f) on CIRCLE", res.Scores.F1, lres.Scores.F1)
	}
}

func TestRunDeterministicAcrossPlatforms(t *testing.T) {
	ds := synth.GenerateClean(synth.Spec{Name: "d", Gen: synth.GenMoons, N: 120, D: 2, Noise: 0.2}, synth.Quick, 8)
	sp := ds.StratifiedSplit(0.7, rng.New(9))
	for _, p := range All() {
		cfg := pipeline.Config{}
		if bc := p.BaselineClassifier(); bc != "" {
			c, err := p.Surface().DefaultConfig(bc)
			if err != nil {
				t.Fatal(err)
			}
			cfg = c
		}
		a, err := p.Run(cfg, sp.Train, sp.Test, 42)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		b, _ := p.Run(cfg, sp.Train, sp.Test, 42)
		if a.Scores != b.Scores {
			t.Errorf("%s: nondeterministic run", p.Name())
		}
	}
}

func TestEnumerationScaleOrdering(t *testing.T) {
	// Table 2: configuration counts grow with platform complexity.
	counts := map[string]int{}
	for _, p := range All() {
		if p.BaselineClassifier() == "" {
			counts[p.Name()] = 1 // one automatic measurement per dataset
			continue
		}
		counts[p.Name()] = len(pipeline.Enumerate(p.Surface()))
	}
	if !(counts["google"] <= counts["amazon"] && counts["amazon"] < counts["bigml"]) {
		t.Errorf("config counts out of order: %v", counts)
	}
	if !(counts["predictionio"] < counts["microsoft"] && counts["microsoft"] < counts["local"]) {
		t.Errorf("config counts out of order at the high end: %v", counts)
	}
	if counts["microsoft"] < 100 {
		t.Errorf("microsoft enumerates only %d configs — surface too small", counts["microsoft"])
	}
}

func TestSurfaceFeatOptionsParse(t *testing.T) {
	// Every FEAT option on every surface must round-trip through ParseFeat
	// (the HTTP layer depends on it).
	for _, p := range All() {
		for _, f := range p.Surface().FeatOptions() {
			got, err := pipeline.ParseFeat(f.String())
			if err != nil {
				t.Fatalf("%s: %v", p.Name(), err)
			}
			if got.String() != f.String() {
				t.Fatalf("%s: FEAT %v round-trips to %v", p.Name(), f, got)
			}
		}
	}
}

func TestChoiceImperfection(t *testing.T) {
	// §6.3: the black-box choice must NOT be perfect across the corpus —
	// otherwise the naïve-strategy comparison of Table 6 is impossible.
	// Generate a noisy non-linear corpus slice and count family choices.
	google := newGoogle()
	nonLinearChosen := 0
	total := 0
	for i, spec := range synth.Corpus() {
		if i%10 != 0 { // sample for speed
			continue
		}
		ds := synth.GenerateClean(spec, synth.Quick, synth.CorpusSeed)
		if google.ChosenFamily(ds, 3) {
			nonLinearChosen++
		}
		total++
	}
	if nonLinearChosen == 0 || nonLinearChosen == total {
		t.Errorf("google chose the same family on all %d sampled datasets (%d non-linear) — probe degenerate", total, nonLinearChosen)
	}
}

func TestComplexityMonotone(t *testing.T) {
	prev := math.MinInt
	for _, p := range All() {
		if p.Complexity() <= prev {
			t.Fatalf("complexity not strictly increasing at %s", p.Name())
		}
		prev = p.Complexity()
	}
}
