package platforms

import (
	"context"

	"mlaasbench/internal/dataset"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/preprocess"
)

// Amazon simulates Amazon Machine Learning: the only classifier is Logistic
// Regression with three tunable parameters (maxIter, regParam, shuffleType —
// Table 1), no FEAT control — and a hidden server-side quantile-binning
// recipe applied to every feature before training. The binning is what lets
// a "Logistic Regression" service produce the non-linear CIRCLE boundary
// the paper observes (Figure 13, §6.2).
type Amazon struct {
	userPlatform
}

func newAmazon() *Amazon {
	return &Amazon{userPlatform{
		name:       "amazon",
		complexity: 2,
		surface: pipeline.Surface{
			Classifiers: []pipeline.ClassifierSurface{
				// Amazon's documented default is 10 passes over the data.
				{Name: "logreg", Params: pipeline.WithDefault(
					pipeline.SpecsFor("logreg", "max_iter", "C", "shuffle"),
					"max_iter", 10)},
			},
		},
	}}
}

// Run implements Platform, inserting the hidden binning step.
func (a *Amazon) Run(cfg pipeline.Config, train, test *dataset.Dataset, seed uint64) (pipeline.Result, error) {
	if err := a.validate(cfg); err != nil {
		return pipeline.Result{}, err
	}
	q := a.binner(train)
	bTrain, bTest := train.Clone(), test.Clone()
	bTrain.X = q.Transform(train.X)
	bTest.X = q.Transform(test.X)
	return pipeline.Run(cfg, bTrain, bTest, runRNG(a.name, train.Name, seed))
}

// RunCached implements CachedRunner. Amazon has no FEAT dimension, so the
// cache's transform path is idle here; what dominates its per-config cost is
// re-fitting the hidden binner and re-binning both matrices, which depend
// only on the split. Both are memoized in the cache instead. (The override
// matters for correctness too: the embedded userPlatform.RunCached would
// skip the hidden binning entirely.)
func (a *Amazon) RunCached(cfg pipeline.Config, train, test *dataset.Dataset, seed uint64, cache *pipeline.FeatCache) (pipeline.Result, error) {
	return a.RunCtx(context.Background(), cfg, train, test, seed, cache)
}

// RunCtx implements ContextRunner; same memoization as RunCached, with
// stage timings routed into the caller's trace and registry.
func (a *Amazon) RunCtx(ctx context.Context, cfg pipeline.Config, train, test *dataset.Dataset, seed uint64, cache *pipeline.FeatCache) (pipeline.Result, error) {
	if err := a.validate(cfg); err != nil {
		return pipeline.Result{}, err
	}
	if cache == nil {
		q := a.binner(train)
		bTrain, bTest := train.Clone(), test.Clone()
		bTrain.X = q.Transform(train.X)
		bTest.X = q.Transform(test.X)
		return pipeline.RunCtx(ctx, cfg, bTrain, bTest, runRNG(a.name, train.Name, seed), nil)
	}
	v, err := cache.Memo("amazon/binned", func() (any, error) {
		q := a.binner(train)
		bTrain, bTest := train.Clone(), test.Clone()
		bTrain.X = q.Transform(train.X)
		bTest.X = q.Transform(test.X)
		return [2]*dataset.Dataset{bTrain, bTest}, nil
	})
	if err != nil {
		return pipeline.Result{}, err
	}
	binned := v.([2]*dataset.Dataset)
	return pipeline.RunCtx(ctx, cfg, binned[0], binned[1], runRNG(a.name, train.Name, seed), nil)
}

// PredictPoints implements Platform.
func (a *Amazon) PredictPoints(cfg pipeline.Config, train *dataset.Dataset, points [][]float64, seed uint64) ([]int, error) {
	if err := a.validate(cfg); err != nil {
		return nil, err
	}
	q := a.binner(train)
	bTrain := train.Clone()
	bTrain.X = q.Transform(train.X)
	return pipeline.PredictPoints(cfg, bTrain, q.Transform(points), runRNG(a.name, train.Name, seed))
}

// Fit implements Platform: the fitted artifact bundles the hidden binner
// with the trained pipeline, so query points are binned with the statistics
// learned at train time — exactly what PredictPoints recomputes per call.
// (As with RunCached, the embedded userPlatform.Fit would skip the hidden
// binning entirely, so the override is a correctness matter.)
func (a *Amazon) Fit(cfg pipeline.Config, train *dataset.Dataset, seed uint64) (FittedModel, error) {
	return a.FitCtx(context.Background(), cfg, train, seed)
}

// FitCtx implements ContextFitter.
func (a *Amazon) FitCtx(ctx context.Context, cfg pipeline.Config, train *dataset.Dataset, seed uint64) (FittedModel, error) {
	if err := a.validate(cfg); err != nil {
		return nil, err
	}
	q := a.binner(train)
	bTrain := train.Clone()
	bTrain.X = q.Transform(train.X)
	fp, err := pipeline.FitCtx(ctx, cfg, bTrain, runRNG(a.name, train.Name, seed))
	if err != nil {
		return nil, err
	}
	return &binnedModel{q: q, fp: fp}, nil
}

// binnedModel pairs Amazon's hidden quantile binner with a trained pipeline
// so the resident model accepts raw-space query points.
type binnedModel struct {
	q  *preprocess.OneHotBinning
	fp *pipeline.FittedPipeline
}

// Predict implements FittedModel.
func (m *binnedModel) Predict(points [][]float64) []int {
	return m.PredictCtx(context.Background(), points)
}

// PredictCtx implements ContextPredictor.
func (m *binnedModel) PredictCtx(ctx context.Context, points [][]float64) []int {
	return m.fp.PredictCtx(ctx, m.q.Transform(points))
}

func (*Amazon) binner(train *dataset.Dataset) *preprocess.OneHotBinning {
	q := &preprocess.OneHotBinning{Bins: 12}
	q.Fit(train.X)
	return q
}

// BigML simulates BigML's supervised-learning surface: Logistic Regression,
// Decision Tree, Bagging and Random Forests (Table 1), no FEAT control.
// Table 1's "ordering"/"random candidates" tree controls map to the
// impurity criterion and per-split feature sampling of the shared CART
// substrate (see DESIGN.md).
type BigML struct {
	userPlatform
}

func newBigML() *BigML {
	return &BigML{userPlatform{
		name:       "bigml",
		complexity: 3,
		surface: pipeline.Surface{
			Classifiers: []pipeline.ClassifierSurface{
				// regularization / strength / eps
				{Name: "logreg", Params: pipeline.SpecsFor("logreg", "penalty", "C", "tol")},
				// node threshold / ordering / random candidates
				{Name: "dtree", Params: pipeline.SpecsFor("dtree", "node_threshold", "criterion", "max_features")},
				// node threshold / number of models / ordering
				{Name: "bagging", Params: pipeline.SpecsFor("bagging", "node_threshold", "n_estimators", "max_features")},
				// node threshold / number of models / ordering
				{Name: "randomforest", Params: pipeline.SpecsFor("randomforest", "min_samples_leaf", "n_estimators", "max_features")},
			},
		},
	}}
}

// PredictionIO simulates Apache PredictionIO's classification templates:
// Logistic Regression, Naive Bayes and Decision Tree (Table 1), no FEAT.
// numClasses is fixed at 2 for binary tasks, so the exposed DT knobs are
// maxDepth plus the impurity criterion.
type PredictionIO struct {
	userPlatform
}

func newPredictionIO() *PredictionIO {
	return &PredictionIO{userPlatform{
		name:       "predictionio",
		complexity: 4,
		surface: pipeline.Surface{
			Classifiers: []pipeline.ClassifierSurface{
				// maxIter / regParam / fitIntercept
				{Name: "logreg", Params: pipeline.SpecsFor("logreg", "max_iter", "C", "fit_intercept")},
				// lambda — the PredictionIO template defaults to 1.0
				{Name: "naivebayes", Params: pipeline.WithDefault(
					pipeline.SpecsFor("naivebayes", "lambda"), "lambda", 1.0)},
				// numClasses (fixed) / maxDepth — template default depth 5
				{Name: "dtree", Params: pipeline.WithDefault(
					pipeline.SpecsFor("dtree", "max_depth", "criterion"), "max_depth", 5)},
			},
		},
	}}
}

// Microsoft simulates Azure ML Studio, the most configurable platform:
// 8 FEAT methods (Fisher LDA plus 7 filter scores) and 7 classifiers with
// the Table-1 parameter lists.
type Microsoft struct {
	userPlatform
}

func newMicrosoft() *Microsoft {
	return &Microsoft{userPlatform{
		name:       "microsoft",
		complexity: 5,
		surface: pipeline.Surface{
			Feats: []pipeline.Feat{
				{Kind: "fisherlda"},
				{Kind: "filter", Name: "pearson"},
				{Kind: "filter", Name: "mutual"},
				{Kind: "filter", Name: "kendall"},
				{Kind: "filter", Name: "spearman"},
				{Kind: "filter", Name: "chi"},
				{Kind: "filter", Name: "fisher"},
				{Kind: "filter", Name: "count"},
			},
			Classifiers: []pipeline.ClassifierSurface{
				// Azure Studio ships its own defaults, several of them
				// surprising — most famously SVM's single training
				// iteration — which is what gives the real platform its
				// wide default-classifier spread (§5, Figure 7).
				// optimization tolerance / L1 weight / L2 weight / L-BFGS memory
				{Name: "logreg", Params: pipeline.SpecsFor("logreg", "tol", "penalty", "C", "solver")},
				// # of iterations (Azure default: 1) / Lambda (0.001)
				{Name: "svm", Params: pipeline.WithDefault(
					pipeline.SpecsFor("svm", "max_iter", "C"), "max_iter", 1)},
				// learning rate / max # of iterations
				{Name: "perceptron", Params: pipeline.SpecsFor("perceptron", "learning_rate", "max_iter")},
				// # of training iterations
				{Name: "bpm", Params: pipeline.SpecsFor("bpm", "n_iter")},
				// max leaves (20) / min per leaf (10) / learning rate (0.2) / # trees (100)
				{Name: "boosted", Params: pipeline.WithDefault(pipeline.WithDefault(pipeline.WithDefault(pipeline.WithDefault(
					pipeline.SpecsFor("boosted", "max_leaves", "min_leaf", "learning_rate", "n_estimators"),
					"max_leaves", 20), "min_leaf", 10), "learning_rate", 0.2), "n_estimators", 100)},
				// resampling / # trees (8) / max depth (32) / # random splits / min per leaf
				{Name: "randomforest", Params: pipeline.WithDefault(pipeline.WithDefault(
					pipeline.SpecsFor("randomforest", "resampling", "n_estimators", "max_depth", "random_splits", "min_samples_leaf"),
					"n_estimators", 8), "max_depth", 32)},
				// # DAGs (8) / depth / width / optimization steps per layer
				{Name: "jungle", Params: pipeline.WithDefault(
					pipeline.SpecsFor("jungle", "n_dags", "max_depth", "max_width", "opt_steps"),
					"max_width", 64)},
			},
		},
	}}
}

// Local simulates the fully controlled scikit-learn arm: the Table-1 FEAT
// list (filter scores + scalers) and all ten classifiers of Table 1's
// scikit-learn row.
type Local struct {
	userPlatform
}

func newLocal() *Local {
	return &Local{userPlatform{
		name:       "local",
		complexity: 6,
		surface: pipeline.Surface{
			Feats: []pipeline.Feat{
				{Kind: "filter", Name: "fclassif"},
				{Kind: "filter", Name: "mutual"},
				{Kind: "filter", Name: "fisher"},
				{Kind: "scaler", Name: "standard"},
				{Kind: "scaler", Name: "minmax"},
				{Kind: "scaler", Name: "maxabs"},
				{Kind: "scaler", Name: "l1norm"},
				{Kind: "scaler", Name: "l2norm"},
			},
			Classifiers: []pipeline.ClassifierSurface{
				// The local library exposes the most parameters of any arm
				// (Table 2: 32 explored vs Microsoft's 23).
				{Name: "logreg", Params: pipeline.SpecsFor("logreg", "penalty", "C", "solver", "max_iter", "tol")},
				{Name: "naivebayes", Params: pipeline.SpecsFor("naivebayes", "prior")},
				{Name: "svm", Params: pipeline.SpecsFor("svm", "penalty", "C", "loss", "max_iter")},
				{Name: "lda", Params: pipeline.SpecsFor("lda", "solver", "shrinkage")},
				{Name: "knn", Params: pipeline.SpecsFor("knn", "n_neighbors", "weights", "p")},
				{Name: "dtree", Params: pipeline.SpecsFor("dtree", "criterion", "max_features", "max_depth")},
				{Name: "boosted", Params: pipeline.SpecsFor("boosted", "n_estimators", "criterion", "max_features", "learning_rate")},
				{Name: "bagging", Params: pipeline.SpecsFor("bagging", "n_estimators", "max_features", "node_threshold")},
				{Name: "randomforest", Params: pipeline.SpecsFor("randomforest", "n_estimators", "max_features", "max_depth")},
				{Name: "mlp", Params: pipeline.SpecsFor("mlp", "activation", "solver", "alpha", "max_iter")},
			},
		},
	}}
}
