// Package featsel implements the feature-selection step of the pipeline
// (Figure 1). The paper's platforms expose Filter methods — statistical
// scores computed independently of the classifier that rank features by
// class-discriminatory power. Microsoft offers 8 (Fisher LDA plus
// filter-based Pearson, Mutual information, Kendall, Spearman, Chi-square,
// Fisher score, Count); the local scikit-learn arm adds FClassif and
// MutualInfoClassif. All of them reduce to "score each feature, keep the
// top k", except Fisher LDA which projects onto the discriminant direction.
package featsel

import (
	"fmt"
	"math"
	"sort"

	"mlaasbench/internal/dataset"
	"mlaasbench/internal/linalg"
	"mlaasbench/internal/stats"
)

// Selector scores features on training data and selects a subset.
type Selector interface {
	// Name identifies the method in configs and reports.
	Name() string
	// Select returns the indices of the chosen features, ranked from most
	// to least informative, fitted on the given training data.
	Select(x [][]float64, y []int, k int) []int
}

// Method names accepted by New, mirroring Table 1.
var methodNames = []string{
	"pearson", "spearman", "kendall", "mutual", "chi", "fisher", "count", "fclassif",
}

// Names returns the filter-method names (excluding "none").
func Names() []string { return append([]string(nil), methodNames...) }

// New constructs a selector by name. "none" (or "") returns a selector that
// keeps all features in original order.
func New(name string) (Selector, error) {
	switch name {
	case "", "none":
		return passThrough{}, nil
	case "pearson":
		return filter{name: "pearson", score: func(f []float64, y []int) float64 {
			return math.Abs(stats.Pearson(f, labelsAsFloats(y)))
		}}, nil
	case "spearman":
		return filter{name: "spearman", score: func(f []float64, y []int) float64 {
			return math.Abs(stats.Spearman(f, labelsAsFloats(y)))
		}}, nil
	case "kendall":
		return filter{name: "kendall", score: func(f []float64, y []int) float64 {
			return math.Abs(stats.Kendall(f, labelsAsFloats(y)))
		}}, nil
	case "mutual":
		return filter{name: "mutual", score: func(f []float64, y []int) float64 {
			return stats.MutualInformation(f, y, 8)
		}}, nil
	case "chi":
		return filter{name: "chi", score: func(f []float64, y []int) float64 {
			return stats.ChiSquare(f, y, 8)
		}}, nil
	case "fisher":
		return filter{name: "fisher", score: stats.FisherScore}, nil
	case "fclassif":
		return filter{name: "fclassif", score: stats.AnovaF}, nil
	case "count":
		return filter{name: "count", score: func(f []float64, _ []int) float64 {
			// Count-based scoring: prefer features with more distinct
			// observed values (a proxy for information content that
			// needs no labels).
			distinct := map[float64]int{}
			for _, v := range f {
				distinct[v]++
			}
			return float64(len(distinct))
		}}, nil
	default:
		return nil, fmt.Errorf("featsel: unknown method %q", name)
	}
}

type passThrough struct{}

func (passThrough) Name() string { return "none" }

func (passThrough) Select(x [][]float64, _ []int, k int) []int {
	d := width(x)
	if k <= 0 || k > d {
		k = d
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// filter ranks features by a per-feature statistical score.
type filter struct {
	name  string
	score func(feature []float64, y []int) float64
}

func (f filter) Name() string { return f.name }

func (f filter) Select(x [][]float64, y []int, k int) []int {
	d := width(x)
	if d == 0 {
		return nil
	}
	if k <= 0 || k > d {
		k = d
	}
	type scored struct {
		idx   int
		score float64
	}
	all := make([]scored, d)
	col := make([]float64, len(x))
	for j := 0; j < d; j++ {
		for i, row := range x {
			col[i] = row[j]
		}
		s := f.score(col, y)
		if math.IsNaN(s) {
			s = 0
		}
		all[j] = scored{idx: j, score: s}
	}
	sort.SliceStable(all, func(a, b int) bool { return all[a].score > all[b].score })
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].idx
	}
	return out
}

// ApplyTopFraction runs the selector keeping a fraction of the features
// (at least one) and returns the reduced dataset. It is the operation the
// pipeline performs for the FEAT control dimension.
func ApplyTopFraction(sel Selector, d *dataset.Dataset, frac float64) *dataset.Dataset {
	k := int(math.Round(frac * float64(d.D())))
	if k < 1 {
		k = 1
	}
	cols := sel.Select(d.X, d.Y, k)
	// Preserve original column order for determinism of downstream
	// parameter semantics.
	sorted := append([]int(nil), cols...)
	sort.Ints(sorted)
	return d.SelectFeatures(sorted)
}

// FisherLDA projects samples onto the Fisher discriminant direction
// w ∝ (Σ₀+Σ₁)⁻¹(μ₁-μ₀), reducing the dataset to a single maximally
// class-separating feature. This is Microsoft's "Fisher LDA" feature
// selection entry.
type FisherLDA struct {
	w []float64
}

// Name implements Selector-like naming for reports.
func (*FisherLDA) Name() string { return "fisherlda" }

// FitTransform learns the discriminant on (x, y) and returns both the
// projected training data and a projector for future rows.
func (f *FisherLDA) FitTransform(x [][]float64, y []int) [][]float64 {
	d := width(x)
	if d == 0 || len(x) == 0 {
		return nil
	}
	var rows0, rows1 [][]float64
	for i, row := range x {
		if y[i] == 0 {
			rows0 = append(rows0, row)
		} else {
			rows1 = append(rows1, row)
		}
	}
	if len(rows0) == 0 || len(rows1) == 0 {
		// Degenerate: single class; project on first axis.
		f.w = make([]float64, d)
		f.w[0] = 1
		return f.Transform(x)
	}
	m0 := linalg.ColumnMeans(linalg.FromRows(rows0))
	m1 := linalg.ColumnMeans(linalg.FromRows(rows1))
	s0 := linalg.Covariance(linalg.FromRows(rows0), m0)
	s1 := linalg.Covariance(linalg.FromRows(rows1), m1)
	sw := linalg.NewMatrix(d, d)
	for i := range sw.Data {
		sw.Data[i] = s0.Data[i] + s1.Data[i]
	}
	diff := linalg.Sub(m1, m0)
	f.w = linalg.SolveRidge(sw, diff, 1e-6)
	if linalg.Norm2(f.w) == 0 {
		f.w[0] = 1
	}
	return f.Transform(x)
}

// Transform projects rows onto the learned direction (1 output feature).
// The projections share one flat backing array — one allocation for the
// whole batch instead of a 1-element slice per row; each value is the same
// ascending-index Dot as before.
func (f *FisherLDA) Transform(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	backing := make([]float64, len(x))
	for i, row := range x {
		backing[i] = linalg.Dot(f.w, row)
		out[i] = backing[i : i+1 : i+1]
	}
	return out
}

func labelsAsFloats(y []int) []float64 {
	out := make([]float64, len(y))
	for i, v := range y {
		out[i] = float64(v)
	}
	return out
}

func width(x [][]float64) int {
	if len(x) == 0 {
		return 0
	}
	return len(x[0])
}
