package featsel

import (
	"math"
	"testing"
	"testing/quick"

	"mlaasbench/internal/dataset"
	"mlaasbench/internal/rng"
)

// buildDiscriminative returns data where feature 0 perfectly tracks the
// label, feature 1 is pure noise, and feature 2 weakly tracks the label.
func buildDiscriminative(n int, seed uint64) ([][]float64, []int) {
	r := rng.New(seed)
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		signal := float64(cls)*10 + r.Normal(0, 0.1)
		noise := r.NormFloat64()
		weak := float64(cls)*0.8 + r.NormFloat64()
		x[i] = []float64{signal, noise, weak}
		y[i] = cls
	}
	return x, y
}

func TestNewResolvesAllMethods(t *testing.T) {
	for _, name := range append(Names(), "none", "") {
		s, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s == nil {
			t.Fatalf("New(%q) = nil", name)
		}
	}
	if _, err := New("wrapper"); err == nil {
		t.Fatal("expected error for unknown method")
	}
	if len(Names()) != 8 {
		t.Fatalf("want 8 filter methods (Table 1), got %d", len(Names()))
	}
}

func TestFiltersRankSignalFirst(t *testing.T) {
	x, y := buildDiscriminative(200, 1)
	for _, name := range []string{"pearson", "spearman", "kendall", "mutual", "chi", "fisher", "fclassif"} {
		s, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		top := s.Select(x, y, 1)
		if len(top) != 1 || top[0] != 0 {
			t.Errorf("%s: top feature = %v, want [0]", name, top)
		}
		ranked := s.Select(x, y, 3)
		if ranked[2] != 1 {
			t.Errorf("%s: noise feature should rank last, got order %v", name, ranked)
		}
	}
}

func TestCountPrefersHighCardinality(t *testing.T) {
	// Feature 0 binary-valued, feature 1 continuous.
	r := rng.New(2)
	var x [][]float64
	var y []int
	for i := 0; i < 100; i++ {
		x = append(x, []float64{float64(i % 2), r.NormFloat64()})
		y = append(y, i%2)
	}
	s, _ := New("count")
	top := s.Select(x, y, 1)
	if top[0] != 1 {
		t.Fatalf("count should prefer the high-cardinality feature, got %v", top)
	}
}

func TestPassThroughKeepsOrder(t *testing.T) {
	s, _ := New("none")
	x, y := buildDiscriminative(10, 3)
	idx := s.Select(x, y, 0)
	if len(idx) != 3 || idx[0] != 0 || idx[1] != 1 || idx[2] != 2 {
		t.Fatalf("pass-through order %v", idx)
	}
	if got := s.Select(x, y, 2); len(got) != 2 {
		t.Fatalf("pass-through k=2 gave %v", got)
	}
}

func TestSelectClampsK(t *testing.T) {
	x, y := buildDiscriminative(50, 4)
	s, _ := New("pearson")
	if got := s.Select(x, y, 99); len(got) != 3 {
		t.Fatalf("k>d should clamp to d, got %d", len(got))
	}
	if got := s.Select(x, y, -1); len(got) != 3 {
		t.Fatalf("k<=0 should select all, got %d", len(got))
	}
}

func TestApplyTopFraction(t *testing.T) {
	x, y := buildDiscriminative(100, 5)
	d := &dataset.Dataset{Name: "t", X: x, Y: y}
	s, _ := New("fisher")
	half := ApplyTopFraction(s, d, 0.5)
	if half.D() != 2 {
		t.Fatalf("0.5 of 3 features rounds to 2, got %d", half.D())
	}
	tiny := ApplyTopFraction(s, d, 0.01)
	if tiny.D() != 1 {
		t.Fatalf("fraction floor must keep at least 1 feature, got %d", tiny.D())
	}
	if tiny.N() != d.N() {
		t.Fatal("sample count changed")
	}
	// The kept column must be the informative one (original col 0).
	if tiny.X[0][0] < 5 && tiny.X[1][0] < 5 {
		t.Fatalf("kept feature doesn't look like the signal: %v %v", tiny.X[0][0], tiny.X[1][0])
	}
}

func TestFisherLDAProjectsToOneDim(t *testing.T) {
	x, y := buildDiscriminative(200, 6)
	lda := &FisherLDA{}
	proj := lda.FitTransform(x, y)
	if len(proj) != len(x) || len(proj[0]) != 1 {
		t.Fatalf("projection shape %dx%d", len(proj), len(proj[0]))
	}
	// Projected classes must be well separated: compare class means to
	// pooled std.
	var m0, m1, n0, n1 float64
	for i := range proj {
		if y[i] == 0 {
			m0 += proj[i][0]
			n0++
		} else {
			m1 += proj[i][0]
			n1++
		}
	}
	m0 /= n0
	m1 /= n1
	var ss float64
	for i := range proj {
		m := m0
		if y[i] == 1 {
			m = m1
		}
		ss += (proj[i][0] - m) * (proj[i][0] - m)
	}
	std := math.Sqrt(ss / float64(len(proj)))
	if sep := math.Abs(m1-m0) / (std + 1e-12); sep < 3 {
		t.Fatalf("LDA separation %v too small", sep)
	}
}

func TestFisherLDADegenerateSingleClass(t *testing.T) {
	x := [][]float64{{1, 2}, {3, 4}}
	y := []int{0, 0}
	lda := &FisherLDA{}
	proj := lda.FitTransform(x, y)
	if len(proj) != 2 || len(proj[0]) != 1 {
		t.Fatal("degenerate LDA should still project")
	}
	for _, p := range proj {
		if math.IsNaN(p[0]) {
			t.Fatal("NaN projection")
		}
	}
}

func TestFisherLDATransformNewRows(t *testing.T) {
	x, y := buildDiscriminative(100, 7)
	lda := &FisherLDA{}
	lda.FitTransform(x, y)
	out := lda.Transform([][]float64{{10, 0, 0.8}})
	if len(out) != 1 || len(out[0]) != 1 || math.IsNaN(out[0][0]) {
		t.Fatalf("transform output %v", out)
	}
}

// Property: every selector returns distinct, in-range indices of the
// requested count, on arbitrary data.
func TestQuickSelectorsWellFormed(t *testing.T) {
	names := append(Names(), "none")
	f := func(seed uint64, methodIdx, kRaw uint8) bool {
		name := names[int(methodIdx)%len(names)]
		s, err := New(name)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		n, d := 5+r.Intn(40), 1+r.Intn(10)
		x := make([][]float64, n)
		y := make([]int, n)
		for i := range x {
			row := make([]float64, d)
			for j := range row {
				row[j] = r.NormFloat64()
			}
			x[i] = row
			y[i] = r.Intn(2)
		}
		k := 1 + int(kRaw)%d
		idx := s.Select(x, y, k)
		if len(idx) != k {
			return false
		}
		seen := map[int]bool{}
		for _, j := range idx {
			if j < 0 || j >= d || seen[j] {
				return false
			}
			seen[j] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
