package featsel

import "mlaasbench/internal/codec"

// maxLDAFeatures bounds the decoded discriminant length, mirroring the
// scaler limits in preprocess.
const maxLDAFeatures = 1 << 20

// AppendFisherLDA serializes the fitted discriminant direction, bit-exact.
func AppendFisherLDA(b []byte, f *FisherLDA) []byte {
	return codec.AppendF64s(b, f.w)
}

// DecodeFisherLDA reconstructs a projector written by AppendFisherLDA.
func DecodeFisherLDA(r *codec.Reader) (*FisherLDA, error) {
	f := &FisherLDA{w: r.F64s(maxLDAFeatures)}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return f, nil
}
