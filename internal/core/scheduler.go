package core

import (
	"context"
	"sync"

	"mlaasbench/internal/telemetry"
)

// pool bounds the sweep's concurrency. Every leaf unit of work — one dataset
// generation, one batch of configurations — runs inside a slot acquired from
// the pool, so `Workers` is a hard cap on simultaneous CPU-bound work no
// matter how the sweep fans out. Coordinator goroutines (one per dataset,
// one per unit) never hold a slot while waiting on children, which keeps the
// design deadlock-free under nested fan-out.
//
// The first error cancels the pool's context; later failures are dropped.
// Slot occupancy is exported as the telemetry.SweepWorkersGauge gauge.
type pool struct {
	ctx    context.Context
	cancel context.CancelFunc
	slots  chan struct{}
	reg    *telemetry.Registry

	errOnce sync.Once
	err     error
}

func newPool(ctx context.Context, workers int) *pool {
	if workers < 1 {
		workers = 1
	}
	reg := telemetry.RegistryFrom(ctx)
	ctx, cancel := context.WithCancel(ctx)
	return &pool{ctx: ctx, cancel: cancel, slots: make(chan struct{}, workers), reg: reg}
}

// acquire blocks until a slot is free and returns true, or returns false
// when the pool is cancelled first (recording the cancellation as the pool
// error if nothing failed earlier).
func (p *pool) acquire() bool {
	select {
	case p.slots <- struct{}{}:
	case <-p.ctx.Done():
		p.fail(p.ctx.Err())
		return false
	}
	if p.ctx.Err() != nil {
		<-p.slots
		p.fail(p.ctx.Err())
		return false
	}
	p.reg.Gauge(telemetry.SweepWorkersGauge).Inc()
	return true
}

// release returns a slot acquired with acquire.
func (p *pool) release() {
	p.reg.Gauge(telemetry.SweepWorkersGauge).Dec()
	<-p.slots
}

// fail records err as the pool's outcome (first failure wins) and cancels
// all outstanding work.
func (p *pool) fail(err error) {
	if err == nil {
		return
	}
	p.errOnce.Do(func() { p.err = err })
	p.cancel()
}

// done tears the pool down and returns the first recorded error. Call only
// after every worker goroutine has finished.
func (p *pool) done() error {
	p.cancel()
	return p.err
}
