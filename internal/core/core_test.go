package core

import (
	"bytes"
	"context"
	"math"
	"strings"
	"sync"
	"testing"

	"mlaasbench/internal/synth"
)

// The analyses are exercised against one shared small sweep (8 corpus
// datasets, all platforms) so the suite stays fast while every code path
// sees realistic data.
var (
	sweepOnce sync.Once
	sharedSw  *Sweep
	sweepErr  error
)

func testSweep(t *testing.T) *Sweep {
	t.Helper()
	sweepOnce.Do(func() {
		opts := DefaultOptions()
		opts.MaxDatasets = 8
		sharedSw, sweepErr = RunSweep(context.Background(), opts)
	})
	if sweepErr != nil {
		t.Fatal(sweepErr)
	}
	return sharedSw
}

func TestSweepShape(t *testing.T) {
	sw := testSweep(t)
	if len(sw.Datasets) != 8 {
		t.Fatalf("%d datasets, want 8", len(sw.Datasets))
	}
	if len(sw.Platforms()) != 7 {
		t.Fatalf("platforms: %v", sw.Platforms())
	}
	for _, p := range sw.Platforms() {
		for _, ds := range sw.DatasetNames() {
			ms := sw.ByPlatform[p][ds]
			if len(ms) == 0 {
				t.Fatalf("no measurements for %s/%s", p, ds)
			}
			for _, m := range ms {
				if m.Scores.F1 < 0 || m.Scores.F1 > 1 {
					t.Fatalf("%s/%s: F1 %v", p, ds, m.Scores.F1)
				}
				if len(m.Pred) == 0 {
					t.Fatalf("%s/%s: predictions not stored", p, ds)
				}
			}
		}
	}
}

func TestSweepBaselinesExist(t *testing.T) {
	sw := testSweep(t)
	for _, p := range sw.Platforms() {
		for _, ds := range sw.DatasetNames() {
			if _, ok := sw.Baseline(p, ds); !ok {
				t.Fatalf("no baseline measurement for %s/%s", p, ds)
			}
		}
	}
}

func TestSweepBestAtLeastBaseline(t *testing.T) {
	sw := testSweep(t)
	for _, p := range sw.Platforms() {
		for _, ds := range sw.DatasetNames() {
			base, _ := sw.Baseline(p, ds)
			best, ok := sw.Best(p, ds, "f1")
			if !ok {
				t.Fatalf("no best for %s/%s", p, ds)
			}
			if best.Scores.F1 < base.Scores.F1 {
				t.Fatalf("%s/%s: best %.3f < baseline %.3f", p, ds, best.Scores.F1, base.Scores.F1)
			}
		}
	}
}

func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultOptions()
	opts.MaxDatasets = 2
	if _, err := RunSweep(ctx, opts); err == nil {
		t.Fatal("cancelled sweep should fail")
	}
}

func TestSweepUnknownPlatform(t *testing.T) {
	opts := DefaultOptions()
	opts.Platforms = []string{"watson"}
	if _, err := RunSweep(context.Background(), opts); err == nil {
		t.Fatal("expected error")
	}
}

func TestFig4OrderAndOptimizedGain(t *testing.T) {
	sw := testSweep(t)
	rows := sw.Fig4()
	if len(rows) != 7 {
		t.Fatalf("%d rows", len(rows))
	}
	for i, r := range rows {
		if r.OptimizedF1 < r.BaselineF1 {
			t.Errorf("%s: optimized %.3f < baseline %.3f", r.Platform, r.OptimizedF1, r.BaselineF1)
		}
		if i > 0 && r.Platform == rows[i-1].Platform {
			t.Error("duplicate platform rows")
		}
	}
	// The headline finding, scaled to the sampled corpus: the most complex
	// platforms, optimized, beat the black boxes.
	byName := map[string]PlatformPerformance{}
	for _, r := range rows {
		byName[r.Platform] = r
	}
	if byName["local"].OptimizedF1 <= byName["google"].OptimizedF1 {
		t.Errorf("tuned local (%.3f) should beat google (%.3f)", byName["local"].OptimizedF1, byName["google"].OptimizedF1)
	}
	if byName["microsoft"].OptimizedF1 <= byName["abm"].OptimizedF1 {
		t.Errorf("tuned microsoft (%.3f) should beat abm (%.3f)", byName["microsoft"].OptimizedF1, byName["abm"].OptimizedF1)
	}
}

func TestTable3RowsComplete(t *testing.T) {
	sw := testSweep(t)
	for _, optimized := range []bool{false, true} {
		rows := sw.Table3(optimized)
		if len(rows) != 7 {
			t.Fatalf("%d rows", len(rows))
		}
		// Rows sorted by average Friedman ranking ascending.
		for i := 1; i < len(rows); i++ {
			if rows[i].AvgFriedman < rows[i-1].AvgFriedman {
				t.Fatal("rows not sorted by Friedman ranking")
			}
		}
		for _, r := range rows {
			for _, m := range []string{"f1", "accuracy", "precision", "recall"} {
				if _, ok := r.Avg[m]; !ok {
					t.Fatalf("row %s missing metric %s", r.Platform, m)
				}
			}
		}
	}
}

func TestFig5ClassifierDominates(t *testing.T) {
	sw := testSweep(t)
	rows := sw.Fig5()
	// Google/ABM excluded; the FEAT column has entries only for
	// microsoft/local; amazon lacks CLF.
	var avgByDim = map[string][]float64{}
	// Restrict the CLF-vs-PARA comparison to platforms exposing both
	// dimensions; Amazon is PARA-only and anomalously PARA-variable
	// (§5.2 observes exactly that).
	clfCapable := map[string]bool{"bigml": true, "predictionio": true, "microsoft": true, "local": true}
	for _, r := range rows {
		if r.Platform == "google" || r.Platform == "abm" {
			t.Fatalf("black box %s in Fig5", r.Platform)
		}
		if r.Supported && clfCapable[r.Platform] {
			avgByDim[r.Dimension] = append(avgByDim[r.Dimension], r.Percent)
		}
		if !r.Supported && r.Dimension == "feat" && (r.Platform == "microsoft" || r.Platform == "local") {
			t.Errorf("%s should support FEAT", r.Platform)
		}
	}
	mean := func(v []float64) float64 {
		s := 0.0
		for _, x := range v {
			s += x
		}
		if len(v) == 0 {
			return 0
		}
		return s / float64(len(v))
	}
	// §4.2's key finding: CLF yields the largest average improvement. On
	// an 8-dataset slice allow a small noise margin; the full-corpus
	// artifact (results_quick.txt) shows the clean separation.
	if mean(avgByDim["clf"]) <= 0.85*mean(avgByDim["para"]) {
		t.Errorf("CLF improvement (%.1f%%) should dominate PARA (%.1f%%)", mean(avgByDim["clf"]), mean(avgByDim["para"]))
	}
	for _, dim := range Dimensions() {
		for _, v := range avgByDim[dim] {
			if v < -100 || v > 500 {
				t.Fatalf("%s improvement %v%% out of plausible range", dim, v)
			}
		}
	}
}

func TestFig6VariationGrowsWithComplexity(t *testing.T) {
	sw := testSweep(t)
	rows := sw.Fig6()
	byName := map[string]VariationPoint{}
	for _, v := range rows {
		byName[v.Platform] = v
		if v.Max < v.Q3 || v.Q3 < v.Median || v.Median < v.Q1 || v.Q1 < v.Min {
			t.Fatalf("%s: quartiles out of order: %+v", v.Platform, v)
		}
	}
	// Black boxes have a single config: zero spread.
	if spread := byName["google"].Max - byName["google"].Min; spread != 0 {
		t.Errorf("google spread %v, want 0", spread)
	}
	// §5.1: the most configurable platforms have the widest spread.
	localSpread := byName["local"].Max - byName["local"].Min
	amazonSpread := byName["amazon"].Max - byName["amazon"].Min
	if localSpread <= amazonSpread {
		t.Errorf("local spread %.3f should exceed amazon %.3f", localSpread, amazonSpread)
	}
}

func TestFig7NormalizedWithinUnit(t *testing.T) {
	sw := testSweep(t)
	overall := sw.Fig6()
	for _, v := range sw.Fig7() {
		if !v.Supported {
			continue
		}
		n := NormalizedRange(v, overall)
		if n < 0 || n > 1.0001 {
			t.Fatalf("%s/%s: normalized range %v", v.Platform, v.Dimension, n)
		}
	}
}

func TestFig8MonotoneAndConverges(t *testing.T) {
	sw := testSweep(t)
	pts := sw.Fig8()
	byPlat := map[string][]KSubsetPoint{}
	for _, p := range pts {
		byPlat[p.Platform] = append(byPlat[p.Platform], p)
	}
	for p, series := range byPlat {
		for i := 1; i < len(series); i++ {
			if series[i].AvgBestF < series[i-1].AvgBestF-1e-9 {
				t.Fatalf("%s: expected-max not monotone in k", p)
			}
		}
		// §5.2: 3 random classifiers get within 10% of the full exploration.
		last := series[len(series)-1].AvgBestF
		k3 := series[minInt(2, len(series)-1)].AvgBestF
		if last > 0 && k3 < 0.85*last {
			t.Errorf("%s: k=3 %.3f too far from optimum %.3f", p, k3, last)
		}
	}
	if _, ok := byPlat["amazon"]; ok {
		t.Error("amazon has one classifier; no Fig8 series expected")
	}
	for _, want := range []string{"bigml", "predictionio", "microsoft", "local"} {
		if _, ok := byPlat[want]; !ok {
			t.Errorf("missing Fig8 series for %s", want)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestTable4RanksAreFractions(t *testing.T) {
	sw := testSweep(t)
	for _, p := range []string{"bigml", "predictionio", "microsoft", "local"} {
		for _, optimized := range []bool{false, true} {
			ranks := sw.Table4(p, optimized)
			if len(ranks) == 0 {
				t.Fatalf("%s: no ranks", p)
			}
			if len(ranks) > 4 {
				t.Fatalf("%s: %d ranks, want ≤4", p, len(ranks))
			}
			prev := math.Inf(1)
			for _, r := range ranks {
				if r.Fraction <= 0 || r.Fraction > 1 {
					t.Fatalf("%s: fraction %v", p, r.Fraction)
				}
				if r.Fraction > prev {
					t.Fatalf("%s: ranks not sorted", p)
				}
				prev = r.Fraction
				if r.Label == "" {
					t.Fatalf("%s: classifier %s missing label", p, r.Classifier)
				}
			}
		}
	}
}

func TestConfigCountsMatchTable2Ordering(t *testing.T) {
	sw := testSweep(t)
	counts := map[string]int{}
	for _, p := range sw.Platforms() {
		counts[p] = sw.ConfigCount(p)
	}
	if counts["google"] != 1 || counts["abm"] != 1 {
		t.Fatalf("black boxes should have 1 config: %v", counts)
	}
	if !(counts["amazon"] < counts["predictionio"] && counts["predictionio"] < counts["bigml"] &&
		counts["bigml"] < counts["microsoft"] && counts["microsoft"] < counts["local"]) {
		t.Fatalf("config counts out of complexity order: %v", counts)
	}
}

func TestReportsRender(t *testing.T) {
	sw := testSweep(t)
	var buf bytes.Buffer
	sw.WriteTable2(&buf)
	sw.WriteFig4(&buf)
	sw.WriteTable3(&buf)
	sw.WriteFig5(&buf)
	sw.WriteTable4(&buf)
	sw.WriteFig6(&buf)
	sw.WriteFig7(&buf)
	sw.WriteFig8(&buf)
	out := buf.String()
	for _, want := range []string{"Table 2", "Figure 4", "Table 3", "Figure 5", "Table 4", "Figure 6", "Figure 7", "Figure 8", "local", "microsoft"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report output missing %q", want)
		}
	}
	var fig3 bytes.Buffer
	WriteFig3(&fig3, synth.Quick, synth.CorpusSeed)
	if !strings.Contains(fig3.String(), "Life Science") {
		t.Fatal("Fig3 output missing domain breakdown")
	}
}

func TestDomainBreakdown(t *testing.T) {
	sw := testSweep(t)
	rows := sw.DomainBreakdown()
	if len(rows) == 0 {
		t.Fatal("no domain rows")
	}
	totalDS := 0
	seen := map[string]bool{}
	for _, r := range rows {
		if r.OptimizedF1 < r.BaselineF1-1e-9 {
			t.Fatalf("%s/%s: optimized %.3f below baseline %.3f", r.Domain, r.Platform, r.OptimizedF1, r.BaselineF1)
		}
		if r.Platform == "local" {
			totalDS += r.Datasets
		}
		seen[string(r.Domain)+"/"+r.Platform] = true
	}
	if totalDS != len(sw.Datasets) {
		t.Fatalf("domain rows cover %d datasets, sweep has %d", totalDS, len(sw.Datasets))
	}
	var buf bytes.Buffer
	sw.WriteDomainBreakdown(&buf)
	if !strings.Contains(buf.String(), "domain") {
		t.Fatal("domain report malformed")
	}
}

func TestMetricAgreement(t *testing.T) {
	sw := testSweep(t)
	// Optimized averages spread widely, so the avg-F and Friedman
	// orderings must agree even on a small corpus slice. Baseline
	// averages are near-ties on 8 datasets, so there we only require a
	// well-formed coefficient; the full-corpus agreement is reported by
	// BenchmarkAblation_MetricAgreement.
	if rho := sw.MetricAgreement(true); rho < 0.5 || rho > 1.0001 {
		t.Fatalf("optimized Spearman agreement %v — average F-score not representative", rho)
	}
	if rho := sw.MetricAgreement(false); rho < -1.0001 || rho > 1.0001 {
		t.Fatalf("baseline Spearman agreement %v out of range", rho)
	}
}

func TestExpectedMaxOfSubset(t *testing.T) {
	vals := []float64{0.2, 0.5, 0.9}
	// k = m: always the max.
	if got := expectedMaxOfSubset(vals, 3); got != 0.9 {
		t.Fatalf("k=m: %v", got)
	}
	// k=1: uniform average.
	if got := expectedMaxOfSubset(vals, 1); math.Abs(got-(0.2+0.5+0.9)/3) > 1e-12 {
		t.Fatalf("k=1: %v", got)
	}
	// k=2 of 3: max is the largest in 2/3 of subsets, middle in 1/3.
	want := (0.9*2 + 0.5) / 3
	if got := expectedMaxOfSubset(vals, 2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("k=2: got %v want %v", got, want)
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{{5, 2, 10}, {10, 0, 1}, {10, 10, 1}, {6, 3, 20}, {3, 5, 0}}
	for _, c := range cases {
		if got := binomial(c.n, c.k); got != c.want {
			t.Fatalf("C(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}
