package core

import (
	"bytes"
	"strings"
	"testing"

	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/platforms"
	"mlaasbench/internal/rng"
	"mlaasbench/internal/stats"
	"mlaasbench/internal/synth"
)

func TestFamilyModelOnProbeDataset(t *testing.T) {
	sw := testSweep(t)
	// Find a dataset with a trainable model; prefer non-linear concepts
	// where the family gap is visible.
	var trained *FamilyModel
	for _, ds := range sw.DatasetNames() {
		fm, err := sw.TrainFamilyModel(ds)
		if err == nil {
			trained = fm
			break
		}
	}
	if trained == nil {
		t.Fatal("no dataset produced a trainable family model")
	}
	if trained.ValF1 < 0 || trained.ValF1 > 1 || trained.TestF1 < 0 || trained.TestF1 > 1 {
		t.Fatalf("scores out of range: %+v", trained)
	}
	if trained.Samples < 10 {
		t.Fatalf("model trained on %d samples", trained.Samples)
	}
}

func TestFamilyModelPredictsKnownMeasurements(t *testing.T) {
	sw := testSweep(t)
	// On a dataset with a qualified model, the model should classify the
	// majority of held-out known-family measurements correctly — that is
	// what TestF1 asserts; here we spot-check the API path.
	for _, ds := range sw.DatasetNames() {
		fm, err := sw.TrainFamilyModel(ds)
		if err != nil || !fm.Qualified {
			continue
		}
		correct, total := 0, 0
		for _, m := range sw.ByPlatform["local"][ds] {
			lbl, err := familyLabel(m.Config.Classifier)
			if err != nil {
				continue
			}
			nonLinear, err := fm.PredictFamily(m)
			if err != nil {
				t.Fatal(err)
			}
			if (nonLinear && lbl == 1) || (!nonLinear && lbl == 0) {
				correct++
			}
			total++
		}
		if total == 0 {
			continue
		}
		if acc := float64(correct) / float64(total); acc < 0.8 {
			t.Fatalf("%s: qualified model only %.2f accurate on local measurements", ds, acc)
		}
		return
	}
	t.Skip("no qualified model in the sampled sweep")
}

func TestInferFamiliesReport(t *testing.T) {
	sw := testSweep(t)
	rep, err := sw.InferFamilies(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Models) == 0 {
		t.Fatal("no family models trained")
	}
	cdf := rep.ValidationCDF()
	if len(cdf) == 0 {
		t.Fatal("empty Fig12 CDF")
	}
	// Counts must be consistent with choices.
	for _, p := range []string{"google", "abm", "amazon"} {
		lin, non := 0, 0
		for _, nonLinear := range rep.Choices[p] {
			if nonLinear {
				non++
			} else {
				lin++
			}
		}
		if lin != rep.LinearCount[p] || non != rep.NonLinearCount[p] {
			t.Fatalf("%s: counts inconsistent", p)
		}
	}
	var buf bytes.Buffer
	WriteInference(&buf, rep)
	if !strings.Contains(buf.String(), "Figure 12") {
		t.Fatal("inference report missing Fig12")
	}
}

func TestFamilyCDFsOnCircle(t *testing.T) {
	// Build a dedicated mini-sweep over CIRCLE only: linear classifiers
	// must concentrate at low F1, non-linear at high F1 (Figure 11a).
	sw := probeSweep(t)
	lin, non := sw.FamilyCDFs("CIRCLE")
	if len(lin) == 0 || len(non) == 0 {
		t.Fatal("empty family CDFs")
	}
	// Compare medians.
	medLin := medianOfCDF(lin)
	medNon := medianOfCDF(non)
	if medNon <= medLin {
		t.Fatalf("non-linear median %.3f should exceed linear %.3f on CIRCLE", medNon, medLin)
	}
	var buf bytes.Buffer
	sw.WriteFamilyCDFs(&buf, "CIRCLE")
	if !strings.Contains(buf.String(), "Figure 11") {
		t.Fatal("family CDF output malformed")
	}
}

func medianOfCDF(pts []stats.CDFPoint) float64 {
	for _, p := range pts {
		if p.P >= 0.5 {
			return p.X
		}
	}
	return pts[len(pts)-1].X
}

// probeSweep runs a one-dataset sweep over CIRCLE for the §6 tests.
var probeCache *Sweep

func probeSweep(t *testing.T) *Sweep {
	t.Helper()
	if probeCache == nil {
		specs := synth.Corpus()
		idx := -1
		for i, s := range specs {
			if s.Name == "CIRCLE" {
				idx = i
				break
			}
		}
		if idx < 0 {
			t.Fatal("CIRCLE missing from corpus")
		}
		sw := runSingleDatasetSweep(t, specs[idx])
		probeCache = sw
	}
	return probeCache
}

func runSingleDatasetSweep(t *testing.T, spec synth.Spec) *Sweep {
	t.Helper()
	// RunSweep truncates the corpus from the front, so a targeted sweep
	// reuses the measurement internals directly.
	opts := DefaultOptions()
	sw := &Sweep{Opts: opts, ByPlatform: map[string]map[string][]Measurement{}}
	ds := synth.GenerateClean(spec, opts.Profile, opts.Seed)
	sp := ds.StratifiedSplit(0.7, rng.New(opts.Seed).Split("splits").Split(ds.Name))
	sw.Datasets = append(sw.Datasets, DatasetInfo{
		Name: ds.Name, Domain: ds.Domain, N: ds.N(), D: ds.D(), Linear: ds.Linear, TestY: sp.Test.Y, Split: sp,
	})
	for _, name := range platforms.Names() {
		p, err := platforms.New(name)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := measurePlatform(p, sp, ds.Name, opts)
		if err != nil {
			t.Fatal(err)
		}
		sw.ByPlatform[name] = map[string][]Measurement{ds.Name: ms}
	}
	return sw
}

func TestBlackBoxChoicesOnProbes(t *testing.T) {
	// End-to-end §6.2 on CIRCLE: the inference should find the black boxes
	// non-linear where the probe is non-linear — provided the model
	// qualifies.
	sw := probeSweep(t)
	rep, err := sw.InferFamilies(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Qualified) == 0 {
		t.Skip("CIRCLE model did not qualify in quick profile")
	}
	for _, p := range []string{"google", "abm"} {
		nonLinear, ok := rep.Choices[p]["CIRCLE"]
		if !ok {
			t.Fatalf("%s: no choice recorded", p)
		}
		if !nonLinear {
			t.Errorf("%s inferred linear on CIRCLE", p)
		}
	}
}

func TestBoundaryExtraction(t *testing.T) {
	circle, linear := ProbeDatasets(synth.Quick, synth.CorpusSeed)
	google, err := platforms.New("google")
	if err != nil {
		t.Fatal(err)
	}
	bm, err := ExtractBoundary(google, circle, pipeline.Config{}, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(bm.Points) != 400 || len(bm.Labels) != 400 {
		t.Fatalf("mesh size %d/%d", len(bm.Points), len(bm.Labels))
	}
	ascii := bm.ASCII()
	if !strings.Contains(ascii, "#") || !strings.Contains(ascii, "·") {
		t.Fatal("ASCII boundary should show both classes")
	}
	if lines := strings.Count(ascii, "\n"); lines != 20 {
		t.Fatalf("ASCII has %d rows", lines)
	}

	// Fig 10: Google's boundary is non-linear on CIRCLE, linear on LINEAR.
	circleScore := bm.LinearityScore()
	bmLin, err := ExtractBoundary(google, linear, pipeline.Config{}, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	linearScore := bmLin.LinearityScore()
	if circleScore >= linearScore {
		t.Errorf("linearity on CIRCLE (%.3f) should be below LINEAR (%.3f)", circleScore, linearScore)
	}
	if linearScore < 0.9 {
		t.Errorf("LINEAR boundary linearity %.3f — should be close to a straight line", linearScore)
	}
}

func TestBoundaryRejectsLowDim(t *testing.T) {
	google, _ := platforms.New("google")
	oneD := synth.GenerateClean(synth.Spec{Name: "1d", Gen: synth.GenLinear, N: 40, D: 1}, synth.Quick, 1)
	if _, err := ExtractBoundary(google, oneD, pipeline.Config{}, 10, 1); err == nil {
		t.Fatal("expected error for 1-D dataset")
	}
}
