package core

import (
	"fmt"
	"io"
	"sort"

	"mlaasbench/internal/dataset"
	"mlaasbench/internal/metrics"
)

// Extension: the paper breaks the corpus down by application domain
// (Figure 3a) but reports performance only in aggregate. This analysis
// crosses the two: per-domain optimized performance per platform, showing
// where each service's strengths are concentrated.

// DomainRow is one domain's summary for one platform.
type DomainRow struct {
	Domain      dataset.Domain `json:"domain"`
	Platform    string         `json:"platform"`
	Datasets    int            `json:"datasets"`
	OptimizedF1 float64        `json:"optimized_f1"`
	BaselineF1  float64        `json:"baseline_f1"`
}

// DomainBreakdown computes per-domain baseline/optimized averages.
func (s *Sweep) DomainBreakdown() []DomainRow {
	type key struct {
		dom  dataset.Domain
		plat string
	}
	opt := map[key][]float64{}
	base := map[key][]float64{}
	for _, di := range s.Datasets {
		for _, p := range s.Platforms() {
			k := key{di.Domain, p}
			if m, ok := s.Best(p, di.Name, "f1"); ok {
				opt[k] = append(opt[k], m.Scores.F1)
			}
			if m, ok := s.Baseline(p, di.Name); ok {
				base[k] = append(base[k], m.Scores.F1)
			}
		}
	}
	var out []DomainRow
	for k, vals := range opt {
		out = append(out, DomainRow{
			Domain:      k.dom,
			Platform:    k.plat,
			Datasets:    len(vals),
			OptimizedF1: metrics.Mean(vals),
			BaselineF1:  metrics.Mean(base[k]),
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Domain != out[b].Domain {
			return out[a].Domain < out[b].Domain
		}
		return out[a].Platform < out[b].Platform
	})
	return out
}

// WriteDomainBreakdown renders the extension table: rows are domains,
// columns platforms, cells optimized F1.
func (s *Sweep) WriteDomainBreakdown(w io.Writer) {
	rows := s.DomainBreakdown()
	plats := s.Platforms()
	fmt.Fprintln(w, "Extension: optimized F-score by application domain (Figure 3a × Figure 4)")
	fmt.Fprintf(w, "  %-22s %5s", "domain", "#ds")
	for _, p := range plats {
		fmt.Fprintf(w, " %12s", p)
	}
	fmt.Fprintln(w)
	cell := map[dataset.Domain]map[string]DomainRow{}
	var domains []dataset.Domain
	for _, r := range rows {
		if cell[r.Domain] == nil {
			cell[r.Domain] = map[string]DomainRow{}
			domains = append(domains, r.Domain)
		}
		cell[r.Domain][r.Platform] = r
	}
	for _, dom := range domains {
		n := 0
		for _, r := range cell[dom] {
			n = r.Datasets
			break
		}
		fmt.Fprintf(w, "  %-22s %5d", dom, n)
		for _, p := range plats {
			fmt.Fprintf(w, " %12.3f", cell[dom][p].OptimizedF1)
		}
		fmt.Fprintln(w)
	}
}
