package core

import (
	"fmt"
	"strings"

	"mlaasbench/internal/dataset"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/platforms"
	"mlaasbench/internal/rng"
	"mlaasbench/internal/synth"
)

// BoundaryMap is a labeled mesh over a 2-D dataset — the paper's probe for
// visualizing a black-box platform's decision boundary (§6.1, Figures 10
// and 13): query the trained model on a steps×steps grid and plot the
// predicted classes.
type BoundaryMap struct {
	Platform string      `json:"platform"`
	Dataset  string      `json:"dataset"`
	Steps    int         `json:"steps"`
	Points   [][]float64 `json:"points"`
	Labels   []int       `json:"labels"`
}

// ExtractBoundary trains the platform on the full probe dataset and labels
// a steps×steps mesh over its bounding box. For user platforms, cfg selects
// the configuration; black boxes ignore it.
func ExtractBoundary(p platforms.Platform, probe *dataset.Dataset, cfg pipeline.Config, steps int, seed uint64) (*BoundaryMap, error) {
	if probe.D() < 2 {
		return nil, fmt.Errorf("core: boundary probe needs a 2-D dataset, got %d-D", probe.D())
	}
	pts := probe.MeshGrid(steps, 0.25)
	labels, err := p.PredictPoints(cfg, probe, pts, seed)
	if err != nil {
		return nil, fmt.Errorf("core: boundary probe on %s: %w", p.Name(), err)
	}
	return &BoundaryMap{
		Platform: p.Name(),
		Dataset:  probe.Name,
		Steps:    steps,
		Points:   pts,
		Labels:   labels,
	}, nil
}

// ProbeDatasets generates the two §6 probe datasets, CIRCLE and LINEAR,
// under the given profile.
func ProbeDatasets(profile synth.Profile, seed uint64) (circle, linear *dataset.Dataset) {
	return synth.GenerateClean(synth.CircleSpec(), profile, seed),
		synth.GenerateClean(synth.LinearSpec(), profile, seed)
}

// ASCII renders the boundary as a text raster (rows = feature 2 descending,
// cols = feature 1 ascending), '·' for class 0 and '#' for class 1 — the
// repo's stand-in for the paper's scatter plots.
func (b *BoundaryMap) ASCII() string {
	var sb strings.Builder
	// Points were generated column-major: i over x (rows of loop), j over y.
	// Rebuild the grid: index = i*steps + j, x ascending with i, y ascending
	// with j. Render y descending (top of plot = max y).
	for j := b.Steps - 1; j >= 0; j-- {
		for i := 0; i < b.Steps; i++ {
			if b.Labels[i*b.Steps+j] == 1 {
				sb.WriteByte('#')
			} else {
				sb.WriteByte('\xc2')
				sb.WriteByte('\xb7') // '·'
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// LinearityScore measures how well a single straight line explains the
// boundary: it fits the best linear separator to the mesh labels (via LDA
// on the mesh points) and returns the fraction of mesh points that
// separator reproduces. Values near 1 indicate a linear boundary; curved or
// closed boundaries score lower. This quantifies the visual judgement of
// Figure 10.
func (b *BoundaryMap) LinearityScore() float64 {
	if len(b.Labels) == 0 {
		return 0
	}
	// Degenerate single-class maps are trivially linear.
	pos := 0
	for _, l := range b.Labels {
		pos += l
	}
	if pos == 0 || pos == len(b.Labels) {
		return 1
	}
	cfg := pipeline.Config{Classifier: "lda", Params: map[string]any{}}
	meshTrain := &dataset.Dataset{Name: b.Dataset + "/meshfit", X: b.Points, Y: b.Labels}
	pred, err := pipeline.PredictPoints(cfg, meshTrain, b.Points, rng.New(0xb0d1))
	if err != nil {
		return 0
	}
	agree := 0
	for i := range pred {
		if pred[i] == b.Labels[i] {
			agree++
		}
	}
	return float64(agree) / float64(len(pred))
}
