package core

import (
	"context"
	"math"
	"testing"

	"mlaasbench/internal/telemetry"
)

func sumSpansByName(sd telemetry.SpanData, totals map[string]float64) {
	totals[sd.Name] += sd.DurationSeconds
	for _, c := range sd.Children {
		sumSpansByName(c, totals)
	}
}

// TestParallelSweepTraceStageTotals is the acceptance check tying the two
// telemetry surfaces together: with the flight recorder sized to retain
// every trace, the per-stage durations summed over the retained span trees
// must agree with the stage histogram totals to within 5%. TimeCtx feeds
// both surfaces from one observation, so a divergence means spans were
// dropped or double-counted somewhere.
//
// (The name matches the Makefile's core race pattern -run 'TestParallel|...'
// so this stitch runs under the race detector in `make race`.)
func TestParallelSweepTraceStageTotals(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.ConfigureTraces(telemetry.TraceConfig{
		Capacity:    1 << 16, // retain everything a 2-dataset quick sweep emits
		KeepSlowest: 16,
		SampleRate:  1,
		Seed:        1,
	})
	ctx := telemetry.WithRegistry(context.Background(), reg)

	opts := DefaultOptions()
	opts.MaxDatasets = 2
	opts.Platforms = []string{"amazon", "microsoft"}
	opts.Workers = 4
	if _, err := RunSweep(ctx, opts); err != nil {
		t.Fatalf("sweep: %v", err)
	}

	traces := reg.Traces().Snapshot()
	if len(traces) == 0 {
		t.Fatal("flight recorder retained no traces")
	}
	if kept := reg.Counter(telemetry.TracesEvictedTotal).Value(); kept != 0 {
		t.Fatalf("buffer evicted %d traces; capacity too small for the criterion", kept)
	}
	spanTotals := map[string]float64{}
	for _, td := range traces {
		if td.DroppedSpans > 0 {
			t.Fatalf("trace %s dropped %d spans", td.TraceID, td.DroppedSpans)
		}
		sumSpansByName(td.Root, spanTotals)
	}

	for _, stage := range []string{"fit", "predict", "score"} {
		hist := reg.Histogram(telemetry.StageHistogram, "stage", stage).Sum()
		spans := spanTotals[stage]
		if hist <= 0 || spans <= 0 {
			t.Errorf("stage %s: empty totals (hist %.6f, spans %.6f)", stage, hist, spans)
			continue
		}
		if diff := math.Abs(hist-spans) / hist; diff > 0.05 {
			t.Errorf("stage %s: trace span total %.6fs vs histogram total %.6fs (%.1f%% apart, want <=5%%)",
				stage, spans, hist, 100*diff)
		}
	}
}
