package core

import (
	"fmt"

	"mlaasbench/internal/stats"
)

// The §6.3 analysis: a deliberately naïve classifier-selection strategy —
// train a default Logistic Regression and a default Decision Tree, keep
// whichever scores higher — compared against the black boxes' hidden
// choices. Where the naïve strategy wins, the platform's automatic choice
// had room to improve.

// NaiveChoice is the naïve strategy's outcome on one dataset.
type NaiveChoice struct {
	Dataset   string  `json:"dataset"`
	NonLinear bool    `json:"nonlinear"` // true when the Decision Tree won
	F1        float64 `json:"f1"`
}

// NaiveStrategy evaluates the naïve LR-vs-DT switch on every dataset using
// the local platform's measurements (both candidates are default-parameter,
// FEAT-off configs, which the sweep always contains).
func (s *Sweep) NaiveStrategy() ([]NaiveChoice, error) {
	local, ok := s.ByPlatform["local"]
	if !ok {
		return nil, fmt.Errorf("core: naive strategy needs the local platform in the sweep")
	}
	var out []NaiveChoice
	for _, ds := range s.DatasetNames() {
		var lrF1, dtF1 float64
		var haveLR, haveDT bool
		for _, m := range local[ds] {
			if m.Config.Feat.Kind != "none" || !s.hasDefaultParams(m) {
				continue
			}
			switch m.Config.Classifier {
			case "logreg":
				lrF1, haveLR = m.Scores.F1, true
			case "dtree":
				dtF1, haveDT = m.Scores.F1, true
			}
		}
		if !haveLR || !haveDT {
			return nil, fmt.Errorf("core: missing default LR/DT measurements on %s", ds)
		}
		choice := NaiveChoice{Dataset: ds, F1: lrF1}
		if dtF1 > lrF1 {
			choice.NonLinear = true
			choice.F1 = dtF1
		}
		out = append(out, choice)
	}
	return out, nil
}

// NaiveComparison is the Table-6 / Figure-14 analysis against one black-box
// platform.
type NaiveComparison struct {
	Platform string `json:"platform"`
	// Wins counts qualified datasets where the naïve strategy beat the
	// platform, broken down by (platform family, naive family):
	// [platformNonLinear][naiveNonLinear].
	Wins [2][2]int `json:"wins"`
	// Gaps lists the F-score differences (naive − platform) on datasets
	// where the naïve strategy won with a *different* family (Fig 14).
	Gaps []float64 `json:"gaps"`
	// TotalQualified is the number of qualified datasets compared.
	TotalQualified int `json:"total_qualified"`
	// TotalWins is the number of those where the naïve strategy won.
	TotalWins int `json:"total_wins"`
	// AvgGapDifferentFamily averages Gaps (0 when empty).
	AvgGapDifferentFamily float64 `json:"avg_gap_different_family"`
}

// CompareNaive runs the §6.3 comparison of the naïve strategy against a
// black-box platform over the inference report's qualified datasets.
func (s *Sweep) CompareNaive(platform string, rep *InferenceReport) (*NaiveComparison, error) {
	choices, err := s.NaiveStrategy()
	if err != nil {
		return nil, err
	}
	byDS := map[string]NaiveChoice{}
	for _, c := range choices {
		byDS[c.Dataset] = c
	}
	cmp := &NaiveComparison{Platform: platform}
	for _, ds := range rep.Qualified {
		platNonLinear, ok := rep.Choices[platform][ds]
		if !ok {
			continue
		}
		nc, ok := byDS[ds]
		if !ok {
			continue
		}
		ms := s.ByPlatform[platform][ds]
		if len(ms) == 0 {
			continue
		}
		platF1 := ms[0].Scores.F1
		cmp.TotalQualified++
		if nc.F1 <= platF1 {
			continue
		}
		cmp.TotalWins++
		pi, ni := 0, 0
		if platNonLinear {
			pi = 1
		}
		if nc.NonLinear {
			ni = 1
		}
		cmp.Wins[pi][ni]++
		if platNonLinear != nc.NonLinear {
			cmp.Gaps = append(cmp.Gaps, nc.F1-platF1)
		}
	}
	if len(cmp.Gaps) > 0 {
		sum := 0.0
		for _, g := range cmp.Gaps {
			sum += g
		}
		cmp.AvgGapDifferentFamily = sum / float64(len(cmp.Gaps))
	}
	return cmp, nil
}

// GapCDF returns the Figure-14 series: the CDF of F-score differences where
// the naïve strategy beat the platform with a different classifier family.
func (c *NaiveComparison) GapCDF() []stats.CDFPoint { return stats.ECDF(c.Gaps) }

// SwitchIsBestCount implements the §6.3 "when is switching the best
// option?" check: among qualified datasets where the naïve strategy beat
// the platform with a different family, count those where the naïve F1
// also exceeds the *optimal* score of the platform-chosen family on the
// local platform — i.e. no amount of parameter/FEAT tuning within the
// chosen family would have closed the gap, so switching family was the only
// fix.
func (s *Sweep) SwitchIsBestCount(platform string, rep *InferenceReport) (int, error) {
	choices, err := s.NaiveStrategy()
	if err != nil {
		return 0, err
	}
	byDS := map[string]NaiveChoice{}
	for _, c := range choices {
		byDS[c.Dataset] = c
	}
	count := 0
	for _, ds := range rep.Qualified {
		platNonLinear, ok := rep.Choices[platform][ds]
		if !ok {
			continue
		}
		nc := byDS[ds]
		ms := s.ByPlatform[platform][ds]
		if len(ms) == 0 || nc.F1 <= ms[0].Scores.F1 || platNonLinear == nc.NonLinear {
			continue
		}
		// Optimal F1 of the platform-chosen family across every local
		// config (any FEAT, any params).
		bestChosenFamily := 0.0
		for _, m := range s.ByPlatform["local"][ds] {
			lbl, err := familyLabel(m.Config.Classifier)
			if err != nil {
				continue
			}
			if (lbl == 1) != platNonLinear {
				continue
			}
			if m.Scores.F1 > bestChosenFamily {
				bestChosenFamily = m.Scores.F1
			}
		}
		if nc.F1 > bestChosenFamily {
			count++
		}
	}
	return count, nil
}
