package core

import (
	"compress/gzip"
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"

	"mlaasbench/internal/synth"
)

// Sweep persistence: a full-corpus sweep takes minutes, so mlaas-bench and
// downstream analyses can cache the raw measurements (gzipped JSON) and
// re-run only the analysis layer. The cache embeds the options that
// produced it; Load refuses a cache whose options disagree with what the
// caller asked for, so stale caches cannot silently corrupt results.

// sweepFile is the on-disk representation.
type sweepFile struct {
	Version  int                                 `json:"version"`
	Profile  string                              `json:"profile"`
	Seed     uint64                              `json:"seed"`
	MaxData  int                                 `json:"max_datasets"`
	Datasets []DatasetInfo                       `json:"datasets"`
	Measures map[string]map[string][]Measurement `json:"measurements"`
}

const sweepFileVersion = 1

// Save writes the sweep's measurements as gzipped JSON.
func (s *Sweep) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: create cache: %w", err)
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	enc := json.NewEncoder(zw)
	file := sweepFile{
		Version:  sweepFileVersion,
		Profile:  s.Opts.Profile.Name,
		Seed:     s.Opts.Seed,
		MaxData:  s.Opts.MaxDatasets,
		Datasets: s.Datasets,
		Measures: s.ByPlatform,
	}
	if err := enc.Encode(file); err != nil {
		return fmt.Errorf("core: encode cache: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("core: flush cache: %w", err)
	}
	return f.Close()
}

// LoadSweep reads a cached sweep. The options must match the cache's
// recorded profile/seed/limit exactly; a mismatch returns an error rather
// than mixing incompatible measurements.
func LoadSweep(path string, opts Options) (*Sweep, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: open cache: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("core: cache is not gzip: %w", err)
	}
	defer zr.Close()
	var file sweepFile
	if err := json.NewDecoder(zr).Decode(&file); err != nil {
		return nil, fmt.Errorf("core: decode cache: %w", err)
	}
	if file.Version != sweepFileVersion {
		return nil, fmt.Errorf("core: cache version %d, want %d", file.Version, sweepFileVersion)
	}
	if opts.Profile.Name == "" {
		opts.Profile = synth.Quick
	}
	if opts.Seed == 0 {
		opts.Seed = synth.CorpusSeed
	}
	if file.Profile != opts.Profile.Name || file.Seed != opts.Seed || file.MaxData != opts.MaxDatasets {
		return nil, fmt.Errorf("core: cache was built with profile=%s seed=%d datasets=%d, asked for profile=%s seed=%d datasets=%d",
			file.Profile, file.Seed, file.MaxData, opts.Profile.Name, opts.Seed, opts.MaxDatasets)
	}
	return &Sweep{
		Opts:       opts,
		Datasets:   file.Datasets,
		ByPlatform: file.Measures,
	}, nil
}

// LoadOrRunSweep returns the cached sweep when path exists and matches
// opts; otherwise it runs the sweep and (when path is non-empty) caches it.
func LoadOrRunSweep(ctx context.Context, path string, opts Options) (*Sweep, error) {
	if path != "" {
		if _, err := os.Stat(path); err == nil {
			sw, err := LoadSweep(path, opts)
			if err == nil {
				return sw, nil
			}
			// A mismatched or corrupt cache is reported, not silently
			// rebuilt over: the caller chose the path deliberately.
			return nil, err
		}
	}
	sw, err := RunSweep(ctx, opts)
	if err != nil {
		return nil, err
	}
	if path != "" {
		if err := sw.Save(path); err != nil {
			return nil, err
		}
	}
	return sw, nil
}

// WriteMeasurementsCSV exports every measurement as flat CSV for external
// plotting: platform, dataset, config id, baseline flag and the four
// metrics.
func (s *Sweep) WriteMeasurementsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"platform", "dataset", "config", "baseline", "f1", "accuracy", "precision", "recall"}); err != nil {
		return err
	}
	for _, p := range s.Platforms() {
		for _, ds := range s.DatasetNames() {
			for _, m := range s.ByPlatform[p][ds] {
				rec := []string{
					p, ds, m.Config.String(), strconv.FormatBool(m.Baseline),
					formatF(m.Scores.F1), formatF(m.Scores.Accuracy),
					formatF(m.Scores.Precision), formatF(m.Scores.Recall),
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }
