// Package core is the paper's primary contribution rebuilt as a library:
// the measurement framework that sweeps every MLaaS platform across the
// dataset corpus and the analyses that turn the raw measurements into each
// table and figure of the evaluation — complexity vs. optimized performance
// (§4), risk and performance variation (§5), and the black-box hidden-
// optimization study (§6).
package core
