package core

import (
	"testing"

	"mlaasbench/internal/dataset"
	"mlaasbench/internal/platforms"
	"mlaasbench/internal/rng"
	"mlaasbench/internal/synth"
)

func exploreSplit(t *testing.T) (platforms.Platform, dataset.Split) {
	t.Helper()
	ds := synth.GenerateClean(synth.CircleSpec(), synth.Quick, synth.CorpusSeed)
	sp := ds.StratifiedSplit(0.7, rng.New(11))
	local, err := platforms.New("local")
	if err != nil {
		t.Fatal(err)
	}
	return local, sp
}

func TestExploreRandomClassifiers(t *testing.T) {
	local, sp := exploreSplit(t)
	res, err := ExploreRandomClassifiers(local, sp, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tried) != 3 {
		t.Fatalf("tried %v, want 3 classifiers", res.Tried)
	}
	found := false
	for _, name := range res.Tried {
		if name == res.Config.Classifier {
			found = true
		}
	}
	if !found {
		t.Fatalf("winner %s not among tried %v", res.Config.Classifier, res.Tried)
	}
	if res.TestF1 <= 0 || res.TestF1 > 1 || res.TrainF1 <= 0 {
		t.Fatalf("scores %+v", res)
	}
}

func TestExploreClampsK(t *testing.T) {
	local, sp := exploreSplit(t)
	res, err := ExploreRandomClassifiers(local, sp, 99, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tried) != 10 {
		t.Fatalf("k=99 should clamp to all 10 classifiers, tried %d", len(res.Tried))
	}
	resMin, err := ExploreRandomClassifiers(local, sp, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(resMin.Tried) != 1 {
		t.Fatalf("k=0 should clamp to 1, tried %d", len(resMin.Tried))
	}
}

func TestExploreDeterministic(t *testing.T) {
	local, sp := exploreSplit(t)
	a, err := ExploreRandomClassifiers(local, sp, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ExploreRandomClassifiers(local, sp, 3, 42)
	if a.Config.String() != b.Config.String() || a.TestF1 != b.TestF1 {
		t.Fatal("same seed, different exploration outcome")
	}
}

func TestExploreRejectsBlackBox(t *testing.T) {
	google, err := platforms.New("google")
	if err != nil {
		t.Fatal(err)
	}
	_, sp := exploreSplit(t)
	if _, err := ExploreRandomClassifiers(google, sp, 3, 1); err == nil {
		t.Fatal("black box has no classifier choice to explore")
	}
}

func TestExploreFullSetBeatsSingleOnCircle(t *testing.T) {
	// Exploring all classifiers must do at least as well (in expectation
	// over the train-CV choice) as the worst single pick; concretely on
	// CIRCLE a full exploration should land a non-linear winner.
	local, sp := exploreSplit(t)
	res, err := ExploreRandomClassifiers(local, sp, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.TestF1 < 0.8 {
		t.Fatalf("full exploration on CIRCLE reached only %.3f", res.TestF1)
	}
}
