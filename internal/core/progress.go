package core

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

// ProgressTracker counts completed (platform, dataset) sweep units and
// derives rate and ETA. It is lock-free (the scheduler's workers call Add
// concurrently) and cheap enough to snapshot from a UI ticker or an HTTP
// handler while the sweep runs.
type ProgressTracker struct {
	start atomic.Int64 // UnixNano at Begin
	total atomic.Int64
	done  atomic.Int64
}

// NewProgressTracker returns an idle tracker; RunSweep calls Begin.
func NewProgressTracker() *ProgressTracker { return &ProgressTracker{} }

// Begin (re)starts the clock with the given total unit count.
func (t *ProgressTracker) Begin(total int) {
	t.start.Store(time.Now().UnixNano())
	t.total.Store(int64(total))
	t.done.Store(0)
}

// Add records n more completed units.
func (t *ProgressTracker) Add(n int) { t.done.Add(int64(n)) }

// ProgressSnapshot is one observation of sweep progress — the JSON body of
// the /progress endpoint and the source of the live progress line.
type ProgressSnapshot struct {
	TotalUnits     int     `json:"total_units"`
	DoneUnits      int     `json:"done_units"`
	Percent        float64 `json:"percent"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	UnitsPerSec    float64 `json:"units_per_sec"`
	// EtaSeconds extrapolates the observed rate over the remaining units;
	// -1 while no unit has finished yet (rate unknown).
	EtaSeconds float64 `json:"eta_seconds"`
}

// Snapshot reads the current progress.
func (t *ProgressTracker) Snapshot() ProgressSnapshot {
	s := ProgressSnapshot{
		TotalUnits: int(t.total.Load()),
		DoneUnits:  int(t.done.Load()),
		EtaSeconds: -1,
	}
	if start := t.start.Load(); start > 0 {
		s.ElapsedSeconds = time.Since(time.Unix(0, start)).Seconds()
	}
	if s.TotalUnits > 0 {
		s.Percent = 100 * float64(s.DoneUnits) / float64(s.TotalUnits)
	}
	if s.DoneUnits > 0 && s.ElapsedSeconds > 0 {
		s.UnitsPerSec = float64(s.DoneUnits) / s.ElapsedSeconds
		if s.TotalUnits >= s.DoneUnits {
			s.EtaSeconds = float64(s.TotalUnits-s.DoneUnits) / s.UnitsPerSec
		}
	}
	return s
}

// Line renders the snapshot as the one-line form mlaas-bench repaints.
func (s ProgressSnapshot) Line() string {
	eta := "?"
	if s.EtaSeconds >= 0 {
		eta = (time.Duration(s.EtaSeconds*float64(time.Second))).Round(time.Second).String()
	}
	return fmt.Sprintf("sweep %d/%d units (%.0f%%)  %.2f units/s  eta %s",
		s.DoneUnits, s.TotalUnits, s.Percent, s.UnitsPerSec, eta)
}

// Handler serves the snapshot as JSON — mount it at /progress.
func (t *ProgressTracker) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(t.Snapshot())
	})
}
