package core

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestProgressTrackerDuringSweep drives a tiny sweep and checks the
// acceptance properties of the progress surface: the done-count rises
// monotonically to total, and once a unit has finished the ETA is finite.
func TestProgressTrackerDuringSweep(t *testing.T) {
	tr := NewProgressTracker()
	opts := DefaultOptions()
	opts.MaxDatasets = 2
	opts.Platforms = []string{"google", "amazon"}
	opts.Workers = 2
	opts.Tracker = tr

	var lines []string
	prevDone := -1
	opts.Progress = func(string) {
		s := tr.Snapshot()
		if s.DoneUnits < prevDone {
			t.Errorf("done count went backwards: %d after %d", s.DoneUnits, prevDone)
		}
		prevDone = s.DoneUnits
		if s.DoneUnits > 0 && (s.EtaSeconds < 0 || s.EtaSeconds != s.EtaSeconds) {
			t.Errorf("ETA not finite after %d done units: %v", s.DoneUnits, s.EtaSeconds)
		}
		lines = append(lines, s.Line())
	}
	if _, err := RunSweep(context.Background(), opts); err != nil {
		t.Fatalf("sweep: %v", err)
	}

	final := tr.Snapshot()
	if final.DoneUnits != 4 || final.TotalUnits != 4 {
		t.Fatalf("final progress %d/%d, want 4/4", final.DoneUnits, final.TotalUnits)
	}
	if final.Percent != 100 {
		t.Errorf("final percent %.1f, want 100", final.Percent)
	}
	if len(lines) == 0 || !strings.Contains(lines[len(lines)-1], "sweep 4/4 units") {
		t.Errorf("last progress line %q lacks final count", lines[len(lines)-1])
	}

	// The /progress handler serves the same snapshot as JSON.
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/progress", nil))
	var snap ProgressSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("decode /progress: %v", err)
	}
	if snap.DoneUnits != 4 || snap.TotalUnits != 4 {
		t.Errorf("/progress served %d/%d, want 4/4", snap.DoneUnits, snap.TotalUnits)
	}
}
