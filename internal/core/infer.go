package core

import (
	"fmt"
	"sort"

	"mlaasbench/internal/classifiers"
	"mlaasbench/internal/metrics"
	"mlaasbench/internal/rng"
	"mlaasbench/internal/stats"
)

// The §6.2 methodology: using only (a) knowledge of the dataset and (b) a
// platform's prediction results, infer whether the platform used a linear
// or non-linear classifier. A Random Forest meta-classifier is trained per
// dataset on measurements whose classifier family is known (the user-
// controllable platforms), with features = aggregated performance metrics +
// the predicted test labels, and then applied to the black-box platforms.

// FamilyModel is a per-dataset meta-classifier predicting linear (0) vs
// non-linear (1) from a measurement's metrics and predictions.
type FamilyModel struct {
	Dataset   string  `json:"dataset"`
	ValF1     float64 `json:"val_f1"`
	TestF1    float64 `json:"test_f1"`
	Qualified bool    `json:"qualified"` // ValF1 > QualifyThreshold
	Samples   int     `json:"samples"`

	forest classifiers.Classifier
}

// QualifyThreshold is the validation F-score a per-dataset family model
// must exceed to be used against black boxes (§6.2 uses 0.95).
const QualifyThreshold = 0.95

// metaFeatures flattens one measurement into the meta-classifier's feature
// vector: the four aggregate metrics followed by the per-sample predictions.
func metaFeatures(m Measurement) []float64 {
	out := make([]float64, 0, 4+len(m.Pred))
	out = append(out, m.Scores.F1, m.Scores.Accuracy, m.Scores.Precision, m.Scores.Recall)
	for _, p := range m.Pred {
		out = append(out, float64(p))
	}
	return out
}

// familyLabel returns 1 for non-linear classifiers, 0 for linear, and an
// error for configs whose family is unknown (black-box "auto").
func familyLabel(clf string) (int, error) {
	info, err := classifiers.Lookup(clf)
	if err != nil {
		return 0, err
	}
	if info.Linear {
		return 0, nil
	}
	return 1, nil
}

// TrainFamilyModel builds the meta-classifier for one dataset from every
// family-labeled measurement in the sweep. It requires the sweep to have
// stored predictions. Measurements are split 50/20/30 into train,
// validation and test, mirroring the paper's 70(train+val)/30(test).
func (s *Sweep) TrainFamilyModel(ds string) (*FamilyModel, error) {
	var x [][]float64
	var y []int
	featLen := -1
	for _, p := range s.Platforms() {
		if p == "google" || p == "abm" || p == "amazon" {
			// Amazon's hidden recipe makes its family ambiguous — it is a
			// *subject* of the inference (§6.2), never training data.
			continue
		}
		for _, m := range s.ByPlatform[p][ds] {
			lbl, err := familyLabel(m.Config.Classifier)
			if err != nil {
				continue
			}
			if len(m.Pred) == 0 {
				return nil, fmt.Errorf("core: sweep has no stored predictions for %s/%s", p, ds)
			}
			f := metaFeatures(m)
			if featLen == -1 {
				featLen = len(f)
			}
			if len(f) != featLen {
				return nil, fmt.Errorf("core: inconsistent meta-feature width on %s", ds)
			}
			x = append(x, f)
			y = append(y, lbl)
		}
	}
	if len(x) < 10 {
		return nil, fmt.Errorf("core: only %d family-labeled measurements for %s", len(x), ds)
	}
	// Both families must appear or the model is vacuous.
	pos := 0
	for _, v := range y {
		pos += v
	}
	if pos == 0 || pos == len(y) {
		return nil, fmt.Errorf("core: single-family training data for %s", ds)
	}

	r := rng.New(s.Opts.Seed).Split("family/" + ds)
	perm := r.Perm(len(x))
	nTrain := len(x) / 2
	nVal := len(x) / 5
	if nTrain < 2 || nVal < 1 || len(x)-nTrain-nVal < 1 {
		return nil, fmt.Errorf("core: too few measurements (%d) to split for %s", len(x), ds)
	}
	gather := func(idx []int) ([][]float64, []int) {
		gx := make([][]float64, len(idx))
		gy := make([]int, len(idx))
		for i, j := range idx {
			gx[i] = x[j]
			gy[i] = y[j]
		}
		return gx, gy
	}
	xTr, yTr := gather(perm[:nTrain])
	xVal, yVal := gather(perm[nTrain : nTrain+nVal])
	xTe, yTe := gather(perm[nTrain+nVal:])

	// Model selection as in the paper: train several Random Forest
	// configurations and keep the best by validation F-score.
	candidates := []classifiers.Params{
		{"n_estimators": 40, "max_depth": 16},
		{"n_estimators": 80, "max_depth": 24},
		{"n_estimators": 40, "max_depth": 16, "max_features": "log2"},
		{"n_estimators": 60, "max_depth": 8, "min_samples_leaf": 3},
	}
	var best classifiers.Classifier
	bestVal := -1.0
	for ci, params := range candidates {
		forest, err := classifiers.New("randomforest", params)
		if err != nil {
			return nil, err
		}
		if err := forest.Fit(xTr, yTr, r.Split(fmt.Sprintf("fit/%d", ci))); err != nil {
			return nil, fmt.Errorf("core: meta-classifier fit on %s: %w", ds, err)
		}
		valScores, err := metrics.Score(yVal, forest.Predict(xVal))
		if err != nil {
			return nil, err
		}
		if valScores.F1 > bestVal {
			bestVal = valScores.F1
			best = forest
		}
	}
	testScores, err := metrics.Score(yTe, best.Predict(xTe))
	if err != nil {
		return nil, err
	}
	fm := &FamilyModel{
		Dataset:   ds,
		ValF1:     bestVal,
		TestF1:    testScores.F1,
		Qualified: bestVal > QualifyThreshold,
		Samples:   len(x),
		forest:    best,
	}
	return fm, nil
}

// PredictFamily classifies one measurement as non-linear (true) or linear.
func (fm *FamilyModel) PredictFamily(m Measurement) (nonLinear bool, err error) {
	if fm.forest == nil {
		return false, fmt.Errorf("core: family model for %s not trained", fm.Dataset)
	}
	if len(m.Pred) == 0 {
		return false, fmt.Errorf("core: measurement has no stored predictions")
	}
	pred := fm.forest.Predict([][]float64{metaFeatures(m)})
	return pred[0] == 1, nil
}

// InferenceReport aggregates the §6.2 analysis across the corpus.
type InferenceReport struct {
	Models []FamilyModel `json:"models"`
	// Qualified lists the dataset names whose models pass the threshold.
	Qualified []string `json:"qualified"`
	// Choices[platform][dataset] = true if predicted non-linear, for each
	// qualified dataset.
	Choices map[string]map[string]bool `json:"choices"`
	// LinearCount/NonLinearCount per black-box platform.
	LinearCount    map[string]int `json:"linear_count"`
	NonLinearCount map[string]int `json:"nonlinear_count"`
	// Agreement: datasets where Google and ABM picked the same family.
	Agreement    int `json:"agreement"`
	Disagreement int `json:"disagreement"`
}

// ValidationCDF returns the Figure-12 series: the empirical CDF of
// per-dataset validation F-scores of the family models.
func (r *InferenceReport) ValidationCDF() []stats.CDFPoint {
	var vals []float64
	for _, m := range r.Models {
		vals = append(vals, m.ValF1)
	}
	return stats.ECDF(vals)
}

// InferFamilies runs the full §6.2 pipeline: train a family model per
// dataset, keep the qualified ones, and classify each black-box platform's
// per-dataset behaviour as linear or non-linear. subjects defaults to
// google, abm and amazon.
func (s *Sweep) InferFamilies(subjects []string) (*InferenceReport, error) {
	if len(subjects) == 0 {
		subjects = []string{"google", "abm", "amazon"}
	}
	rep := &InferenceReport{
		Choices:        map[string]map[string]bool{},
		LinearCount:    map[string]int{},
		NonLinearCount: map[string]int{},
	}
	for _, sub := range subjects {
		rep.Choices[sub] = map[string]bool{}
	}
	for _, ds := range s.DatasetNames() {
		fm, err := s.TrainFamilyModel(ds)
		if err != nil {
			continue // dataset lacks usable training data; skip like the paper's non-qualifying sets
		}
		rep.Models = append(rep.Models, *fm)
		if !fm.Qualified {
			continue
		}
		rep.Qualified = append(rep.Qualified, ds)
		for _, sub := range subjects {
			ms := s.ByPlatform[sub][ds]
			if len(ms) == 0 {
				continue
			}
			// Black boxes have one measurement; Amazon may have several —
			// classify its baseline, as the paper examines default runs.
			m := ms[0]
			for _, cand := range ms {
				if cand.Baseline {
					m = cand
					break
				}
			}
			nonLinear, err := fm.PredictFamily(m)
			if err != nil {
				continue
			}
			rep.Choices[sub][ds] = nonLinear
			if nonLinear {
				rep.NonLinearCount[sub]++
			} else {
				rep.LinearCount[sub]++
			}
		}
	}
	for _, ds := range rep.Qualified {
		g, okG := rep.Choices["google"][ds]
		a, okA := rep.Choices["abm"][ds]
		if okG && okA {
			if g == a {
				rep.Agreement++
			} else {
				rep.Disagreement++
			}
		}
	}
	sort.Strings(rep.Qualified)
	return rep, nil
}

// FamilyCDFs returns the Figure-11 series for one dataset: the empirical
// CDFs of F-scores achieved by linear vs non-linear classifiers across the
// user platforms' measurements.
func (s *Sweep) FamilyCDFs(ds string) (linear, nonLinear []stats.CDFPoint) {
	var lin, non []float64
	for _, p := range s.Platforms() {
		if p == "google" || p == "abm" || p == "amazon" {
			continue
		}
		for _, m := range s.ByPlatform[p][ds] {
			lbl, err := familyLabel(m.Config.Classifier)
			if err != nil {
				continue
			}
			if lbl == 0 {
				lin = append(lin, m.Scores.F1)
			} else {
				non = append(non, m.Scores.F1)
			}
		}
	}
	return stats.ECDF(lin), stats.ECDF(non)
}
