package core

import (
	"bytes"
	"strings"
	"testing"

	"mlaasbench/internal/synth"
)

func TestAUCStudy(t *testing.T) {
	rows, err := AUCStudy(synth.Quick, synth.CorpusSeed, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Datasets != 4 {
			t.Fatalf("%s: %d datasets", r.Platform, r.Datasets)
		}
		if r.AvgF1 <= 0 || r.AvgF1 > 1 {
			t.Fatalf("%s: F1 %v", r.Platform, r.AvgF1)
		}
		switch r.Platform {
		case "bigml", "predictionio":
			if r.HasScore {
				t.Errorf("%s should hide scores (§3.2)", r.Platform)
			}
			if r.AvgAUC != 0 {
				t.Errorf("%s: AUC %v despite hidden scores", r.Platform, r.AvgAUC)
			}
		default:
			if !r.HasScore {
				t.Errorf("%s should expose scores", r.Platform)
			}
			if r.AvgAUC <= 0.4 || r.AvgAUC > 1 {
				t.Errorf("%s: AUC %v", r.Platform, r.AvgAUC)
			}
		}
	}
	var buf bytes.Buffer
	WriteAUCStudy(&buf, rows)
	if !strings.Contains(buf.String(), "hidden") {
		t.Fatal("AUC report missing hidden-score platforms")
	}
}

func TestNoiseRobustness(t *testing.T) {
	pts, err := NoiseRobustness(synth.Quick, synth.CorpusSeed, []float64{0, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 14 { // 7 platforms × 2 levels
		t.Fatalf("%d points", len(pts))
	}
	byPlat := map[string][]NoisePoint{}
	for _, pt := range pts {
		byPlat[pt.Platform] = append(byPlat[pt.Platform], pt)
	}
	degraded := 0
	for p, series := range byPlat {
		if len(series) != 2 {
			t.Fatalf("%s: %d levels", p, len(series))
		}
		if series[1].AvgF1 < series[0].AvgF1 {
			degraded++
		}
	}
	// Label noise must hurt on (nearly) every platform.
	if degraded < 6 {
		t.Fatalf("only %d/7 platforms degraded under 20%% label noise", degraded)
	}
	var buf bytes.Buffer
	WriteNoiseRobustness(&buf, pts)
	if !strings.Contains(buf.String(), "label noise") {
		t.Fatal("robustness report malformed")
	}
}
