package core

import (
	"fmt"
	"io"
	"sort"

	"mlaasbench/internal/stats"
)

// The paper's §8 leaves training time and cost to future work. The sweep
// records wall-clock per measurement, so this extension analysis reports
// the time dimension: per-platform cost distributions and the
// time-vs-performance frontier across classifiers.

// TimeCostRow summarizes one platform's per-measurement wall-clock cost.
type TimeCostRow struct {
	Platform     string  `json:"platform"`
	MedianMicros float64 `json:"median_micros"`
	P90Micros    float64 `json:"p90_micros"`
	TotalSeconds float64 `json:"total_seconds"`
	Measurements int     `json:"measurements"`
}

// TimeCost computes per-platform cost summaries from the sweep's recorded
// timings.
func (s *Sweep) TimeCost() []TimeCostRow {
	var out []TimeCostRow
	for _, p := range s.Platforms() {
		var micros []float64
		total := 0.0
		for _, ds := range s.DatasetNames() {
			for _, m := range s.ByPlatform[p][ds] {
				micros = append(micros, float64(m.Micros))
				total += float64(m.Micros)
			}
		}
		row := TimeCostRow{Platform: p, Measurements: len(micros)}
		if len(micros) > 0 {
			row.MedianMicros = stats.Quantile(micros, 0.5)
			row.P90Micros = stats.Quantile(micros, 0.9)
			row.TotalSeconds = total / 1e6
		}
		out = append(out, row)
	}
	return out
}

// ClassifierCost is one point of the time-vs-performance frontier: a
// classifier's median training cost and mean F-score across the corpus.
type ClassifierCost struct {
	Classifier   string  `json:"classifier"`
	Label        string  `json:"label"`
	MedianMicros float64 `json:"median_micros"`
	MeanF1       float64 `json:"mean_f1"`
}

// ClassifierFrontier computes, over the local platform's default-parameter
// runs, each classifier's cost and quality — the tradeoff a practitioner
// faces when picking a classifier under a time budget.
func (s *Sweep) ClassifierFrontier() []ClassifierCost {
	type acc struct {
		micros []float64
		f1Sum  float64
		n      int
	}
	byClf := map[string]*acc{}
	for _, ds := range s.DatasetNames() {
		for _, m := range s.ByPlatform["local"][ds] {
			if m.Config.Feat.Kind != "none" || !s.hasDefaultParams(m) {
				continue
			}
			a := byClf[m.Config.Classifier]
			if a == nil {
				a = &acc{}
				byClf[m.Config.Classifier] = a
			}
			a.micros = append(a.micros, float64(m.Micros))
			a.f1Sum += m.Scores.F1
			a.n++
		}
	}
	var out []ClassifierCost
	for _, name := range sortedKeys(byClf) {
		a := byClf[name]
		cc := ClassifierCost{Classifier: name, Label: classifierLabel(name)}
		if a.n > 0 {
			cc.MedianMicros = stats.Quantile(a.micros, 0.5)
			cc.MeanF1 = a.f1Sum / float64(a.n)
		}
		out = append(out, cc)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].MedianMicros < out[b].MedianMicros })
	return out
}

// WriteTimeCost renders the extension analysis.
func (s *Sweep) WriteTimeCost(w io.Writer) {
	fmt.Fprintln(w, "Extension (§8 future work): training-time cost per platform")
	fmt.Fprintf(w, "  %-14s %12s %12s %12s %10s\n", "platform", "median(µs)", "p90(µs)", "total(s)", "#measures")
	for _, r := range s.TimeCost() {
		fmt.Fprintf(w, "  %-14s %12.0f %12.0f %12.1f %10d\n",
			r.Platform, r.MedianMicros, r.P90Micros, r.TotalSeconds, r.Measurements)
	}
	fmt.Fprintln(w, "Extension: classifier time-vs-performance frontier (local, defaults)")
	fmt.Fprintf(w, "  %-14s %12s %10s\n", "classifier", "median(µs)", "mean F1")
	for _, c := range s.ClassifierFrontier() {
		fmt.Fprintf(w, "  %-14s %12.0f %10.3f\n", c.Label, c.MedianMicros, c.MeanF1)
	}
}
