package core

import (
	"context"
	"reflect"
	"testing"
)

// The parallel engine's contract: any worker count produces byte-identical
// measurements. Micros is wall-clock and excluded — it differs between any
// two runs, serial or not.
func TestParallelSweepMatchesSerial(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxDatasets = 2
	// One platform per engine path: a black box (hidden probe), Amazon
	// (hidden binning memo) and Microsoft (FEAT cache, biggest config list).
	opts.Platforms = []string{"google", "amazon", "microsoft"}

	opts.Workers = 1
	serial, err := RunSweep(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 8
	parallel, err := RunSweep(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := datasetNames(parallel), datasetNames(serial); !reflect.DeepEqual(got, want) {
		t.Fatalf("dataset order differs: %v vs %v", got, want)
	}
	for _, p := range serial.Platforms() {
		for _, ds := range serial.DatasetNames() {
			sm := normalizeMeasurements(serial.ByPlatform[p][ds])
			pm := normalizeMeasurements(parallel.ByPlatform[p][ds])
			if len(sm) != len(pm) {
				t.Fatalf("%s/%s: %d vs %d measurements", p, ds, len(sm), len(pm))
			}
			for i := range sm {
				if !reflect.DeepEqual(sm[i], pm[i]) {
					t.Fatalf("%s/%s[%d]: serial %+v != parallel %+v", p, ds, i, sm[i], pm[i])
				}
			}
		}
	}
}

func datasetNames(s *Sweep) []string { return s.DatasetNames() }

// normalizeMeasurements zeroes the wall-clock field so comparisons see only
// deterministic content.
func normalizeMeasurements(ms []Measurement) []Measurement {
	out := make([]Measurement, len(ms))
	for i, m := range ms {
		m.Micros = 0
		out[i] = m
	}
	return out
}

// A worker count far above the work volume must not deadlock or misbehave.
func TestParallelSweepMoreWorkersThanWork(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxDatasets = 1
	opts.Platforms = []string{"google", "amazon"}
	opts.Workers = 64
	sw, err := RunSweep(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Datasets) != 1 || len(sw.Platforms()) != 2 {
		t.Fatalf("unexpected sweep shape: %d datasets, %v", len(sw.Datasets), sw.Platforms())
	}
}

// Cancellation must abort a parallel sweep promptly and report it.
func TestParallelSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultOptions()
	opts.MaxDatasets = 2
	opts.Workers = 4
	if _, err := RunSweep(ctx, opts); err == nil {
		t.Fatal("cancelled parallel sweep should fail")
	}
}

func TestSweepDatasetLookup(t *testing.T) {
	sw := testSweep(t)
	for _, want := range sw.Datasets {
		got, ok := sw.Dataset(want.Name)
		if !ok || got.Name != want.Name {
			t.Fatalf("Dataset(%q) = %+v, %v", want.Name, got, ok)
		}
	}
	if _, ok := sw.Dataset("no-such-dataset"); ok {
		t.Fatal("lookup of unknown dataset succeeded")
	}
}
