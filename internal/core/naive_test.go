package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestNaiveStrategyChoices(t *testing.T) {
	sw := testSweep(t)
	choices, err := sw.NaiveStrategy()
	if err != nil {
		t.Fatal(err)
	}
	if len(choices) != len(sw.Datasets) {
		t.Fatalf("%d choices for %d datasets", len(choices), len(sw.Datasets))
	}
	sawLinear, sawNonLinear := false, false
	for _, c := range choices {
		if c.F1 < 0 || c.F1 > 1 {
			t.Fatalf("%s: F1 %v", c.Dataset, c.F1)
		}
		if c.NonLinear {
			sawNonLinear = true
		} else {
			sawLinear = true
		}
	}
	// Across a mixed corpus slice, the naive strategy should pick both
	// families at least once — otherwise it is not switching at all.
	if !sawLinear || !sawNonLinear {
		t.Errorf("naive strategy never switched: linear=%v nonlinear=%v", sawLinear, sawNonLinear)
	}
}

func TestNaiveChoiceTakesBetterCandidate(t *testing.T) {
	sw := testSweep(t)
	choices, err := sw.NaiveStrategy()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range choices {
		var lr, dt float64
		for _, m := range sw.ByPlatform["local"][c.Dataset] {
			if m.Config.Feat.Kind != "none" || !sw.hasDefaultParams(m) {
				continue
			}
			switch m.Config.Classifier {
			case "logreg":
				lr = m.Scores.F1
			case "dtree":
				dt = m.Scores.F1
			}
		}
		wantF1 := lr
		if dt > lr {
			wantF1 = dt
		}
		if c.F1 != wantF1 {
			t.Fatalf("%s: naive F1 %v, want max(LR %v, DT %v)", c.Dataset, c.F1, lr, dt)
		}
		if c.NonLinear != (dt > lr) {
			t.Fatalf("%s: choice %v inconsistent with scores", c.Dataset, c.NonLinear)
		}
	}
}

func TestNaiveStrategyRequiresLocal(t *testing.T) {
	sw := &Sweep{ByPlatform: map[string]map[string][]Measurement{}}
	if _, err := sw.NaiveStrategy(); err == nil {
		t.Fatal("expected error without local platform")
	}
}

func TestCompareNaive(t *testing.T) {
	sw := testSweep(t)
	rep, err := sw.InferFamilies(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"google", "abm"} {
		cmp, err := sw.CompareNaive(p, rep)
		if err != nil {
			t.Fatal(err)
		}
		winsSum := cmp.Wins[0][0] + cmp.Wins[0][1] + cmp.Wins[1][0] + cmp.Wins[1][1]
		if winsSum != cmp.TotalWins {
			t.Fatalf("%s: wins matrix sums to %d, total %d", p, winsSum, cmp.TotalWins)
		}
		if cmp.TotalWins > cmp.TotalQualified {
			t.Fatalf("%s: more wins than comparisons", p)
		}
		for _, g := range cmp.Gaps {
			if g <= 0 {
				t.Fatalf("%s: non-positive winning gap %v", p, g)
			}
		}
		switchBest, err := sw.SwitchIsBestCount(p, rep)
		if err != nil {
			t.Fatal(err)
		}
		if switchBest > len(cmp.Gaps) {
			t.Fatalf("%s: switch-is-best %d exceeds different-family wins %d", p, switchBest, len(cmp.Gaps))
		}
		var buf bytes.Buffer
		WriteNaive(&buf, cmp, switchBest)
		if !strings.Contains(buf.String(), "Table 6") || !strings.Contains(buf.String(), "Figure 14") {
			t.Fatal("naive report missing sections")
		}
	}
}
