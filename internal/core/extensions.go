package core

import (
	"fmt"
	"io"

	"mlaasbench/internal/classifiers"
	"mlaasbench/internal/dataset"
	"mlaasbench/internal/metrics"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/platforms"
	"mlaasbench/internal/rng"
	"mlaasbench/internal/synth"
)

// Extension analyses beyond the paper's figures, grounded in its §3.2 and
// §8 discussions: the AUC metric the paper could not collect (several
// platforms expose no prediction score) and robustness to incorrect
// (label-noised) input.

// ScoreExposingPlatforms lists the platforms whose APIs return prediction
// scores. The paper names PredictionIO and several BigML classifiers as
// score-less (§3.2); the other services expose probabilities or margins.
func ScoreExposingPlatforms() map[string]bool {
	return map[string]bool{
		"google": true, "abm": true, "amazon": true,
		"microsoft": true, "local": true,
	}
}

// AUCRow is one platform's AUC study result.
type AUCRow struct {
	Platform string  `json:"platform"`
	HasScore bool    `json:"has_score"`
	AvgF1    float64 `json:"avg_f1"`
	AvgAUC   float64 `json:"avg_auc"` // 0 when the platform hides scores
	Datasets int     `json:"datasets"`
}

// AUCStudy measures each platform's baseline configuration across the
// first maxDatasets corpus datasets, collecting F-score always and AUC only
// where the platform exposes scores — quantifying what the paper lost by
// being forced onto F-score alone.
func AUCStudy(profile synth.Profile, seed uint64, maxDatasets int) ([]AUCRow, error) {
	specs := synth.Corpus()
	if maxDatasets > 0 && maxDatasets < len(specs) {
		specs = specs[:maxDatasets]
	}
	scoreOK := ScoreExposingPlatforms()
	rows := make([]AUCRow, 0, len(platforms.Names()))
	for _, name := range platforms.Names() {
		p, err := platforms.New(name)
		if err != nil {
			return nil, err
		}
		row := AUCRow{Platform: name, HasScore: scoreOK[name]}
		var f1s, aucs []float64
		for _, spec := range specs {
			ds := synth.GenerateClean(spec, profile, seed)
			sp := ds.StratifiedSplit(0.7, rng.New(seed).Split("auc/"+ds.Name))
			cfg := pipeline.Config{}
			if bc := p.BaselineClassifier(); bc != "" {
				cfg, err = p.Surface().DefaultConfig(bc)
				if err != nil {
					return nil, err
				}
			}
			res, err := p.Run(cfg, sp.Train, sp.Test, seed)
			if err != nil {
				return nil, fmt.Errorf("core: auc study %s on %s: %w", name, ds.Name, err)
			}
			f1s = append(f1s, res.Scores.F1)
			if !row.HasScore {
				continue
			}
			auc, err := baselineAUC(p, cfg, sp, seed)
			if err != nil {
				return nil, err
			}
			aucs = append(aucs, auc)
		}
		row.Datasets = len(f1s)
		row.AvgF1 = metrics.Mean(f1s)
		row.AvgAUC = metrics.Mean(aucs)
		rows = append(rows, row)
	}
	return rows, nil
}

// baselineAUC retrains the platform's configuration locally to obtain
// scores. Black boxes are scored via their internally chosen config's
// behaviour: we approximate with the prediction labels (0/1 scores), which
// is exactly the degraded information an external measurer gets when a
// service returns a score that is really a hard label.
func baselineAUC(p platforms.Platform, cfg pipeline.Config, sp dataset.Split, seed uint64) (float64, error) {
	if p.BaselineClassifier() == "" {
		pred, err := p.PredictPoints(cfg, sp.Train, sp.Test.X, seed)
		if err != nil {
			return 0, err
		}
		scores := make([]float64, len(pred))
		for i, v := range pred {
			scores[i] = float64(v)
		}
		return metrics.AUC(sp.Test.Y, scores), nil
	}
	clf, err := classifiers.New(cfg.Classifier, cfg.Params)
	if err != nil {
		return 0, err
	}
	if err := clf.Fit(sp.Train.X, sp.Train.Y, rng.New(seed).Split("aucfit/"+sp.Train.Name)); err != nil {
		return 0, err
	}
	scorer, ok := clf.(classifiers.Scorer)
	if !ok {
		return 0, fmt.Errorf("core: classifier %s does not score", cfg.Classifier)
	}
	return metrics.AUC(sp.Test.Y, scorer.PredictScore(sp.Test.X)), nil
}

// WriteAUCStudy renders the AUC extension table.
func WriteAUCStudy(w io.Writer, rows []AUCRow) {
	fmt.Fprintln(w, "Extension (§3.2): F-score vs AUC where platforms expose scores")
	fmt.Fprintf(w, "  %-14s %8s %8s %10s\n", "platform", "avg F1", "avg AUC", "scores?")
	for _, r := range rows {
		aucStr := "   n/a"
		if r.HasScore {
			aucStr = fmt.Sprintf("%8.3f", r.AvgAUC)
		}
		yes := "hidden"
		if r.HasScore {
			yes = "exposed"
		}
		fmt.Fprintf(w, "  %-14s %8.3f %s %10s\n", r.Platform, r.AvgF1, aucStr, yes)
	}
	fmt.Fprintln(w, "  (PredictionIO and BigML hide prediction scores, as in the paper)")
}

// NoisePoint is one platform's baseline F-score at one injected label-noise
// level.
type NoisePoint struct {
	Platform string  `json:"platform"`
	Noise    float64 `json:"noise"`
	AvgF1    float64 `json:"avg_f1"`
}

// NoiseRobustness measures each platform's baseline under increasing label
// noise — the §8 "robustness to incorrect input" future-work axis. Two
// probe concepts (one linear, one not) are regenerated at each noise level.
func NoiseRobustness(profile synth.Profile, seed uint64, levels []float64) ([]NoisePoint, error) {
	if len(levels) == 0 {
		levels = []float64{0, 0.05, 0.1, 0.2}
	}
	var out []NoisePoint
	for _, name := range platforms.Names() {
		p, err := platforms.New(name)
		if err != nil {
			return nil, err
		}
		for _, noise := range levels {
			var f1s []float64
			for _, gen := range []synth.Generator{synth.GenLinear, synth.GenMoons} {
				spec := synth.Spec{
					Name:       fmt.Sprintf("noise-%s-%.2f", gen, noise),
					Gen:        gen,
					N:          240,
					D:          4,
					Noise:      0.2,
					LabelNoise: noise,
				}
				ds := synth.GenerateClean(spec, profile, seed)
				sp := ds.StratifiedSplit(0.7, rng.New(seed).Split("robust/"+ds.Name))
				cfg := pipeline.Config{}
				if bc := p.BaselineClassifier(); bc != "" {
					cfg, err = p.Surface().DefaultConfig(bc)
					if err != nil {
						return nil, err
					}
				}
				res, err := p.Run(cfg, sp.Train, sp.Test, seed)
				if err != nil {
					return nil, fmt.Errorf("core: robustness %s: %w", name, err)
				}
				f1s = append(f1s, res.Scores.F1)
			}
			out = append(out, NoisePoint{Platform: name, Noise: noise, AvgF1: metrics.Mean(f1s)})
		}
	}
	return out, nil
}

// WriteNoiseRobustness renders the robustness extension: platforms × noise
// levels.
func WriteNoiseRobustness(w io.Writer, pts []NoisePoint) {
	fmt.Fprintln(w, "Extension (§8): baseline F-score under injected label noise")
	byPlat := map[string][]NoisePoint{}
	var order []string
	for _, pt := range pts {
		if _, ok := byPlat[pt.Platform]; !ok {
			order = append(order, pt.Platform)
		}
		byPlat[pt.Platform] = append(byPlat[pt.Platform], pt)
	}
	for _, p := range order {
		fmt.Fprintf(w, "  %-14s", p)
		for _, pt := range byPlat[p] {
			fmt.Fprintf(w, "  %.0f%%→%.3f", pt.Noise*100, pt.AvgF1)
		}
		fmt.Fprintln(w)
	}
}
