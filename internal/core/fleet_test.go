package core_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"reflect"
	"testing"

	"mlaasbench/internal/core"
	"mlaasbench/internal/service"
	"mlaasbench/internal/synth"
	"mlaasbench/internal/telemetry"
)

// fleetOpts is a small sweep that still crosses several datasets and both
// a white-box and a black-box platform, so the byte-identity check
// exercises config echo, hidden-auto configs and baseline marking.
func fleetOpts() core.Options {
	return core.Options{
		Profile:          synth.Quick,
		Seed:             synth.CorpusSeed,
		MaxDatasets:      4,
		Platforms:        []string{"local", "google"},
		StorePredictions: true,
		Workers:          2,
	}
}

// startReplicas boots n in-process replicas and returns their URLs.
func startReplicas(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		api := service.NewServer(func(string, ...any) {}).WithRegistry(telemetry.NewRegistry())
		srv := httptest.NewServer(api.Handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return urls
}

// stripMicros zeroes the only field allowed to differ between a local and
// a fleet sweep: wall-clock cost depends on where the work ran.
func stripMicros(sw *core.Sweep) {
	for _, byDS := range sw.ByPlatform {
		for _, ms := range byDS {
			for i := range ms {
				ms[i].Micros = 0
			}
		}
	}
}

// TestFleetSweepByteIdentical is the sharded-sweep acceptance check: the
// fleet sweep must merge byte-identically to a single-process RunSweep at
// ANY replica count — 1, 2 and 3 replicas all produce the same
// measurements, datasets and ordering.
func TestFleetSweepByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet sweep is a multi-second integration test")
	}
	ctx := context.Background()
	opts := fleetOpts()
	want, err := core.RunSweep(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	stripMicros(want)

	for _, replicas := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("replicas=%d", replicas), func(t *testing.T) {
			urls := startReplicas(t, replicas)
			got, err := core.RunSweepFleet(ctx, fleetOpts(), urls)
			if err != nil {
				t.Fatal(err)
			}
			stripMicros(got)
			if !reflect.DeepEqual(got.ByPlatform, want.ByPlatform) {
				t.Fatal("fleet measurements differ from single-process sweep")
			}
			if len(got.Datasets) != len(want.Datasets) {
				t.Fatalf("fleet sweep has %d datasets, local %d", len(got.Datasets), len(want.Datasets))
			}
			for i := range got.Datasets {
				if got.Datasets[i].Name != want.Datasets[i].Name {
					t.Fatalf("dataset %d: fleet %q, local %q — corpus order broken",
						i, got.Datasets[i].Name, want.Datasets[i].Name)
				}
				if !reflect.DeepEqual(got.Datasets[i].TestY, want.Datasets[i].TestY) {
					t.Fatalf("dataset %s: test labels differ", got.Datasets[i].Name)
				}
			}
		})
	}
}

// TestFleetAssignmentsCoverAllUnits checks the dry-run view: every
// (platform, dataset) unit maps to exactly one configured endpoint, and
// with >1 endpoint the ring actually spreads units around.
func TestFleetAssignmentsCoverAllUnits(t *testing.T) {
	opts := core.Options{MaxDatasets: 10, Platforms: []string{"local", "google", "abm"}}
	eps := []string{"http://a:1", "http://b:1", "http://c:1"}
	got := core.FleetAssignments(opts, eps)
	if len(got) != 30 {
		t.Fatalf("%d assignments, want 30", len(got))
	}
	used := map[string]bool{}
	valid := map[string]bool{}
	for _, e := range eps {
		valid[e] = true
	}
	for unit, ep := range got {
		if !valid[ep] {
			t.Fatalf("unit %s assigned to unknown endpoint %s", unit, ep)
		}
		used[ep] = true
	}
	if len(used) < 2 {
		t.Fatalf("all 30 units landed on one endpoint; ring is not spreading")
	}
}

// TestRunSweepFleetRejectsEmptyFleet pins the error contract.
func TestRunSweepFleetRejectsEmptyFleet(t *testing.T) {
	if _, err := core.RunSweepFleet(context.Background(), fleetOpts(), nil); err == nil {
		t.Fatal("empty fleet accepted")
	}
}
