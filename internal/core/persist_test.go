package core

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSweepSaveLoadRoundTrip(t *testing.T) {
	sw := testSweep(t)
	path := filepath.Join(t.TempDir(), "sweep.json.gz")
	if err := sw.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSweep(path, sw.Opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Datasets) != len(sw.Datasets) {
		t.Fatalf("loaded %d datasets, want %d", len(loaded.Datasets), len(sw.Datasets))
	}
	// The analyses must agree between original and loaded sweeps.
	origRows := sw.Fig4()
	loadRows := loaded.Fig4()
	for i := range origRows {
		if origRows[i] != loadRows[i] {
			t.Fatalf("Fig4 differs after round trip: %+v vs %+v", origRows[i], loadRows[i])
		}
	}
	// Inference needs predictions — they must survive serialization.
	for _, p := range loaded.Platforms() {
		for _, ds := range loaded.DatasetNames() {
			for _, m := range loaded.ByPlatform[p][ds] {
				if len(m.Pred) == 0 {
					t.Fatalf("%s/%s: predictions lost in round trip", p, ds)
				}
			}
		}
	}
}

func TestLoadSweepRejectsMismatchedOptions(t *testing.T) {
	sw := testSweep(t)
	path := filepath.Join(t.TempDir(), "sweep.json.gz")
	if err := sw.Save(path); err != nil {
		t.Fatal(err)
	}
	opts := sw.Opts
	opts.Seed = 999
	if _, err := LoadSweep(path, opts); err == nil {
		t.Fatal("mismatched seed must be rejected")
	}
	opts = sw.Opts
	opts.MaxDatasets = 3
	if _, err := LoadSweep(path, opts); err == nil {
		t.Fatal("mismatched dataset limit must be rejected")
	}
}

func TestLoadSweepRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := writeFile(path, []byte("not gzip")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSweep(path, DefaultOptions()); err == nil {
		t.Fatal("garbage cache must be rejected")
	}
	if _, err := LoadSweep(filepath.Join(t.TempDir(), "absent"), DefaultOptions()); err == nil {
		t.Fatal("absent cache must be rejected")
	}
}

func TestLoadOrRunSweepUsesCache(t *testing.T) {
	sw := testSweep(t)
	path := filepath.Join(t.TempDir(), "sweep.json.gz")
	if err := sw.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadOrRunSweep(context.Background(), path, sw.Opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Datasets) != len(sw.Datasets) {
		t.Fatal("cache not used")
	}
	// A mismatch must be surfaced as an error, not silently recomputed.
	bad := sw.Opts
	bad.Seed = 123
	if _, err := LoadOrRunSweep(context.Background(), path, bad); err == nil {
		t.Fatal("mismatched cache must be an error")
	}
}

func TestWriteMeasurementsCSV(t *testing.T) {
	sw := testSweep(t)
	var buf bytes.Buffer
	if err := sw.WriteMeasurementsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	want := 1 // header
	for _, p := range sw.Platforms() {
		want += sw.ConfigCount(p) * len(sw.Datasets)
	}
	if len(lines) != want {
		t.Fatalf("%d CSV lines, want %d", len(lines), want)
	}
	if !strings.HasPrefix(lines[0], "platform,dataset,config,baseline,f1") {
		t.Fatalf("header %q", lines[0])
	}
}

func TestTimeCostRecorded(t *testing.T) {
	sw := testSweep(t)
	rows := sw.TimeCost()
	if len(rows) != 7 {
		t.Fatalf("%d time rows", len(rows))
	}
	for _, r := range rows {
		if r.Measurements == 0 {
			t.Fatalf("%s: no measurements", r.Platform)
		}
		if r.MedianMicros <= 0 {
			t.Fatalf("%s: median %v µs — timings not recorded", r.Platform, r.MedianMicros)
		}
		if r.P90Micros < r.MedianMicros {
			t.Fatalf("%s: p90 %v below median %v", r.Platform, r.P90Micros, r.MedianMicros)
		}
	}
}

func TestClassifierFrontier(t *testing.T) {
	sw := testSweep(t)
	frontier := sw.ClassifierFrontier()
	if len(frontier) != 10 {
		t.Fatalf("%d frontier points, want 10 local classifiers", len(frontier))
	}
	for i, c := range frontier {
		if c.MeanF1 <= 0 || c.MeanF1 > 1 {
			t.Fatalf("%s: mean F1 %v", c.Classifier, c.MeanF1)
		}
		if i > 0 && c.MedianMicros < frontier[i-1].MedianMicros {
			t.Fatal("frontier not sorted by cost")
		}
	}
	var buf bytes.Buffer
	sw.WriteTimeCost(&buf)
	if !strings.Contains(buf.String(), "frontier") {
		t.Fatal("time-cost report malformed")
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
