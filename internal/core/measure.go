package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"mlaasbench/internal/classifiers"
	"mlaasbench/internal/dataset"
	"mlaasbench/internal/metrics"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/platforms"
	"mlaasbench/internal/rng"
	"mlaasbench/internal/synth"
	"mlaasbench/internal/telemetry"
)

// Options configures a measurement sweep.
type Options struct {
	// Profile controls dataset sizes (synth.Quick or synth.Full).
	Profile synth.Profile
	// Seed roots all randomness; identical options ⇒ identical sweeps.
	Seed uint64
	// MaxDatasets truncates the corpus (0 = all 119) for smoke runs.
	MaxDatasets int
	// Platforms restricts the sweep (nil = all seven).
	Platforms []string
	// StorePredictions keeps each config's test-set predictions in the
	// measurements — required by the §6.2 classifier-family inference.
	StorePredictions bool
	// Progress, if non-nil, receives one line per (platform, dataset).
	Progress func(string)
}

// DefaultOptions returns the standard quick-profile sweep configuration.
func DefaultOptions() Options {
	return Options{Profile: synth.Quick, Seed: synth.CorpusSeed, StorePredictions: true}
}

// Measurement is one observed (platform, dataset, config) outcome —
// the unit every analysis consumes.
type Measurement struct {
	Platform string          `json:"platform"`
	Dataset  string          `json:"dataset"`
	Config   pipeline.Config `json:"config"`
	Scores   metrics.Scores  `json:"scores"`
	// Baseline marks the platform's zero-control configuration (§3.2).
	Baseline bool `json:"baseline,omitempty"`
	// Pred holds the test-set predictions when StorePredictions is set
	// (serialized as base64 in JSON).
	Pred []uint8 `json:"pred,omitempty"`
	// Micros is the wall-clock cost of the train+predict call. The paper
	// leaves training time to future work (§8); we record it as an
	// extension dimension.
	Micros int64 `json:"micros,omitempty"`
}

// DatasetInfo is the per-dataset context the analyses need.
type DatasetInfo struct {
	Name   string         `json:"name"`
	Domain dataset.Domain `json:"domain"`
	N      int            `json:"n"`
	D      int            `json:"d"`
	Linear bool           `json:"linear"` // generator ground truth
	TestY  []int          `json:"test_y"`
	// Split holds the in-memory train/test partition; it is regenerable
	// from (name, seed, profile) and therefore not persisted.
	Split dataset.Split `json:"-"`
}

// Sweep holds a completed measurement campaign.
type Sweep struct {
	Opts     Options
	Datasets []DatasetInfo
	// ByPlatform[platform][dataset] lists every measurement taken.
	ByPlatform map[string]map[string][]Measurement
}

// RunSweep generates the corpus, splits each dataset 70/30 (§3.1) and
// measures every configuration of every requested platform on every
// dataset. The context cancels the sweep between units of work.
func RunSweep(ctx context.Context, opts Options) (*Sweep, error) {
	if opts.Profile.Name == "" {
		opts.Profile = synth.Quick
	}
	if opts.Seed == 0 {
		opts.Seed = synth.CorpusSeed
	}
	names := opts.Platforms
	if len(names) == 0 {
		names = platforms.Names()
	}
	plats := make([]platforms.Platform, 0, len(names))
	for _, n := range names {
		p, err := platforms.New(n)
		if err != nil {
			return nil, err
		}
		plats = append(plats, p)
	}

	specs := synth.Corpus()
	if opts.MaxDatasets > 0 && opts.MaxDatasets < len(specs) {
		specs = specs[:opts.MaxDatasets]
	}

	sw := &Sweep{
		Opts:       opts,
		ByPlatform: make(map[string]map[string][]Measurement, len(plats)),
	}
	for _, p := range plats {
		sw.ByPlatform[p.Name()] = make(map[string][]Measurement, len(specs))
	}

	ctx, sweepSpan := telemetry.StartSpan(ctx, "sweep")
	defer sweepSpan.End()
	splitRNG := rng.New(opts.Seed).Split("splits")
	for _, spec := range specs {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: sweep cancelled: %w", err)
		}
		stopGen := telemetry.Time("corpus_gen")
		ds := synth.GenerateClean(spec, opts.Profile, opts.Seed)
		sp := ds.StratifiedSplit(0.7, splitRNG.Split(ds.Name))
		stopGen()
		sw.Datasets = append(sw.Datasets, DatasetInfo{
			Name:   ds.Name,
			Domain: ds.Domain,
			N:      ds.N(),
			D:      ds.D(),
			Linear: ds.Linear,
			TestY:  sp.Test.Y,
			Split:  sp,
		})
		for _, p := range plats {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: sweep cancelled: %w", err)
			}
			ms, err := measurePlatform(p, sp, ds.Name, opts)
			if err != nil {
				return nil, fmt.Errorf("core: %s on %s: %w", p.Name(), ds.Name, err)
			}
			telemetry.Default().Counter("mlaas_sweep_measurements_total", "platform", p.Name()).Add(int64(len(ms)))
			sw.ByPlatform[p.Name()][ds.Name] = ms
			if opts.Progress != nil {
				opts.Progress(fmt.Sprintf("%-14s %-24s %d configs", p.Name(), ds.Name, len(ms)))
			}
		}
	}
	return sw, nil
}

// measurePlatform runs every configuration of one platform on one split.
func measurePlatform(p platforms.Platform, sp dataset.Split, dsName string, opts Options) ([]Measurement, error) {
	// Black boxes: a single automatic measurement, which is its own
	// baseline and optimum.
	if p.BaselineClassifier() == "" {
		start := time.Now()
		res, err := p.Run(pipeline.Config{}, sp.Train, sp.Test, opts.Seed)
		if err != nil {
			return nil, err
		}
		m := Measurement{
			Platform: p.Name(), Dataset: dsName, Config: res.Config,
			Scores: res.Scores, Baseline: true, Micros: time.Since(start).Microseconds(),
		}
		if opts.StorePredictions {
			m.Pred = packPred(res.Pred)
		}
		return []Measurement{m}, nil
	}

	baseCfg, err := p.Surface().DefaultConfig(p.BaselineClassifier())
	if err != nil {
		return nil, err
	}
	baseKey := baseCfg.String()
	var out []Measurement
	for _, cfg := range pipeline.Enumerate(p.Surface()) {
		start := time.Now()
		res, err := p.Run(cfg, sp.Train, sp.Test, opts.Seed)
		if err != nil {
			return nil, err
		}
		m := Measurement{
			Platform: p.Name(),
			Dataset:  dsName,
			Config:   cfg,
			Scores:   res.Scores,
			Baseline: cfg.String() == baseKey,
			Micros:   time.Since(start).Microseconds(),
		}
		if opts.StorePredictions {
			m.Pred = packPred(res.Pred)
		}
		out = append(out, m)
	}
	return out, nil
}

func packPred(pred []int) []uint8 {
	out := make([]uint8, len(pred))
	for i, v := range pred {
		out[i] = uint8(v)
	}
	return out
}

// Platforms returns the platform names present in the sweep, in complexity
// order.
func (s *Sweep) Platforms() []string {
	var out []string
	for _, name := range platforms.Names() {
		if _, ok := s.ByPlatform[name]; ok {
			out = append(out, name)
		}
	}
	return out
}

// DatasetNames returns the measured dataset names in corpus order.
func (s *Sweep) DatasetNames() []string {
	out := make([]string, len(s.Datasets))
	for i, d := range s.Datasets {
		out[i] = d.Name
	}
	return out
}

// Dataset returns the DatasetInfo by name.
func (s *Sweep) Dataset(name string) (DatasetInfo, bool) {
	for _, d := range s.Datasets {
		if d.Name == name {
			return d, true
		}
	}
	return DatasetInfo{}, false
}

// Baseline returns the baseline measurement of a platform on a dataset.
func (s *Sweep) Baseline(platform, ds string) (Measurement, bool) {
	for _, m := range s.ByPlatform[platform][ds] {
		if m.Baseline {
			return m, true
		}
	}
	return Measurement{}, false
}

// Best returns the measurement with the highest value of the named metric
// for a platform on a dataset (the per-dataset "optimized" outcome, §4.1).
func (s *Sweep) Best(platform, ds, metric string) (Measurement, bool) {
	best := Measurement{}
	found := false
	bestVal := -1.0
	for _, m := range s.ByPlatform[platform][ds] {
		v, err := m.Scores.Get(metric)
		if err != nil {
			return Measurement{}, false
		}
		if v > bestVal {
			bestVal = v
			best = m
			found = true
		}
	}
	return best, found
}

// ConfigCount returns the number of measured configurations per dataset for
// a platform (Table 2's scale column, per dataset).
func (s *Sweep) ConfigCount(platform string) int {
	for _, ms := range s.ByPlatform[platform] {
		return len(ms)
	}
	return 0
}

// classifierBests returns, for one platform and dataset, each classifier's
// best F-score over the given measurement filter.
func (s *Sweep) classifierBests(platform, ds string, filter func(Measurement) bool) map[string]float64 {
	bests := map[string]float64{}
	for _, m := range s.ByPlatform[platform][ds] {
		if filter != nil && !filter(m) {
			continue
		}
		name := m.Config.Classifier
		if v, ok := bests[name]; !ok || m.Scores.F1 > v {
			bests[name] = m.Scores.F1
		}
	}
	return bests
}

// sortedKeys returns map keys in sorted order (deterministic iteration).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// classifierLabel renders a classifier's paper abbreviation (LR, BST, ...).
func classifierLabel(name string) string {
	if name == "auto" {
		return "AUTO"
	}
	info, err := classifiers.Lookup(name)
	if err != nil {
		return name
	}
	return info.Label
}
