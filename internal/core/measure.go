package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"mlaasbench/internal/classifiers"
	"mlaasbench/internal/dataset"
	"mlaasbench/internal/metrics"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/platforms"
	"mlaasbench/internal/rng"
	"mlaasbench/internal/synth"
	"mlaasbench/internal/telemetry"
)

// Options configures a measurement sweep.
type Options struct {
	// Profile controls dataset sizes (synth.Quick or synth.Full).
	Profile synth.Profile
	// Seed roots all randomness; identical options ⇒ identical sweeps.
	Seed uint64
	// MaxDatasets truncates the corpus (0 = all 119) for smoke runs.
	MaxDatasets int
	// Platforms restricts the sweep (nil = all seven).
	Platforms []string
	// StorePredictions keeps each config's test-set predictions in the
	// measurements — required by the §6.2 classifier-family inference.
	StorePredictions bool
	// Workers bounds the sweep's concurrency (0 = runtime.NumCPU(), 1 =
	// serial). Any worker count produces byte-identical measurements: every
	// configuration's RNG is derived by name from (seed, platform, dataset,
	// config), so results do not depend on execution order, and the engine
	// merges them back into corpus order.
	Workers int
	// PredictShards bounds how many goroutines each measurement's predict
	// stage may fan its test rows across (0 = 1 = serial). The sweep pool
	// already saturates the cores with independent configs, so intra-predict
	// sharding is opt-in here — useful for low-config, huge-test-set runs.
	// Predictions are byte-identical at any shard count.
	PredictShards int
	// Progress, if non-nil, receives one line per (platform, dataset).
	// Calls are serialized, but with Workers > 1 their order follows unit
	// completion, not corpus order.
	Progress func(string)
	// Tracker, if non-nil, is Begin()-ed with the unit count and advanced
	// as units complete — the source of the live progress line and the
	// /progress JSON snapshot.
	Tracker *ProgressTracker
}

// DefaultOptions returns the standard quick-profile sweep configuration.
func DefaultOptions() Options {
	return Options{Profile: synth.Quick, Seed: synth.CorpusSeed, StorePredictions: true}
}

// Measurement is one observed (platform, dataset, config) outcome —
// the unit every analysis consumes.
type Measurement struct {
	Platform string          `json:"platform"`
	Dataset  string          `json:"dataset"`
	Config   pipeline.Config `json:"config"`
	Scores   metrics.Scores  `json:"scores"`
	// Baseline marks the platform's zero-control configuration (§3.2).
	Baseline bool `json:"baseline,omitempty"`
	// Pred holds the test-set predictions when StorePredictions is set
	// (serialized as base64 in JSON).
	Pred []uint8 `json:"pred,omitempty"`
	// Micros is the wall-clock cost of the train+predict call. The paper
	// leaves training time to future work (§8); we record it as an
	// extension dimension.
	Micros int64 `json:"micros,omitempty"`
}

// DatasetInfo is the per-dataset context the analyses need.
type DatasetInfo struct {
	Name   string         `json:"name"`
	Domain dataset.Domain `json:"domain"`
	N      int            `json:"n"`
	D      int            `json:"d"`
	Linear bool           `json:"linear"` // generator ground truth
	TestY  []int          `json:"test_y"`
	// Split holds the in-memory train/test partition; it is regenerable
	// from (name, seed, profile) and therefore not persisted.
	Split dataset.Split `json:"-"`
}

// Sweep holds a completed measurement campaign.
type Sweep struct {
	Opts     Options
	Datasets []DatasetInfo
	// ByPlatform[platform][dataset] lists every measurement taken.
	ByPlatform map[string]map[string][]Measurement

	// dsIndex maps dataset name → Datasets index, built lazily on the first
	// Dataset call (analyses call it in loops; the linear scan was O(n) per
	// lookup). Lazy construction keeps literal-constructed sweeps working.
	dsIndexOnce sync.Once
	dsIndex     map[string]int
}

// RunSweep generates the corpus, splits each dataset 70/30 (§3.1) and
// measures every configuration of every requested platform on every
// dataset. Work fans out over a bounded pool of opts.Workers goroutines:
// (platform, dataset) units run concurrently, and within a unit the config
// list is measured in batches. Results merge back into corpus order, and
// because each configuration's RNG is derived by name rather than by
// position, a parallel sweep is byte-identical to a serial one (modulo the
// wall-clock Micros field). The context cancels the sweep between
// configurations.
func RunSweep(ctx context.Context, opts Options) (*Sweep, error) {
	if opts.Profile.Name == "" {
		opts.Profile = synth.Quick
	}
	if opts.Seed == 0 {
		opts.Seed = synth.CorpusSeed
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	names := opts.Platforms
	if len(names) == 0 {
		names = platforms.Names()
	}
	plats := make([]platforms.Platform, 0, len(names))
	plans := make([]unitPlan, 0, len(names))
	for _, n := range names {
		p, err := platforms.New(n)
		if err != nil {
			return nil, err
		}
		// The config list depends only on the platform surface, so it is
		// enumerated once here rather than once per dataset.
		plan, err := planUnit(p)
		if err != nil {
			return nil, err
		}
		plats = append(plats, p)
		plans = append(plans, plan)
	}

	specs := synth.Corpus()
	if opts.MaxDatasets > 0 && opts.MaxDatasets < len(specs) {
		specs = specs[:opts.MaxDatasets]
	}

	sw := &Sweep{
		Opts:       opts,
		ByPlatform: make(map[string]map[string][]Measurement, len(plats)),
	}
	for _, p := range plats {
		sw.ByPlatform[p.Name()] = make(map[string][]Measurement, len(specs))
	}

	// The sweep itself is a plain stage timer, not a span: a span here
	// would become the root of one giant trace retaining every measurement
	// underneath it. Instead each measured config is its own root trace
	// (see measureOne) and the flight recorder samples among them.
	reg := telemetry.RegistryFrom(ctx)
	defer reg.Time("sweep")()
	if opts.Tracker != nil {
		opts.Tracker.Begin(len(specs) * len(plans))
	}
	splitRNG := rng.New(opts.Seed).Split("splits")

	// dsOut collects one dataset's results, indexed like specs/plans so the
	// final merge reads them back in deterministic corpus order.
	type dsOut struct {
		info  DatasetInfo
		units [][]Measurement // units[pi] aligns with plans[pi].configs
	}
	outs := make([]dsOut, len(specs))

	pl := newPool(ctx, workers)
	var progressMu sync.Mutex
	progress := func(line string) {
		if opts.Progress == nil {
			return
		}
		progressMu.Lock()
		defer progressMu.Unlock()
		opts.Progress(line)
	}

	var dsWG sync.WaitGroup
	for di := range specs {
		dsWG.Add(1)
		go func(di int) {
			defer dsWG.Done()
			// Generate + split inside a slot: it is CPU-bound work.
			if !pl.acquire() {
				return
			}
			_, genSpan := telemetry.StartSpan(pl.ctx, "corpus_gen")
			genSpan.SetAttr("dataset", specs[di].Name)
			ds := synth.GenerateClean(specs[di], opts.Profile, opts.Seed)
			sp := ds.StratifiedSplit(0.7, splitRNG.Split(ds.Name))
			genSpan.End()
			pl.release()
			outs[di].info = DatasetInfo{
				Name:   ds.Name,
				Domain: ds.Domain,
				N:      ds.N(),
				D:      ds.D(),
				Linear: ds.Linear,
				TestY:  sp.Test.Y,
				Split:  sp,
			}
			outs[di].units = make([][]Measurement, len(plans))
			// One FEAT cache per split, shared across all platforms
			// measuring it: a FEAT option's transform depends only on the
			// option and the split, never on the platform.
			cache := pipeline.NewFeatCache()
			var unitWG sync.WaitGroup
			for pi := range plans {
				unitWG.Add(1)
				go func(pi int) {
					defer unitWG.Done()
					ms := runUnit(pl, plans[pi], sp, ds.Name, opts, cache)
					if ms == nil {
						return // failed or cancelled mid-unit; the pool holds the error
					}
					outs[di].units[pi] = ms
					reg.Counter("mlaas_sweep_measurements_total", "platform", plans[pi].platform.Name()).Add(int64(len(ms)))
					if opts.Tracker != nil {
						opts.Tracker.Add(1)
					}
					progress(fmt.Sprintf("%-14s %-24s %d configs", plans[pi].platform.Name(), ds.Name, len(ms)))
				}(pi)
			}
			unitWG.Wait()
		}(di)
	}
	dsWG.Wait()
	if err := pl.done(); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, fmt.Errorf("core: sweep cancelled: %w", err)
		}
		return nil, err
	}

	for di := range outs {
		sw.Datasets = append(sw.Datasets, outs[di].info)
		for pi, p := range plats {
			sw.ByPlatform[p.Name()][outs[di].info.Name] = outs[di].units[pi]
		}
	}
	return sw, nil
}

// unitPlan is the per-platform half of a (platform, dataset) measurement
// unit: the platform plus its enumerated config list, computed once per
// sweep. Black boxes take a single automatic measurement, expressed as one
// zero config.
type unitPlan struct {
	platform platforms.Platform
	blackBox bool
	configs  []pipeline.Config
	baseKey  string // Config.String() of the zero-control baseline
}

func planUnit(p platforms.Platform) (unitPlan, error) {
	if p.BaselineClassifier() == "" {
		return unitPlan{platform: p, blackBox: true, configs: []pipeline.Config{{}}}, nil
	}
	baseCfg, err := p.Surface().DefaultConfig(p.BaselineClassifier())
	if err != nil {
		return unitPlan{}, err
	}
	return unitPlan{
		platform: p,
		configs:  pipeline.Enumerate(p.Surface()),
		baseKey:  baseCfg.String(),
	}, nil
}

// runUnit measures every config of one plan on one split, fanning config
// batches across the pool. The returned slice aligns with plan.configs. A
// nil return means the unit failed or was cancelled; failures are recorded
// on the pool with platform/dataset context attached.
func runUnit(pl *pool, plan unitPlan, sp dataset.Split, dsName string, opts Options, cache *pipeline.FeatCache) []Measurement {
	out := make([]Measurement, len(plan.configs))
	unitStart := time.Now()
	// Batch size targets ~4 batches per worker per unit for load balance
	// without drowning the pool in tiny tasks.
	chunk := (len(plan.configs) + 4*cap(pl.slots) - 1) / (4 * cap(pl.slots))
	if chunk < 1 {
		chunk = 1
	}
	var batchWG sync.WaitGroup
	for lo := 0; lo < len(plan.configs); lo += chunk {
		hi := lo + chunk
		if hi > len(plan.configs) {
			hi = len(plan.configs)
		}
		batchWG.Add(1)
		go func(lo, hi int) {
			defer batchWG.Done()
			if !pl.acquire() {
				return
			}
			defer pl.release()
			for i := lo; i < hi; i++ {
				if pl.ctx.Err() != nil {
					return
				}
				m, err := measureOne(pl.ctx, plan, plan.configs[i], sp, dsName, opts, cache)
				if err != nil {
					pl.fail(fmt.Errorf("core: %s on %s: %w", plan.platform.Name(), dsName, err))
					return
				}
				out[i] = m
			}
		}(lo, hi)
	}
	batchWG.Wait()
	telemetry.RegistryFrom(pl.ctx).Histogram(telemetry.SweepUnitHistogram, "platform", plan.platform.Name()).
		Observe(time.Since(unitStart).Seconds())
	if pl.ctx.Err() != nil {
		return nil
	}
	return out
}

// measureOne runs a single configuration of a plan on one split as its own
// root trace ("measure" span with platform/dataset/config attrs, pipeline
// stages as children). Platforms implementing ContextRunner get the traced
// path; CachedRunner/Run remain as fallbacks for external Platform
// implementations. Black boxes get a nil cache either way (their hidden
// probe fits on internal re-splits the cache cannot represent).
func measureOne(ctx context.Context, plan unitPlan, cfg pipeline.Config, sp dataset.Split, dsName string, opts Options, cache *pipeline.FeatCache) (Measurement, error) {
	p := plan.platform
	unitCache := cache
	if plan.blackBox {
		unitCache = nil
	}
	mctx, span := telemetry.StartSpan(ctx, "measure")
	if opts.PredictShards > 1 {
		mctx = pipeline.WithPredictShards(mctx, opts.PredictShards)
	}
	span.SetAttr("platform", p.Name()).SetAttr("dataset", dsName)
	if !plan.blackBox {
		span.SetAttr("config", cfg.String())
	}
	start := time.Now()
	var (
		res pipeline.Result
		err error
	)
	if cr, ok := p.(platforms.ContextRunner); ok {
		res, err = cr.RunCtx(mctx, cfg, sp.Train, sp.Test, opts.Seed, unitCache)
	} else if cr, ok := p.(platforms.CachedRunner); ok && unitCache != nil {
		res, err = cr.RunCached(cfg, sp.Train, sp.Test, opts.Seed, unitCache)
	} else {
		res, err = p.Run(cfg, sp.Train, sp.Test, opts.Seed)
	}
	if err != nil {
		span.SetError(err)
		span.End()
		return Measurement{}, err
	}
	span.End()
	m := Measurement{
		Platform: p.Name(),
		Dataset:  dsName,
		Config:   res.Config,
		Scores:   res.Scores,
		Baseline: plan.blackBox || cfg.String() == plan.baseKey,
		Micros:   time.Since(start).Microseconds(),
	}
	if opts.StorePredictions {
		m.Pred = packPred(res.Pred)
	}
	return m, nil
}

// measurePlatform runs every configuration of one platform on one split,
// serially. Analyses that re-measure outside a sweep use it directly.
func measurePlatform(p platforms.Platform, sp dataset.Split, dsName string, opts Options) ([]Measurement, error) {
	plan, err := planUnit(p)
	if err != nil {
		return nil, err
	}
	cache := pipeline.NewFeatCache()
	out := make([]Measurement, len(plan.configs))
	for i, cfg := range plan.configs {
		m, err := measureOne(context.Background(), plan, cfg, sp, dsName, opts, cache)
		if err != nil {
			return nil, err
		}
		out[i] = m
	}
	return out, nil
}

func packPred(pred []int) []uint8 {
	out := make([]uint8, len(pred))
	for i, v := range pred {
		out[i] = uint8(v)
	}
	return out
}

// Platforms returns the platform names present in the sweep, in complexity
// order.
func (s *Sweep) Platforms() []string {
	var out []string
	for _, name := range platforms.Names() {
		if _, ok := s.ByPlatform[name]; ok {
			out = append(out, name)
		}
	}
	return out
}

// DatasetNames returns the measured dataset names in corpus order.
func (s *Sweep) DatasetNames() []string {
	out := make([]string, len(s.Datasets))
	for i, d := range s.Datasets {
		out[i] = d.Name
	}
	return out
}

// Dataset returns the DatasetInfo by name. The first call indexes the
// dataset list; Datasets must not be appended to afterwards.
func (s *Sweep) Dataset(name string) (DatasetInfo, bool) {
	s.dsIndexOnce.Do(func() {
		s.dsIndex = make(map[string]int, len(s.Datasets))
		for i, d := range s.Datasets {
			s.dsIndex[d.Name] = i
		}
	})
	i, ok := s.dsIndex[name]
	if !ok {
		return DatasetInfo{}, false
	}
	return s.Datasets[i], true
}

// Baseline returns the baseline measurement of a platform on a dataset.
func (s *Sweep) Baseline(platform, ds string) (Measurement, bool) {
	for _, m := range s.ByPlatform[platform][ds] {
		if m.Baseline {
			return m, true
		}
	}
	return Measurement{}, false
}

// Best returns the measurement with the highest value of the named metric
// for a platform on a dataset (the per-dataset "optimized" outcome, §4.1).
func (s *Sweep) Best(platform, ds, metric string) (Measurement, bool) {
	best := Measurement{}
	found := false
	bestVal := -1.0
	for _, m := range s.ByPlatform[platform][ds] {
		v, err := m.Scores.Get(metric)
		if err != nil {
			return Measurement{}, false
		}
		if v > bestVal {
			bestVal = v
			best = m
			found = true
		}
	}
	return best, found
}

// ConfigCount returns the number of measured configurations per dataset for
// a platform (Table 2's scale column, per dataset).
func (s *Sweep) ConfigCount(platform string) int {
	for _, ms := range s.ByPlatform[platform] {
		return len(ms)
	}
	return 0
}

// classifierBests returns, for one platform and dataset, each classifier's
// best F-score over the given measurement filter.
func (s *Sweep) classifierBests(platform, ds string, filter func(Measurement) bool) map[string]float64 {
	bests := map[string]float64{}
	for _, m := range s.ByPlatform[platform][ds] {
		if filter != nil && !filter(m) {
			continue
		}
		name := m.Config.Classifier
		if v, ok := bests[name]; !ok || m.Scores.F1 > v {
			bests[name] = m.Scores.F1
		}
	}
	return bests
}

// sortedKeys returns map keys in sorted order (deterministic iteration).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// classifierLabel renders a classifier's paper abbreviation (LR, BST, ...).
func classifierLabel(name string) string {
	if name == "auto" {
		return "AUTO"
	}
	info, err := classifiers.Lookup(name)
	if err != nil {
		return name
	}
	return info.Label
}
