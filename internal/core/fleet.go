package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"mlaasbench/internal/classifiers"
	"mlaasbench/internal/client"
	"mlaasbench/internal/cluster"
	"mlaasbench/internal/dataset"
	"mlaasbench/internal/metrics"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/platforms"
	"mlaasbench/internal/rng"
	"mlaasbench/internal/synth"
	"mlaasbench/internal/telemetry"
)

// RunSweepFleet is RunSweep distributed over a serving fleet: every
// (platform, dataset) unit is assigned to one endpoint by consistent
// hash, its configurations are measured remotely (upload the train
// split, train each config, predict the held-out test set over the
// binary wire codec, score locally — the service never sees test
// labels), and the results merge back in corpus order.
//
// The output is byte-identical to a single-process RunSweep, modulo the
// wall-clock Micros field, at ANY endpoint count: the training substrate
// is deterministic and keyed on (platform, dataset name, config, seed),
// so where a measurement runs never changes what it measures, and the
// PR 3 fit-once contract makes served predictions equal to local ones.
// Unit assignment uses the same consistent-hash ring as the router, so
// adding an endpoint to a recurring sweep only moves its fair share of
// units (warm model caches on the other replicas stay useful).
//
// Endpoints are mlaas-server replicas addressed directly (not through a
// router): dataset and model ids are replica-local, so each unit pins
// its whole upload→train→predict sequence to its assigned endpoint.
func RunSweepFleet(ctx context.Context, opts Options, endpoints []string) (*Sweep, error) {
	if len(endpoints) == 0 {
		return nil, errors.New("core: fleet sweep needs at least one endpoint")
	}
	if opts.Profile.Name == "" {
		opts.Profile = synth.Quick
	}
	if opts.Seed == 0 {
		opts.Seed = synth.CorpusSeed
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	names := opts.Platforms
	if len(names) == 0 {
		names = platforms.Names()
	}
	plats := make([]platforms.Platform, 0, len(names))
	plans := make([]unitPlan, 0, len(names))
	for _, n := range names {
		p, err := platforms.New(n)
		if err != nil {
			return nil, err
		}
		plan, err := planUnit(p)
		if err != nil {
			return nil, err
		}
		plats = append(plats, p)
		plans = append(plans, plan)
	}
	specs := synth.Corpus()
	if opts.MaxDatasets > 0 && opts.MaxDatasets < len(specs) {
		specs = specs[:opts.MaxDatasets]
	}

	// One client per endpoint, shared by every unit assigned there; the
	// pooled transport keeps the units on warm connections. Units pin to
	// their endpoint (no Fallbacks): ids are replica-local, so failover
	// mid-unit would address a model that does not exist over there.
	ring := cluster.NewRing(endpoints, 0, 1)
	clients := make(map[string]*client.Client, len(endpoints))
	for _, ep := range ring.Members() {
		c := client.New(ep).WithCodec(client.CodecBinary)
		c.Telemetry = telemetry.RegistryFrom(ctx)
		clients[ep] = c
	}

	sw := &Sweep{
		Opts:       opts,
		ByPlatform: make(map[string]map[string][]Measurement, len(plats)),
	}
	for _, p := range plats {
		sw.ByPlatform[p.Name()] = make(map[string][]Measurement, len(specs))
	}

	reg := telemetry.RegistryFrom(ctx)
	defer reg.Time("sweep_fleet")()
	if opts.Tracker != nil {
		opts.Tracker.Begin(len(specs) * len(plans))
	}
	splitRNG := rng.New(opts.Seed).Split("splits")

	type dsOut struct {
		info  DatasetInfo
		units [][]Measurement
	}
	outs := make([]dsOut, len(specs))

	pl := newPool(ctx, workers)
	var progressMu sync.Mutex
	progress := func(line string) {
		if opts.Progress == nil {
			return
		}
		progressMu.Lock()
		defer progressMu.Unlock()
		opts.Progress(line)
	}

	var dsWG sync.WaitGroup
	for di := range specs {
		dsWG.Add(1)
		go func(di int) {
			defer dsWG.Done()
			// Dataset generation stays local: the sweep needs the split
			// for upload bodies, query instances and held-out labels.
			if !pl.acquire() {
				return
			}
			ds := synth.GenerateClean(specs[di], opts.Profile, opts.Seed)
			sp := ds.StratifiedSplit(0.7, splitRNG.Split(ds.Name))
			pl.release()
			outs[di].info = DatasetInfo{
				Name:   ds.Name,
				Domain: ds.Domain,
				N:      ds.N(),
				D:      ds.D(),
				Linear: ds.Linear,
				TestY:  sp.Test.Y,
				Split:  sp,
			}
			outs[di].units = make([][]Measurement, len(plans))
			var unitWG sync.WaitGroup
			for pi := range plans {
				unitWG.Add(1)
				go func(pi int) {
					defer unitWG.Done()
					owner := ring.Owner("unit/" + plans[pi].platform.Name() + "/" + ds.Name)
					ms := runUnitRemote(pl, clients[owner], plans[pi], sp, ds.Name, opts)
					if ms == nil {
						return
					}
					outs[di].units[pi] = ms
					reg.Counter("mlaas_sweep_measurements_total", "platform", plans[pi].platform.Name()).Add(int64(len(ms)))
					if opts.Tracker != nil {
						opts.Tracker.Add(1)
					}
					progress(fmt.Sprintf("%-14s %-24s %d configs @ %s", plans[pi].platform.Name(), ds.Name, len(ms), owner))
				}(pi)
			}
			unitWG.Wait()
		}(di)
	}
	dsWG.Wait()
	if err := pl.done(); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, fmt.Errorf("core: fleet sweep cancelled: %w", err)
		}
		return nil, err
	}

	for di := range outs {
		sw.Datasets = append(sw.Datasets, outs[di].info)
		for pi, p := range plats {
			sw.ByPlatform[p.Name()][outs[di].info.Name] = outs[di].units[pi]
		}
	}
	return sw, nil
}

// runUnitRemote measures one (platform, dataset) unit against its
// assigned endpoint: one upload, then train+predict per config inside a
// pool slot (the slot bounds in-flight requests, matching the local
// sweep's worker discipline). The returned slice aligns with
// plan.configs; nil means failed or cancelled, with the error on the
// pool.
func runUnitRemote(pl *pool, c *client.Client, plan unitPlan, sp dataset.Split, dsName string, opts Options) []Measurement {
	if !pl.acquire() {
		return nil
	}
	defer pl.release()
	platform := plan.platform.Name()
	unitStart := time.Now()
	dsID, err := c.Upload(pl.ctx, platform, sp.Train)
	if err != nil {
		pl.fail(fmt.Errorf("core: fleet upload %s for %s: %w", dsName, platform, err))
		return nil
	}
	out := make([]Measurement, len(plan.configs))
	for i, cfg := range plan.configs {
		if pl.ctx.Err() != nil {
			return nil
		}
		start := time.Now()
		modelID, err := c.Train(pl.ctx, platform, dsID, cfg, opts.Seed)
		if err != nil {
			pl.fail(fmt.Errorf("core: fleet train %s on %s: %w", platform, dsName, err))
			return nil
		}
		labels, err := c.PredictBatched(pl.ctx, platform, modelID, sp.Test.X, c.PredictBatch)
		if err != nil {
			pl.fail(fmt.Errorf("core: fleet predict %s on %s: %w", platform, dsName, err))
			return nil
		}
		scores, err := metrics.Score(sp.Test.Y, labels)
		if err != nil {
			pl.fail(fmt.Errorf("core: fleet score %s on %s: %w", platform, dsName, err))
			return nil
		}
		// Reproduce measureOne's Measurement exactly: white boxes echo
		// the swept config, black boxes report the hidden-auto config.
		resCfg := cfg
		if plan.blackBox {
			resCfg = pipeline.Config{Classifier: "auto", Params: classifiers.Params{}}
		}
		m := Measurement{
			Platform: platform,
			Dataset:  dsName,
			Config:   resCfg,
			Scores:   scores,
			Baseline: plan.blackBox || cfg.String() == plan.baseKey,
			Micros:   time.Since(start).Microseconds(),
		}
		if opts.StorePredictions {
			m.Pred = packPred(labels)
		}
		out[i] = m
	}
	telemetry.RegistryFrom(pl.ctx).Histogram(telemetry.SweepUnitHistogram, "platform", platform).
		Observe(time.Since(unitStart).Seconds())
	return out
}

// LoadOrRunSweepFleet is LoadOrRunSweep with the measurement work done by
// a fleet: a present cache loads as usual (fleet and local sweeps are
// interchangeable on disk because their results are byte-identical), a
// missing one runs the fleet sweep and saves it.
func LoadOrRunSweepFleet(ctx context.Context, path string, opts Options, endpoints []string) (*Sweep, error) {
	if path != "" {
		if _, err := os.Stat(path); err == nil {
			sw, err := LoadSweep(path, opts)
			if err == nil {
				return sw, nil
			}
			return nil, err
		}
	}
	sw, err := RunSweepFleet(ctx, opts, endpoints)
	if err != nil {
		return nil, err
	}
	if path != "" {
		if err := sw.Save(path); err != nil {
			return nil, err
		}
	}
	return sw, nil
}

// FleetAssignments reports which endpoint each (platform, dataset) unit
// of a sweep would run on — the dry-run view for operators checking
// balance before a long campaign.
func FleetAssignments(opts Options, endpoints []string) map[string]string {
	names := opts.Platforms
	if len(names) == 0 {
		names = platforms.Names()
	}
	specs := synth.Corpus()
	if opts.MaxDatasets > 0 && opts.MaxDatasets < len(specs) {
		specs = specs[:opts.MaxDatasets]
	}
	ring := cluster.NewRing(endpoints, 0, 1)
	out := make(map[string]string, len(specs)*len(names))
	for _, spec := range specs {
		for _, p := range names {
			out[p+"/"+spec.Name] = ring.Owner("unit/" + p + "/" + spec.Name)
		}
	}
	return out
}
