package core

import (
	"fmt"
	"sort"

	"mlaasbench/internal/dataset"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/platforms"
	"mlaasbench/internal/rng"
)

// ExploreRandomClassifiers implements the paper's actionable §5.2 finding as
// an API: instead of sweeping a platform's full classifier collection, try a
// random subset of k classifiers (each tuned over its parameter grid by
// cross-validation on the training data) and return the winner. Figure 8
// shows k=3 typically lands within a few percent of the full sweep.
//
// The returned ExploreResult reports the chosen configuration, its
// cross-validated training F-score, and its held-out test F-score.
type ExploreResult struct {
	Config  pipeline.Config `json:"config"`
	TrainF1 float64         `json:"train_f1"` // cross-validated
	TestF1  float64         `json:"test_f1"`
	Tried   []string        `json:"tried"` // classifier names explored
}

// ExploreRandomClassifiers runs the k-random-classifier strategy on one
// platform and split.
func ExploreRandomClassifiers(p platforms.Platform, split dataset.Split, k int, seed uint64) (*ExploreResult, error) {
	surf := p.Surface()
	if len(surf.Classifiers) == 0 {
		return nil, fmt.Errorf("core: %s exposes no classifier choice", p.Name())
	}
	if k < 1 {
		k = 1
	}
	if k > len(surf.Classifiers) {
		k = len(surf.Classifiers)
	}
	r := rng.New(seed).Split("explore/" + p.Name() + "/" + split.Train.Name)
	picks := r.Sample(len(surf.Classifiers), k)
	sort.Ints(picks)

	var configs []pipeline.Config
	var tried []string
	for _, pi := range picks {
		cs := surf.Classifiers[pi]
		tried = append(tried, cs.Name)
		for _, params := range pipeline.ParamGrid(cs) {
			configs = append(configs, pipeline.Config{
				Feat:       pipeline.Feat{Kind: "none"},
				Classifier: cs.Name,
				Params:     params,
			})
		}
	}
	best, trainF1, err := pipeline.SelectConfig(configs, split.Train, 5, r.Split("cv"))
	if err != nil {
		return nil, fmt.Errorf("core: explore on %s: %w", p.Name(), err)
	}
	res, err := p.Run(best, split.Train, split.Test, seed)
	if err != nil {
		return nil, fmt.Errorf("core: final fit: %w", err)
	}
	return &ExploreResult{
		Config:  best,
		TrainF1: trainF1,
		TestF1:  res.Scores.F1,
		Tried:   tried,
	}, nil
}
