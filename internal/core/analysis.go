package core

import (
	"fmt"
	"math"
	"sort"

	"mlaasbench/internal/metrics"
	"mlaasbench/internal/stats"
)

// PlatformPerformance is one bar of Figure 4: a platform's baseline and
// optimized average F-score with standard errors.
type PlatformPerformance struct {
	Platform        string  `json:"platform"`
	BaselineF1      float64 `json:"baseline_f1"`
	BaselineStdErr  float64 `json:"baseline_stderr"`
	OptimizedF1     float64 `json:"optimized_f1"`
	OptimizedStdErr float64 `json:"optimized_stderr"`
}

// Fig4 computes baseline vs optimized average F-score per platform, in
// complexity order (§4.1, Figure 4).
func (s *Sweep) Fig4() []PlatformPerformance {
	var out []PlatformPerformance
	for _, p := range s.Platforms() {
		var base, opt []float64
		for _, ds := range s.DatasetNames() {
			if m, ok := s.Baseline(p, ds); ok {
				base = append(base, m.Scores.F1)
			}
			if m, ok := s.Best(p, ds, "f1"); ok {
				opt = append(opt, m.Scores.F1)
			}
		}
		out = append(out, PlatformPerformance{
			Platform:        p,
			BaselineF1:      metrics.Mean(base),
			BaselineStdErr:  metrics.StdErr(base),
			OptimizedF1:     metrics.Mean(opt),
			OptimizedStdErr: metrics.StdErr(opt),
		})
	}
	return out
}

// Table3Row is one row of Table 3: a platform's average metrics with the
// per-metric Friedman rankings (in parentheses in the paper) and the
// average Friedman ranking the rows are sorted by.
type Table3Row struct {
	Platform    string             `json:"platform"`
	AvgFriedman float64            `json:"avg_friedman"`
	Avg         map[string]float64 `json:"avg"`      // metric → mean value
	Friedman    map[string]float64 `json:"friedman"` // metric → avg rank
}

// Table3 computes the baseline (optimized=false) or optimized
// (optimized=true) variant of Table 3. Optimized rows maximize each metric
// independently per dataset, matching the paper's per-metric optima.
func (s *Sweep) Table3(optimized bool) []Table3Row {
	plats := s.Platforms()
	dss := s.DatasetNames()
	// values[metric][dataset][platform]
	values := map[string][][]float64{}
	for _, metric := range metrics.MetricNames() {
		grid := make([][]float64, len(dss))
		for di, ds := range dss {
			row := make([]float64, len(plats))
			for pi, p := range plats {
				var m Measurement
				var ok bool
				if optimized {
					m, ok = s.Best(p, ds, metric)
				} else {
					m, ok = s.Baseline(p, ds)
				}
				if ok {
					v, err := m.Scores.Get(metric)
					if err == nil {
						row[pi] = v
					}
				}
			}
			grid[di] = row
		}
		values[metric] = grid
	}

	rows := make([]Table3Row, len(plats))
	for pi, p := range plats {
		rows[pi] = Table3Row{
			Platform: p,
			Avg:      map[string]float64{},
			Friedman: map[string]float64{},
		}
		for _, metric := range metrics.MetricNames() {
			var vals []float64
			for di := range dss {
				vals = append(vals, values[metric][di][pi])
			}
			rows[pi].Avg[metric] = metrics.Mean(vals)
			ranks := stats.FriedmanRanks(values[metric])
			rows[pi].Friedman[metric] = ranks[pi]
		}
		sum := 0.0
		for _, metric := range metrics.MetricNames() {
			sum += rows[pi].Friedman[metric]
		}
		rows[pi].AvgFriedman = sum / float64(len(metrics.MetricNames()))
	}
	sort.SliceStable(rows, func(a, b int) bool { return rows[a].AvgFriedman < rows[b].AvgFriedman })
	return rows
}

// MetricAgreement validates the paper's §3.2 claim that average F-score is
// a representative summary: it returns the Spearman rank correlation
// between the platform ordering induced by average F-score and the ordering
// induced by the Friedman ranking, for the baseline or optimized regime.
// Values near 1 mean the cheap average agrees with the rank-based
// statistic.
func (s *Sweep) MetricAgreement(optimized bool) float64 {
	rows := s.Table3(optimized)
	if len(rows) < 3 {
		return 1
	}
	var avgF, fried []float64
	for _, r := range rows {
		// Negate F so both vectors are "smaller is better".
		avgF = append(avgF, -r.Avg["f1"])
		fried = append(fried, r.Friedman["f1"])
	}
	return stats.Spearman(avgF, fried)
}

// Dimensions lists the three control dimensions in the paper's Figure 5/7
// order.
func Dimensions() []string { return []string{"feat", "clf", "para"} }

// ControlImprovement is one bar of Figure 5: the relative F-score
// improvement over baseline from tuning a single control dimension.
type ControlImprovement struct {
	Platform  string  `json:"platform"`
	Dimension string  `json:"dimension"`
	Percent   float64 `json:"percent"`
	Supported bool    `json:"supported"`
}

// Fig5 computes the per-dimension relative improvement for every platform
// that exposes the dimension (§4.2, Figure 5).
func (s *Sweep) Fig5() []ControlImprovement {
	var out []ControlImprovement
	for _, dim := range Dimensions() {
		for _, p := range s.Platforms() {
			if p == "google" || p == "abm" {
				continue // no user controls at all
			}
			ci := ControlImprovement{Platform: p, Dimension: dim}
			if s.dimensionSupported(p, dim) {
				ci.Supported = true
				var base, best []float64
				for _, ds := range s.DatasetNames() {
					bm, ok := s.Baseline(p, ds)
					if !ok {
						continue
					}
					base = append(base, bm.Scores.F1)
					best = append(best, s.bestInDimension(p, ds, dim))
				}
				mb := metrics.Mean(base)
				if mb > 0 {
					ci.Percent = (metrics.Mean(best) - mb) / mb * 100
				}
			}
			out = append(out, ci)
		}
	}
	return out
}

// dimensionSupported reports whether a platform exposes a control dimension.
func (s *Sweep) dimensionSupported(platform, dim string) bool {
	for _, ds := range s.DatasetNames() {
		ms := s.ByPlatform[platform][ds]
		switch dim {
		case "feat":
			for _, m := range ms {
				if m.Config.Feat.Kind != "none" {
					return true
				}
			}
		case "clf":
			seen := map[string]bool{}
			for _, m := range ms {
				seen[m.Config.Classifier] = true
			}
			return len(seen) > 1
		case "para":
			count := 0
			for _, m := range ms {
				if m.Config.Feat.Kind == "none" && m.Config.Classifier == "logreg" {
					count++
				}
			}
			return count > 1
		}
		break // all datasets share the enumeration; one is enough
	}
	return false
}

// bestInDimension returns the best F1 over the configs that tune only the
// given dimension (others at baseline).
func (s *Sweep) bestInDimension(platform, ds, dim string) float64 {
	best := 0.0
	for _, m := range s.ByPlatform[platform][ds] {
		if !s.inDimension(m, dim) {
			continue
		}
		if m.Scores.F1 > best {
			best = m.Scores.F1
		}
	}
	return best
}

// inDimension reports whether a measurement belongs to the single-dimension
// slice: FEAT varies with classifier/params at baseline, CLF varies with
// defaults, or PARA varies on the baseline classifier.
func (s *Sweep) inDimension(m Measurement, dim string) bool {
	isDefaultParams := s.hasDefaultParams(m)
	switch dim {
	case "feat":
		return m.Config.Classifier == "logreg" && isDefaultParams
	case "clf":
		return m.Config.Feat.Kind == "none" && isDefaultParams
	case "para":
		return m.Config.Feat.Kind == "none" && m.Config.Classifier == "logreg"
	default:
		return false
	}
}

// hasDefaultParams reports whether the measurement's params match the
// platform surface defaults for its classifier.
func (s *Sweep) hasDefaultParams(m Measurement) bool {
	plat := s.ByPlatform[m.Platform]
	// Find any dataset's measurement list to identify defaults: defaults
	// are the first enumeration entry per (feat, classifier) pair. Cheaper
	// and more robust: recompute from the surface via the stored config —
	// a measurement is "default params" if every param equals the grid
	// default. The surface isn't stored, so compare against the first
	// matching config in the same dataset list.
	for _, ms := range plat {
		for _, other := range ms {
			if other.Config.Classifier != m.Config.Classifier {
				continue
			}
			// The enumeration emits the defaults first for each
			// (feat, classifier); find that entry for m's feat.
			if other.Config.Feat != m.Config.Feat {
				continue
			}
			return paramsEqual(other.Config.Params, m.Config.Params)
		}
		break
	}
	return false
}

func paramsEqual(a, b map[string]any) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if fmt.Sprint(b[k]) != fmt.Sprint(v) {
			return false
		}
	}
	return true
}

// VariationPoint is one box of Figure 6/7: the distribution of per-config
// average F-scores for a platform (optionally restricted to one dimension).
type VariationPoint struct {
	Platform  string  `json:"platform"`
	Dimension string  `json:"dimension,omitempty"` // "" for overall (Fig 6)
	Min       float64 `json:"min"`
	Q1        float64 `json:"q1"`
	Median    float64 `json:"median"`
	Q3        float64 `json:"q3"`
	Max       float64 `json:"max"`
	Configs   int     `json:"configs"`
	Supported bool    `json:"supported"`
}

// Fig6 computes the overall performance variation per platform: for every
// configuration, its average F-score across datasets; then the spread of
// that distribution (§5.1, Figure 6).
func (s *Sweep) Fig6() []VariationPoint {
	var out []VariationPoint
	for _, p := range s.Platforms() {
		scores := s.perConfigAverages(p, nil)
		out = append(out, variationPoint(p, "", scores))
	}
	return out
}

// Fig7 computes the per-dimension variation, normalized by the overall
// variation from Fig6 (§5.2, Figure 7). The returned points carry the raw
// quartiles; NormalizedRange reports the ratio.
func (s *Sweep) Fig7() []VariationPoint {
	var out []VariationPoint
	for _, dim := range Dimensions() {
		for _, p := range s.Platforms() {
			if p == "google" || p == "abm" {
				continue
			}
			vp := VariationPoint{Platform: p, Dimension: dim}
			if s.dimensionSupported(p, dim) {
				scores := s.perConfigAverages(p, func(m Measurement) bool { return s.inDimension(m, dim) })
				vp = variationPoint(p, dim, scores)
			}
			out = append(out, vp)
		}
	}
	return out
}

// NormalizedRange returns (max-min) of the dimension point divided by
// (max-min) of the platform's overall variation.
func NormalizedRange(dim VariationPoint, overall []VariationPoint) float64 {
	for _, o := range overall {
		if o.Platform == dim.Platform {
			den := o.Max - o.Min
			if den == 0 {
				return 0
			}
			return (dim.Max - dim.Min) / den
		}
	}
	return 0
}

// perConfigAverages computes, for each distinct config of a platform, the
// average F-score across all datasets (filtered measurements only).
func (s *Sweep) perConfigAverages(platform string, filter func(Measurement) bool) []float64 {
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, ds := range s.DatasetNames() {
		for _, m := range s.ByPlatform[platform][ds] {
			if filter != nil && !filter(m) {
				continue
			}
			key := m.Config.String()
			sums[key] += m.Scores.F1
			counts[key]++
		}
	}
	var out []float64
	for _, key := range sortedKeys(sums) {
		out = append(out, sums[key]/float64(counts[key]))
	}
	return out
}

func variationPoint(platform, dim string, scores []float64) VariationPoint {
	vp := VariationPoint{Platform: platform, Dimension: dim, Configs: len(scores)}
	if len(scores) == 0 {
		return vp
	}
	vp.Supported = true
	vp.Min, vp.Max = metrics.MinMax(scores)
	vp.Q1 = stats.Quantile(scores, 0.25)
	vp.Median = stats.Quantile(scores, 0.5)
	vp.Q3 = stats.Quantile(scores, 0.75)
	return vp
}

// KSubsetPoint is one point of Figure 8: the expected best F-score when a
// user tries a random subset of k classifiers.
type KSubsetPoint struct {
	Platform string  `json:"platform"`
	K        int     `json:"k"`
	AvgBestF float64 `json:"avg_best_f1"`
}

// Fig8 computes, for each platform with classifier choice, the expected
// maximum F-score over random k-classifier subsets, averaged over datasets
// (§5.2, Figure 8). The expectation over subsets is computed exactly via
// order statistics rather than sampling.
func (s *Sweep) Fig8() []KSubsetPoint {
	var out []KSubsetPoint
	for _, p := range s.Platforms() {
		if !s.dimensionSupported(p, "clf") {
			continue
		}
		// Per dataset: each classifier's best F1 (params tuned, FEAT off —
		// the classifier-selection experiment of §5.2).
		perDataset := [][]float64{}
		for _, ds := range s.DatasetNames() {
			bests := s.classifierBests(p, ds, func(m Measurement) bool { return m.Config.Feat.Kind == "none" })
			var vals []float64
			for _, k := range sortedKeys(bests) {
				vals = append(vals, bests[k])
			}
			sort.Float64s(vals)
			perDataset = append(perDataset, vals)
		}
		if len(perDataset) == 0 || len(perDataset[0]) == 0 {
			continue
		}
		total := len(perDataset[0])
		for k := 1; k <= total; k++ {
			sum := 0.0
			for _, vals := range perDataset {
				sum += expectedMaxOfSubset(vals, k)
			}
			out = append(out, KSubsetPoint{Platform: p, K: k, AvgBestF: sum / float64(len(perDataset))})
		}
	}
	return out
}

// expectedMaxOfSubset returns E[max of a uniform random k-subset] of the
// ascending-sorted values, using P(max = i-th value) = C(i-1,k-1)/C(m,k).
func expectedMaxOfSubset(sortedVals []float64, k int) float64 {
	m := len(sortedVals)
	if k >= m {
		return sortedVals[m-1]
	}
	total := binomial(m, k)
	e := 0.0
	for i := k; i <= m; i++ {
		p := binomial(i-1, k-1) / total
		e += p * sortedVals[i-1]
	}
	return e
}

// binomial computes C(n, k) in floating point (n is small: ≤ #classifiers).
func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1.0
	for i := 1; i <= k; i++ {
		r = r * float64(n-k+i) / float64(i)
	}
	return r
}

// ClassifierRank is one row of Table 4: a classifier and the fraction of
// datasets where it was the platform's best choice.
type ClassifierRank struct {
	Classifier string  `json:"classifier"`
	Label      string  `json:"label"`
	Fraction   float64 `json:"fraction"`
}

// Table4 ranks classifiers per platform by the fraction of datasets where
// they achieve the platform's highest F-score, using default parameters
// (optimized=false, Table 4a) or each classifier's best parameters
// (optimized=true, Table 4b). FEAT stays off, as in §4.2.
func (s *Sweep) Table4(platform string, optimized bool) []ClassifierRank {
	wins := map[string]float64{}
	nDatasets := 0
	for _, ds := range s.DatasetNames() {
		filter := func(m Measurement) bool {
			if m.Config.Feat.Kind != "none" {
				return false
			}
			if !optimized {
				return s.hasDefaultParams(m)
			}
			return true
		}
		bests := s.classifierBests(platform, ds, filter)
		if len(bests) == 0 {
			continue
		}
		nDatasets++
		bestVal := math.Inf(-1)
		for _, v := range bests {
			if v > bestVal {
				bestVal = v
			}
		}
		// Ties share the win (each tied classifier counts; the paper's
		// percentages also do not sum to 100 exactly).
		for _, name := range sortedKeys(bests) {
			if bests[name] == bestVal {
				wins[name]++
			}
		}
	}
	var out []ClassifierRank
	for _, name := range sortedKeys(wins) {
		out = append(out, ClassifierRank{
			Classifier: name,
			Label:      classifierLabel(name),
			Fraction:   wins[name] / float64(nDatasets),
		})
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Fraction > out[b].Fraction })
	if len(out) > 4 {
		out = out[:4]
	}
	return out
}
