package core

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"mlaasbench/internal/dataset"
	"mlaasbench/internal/metrics"
	"mlaasbench/internal/stats"
	"mlaasbench/internal/synth"
)

// This file renders every reproduced table and figure as text, in the
// layout of the paper's artifacts. Each WriteX function is the output side
// of one experiment in DESIGN.md's index; cmd/mlaas-bench and the
// benchmark harness call them.

// WriteFig3 prints the corpus characteristics: the Figure-3(a) domain
// breakdown and the 3(b)/3(c) sample/feature count distributions.
func WriteFig3(w io.Writer, p synth.Profile, seed uint64) {
	specs := synth.Corpus()
	domains := map[dataset.Domain]int{}
	var samples, feats []float64
	for _, spec := range specs {
		domains[spec.Domain]++
		ds := synth.GenerateClean(spec, p, seed)
		samples = append(samples, float64(ds.N()))
		feats = append(feats, float64(ds.D()))
	}
	fmt.Fprintf(w, "Figure 3(a): application domains (%d datasets)\n", len(specs))
	type dc struct {
		d dataset.Domain
		n int
	}
	var dcs []dc
	for d, n := range domains {
		dcs = append(dcs, dc{d, n})
	}
	sort.Slice(dcs, func(a, b int) bool { return dcs[a].n > dcs[b].n })
	for _, e := range dcs {
		fmt.Fprintf(w, "  %-24s %3d\n", e.d, e.n)
	}
	fmt.Fprintf(w, "Figure 3(b): samples per dataset (profile %s)\n", p.Name)
	writeQuantiles(w, samples)
	fmt.Fprintf(w, "Figure 3(c): features per dataset\n")
	writeQuantiles(w, feats)
}

func writeQuantiles(w io.Writer, vals []float64) {
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		fmt.Fprintf(w, "  p%-3.0f %8.0f\n", q*100, stats.Quantile(vals, q))
	}
}

// WriteTable2 prints the measurement-scale table: per platform, the number
// of FEAT options, classifiers, parameters and total per-dataset
// configurations in this reproduction (the paper's Table 2 reports the
// same structure at production scale).
func (s *Sweep) WriteTable2(w io.Writer) {
	fmt.Fprintf(w, "Table 2: scale of the measurements (%d datasets, profile %s)\n", len(s.Datasets), s.Opts.Profile.Name)
	fmt.Fprintf(w, "  %-14s %6s %6s %7s %14s\n", "platform", "#feat", "#clf", "#param", "#measurements")
	for _, p := range s.Platforms() {
		var feats, clfs, params int
		seenFeat := map[string]bool{}
		seenClf := map[string]bool{}
		seenParam := map[string]bool{}
		for _, ds := range s.DatasetNames() {
			for _, m := range s.ByPlatform[p][ds] {
				seenFeat[m.Config.Feat.String()] = true
				seenClf[m.Config.Classifier] = true
				for k := range m.Config.Params {
					seenParam[m.Config.Classifier+"/"+k] = true
				}
			}
			break // enumeration is identical across datasets
		}
		feats = len(seenFeat)
		if seenFeat["none"] {
			feats-- // "none" is the absence of the control
		}
		clfs = len(seenClf)
		params = len(seenParam)
		total := s.ConfigCount(p) * len(s.Datasets)
		fmt.Fprintf(w, "  %-14s %6d %6d %7d %14d\n", p, feats, clfs, params, total)
	}
}

// WriteFig4 prints the baseline/optimized bars of Figure 4.
func (s *Sweep) WriteFig4(w io.Writer) {
	fmt.Fprintln(w, "Figure 4: optimized and baseline F-score per platform (complexity ascending)")
	fmt.Fprintf(w, "  %-14s %9s %9s %9s\n", "platform", "baseline", "optimized", "±stderr")
	for _, r := range s.Fig4() {
		fmt.Fprintf(w, "  %-14s %9.3f %9.3f %9.3f\n", r.Platform, r.BaselineF1, r.OptimizedF1, r.OptimizedStdErr)
	}
}

// WriteTable3 prints both halves of Table 3.
func (s *Sweep) WriteTable3(w io.Writer) {
	for _, optimized := range []bool{false, true} {
		title := "(a) Baseline performance"
		if optimized {
			title = "(b) Optimized performance"
		}
		fmt.Fprintf(w, "Table 3%s\n", title)
		fmt.Fprintf(w, "  %-14s %9s", "platform", "avgFried")
		for _, m := range metrics.MetricNames() {
			fmt.Fprintf(w, " %18s", m)
		}
		fmt.Fprintln(w)
		for _, row := range s.Table3(optimized) {
			fmt.Fprintf(w, "  %-14s %9.1f", row.Platform, row.AvgFriedman)
			for _, m := range metrics.MetricNames() {
				fmt.Fprintf(w, "    %6.3f (%6.1f)", row.Avg[m], row.Friedman[m])
			}
			fmt.Fprintln(w)
		}
	}
}

// WriteFig5 prints the per-control relative improvements of Figure 5.
func (s *Sweep) WriteFig5(w io.Writer) {
	fmt.Fprintln(w, "Figure 5: relative F-score improvement over baseline per control dimension (%)")
	fmt.Fprintf(w, "  %-14s %12s %12s %12s\n", "platform", "FEAT", "CLF", "PARA")
	byPlat := map[string]map[string]ControlImprovement{}
	for _, ci := range s.Fig5() {
		if byPlat[ci.Platform] == nil {
			byPlat[ci.Platform] = map[string]ControlImprovement{}
		}
		byPlat[ci.Platform][ci.Dimension] = ci
	}
	for _, p := range s.Platforms() {
		dims, ok := byPlat[p]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "  %-14s", p)
		for _, d := range Dimensions() {
			ci := dims[d]
			if !ci.Supported {
				fmt.Fprintf(w, " %12s", "no data")
			} else {
				fmt.Fprintf(w, " %11.1f%%", ci.Percent)
			}
		}
		fmt.Fprintln(w)
	}
}

// WriteTable4 prints the classifier rankings of Table 4 for both parameter
// regimes.
func (s *Sweep) WriteTable4(w io.Writer) {
	platformsWithCLF := []string{"bigml", "predictionio", "microsoft", "local"}
	for _, optimized := range []bool{false, true} {
		title := "(a) baseline parameters"
		if optimized {
			title = "(b) optimized parameters"
		}
		fmt.Fprintf(w, "Table 4%s: top classifiers by share of datasets won\n", title)
		for _, p := range platformsWithCLF {
			if _, ok := s.ByPlatform[p]; !ok {
				continue
			}
			ranks := s.Table4(p, optimized)
			fmt.Fprintf(w, "  %-14s", p)
			for _, r := range ranks {
				fmt.Fprintf(w, "  %s (%.1f%%)", r.Label, r.Fraction*100)
			}
			fmt.Fprintln(w)
		}
	}
}

// WriteFig6 prints the overall performance-variation boxes of Figure 6.
func (s *Sweep) WriteFig6(w io.Writer) {
	fmt.Fprintln(w, "Figure 6: performance variation across configurations (avg F-score over datasets)")
	fmt.Fprintf(w, "  %-14s %8s %8s %8s %8s %8s %8s\n", "platform", "min", "q1", "median", "q3", "max", "configs")
	for _, v := range s.Fig6() {
		fmt.Fprintf(w, "  %-14s %8.3f %8.3f %8.3f %8.3f %8.3f %8d\n", v.Platform, v.Min, v.Q1, v.Median, v.Q3, v.Max, v.Configs)
	}
}

// WriteFig7 prints the per-dimension variation of Figure 7, normalized by
// the platform's overall variation.
func (s *Sweep) WriteFig7(w io.Writer) {
	fmt.Fprintln(w, "Figure 7: share of overall variation captured by tuning one control")
	overall := s.Fig6()
	fmt.Fprintf(w, "  %-14s %10s %10s %10s\n", "platform", "FEAT", "CLF", "PARA")
	byPlat := map[string]map[string]VariationPoint{}
	for _, v := range s.Fig7() {
		if byPlat[v.Platform] == nil {
			byPlat[v.Platform] = map[string]VariationPoint{}
		}
		byPlat[v.Platform][v.Dimension] = v
	}
	for _, p := range s.Platforms() {
		dims, ok := byPlat[p]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "  %-14s", p)
		for _, d := range Dimensions() {
			v := dims[d]
			if !v.Supported {
				fmt.Fprintf(w, " %10s", "no data")
			} else {
				fmt.Fprintf(w, " %10.2f", NormalizedRange(v, overall))
			}
		}
		fmt.Fprintln(w)
	}
}

// WriteFig8 prints the k-classifier exploration curves of Figure 8.
func (s *Sweep) WriteFig8(w io.Writer) {
	fmt.Fprintln(w, "Figure 8: expected best F-score vs number of classifiers explored")
	pts := s.Fig8()
	byPlat := map[string][]KSubsetPoint{}
	for _, pt := range pts {
		byPlat[pt.Platform] = append(byPlat[pt.Platform], pt)
	}
	for _, p := range s.Platforms() {
		series, ok := byPlat[p]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "  %-14s", p)
		for _, pt := range series {
			fmt.Fprintf(w, " k%d=%.3f", pt.K, pt.AvgBestF)
		}
		fmt.Fprintln(w)
	}
}

// WriteInference prints the §6.2 findings: Figure 12's validation CDF and
// the per-platform family splits.
func WriteInference(w io.Writer, rep *InferenceReport) {
	fmt.Fprintf(w, "§6.2: classifier-family inference (%d models trained, %d qualified > %.2f val F1)\n",
		len(rep.Models), len(rep.Qualified), QualifyThreshold)
	fmt.Fprintln(w, "Figure 12: validation F-score CDF of family models")
	writeCDF(w, rep.ValidationCDF(), 8)
	for _, p := range sortedKeys(rep.Choices) {
		lin, non := rep.LinearCount[p], rep.NonLinearCount[p]
		total := lin + non
		if total == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-14s linear %d/%d (%.1f%%)  non-linear %d/%d (%.1f%%)\n",
			p, lin, total, 100*float64(lin)/float64(total), non, total, 100*float64(non)/float64(total))
	}
	if rep.Agreement+rep.Disagreement > 0 {
		fmt.Fprintf(w, "  google vs abm: agree on %d, disagree on %d datasets\n", rep.Agreement, rep.Disagreement)
	}
}

// WriteNaive prints Table 6 and the Figure-14 gap CDF for one platform.
func WriteNaive(w io.Writer, cmp *NaiveComparison, switchBest int) {
	fmt.Fprintf(w, "Table 6: naive strategy vs %s (%d qualified datasets, naive wins %d)\n",
		cmp.Platform, cmp.TotalQualified, cmp.TotalWins)
	fmt.Fprintf(w, "  %-22s %-16s %-16s\n", "", "naive: linear", "naive: non-linear")
	fmt.Fprintf(w, "  %-22s %-16d %-16d\n", cmp.Platform+": linear", cmp.Wins[0][0], cmp.Wins[0][1])
	fmt.Fprintf(w, "  %-22s %-16d %-16d\n", cmp.Platform+": non-linear", cmp.Wins[1][0], cmp.Wins[1][1])
	fmt.Fprintf(w, "Figure 14: F-score gap CDF where naive wins with a different family (avg %.3f, %d datasets)\n",
		cmp.AvgGapDifferentFamily, len(cmp.Gaps))
	writeCDF(w, cmp.GapCDF(), 8)
	fmt.Fprintf(w, "  switching family is the only fix on %d datasets\n", switchBest)
}

// writeCDF prints up to maxPoints evenly spaced steps of a CDF.
func writeCDF(w io.Writer, pts []stats.CDFPoint, maxPoints int) {
	if len(pts) == 0 {
		fmt.Fprintln(w, "  (empty)")
		return
	}
	stride := 1
	if len(pts) > maxPoints {
		stride = len(pts) / maxPoints
	}
	var parts []string
	for i := 0; i < len(pts); i += stride {
		parts = append(parts, fmt.Sprintf("%.3f→%.2f", pts[i].X, pts[i].P))
	}
	if (len(pts)-1)%stride != 0 {
		last := pts[len(pts)-1]
		parts = append(parts, fmt.Sprintf("%.3f→%.2f", last.X, last.P))
	}
	fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
}

// WriteFamilyCDFs prints the Figure-11 linear/non-linear F-score CDFs for a
// probe dataset.
func (s *Sweep) WriteFamilyCDFs(w io.Writer, ds string) {
	lin, non := s.FamilyCDFs(ds)
	fmt.Fprintf(w, "Figure 11 (%s): F-score CDFs by classifier family\n", ds)
	fmt.Fprint(w, "  linear:     ")
	writeCDF(w, lin, 6)
	fmt.Fprint(w, "  non-linear: ")
	writeCDF(w, non, 6)
}
