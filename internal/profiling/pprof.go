// A stdlib-only parser for the pprof protobuf profile format
// (github.com/google/pprof/proto/profile.proto), in the same spirit as
// internal/codec and internal/wire: no generated code, no proto
// dependency, just the handful of wire-format rules the format actually
// uses. runtime/pprof writes gzipped proto; this reads exactly the fields
// the hotspot report needs (sample types, samples, locations, functions,
// string table, period and duration) and resolves them into symbolized
// stacks.
//
// Proto wire format, as used here: a message is a sequence of
// (tag<<3|wiretype) varint keys. Wire type 0 is a varint scalar, type 1 a
// fixed 8-byte scalar, type 5 a fixed 4-byte scalar, type 2 a
// length-delimited payload (nested message, string, or packed repeated
// scalars). Repeated integer fields (Sample.location_id, Sample.value)
// may arrive packed or one-per-key; both are handled.
package profiling

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrMalformedProfile wraps every structural decode failure, so callers
// can distinguish a corrupt profile from I/O errors.
var ErrMalformedProfile = errors.New("malformed pprof profile")

func malformed(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrMalformedProfile, fmt.Sprintf(format, args...))
}

// ValueType names one sample dimension ("cpu"/"nanoseconds",
// "inuse_space"/"bytes").
type ValueType struct {
	Type string
	Unit string
}

// Sample is one resolved stack sample: Stack is symbolized frames leaf
// first (inline frames expanded, innermost first), Values holds one
// measurement per Profile.SampleTypes entry.
type Sample struct {
	Stack  []string
	Values []int64
}

// Profile is the resolved form of one parsed pprof profile.
type Profile struct {
	SampleTypes   []ValueType
	Samples       []Sample
	TimeNanos     int64
	DurationNanos int64
	PeriodType    ValueType
	Period        int64
	// DefaultSampleType names the sample dimension tools should show by
	// default; empty means the convention (last sample type) applies.
	DefaultSampleType string
}

// DefaultValueIndex picks the sample-value column a report should show:
// the profile's declared default type when present, else the last column
// (the pprof convention — cpu/nanoseconds for CPU profiles, inuse_space
// for heap).
func (p *Profile) DefaultValueIndex() int {
	if p.DefaultSampleType != "" {
		for i, st := range p.SampleTypes {
			if st.Type == p.DefaultSampleType {
				return i
			}
		}
	}
	return len(p.SampleTypes) - 1
}

// ValueIndex resolves a sample-type name ("cpu", "inuse_space") to its
// column, or -1 when the profile has no such dimension.
func (p *Profile) ValueIndex(name string) int {
	for i, st := range p.SampleTypes {
		if st.Type == name {
			return i
		}
	}
	return -1
}

// ParseProfile decodes a pprof profile (gzipped or raw proto bytes) into
// its resolved form.
func ParseProfile(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, malformed("gzip header: %v", err)
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			return nil, malformed("gunzip: %v", err)
		}
		data = raw
	}
	return parseProfileProto(data)
}

// ReadProfile is ParseProfile over a reader.
func ReadProfile(r io.Reader) (*Profile, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return ParseProfile(data)
}

// rawLine is one (possibly inlined) frame of a location.
type rawLine struct{ functionID uint64 }

type rawLocation struct {
	id      uint64
	address uint64
	lines   []rawLine
}

type rawFunction struct {
	id   uint64
	name int64 // string table index
}

type rawSample struct {
	locationIDs []uint64
	values      []int64
}

type rawValueType struct{ typ, unit int64 }

// parseProfileProto decodes the uncompressed proto message.
func parseProfileProto(data []byte) (*Profile, error) {
	var (
		sampleTypes []rawValueType
		samples     []rawSample
		locations   []rawLocation
		functions   []rawFunction
		strtab      []string
		prof        = &Profile{}
		periodType  rawValueType
		defaultST   int64
	)
	err := scanFields(data, func(tag int, wire int, scalar uint64, payload []byte) error {
		switch tag {
		case 1: // sample_type
			vt, err := parseValueType(payload)
			if err != nil {
				return err
			}
			sampleTypes = append(sampleTypes, vt)
		case 2: // sample
			s, err := parseSample(payload)
			if err != nil {
				return err
			}
			samples = append(samples, s)
		case 4: // location
			loc, err := parseLocation(payload)
			if err != nil {
				return err
			}
			locations = append(locations, loc)
		case 5: // function
			fn, err := parseFunction(payload)
			if err != nil {
				return err
			}
			functions = append(functions, fn)
		case 6: // string_table
			strtab = append(strtab, string(payload))
		case 9:
			prof.TimeNanos = int64(scalar)
		case 10:
			prof.DurationNanos = int64(scalar)
		case 11:
			vt, err := parseValueType(payload)
			if err != nil {
				return err
			}
			periodType = vt
		case 12:
			prof.Period = int64(scalar)
		case 14:
			defaultST = int64(scalar)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(strtab) == 0 {
		return nil, malformed("empty string table")
	}
	str := func(idx int64) (string, error) {
		if idx < 0 || idx >= int64(len(strtab)) {
			return "", malformed("string index %d out of range (table has %d)", idx, len(strtab))
		}
		return strtab[idx], nil
	}
	for _, vt := range sampleTypes {
		t, err := str(vt.typ)
		if err != nil {
			return nil, err
		}
		u, err := str(vt.unit)
		if err != nil {
			return nil, err
		}
		prof.SampleTypes = append(prof.SampleTypes, ValueType{Type: t, Unit: u})
	}
	if t, err := str(periodType.typ); err == nil {
		u, _ := str(periodType.unit)
		prof.PeriodType = ValueType{Type: t, Unit: u}
	}
	if defaultST != 0 {
		name, err := str(defaultST)
		if err != nil {
			return nil, err
		}
		prof.DefaultSampleType = name
	}

	fnName := make(map[uint64]string, len(functions))
	for _, fn := range functions {
		name, err := str(fn.name)
		if err != nil {
			return nil, err
		}
		fnName[fn.id] = name
	}
	// Resolve each location to its symbolized frames, innermost first:
	// Line[0] is the deepest inlined call at that address.
	locFrames := make(map[uint64][]string, len(locations))
	for _, loc := range locations {
		var frames []string
		for _, ln := range loc.lines {
			name, ok := fnName[ln.functionID]
			if !ok || name == "" {
				name = fmt.Sprintf("0x%x", loc.address)
			}
			frames = append(frames, name)
		}
		if len(frames) == 0 {
			frames = []string{fmt.Sprintf("0x%x", loc.address)}
		}
		locFrames[loc.id] = frames
	}
	for _, s := range samples {
		if len(s.values) != len(prof.SampleTypes) {
			return nil, malformed("sample has %d values, profile declares %d sample types", len(s.values), len(prof.SampleTypes))
		}
		rs := Sample{Values: s.values}
		for _, id := range s.locationIDs {
			frames, ok := locFrames[id]
			if !ok {
				return nil, malformed("sample references unknown location %d", id)
			}
			rs.Stack = append(rs.Stack, frames...)
		}
		prof.Samples = append(prof.Samples, rs)
	}
	return prof, nil
}

// scanFields walks one message's fields. For wire type 2 the visitor gets
// the payload; for scalar types it gets the value (fixed32/64 widened).
func scanFields(data []byte, visit func(tag, wire int, scalar uint64, payload []byte) error) error {
	for len(data) > 0 {
		key, n := decodeVarint(data)
		if n == 0 {
			return malformed("truncated field key")
		}
		data = data[n:]
		tag, wire := int(key>>3), int(key&7)
		if tag == 0 {
			return malformed("field tag 0")
		}
		switch wire {
		case 0: // varint
			v, n := decodeVarint(data)
			if n == 0 {
				return malformed("truncated varint for field %d", tag)
			}
			data = data[n:]
			if err := visit(tag, wire, v, nil); err != nil {
				return err
			}
		case 1: // fixed64
			if len(data) < 8 {
				return malformed("truncated fixed64 for field %d", tag)
			}
			var v uint64
			for i := 0; i < 8; i++ {
				v |= uint64(data[i]) << (8 * i)
			}
			data = data[8:]
			if err := visit(tag, wire, v, nil); err != nil {
				return err
			}
		case 2: // length-delimited
			ln, n := decodeVarint(data)
			if n == 0 {
				return malformed("truncated length for field %d", tag)
			}
			data = data[n:]
			if ln > uint64(len(data)) {
				return malformed("field %d claims %d bytes, %d remain", tag, ln, len(data))
			}
			if err := visit(tag, wire, 0, data[:ln]); err != nil {
				return err
			}
			data = data[ln:]
		case 5: // fixed32
			if len(data) < 4 {
				return malformed("truncated fixed32 for field %d", tag)
			}
			var v uint32
			for i := 0; i < 4; i++ {
				v |= uint32(data[i]) << (8 * i)
			}
			data = data[4:]
			if err := visit(tag, wire, uint64(v), nil); err != nil {
				return err
			}
		default:
			return malformed("unsupported wire type %d for field %d", wire, tag)
		}
	}
	return nil
}

// decodeVarint returns the value and encoded length (0 on truncation).
func decodeVarint(data []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(data) && i < 10; i++ {
		b := data[i]
		v |= uint64(b&0x7f) << (7 * uint(i))
		if b < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}

// repeatedUint64 appends a possibly-packed repeated integer field.
func repeatedUint64(out []uint64, wire int, scalar uint64, payload []byte) ([]uint64, error) {
	if wire != 2 {
		return append(out, scalar), nil
	}
	for len(payload) > 0 {
		v, n := decodeVarint(payload)
		if n == 0 {
			return nil, malformed("truncated packed varint")
		}
		out = append(out, v)
		payload = payload[n:]
	}
	return out, nil
}

func parseValueType(data []byte) (rawValueType, error) {
	var vt rawValueType
	err := scanFields(data, func(tag, wire int, scalar uint64, payload []byte) error {
		switch tag {
		case 1:
			vt.typ = int64(scalar)
		case 2:
			vt.unit = int64(scalar)
		}
		return nil
	})
	return vt, err
}

func parseSample(data []byte) (rawSample, error) {
	var s rawSample
	err := scanFields(data, func(tag, wire int, scalar uint64, payload []byte) error {
		var err error
		switch tag {
		case 1:
			s.locationIDs, err = repeatedUint64(s.locationIDs, wire, scalar, payload)
		case 2:
			var vals []uint64
			vals, err = repeatedUint64(nil, wire, scalar, payload)
			for _, v := range vals {
				s.values = append(s.values, int64(v))
			}
		}
		return err
	})
	return s, err
}

func parseLocation(data []byte) (rawLocation, error) {
	var loc rawLocation
	err := scanFields(data, func(tag, wire int, scalar uint64, payload []byte) error {
		switch tag {
		case 1:
			loc.id = scalar
		case 3:
			loc.address = scalar
		case 4:
			var ln rawLine
			if err := scanFields(payload, func(t, w int, sc uint64, pl []byte) error {
				if t == 1 {
					ln.functionID = sc
				}
				return nil
			}); err != nil {
				return err
			}
			loc.lines = append(loc.lines, ln)
		}
		return nil
	})
	return loc, err
}

func parseFunction(data []byte) (rawFunction, error) {
	var fn rawFunction
	err := scanFields(data, func(tag, wire int, scalar uint64, payload []byte) error {
		switch tag {
		case 1:
			fn.id = scalar
		case 2:
			fn.name = int64(scalar)
		}
		return nil
	})
	return fn, err
}

// FormatValue renders a sample value in its unit's natural scale:
// nanoseconds as seconds, bytes with a binary prefix, counts as-is.
func FormatValue(v int64, unit string) string {
	switch unit {
	case "nanoseconds":
		return fmt.Sprintf("%.3gs", float64(v)/1e9)
	case "bytes":
		av := math.Abs(float64(v))
		switch {
		case av >= 1<<30:
			return fmt.Sprintf("%.3gGiB", float64(v)/(1<<30))
		case av >= 1<<20:
			return fmt.Sprintf("%.3gMiB", float64(v)/(1<<20))
		case av >= 1<<10:
			return fmt.Sprintf("%.3gKiB", float64(v)/(1<<10))
		}
		return fmt.Sprintf("%dB", v)
	default:
		return fmt.Sprintf("%d", v)
	}
}
