// Hotspot aggregation over parsed profiles: flat/cum totals per symbol
// (what `go tool pprof -top` shows) and symbol-level deltas between two
// profiles (the before/after view every perf PR should ship).
package profiling

import (
	"fmt"
	"io"
	"sort"
)

// SymbolValue is one symbol's aggregate in a profile: Flat is the value
// attributed to samples whose leaf frame is the symbol, Cum the value of
// every sample the symbol appears anywhere in.
type SymbolValue struct {
	Symbol string
	Flat   int64
	Cum    int64
}

// Aggregate folds a profile's samples into per-symbol flat/cum totals for
// the given value column, sorted by flat descending (cum breaks ties).
// It also returns the profile's total value (the sum over all samples).
func Aggregate(p *Profile, valueIdx int) (syms []SymbolValue, total int64) {
	if valueIdx < 0 || len(p.SampleTypes) == 0 {
		return nil, 0
	}
	type acc struct{ flat, cum int64 }
	bysym := map[string]*acc{}
	seen := map[string]bool{}
	for _, s := range p.Samples {
		if valueIdx >= len(s.Values) || len(s.Stack) == 0 {
			continue
		}
		v := s.Values[valueIdx]
		total += v
		leaf := s.Stack[0]
		a := bysym[leaf]
		if a == nil {
			a = &acc{}
			bysym[leaf] = a
		}
		a.flat += v
		// Each symbol counts once per sample toward cum, however many
		// times recursion repeats it in the stack.
		clear(seen)
		for _, sym := range s.Stack {
			if seen[sym] {
				continue
			}
			seen[sym] = true
			c := bysym[sym]
			if c == nil {
				c = &acc{}
				bysym[sym] = c
			}
			c.cum += v
		}
	}
	syms = make([]SymbolValue, 0, len(bysym))
	for sym, a := range bysym {
		syms = append(syms, SymbolValue{Symbol: sym, Flat: a.flat, Cum: a.cum})
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].Flat != syms[j].Flat {
			return syms[i].Flat > syms[j].Flat
		}
		if syms[i].Cum != syms[j].Cum {
			return syms[i].Cum > syms[j].Cum
		}
		return syms[i].Symbol < syms[j].Symbol
	})
	return syms, total
}

// SymbolDelta is one symbol's change between two profiles.
type SymbolDelta struct {
	Symbol   string
	FlatA    int64
	FlatB    int64
	CumA     int64
	CumB     int64
	FlatDiff int64 // FlatB - FlatA
	CumDiff  int64 // CumB - CumA
}

// Diff compares two profiles symbol-by-symbol for the named sample type
// (empty = each profile's default column) and returns deltas sorted by
// |flat delta| descending. Symbols present on only one side diff against
// zero — a symbol that appears under load and not at idle surfaces with
// its full weight.
func Diff(a, b *Profile, sampleType string) ([]SymbolDelta, error) {
	idxA, idxB := a.DefaultValueIndex(), b.DefaultValueIndex()
	if sampleType != "" {
		idxA, idxB = a.ValueIndex(sampleType), b.ValueIndex(sampleType)
		if idxA < 0 || idxB < 0 {
			return nil, fmt.Errorf("sample type %q not present in both profiles", sampleType)
		}
	}
	if idxA >= 0 && idxB >= 0 && len(a.SampleTypes) > 0 && len(b.SampleTypes) > 0 {
		ua, ub := a.SampleTypes[idxA].Unit, b.SampleTypes[idxB].Unit
		if ua != ub {
			return nil, fmt.Errorf("profiles disagree on units (%s vs %s); diff would be meaningless", ua, ub)
		}
	}
	symsA, _ := Aggregate(a, idxA)
	symsB, _ := Aggregate(b, idxB)
	merged := map[string]*SymbolDelta{}
	for _, s := range symsA {
		merged[s.Symbol] = &SymbolDelta{Symbol: s.Symbol, FlatA: s.Flat, CumA: s.Cum}
	}
	for _, s := range symsB {
		d := merged[s.Symbol]
		if d == nil {
			d = &SymbolDelta{Symbol: s.Symbol}
			merged[s.Symbol] = d
		}
		d.FlatB, d.CumB = s.Flat, s.Cum
	}
	out := make([]SymbolDelta, 0, len(merged))
	for _, d := range merged {
		d.FlatDiff = d.FlatB - d.FlatA
		d.CumDiff = d.CumB - d.CumA
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := abs64(out[i].FlatDiff), abs64(out[j].FlatDiff)
		if ai != aj {
			return ai > aj
		}
		ci, cj := abs64(out[i].CumDiff), abs64(out[j].CumDiff)
		if ci != cj {
			return ci > cj
		}
		return out[i].Symbol < out[j].Symbol
	})
	return out, nil
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// WriteTop renders the top-n flat/cum table for one profile's value
// column, go-tool-pprof style.
func WriteTop(w io.Writer, p *Profile, valueIdx, n int) {
	if valueIdx < 0 || valueIdx >= len(p.SampleTypes) {
		valueIdx = p.DefaultValueIndex()
	}
	if valueIdx < 0 {
		fmt.Fprintln(w, "(profile has no sample types)")
		return
	}
	st := p.SampleTypes[valueIdx]
	syms, total := Aggregate(p, valueIdx)
	fmt.Fprintf(w, "sample type %s/%s, total %s", st.Type, st.Unit, FormatValue(total, st.Unit))
	if p.DurationNanos > 0 {
		fmt.Fprintf(w, " over %s", FormatValue(p.DurationNanos, "nanoseconds"))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%12s %7s %12s %7s  %s\n", "flat", "flat%", "cum", "cum%", "symbol")
	for i, s := range syms {
		if n > 0 && i >= n {
			fmt.Fprintf(w, "  ... %d more symbols\n", len(syms)-n)
			break
		}
		fmt.Fprintf(w, "%12s %6.1f%% %12s %6.1f%%  %s\n",
			FormatValue(s.Flat, st.Unit), pct(s.Flat, total),
			FormatValue(s.Cum, st.Unit), pct(s.Cum, total), s.Symbol)
	}
}

// WriteDiff renders the top-n symbol deltas between two profiles.
func WriteDiff(w io.Writer, deltas []SymbolDelta, unit string, n int) {
	fmt.Fprintf(w, "%12s %12s %12s %12s  %s\n", "flat A", "flat B", "Δflat", "Δcum", "symbol")
	for i, d := range deltas {
		if n > 0 && i >= n {
			fmt.Fprintf(w, "  ... %d more symbols\n", len(deltas)-n)
			break
		}
		fmt.Fprintf(w, "%12s %12s %12s %12s  %s\n",
			FormatValue(d.FlatA, unit), FormatValue(d.FlatB, unit),
			signedValue(d.FlatDiff, unit), signedValue(d.CumDiff, unit), d.Symbol)
	}
}

// signedValue is FormatValue with an explicit sign, for delta columns.
func signedValue(v int64, unit string) string {
	if v > 0 {
		return "+" + FormatValue(v, unit)
	}
	return FormatValue(v, unit)
}

func pct(v, total int64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(v) / float64(total)
}
