// End-to-end smoke for the tentpole: real HTTP traffic against a real
// service server, a deliberately tight SLO, and the watchdog turning the
// breach into an on-disk bundle whose sidecar points back at retained
// traces — the metrics → traces → profiles triangle closed in one test.
// Lives in the external test package so it can import internal/service
// (which itself imports profiling for the /debug/profiles surface).
package profiling_test

import (
	"context"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"mlaasbench/internal/client"
	"mlaasbench/internal/linalg"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/profiling"
	"mlaasbench/internal/rng"
	"mlaasbench/internal/service"
	"mlaasbench/internal/synth"
	"mlaasbench/internal/telemetry"
)

// startLoadedService boots an in-process server on its own registry,
// trains one model, and returns a client ready to predict against it.
// testing.TB so the overhead benchmarks share the exact serving path.
func startLoadedService(t testing.TB) (*telemetry.Registry, *client.Client, string, [][]float64, func()) {
	t.Helper()
	ctx := context.Background()
	reg := telemetry.NewRegistry()
	srv := httptest.NewServer(service.NewServer(func(string, ...any) {}).WithRegistry(reg).Handler())
	ds := synth.GenerateClean(synth.Spec{
		Name: "e2e", Gen: synth.GenLinear, N: 120, D: 4, Noise: 0.2,
	}, synth.Quick, 1)
	sp := ds.StratifiedSplit(0.7, rng.New(7))
	c := client.New(srv.URL)
	c.Telemetry = reg
	dsID, err := c.Upload(ctx, "local", sp.Train)
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	cfg := pipeline.Config{Classifier: "logreg", Params: map[string]any{}}
	modelID, err := c.Train(ctx, "local", dsID, cfg, 1)
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	return reg, c, modelID, sp.Test.X[:8], srv.Close
}

// TestSLOBreachCapturesBundleWithTraces is the ISSUE's first e2e gate:
// traffic + an impossible latency objective must produce at least one
// trigger-tagged bundle whose sidecar references at least one trace ID
// that really is in the registry's retained-trace buffer.
func TestSLOBreachCapturesBundleWithTraces(t *testing.T) {
	reg, c, modelID, instances, closeSrv := startLoadedService(t)
	defer closeSrv()
	ctx := context.Background()

	predict := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := c.Predict(ctx, "local", modelID, instances); err != nil {
				t.Fatalf("predict: %v", err)
			}
		}
	}
	predict(10)

	p, err := profiling.New(profiling.Config{
		Dir:         t.TempDir(),
		CPUDuration: 100 * time.Millisecond,
		Registry:    reg,
	})
	if err != nil {
		t.Fatalf("profiler: %v", err)
	}
	// No request can finish in a nanosecond, so every predict burns
	// budget and the very first full window breaches.
	wd, err := profiling.NewWatchdog(profiling.WatchdogConfig{
		Registry: reg,
		SLOs: []profiling.SLO{{
			Name:             "predict",
			Route:            "predict",
			LatencyObjective: 1e-9,
			LatencyTarget:    0.999,
			Window:           time.Minute,
			Cooldown:         time.Hour,
		}},
	})
	if err != nil {
		t.Fatalf("watchdog: %v", err)
	}
	wd.Watch(p)

	t0 := time.Now()
	wd.Tick(t0) // baseline snapshot
	predict(10)
	wd.Tick(t0.Add(10 * time.Second)) // delta is all-bad -> breach -> capture

	if n := reg.Counter(telemetry.ProfilingTriggersTotal, "slo", "predict").Value(); n != 1 {
		t.Fatalf("triggers=%d, want 1", n)
	}
	// The capture runs in a watchdog-owned goroutine; poll the store.
	var bundle profiling.Meta
	deadline := time.Now().Add(15 * time.Second)
	for {
		metas, err := p.Store().List()
		if err != nil {
			t.Fatalf("list: %v", err)
		}
		if len(metas) > 0 {
			bundle = metas[len(metas)-1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no bundle appeared after the breach")
		}
		time.Sleep(20 * time.Millisecond)
	}

	if bundle.Reason != profiling.ReasonTrigger || bundle.Tag != "slo-predict" {
		t.Errorf("bundle reason/tag = %s/%s, want trigger/slo-predict", bundle.Reason, bundle.Tag)
	}
	if bundle.Attrs["slo"] != "predict" || bundle.Attrs["latency_burn_rate"] == "" {
		t.Errorf("trigger attrs missing SLO context: %v", bundle.Attrs)
	}
	if len(bundle.SLO) == 0 || !bundle.SLO[0].Breached {
		t.Errorf("sidecar SLO status not breached: %+v", bundle.SLO)
	}
	if len(bundle.SlowTraces) == 0 {
		t.Fatal("sidecar references no retained traces")
	}
	retained := map[string]bool{}
	for _, s := range reg.Traces().Summaries() {
		retained[s.TraceID] = true
	}
	for _, ref := range bundle.SlowTraces {
		if !retained[ref.TraceID] {
			t.Errorf("sidecar trace %s not in the registry's trace buffer", ref.TraceID)
		}
	}
	// The non-CPU profiles must parse; CPU too unless the environment
	// already held the process-wide CPU profile (e.g. go test -cpuprofile).
	for kind := range bundle.Profiles {
		if _, err := p.Store().Profile(bundle.ID, kind); err != nil {
			t.Errorf("parse %s: %v", kind, err)
		}
	}
}

// TestHotSymbolSurfacesInDiff is the ISSUE's second e2e gate: an idle CPU
// capture diffed against one taken while the linalg GEMM kernel is being
// hammered must put the kernel in the top-10 flat deltas — the workflow a
// human runs as `mlaas-profile diff idle loaded`.
func TestHotSymbolSurfacesInDiff(t *testing.T) {
	p, err := profiling.New(profiling.Config{
		Dir:         t.TempDir(),
		CPUDuration: 300 * time.Millisecond,
		Registry:    telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("profiler: %v", err)
	}

	idle, err := p.CaptureNow("idle", profiling.ReasonManual, nil)
	if err != nil {
		t.Fatalf("idle capture: %v", err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			n := 64
			a, b, dst := linalg.NewMatrix(n, n), linalg.NewMatrix(n, n), linalg.NewMatrix(n, n)
			for i := range a.Data {
				a.Data[i] = float64((i+seed)%7) + 0.1
				b.Data[i] = float64((i+2*seed)%5) + 0.2
			}
			for {
				select {
				case <-stop:
					return
				default:
					linalg.MulInto(dst, a, b)
				}
			}
		}(w)
	}
	loaded, err := p.CaptureNow("loaded", profiling.ReasonManual, nil)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("loaded capture: %v", err)
	}
	if idle.Attrs["cpu_skipped"] != "" || loaded.Attrs["cpu_skipped"] != "" {
		t.Skip("CPU profiling unavailable (another profile active in this process)")
	}

	pa, err := p.Store().Profile(idle.ID, "cpu")
	if err != nil {
		t.Fatalf("idle cpu profile: %v", err)
	}
	pb, err := p.Store().Profile(loaded.ID, "cpu")
	if err != nil {
		t.Fatalf("loaded cpu profile: %v", err)
	}
	deltas, err := profiling.Diff(pa, pb, "cpu")
	if err != nil {
		t.Fatalf("diff: %v", err)
	}
	top := deltas
	if len(top) > 10 {
		top = top[:10]
	}
	for _, d := range top {
		if strings.Contains(d.Symbol, "linalg.MulInto") {
			if d.FlatDiff <= 0 {
				t.Errorf("GEMM kernel delta not positive: %+v", d)
			}
			return
		}
	}
	names := make([]string, len(top))
	for i, d := range top {
		names[i] = d.Symbol
	}
	t.Fatalf("GEMM kernel not in top-10 flat deltas: %v", names)
}
