// The on-disk profile store: a bounded ring of capture bundles. Each
// bundle is one directory named by a time-sortable id, holding the pprof
// proto files (<kind>.pprof) plus a meta.json sidecar that makes the
// capture attributable after the fact — the environment fingerprint the
// perf history uses, a runtime health snapshot, the ids of the slowest
// retained traces in the window, and the SLO state that triggered it.
// When the ring outgrows its bound the oldest bundle is pruned, so a
// long-running server's profile directory is self-limiting.
package profiling

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"mlaasbench/internal/perf"
)

// MetaSchemaVersion identifies the sidecar layout; readers reject newer
// schemas rather than misreading them.
const MetaSchemaVersion = 1

// DefaultMaxBundles bounds the on-disk ring when the caller does not.
const DefaultMaxBundles = 32

// ProfileKinds are the runtime/pprof profiles a capture collects, in
// bundle order. "cpu" is a sampling window; the rest are instantaneous.
var ProfileKinds = []string{"cpu", "heap", "mutex", "block", "goroutine"}

// TraceRef points a bundle at one retained trace from the capture window,
// so a metric anomaly links to the exact request trees that explain it.
type TraceRef struct {
	TraceID         string  `json:"trace_id"`
	Name            string  `json:"name"`
	DurationSeconds float64 `json:"duration_seconds"`
	Error           string  `json:"error,omitempty"`
}

// HealthSnapshot is the runtime state at capture time — the same signals
// the telemetry health sampler tracks, read directly so a bundle is
// self-describing even when the sampler is off.
type HealthSnapshot struct {
	Goroutines    int    `json:"goroutines"`
	HeapInuse     uint64 `json:"heap_inuse_bytes"`
	HeapAlloc     uint64 `json:"heap_alloc_bytes_total"`
	GCCycles      uint32 `json:"gc_cycles"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	ResidentBytes uint64 `json:"sys_bytes"`
}

// SLOStatus is one SLO's watchdog state as stamped into a sidecar.
type SLOStatus struct {
	Name            string  `json:"name"`
	LatencyBurnRate float64 `json:"latency_burn_rate"`
	ErrorBurnRate   float64 `json:"error_burn_rate"`
	QueueDepth      int64   `json:"queue_depth"`
	Breached        bool    `json:"breached"`
}

// Meta is the JSON sidecar written next to every bundle's profiles.
type Meta struct {
	Schema int    `json:"schema"`
	ID     string `json:"id"`
	// Tag is the capture label: "periodic" for interval captures, the
	// SLO name for watchdog triggers, or whatever the caller passed to
	// CaptureNow ("pass-end:forward", "end-of-run", ...).
	Tag string `json:"tag"`
	// Reason is the capture class: "periodic", "trigger" or "manual".
	Reason     string         `json:"reason"`
	Start      time.Time      `json:"start"`
	End        time.Time      `json:"end"`
	Env        perf.Env       `json:"env"`
	Health     HealthSnapshot `json:"health"`
	SlowTraces []TraceRef     `json:"slow_traces,omitempty"`
	SLO        []SLOStatus    `json:"slo,omitempty"`
	// Profiles maps kind -> filename inside the bundle directory.
	Profiles map[string]string `json:"profiles"`
	// Attrs carries free-form capture context (the triggering burn rate,
	// the loadgen pass name, ...).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Store is the bounded on-disk bundle ring. Safe for concurrent use; the
// single mutex is uncontended (captures are rare by construction).
type Store struct {
	dir string
	max int

	mu  sync.Mutex
	seq int
	// onDrop, when set, observes ring evictions (the profiler points it
	// at the dropped counter).
	onDrop func(reason string)
}

// OpenStore opens (creating if needed) a bundle ring under dir holding at
// most max bundles (<=0 means DefaultMaxBundles).
func OpenStore(dir string, max int) (*Store, error) {
	if max <= 0 {
		max = DefaultMaxBundles
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir, max: max}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// newID mints a time-sortable bundle id unique within the store.
func (s *Store) newID(now time.Time, tag string) string {
	s.mu.Lock()
	s.seq++
	seq := s.seq
	s.mu.Unlock()
	return fmt.Sprintf("%s-%04d-%s", now.UTC().Format("20060102T150405"), seq, sanitizeTag(tag))
}

// sanitizeTag maps a tag onto the filesystem-safe alphabet bundle ids use.
func sanitizeTag(tag string) string {
	out := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, tag)
	if out == "" {
		out = "capture"
	}
	const maxTag = 48
	if len(out) > maxTag {
		out = out[:maxTag]
	}
	return out
}

// add moves a fully written bundle directory into place and prunes the
// ring. tmpDir must be on the same filesystem (the store's own dir).
func (s *Store) add(tmpDir, id string) error {
	if err := os.Rename(tmpDir, filepath.Join(s.dir, id)); err != nil {
		return err
	}
	return s.prune()
}

// prune deletes the oldest bundles until at most max remain.
func (s *Store) prune() error {
	ids, err := s.ids()
	if err != nil {
		return err
	}
	for len(ids) > s.max {
		if err := os.RemoveAll(filepath.Join(s.dir, ids[0])); err != nil {
			return err
		}
		s.mu.Lock()
		drop := s.onDrop
		s.mu.Unlock()
		if drop != nil {
			drop("evict")
		}
		ids = ids[1:]
	}
	return nil
}

// ids lists bundle directory names, oldest first (ids are time-sortable).
func (s *Store) ids() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		// Skip in-progress temp dirs and stray files.
		if !e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		if _, err := os.Stat(filepath.Join(s.dir, e.Name(), "meta.json")); err != nil {
			continue
		}
		ids = append(ids, e.Name())
	}
	sort.Strings(ids)
	return ids, nil
}

// List returns every bundle's sidecar, oldest first.
func (s *Store) List() ([]Meta, error) {
	ids, err := s.ids()
	if err != nil {
		return nil, err
	}
	metas := make([]Meta, 0, len(ids))
	for _, id := range ids {
		m, err := s.Get(id)
		if err != nil {
			// A bundle pruned between ids() and here is not an error.
			if os.IsNotExist(err) {
				continue
			}
			return nil, err
		}
		metas = append(metas, m)
	}
	return metas, nil
}

// Get loads one bundle's sidecar by id.
func (s *Store) Get(id string) (Meta, error) {
	if !validBundleID(id) {
		return Meta{}, fmt.Errorf("bad bundle id %q", id)
	}
	blob, err := os.ReadFile(filepath.Join(s.dir, id, "meta.json"))
	if err != nil {
		return Meta{}, err
	}
	var m Meta
	if err := json.Unmarshal(blob, &m); err != nil {
		return Meta{}, fmt.Errorf("bundle %s: bad sidecar: %w", id, err)
	}
	if m.Schema > MetaSchemaVersion {
		return Meta{}, fmt.Errorf("bundle %s: sidecar schema %d newer than this binary understands (%d)", id, m.Schema, MetaSchemaVersion)
	}
	return m, nil
}

// ProfilePath returns the on-disk path of one profile inside a bundle,
// validating both names so ids from HTTP requests cannot traverse out of
// the store.
func (s *Store) ProfilePath(id, kind string) (string, error) {
	m, err := s.Get(id)
	if err != nil {
		return "", err
	}
	name, ok := m.Profiles[kind]
	if !ok {
		return "", fmt.Errorf("bundle %s has no %q profile", id, kind)
	}
	if name != filepath.Base(name) || strings.HasPrefix(name, ".") {
		return "", fmt.Errorf("bundle %s: suspicious profile filename %q", id, name)
	}
	return filepath.Join(s.dir, id, name), nil
}

// Profile loads and parses one profile from a bundle.
func (s *Store) Profile(id, kind string) (*Profile, error) {
	path, err := s.ProfilePath(id, kind)
	if err != nil {
		return nil, err
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseProfile(blob)
}

// validBundleID rejects ids that could escape the store directory.
func validBundleID(id string) bool {
	if id == "" || id != filepath.Base(id) || strings.HasPrefix(id, ".") {
		return false
	}
	return !strings.ContainsAny(id, "/\\")
}
