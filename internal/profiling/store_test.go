package profiling

import (
	"strings"
	"testing"
	"time"

	"mlaasbench/internal/telemetry"
)

func TestStoreRingPrunesOldest(t *testing.T) {
	reg := telemetry.NewRegistry()
	p, err := New(Config{
		Dir:           t.TempDir(),
		MaxBundles:    3,
		CPUDuration:   10 * time.Millisecond,
		Registry:      reg,
		TraceSource:   func() []telemetry.TraceSummary { return nil },
		MutexFraction: -1,
		BlockRateNs:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := p.CaptureNow("ring", ReasonManual, nil); err != nil {
			t.Fatalf("capture %d: %v", i, err)
		}
	}
	metas, err := p.Store().List()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 3 {
		t.Fatalf("ring holds %d bundles, want 3", len(metas))
	}
	// The survivors are the newest three (ids are time-sortable and List
	// returns oldest first).
	for i := 1; i < len(metas); i++ {
		if metas[i].ID <= metas[i-1].ID {
			t.Fatalf("bundles out of order: %s then %s", metas[i-1].ID, metas[i].ID)
		}
	}
	if n := reg.Counter(telemetry.ProfilingDroppedTotal, "reason", "evict").Value(); n != 2 {
		t.Fatalf("evict drops = %d, want 2", n)
	}
	if n := reg.Counter(telemetry.ProfilingCapturesTotal, "reason", ReasonManual).Value(); n != 5 {
		t.Fatalf("captures = %d, want 5", n)
	}
}

func TestStoreRejectsTraversal(t *testing.T) {
	st, err := OpenStore(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "..", "../x", "a/b", `a\b`, ".hidden"} {
		if _, err := st.Get(id); err == nil {
			t.Fatalf("Get(%q) accepted a traversal id", id)
		}
		if _, err := st.ProfilePath(id, "cpu"); err == nil {
			t.Fatalf("ProfilePath(%q) accepted a traversal id", id)
		}
	}
}

func TestCaptureSidecarContents(t *testing.T) {
	reg := telemetry.NewRegistry()
	traces := []telemetry.TraceSummary{
		{TraceID: "t-slow", Name: "predict", DurationSeconds: 1.5},
		{TraceID: "t-fast", Name: "predict", DurationSeconds: 0.1},
		{TraceID: "t-mid", Name: "predict", DurationSeconds: 0.7, Error: "boom"},
	}
	p, err := New(Config{
		Dir:           t.TempDir(),
		CPUDuration:   10 * time.Millisecond,
		Registry:      reg,
		TraceSource:   func() []telemetry.TraceSummary { return append([]telemetry.TraceSummary(nil), traces...) },
		MaxTraceRefs:  2,
		MutexFraction: -1,
		BlockRateNs:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.SetSLOSource(func() []SLOStatus {
		return []SLOStatus{{Name: "predict-p99", LatencyBurnRate: 2.5, Breached: true}}
	})
	meta, err := p.CaptureNow("unit test!", ReasonTrigger, map[string]string{"k": "v"})
	if err != nil {
		t.Fatal(err)
	}

	if meta.Schema != MetaSchemaVersion || meta.Reason != ReasonTrigger {
		t.Fatalf("bad schema/reason: %+v", meta)
	}
	if !strings.Contains(meta.ID, "unit_test_") {
		t.Fatalf("tag not sanitized into id: %q", meta.ID)
	}
	if meta.Env.GoVersion == "" || meta.Env.NumCPU == 0 {
		t.Fatalf("env fingerprint missing: %+v", meta.Env)
	}
	if meta.Health.Goroutines == 0 || meta.Health.GOMAXPROCS == 0 {
		t.Fatalf("health snapshot missing: %+v", meta.Health)
	}
	// Slowest two traces, slowest first.
	if len(meta.SlowTraces) != 2 || meta.SlowTraces[0].TraceID != "t-slow" || meta.SlowTraces[1].TraceID != "t-mid" {
		t.Fatalf("slow traces wrong: %+v", meta.SlowTraces)
	}
	if meta.SlowTraces[1].Error != "boom" {
		t.Fatalf("trace error lost: %+v", meta.SlowTraces[1])
	}
	if len(meta.SLO) != 1 || !meta.SLO[0].Breached {
		t.Fatalf("SLO state missing: %+v", meta.SLO)
	}
	if meta.Attrs["k"] != "v" {
		t.Fatalf("attrs lost: %+v", meta.Attrs)
	}

	// Round-trip through the store and parse every recorded profile.
	got, err := p.Store().Get(meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Profiles) == 0 {
		t.Fatal("no profiles recorded")
	}
	for kind := range got.Profiles {
		prof, err := p.Store().Profile(meta.ID, kind)
		if err != nil {
			t.Fatalf("parse %s: %v", kind, err)
		}
		if len(prof.SampleTypes) == 0 {
			t.Fatalf("%s profile has no sample types", kind)
		}
	}
	// Heap/goroutine must always be present; cpu may be skipped only when
	// another CPU profile was running (not the case here).
	for _, kind := range []string{"cpu", "heap", "goroutine"} {
		if _, ok := got.Profiles[kind]; !ok {
			t.Fatalf("bundle missing %s profile: %+v", kind, got.Profiles)
		}
	}
}

func TestCaptureBusyDrop(t *testing.T) {
	reg := telemetry.NewRegistry()
	p, err := New(Config{
		Dir:           t.TempDir(),
		CPUDuration:   200 * time.Millisecond,
		Registry:      reg,
		TraceSource:   func() []telemetry.TraceSummary { return nil },
		MutexFraction: -1,
		BlockRateNs:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := p.CaptureNow("long", ReasonManual, nil)
		done <- err
	}()
	// Wait until the first capture holds the flag, then collide with it.
	for !p.capturing.Load() {
		time.Sleep(time.Millisecond)
	}
	if _, err := p.CaptureNow("collide", ReasonManual, nil); err == nil {
		t.Fatal("concurrent capture did not fail busy")
	}
	if n := reg.Counter(telemetry.ProfilingDroppedTotal, "reason", "busy").Value(); n != 1 {
		t.Fatalf("busy drops = %d, want 1", n)
	}
	if err := <-done; err != nil {
		t.Fatalf("first capture: %v", err)
	}
}
