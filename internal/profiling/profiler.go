// Package profiling closes the metrics -> traces -> profiles triangle: a
// continuous in-process profiler that periodically captures CPU, heap,
// mutex, block and goroutine profiles via runtime/pprof into a bounded
// on-disk ring of bundles, each with a JSON sidecar linking the capture
// to the environment fingerprint, a runtime health snapshot, and the
// slowest retained traces of the window — plus an SLO watchdog
// (watchdog.go) that turns a metric anomaly into an immediate tagged
// capture, so "why was it slow at 14:02" has a profile attached.
//
// The paper's thesis is that complexity/performance trade-offs are
// invisible without measurement; metrics say *that* a path is hot,
// retained traces say *which requests* were slow, and these bundles say
// *which code* the CPU was actually in. NSML (arXiv:1810.09957) makes the
// same case for profiling as a first-class MLaaS platform surface.
package profiling

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mlaasbench/internal/perf"
	"mlaasbench/internal/telemetry"
)

// Capture reasons, stamped into sidecars and the captures counter.
const (
	ReasonPeriodic = "periodic"
	ReasonTrigger  = "trigger"
	ReasonManual   = "manual"
)

// cpuProfileMu serializes CPU profiling across every Profiler in the
// process: runtime/pprof supports one CPU profile at a time, and a second
// Start would fail. Concurrent captures on the *same* profiler never get
// here (the capturing flag drops them as "busy").
var cpuProfileMu sync.Mutex

// Config tunes a Profiler.
type Config struct {
	// Dir is the bundle ring directory (required).
	Dir string
	// Interval is the periodic capture period; <=0 disables the periodic
	// loop (the profiler then only captures on CaptureNow / triggers).
	Interval time.Duration
	// CPUDuration is the CPU sampling window per capture (default 1s,
	// clamped to half the interval so back-to-back captures never overlap).
	CPUDuration time.Duration
	// MaxBundles bounds the on-disk ring (default DefaultMaxBundles).
	MaxBundles int
	// Registry receives the profiling counters and is the default trace
	// source; nil means telemetry.Default().
	Registry *telemetry.Registry
	// TraceSource supplies the retained-trace summaries a sidecar links;
	// nil reads Registry.Traces().Summaries(). Loadgen points it at the
	// current pass's registry.
	TraceSource func() []telemetry.TraceSummary
	// SLOSource, when set, stamps the watchdog's current SLO state into
	// every sidecar (the watchdog wires itself in via Watch).
	SLOSource func() []SLOStatus
	// MaxTraceRefs bounds how many slowest-trace ids a sidecar carries
	// (default 8).
	MaxTraceRefs int
	// MutexFraction and BlockRateNs configure the runtime's mutex and
	// block profilers for the profiler's lifetime (restored on Stop).
	// Zero picks the defaults — fraction 1000 (one contention event in a
	// thousand) and a 10ms block rate. These defaults are deliberately
	// coarse: the interleaved ServePredict A/B (bench_test.go) measured
	// the conventional fraction-100/1ms settings at ~15% predict
	// throughput cost on a contended serving path, far past the ~3%
	// always-on budget, while these sit inside run-to-run noise and still
	// surface the heavy hitters a hotspot diff needs. Negative leaves the
	// runtime settings untouched.
	MutexFraction int
	BlockRateNs   int
}

func (c Config) withDefaults() Config {
	if c.CPUDuration <= 0 {
		c.CPUDuration = time.Second
	}
	if c.Interval > 0 && c.CPUDuration > c.Interval/2 {
		c.CPUDuration = c.Interval / 2
	}
	if c.Registry == nil {
		c.Registry = telemetry.Default()
	}
	if c.TraceSource == nil {
		reg := c.Registry
		c.TraceSource = func() []telemetry.TraceSummary { return reg.Traces().Summaries() }
	}
	if c.MaxTraceRefs <= 0 {
		c.MaxTraceRefs = 8
	}
	if c.MutexFraction == 0 {
		c.MutexFraction = 1000
	}
	if c.BlockRateNs == 0 {
		c.BlockRateNs = int(10 * time.Millisecond)
	}
	return c
}

// Profiler is the continuous capture loop plus the manual/triggered
// capture entry point. Safe for concurrent use.
type Profiler struct {
	cfg   Config
	store *Store

	capturing atomic.Bool // one capture at a time; extras drop as "busy"

	sloMu     sync.Mutex
	sloSource func() []SLOStatus

	mu          sync.Mutex
	done        chan struct{}
	wg          sync.WaitGroup
	prevMutex   int
	prevBlock   int
	rateRestore bool
}

// New opens the bundle ring under cfg.Dir and returns a profiler. Nothing
// captures until Start (periodic) or CaptureNow (one-shot).
func New(cfg Config) (*Profiler, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("profiling: Config.Dir is required")
	}
	cfg = cfg.withDefaults()
	st, err := OpenStore(cfg.Dir, cfg.MaxBundles)
	if err != nil {
		return nil, err
	}
	p := &Profiler{cfg: cfg, store: st, sloSource: cfg.SLOSource}
	st.onDrop = p.drop
	return p, nil
}

// SetSLOSource points the sidecar's SLO-state field at fn; the watchdog
// calls this from Watch so even periodic bundles record the burn rates in
// effect when they were taken.
func (p *Profiler) SetSLOSource(fn func() []SLOStatus) {
	p.sloMu.Lock()
	p.sloSource = fn
	p.sloMu.Unlock()
}

// Store returns the profiler's bundle ring (the /debug/profiles surface
// serves from it).
func (p *Profiler) Store() *Store { return p.store }

// Start enables the runtime mutex/block profilers and, when the config
// has a positive interval, begins the periodic capture loop. Idempotent
// until Stop.
func (p *Profiler) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done != nil {
		return
	}
	if p.cfg.MutexFraction >= 0 {
		p.prevMutex = runtime.SetMutexProfileFraction(p.cfg.MutexFraction)
		p.rateRestore = true
	}
	if p.cfg.BlockRateNs >= 0 {
		runtime.SetBlockProfileRate(p.cfg.BlockRateNs)
		p.prevBlock = 0 // the runtime offers no getter; restore to off
	}
	p.done = make(chan struct{})
	if p.cfg.Interval <= 0 {
		return
	}
	done := p.done
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		ticker := time.NewTicker(p.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				_, _ = p.CaptureNow(ReasonPeriodic, ReasonPeriodic, nil)
			}
		}
	}()
}

// Stop halts the periodic loop, waits for an in-flight capture it
// started, and restores the runtime profiler rates. Idempotent.
func (p *Profiler) Stop() {
	p.mu.Lock()
	if p.done == nil {
		p.mu.Unlock()
		return
	}
	close(p.done)
	p.done = nil
	if p.rateRestore {
		runtime.SetMutexProfileFraction(p.prevMutex)
		runtime.SetBlockProfileRate(p.prevBlock)
		p.rateRestore = false
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// CaptureNow collects one full bundle (CPU window + instantaneous
// profiles + sidecar) and returns its sidecar. Reason should be one of
// the Reason* constants; tag is free-form and lands in the bundle id. At
// most one capture runs at a time — a concurrent call drops with reason
// "busy" and returns an error rather than queueing, because a capture
// that fires seconds late no longer explains the anomaly that asked for
// it.
func (p *Profiler) CaptureNow(tag, reason string, attrs map[string]string) (Meta, error) {
	if !p.capturing.CompareAndSwap(false, true) {
		p.drop("busy")
		return Meta{}, fmt.Errorf("profiling: capture already in flight")
	}
	defer p.capturing.Store(false)

	start := time.Now()
	id := p.store.newID(start, tag)
	tmp := filepath.Join(p.store.dir, ".tmp-"+id)
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		p.drop("error")
		return Meta{}, err
	}
	meta, err := p.captureInto(tmp, id, tag, reason, attrs, start)
	if err != nil {
		_ = os.RemoveAll(tmp)
		p.drop("error")
		return Meta{}, err
	}
	if err := p.store.add(tmp, id); err != nil {
		_ = os.RemoveAll(tmp)
		p.drop("error")
		return Meta{}, err
	}
	p.cfg.Registry.Counter(telemetry.ProfilingCapturesTotal, "reason", reason).Inc()
	return meta, nil
}

// captureInto writes every profile plus the sidecar into dir.
func (p *Profiler) captureInto(dir, id, tag, reason string, attrs map[string]string, start time.Time) (Meta, error) {
	profiles := map[string]string{}

	// CPU first: it is the only profile with a sampling window, and the
	// instantaneous profiles taken after it describe the same interval's
	// end state. If another CPU profile is running (net/http/pprof, a
	// test harness), skip the CPU file but keep the rest of the bundle —
	// a partial bundle still answers most questions.
	cpuSkipped := false
	cpuProfileMu.Lock()
	f, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		cpuProfileMu.Unlock()
		return Meta{}, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		cpuSkipped = true
		_ = f.Close()
		_ = os.Remove(f.Name())
	} else {
		time.Sleep(p.cfg.CPUDuration)
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			cpuProfileMu.Unlock()
			return Meta{}, err
		}
		profiles["cpu"] = "cpu.pprof"
	}
	cpuProfileMu.Unlock()

	for _, kind := range ProfileKinds {
		if kind == "cpu" {
			continue
		}
		prof := pprof.Lookup(kind)
		if prof == nil {
			continue
		}
		name := kind + ".pprof"
		pf, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return Meta{}, err
		}
		// debug=0 writes the gzipped proto form the parser reads.
		if err := prof.WriteTo(pf, 0); err != nil {
			_ = pf.Close()
			return Meta{}, err
		}
		if err := pf.Close(); err != nil {
			return Meta{}, err
		}
		profiles[kind] = name
	}

	meta := Meta{
		Schema:     MetaSchemaVersion,
		ID:         id,
		Tag:        tag,
		Reason:     reason,
		Start:      start.UTC(),
		End:        time.Now().UTC(),
		Env:        perf.CurrentEnv(),
		Health:     captureHealth(),
		SlowTraces: p.slowTraces(),
		Profiles:   profiles,
		Attrs:      attrs,
	}
	if cpuSkipped {
		if meta.Attrs == nil {
			meta.Attrs = map[string]string{}
		}
		meta.Attrs["cpu_skipped"] = "another CPU profile was running"
	}
	p.sloMu.Lock()
	sloSource := p.sloSource
	p.sloMu.Unlock()
	if sloSource != nil {
		meta.SLO = sloSource()
	}
	blob, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return Meta{}, err
	}
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), blob, 0o644); err != nil {
		return Meta{}, err
	}
	return meta, nil
}

// slowTraces picks the slowest retained traces for the sidecar.
func (p *Profiler) slowTraces() []TraceRef {
	sums := p.cfg.TraceSource()
	sort.SliceStable(sums, func(i, j int) bool {
		return sums[i].DurationSeconds > sums[j].DurationSeconds
	})
	if len(sums) > p.cfg.MaxTraceRefs {
		sums = sums[:p.cfg.MaxTraceRefs]
	}
	refs := make([]TraceRef, 0, len(sums))
	for _, s := range sums {
		refs = append(refs, TraceRef{
			TraceID:         s.TraceID,
			Name:            s.Name,
			DurationSeconds: s.DurationSeconds,
			Error:           s.Error,
		})
	}
	return refs
}

func (p *Profiler) drop(reason string) {
	p.cfg.Registry.Counter(telemetry.ProfilingDroppedTotal, "reason", reason).Inc()
}

// captureHealth reads the runtime signals the health sampler tracks, at
// capture time.
func captureHealth() HealthSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return HealthSnapshot{
		Goroutines:    runtime.NumGoroutine(),
		HeapInuse:     ms.HeapInuse,
		HeapAlloc:     ms.TotalAlloc,
		GCCycles:      ms.NumGC,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		ResidentBytes: ms.Sys,
	}
}
