// The SLO watchdog: evaluates rolling-window burn rates over the route
// latency/error metrics the HTTP layer already records, plus the
// admission queue depth gauge, and turns a breach into an immediate
// tagged profile capture. Burn-rate semantics follow the SRE playbook:
// with target t the error budget is 1-t; the burn rate is the fraction
// of the window's requests that were bad divided by the budget, so 1.0
// means "consuming budget exactly as fast as the SLO allows" and the
// watchdog fires when a rate exceeds its configured MaxBurn.
package profiling

import (
	"fmt"
	"math"
	"sync"
	"time"

	"mlaasbench/internal/telemetry"
)

// SLO declares one objective over a route's existing metrics.
type SLO struct {
	// Name labels the SLO in metrics, sidecars and bundle tags.
	Name string
	// Route is the route label on mlaas_http_request_duration_seconds /
	// mlaas_http_requests_total ("predict", "train", ...).
	Route string

	// LatencyObjective is the per-request latency bound in seconds; a
	// request slower than this spends error budget. For exact accounting
	// it should sit on a latency-bucket boundary — between buckets the
	// watchdog rounds the bound down (conservative: over-counts bad).
	// <=0 disables the latency dimension.
	LatencyObjective float64
	// LatencyTarget is the fraction of requests that must meet the
	// objective (0.99 = "99% under the bound"; budget 0.01).
	LatencyTarget float64

	// ErrorTarget is the fraction of requests that must not be 5xx
	// (0.999 = budget 0.001). <=0 disables the error dimension.
	ErrorTarget float64

	// MaxBurn is the burn rate that counts as a breach, exceeded
	// strictly — burning the budget at exactly the allowed rate is
	// compliant. <=0 means 1.
	MaxBurn float64

	// MaxQueueDepth breaches when the route's admission queue gauge
	// exceeds it (strictly). <=0 disables the queue dimension.
	MaxQueueDepth int64

	// Window is the rolling evaluation window (<=0 means 1m).
	Window time.Duration
	// Cooldown is the minimum gap between triggered captures for this
	// SLO (<=0 means Window). Breach *transitions* still count in
	// mlaas_slo_breaches_total during cooldown; only the capture is
	// suppressed (dropped reason "cooldown").
	Cooldown time.Duration
}

func (s SLO) withDefaults() SLO {
	if s.MaxBurn <= 0 {
		s.MaxBurn = 1
	}
	if s.Window <= 0 {
		s.Window = time.Minute
	}
	if s.Cooldown <= 0 {
		s.Cooldown = s.Window
	}
	if s.Route == "" {
		s.Route = "predict"
	}
	if s.Name == "" {
		s.Name = s.Route
	}
	return s
}

// burnSample is one snapshot of a cumulative (total, bad) counter pair.
type burnSample struct {
	at         time.Time
	total, bad uint64
}

// burnWindow holds rolling-window snapshots of cumulative counters and
// computes the burn rate from the newest-vs-baseline delta. It is pure —
// no clocks, no registry — so the window arithmetic is testable in
// isolation. Not safe for concurrent use; the watchdog owns it.
type burnWindow struct {
	window  time.Duration
	samples []burnSample // oldest (the baseline) first
}

// observe appends a snapshot and slides the window. A cumulative counter
// can only ever grow; a shrink means the counter (or the process behind
// it) reset, and every older sample describes a different life — the
// window restarts from the new snapshot alone.
func (w *burnWindow) observe(at time.Time, total, bad uint64) {
	if n := len(w.samples); n > 0 {
		last := w.samples[n-1]
		if total < last.total || bad < last.bad {
			w.samples = w.samples[:0]
		}
	}
	w.samples = append(w.samples, burnSample{at: at, total: total, bad: bad})
	// Slide: drop leading samples, but keep the newest sample at or
	// before the window start as the baseline — deltas then cover at
	// least the full window rather than a fragment of it.
	cutoff := at.Add(-w.window)
	for len(w.samples) >= 2 && !w.samples[1].at.After(cutoff) {
		w.samples = w.samples[1:]
	}
}

// burn returns the window's burn rate for the given error budget. ok is
// false when the window cannot say anything yet: fewer than two samples
// (an empty window or a single observation has no delta) or no traffic
// between baseline and newest.
func (w *burnWindow) burn(budget float64) (rate float64, ok bool) {
	if len(w.samples) < 2 {
		return 0, false
	}
	first, last := w.samples[0], w.samples[len(w.samples)-1]
	dTotal := last.total - first.total
	if dTotal == 0 {
		return 0, false
	}
	dBad := last.bad - first.bad
	badFrac := float64(dBad) / float64(dTotal)
	if budget <= 0 {
		// A zero budget means "nothing may be bad": any badness burns
		// infinitely fast, perfect compliance burns nothing.
		if badFrac > 0 {
			return math.Inf(1), true
		}
		return 0, true
	}
	return badFrac / budget, true
}

// sloState is one SLO's windows plus its edge/cooldown bookkeeping.
type sloState struct {
	slo         SLO
	lat, errs   burnWindow
	breached    bool // previous tick's verdict, for edge-triggered counting
	lastCapture time.Time
	status      SLOStatus
}

// WatchdogConfig wires a Watchdog to a registry.
type WatchdogConfig struct {
	// Registry is read for the route metrics and written for the burn
	// gauges and breach counters; nil means telemetry.Default().
	Registry *telemetry.Registry
	// SLOs are the objectives to evaluate (at least one required).
	SLOs []SLO
	// Interval is the evaluation tick (<=0 means 5s).
	Interval time.Duration
	// OnBreach, when set, observes every breach transition after the
	// gauges update (Watch points it at a profiler capture).
	OnBreach func(slo SLO, status SLOStatus)
}

// Watchdog evaluates SLOs on a tick and fires OnBreach on healthy ->
// breached transitions. Safe for concurrent use.
type Watchdog struct {
	reg      *telemetry.Registry
	interval time.Duration
	onBreach func(slo SLO, status SLOStatus)

	mu     sync.Mutex
	states []*sloState
	done   chan struct{}
	wg     sync.WaitGroup
}

// NewWatchdog builds a watchdog; it evaluates nothing until Start (or an
// explicit tick from tests).
func NewWatchdog(cfg WatchdogConfig) (*Watchdog, error) {
	if len(cfg.SLOs) == 0 {
		return nil, fmt.Errorf("profiling: watchdog needs at least one SLO")
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.Default()
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Second
	}
	w := &Watchdog{reg: cfg.Registry, interval: cfg.Interval, onBreach: cfg.OnBreach}
	for _, s := range cfg.SLOs {
		s = s.withDefaults()
		w.states = append(w.states, &sloState{
			slo:  s,
			lat:  burnWindow{window: s.Window},
			errs: burnWindow{window: s.Window},
		})
	}
	return w, nil
}

// Watch wires the watchdog and a profiler together: breaches trigger a
// tagged capture (subject to the per-SLO cooldown) and every bundle
// sidecar records the current SLO state.
func (w *Watchdog) Watch(p *Profiler) {
	p.SetSLOSource(w.Status)
	w.onBreach = func(slo SLO, status SLOStatus) {
		attrs := map[string]string{
			"slo":               slo.Name,
			"route":             slo.Route,
			"latency_burn_rate": fmt.Sprintf("%.3f", status.LatencyBurnRate),
			"error_burn_rate":   fmt.Sprintf("%.3f", status.ErrorBurnRate),
			"queue_depth":       fmt.Sprintf("%d", status.QueueDepth),
		}
		w.reg.Counter(telemetry.ProfilingTriggersTotal, "slo", slo.Name).Inc()
		// Captures block for the CPU window; run them off the tick loop
		// so evaluation cadence holds. The profiler's own busy-drop
		// bounds concurrency.
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			_, _ = p.CaptureNow("slo-"+slo.Name, ReasonTrigger, attrs)
		}()
	}
}

// Start begins the evaluation loop. Idempotent until Stop.
func (w *Watchdog) Start() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done != nil {
		return
	}
	w.done = make(chan struct{})
	done := w.done
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		ticker := time.NewTicker(w.interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				w.Tick(time.Now())
			}
		}
	}()
}

// Stop halts the loop and waits for in-flight triggered captures.
func (w *Watchdog) Stop() {
	w.mu.Lock()
	if w.done == nil {
		w.mu.Unlock()
		return
	}
	close(w.done)
	w.done = nil
	w.mu.Unlock()
	w.wg.Wait()
}

// Status returns every SLO's most recent evaluation (zero values before
// the first tick).
func (w *Watchdog) Status() []SLOStatus {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]SLOStatus, len(w.states))
	for i, st := range w.states {
		out[i] = st.status
	}
	return out
}

// Tick snapshots the registry and evaluates every SLO once. Exported so
// tests (and the loop) drive it with an explicit clock.
func (w *Watchdog) Tick(now time.Time) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, st := range w.states {
		w.evalLocked(st, now)
	}
}

// evalLocked updates one SLO's windows from the registry, exports the
// gauges, and fires the breach edge.
func (w *Watchdog) evalLocked(st *sloState, now time.Time) {
	slo := st.slo
	status := SLOStatus{Name: slo.Name}

	if slo.LatencyObjective > 0 {
		h := w.reg.Histogram("mlaas_http_request_duration_seconds", "route", slo.Route)
		total := h.Count()
		good := h.CumulativeBelow(slo.LatencyObjective)
		st.lat.observe(now, total, total-good)
		if rate, ok := st.lat.burn(1 - slo.LatencyTarget); ok {
			status.LatencyBurnRate = rate
		}
	}
	if slo.ErrorTarget > 0 {
		total := uint64(w.reg.SumCounters("mlaas_http_requests_total", "route", slo.Route))
		bad := uint64(w.reg.SumCounters("mlaas_http_requests_total", "route", slo.Route, "class", "5xx"))
		st.errs.observe(now, total, bad)
		if rate, ok := st.errs.burn(1 - slo.ErrorTarget); ok {
			status.ErrorBurnRate = rate
		}
	}
	status.QueueDepth = w.reg.Gauge(telemetry.AdmissionQueueDepth, "route", slo.Route).Value()

	status.Breached = status.LatencyBurnRate > slo.MaxBurn ||
		status.ErrorBurnRate > slo.MaxBurn ||
		(slo.MaxQueueDepth > 0 && status.QueueDepth > slo.MaxQueueDepth)

	w.reg.Gauge(telemetry.SLOBurnRateMilli, "slo", slo.Name, "kind", "latency").Set(burnMilli(status.LatencyBurnRate))
	w.reg.Gauge(telemetry.SLOBurnRateMilli, "slo", slo.Name, "kind", "errors").Set(burnMilli(status.ErrorBurnRate))

	wasBreached := st.breached
	st.breached = status.Breached
	st.status = status
	if status.Breached && !wasBreached {
		w.reg.Counter(telemetry.SLOBreachesTotal, "slo", slo.Name).Inc()
		if w.onBreach != nil {
			if now.Sub(st.lastCapture) < slo.Cooldown {
				w.reg.Counter(telemetry.ProfilingDroppedTotal, "reason", "cooldown").Inc()
			} else {
				st.lastCapture = now
				w.onBreach(slo, status)
			}
		}
	}
}

// burnMilli scales a burn rate onto the integral milli gauge, clamping
// the infinities a zero budget can produce.
func burnMilli(rate float64) int64 {
	if math.IsInf(rate, 1) || rate > math.MaxInt64/2000 {
		return math.MaxInt64
	}
	if rate < 0 {
		return 0
	}
	return int64(rate * 1000)
}
