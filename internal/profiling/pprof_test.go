package profiling

import (
	"bytes"
	"errors"
	"runtime/pprof"
	"strings"
	"testing"
)

// --- minimal proto encoder, so tests control every byte ---

func pvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func pint(b []byte, tag int, v uint64) []byte {
	b = pvarint(b, uint64(tag)<<3|0) // wire type 0
	return pvarint(b, v)
}

func pbytes(b []byte, tag int, blob []byte) []byte {
	b = pvarint(b, uint64(tag)<<3|2) // wire type 2
	b = pvarint(b, uint64(len(blob)))
	return append(b, blob...)
}

func valueType(typ, unit uint64) []byte {
	return pint(pint(nil, 1, typ), 2, unit)
}

// buildTestProfile encodes a two-column profile with two samples:
//
//	foo (leaf) <- bar : samples=10, cpu=100ns
//	bar (leaf)        : samples=5,  cpu=50ns
func buildTestProfile(packed bool) []byte {
	// String table: index 0 must be "".
	strs := []string{"", "samples", "count", "cpu", "nanoseconds", "main.foo", "main.bar"}
	var b []byte
	b = pbytes(b, 1, valueType(1, 2)) // sample_type samples/count
	b = pbytes(b, 1, valueType(3, 4)) // sample_type cpu/nanoseconds

	encSample := func(locs []uint64, vals []uint64) []byte {
		var s []byte
		if packed {
			var pl []byte
			for _, l := range locs {
				pl = pvarint(pl, l)
			}
			s = pbytes(s, 1, pl)
			var pv []byte
			for _, v := range vals {
				pv = pvarint(pv, v)
			}
			s = pbytes(s, 2, pv)
		} else {
			for _, l := range locs {
				s = pint(s, 1, l)
			}
			for _, v := range vals {
				s = pint(s, 2, v)
			}
		}
		return s
	}
	b = pbytes(b, 2, encSample([]uint64{1, 2}, []uint64{10, 100}))
	b = pbytes(b, 2, encSample([]uint64{2}, []uint64{5, 50}))

	line := func(fnID uint64) []byte { return pint(nil, 1, fnID) }
	loc := func(id, addr, fnID uint64) []byte {
		l := pint(nil, 1, id)
		l = pint(l, 3, addr)
		return pbytes(l, 4, line(fnID))
	}
	b = pbytes(b, 4, loc(1, 0x1000, 1))
	b = pbytes(b, 4, loc(2, 0x2000, 2))

	fn := func(id, name uint64) []byte { return pint(pint(nil, 1, id), 2, name) }
	b = pbytes(b, 5, fn(1, 5)) // main.foo
	b = pbytes(b, 5, fn(2, 6)) // main.bar

	for _, s := range strs {
		b = pbytes(b, 6, []byte(s))
	}
	b = pint(b, 9, 123)                // time_nanos
	b = pint(b, 10, 456)               // duration_nanos
	b = pbytes(b, 11, valueType(3, 4)) // period_type
	b = pint(b, 12, 10000)             // period
	b = pint(b, 14, 3)                 // default_sample_type = "cpu"
	return b
}

func TestParseSyntheticProfile(t *testing.T) {
	for _, packed := range []bool{true, false} {
		p, err := ParseProfile(buildTestProfile(packed))
		if err != nil {
			t.Fatalf("packed=%v: %v", packed, err)
		}
		if len(p.SampleTypes) != 2 || p.SampleTypes[1] != (ValueType{"cpu", "nanoseconds"}) {
			t.Fatalf("sample types: %+v", p.SampleTypes)
		}
		if p.TimeNanos != 123 || p.DurationNanos != 456 || p.Period != 10000 {
			t.Fatalf("metadata: %+v", p)
		}
		if p.PeriodType != (ValueType{"cpu", "nanoseconds"}) {
			t.Fatalf("period type: %+v", p.PeriodType)
		}
		if p.DefaultSampleType != "cpu" || p.DefaultValueIndex() != 1 {
			t.Fatalf("default sample type %q idx %d", p.DefaultSampleType, p.DefaultValueIndex())
		}
		if len(p.Samples) != 2 {
			t.Fatalf("samples: %+v", p.Samples)
		}
		s0 := p.Samples[0]
		if len(s0.Stack) != 2 || s0.Stack[0] != "main.foo" || s0.Stack[1] != "main.bar" {
			t.Fatalf("stack leaf-first broken: %+v", s0.Stack)
		}
		if s0.Values[0] != 10 || s0.Values[1] != 100 {
			t.Fatalf("values: %+v", s0.Values)
		}
	}
}

func TestParseProfileMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":              {},
		"garbage":            {0xff, 0xff, 0xff, 0xff},
		"truncated":          buildTestProfile(true)[:20],
		"bad gzip":           {0x1f, 0x8b, 0x00},
		"no string table":    pint(nil, 9, 1),
		"bad string index":   pbytes(pbytes(nil, 6, nil), 1, valueType(99, 2)),
		"unknown location":   append(pbytes(pbytes(nil, 6, nil), 1, nil), pbytes(nil, 2, pint(pint(nil, 1, 7), 2, 1))...),
		"value count excess": append(buildTestProfile(true), pbytes(nil, 2, pint(nil, 2, 1))...),
	}
	for name, data := range cases {
		if _, err := ParseProfile(data); err == nil {
			t.Errorf("%s: parsed without error", name)
		} else if !errors.Is(err, ErrMalformedProfile) {
			t.Errorf("%s: error %v does not wrap ErrMalformedProfile", name, err)
		}
	}
}

// Round-trip a real runtime/pprof profile (gzipped proto) through the
// parser and check a known runtime symbol resolves.
func TestParseRealGoroutineProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.Lookup("goroutine").WriteTo(&buf, 0); err != nil {
		t.Fatal(err)
	}
	p, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.SampleTypes) == 0 || len(p.Samples) == 0 {
		t.Fatalf("empty goroutine profile: %+v", p.SampleTypes)
	}
	found := false
	for _, s := range p.Samples {
		for _, sym := range s.Stack {
			if strings.Contains(sym, "pprof") || strings.Contains(sym, "runtime") {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no runtime symbols resolved in goroutine profile")
	}
}

func TestAggregateFlatCum(t *testing.T) {
	p, err := ParseProfile(buildTestProfile(true))
	if err != nil {
		t.Fatal(err)
	}
	syms, total := Aggregate(p, 1) // cpu column
	if total != 150 {
		t.Fatalf("total = %d, want 150", total)
	}
	get := func(name string) SymbolValue {
		for _, s := range syms {
			if s.Symbol == name {
				return s
			}
		}
		t.Fatalf("symbol %s missing from %+v", name, syms)
		return SymbolValue{}
	}
	// foo: leaf of sample 0 only -> flat 100, cum 100.
	if s := get("main.foo"); s.Flat != 100 || s.Cum != 100 {
		t.Fatalf("foo: %+v", s)
	}
	// bar: leaf of sample 1 (50 flat) and present in both stacks (150 cum).
	if s := get("main.bar"); s.Flat != 50 || s.Cum != 150 {
		t.Fatalf("bar: %+v", s)
	}
	// Sorted flat-descending.
	if syms[0].Symbol != "main.foo" {
		t.Fatalf("sort order: %+v", syms)
	}
}

func TestDiffSurfacesNewSymbol(t *testing.T) {
	a, _ := ParseProfile(buildTestProfile(true))
	b, _ := ParseProfile(buildTestProfile(true))
	// Double B's values by diffing A against itself first (sanity: zero).
	deltas, err := Diff(a, b, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range deltas {
		if d.FlatDiff != 0 || d.CumDiff != 0 {
			t.Fatalf("identical profiles diff nonzero: %+v", d)
		}
	}
	// Against an empty-sample profile, every B symbol diffs from zero.
	empty := &Profile{SampleTypes: b.SampleTypes}
	deltas, err = Diff(empty, b, "cpu")
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 2 || deltas[0].Symbol != "main.foo" || deltas[0].FlatDiff != 100 {
		t.Fatalf("diff vs empty: %+v", deltas)
	}
	// Mismatched units refuse to diff.
	bad := &Profile{SampleTypes: []ValueType{{"cpu", "milliseconds"}}}
	if _, err := Diff(bad, b, "cpu"); err == nil {
		t.Fatal("unit mismatch accepted")
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		v    int64
		unit string
		want string
	}{
		{1500000000, "nanoseconds", "1.5s"},
		{2048, "bytes", "2KiB"},
		{3 << 20, "bytes", "3MiB"},
		{512, "bytes", "512B"},
		{42, "count", "42"},
	}
	for _, c := range cases {
		if got := FormatValue(c.v, c.unit); got != c.want {
			t.Errorf("FormatValue(%d, %s) = %q, want %q", c.v, c.unit, got, c.want)
		}
	}
}
