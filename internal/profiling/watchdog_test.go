package profiling

import (
	"math"
	"testing"
	"time"

	"mlaasbench/internal/telemetry"
)

var t0 = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

// An empty window and a single observation both lack a delta; neither may
// report a burn rate.
func TestBurnWindowNeedsTwoSamples(t *testing.T) {
	w := burnWindow{window: time.Minute}
	if rate, ok := w.burn(0.01); ok || rate != 0 {
		t.Fatalf("empty window: got (%v, %v), want (0, false)", rate, ok)
	}
	w.observe(t0, 100, 5)
	if rate, ok := w.burn(0.01); ok || rate != 0 {
		t.Fatalf("single observation: got (%v, %v), want (0, false)", rate, ok)
	}
	// Two samples but zero traffic between them: still nothing to say.
	w.observe(t0.Add(5*time.Second), 100, 5)
	if rate, ok := w.burn(0.01); ok || rate != 0 {
		t.Fatalf("no traffic: got (%v, %v), want (0, false)", rate, ok)
	}
}

// A bad-request fraction exactly equal to the budget burns at exactly 1.0
// — compliant, not a breach, because breaches are strictly greater than
// MaxBurn.
func TestBurnWindowBoundaryExactlyAtTarget(t *testing.T) {
	w := burnWindow{window: time.Minute}
	w.observe(t0, 0, 0)
	// 1000 requests, 10 bad, budget 0.01 (99% target): burn == 1.0.
	w.observe(t0.Add(10*time.Second), 1000, 10)
	rate, ok := w.burn(0.01)
	if !ok {
		t.Fatal("expected a burn rate with two samples and traffic")
	}
	if math.Abs(rate-1.0) > 1e-12 {
		t.Fatalf("burn = %v, want exactly 1.0", rate)
	}
	if rate > 1.0 {
		t.Fatalf("burn %v must not exceed MaxBurn 1.0 at the boundary", rate)
	}
	// One more bad request tips it strictly over.
	w.observe(t0.Add(20*time.Second), 2000, 21)
	rate, ok = w.burn(0.01)
	if !ok || rate <= 1.0 {
		t.Fatalf("burn = %v after extra bad request, want > 1.0", rate)
	}
}

// A cumulative counter that shrinks means the process (or registry)
// behind it reset; mixing lives would produce huge negative deltas cast
// to garbage, so the window must restart from the new snapshot.
func TestBurnWindowCounterReset(t *testing.T) {
	w := burnWindow{window: time.Minute}
	w.observe(t0, 1000, 100)
	w.observe(t0.Add(5*time.Second), 2000, 200)
	// Reset: totals fall back near zero.
	w.observe(t0.Add(10*time.Second), 50, 0)
	if rate, ok := w.burn(0.01); ok || rate != 0 {
		t.Fatalf("after reset: got (%v, %v), want (0, false) until a fresh delta exists", rate, ok)
	}
	// The window rebuilds from the post-reset baseline only.
	w.observe(t0.Add(15*time.Second), 150, 1)
	rate, ok := w.burn(0.01)
	if !ok {
		t.Fatal("expected a burn rate from the post-reset samples")
	}
	if want := (1.0 / 100.0) / 0.01; math.Abs(rate-want) > 1e-12 {
		t.Fatalf("burn = %v, want %v from post-reset delta only", rate, want)
	}
}

// Sliding must keep one sample at/before the window start as baseline so
// the delta spans the whole window, and must drop older history so stale
// badness ages out.
func TestBurnWindowSlides(t *testing.T) {
	w := burnWindow{window: 10 * time.Second}
	// A burst of badness, then a long healthy stretch.
	w.observe(t0, 0, 0)
	w.observe(t0.Add(1*time.Second), 100, 100) // 100% bad burst
	for i := 2; i <= 30; i++ {
		w.observe(t0.Add(time.Duration(i)*time.Second), uint64(100+100*(i-1)), 100)
	}
	rate, ok := w.burn(0.01)
	if !ok {
		t.Fatal("expected a burn rate")
	}
	// The burst is >10s old: the window's delta must contain zero bad.
	if rate != 0 {
		t.Fatalf("burn = %v, want 0 once the burst aged out of the window", rate)
	}
	if len(w.samples) > 12 {
		t.Fatalf("window retains %d samples, want ~window/tick", len(w.samples))
	}
}

func TestBurnWindowZeroBudget(t *testing.T) {
	w := burnWindow{window: time.Minute}
	w.observe(t0, 0, 0)
	w.observe(t0.Add(time.Second), 100, 0)
	if rate, ok := w.burn(0); !ok || rate != 0 {
		t.Fatalf("zero budget, zero bad: got (%v, %v), want (0, true)", rate, ok)
	}
	w.observe(t0.Add(2*time.Second), 200, 1)
	if rate, ok := w.burn(0); !ok || !math.IsInf(rate, 1) {
		t.Fatalf("zero budget, bad traffic: got (%v, %v), want (+Inf, true)", rate, ok)
	}
}

// Tick-level test against a real registry: breach detection is
// edge-triggered, burn gauges export in milli units, and the cooldown
// suppresses the capture but not the breach count.
func TestWatchdogTick(t *testing.T) {
	reg := telemetry.NewRegistry()
	slo := SLO{
		Name:             "predict-p99",
		Route:            "predict",
		LatencyObjective: 0.05,
		LatencyTarget:    0.99,
		ErrorTarget:      0.999,
		MaxBurn:          1,
		Window:           time.Minute,
		Cooldown:         time.Hour, // every later breach lands in cooldown
	}
	var fired int
	w, err := NewWatchdog(WatchdogConfig{
		Registry: reg,
		SLOs:     []SLO{slo},
		OnBreach: func(SLO, SLOStatus) { fired++ },
	})
	if err != nil {
		t.Fatal(err)
	}

	lat := reg.Histogram("mlaas_http_request_duration_seconds", "route", "predict")
	good := func(n int) {
		for i := 0; i < n; i++ {
			lat.Observe(0.002)
			reg.Counter("mlaas_http_requests_total", "route", "predict", "platform", "", "class", "2xx").Inc()
		}
	}
	slow := func(n int) {
		for i := 0; i < n; i++ {
			lat.Observe(0.5)
			reg.Counter("mlaas_http_requests_total", "route", "predict", "platform", "", "class", "2xx").Inc()
		}
	}

	w.Tick(t0) // baseline
	good(100)
	w.Tick(t0.Add(5 * time.Second))
	st := w.Status()[0]
	if st.Breached || st.LatencyBurnRate != 0 {
		t.Fatalf("healthy traffic flagged: %+v", st)
	}
	if n := reg.Counter(telemetry.SLOBreachesTotal, "slo", "predict-p99").Value(); n != 0 {
		t.Fatalf("breaches = %d, want 0", n)
	}

	// 50 of the next 100 requests blow the latency objective: bad
	// fraction far beyond the 1% budget.
	slow(50)
	good(50)
	w.Tick(t0.Add(10 * time.Second))
	st = w.Status()[0]
	if !st.Breached {
		t.Fatalf("expected breach, got %+v", st)
	}
	if st.LatencyBurnRate <= 1 {
		t.Fatalf("latency burn = %v, want > 1", st.LatencyBurnRate)
	}
	if fired != 1 {
		t.Fatalf("OnBreach fired %d times, want 1", fired)
	}
	if n := reg.Counter(telemetry.SLOBreachesTotal, "slo", "predict-p99").Value(); n != 1 {
		t.Fatalf("breaches = %d, want 1", n)
	}
	g := reg.Gauge(telemetry.SLOBurnRateMilli, "slo", "predict-p99", "kind", "latency").Value()
	if g < 1000 {
		t.Fatalf("milli gauge = %d, want >= 1000 during breach", g)
	}

	// Still breached next tick: no new edge, no new fire.
	slow(10)
	w.Tick(t0.Add(15 * time.Second))
	if n := reg.Counter(telemetry.SLOBreachesTotal, "slo", "predict-p99").Value(); n != 1 {
		t.Fatalf("sustained breach recounted: %d", n)
	}
	if fired != 1 {
		t.Fatalf("OnBreach re-fired on sustained breach: %d", fired)
	}

	// Recover (healthy traffic until the slow burst ages out), then
	// breach again inside the cooldown: the edge counts, the capture is
	// dropped as cooldown.
	for i := 1; i <= 14; i++ {
		good(500)
		w.Tick(t0.Add(15*time.Second + time.Duration(i)*5*time.Second))
	}
	st = w.Status()[0]
	if st.Breached {
		t.Fatalf("expected recovery, got %+v", st)
	}
	slow(200)
	w.Tick(t0.Add(95 * time.Second))
	st = w.Status()[0]
	if !st.Breached {
		t.Fatalf("expected second breach, got %+v", st)
	}
	if n := reg.Counter(telemetry.SLOBreachesTotal, "slo", "predict-p99").Value(); n != 2 {
		t.Fatalf("breaches = %d, want 2", n)
	}
	if fired != 1 {
		t.Fatalf("OnBreach fired %d times, want 1 (second breach is in cooldown)", fired)
	}
	if n := reg.Counter(telemetry.ProfilingDroppedTotal, "reason", "cooldown").Value(); n != 1 {
		t.Fatalf("cooldown drops = %d, want 1", n)
	}
}

// Queue-depth breaches need no window history — the gauge is
// instantaneous.
func TestWatchdogQueueDepthBreach(t *testing.T) {
	reg := telemetry.NewRegistry()
	w, err := NewWatchdog(WatchdogConfig{
		Registry: reg,
		SLOs:     []SLO{{Name: "q", Route: "predict", MaxQueueDepth: 8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	reg.Gauge(telemetry.AdmissionQueueDepth, "route", "predict").Set(8)
	w.Tick(t0)
	if st := w.Status()[0]; st.Breached {
		t.Fatalf("depth exactly at bound must not breach: %+v", st)
	}
	reg.Gauge(telemetry.AdmissionQueueDepth, "route", "predict").Set(9)
	w.Tick(t0.Add(time.Second))
	if st := w.Status()[0]; !st.Breached {
		t.Fatalf("depth beyond bound must breach: %+v", st)
	}
}

func TestWatchdogStartStopIdempotent(t *testing.T) {
	reg := telemetry.NewRegistry()
	w, err := NewWatchdog(WatchdogConfig{
		Registry: reg,
		SLOs:     []SLO{{Name: "x", Route: "predict", LatencyObjective: 0.05, LatencyTarget: 0.99}},
		Interval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	w.Start()
	time.Sleep(5 * time.Millisecond)
	w.Stop()
	w.Stop()
	w.Start()
	w.Stop()
}
