// The steady-state overhead gate: the same in-process predict serving
// loop, once bare and once under the continuous profiler, as an
// interleaved A/B pair. mlaas-perf runs both in every round
// (`mlaas-perf run -pkgs ./internal/profiling -bench ServePredict`), so
// machine drift hits both arms equally and the committed record is a
// fair profiled-vs-baseline ratio. The acceptance bar is the profiled
// arm within ~3% of baseline — and the profiler here runs a 100ms CPU
// window every second, a 10% duty cycle, six times the default
// 1s-per-minute deployment cadence, so the committed numbers overstate
// the real steady-state cost rather than hide it.
package profiling_test

import (
	"context"
	"testing"
	"time"

	"mlaasbench/internal/profiling"
)

func BenchmarkServePredictBaseline(b *testing.B) { benchServePredict(b, false) }
func BenchmarkServePredictProfiled(b *testing.B) { benchServePredict(b, true) }

func benchServePredict(b *testing.B, profiled bool) {
	reg, c, modelID, instances, closeSrv := startLoadedService(b)
	defer closeSrv()
	ctx := context.Background()

	if profiled {
		p, err := profiling.New(profiling.Config{
			Dir:         b.TempDir(),
			Interval:    time.Second,
			CPUDuration: 100 * time.Millisecond,
			Registry:    reg,
		})
		if err != nil {
			b.Fatalf("profiler: %v", err)
		}
		p.Start()
		defer p.Stop()
	}

	// Warm the connection pool and the model cache outside the timer.
	for i := 0; i < 3; i++ {
		if _, err := c.Predict(ctx, "local", modelID, instances); err != nil {
			b.Fatalf("warm-up predict: %v", err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Predict(ctx, "local", modelID, instances); err != nil {
			b.Fatal(err)
		}
	}
}
