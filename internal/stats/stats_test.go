package stats

import (
	"math"
	"testing"
	"testing/quick"

	"mlaasbench/internal/rng"
)

func TestFriedmanRanksSimple(t *testing.T) {
	// Subject 0 always best, subject 2 always worst.
	scores := [][]float64{
		{0.9, 0.5, 0.1},
		{0.8, 0.6, 0.2},
		{0.7, 0.4, 0.3},
	}
	r := FriedmanRanks(scores)
	if r[0] != 1 || r[1] != 2 || r[2] != 3 {
		t.Fatalf("ranks %v", r)
	}
}

func TestFriedmanRanksTies(t *testing.T) {
	scores := [][]float64{{0.5, 0.5, 0.1}}
	r := FriedmanRanks(scores)
	if r[0] != 1.5 || r[1] != 1.5 || r[2] != 3 {
		t.Fatalf("tie ranks %v", r)
	}
}

func TestFriedmanRanksEmpty(t *testing.T) {
	if FriedmanRanks(nil) != nil {
		t.Fatal("expected nil for no blocks")
	}
}

func TestFriedmanStatisticDiscriminates(t *testing.T) {
	// Consistent ordering should give a much larger statistic than noise.
	consistent := [][]float64{}
	r := rng.New(1)
	for i := 0; i < 30; i++ {
		consistent = append(consistent, []float64{0.9 + 0.01*r.Float64(), 0.5, 0.1})
	}
	noisy := [][]float64{}
	for i := 0; i < 30; i++ {
		noisy = append(noisy, []float64{r.Float64(), r.Float64(), r.Float64()})
	}
	if FriedmanStatistic(consistent) <= FriedmanStatistic(noisy) {
		t.Fatalf("consistent %v <= noisy %v", FriedmanStatistic(consistent), FriedmanStatistic(noisy))
	}
}

func TestECDF(t *testing.T) {
	pts := ECDF([]float64{3, 1, 2, 2})
	// values 1 (1/4), 2 (3/4), 3 (4/4)
	if len(pts) != 3 {
		t.Fatalf("ECDF %v", pts)
	}
	if pts[0].X != 1 || pts[0].P != 0.25 {
		t.Fatalf("first point %+v", pts[0])
	}
	if pts[1].X != 2 || pts[1].P != 0.75 {
		t.Fatalf("second point %+v", pts[1])
	}
	if pts[2].P != 1 {
		t.Fatalf("last point %+v", pts[2])
	}
	if ECDF(nil) != nil {
		t.Fatal("empty ECDF")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatal("extremes")
	}
	if Quantile(xs, 0.5) != 3 {
		t.Fatalf("median %v", Quantile(xs, 0.5))
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Fatalf("q25 %v", q)
	}
	if q := Quantile([]float64{1, 2}, 0.5); q != 1.5 {
		t.Fatalf("interpolated %v", q)
	}
}

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	if p := Pearson(x, y); math.Abs(p-1) > 1e-12 {
		t.Fatalf("Pearson %v", p)
	}
	neg := []float64{8, 6, 4, 2}
	if p := Pearson(x, neg); math.Abs(p+1) > 1e-12 {
		t.Fatalf("Pearson %v", p)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	if Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}) != 0 {
		t.Fatal("constant x should give 0")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 8, 27, 64, 125} // nonlinear but monotone
	if s := Spearman(x, y); math.Abs(s-1) > 1e-12 {
		t.Fatalf("Spearman %v", s)
	}
}

func TestKendallKnown(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{1, 2, 3}
	if k := Kendall(x, y); math.Abs(k-1) > 1e-12 {
		t.Fatalf("Kendall %v", k)
	}
	yRev := []float64{3, 2, 1}
	if k := Kendall(x, yRev); math.Abs(k+1) > 1e-12 {
		t.Fatalf("Kendall %v", k)
	}
}

func TestChiSquareDiscriminative(t *testing.T) {
	// Feature perfectly separates classes → large statistic.
	var feat []float64
	var lab []int
	for i := 0; i < 50; i++ {
		feat = append(feat, 0)
		lab = append(lab, 0)
		feat = append(feat, 10)
		lab = append(lab, 1)
	}
	sep := ChiSquare(feat, lab, 5)
	r := rng.New(2)
	var featR []float64
	for i := 0; i < 100; i++ {
		featR = append(featR, r.Float64()*10)
	}
	random := ChiSquare(featR, lab, 5)
	if sep <= random {
		t.Fatalf("separating %v <= random %v", sep, random)
	}
	if ChiSquare([]float64{1, 1}, []int{0, 1}, 5) != 0 {
		t.Fatal("constant feature")
	}
}

func TestAnovaF(t *testing.T) {
	feat := []float64{1, 1.1, 0.9, 5, 5.1, 4.9}
	lab := []int{0, 0, 0, 1, 1, 1}
	if f := AnovaF(feat, lab); f < 100 {
		t.Fatalf("separated classes F = %v, want large", f)
	}
	same := []float64{1, 2, 3, 1, 2, 3}
	if f := AnovaF(same, lab); f > 1 {
		t.Fatalf("identical classes F = %v, want small", f)
	}
	if AnovaF([]float64{1, 2}, []int{0, 1}) != 0 {
		t.Fatal("too few samples")
	}
}

func TestFisherScore(t *testing.T) {
	feat := []float64{0, 0.1, -0.1, 10, 10.1, 9.9}
	lab := []int{0, 0, 0, 1, 1, 1}
	if f := FisherScore(feat, lab); f < 100 {
		t.Fatalf("Fisher score %v, want large", f)
	}
	if FisherScore([]float64{1, 2}, []int{0, 0}) != 0 {
		t.Fatal("single class")
	}
	// Zero variance, separated means → +Inf.
	if f := FisherScore([]float64{0, 0, 1, 1}, []int{0, 0, 1, 1}); !math.IsInf(f, 1) {
		t.Fatalf("degenerate Fisher = %v", f)
	}
}

func TestMutualInformation(t *testing.T) {
	// Perfectly informative feature: MI ≈ H(Y) = ln 2.
	var feat []float64
	var lab []int
	for i := 0; i < 200; i++ {
		c := i % 2
		feat = append(feat, float64(c*10))
		lab = append(lab, c)
	}
	mi := MutualInformation(feat, lab, 4)
	if math.Abs(mi-math.Ln2) > 0.01 {
		t.Fatalf("MI = %v, want ~%v", mi, math.Ln2)
	}
	// Independent feature: MI near 0.
	r := rng.New(3)
	var featR []float64
	for i := 0; i < 200; i++ {
		featR = append(featR, r.Float64())
	}
	if mi := MutualInformation(featR, lab, 4); mi > 0.05 {
		t.Fatalf("independent MI = %v", mi)
	}
}

// Property: ECDF is non-decreasing and ends at 1.
func TestQuickECDFMonotone(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		r := rng.New(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		pts := ECDF(xs)
		prev := 0.0
		for _, p := range pts {
			if p.P < prev {
				return false
			}
			prev = p.P
		}
		return math.Abs(pts[len(pts)-1].P-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: correlations stay within [-1, 1].
func TestQuickCorrelationBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(30)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = r.NormFloat64()
		}
		for _, c := range []float64{Pearson(x, y), Spearman(x, y), Kendall(x, y)} {
			if c < -1-1e-9 || c > 1+1e-9 || math.IsNaN(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Friedman average ranks always sum to b·k(k+1)/2 / b = k(k+1)/2.
func TestQuickFriedmanRankSum(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		b, k := 1+r.Intn(10), 2+r.Intn(5)
		scores := make([][]float64, b)
		for i := range scores {
			row := make([]float64, k)
			for j := range row {
				row[j] = r.Float64()
			}
			scores[i] = row
		}
		ranks := FriedmanRanks(scores)
		sum := 0.0
		for _, v := range ranks {
			sum += v
		}
		want := float64(k*(k+1)) / 2
		return math.Abs(sum-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
