// Package stats provides the statistical machinery the paper's analysis
// uses: Friedman average-rank scoring across datasets (§3.2, Table 3),
// empirical CDFs (Figures 11, 12, 14), and the rank/independence statistics
// that back the filter feature-selection methods (Pearson, Spearman,
// Kendall, chi-square, ANOVA F, mutual information).
package stats

import (
	"math"
	"sort"
)

// FriedmanRanks computes the Friedman average ranks for k subjects measured
// on b blocks. scores[block][subject] is the metric value (higher = better).
// The returned rank for each subject is its average rank across blocks,
// where the best subject in a block gets rank 1 and ties share the average
// of the tied positions. Lower average rank therefore means consistently
// better performance, matching the paper's Table 3 convention.
func FriedmanRanks(scores [][]float64) []float64 {
	if len(scores) == 0 {
		return nil
	}
	k := len(scores[0])
	sums := make([]float64, k)
	for _, block := range scores {
		ranks := rankDescending(block)
		for j, r := range ranks {
			sums[j] += r
		}
	}
	for j := range sums {
		sums[j] /= float64(len(scores))
	}
	return sums
}

// rankDescending assigns rank 1 to the largest value; ties get the average
// of the positions they span.
func rankDescending(vals []float64) []float64 {
	n := len(vals)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })
	ranks := make([]float64, n)
	i := 0
	for i < n {
		j := i
		for j+1 < n && vals[idx[j+1]] == vals[idx[i]] {
			j++
		}
		avg := (float64(i+1) + float64(j+1)) / 2
		for t := i; t <= j; t++ {
			ranks[idx[t]] = avg
		}
		i = j + 1
	}
	return ranks
}

// FriedmanStatistic computes the Friedman chi-square statistic for the given
// blocks (datasets) × subjects (platforms) score matrix. Large values reject
// the hypothesis that all subjects perform alike.
func FriedmanStatistic(scores [][]float64) float64 {
	b := len(scores)
	if b == 0 {
		return 0
	}
	k := len(scores[0])
	if k < 2 {
		return 0
	}
	avg := FriedmanRanks(scores)
	sum := 0.0
	for _, r := range avg {
		d := r - float64(k+1)/2
		sum += d * d
	}
	return 12 * float64(b) / float64(k*(k+1)) * sum
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	X float64 `json:"x"`
	P float64 `json:"p"`
}

// ECDF returns the empirical CDF of xs as sorted (value, fraction ≤ value)
// steps. Duplicate values are merged into a single step.
func ECDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]CDFPoint, 0, len(s))
	n := float64(len(s))
	for i := 0; i < len(s); i++ {
		if i+1 < len(s) && s[i+1] == s[i] {
			continue
		}
		out = append(out, CDFPoint{X: s[i], P: float64(i+1) / n})
	}
	return out
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear interpolation.
// It panics on empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Pearson returns the Pearson correlation coefficient of x and y
// (0 when either side has zero variance).
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) == 0 {
		return 0
	}
	n := float64(len(x))
	mx, my := mean(x), mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	_ = n
	return sxy / math.Sqrt(sxx*syy)
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Spearman returns the Spearman rank correlation of x and y.
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) || len(x) == 0 {
		return 0
	}
	rx := rankAscending(x)
	ry := rankAscending(y)
	return Pearson(rx, ry)
}

func rankAscending(vals []float64) []float64 {
	neg := make([]float64, len(vals))
	for i, v := range vals {
		neg[i] = -v
	}
	return rankDescending(neg)
}

// Kendall returns the Kendall tau-b rank correlation of x and y. O(n²),
// fine for the feature-scoring sample sizes used here.
func Kendall(x, y []float64) float64 {
	n := len(x)
	if n != len(y) || n < 2 {
		return 0
	}
	var concordant, discordant float64
	var tiesX, tiesY float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := x[i] - x[j]
			dy := y[i] - y[j]
			switch {
			case dx == 0 && dy == 0:
				// double tie: counts in both tie terms
				tiesX++
				tiesY++
			case dx == 0:
				tiesX++
			case dy == 0:
				tiesY++
			case dx*dy > 0:
				concordant++
			default:
				discordant++
			}
		}
	}
	n0 := float64(n*(n-1)) / 2
	den := math.Sqrt((n0 - tiesX) * (n0 - tiesY))
	if den == 0 {
		return 0
	}
	return (concordant - discordant) / den
}

// ChiSquare computes the chi-square statistic between a feature (binned into
// nbins equal-width bins) and a binary label. Larger values indicate more
// class-discriminatory power.
func ChiSquare(feature []float64, label []int, nbins int) float64 {
	n := len(feature)
	if n == 0 || n != len(label) || nbins < 2 {
		return 0
	}
	lo, hi := feature[0], feature[0]
	for _, v := range feature {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi == lo {
		return 0
	}
	counts := make([][2]float64, nbins)
	var classTotal [2]float64
	for i, v := range feature {
		b := int(float64(nbins) * (v - lo) / (hi - lo))
		if b == nbins {
			b--
		}
		counts[b][label[i]]++
		classTotal[label[i]]++
	}
	stat := 0.0
	for b := 0; b < nbins; b++ {
		rowTotal := counts[b][0] + counts[b][1]
		if rowTotal == 0 {
			continue
		}
		for c := 0; c < 2; c++ {
			expected := rowTotal * classTotal[c] / float64(n)
			if expected == 0 {
				continue
			}
			d := counts[b][c] - expected
			stat += d * d / expected
		}
	}
	return stat
}

// AnovaF computes the one-way ANOVA F statistic of a feature grouped by a
// binary label — the FClassif criterion in scikit-learn.
func AnovaF(feature []float64, label []int) float64 {
	n := len(feature)
	if n < 3 || n != len(label) {
		return 0
	}
	var sum [2]float64
	var cnt [2]float64
	for i, v := range feature {
		sum[label[i]] += v
		cnt[label[i]]++
	}
	if cnt[0] == 0 || cnt[1] == 0 {
		return 0
	}
	grand := (sum[0] + sum[1]) / float64(n)
	m0, m1 := sum[0]/cnt[0], sum[1]/cnt[1]
	ssBetween := cnt[0]*(m0-grand)*(m0-grand) + cnt[1]*(m1-grand)*(m1-grand)
	ssWithin := 0.0
	for i, v := range feature {
		m := m0
		if label[i] == 1 {
			m = m1
		}
		ssWithin += (v - m) * (v - m)
	}
	dfBetween := 1.0
	dfWithin := float64(n - 2)
	if ssWithin == 0 {
		if ssBetween == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (ssBetween / dfBetween) / (ssWithin / dfWithin)
}

// FisherScore computes the Fisher criterion for a feature and binary label:
// (μ₀-μ₁)² / (σ₀²+σ₁²). Zero-variance features with separated means get +Inf.
func FisherScore(feature []float64, label []int) float64 {
	var sum, sumSq [2]float64
	var cnt [2]float64
	for i, v := range feature {
		c := label[i]
		sum[c] += v
		sumSq[c] += v * v
		cnt[c]++
	}
	if cnt[0] == 0 || cnt[1] == 0 {
		return 0
	}
	m0, m1 := sum[0]/cnt[0], sum[1]/cnt[1]
	v0 := sumSq[0]/cnt[0] - m0*m0
	v1 := sumSq[1]/cnt[1] - m1*m1
	num := (m0 - m1) * (m0 - m1)
	den := v0 + v1
	if den <= 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return num / den
}

// MutualInformation estimates I(feature; label) in nats by binning the
// feature into nbins equal-width bins.
func MutualInformation(feature []float64, label []int, nbins int) float64 {
	n := len(feature)
	if n == 0 || n != len(label) || nbins < 2 {
		return 0
	}
	lo, hi := feature[0], feature[0]
	for _, v := range feature {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi == lo {
		return 0
	}
	joint := make([][2]float64, nbins)
	var py [2]float64
	px := make([]float64, nbins)
	for i, v := range feature {
		b := int(float64(nbins) * (v - lo) / (hi - lo))
		if b == nbins {
			b--
		}
		joint[b][label[i]]++
		px[b]++
		py[label[i]]++
	}
	mi := 0.0
	fn := float64(n)
	for b := 0; b < nbins; b++ {
		for c := 0; c < 2; c++ {
			if joint[b][c] == 0 {
				continue
			}
			pxy := joint[b][c] / fn
			mi += pxy * math.Log(pxy*fn*fn/(px[b]*py[c]))
		}
	}
	if mi < 0 {
		return 0
	}
	return mi
}
