// Package client is the measurement-side counterpart of the service
// package: a context-aware HTTP client that uploads datasets, trains
// models and queries predictions against a (simulated or real) MLaaS API,
// with the retry, backoff and rate-limiting discipline a five-month
// measurement campaign needs (§3.2: experiments ran October 2016 through
// February 2017 over the platforms' web APIs).
//
// Every logical request carries an X-Request-ID that is kept constant
// across retries, echoed by the service, and stamped into errors — the
// correlation handle between a failed measurement and the server's logs.
// The client also records its own behaviour into a telemetry registry:
// request counts, retries, backoff sleep and rate-limiter wait per
// endpoint, so a sweep can report how the wire treated it.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"mlaasbench/internal/dataset"
	"mlaasbench/internal/metrics"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/rng"
	"mlaasbench/internal/service"
	"mlaasbench/internal/telemetry"
	"mlaasbench/internal/wire"
)

// DefaultMaxBackoff caps the exponential retry delay. Without a cap the
// doubling grows unbounded (attempt 20 would sleep ~29 hours).
const DefaultMaxBackoff = 5 * time.Second

// DefaultPredictBatch caps instances per predictions request when the
// caller does not choose a chunk size. Unbounded batches put the whole
// query set in one JSON body — the real services all rejected that with
// payload limits, and server-side decode buffers stop pooling once bodies
// outgrow them. On the binary codec the same value is the frame size: the
// whole query set still travels in one request, chunked into frames.
const DefaultPredictBatch = 512

// Connection-pool defaults for the client's HTTP transport. A measurement
// campaign hammers one host with many concurrent closed-loop clients; the
// stdlib default of 2 idle connections per host closes and re-dials almost
// every connection under concurrency, which shows up as connect latency
// and TIME_WAIT churn rather than serving time.
const (
	DefaultMaxIdleConnsPerHost = 64
	DefaultIdleConnTimeout     = 90 * time.Second
)

// Codec selects the predict request/response body format.
type Codec string

const (
	// CodecJSON is the default reflection-based JSON body — the
	// compatibility oracle every other codec is asserted against.
	CodecJSON Codec = "json"
	// CodecBinary is the length-prefixed frame format in internal/wire:
	// raw little-endian float64 rows in, int64 labels out, negotiated via
	// Content-Type/Accept. Predictions are byte-identical to CodecJSON.
	CodecBinary Codec = "binary"
)

// NewTransport returns the tuned *http.Transport the client dials with by
// default: keep-alives on, a deep per-host idle pool, and an idle timeout
// that outlives request gaps within a sweep. Callers needing proxies or
// TLS settings can mutate the result before installing it WithTransport.
func NewTransport() *http.Transport {
	t := &http.Transport{
		Proxy:                 http.ProxyFromEnvironment,
		ForceAttemptHTTP2:     true,
		MaxIdleConns:          0, // no global cap; the per-host bound governs
		MaxIdleConnsPerHost:   DefaultMaxIdleConnsPerHost,
		IdleConnTimeout:       DefaultIdleConnTimeout,
		TLSHandshakeTimeout:   10 * time.Second,
		ExpectContinueTimeout: time.Second,
	}
	return t
}

// Client talks to one MLaaS service endpoint.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to a client with a 30s timeout.
	HTTPClient *http.Client
	// MaxRetries bounds retry attempts for transient failures (5xx and
	// transport errors). Default 3; negative disables retries entirely
	// (open-loop load generators want sheds surfaced, not retried).
	MaxRetries int
	// Codec selects the predict body format (CodecJSON default). Only the
	// predictions endpoint negotiates; every other call is always JSON.
	Codec Codec
	// Backoff is the initial retry delay, doubled per attempt up to
	// MaxBackoff. Default 100ms.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth. Default DefaultMaxBackoff.
	MaxBackoff time.Duration
	// Seed roots the backoff jitter stream: the same seed yields the same
	// sleep sequence, keeping sweeps reproducible end to end.
	Seed uint64
	// PredictBatch caps instances per predictions request in Measure and
	// MeasureOn (0 means DefaultPredictBatch). Large query sets are split
	// into chunks and the labels stitched back in instance order.
	PredictBatch int
	// Limiter, when non-nil, gates every request (rate limiting against
	// quota-limited services).
	Limiter *RateLimiter
	// Telemetry receives the client's metrics; nil means the process-wide
	// telemetry.Default() registry.
	Telemetry *telemetry.Registry
	// Fallbacks are alternate service roots tried on retry: attempt k goes
	// to element k-1 of [BaseURL, Fallbacks...] cycled, so a replica that
	// fails — including one that dies mid-response, since response-read
	// errors retry like dial errors — hands the request to the next
	// endpoint instead of hammering the corpse. In a cluster these are the
	// model's remaining ring owners. The request id, Traceparent and body
	// are identical across endpoints, so server-side the failover shows up
	// as sibling attempts of one rpc span.
	Fallbacks []string

	mu     sync.Mutex
	jitter *rng.RNG
}

// New returns a client for the given base URL with default settings,
// including the tuned connection pool (NewTransport).
func New(baseURL string) *Client {
	return &Client{
		BaseURL:    baseURL,
		HTTPClient: &http.Client{Timeout: 30 * time.Second, Transport: NewTransport()},
		MaxRetries: 3,
		Backoff:    100 * time.Millisecond,
		MaxBackoff: DefaultMaxBackoff,
	}
}

// WithTransport swaps the underlying RoundTripper and returns the client
// (chainable) — the hook for custom TLS, proxies, or instrumented
// transports while keeping the client's retry/telemetry discipline.
func (c *Client) WithTransport(rt http.RoundTripper) *Client {
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	c.HTTPClient.Transport = rt
	return c
}

// WithCodec selects the predict body codec and returns the client
// (chainable).
func (c *Client) WithCodec(codec Codec) *Client {
	c.Codec = codec
	return c
}

// WithFailover adds alternate endpoints rotated through on retry and
// returns the client (chainable). Pass a model's remaining ring owners
// so a mid-request replica death fails over instead of retrying the
// dead endpoint until the budget runs out.
func (c *Client) WithFailover(urls ...string) *Client {
	c.Fallbacks = append(c.Fallbacks, urls...)
	return c
}

func (c *Client) registry() *telemetry.Registry {
	if c.Telemetry != nil {
		return c.Telemetry
	}
	return telemetry.Default()
}

// jitteredSleep maps a nominal backoff to the actual sleep: equal jitter,
// half fixed plus half drawn from the client's deterministic jitter stream,
// so concurrent clients with different seeds desynchronize their retry
// storms while any single sweep stays reproducible.
func (c *Client) jitteredSleep(d time.Duration) time.Duration {
	c.mu.Lock()
	if c.jitter == nil {
		c.jitter = rng.New(c.Seed).Split("client/backoff")
	}
	f := c.jitter.Float64()
	c.mu.Unlock()
	half := d / 2
	return half + time.Duration(f*float64(half))
}

// MinRatePerSec is the slowest refill NewRateLimiter supports: one token
// per hour. Rates at or below zero (which would produce a nonsensical or
// infinite ticker interval) are clamped to it.
const MinRatePerSec = 1.0 / 3600

// RateLimiter is a token bucket: capacity tokens, refilled at rate/sec.
type RateLimiter struct {
	tokens chan struct{}
	stop   chan struct{}
}

// NewRateLimiter starts a limiter allowing ratePerSec requests per second
// with the given burst capacity. Rates below MinRatePerSec (including zero,
// negative and NaN, which would otherwise yield a bogus ticker interval)
// are clamped to MinRatePerSec. Call Stop to release its goroutine.
func NewRateLimiter(ratePerSec float64, burst int) *RateLimiter {
	if burst < 1 {
		burst = 1
	}
	if math.IsNaN(ratePerSec) || ratePerSec < MinRatePerSec {
		ratePerSec = MinRatePerSec
	}
	rl := &RateLimiter{
		tokens: make(chan struct{}, burst),
		stop:   make(chan struct{}),
	}
	for i := 0; i < burst; i++ {
		rl.tokens <- struct{}{}
	}
	interval := time.Duration(float64(time.Second) / ratePerSec)
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				select {
				case rl.tokens <- struct{}{}:
				default:
				}
			case <-rl.stop:
				return
			}
		}
	}()
	return rl
}

// Wait blocks until a token is available or the context is done.
func (rl *RateLimiter) Wait(ctx context.Context) error {
	select {
	case <-rl.tokens:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stop terminates the refill goroutine.
func (rl *RateLimiter) Stop() { close(rl.stop) }

// apiErr is a non-2xx response.
type apiErr struct {
	Status    int
	Msg       string
	RequestID string
}

func (e *apiErr) Error() string {
	if e.RequestID == "" {
		return fmt.Sprintf("api: %d: %s", e.Status, e.Msg)
	}
	return fmt.Sprintf("api: %d: %s (request %s)", e.Status, e.Msg, e.RequestID)
}

// IsRetryable reports whether an error is worth retrying (transport errors
// and 5xx responses; 4xx means the request itself is wrong).
func IsRetryable(err error) bool {
	if ae, ok := err.(*apiErr); ok {
		return ae.Status >= 500
	}
	return err != nil
}

// StatusCode extracts the HTTP status from an API error (0 for transport
// or non-API errors). Load generators use it to split admission sheds
// (503) from real failures.
func StatusCode(err error) int {
	if ae, ok := err.(*apiErr); ok {
		return ae.Status
	}
	return 0
}

// do executes one JSON request through doRaw: marshal the body, decode the
// response into out.
func (c *Client) do(ctx context.Context, op, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		payload, err = json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: marshal request: %w", err)
		}
	}
	return c.doRaw(ctx, op, method, path, "application/json", "", payload, func(data []byte) error {
		if out == nil {
			return nil
		}
		return json.Unmarshal(data, out)
	})
}

// doRaw executes one request with retries and rate limiting over an
// arbitrary body codec. op is the logical endpoint name used as the
// telemetry label ("upload", "train", ...). One request id covers every
// retry of the same logical call, and so does one "rpc:<op>" span: the
// span's trace context travels in the Traceparent header, so the server's
// handler tree stitches under this client span, with backoff sleeps and
// rate-limit waits as siblings. A 503 carrying Retry-After raises the next
// backoff sleep to at least the server's hint — shed requests return when
// the admission queue says to, not sooner. Error bodies are always the
// JSON envelope regardless of codec; decode only ever sees 2xx bodies.
func (c *Client) doRaw(ctx context.Context, op, method, path, contentType, accept string, payload []byte, decode func([]byte) error) (err error) {
	httpc := c.HTTPClient
	if httpc == nil {
		httpc = &http.Client{Timeout: 30 * time.Second}
	}
	retries := c.MaxRetries
	if retries == 0 {
		retries = 3
	} else if retries < 0 {
		retries = 0 // explicit opt-out: fail fast, surface sheds
	}
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	maxBackoff := c.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = DefaultMaxBackoff
	}
	reg := c.registry()
	if c.Telemetry != nil {
		ctx = telemetry.WithRegistry(ctx, c.Telemetry)
	}
	reg.Counter("mlaas_client_requests_total", "endpoint", op).Inc()
	reqID := telemetry.RequestID(ctx)
	if reqID == "" {
		reqID = telemetry.NewRequestID()
	}
	ctx, rpc := telemetry.StartSpan(ctx, "rpc:"+op)
	rpc.SetAttr("method", method).SetAttr("path", path).SetAttr("request_id", reqID)
	traceparent := telemetry.FormatTraceParent(rpc.TraceID(), rpc.SpanID())
	defer func() {
		rpc.SetError(err)
		rpc.End()
	}()

	var lastErr error
	var retryAfter time.Duration
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			reg.Counter("mlaas_client_retries_total", "endpoint", op).Inc()
			nominal := backoff
			if retryAfter > nominal {
				nominal = retryAfter
				if nominal > maxBackoff {
					nominal = maxBackoff
				}
			}
			retryAfter = 0
			sleep := c.jitteredSleep(nominal)
			reg.Histogram("mlaas_client_backoff_seconds", "endpoint", op).Observe(sleep.Seconds())
			_, bspan := telemetry.StartSpan(ctx, "backoff")
			select {
			case <-time.After(sleep):
				bspan.End()
				backoff *= 2
				if backoff > maxBackoff {
					backoff = maxBackoff
				}
			case <-ctx.Done():
				bspan.End()
				return fmt.Errorf("client: %s aborted during backoff (request %s): %w", op, reqID, ctx.Err())
			}
		}
		if c.Limiter != nil {
			waitStart := time.Now()
			_, wspan := telemetry.StartSpan(ctx, "ratelimit_wait")
			err := c.Limiter.Wait(ctx)
			wspan.End()
			reg.Histogram("mlaas_client_ratelimit_wait_seconds", "endpoint", op).Observe(time.Since(waitStart).Seconds())
			if err != nil {
				return err
			}
		}
		base := c.BaseURL
		if len(c.Fallbacks) > 0 {
			bases := append([]string{c.BaseURL}, c.Fallbacks...)
			base = bases[attempt%len(bases)]
			if attempt > 0 {
				reg.Counter(telemetry.ClientFailoversTotal, "endpoint", op).Inc()
			}
		}
		req, err := http.NewRequestWithContext(ctx, method, base+path, bytes.NewReader(payload))
		if err != nil {
			return fmt.Errorf("client: build request: %w", err)
		}
		req.Header.Set("Content-Type", contentType)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		req.Header.Set(telemetry.RequestIDHeader, reqID)
		req.Header.Set(telemetry.TraceParentHeader, traceparent)
		attemptStart := time.Now()
		resp, err := httpc.Do(req)
		reg.Histogram("mlaas_client_request_duration_seconds", "endpoint", op).Observe(time.Since(attemptStart).Seconds())
		if err != nil {
			lastErr = fmt.Errorf("client: %s %s (request %s): %w", method, path, reqID, err)
			continue
		}
		data, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			lastErr = fmt.Errorf("client: read response (request %s): %w", reqID, err)
			continue
		}
		if resp.StatusCode >= 300 {
			var env struct {
				Error string `json:"error"`
			}
			_ = json.Unmarshal(data, &env)
			lastErr = &apiErr{Status: resp.StatusCode, Msg: env.Error, RequestID: reqID}
			if !IsRetryable(lastErr) {
				reg.Counter("mlaas_client_errors_total", "endpoint", op).Inc()
				return lastErr
			}
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
				retryAfter = time.Duration(secs) * time.Second
			} else {
				retryAfter = 0
			}
			continue
		}
		if decode == nil {
			return nil
		}
		if err := decode(data); err != nil {
			return fmt.Errorf("client: decode response (request %s): %w", reqID, err)
		}
		return nil
	}
	reg.Counter("mlaas_client_errors_total", "endpoint", op).Inc()
	return lastErr
}

// Platforms lists the platforms the service hosts.
func (c *Client) Platforms(ctx context.Context) ([]service.PlatformInfo, error) {
	var out []service.PlatformInfo
	err := c.do(ctx, "platforms", http.MethodGet, "/v1/platforms", nil, &out)
	return out, err
}

// Surface fetches one platform's control surface.
func (c *Client) Surface(ctx context.Context, platform string) (service.SurfaceDoc, error) {
	var out service.SurfaceDoc
	err := c.do(ctx, "surface", http.MethodGet, "/v1/platforms/"+platform+"/surface", nil, &out)
	return out, err
}

// Upload sends a dataset to a platform and returns its id.
func (c *Client) Upload(ctx context.Context, platform string, ds *dataset.Dataset) (string, error) {
	req := service.UploadRequest{Name: ds.Name, X: ds.X, Y: ds.Y}
	var out service.UploadResponse
	if err := c.do(ctx, "upload", http.MethodPost, "/v1/platforms/"+platform+"/datasets", req, &out); err != nil {
		return "", err
	}
	return out.ID, nil
}

// Train creates a model on an uploaded dataset. For black-box platforms
// pass an empty config.
func (c *Client) Train(ctx context.Context, platform, datasetID string, cfg pipeline.Config, seed uint64) (string, error) {
	req := service.TrainRequest{Dataset: datasetID, Seed: seed}
	if cfg.Classifier != "" {
		req.Classifier = cfg.Classifier
		req.Params = cfg.Params
		if cfg.Feat.Kind != "" && cfg.Feat.Kind != "none" {
			req.Feat = cfg.Feat.String()
		}
	}
	var out service.TrainResponse
	if err := c.do(ctx, "train", http.MethodPost, "/v1/platforms/"+platform+"/models", req, &out); err != nil {
		return "", err
	}
	return out.ID, nil
}

// Predict queries a model with instances and returns predicted labels,
// over the client's configured codec (one frame / one JSON body).
func (c *Client) Predict(ctx context.Context, platform, modelID string, instances [][]float64) ([]int, error) {
	if c.Codec == CodecBinary {
		return c.predictWire(ctx, platform, modelID, instances, 0)
	}
	req := service.PredictRequest{Instances: instances}
	var out service.PredictResponse
	if err := c.do(ctx, "predict", http.MethodPost, predictPath(platform, modelID), req, &out); err != nil {
		return nil, err
	}
	return out.Labels, nil
}

// predictWire runs one binary predict: the instances encoded as a stream
// of frames of at most chunk rows (0 = one frame), decoded label frames
// back. The frame body is assembled in a pooled buffer and retries resend
// it verbatim.
func (c *Client) predictWire(ctx context.Context, platform, modelID string, instances [][]float64, chunk int) ([]int, error) {
	payload := wire.EncodeMatrixStream(wire.GetBuffer(), instances, chunk)
	defer wire.PutBuffer(payload)
	var labels []int
	err := c.doRaw(ctx, "predict", http.MethodPost, predictPath(platform, modelID),
		wire.ContentType, wire.ContentType, payload, func(data []byte) error {
			var err error
			labels, err = wire.DecodeLabelsStream(bytes.NewReader(data))
			return err
		})
	if err != nil {
		return nil, err
	}
	return labels, nil
}

func predictPath(platform, modelID string) string {
	return "/v1/platforms/" + platform + "/models/" + modelID + "/predictions"
}

// PredictBatched queries a model in chunks of at most batch instances
// (batch <= 0 means DefaultPredictBatch) and stitches the labels back in
// instance order.
//
// On the JSON codec each chunk is its own logical request with the
// client's full retry/rate-limit discipline, so one flaky chunk does not
// resend the whole query set; the pooled transport keeps the chunks on one
// warm connection. On the binary codec the whole query set pipelines
// through a single request as a stream of batch-row frames — the server
// predicts frame by frame as they arrive, so there is no re-dial, no
// per-chunk HTTP overhead, and no giant contiguous payload on either side.
func (c *Client) PredictBatched(ctx context.Context, platform, modelID string, instances [][]float64, batch int) ([]int, error) {
	if batch <= 0 {
		batch = DefaultPredictBatch
	}
	if c.Codec == CodecBinary {
		return c.predictWire(ctx, platform, modelID, instances, batch)
	}
	if len(instances) <= batch {
		return c.Predict(ctx, platform, modelID, instances)
	}
	labels := make([]int, 0, len(instances))
	for start := 0; start < len(instances); start += batch {
		end := start + batch
		if end > len(instances) {
			end = len(instances)
		}
		part, err := c.Predict(ctx, platform, modelID, instances[start:end])
		if err != nil {
			return nil, fmt.Errorf("client: predict batch [%d:%d): %w", start, end, err)
		}
		labels = append(labels, part...)
	}
	return labels, nil
}

// Measure runs the paper's per-configuration measurement end-to-end over
// the wire: upload the training split, train with the config, query the
// held-out test set and score locally (the service never sees test labels,
// exactly as in the study).
func (c *Client) Measure(ctx context.Context, platform string, split dataset.Split, cfg pipeline.Config, seed uint64) (scores metrics.Scores, err error) {
	ctx, measure := c.startMeasure(ctx, platform, split, cfg)
	defer func() {
		measure.SetError(err)
		measure.End()
	}()
	upCtx, span := telemetry.StartSpan(ctx, "upload")
	dsID, err := c.Upload(upCtx, platform, split.Train)
	span.End()
	if err != nil {
		return metrics.Scores{}, fmt.Errorf("client: upload: %w", err)
	}
	return c.measureOn(ctx, platform, dsID, split, cfg, seed)
}

// MeasureOn is Measure for an already-uploaded dataset — the sweep path,
// where one upload serves many configurations.
func (c *Client) MeasureOn(ctx context.Context, platform, datasetID string, split dataset.Split, cfg pipeline.Config, seed uint64) (scores metrics.Scores, err error) {
	ctx, measure := c.startMeasure(ctx, platform, split, cfg)
	defer func() {
		measure.SetError(err)
		measure.End()
	}()
	return c.measureOn(ctx, platform, datasetID, split, cfg, seed)
}

// startMeasure routes telemetry to the client registry and opens the root
// "measure" span that every rpc/score child of one measurement hangs off.
func (c *Client) startMeasure(ctx context.Context, platform string, split dataset.Split, cfg pipeline.Config) (context.Context, *telemetry.Span) {
	if c.Telemetry != nil {
		ctx = telemetry.WithRegistry(ctx, c.Telemetry)
	}
	ctx, span := telemetry.StartSpan(ctx, "measure")
	span.SetAttr("platform", platform).SetAttr("dataset", split.Train.Name)
	if cfg.Classifier != "" {
		span.SetAttr("config", cfg.String())
	}
	return ctx, span
}

func (c *Client) measureOn(ctx context.Context, platform, datasetID string, split dataset.Split, cfg pipeline.Config, seed uint64) (metrics.Scores, error) {
	modelID, err := c.Train(ctx, platform, datasetID, cfg, seed)
	if err != nil {
		return metrics.Scores{}, fmt.Errorf("client: train: %w", err)
	}
	labels, err := c.PredictBatched(ctx, platform, modelID, split.Test.X, c.PredictBatch)
	if err != nil {
		return metrics.Scores{}, fmt.Errorf("client: predict: %w", err)
	}
	_, span := telemetry.StartSpan(ctx, "score")
	scores, err := metrics.Score(split.Test.Y, labels)
	span.End()
	if err != nil {
		return metrics.Scores{}, fmt.Errorf("client: score: %w", err)
	}
	return scores, nil
}
