package client

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mlaasbench/internal/dataset"
	"mlaasbench/internal/pipeline"
)

func TestRetriesTransient5xx(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			http.Error(w, `{"error":"overloaded"}`, http.StatusServiceUnavailable)
			return
		}
		_ = json.NewEncoder(w).Encode([]any{})
	}))
	defer srv.Close()
	c := New(srv.URL)
	c.Backoff = time.Millisecond
	if _, err := c.Platforms(context.Background()); err != nil {
		t.Fatalf("should have retried through 5xx: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("%d calls, want 3", calls.Load())
	}
}

func TestDoesNotRetry4xx(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"bad dataset"}`, http.StatusBadRequest)
	}))
	defer srv.Close()
	c := New(srv.URL)
	c.Backoff = time.Millisecond
	if _, err := c.Platforms(context.Background()); err == nil {
		t.Fatal("expected error")
	}
	if calls.Load() != 1 {
		t.Fatalf("%d calls for a 400, want 1 (no retry)", calls.Load())
	}
}

func TestGivesUpAfterMaxRetries(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"nope"}`, http.StatusInternalServerError)
	}))
	defer srv.Close()
	c := New(srv.URL)
	c.MaxRetries = 2
	c.Backoff = time.Millisecond
	if _, err := c.Platforms(context.Background()); err == nil {
		t.Fatal("expected terminal failure")
	}
	if calls.Load() != 3 { // initial + 2 retries
		t.Fatalf("%d calls, want 3", calls.Load())
	}
}

func TestErrorMessageSurfaced(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		_, _ = w.Write([]byte(`{"error":"unknown platform \"watson\""}`))
	}))
	defer srv.Close()
	c := New(srv.URL)
	_, err := c.Surface(context.Background(), "watson")
	if err == nil {
		t.Fatal("expected error")
	}
	got := err.Error()
	if !strings.HasPrefix(got, `api: 404: unknown platform "watson"`) {
		t.Fatalf("error message %q", got)
	}
	// The request id rides along for server-log correlation.
	if !strings.Contains(got, "(request ") {
		t.Fatalf("error message %q lacks request id", got)
	}
}

func TestContextCancellationStopsRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"x"}`, http.StatusInternalServerError)
	}))
	defer srv.Close()
	c := New(srv.URL)
	c.MaxRetries = 100
	c.Backoff = 50 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Platforms(ctx)
	if err == nil {
		t.Fatal("expected error")
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancellation did not stop the retry loop promptly")
	}
}

func TestRateLimiterThrottles(t *testing.T) {
	rl := NewRateLimiter(100, 1) // 1 burst, 100/s refill → ~10ms per extra token
	defer rl.Stop()
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < 4; i++ {
		if err := rl.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// 1 immediate + 3 refills ≥ ~30ms ideally; allow generous slack but
	// require evidence of throttling.
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("4 tokens in %v — limiter not throttling", elapsed)
	}
}

func TestRateLimiterHonorsContext(t *testing.T) {
	rl := NewRateLimiter(0.1, 1) // very slow refill
	defer rl.Stop()
	ctx := context.Background()
	if err := rl.Wait(ctx); err != nil { // consume the burst token
		t.Fatal(err)
	}
	ctx2, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if err := rl.Wait(ctx2); err == nil {
		t.Fatal("expected context deadline error")
	}
}

// fakeService implements just enough of the MLaaS API to exercise the
// client's full measurement path without importing the service package
// (which would create an import cycle in this test binary).
func fakeService(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/platforms", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode([]map[string]any{{"name": "fake", "complexity": 0}})
	})
	mux.HandleFunc("GET /v1/platforms/{p}/surface", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]any{"platform": r.PathValue("p")})
	})
	mux.HandleFunc("POST /v1/platforms/{p}/datasets", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			X [][]float64 `json:"x"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.X) == 0 {
			http.Error(w, `{"error":"bad dataset"}`, http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusCreated)
		_, _ = w.Write([]byte(`{"id":"ds-1","samples":4,"columns":1}`))
	})
	mux.HandleFunc("POST /v1/platforms/{p}/models", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Dataset string `json:"dataset"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Dataset != "ds-1" {
			http.Error(w, `{"error":"unknown dataset"}`, http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusCreated)
		_, _ = w.Write([]byte(`{"id":"m-1"}`))
	})
	mux.HandleFunc("POST /v1/platforms/{p}/models/{m}/predictions", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Instances [][]float64 `json:"instances"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, `{"error":"bad request"}`, http.StatusBadRequest)
			return
		}
		labels := make([]int, len(req.Instances))
		for i, inst := range req.Instances {
			if inst[0] > 0 {
				labels[i] = 1
			}
		}
		_ = json.NewEncoder(w).Encode(map[string]any{"labels": labels})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestMeasureEndToEndAgainstFake(t *testing.T) {
	srv := fakeService(t)
	c := New(srv.URL)
	split := dataset.Split{
		Train: &dataset.Dataset{Name: "tr", X: [][]float64{{-1}, {-2}, {1}, {2}}, Y: []int{0, 0, 1, 1}},
		Test:  &dataset.Dataset{Name: "te", X: [][]float64{{-3}, {3}}, Y: []int{0, 1}},
	}
	scores, err := c.Measure(context.Background(), "fake", split, pipeline.Config{Classifier: "logreg", Params: map[string]any{}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if scores.F1 != 1 {
		t.Fatalf("fake perfectly separable measurement F1 %v", scores.F1)
	}
}

func TestClientSurfaceAndPlatforms(t *testing.T) {
	srv := fakeService(t)
	c := New(srv.URL)
	infos, err := c.Platforms(context.Background())
	if err != nil || len(infos) != 1 || infos[0].Name != "fake" {
		t.Fatalf("platforms %v, %v", infos, err)
	}
	doc, err := c.Surface(context.Background(), "fake")
	if err != nil || doc.Platform != "fake" {
		t.Fatalf("surface %v, %v", doc, err)
	}
}

func TestMeasureSurfacesTrainFailure(t *testing.T) {
	srv := fakeService(t)
	c := New(srv.URL)
	// Upload succeeds but Train 404s when the dataset id is wrong; force
	// that by calling MeasureOn with a bogus id.
	split := dataset.Split{
		Train: &dataset.Dataset{Name: "tr", X: [][]float64{{1}}, Y: []int{1}},
		Test:  &dataset.Dataset{Name: "te", X: [][]float64{{1}}, Y: []int{1}},
	}
	if _, err := c.MeasureOn(context.Background(), "fake", "ds-999", split, pipeline.Config{}, 1); err == nil {
		t.Fatal("expected train failure to surface")
	}
}

func TestLimiterGatesRequests(t *testing.T) {
	srv := fakeService(t)
	c := New(srv.URL)
	c.Limiter = NewRateLimiter(1000, 1)
	defer c.Limiter.Stop()
	// Two quick calls must both succeed (limiter refills) — this exercises
	// the limiter path inside do().
	for i := 0; i < 2; i++ {
		if _, err := c.Platforms(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestIsRetryable(t *testing.T) {
	if IsRetryable(&apiErr{Status: 400}) {
		t.Fatal("400 must not be retryable")
	}
	if !IsRetryable(&apiErr{Status: 503}) {
		t.Fatal("503 must be retryable")
	}
	if IsRetryable(nil) {
		t.Fatal("nil error is not retryable")
	}
}

func TestPredictBatchedStitchesChunksInOrder(t *testing.T) {
	var predictCalls atomic.Int32
	srv := fakeService(t)
	// Wrap the fake to count prediction requests.
	counting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.URL.Path, "/predictions") {
			predictCalls.Add(1)
		}
		proxyTo(t, w, r, srv.URL)
	}))
	t.Cleanup(counting.Close)

	c := New(counting.URL)
	instances := make([][]float64, 25)
	for i := range instances {
		// Alternate sign so the fake's label (sign of instance[0]) encodes
		// the instance's position — any mis-stitching scrambles it.
		v := float64(i + 1)
		if i%2 == 1 {
			v = -v
		}
		instances[i] = []float64{v}
	}
	want, err := c.Predict(context.Background(), "fake", "m-1", instances)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.PredictBatched(context.Background(), "fake", "m-1", instances, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d labels, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("label %d is %d, want %d (stitching out of order)", i, got[i], want[i])
		}
	}
	// 1 unbatched call + ceil(25/4)=7 chunked calls.
	if n := predictCalls.Load(); n != 8 {
		t.Fatalf("%d prediction requests, want 8 (1 full + 7 chunks of 4)", n)
	}
}

func TestPredictBatchedSmallSetSingleRequest(t *testing.T) {
	var predictCalls atomic.Int32
	srv := fakeService(t)
	counting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.URL.Path, "/predictions") {
			predictCalls.Add(1)
		}
		proxyTo(t, w, r, srv.URL)
	}))
	t.Cleanup(counting.Close)

	c := New(counting.URL)
	instances := [][]float64{{1}, {-1}, {2}}
	if _, err := c.PredictBatched(context.Background(), "fake", "m-1", instances, 0); err != nil {
		t.Fatal(err)
	}
	if n := predictCalls.Load(); n != 1 {
		t.Fatalf("%d requests for a set under the default batch, want 1", n)
	}
}

// proxyTo forwards one request to the backing fake service.
func proxyTo(t *testing.T, w http.ResponseWriter, r *http.Request, backend string) {
	t.Helper()
	req, err := http.NewRequestWithContext(r.Context(), r.Method, backend+r.URL.Path, r.Body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header = r.Header
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		t.Fatal(err)
	}
}
