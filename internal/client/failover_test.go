package client_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"

	"mlaasbench/internal/client"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/rng"
	"mlaasbench/internal/service"
	"mlaasbench/internal/synth"
	"mlaasbench/internal/telemetry"
)

// TestFailoverOnMidResponseDeath kills a backend between the request and
// the end of the response — headers sent, body truncated — and checks the
// client treats the read error as retryable and fails over to the next
// endpoint instead of re-dialing the corpse. This is the replica-death
// mode a dial-error-only retry misses: the connection works, the
// response never finishes.
func TestFailoverOnMidResponseDeath(t *testing.T) {
	ds := synth.GenerateClean(synth.Spec{Name: "fo", Gen: synth.GenLinear, N: 120, D: 3, Noise: 0.2}, synth.Quick, 1)
	sp := ds.StratifiedSplit(0.7, rng.New(2))
	ctx := context.Background()

	// The survivor: a real server holding the model.
	api := service.NewServer(func(string, ...any) {}).WithRegistry(telemetry.NewRegistry())
	survivor := httptest.NewServer(api.Handler())
	defer survivor.Close()
	setup := client.New(survivor.URL)
	dsID, err := setup.Upload(ctx, "local", sp.Train)
	if err != nil {
		t.Fatal(err)
	}
	mID, err := setup.Train(ctx, "local", dsID, pipeline.Config{Classifier: "logreg", Params: map[string]any{}}, 7)
	if err != nil {
		t.Fatal(err)
	}
	want, err := setup.Predict(ctx, "local", mID, sp.Test.X)
	if err != nil {
		t.Fatal(err)
	}

	// The victim: accepts the request, starts a 200 response, then drops
	// the connection mid-body.
	var died atomic.Int64
	victim := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		died.Add(1)
		conn, buf, err := w.(http.Hijacker).Hijack()
		if err != nil {
			t.Errorf("hijack: %v", err)
			return
		}
		_, _ = buf.WriteString("HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 1000\r\n\r\n{\"labels\":[")
		_ = buf.Flush()
		_ = conn.Close()
	}))
	defer victim.Close()

	reg := telemetry.NewRegistry()
	c := client.New(victim.URL).WithFailover(survivor.URL)
	c.Telemetry = reg
	got, err := c.Predict(ctx, "local", mID, sp.Test.X)
	if err != nil {
		t.Fatalf("predict with failover: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("failover predict returned different labels")
	}
	if died.Load() == 0 {
		t.Fatal("victim was never hit — the test proved nothing")
	}
	if n := reg.Counter(telemetry.ClientFailoversTotal, "endpoint", "predict").Value(); n == 0 {
		t.Fatal("failover counter never moved")
	}
}
