package client

import (
	"context"
	"net/http/httptest"
	"testing"

	"mlaasbench/internal/dataset"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/service"
	"mlaasbench/internal/telemetry"
)

// collectSpans flattens a span tree into a map from span id to the span.
func collectSpans(sd telemetry.SpanData, out map[string]telemetry.SpanData) {
	out[sd.SpanID] = sd
	for _, c := range sd.Children {
		collectSpans(c, out)
	}
}

// TestClientServerTraceStitch is the acceptance check for cross-process
// trace propagation: one Measure round-trip (upload, train, predict, score)
// against a live HTTP server must yield spans in the client registry and
// the server registry that share a single trace id, with each server-side
// root parented under the client rpc span that issued the request.
func TestClientServerTraceStitch(t *testing.T) {
	serverReg := telemetry.NewRegistry()
	srv := service.NewServer(func(string, ...any) {}).WithRegistry(serverReg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	clientReg := telemetry.NewRegistry()
	c := New(ts.URL)
	c.Telemetry = clientReg

	split := dataset.Split{
		Train: &dataset.Dataset{Name: "tr", X: [][]float64{{-1}, {-2}, {1}, {2}}, Y: []int{0, 0, 1, 1}},
		Test:  &dataset.Dataset{Name: "te", X: [][]float64{{-3}, {3}}, Y: []int{0, 1}},
	}
	if _, err := c.Measure(context.Background(), "google", split, pipeline.Config{}, 1); err != nil {
		t.Fatalf("measure: %v", err)
	}

	// Client side: exactly one retained trace, rooted at "measure".
	clientTraces := clientReg.Traces().Snapshot()
	if len(clientTraces) != 1 {
		t.Fatalf("client retained %d traces, want 1", len(clientTraces))
	}
	ct := clientTraces[0]
	if ct.Root.Name != "measure" {
		t.Fatalf("client root span %q, want measure", ct.Root.Name)
	}
	clientSpans := map[string]telemetry.SpanData{}
	collectSpans(ct.Root, clientSpans)
	rpcByOp := map[string]telemetry.SpanData{}
	for _, sp := range clientSpans {
		switch sp.Name {
		case "rpc:upload", "rpc:train", "rpc:predict":
			rpcByOp[sp.Name] = sp
		}
	}
	if len(rpcByOp) != 3 {
		t.Fatalf("client trace has rpc spans %v, want upload/train/predict", rpcByOp)
	}
	// Every rpc span must be a descendant of the measure root (rpc:upload
	// sits below the intermediate "upload" span; train/predict attach to
	// the root directly).
	for op, sp := range rpcByOp {
		hops := 0
		for sp.ParentID != "" && hops < 10 {
			parent, ok := clientSpans[sp.ParentID]
			if !ok {
				t.Errorf("%s has dangling parent %q", op, sp.ParentID)
				break
			}
			sp, hops = parent, hops+1
		}
		if sp.SpanID != ct.Root.SpanID {
			t.Errorf("%s does not descend from measure root", op)
		}
	}

	// Server side: every handler trace joined the client's trace id, and
	// each server root hangs off the rpc span that issued it.
	serverTraces := serverReg.Traces().Snapshot()
	wantParent := map[string]string{
		"http:upload":  rpcByOp["rpc:upload"].SpanID,
		"http:train":   rpcByOp["rpc:train"].SpanID,
		"http:predict": rpcByOp["rpc:predict"].SpanID,
	}
	seen := map[string]int{}
	for _, st := range serverTraces {
		if st.TraceID != ct.TraceID {
			t.Errorf("server trace %s id %q, want client trace id %q", st.Root.Name, st.TraceID, ct.TraceID)
		}
		parent, ok := wantParent[st.Root.Name]
		if !ok {
			t.Errorf("unexpected server root span %q", st.Root.Name)
			continue
		}
		if st.Root.ParentID != parent {
			t.Errorf("%s parented at %q, want client rpc span %q", st.Root.Name, st.Root.ParentID, parent)
		}
		seen[st.Root.Name]++
	}
	for name := range wantParent {
		if seen[name] == 0 {
			t.Errorf("server retained no %s trace", name)
		}
	}

	// The train handler's fit must have recorded pipeline stage spans under
	// the server root — the in-process tree is part of the same stitch.
	var trainTrace telemetry.TraceData
	for _, st := range serverTraces {
		if st.Root.Name == "http:train" {
			trainTrace = st
		}
	}
	spans := map[string]telemetry.SpanData{}
	collectSpans(trainTrace.Root, spans)
	var sawFit bool
	for _, sp := range spans {
		if sp.Name == "model_fit" {
			sawFit = true
		}
	}
	if !sawFit {
		t.Errorf("train trace lacks model_fit span; spans: %d", len(spans))
	}
}
