package client

import (
	"context"
	"net/http/httptest"
	"net/http/httptrace"
	"sync/atomic"
	"testing"

	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/rng"
	"mlaasbench/internal/service"
	"mlaasbench/internal/synth"
	"mlaasbench/internal/telemetry"
)

// newServingFixture stands up an in-process server with one trained logreg
// model and returns (server URL, model id, test instances).
func newServingFixture(t *testing.T, reg *telemetry.Registry) (string, string, [][]float64, func()) {
	t.Helper()
	srv := httptest.NewServer(service.NewServer(func(string, ...any) {}).WithRegistry(reg).Handler())
	ds := synth.GenerateClean(synth.Spec{Name: "pool", Gen: synth.GenLinear, N: 120, D: 5, Noise: 0.2}, synth.Quick, 1)
	sp := ds.StratifiedSplit(0.7, rng.New(7))
	c := New(srv.URL)
	c.Telemetry = reg
	ctx := context.Background()
	dsID, err := c.Upload(ctx, "local", sp.Train)
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	cfg := pipeline.Config{Feat: pipeline.Feat{Kind: "none"}, Classifier: "logreg", Params: map[string]any{}}
	modelID, err := c.Train(ctx, "local", dsID, cfg, 1)
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	return srv.URL, modelID, sp.Test.X, srv.Close
}

// TestBatchedPredictReusesConnections asserts the tuned transport keeps
// batched predicts on warm connections: many requests, at most a handful
// of dials. Regression guard for the connection-pool defaults
// (MaxIdleConnsPerHost, keep-alives) — with the stdlib per-host idle cap
// of 2 under churn, or keep-alives off, dials track requests instead.
func TestBatchedPredictReusesConnections(t *testing.T) {
	reg := telemetry.NewRegistry()
	url, modelID, test, closeSrv := newServingFixture(t, reg)
	defer closeSrv()

	var dials atomic.Int64
	ctx := httptrace.WithClientTrace(context.Background(), &httptrace.ClientTrace{
		ConnectStart: func(network, addr string) { dials.Add(1) },
	})

	c := New(url)
	c.Telemetry = reg
	const rounds = 8
	const batch = 4 // test set of ~36 rows → ~9 requests per round
	requests := 0
	for i := 0; i < rounds; i++ {
		labels, err := c.PredictBatched(ctx, "local", modelID, test, batch)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if len(labels) != len(test) {
			t.Fatalf("round %d: got %d labels for %d rows", i, len(labels), len(test))
		}
		requests += (len(test) + batch - 1) / batch
	}
	if requests < 20 {
		t.Fatalf("fixture too small to prove reuse: only %d requests", requests)
	}
	if d := dials.Load(); d > 2 {
		t.Errorf("%d dials for %d sequential requests; connection pool is not reusing (want <= 2)", d, requests)
	}
}

// TestBinaryPredictBatchedSingleRequest asserts the binary codec sends one
// multi-frame request for a batched predict — no re-dial AND no per-chunk
// request — and stitches labels identical to the JSON path.
func TestBinaryPredictBatchedSingleRequest(t *testing.T) {
	reg := telemetry.NewRegistry()
	url, modelID, test, closeSrv := newServingFixture(t, reg)
	defer closeSrv()
	ctx := context.Background()

	jsonC := New(url)
	jsonC.Telemetry = reg
	want, err := jsonC.PredictBatched(ctx, "local", modelID, test, 4)
	if err != nil {
		t.Fatalf("json predict: %v", err)
	}

	binC := New(url).WithCodec(CodecBinary)
	binC.Telemetry = reg
	before := reg.Counter("mlaas_client_requests_total", "endpoint", "predict").Value()
	got, err := binC.PredictBatched(ctx, "local", modelID, test, 4)
	if err != nil {
		t.Fatalf("binary predict: %v", err)
	}
	after := reg.Counter("mlaas_client_requests_total", "endpoint", "predict").Value()

	if n := after - before; n != 1 {
		t.Errorf("binary batched predict used %d requests, want 1 multi-frame request", n)
	}
	if len(got) != len(want) {
		t.Fatalf("label count %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("label %d: binary %d != json %d", i, got[i], want[i])
		}
	}
}

func TestNewTransportDefaults(t *testing.T) {
	tr := NewTransport()
	if tr.MaxIdleConnsPerHost != DefaultMaxIdleConnsPerHost {
		t.Errorf("MaxIdleConnsPerHost = %d, want %d", tr.MaxIdleConnsPerHost, DefaultMaxIdleConnsPerHost)
	}
	if tr.IdleConnTimeout != DefaultIdleConnTimeout {
		t.Errorf("IdleConnTimeout = %v, want %v", tr.IdleConnTimeout, DefaultIdleConnTimeout)
	}
	if tr.DisableKeepAlives {
		t.Error("keep-alives disabled on the default transport")
	}
}
