package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mlaasbench/internal/telemetry"
)

// flakyServer fails the first failures requests with the given status, then
// answers 200 with an empty platform list.
func flakyServer(t *testing.T, failures int32, status int) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= failures {
			http.Error(w, `{"error":"injected"}`, status)
			return
		}
		_ = json.NewEncoder(w).Encode([]any{})
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func TestRetryTelemetryMatchesInjectedFailures(t *testing.T) {
	const injected = 4
	srv, calls := flakyServer(t, injected, http.StatusServiceUnavailable)
	reg := telemetry.NewRegistry()
	c := New(srv.URL)
	c.MaxRetries = 5
	c.Backoff = time.Millisecond
	c.Telemetry = reg
	if _, err := c.Platforms(context.Background()); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != injected+1 {
		t.Fatalf("%d calls, want %d", calls.Load(), injected+1)
	}
	if got := reg.Counter("mlaas_client_retries_total", "endpoint", "platforms").Value(); got != injected {
		t.Fatalf("retries counter = %d, want %d (the injected failure count)", got, injected)
	}
	if got := reg.Counter("mlaas_client_requests_total", "endpoint", "platforms").Value(); got != 1 {
		t.Fatalf("requests counter = %d, want 1 logical request", got)
	}
	if got := reg.Histogram("mlaas_client_backoff_seconds", "endpoint", "platforms").Count(); got != injected {
		t.Fatalf("backoff observations = %d, want %d", got, injected)
	}
	if got := reg.Histogram("mlaas_client_request_duration_seconds", "endpoint", "platforms").Count(); got != injected+1 {
		t.Fatalf("attempt duration observations = %d, want %d", got, injected+1)
	}
	if got := reg.Counter("mlaas_client_errors_total", "endpoint", "platforms").Value(); got != 0 {
		t.Fatalf("errors counter = %d for a call that eventually succeeded", got)
	}
}

func TestTerminalFailureCountsAsError(t *testing.T) {
	srv, _ := flakyServer(t, 1000, http.StatusInternalServerError)
	reg := telemetry.NewRegistry()
	c := New(srv.URL)
	c.MaxRetries = 2
	c.Backoff = time.Millisecond
	c.Telemetry = reg
	if _, err := c.Platforms(context.Background()); err == nil {
		t.Fatal("expected terminal failure")
	}
	if got := reg.Counter("mlaas_client_errors_total", "endpoint", "platforms").Value(); got != 1 {
		t.Fatalf("errors counter = %d, want 1", got)
	}
	if got := reg.Counter("mlaas_client_retries_total", "endpoint", "platforms").Value(); got != 2 {
		t.Fatalf("retries counter = %d, want MaxRetries=2", got)
	}
}

func TestFailFast4xxNoRetryNoBackoff(t *testing.T) {
	srv, calls := flakyServer(t, 1000, http.StatusBadRequest)
	reg := telemetry.NewRegistry()
	c := New(srv.URL)
	c.Backoff = time.Millisecond
	c.Telemetry = reg
	if _, err := c.Platforms(context.Background()); err == nil {
		t.Fatal("expected 400 to fail")
	}
	if calls.Load() != 1 {
		t.Fatalf("%d calls for a 4xx, want 1", calls.Load())
	}
	if got := reg.Counter("mlaas_client_retries_total", "endpoint", "platforms").Value(); got != 0 {
		t.Fatalf("retries counter = %d for a fail-fast 4xx", got)
	}
	if got := reg.Histogram("mlaas_client_backoff_seconds", "endpoint", "platforms").Count(); got != 0 {
		t.Fatalf("backoff observed %d times for a fail-fast 4xx", got)
	}
}

func TestTransportErrorsAreRetried(t *testing.T) {
	// A closed server yields pure transport errors (connection refused).
	srv := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	srv.Close()
	reg := telemetry.NewRegistry()
	c := New(srv.URL)
	c.MaxRetries = 2
	c.Backoff = time.Millisecond
	c.Telemetry = reg
	if _, err := c.Platforms(context.Background()); err == nil {
		t.Fatal("expected transport failure")
	}
	if got := reg.Counter("mlaas_client_retries_total", "endpoint", "platforms").Value(); got != 2 {
		t.Fatalf("retries counter = %d, want 2", got)
	}
}

func TestContextCancellationAbortsMidBackoff(t *testing.T) {
	srv, calls := flakyServer(t, 1000, http.StatusInternalServerError)
	c := New(srv.URL)
	c.MaxRetries = 100
	c.Backoff = time.Hour // the first backoff sleep would block forever
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Platforms(ctx)
		done <- err
	}()
	// Wait for the first attempt to land, then cancel during backoff.
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected cancellation error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not abort the backoff sleep")
	}
	if calls.Load() != 1 {
		t.Fatalf("%d attempts, want 1 (cancelled before the retry fired)", calls.Load())
	}
}

func TestBackoffJitterSeededAndBounded(t *testing.T) {
	a := New("http://unused")
	a.Seed = 42
	b := New("http://unused")
	b.Seed = 42
	d := New("http://unused")
	d.Seed = 43
	var seqA, seqB, seqD []time.Duration
	base := 100 * time.Millisecond
	for i := 0; i < 16; i++ {
		seqA = append(seqA, a.jitteredSleep(base))
		seqB = append(seqB, b.jitteredSleep(base))
		seqD = append(seqD, d.jitteredSleep(base))
	}
	differs := false
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, seqA[i], seqB[i])
		}
		if seqA[i] < base/2 || seqA[i] > base {
			t.Fatalf("jittered sleep %v outside [base/2, base]", seqA[i])
		}
		if seqA[i] != seqD[i] {
			differs = true
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical jitter streams")
	}
}

func TestBackoffIsCapped(t *testing.T) {
	srv, _ := flakyServer(t, 1000, http.StatusInternalServerError)
	c := New(srv.URL)
	c.MaxRetries = 6
	c.Backoff = 2 * time.Millisecond
	c.MaxBackoff = 8 * time.Millisecond
	reg := telemetry.NewRegistry()
	c.Telemetry = reg
	start := time.Now()
	if _, err := c.Platforms(context.Background()); err == nil {
		t.Fatal("expected failure")
	}
	// Uncapped doubling would sleep 2+4+8+16+32+64 = 126ms minimum; capped
	// at 8ms the nominal total is 2+4+8+8+8+8 = 38ms (jitter halves the
	// floor). Assert well under the uncapped floor.
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("6 capped retries took %v — cap not applied?", elapsed)
	}
	h := reg.Histogram("mlaas_client_backoff_seconds", "endpoint", "platforms")
	if h.Count() != 6 {
		t.Fatalf("backoff observations = %d, want 6", h.Count())
	}
	if h.Sum() > 0.1 {
		t.Fatalf("total backoff %.3fs exceeds the capped ceiling", h.Sum())
	}
}

func TestRequestIDConstantAcrossRetries(t *testing.T) {
	var mu sync.Mutex
	var ids []string
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		ids = append(ids, r.Header.Get(telemetry.RequestIDHeader))
		mu.Unlock()
		if calls.Add(1) < 3 {
			http.Error(w, `{"error":"flaky"}`, http.StatusServiceUnavailable)
			return
		}
		_ = json.NewEncoder(w).Encode([]any{})
	}))
	defer srv.Close()
	c := New(srv.URL)
	c.Backoff = time.Millisecond
	if _, err := c.Platforms(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(ids) != 3 {
		t.Fatalf("%d attempts recorded", len(ids))
	}
	if ids[0] == "" {
		t.Fatal("no X-Request-ID sent")
	}
	if ids[0] != ids[1] || ids[1] != ids[2] {
		t.Fatalf("request id changed across retries: %v", ids)
	}
}

func TestRequestIDPropagatedFromContext(t *testing.T) {
	var got string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Get(telemetry.RequestIDHeader)
		_ = json.NewEncoder(w).Encode([]any{})
	}))
	defer srv.Close()
	c := New(srv.URL)
	ctx := telemetry.WithRequestID(context.Background(), "caller-chosen-id")
	if _, err := c.Platforms(ctx); err != nil {
		t.Fatal(err)
	}
	if got != "caller-chosen-id" {
		t.Fatalf("server saw request id %q, want the caller's", got)
	}
}

func TestRateLimiterGuardsNonPositiveRate(t *testing.T) {
	for _, rate := range []float64{0, -5} {
		rl := NewRateLimiter(rate, 2) // must not panic or spin
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		// The burst tokens are still available immediately.
		if err := rl.Wait(ctx); err != nil {
			t.Fatalf("rate %v: burst token unavailable: %v", rate, err)
		}
		cancel()
		rl.Stop()
	}
}

func TestRateLimitWaitRecorded(t *testing.T) {
	srv, _ := flakyServer(t, 0, http.StatusOK)
	reg := telemetry.NewRegistry()
	c := New(srv.URL)
	c.Telemetry = reg
	c.Limiter = NewRateLimiter(1000, 1)
	defer c.Limiter.Stop()
	for i := 0; i < 3; i++ {
		if _, err := c.Platforms(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Histogram("mlaas_client_ratelimit_wait_seconds", "endpoint", "platforms").Count(); got != 3 {
		t.Fatalf("rate-limit wait observations = %d, want 3", got)
	}
}
