// Package store implements the durable artifact formats behind warm
// restarts: MLDS, a columnar binary dataset layout whose float64 sections
// mmap as zero-copy slices, and MLMF, a fitted-model artifact keyed by the
// service's (platform, dataset, config, seed) cache key. Both formats are
// versioned, little-endian, CRC-protected, and decoded under the same
// discipline as internal/wire: explicit limits, counts validated against
// the delivered bytes before any allocation, errors instead of panics.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"unsafe"

	"mlaasbench/internal/codec"
	"mlaasbench/internal/dataset"
)

// MLDS file layout (all integers little-endian):
//
//	offset  0: magic "MLDS"
//	offset  4: u16 version (currently 1)
//	offset  6: u16 flags (reserved, 0)
//	offset  8: u64 rows
//	offset 16: u64 cols
//	offset 24: u64 metaOff (= 64)
//	offset 32: u64 metaLen
//	offset 40: u64 yOff  — labels, rows × i64, 8-byte aligned
//	offset 48: u64 xOff  — features, column-major: column j's rows × f64
//	            start at xOff + j·rows·8; 8-byte aligned
//	offset 56: u64 reserved (0)
//	metaOff  : meta section (codec: name, domain, linear, kinds, columns)
//	yOff     : label section
//	xOff     : feature section
//	size-8   : u32 CRC32-C over bytes [0, size-8), then trailer "SDLM"
//
// The 8-byte alignment of yOff/xOff plus the page alignment of mmap means
// the label and column sections can be reinterpreted in place as []int and
// []float64 on little-endian 64-bit hosts — no decode, no copy.
const (
	mldsMagic   = "MLDS"
	mldsTrailer = "SDLM"
	mldsVersion = 1
	headerSize  = 64
	footerSize  = 8

	maxRows    = 1 << 32
	maxCols    = 1 << 24
	maxMetaLen = 1 << 24
	maxColName = 1 << 10
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// hostLittleEndian reports whether the running CPU stores integers
// little-endian; the zero-copy reinterpretation paths require it.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// File is an opened MLDS dataset. The underlying bytes come from an mmap
// (zero-copy views) or a plain read (byte-identical, views fall back to
// copies on exotic hosts); both parse through the same code path.
type File struct {
	data   []byte
	mapped bool
	f      *os.File

	rows, cols int
	yOff, xOff int

	name    string
	domain  dataset.Domain
	linear  bool
	kinds   []dataset.FeatureKind
	columns []string
}

// EncodeDataset serializes a dataset to the MLDS layout. The dataset must
// be rectangular (ragged inputs error, they cannot be stored columnar).
func EncodeDataset(d *dataset.Dataset) ([]byte, error) {
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	rows, cols := d.N(), d.D()

	meta := codec.AppendString(nil, d.Name)
	meta = codec.AppendString(meta, string(d.Domain))
	meta = codec.AppendBool(meta, d.Linear)
	meta = codec.AppendU32(meta, uint32(len(d.Kinds)))
	for _, k := range d.Kinds {
		meta = codec.AppendU8(meta, uint8(k))
	}
	meta = codec.AppendU32(meta, uint32(len(d.Columns)))
	for _, c := range d.Columns {
		meta = codec.AppendString(meta, c)
	}
	if len(meta) > maxMetaLen {
		return nil, fmt.Errorf("store: meta section %d bytes exceeds %d", len(meta), maxMetaLen)
	}

	yOff := align8(headerSize + len(meta))
	xOff := yOff + rows*8
	size := xOff + rows*cols*8 + footerSize

	b := make([]byte, headerSize, size)
	copy(b, mldsMagic)
	binary.LittleEndian.PutUint16(b[4:], mldsVersion)
	binary.LittleEndian.PutUint64(b[8:], uint64(rows))
	binary.LittleEndian.PutUint64(b[16:], uint64(cols))
	binary.LittleEndian.PutUint64(b[24:], headerSize)
	binary.LittleEndian.PutUint64(b[32:], uint64(len(meta)))
	binary.LittleEndian.PutUint64(b[40:], uint64(yOff))
	binary.LittleEndian.PutUint64(b[48:], uint64(xOff))

	b = append(b, meta...)
	for len(b) < yOff {
		b = append(b, 0)
	}
	for _, y := range d.Y {
		b = codec.AppendI64(b, int64(y))
	}
	// Column-major: all of column j contiguous, bit patterns preserved.
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			b = codec.AppendF64(b, d.X[i][j])
		}
	}
	b = codec.AppendU32(b, crc32.Checksum(b, castagnoli))
	b = append(b, mldsTrailer...)
	return b, nil
}

// WriteDataset writes the dataset to path atomically (tmp + rename).
func WriteDataset(path string, d *dataset.Dataset) error {
	b, err := EncodeDataset(d)
	if err != nil {
		return err
	}
	return atomicWrite(path, b)
}

// OpenDataset opens an MLDS file, mmap-backed where the platform supports
// it and via a plain read everywhere else. Both paths see identical bytes.
func OpenDataset(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if data, ok, err := mapFile(f, st.Size()); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: mmap %s: %w", path, err)
	} else if ok {
		df, perr := parseDataset(data)
		if perr != nil {
			unmapFile(data)
			f.Close()
			return nil, fmt.Errorf("store: %s: %w", path, perr)
		}
		df.mapped, df.f = true, f
		return df, nil
	}
	data, err := os.ReadFile(path)
	f.Close()
	if err != nil {
		return nil, err
	}
	df, perr := ReadDataset(data)
	if perr != nil {
		return nil, fmt.Errorf("store: %s: %w", path, perr)
	}
	return df, nil
}

// ReadDataset parses an MLDS payload held fully in memory — the portable
// fallback path and the fuzz entry point. The returned File aliases data.
func ReadDataset(data []byte) (*File, error) {
	return parseDataset(data)
}

func parseDataset(data []byte) (*File, error) {
	size := len(data)
	if size < headerSize+footerSize {
		return nil, codecErrf("file %d bytes, need at least %d", size, headerSize+footerSize)
	}
	if string(data[:4]) != mldsMagic {
		return nil, codecErrf("bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != mldsVersion {
		return nil, codecErrf("version %d, want %d", v, mldsVersion)
	}
	if string(data[size-4:]) != mldsTrailer {
		return nil, codecErrf("bad trailer %q", data[size-4:])
	}
	want := binary.LittleEndian.Uint32(data[size-footerSize:])
	if got := crc32.Checksum(data[:size-footerSize], castagnoli); got != want {
		return nil, codecErrf("CRC mismatch: file says %08x, payload is %08x", want, got)
	}

	rows := binary.LittleEndian.Uint64(data[8:])
	cols := binary.LittleEndian.Uint64(data[16:])
	metaOff := binary.LittleEndian.Uint64(data[24:])
	metaLen := binary.LittleEndian.Uint64(data[32:])
	yOff := binary.LittleEndian.Uint64(data[40:])
	xOff := binary.LittleEndian.Uint64(data[48:])
	if rows > maxRows || cols > maxCols {
		return nil, codecErrf("shape %d×%d exceeds limits", rows, cols)
	}
	if metaOff != headerSize || metaLen > maxMetaLen {
		return nil, codecErrf("meta section %d+%d out of range", metaOff, metaLen)
	}
	// Every section boundary is recomputed from the shape and checked
	// against the header and the actual file size, so a forged header can
	// neither read out of bounds nor imply an allocation the delivered
	// bytes don't back.
	if yOff != uint64(align8(int(headerSize+metaLen))) {
		return nil, codecErrf("label section at %d, want %d", yOff, align8(int(headerSize+metaLen)))
	}
	if xOff != yOff+rows*8 {
		return nil, codecErrf("feature section at %d, want %d", xOff, yOff+rows*8)
	}
	if wantSize := xOff + rows*cols*8 + footerSize; wantSize != uint64(size) {
		return nil, codecErrf("file is %d bytes, shape implies %d", size, wantSize)
	}

	f := &File{
		data: data,
		rows: int(rows), cols: int(cols),
		yOff: int(yOff), xOff: int(xOff),
	}
	r := codec.NewReader(data[headerSize : headerSize+metaLen])
	f.name = r.String(maxColName)
	f.domain = dataset.Domain(r.String(maxColName))
	f.linear = r.Bool()
	if n := r.Count(maxCols, 1); r.Err() == nil && n > 0 {
		if uint64(n) != cols {
			r.Fail("%d kinds for %d columns", n, cols)
		}
		f.kinds = make([]dataset.FeatureKind, n)
		for i := range f.kinds {
			f.kinds[i] = dataset.FeatureKind(r.U8())
		}
	}
	if n := r.Count(maxCols, 4); r.Err() == nil && n > 0 {
		if uint64(n) != cols {
			r.Fail("%d column names for %d columns", n, cols)
		}
		f.columns = make([]string, n)
		for i := range f.columns {
			f.columns[i] = r.String(maxColName)
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, codecErrf("%d trailing bytes in meta section", r.Remaining())
	}
	return f, nil
}

// Rows returns the number of samples.
func (f *File) Rows() int { return f.rows }

// Cols returns the number of features.
func (f *File) Cols() int { return f.cols }

// Name returns the stored dataset name.
func (f *File) Name() string { return f.name }

// Col returns column j's values. On little-endian 64-bit hosts with the
// file mapped or read into aligned memory this is a zero-copy view of the
// file bytes — treat it as read-only. Elsewhere it decodes into a fresh
// slice with identical bit patterns.
func (f *File) Col(j int) []float64 {
	if j < 0 || j >= f.cols {
		panic(fmt.Sprintf("store: column %d of %d", j, f.cols))
	}
	b := f.data[f.xOff+j*f.rows*8 : f.xOff+(j+1)*f.rows*8]
	if v, ok := f64view(b); ok {
		return v
	}
	out := make([]float64, f.rows)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// Labels returns the label vector, zero-copy where the host allows (see
// Col). Treat a zero-copy view as read-only.
func (f *File) Labels() []int {
	b := f.data[f.yOff : f.yOff+f.rows*8]
	if v, ok := intView(b); ok {
		return v
	}
	out := make([]int, f.rows)
	for i := range out {
		out[i] = int(int64(binary.LittleEndian.Uint64(b[i*8:])))
	}
	return out
}

// Dataset materializes the file as an owned, mutable Dataset: row-major X
// assembled over one flat backing array from the column sections, labels
// and metadata copied. Bit patterns (NaN payloads, ±Inf, -0) are preserved
// exactly, so the result is byte-identical to the dataset that was written.
func (f *File) Dataset() *dataset.Dataset {
	d := &dataset.Dataset{
		Name:   f.name,
		Domain: f.domain,
		Linear: f.linear,
		X:      make([][]float64, f.rows),
		Y:      make([]int, f.rows),
	}
	copy(d.Y, f.Labels())
	if f.kinds != nil {
		d.Kinds = append([]dataset.FeatureKind(nil), f.kinds...)
	}
	if f.columns != nil {
		d.Columns = append([]string(nil), f.columns...)
	}
	flat := make([]float64, f.rows*f.cols)
	for j := 0; j < f.cols; j++ {
		col := f.Col(j)
		for i, v := range col {
			flat[i*f.cols+j] = v
		}
	}
	for i := range d.X {
		d.X[i] = flat[i*f.cols : (i+1)*f.cols : (i+1)*f.cols]
	}
	return d
}

// Close releases the mapping (if any). Views returned by Col and Labels
// must not be used afterwards.
func (f *File) Close() error {
	if !f.mapped {
		return nil
	}
	f.mapped = false
	err := unmapFile(f.data)
	f.data = nil
	if cerr := f.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Mapped reports whether the file is mmap-backed (true zero-copy views).
func (f *File) Mapped() bool { return f.mapped }

// f64view reinterprets b as []float64 in place when the host is
// little-endian and the bytes are 8-byte aligned.
func f64view(b []byte) ([]float64, bool) {
	if len(b) == 0 {
		return nil, true
	}
	if !hostLittleEndian || uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		return nil, false
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8), true
}

// intView reinterprets b as []int in place on little-endian hosts where
// int is 64 bits wide and the bytes are aligned.
func intView(b []byte) ([]int, bool) {
	if len(b) == 0 {
		return nil, true
	}
	const intIs64 = unsafe.Sizeof(int(0)) == 8
	if !intIs64 || !hostLittleEndian || uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		return nil, false
	}
	return unsafe.Slice((*int)(unsafe.Pointer(&b[0])), len(b)/8), true
}

func align8(n int) int { return (n + 7) &^ 7 }

func codecErrf(format string, args ...any) error {
	return fmt.Errorf("%w: mlds: %s", codec.ErrCorrupt, fmt.Sprintf(format, args...))
}

// atomicWrite writes b to path via a temp file and rename, so readers never
// observe a torn artifact.
func atomicWrite(path string, b []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
