//go:build !linux && !darwin

package store

import "os"

// mapFile on platforms without a wired-up mmap path: always fall back to
// the plain read, which parses identically.
func mapFile(f *os.File, size int64) (data []byte, ok bool, err error) {
	return nil, false, nil
}

func unmapFile(data []byte) error { return nil }
