package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mlaasbench/internal/dataset"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/platforms"
	"mlaasbench/internal/synth"
)

// benchCorpus materialises the first n quick-profile corpus datasets once
// per benchmark binary — the workload every load benchmark iterates over.
func benchCorpus(b *testing.B, n int) []*dataset.Dataset {
	b.Helper()
	specs := synth.Corpus()
	if n > len(specs) {
		n = len(specs)
	}
	out := make([]*dataset.Dataset, 0, n)
	for _, spec := range specs[:n] {
		out = append(out, synth.GenerateClean(spec, synth.Quick, 7))
	}
	return out
}

// BenchmarkDatasetLoadMLDS is the binary side of the load A/B: open each
// MLDS file (mmap + CRC verify) and materialise the full Dataset. Compare
// against BenchmarkDatasetLoadCSV — the ratio is the format's speedup.
func BenchmarkDatasetLoadMLDS(b *testing.B) {
	corpus := benchCorpus(b, 24)
	dir := b.TempDir()
	paths := make([]string, len(corpus))
	var bytesTotal int64
	for i, d := range corpus {
		paths[i] = filepath.Join(dir, fmt.Sprintf("%d.mlds", i))
		if err := WriteDataset(paths[i], d); err != nil {
			b.Fatal(err)
		}
		st, _ := os.Stat(paths[i])
		bytesTotal += st.Size()
	}
	b.SetBytes(bytesTotal)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := 0
		for _, path := range paths {
			f, err := OpenDataset(path)
			if err != nil {
				b.Fatal(err)
			}
			d := f.Dataset()
			rows += d.N()
			f.Close()
		}
		if rows == 0 {
			b.Fatal("empty corpus")
		}
	}
}

// BenchmarkDatasetOpenMLDS opens and CRC-verifies each file and touches one
// value through the zero-copy view, without materialising rows — the cost a
// consumer pays when it only needs a column slice.
func BenchmarkDatasetOpenMLDS(b *testing.B) {
	corpus := benchCorpus(b, 24)
	dir := b.TempDir()
	paths := make([]string, len(corpus))
	for i, d := range corpus {
		paths[i] = filepath.Join(dir, fmt.Sprintf("%d.mlds", i))
		if err := WriteDataset(paths[i], d); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, path := range paths {
			f, err := OpenDataset(path)
			if err != nil {
				b.Fatal(err)
			}
			if f.Rows() > 0 && f.Cols() > 0 {
				sink += f.Col(0)[0]
			}
			f.Close()
		}
	}
	_ = sink
}

// BenchmarkDatasetLoadCSV is the text baseline: the same corpus decoded
// from CSV files, the only durable dataset format before MLDS existed.
func BenchmarkDatasetLoadCSV(b *testing.B) {
	corpus := benchCorpus(b, 24)
	dir := b.TempDir()
	paths := make([]string, len(corpus))
	var bytesTotal int64
	for i, d := range corpus {
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			b.Fatal(err)
		}
		paths[i] = filepath.Join(dir, fmt.Sprintf("%d.csv", i))
		if err := os.WriteFile(paths[i], buf.Bytes(), 0o644); err != nil {
			b.Fatal(err)
		}
		bytesTotal += int64(buf.Len())
	}
	b.SetBytes(bytesTotal)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := 0
		for _, path := range paths {
			blob, err := os.ReadFile(path)
			if err != nil {
				b.Fatal(err)
			}
			d, err := dataset.ReadCSV(bytes.NewReader(blob), "bench")
			if err != nil {
				b.Fatal(err)
			}
			rows += d.N()
		}
		if rows == 0 {
			b.Fatal("empty corpus")
		}
	}
}

// benchModel fits one mid-size randomforest for the artifact codec benchmarks.
func benchModel(b *testing.B) platforms.FittedModel {
	b.Helper()
	ds := synth.GenerateClean(synth.Spec{
		Name: "store-bench", Gen: synth.GenClusters, N: 240, D: 8, Noise: 0.3,
	}, synth.Quick, 11)
	p, err := platforms.New("local")
	if err != nil {
		b.Fatal(err)
	}
	cfg := pipeline.Config{Classifier: "randomforest", Params: map[string]any{"n_estimators": 16}}
	m, err := p.Fit(cfg, ds, 5)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkModelEncodeMLMF measures fitted-model serialisation — the cost a
// demotion or write-through pays off the serving path.
func BenchmarkModelEncodeMLMF(b *testing.B) {
	m := benchModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeModel("bench/key", m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelDecodeMLMF measures artifact load — the cost of a disk-tier
// hit or a boot-time warm, in place of a full refit.
func BenchmarkModelDecodeMLMF(b *testing.B) {
	blob, err := EncodeModel("bench/key", benchModel(b))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeModel(blob); err != nil {
			b.Fatal(err)
		}
	}
}
