package store

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"mlaasbench/internal/codec"
	"mlaasbench/internal/dataset"
	"mlaasbench/internal/synth"
)

// assertDatasetIdentical compares two datasets bit-for-bit: every feature
// value by its Float64bits (so NaN payloads, ±Inf and -0 must survive),
// plus labels and metadata.
func assertDatasetIdentical(t *testing.T, ctx string, got, want *dataset.Dataset) {
	t.Helper()
	if got.Name != want.Name || got.Domain != want.Domain || got.Linear != want.Linear {
		t.Fatalf("%s: meta %q/%q/%v, want %q/%q/%v", ctx, got.Name, got.Domain, got.Linear, want.Name, want.Domain, want.Linear)
	}
	if len(got.X) != len(want.X) || len(got.Y) != len(want.Y) {
		t.Fatalf("%s: shape %d×?/%d labels, want %d/%d", ctx, len(got.X), len(got.Y), len(want.X), len(want.Y))
	}
	for i := range want.X {
		if len(got.X[i]) != len(want.X[i]) {
			t.Fatalf("%s: row %d has %d features, want %d", ctx, i, len(got.X[i]), len(want.X[i]))
		}
		for j := range want.X[i] {
			if math.Float64bits(got.X[i][j]) != math.Float64bits(want.X[i][j]) {
				t.Fatalf("%s: X[%d][%d] bits %016x, want %016x", ctx, i, j,
					math.Float64bits(got.X[i][j]), math.Float64bits(want.X[i][j]))
			}
		}
	}
	for i := range want.Y {
		if got.Y[i] != want.Y[i] {
			t.Fatalf("%s: Y[%d] = %d, want %d", ctx, i, got.Y[i], want.Y[i])
		}
	}
	if len(got.Kinds) != len(want.Kinds) {
		t.Fatalf("%s: %d kinds, want %d", ctx, len(got.Kinds), len(want.Kinds))
	}
	for i := range want.Kinds {
		if got.Kinds[i] != want.Kinds[i] {
			t.Fatalf("%s: kind %d = %v, want %v", ctx, i, got.Kinds[i], want.Kinds[i])
		}
	}
	if len(got.Columns) != len(want.Columns) {
		t.Fatalf("%s: %d columns, want %d", ctx, len(got.Columns), len(want.Columns))
	}
	for i := range want.Columns {
		if got.Columns[i] != want.Columns[i] {
			t.Fatalf("%s: column %d = %q, want %q", ctx, i, got.Columns[i], want.Columns[i])
		}
	}
}

// roundTrip writes d to a temp MLDS file and loads it back through both the
// OpenDataset (mmap where available) and ReadDataset (in-memory) paths,
// asserting the two parse identically.
func roundTrip(t *testing.T, d *dataset.Dataset) *dataset.Dataset {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ds.mlds")
	if err := WriteDataset(path, d); err != nil {
		t.Fatalf("WriteDataset: %v", err)
	}
	f, err := OpenDataset(path)
	if err != nil {
		t.Fatalf("OpenDataset: %v", err)
	}
	defer f.Close()
	got := f.Dataset()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ff, err := ReadDataset(raw)
	if err != nil {
		t.Fatalf("ReadDataset (fallback): %v", err)
	}
	assertDatasetIdentical(t, d.Name+" (mmap vs fallback)", ff.Dataset(), got)
	return got
}

// TestDatasetRoundTripCorpus proves the headline contract on real corpus
// data: an MLDS round-trip reproduces the generated dataset exactly.
func TestDatasetRoundTripCorpus(t *testing.T) {
	specs := synth.Corpus()
	if len(specs) > 12 {
		specs = specs[:12]
	}
	for _, spec := range specs {
		d := synth.GenerateClean(spec, synth.Quick, 7)
		assertDatasetIdentical(t, spec.Name, roundTrip(t, d), d)
	}
}

// TestDatasetRoundTripEdgeValues checks the bit patterns text formats lose:
// NaN with a payload, ±Inf, -0, subnormals — plus kinds, columns and the
// linear flag.
func TestDatasetRoundTripEdgeValues(t *testing.T) {
	nanPayload := math.Float64frombits(0x7ff80000deadbeef)
	d := &dataset.Dataset{
		Name:   "edge",
		Domain: dataset.DomainSynthetic,
		Linear: true,
		X: [][]float64{
			{math.NaN(), math.Inf(1), math.Inf(-1)},
			{math.Copysign(0, -1), 5e-324, nanPayload},
		},
		Y:       []int{0, 1},
		Kinds:   []dataset.FeatureKind{dataset.Numeric, dataset.Categorical, dataset.Numeric},
		Columns: []string{"a", "b", "c"},
	}
	assertDatasetIdentical(t, "edge", roundTrip(t, d), d)
}

// TestDatasetRoundTripDegenerateShapes covers empty and zero-width
// datasets: both must round-trip, not error or panic.
func TestDatasetRoundTripDegenerateShapes(t *testing.T) {
	empty := &dataset.Dataset{Name: "empty", Domain: dataset.DomainOther}
	assertDatasetIdentical(t, "empty", roundTrip(t, empty), empty)

	zeroWidth := &dataset.Dataset{
		Name: "zero-width",
		X:    [][]float64{{}, {}, {}},
		Y:    []int{0, 1, 0},
	}
	got := roundTrip(t, zeroWidth)
	if len(got.Y) != 3 || len(got.X) != 3 {
		t.Fatalf("zero-width: got %d rows / %d labels, want 3/3", len(got.X), len(got.Y))
	}
	for i, row := range got.X {
		if len(row) != 0 {
			t.Fatalf("zero-width: row %d has %d features", i, len(row))
		}
	}
}

// TestDatasetRaggedRejected: ragged matrices cannot be stored columnar and
// must be rejected with an error at write time.
func TestDatasetRaggedRejected(t *testing.T) {
	ragged := &dataset.Dataset{
		Name: "ragged",
		X:    [][]float64{{1, 2}, {3}},
		Y:    []int{0, 1},
	}
	if _, err := EncodeDataset(ragged); err == nil {
		t.Fatal("EncodeDataset accepted a ragged matrix")
	}
}

// TestDatasetZeroCopyViews checks the columnar accessors against the
// row-major source, and that the mmap path actually maps on platforms that
// support it.
func TestDatasetZeroCopyViews(t *testing.T) {
	d := synth.GenerateClean(synth.Spec{Name: "views", Gen: synth.GenClusters, N: 64, D: 5, Noise: 0.3}, synth.Quick, 3)
	path := filepath.Join(t.TempDir(), "views.mlds")
	if err := WriteDataset(path, d); err != nil {
		t.Fatal(err)
	}
	f, err := OpenDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Rows() != d.N() || f.Cols() != d.D() {
		t.Fatalf("shape %d×%d, want %d×%d", f.Rows(), f.Cols(), d.N(), d.D())
	}
	for j := 0; j < f.Cols(); j++ {
		col := f.Col(j)
		for i, v := range col {
			if math.Float64bits(v) != math.Float64bits(d.X[i][j]) {
				t.Fatalf("Col(%d)[%d] = %v, want %v", j, i, v, d.X[i][j])
			}
		}
	}
	labels := f.Labels()
	for i, y := range labels {
		if y != d.Y[i] {
			t.Fatalf("Labels()[%d] = %d, want %d", i, y, d.Y[i])
		}
	}
}

// TestDatasetCorruptionDetected: any flipped byte in the file must surface
// as an ErrCorrupt-classified error, and truncations must never panic.
func TestDatasetCorruptionDetected(t *testing.T) {
	d := synth.GenerateClean(synth.Spec{Name: "corrupt", Gen: synth.GenLinear, N: 30, D: 3, Noise: 0.2}, synth.Quick, 9)
	b, err := EncodeDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDataset(b); err != nil {
		t.Fatalf("pristine bytes rejected: %v", err)
	}
	// Flip one byte at a spread of offsets, covering header, meta, data and
	// footer corruption.
	for _, off := range []int{0, 5, 9, 20, 41, 70, headerSize + 20, len(b) / 2, len(b) - 6, len(b) - 1} {
		if off >= len(b) {
			continue
		}
		mut := append([]byte(nil), b...)
		mut[off] ^= 0xff
		if _, err := ReadDataset(mut); err == nil {
			t.Fatalf("flipped byte at %d accepted", off)
		} else if !errors.Is(err, codec.ErrCorrupt) {
			t.Fatalf("flipped byte at %d: error %v not classified ErrCorrupt", off, err)
		}
	}
	for _, n := range []int{0, 3, headerSize - 1, headerSize, len(b) - footerSize, len(b) - 1} {
		if _, err := ReadDataset(b[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}
