//go:build linux || darwin

package store

import (
	"os"
	"syscall"
)

// mapFile maps the file read-only. ok=false means the platform or the file
// shape doesn't support mapping and the caller should fall back to a read.
func mapFile(f *os.File, size int64) (data []byte, ok bool, err error) {
	if size <= 0 || size > int64(int(^uint(0)>>1)) {
		return nil, false, nil // empty or too large to address; read instead
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Some filesystems refuse mmap; the read fallback is byte-identical.
		return nil, false, nil
	}
	return data, true, nil
}

func unmapFile(data []byte) error { return syscall.Munmap(data) }
