package store

import (
	"errors"
	"testing"
	"time"

	"mlaasbench/internal/classifiers"
	"mlaasbench/internal/codec"
	"mlaasbench/internal/dataset"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/platforms"
	"mlaasbench/internal/rng"
	"mlaasbench/internal/synth"
)

func trainTestData(t *testing.T) (*dataset.Dataset, [][]float64) {
	t.Helper()
	full := synth.GenerateClean(synth.Spec{Name: "store-model", Gen: synth.GenClusters, N: 110, D: 6, Noise: 0.3}, synth.Quick, 5)
	sp := full.StratifiedSplit(0.7, rng.New(3))
	return sp.Train, sp.Test.X
}

func assertSameLabels(t *testing.T, ctx string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d labels, want %d", ctx, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: label %d is %d, want %d", ctx, i, got[i], want[i])
		}
	}
}

// encodeDecode round-trips a fitted model through the MLMF bytes.
func encodeDecode(t *testing.T, ctx, key string, m platforms.FittedModel) platforms.FittedModel {
	t.Helper()
	b, err := EncodeModel(key, m)
	if err != nil {
		t.Fatalf("%s: EncodeModel: %v", ctx, err)
	}
	gotKey, got, err := DecodeModel(b)
	if err != nil {
		t.Fatalf("%s: DecodeModel: %v", ctx, err)
	}
	if gotKey != key {
		t.Fatalf("%s: key %q, want %q", ctx, gotKey, key)
	}
	return got
}

// TestModelRoundTripEveryClassifier is the per-classifier oracle: every
// registered classifier, trained through the pipeline, must predict
// byte-identically after an MLMF round-trip. This exercises every branch of
// the classifier codec (weights, trees, DAGs, kNN backing, MLP layers).
func TestModelRoundTripEveryClassifier(t *testing.T) {
	train, points := trainTestData(t)
	for _, name := range classifiers.Names() {
		params, err := classifiers.DefaultParams(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := pipeline.Config{Feat: pipeline.Feat{Kind: "none"}, Classifier: name, Params: params}
		fp, err := pipeline.Fit(cfg, train, rng.New(11))
		if err != nil {
			t.Fatalf("%s: Fit: %v", name, err)
		}
		want := fp.Predict(points)
		got := encodeDecode(t, name, "k/"+name, fp)
		assertSameLabels(t, name, got.Predict(points), want)
		// Decoded models must also be stable across repeated use.
		assertSameLabels(t, name+" (reuse)", got.Predict(points), want)
	}
}

// TestModelRoundTripEveryPlatform covers the platform layer: default
// configs everywhere (including Amazon's hidden binner, which serializes as
// a binnedModel) plus FEAT transforms that carry fitted state.
func TestModelRoundTripEveryPlatform(t *testing.T) {
	train, points := trainTestData(t)
	for _, p := range platforms.All() {
		var cfg pipeline.Config
		if base := p.BaselineClassifier(); base != "" {
			var err error
			cfg, err = p.Surface().DefaultConfig(base)
			if err != nil {
				t.Fatal(err)
			}
		}
		m, err := p.Fit(cfg, train, 42)
		if err != nil {
			t.Fatalf("%s: Fit: %v", p.Name(), err)
		}
		want := m.Predict(points)
		got := encodeDecode(t, p.Name(), p.Name()+"/ds/cfg/42", m)
		assertSameLabels(t, p.Name(), got.Predict(points), want)
	}
}

// TestModelRoundTripFittedTransforms walks configs whose transform carries
// fitted state: scaler moments, filter column choice, the LDA projection.
func TestModelRoundTripFittedTransforms(t *testing.T) {
	train, points := trainTestData(t)
	cases := []struct {
		platform   string
		feat       pipeline.Feat
		classifier string
	}{
		{"local", pipeline.Feat{Kind: "scaler", Name: "standard"}, "mlp"},
		{"local", pipeline.Feat{Kind: "scaler", Name: "minmax"}, "svm"},
		{"local", pipeline.Feat{Kind: "filter", Name: "fisher"}, "randomforest"},
		{"microsoft", pipeline.Feat{Kind: "fisherlda"}, "boosted"},
		{"amazon", pipeline.Feat{Kind: "none"}, "logreg"},
		{"microsoft", pipeline.Feat{Kind: "none"}, "jungle"},
		{"local", pipeline.Feat{Kind: "none"}, "knn"},
	}
	for _, tc := range cases {
		p, err := platforms.New(tc.platform)
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := p.Surface().DefaultConfig(tc.classifier)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Feat = tc.feat
		ctx := tc.platform + "/" + cfg.String()
		m, err := p.Fit(cfg, train, 7)
		if err != nil {
			t.Fatalf("%s: Fit: %v", ctx, err)
		}
		want := m.Predict(points)
		got := encodeDecode(t, ctx, ctx, m)
		assertSameLabels(t, ctx, got.Predict(points), want)
	}
}

// TestModelArtifactDeterministic: encoding the same key twice must produce
// identical bytes — the property that makes concurrent demotions of one key
// converge and lets PutModel skip rewrites.
func TestModelArtifactDeterministic(t *testing.T) {
	train, _ := trainTestData(t)
	p, err := platforms.New("local")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := p.Surface().DefaultConfig("randomforest")
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.Fit(cfg, train, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := EncodeModel("key", m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeModel("key", m)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("EncodeModel is not deterministic for the same model")
	}
}

// TestModelCorruptionDetected mirrors the MLDS corruption test for MLMF.
func TestModelCorruptionDetected(t *testing.T) {
	train, _ := trainTestData(t)
	p, err := platforms.New("local")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := p.Surface().DefaultConfig("logreg")
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.Fit(cfg, train, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeModel("key", m)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{0, 5, 9, mlmfHeaderSize + 2, len(b) / 2, len(b) - 2} {
		mut := append([]byte(nil), b...)
		mut[off] ^= 0xff
		if _, _, err := DecodeModel(mut); err == nil {
			t.Fatalf("flipped byte at %d accepted", off)
		} else if !errors.Is(err, codec.ErrCorrupt) {
			t.Fatalf("flipped byte at %d: error %v not classified ErrCorrupt", off, err)
		}
	}
	for _, n := range []int{0, 4, mlmfHeaderSize, len(b) - 4, len(b) - 1} {
		if _, _, err := DecodeModel(b[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

// TestStorePutGet covers the directory layer: put, get, has, key binding,
// iteration order, and the missing-key path.
func TestStorePutGet(t *testing.T) {
	train, points := trainTestData(t)
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p, err := platforms.New("local")
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"local/ds-1/none|logreg/1", "local/ds-1/none|svm/1"}
	want := map[string][]int{}
	for i, clf := range []string{"logreg", "svm"} {
		cfg, err := p.Surface().DefaultConfig(clf)
		if err != nil {
			t.Fatal(err)
		}
		m, err := p.Fit(cfg, train, 1)
		if err != nil {
			t.Fatal(err)
		}
		want[keys[i]] = m.Predict(points)
		if err := s.PutModel(keys[i], m); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := s.Len(); err != nil || n != 2 {
		t.Fatalf("Len = %d, %v; want 2", n, err)
	}
	for _, key := range keys {
		if !s.Has(key) {
			t.Fatalf("Has(%q) = false after Put", key)
		}
		m, ok, err := s.GetModel(key)
		if err != nil || !ok {
			t.Fatalf("GetModel(%q): ok=%v err=%v", key, ok, err)
		}
		assertSameLabels(t, key, m.Predict(points), want[key])
	}
	if _, ok, err := s.GetModel("no/such/key/0"); ok || err != nil {
		t.Fatalf("missing key: ok=%v err=%v, want false/nil", ok, err)
	}
	seen := 0
	err = s.Models(func(key string, m platforms.FittedModel, load time.Duration) error {
		if _, ok := want[key]; !ok {
			t.Fatalf("Models yielded unknown key %q", key)
		}
		if load < 0 {
			t.Fatal("negative load duration")
		}
		seen++
		return nil
	})
	if err != nil || seen != 2 {
		t.Fatalf("Models: seen=%d err=%v", seen, err)
	}
}
