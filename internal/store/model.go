package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"mlaasbench/internal/codec"
	"mlaasbench/internal/platforms"
)

// MLMF fitted-model artifact layout (little-endian):
//
//	offset  0: magic "MLMF"
//	offset  4: u16 version (currently 1)
//	offset  6: u16 flags (reserved, 0)
//	offset  8: u64 payloadLen
//	offset 16: payload — codec: cache key string, then the
//	           platforms.AppendFittedModel encoding
//	end     : u32 CRC32-C over bytes [0, size-4)
//
// Artifacts are small (coefficients, trees, kNN backing), so the whole file
// is read, CRC-verified, then decoded — no partial reads to tear.
const (
	mlmfMagic      = "MLMF"
	mlmfVersion    = 1
	mlmfHeaderSize = 16

	// maxModelBytes caps how much of a claimed artifact the decoder will
	// consider; the largest real artifact (kNN on the full corpus) is well
	// under a hundredth of this.
	maxModelBytes = 1 << 30
	maxKeyLen     = 1 << 10
)

// EncodeModel serializes a fitted model under its cache key.
func EncodeModel(key string, m platforms.FittedModel) ([]byte, error) {
	payload := codec.AppendString(nil, key)
	payload, err := platforms.AppendFittedModel(payload, m)
	if err != nil {
		return nil, err
	}
	b := make([]byte, mlmfHeaderSize, mlmfHeaderSize+len(payload)+4)
	copy(b, mlmfMagic)
	binary.LittleEndian.PutUint16(b[4:], mlmfVersion)
	binary.LittleEndian.PutUint64(b[8:], uint64(len(payload)))
	b = append(b, payload...)
	b = codec.AppendU32(b, crc32.Checksum(b, castagnoli))
	return b, nil
}

// DecodeModel reconstructs the cache key and fitted model from an MLMF
// artifact. Corrupt or truncated input errors; it never panics and never
// allocates beyond what the delivered bytes justify.
func DecodeModel(data []byte) (string, platforms.FittedModel, error) {
	size := len(data)
	if size > maxModelBytes {
		return "", nil, modelErrf("artifact %d bytes exceeds limit %d", size, maxModelBytes)
	}
	if size < mlmfHeaderSize+4 {
		return "", nil, modelErrf("artifact %d bytes, need at least %d", size, mlmfHeaderSize+4)
	}
	if string(data[:4]) != mlmfMagic {
		return "", nil, modelErrf("bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != mlmfVersion {
		return "", nil, modelErrf("version %d, want %d", v, mlmfVersion)
	}
	if plen := binary.LittleEndian.Uint64(data[8:]); plen != uint64(size-mlmfHeaderSize-4) {
		return "", nil, modelErrf("payload length %d, file carries %d", plen, size-mlmfHeaderSize-4)
	}
	want := binary.LittleEndian.Uint32(data[size-4:])
	if got := crc32.Checksum(data[:size-4], castagnoli); got != want {
		return "", nil, modelErrf("CRC mismatch: file says %08x, payload is %08x", want, got)
	}
	r := codec.NewReader(data[mlmfHeaderSize : size-4])
	key := r.String(maxKeyLen)
	m, err := platforms.DecodeFittedModel(r)
	if err != nil {
		return "", nil, err
	}
	if r.Remaining() != 0 {
		return "", nil, modelErrf("%d trailing bytes after model", r.Remaining())
	}
	return key, m, nil
}

func modelErrf(format string, args ...any) error {
	return fmt.Errorf("%w: mlmf: %s", codec.ErrCorrupt, fmt.Sprintf(format, args...))
}
