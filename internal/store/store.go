package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"mlaasbench/internal/platforms"
)

// Store is a directory of MLMF model artifacts, one file per cache key.
// Filenames are the hex SHA-256 of the key (keys contain '/' and '|'),
// with the key itself recorded inside the artifact. Writes are atomic
// (temp + rename) and artifacts for a given key are deterministic, so
// concurrent writers of the same key converge on identical bytes and
// readers never observe a torn file.
type Store struct {
	dir string
}

const modelExt = ".mlmf"

// Open opens (creating if needed) a model store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// ModelPath returns the artifact path for a cache key.
func (s *Store) ModelPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+modelExt)
}

// Has reports whether an artifact exists for the key (without decoding it).
func (s *Store) Has(key string) bool {
	_, err := os.Stat(s.ModelPath(key))
	return err == nil
}

// PutModel persists a fitted model under its cache key. If an artifact for
// the key already exists it is left untouched: fits are deterministic per
// key, so the bytes on disk are already identical to what would be written.
func (s *Store) PutModel(key string, m platforms.FittedModel) error {
	path := s.ModelPath(key)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	b, err := EncodeModel(key, m)
	if err != nil {
		return fmt.Errorf("store: encode %q: %w", key, err)
	}
	if err := atomicWrite(path, b); err != nil {
		return fmt.Errorf("store: write %q: %w", key, err)
	}
	return nil
}

// GetModel loads the artifact for a cache key. ok=false with a nil error
// means no artifact exists; a non-nil error means one exists but is
// unreadable or corrupt.
func (s *Store) GetModel(key string) (m platforms.FittedModel, ok bool, err error) {
	data, err := os.ReadFile(s.ModelPath(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: read %q: %w", key, err)
	}
	storedKey, m, err := DecodeModel(data)
	if err != nil {
		return nil, false, fmt.Errorf("store: decode %q: %w", key, err)
	}
	if storedKey != key {
		return nil, false, fmt.Errorf("store: artifact for %q holds key %q", key, storedKey)
	}
	return m, true, nil
}

// Models iterates every artifact in the store in a stable (filename) order,
// decoding each and invoking fn with its key, model, and how long the read
// plus decode took. A decode error stops the iteration; fn returning an
// error stops it too.
func (s *Store) Models(fn func(key string, m platforms.FittedModel, load time.Duration) error) error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), modelExt) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		start := time.Now()
		data, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			return fmt.Errorf("store: read %s: %w", name, err)
		}
		key, m, err := DecodeModel(data)
		if err != nil {
			return fmt.Errorf("store: decode %s: %w", name, err)
		}
		if err := fn(key, m, time.Since(start)); err != nil {
			return err
		}
	}
	return nil
}

// Len counts the artifacts currently in the store.
func (s *Store) Len() (int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), modelExt) {
			n++
		}
	}
	return n, nil
}
