package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"testing"

	"mlaasbench/internal/dataset"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/platforms"
	"mlaasbench/internal/rng"
	"mlaasbench/internal/synth"
)

// FuzzDatasetDecoder throws arbitrary bytes at the MLDS parser. The
// invariants mirror internal/wire: never panic, never allocate past what
// the delivered bytes justify (every section offset is revalidated against
// the actual file size before use), and every failure is a returned error.
// `go test` runs the seed corpus on every check;
// `go test -fuzz FuzzDatasetDecoder ./internal/store` explores.
func FuzzDatasetDecoder(f *testing.F) {
	d := synth.GenerateClean(synth.Spec{Name: "fuzz-ds", Gen: synth.GenLinear, N: 20, D: 3, Noise: 0.2}, synth.Quick, 1)
	d.Kinds = []dataset.FeatureKind{dataset.Numeric, dataset.Categorical, dataset.Numeric}
	d.Columns = []string{"a", "b", "c"}
	valid, err := EncodeDataset(d)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	empty, err := EncodeDataset(&dataset.Dataset{Name: "e"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	// Truncations and garbage.
	f.Add(valid[:headerSize+3])
	f.Add(valid[:len(valid)-1])
	f.Add([]byte{})
	f.Add([]byte("MLDS"))
	f.Add(bytes.Repeat([]byte{0xff}, headerSize+footerSize))
	// Forged header claiming a huge shape with no data behind it.
	huge := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(huge[8:], 1<<31)
	f.Add(huge)
	// Corrupted meta with a fixed-up CRC (drives the meta reader, not just
	// the checksum gate).
	meta := append([]byte(nil), valid...)
	meta[headerSize] ^= 0xff
	fixCRC(meta)
	f.Add(meta)

	f.Fuzz(func(t *testing.T, data []byte) {
		df, err := ReadDataset(data)
		if err != nil {
			return
		}
		// A successful parse must yield a self-consistent file: accessors
		// can't go out of bounds and the materialized dataset must be
		// rectangular with matching metadata arity.
		got := df.Dataset()
		if len(got.X) != df.Rows() || len(got.Y) != df.Rows() {
			t.Fatalf("rows %d but %d X / %d Y", df.Rows(), len(got.X), len(got.Y))
		}
		for _, row := range got.X {
			if len(row) != df.Cols() {
				t.Fatalf("row width %d, want %d", len(row), df.Cols())
			}
		}
		if len(got.Kinds) != 0 && len(got.Kinds) != df.Cols() {
			t.Fatalf("%d kinds for %d cols", len(got.Kinds), df.Cols())
		}
		if len(got.Columns) != 0 && len(got.Columns) != df.Cols() {
			t.Fatalf("%d columns for %d cols", len(got.Columns), df.Cols())
		}
		for j := 0; j < df.Cols(); j++ {
			col := df.Col(j)
			for i, v := range col {
				if math.Float64bits(v) != math.Float64bits(got.X[i][j]) {
					t.Fatal("Col view disagrees with Dataset materialization")
				}
			}
		}
	})
}

// FuzzModelDecoder throws arbitrary bytes at the MLMF parser, which fans
// into every model codec (params, scalers, trees, DAGs, kNN backing). The
// decoder must never panic, never over-allocate, and anything it accepts
// must re-encode cleanly.
func FuzzModelDecoder(f *testing.F) {
	full := synth.GenerateClean(synth.Spec{Name: "fuzz-m", Gen: synth.GenClusters, N: 60, D: 4, Noise: 0.3}, synth.Quick, 2)
	train := full.StratifiedSplit(0.7, rng.New(1)).Train
	for _, tc := range []struct {
		platform, classifier string
		feat                 pipeline.Feat
	}{
		{"local", "logreg", pipeline.Feat{Kind: "scaler", Name: "standard"}},
		{"local", "randomforest", pipeline.Feat{Kind: "none"}},
		{"local", "knn", pipeline.Feat{Kind: "none"}},
		{"local", "mlp", pipeline.Feat{Kind: "none"}},
		{"microsoft", "jungle", pipeline.Feat{Kind: "fisherlda"}},
		{"amazon", "logreg", pipeline.Feat{Kind: "none"}},
	} {
		p, err := platforms.New(tc.platform)
		if err != nil {
			f.Fatal(err)
		}
		cfg, err := p.Surface().DefaultConfig(tc.classifier)
		if err != nil {
			f.Fatal(err)
		}
		cfg.Feat = tc.feat
		m, err := p.Fit(cfg, train, 1)
		if err != nil {
			f.Fatal(err)
		}
		b, err := EncodeModel("fuzz/key", m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		f.Add(b[:len(b)/2])
		// Payload corruption with a fixed-up CRC, so mutations reach the
		// model codecs instead of dying at the checksum gate.
		mut := append([]byte(nil), b...)
		mut[mlmfHeaderSize+6] ^= 0xff
		fixCRC(mut)
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte("MLMF"))
	f.Add(bytes.Repeat([]byte{0x01}, mlmfHeaderSize+8))

	f.Fuzz(func(t *testing.T, data []byte) {
		key, m, err := DecodeModel(data)
		if err != nil {
			return
		}
		if m == nil {
			t.Fatal("nil model with nil error")
		}
		if _, err := EncodeModel(key, m); err != nil {
			t.Fatalf("accepted model fails to re-encode: %v", err)
		}
	})
}

// fixCRC recomputes the trailing CRC of an MLDS or MLMF buffer after a
// deliberate mutation, so fuzz seeds reach past the integrity gate. MLDS
// ends crc+trailer, MLMF ends crc.
func fixCRC(b []byte) {
	if len(b) >= headerSize+footerSize && string(b[:4]) == mldsMagic {
		binary.LittleEndian.PutUint32(b[len(b)-footerSize:], crc32.Checksum(b[:len(b)-footerSize], castagnoli))
		return
	}
	if len(b) >= mlmfHeaderSize+4 && string(b[:4]) == mlmfMagic {
		binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.Checksum(b[:len(b)-4], castagnoli))
	}
}
