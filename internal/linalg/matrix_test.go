package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"mlaasbench/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v", m.At(1, 2))
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Fatal("Set failed")
	}
	col := m.Col(1)
	if col[0] != 2 || col[1] != 5 {
		t.Fatalf("Col(1) = %v", col)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulIdentity(t *testing.T) {
	r := rng.New(1)
	a := NewMatrix(5, 5)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	c := a.Mul(Identity(5))
	for i := range a.Data {
		if !almostEq(a.Data[i], c.Data[i], 1e-12) {
			t.Fatal("A·I != A")
		}
	}
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 0, 2}, {0, 3, 0}})
	got := m.MulVec([]float64{1, 2, 3})
	if got[0] != 7 || got[1] != 6 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-10) || !almostEq(x[1], 3, 1e-10) {
		t.Fatalf("Solve = %v, want [1 3]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestSolveRidgeFallsBack(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	x := SolveRidge(a, []float64{1, 2}, 0)
	// Must return a finite vector of the right length, not panic.
	if len(x) != 2 || math.IsNaN(x[0]) || math.IsNaN(x[1]) {
		t.Fatalf("SolveRidge = %v", x)
	}
}

func TestSolveRandomRoundTrip(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(8)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		a.AddScaledIdentity(float64(n)) // keep well conditioned
		want := make([]float64, n)
		for i := range want {
			want[i] = r.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := Solve(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range want {
			if !almostEq(got[i], want[i], 1e-8) {
				t.Fatalf("trial %d: got %v want %v", trial, got, want)
			}
		}
	}
}

func TestCholesky(t *testing.T) {
	a := FromRows([][]float64{{4, 2}, {2, 3}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	rec := l.Mul(l.T())
	for i := range a.Data {
		if !almostEq(a.Data[i], rec.Data[i], 1e-10) {
			t.Fatalf("L·Lᵀ != A: %v vs %v", rec.Data, a.Data)
		}
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected not-positive-definite error")
	}
}

func TestJacobiEigenDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, 1}})
	vals, vecs, err := JacobiEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(vals[0], 3, 1e-10) || !almostEq(vals[1], 1, 1e-10) {
		t.Fatalf("eigenvalues %v", vals)
	}
	if vecs == nil {
		t.Fatal("nil vectors")
	}
}

func TestJacobiEigenReconstruction(t *testing.T) {
	r := rng.New(3)
	n := 6
	// Build a random symmetric matrix.
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	vals, vecs, err := JacobiEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	// A·v_k should equal λ_k·v_k for every eigenpair.
	for k := 0; k < n; k++ {
		v := vecs.Col(k)
		av := a.MulVec(v)
		for i := 0; i < n; i++ {
			if !almostEq(av[i], vals[k]*v[i], 1e-8) {
				t.Fatalf("eigenpair %d violated at row %d: %v vs %v", k, i, av[i], vals[k]*v[i])
			}
		}
	}
	// Eigenvalues must be sorted descending.
	for k := 1; k < n; k++ {
		if vals[k] > vals[k-1]+1e-12 {
			t.Fatalf("eigenvalues not sorted: %v", vals)
		}
	}
}

func TestVectorOps(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("Norm2")
	}
	if Norm1([]float64{-1, 2, -3}) != 6 {
		t.Fatal("Norm1")
	}
	s := Sub(b, a)
	if s[0] != 3 || s[1] != 3 || s[2] != 3 {
		t.Fatalf("Sub = %v", s)
	}
	ad := Add(a, b)
	if ad[0] != 5 || ad[2] != 9 {
		t.Fatalf("Add = %v", ad)
	}
	y := []float64{1, 1, 1}
	AXPY(2, a, y)
	if y[0] != 3 || y[2] != 7 {
		t.Fatalf("AXPY = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 1.5 {
		t.Fatalf("Scale = %v", y)
	}
}

func TestMeanVarianceStd(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(v) != 5 {
		t.Fatalf("Mean = %v", Mean(v))
	}
	if Variance(v) != 4 {
		t.Fatalf("Variance = %v", Variance(v))
	}
	if Std(v) != 2 {
		t.Fatalf("Std = %v", Std(v))
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate cases")
	}
}

func TestMinkowskiDistance(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if !almostEq(MinkowskiDistance(a, b, 2), 5, 1e-12) {
		t.Fatal("L2")
	}
	if !almostEq(MinkowskiDistance(a, b, 1), 7, 1e-12) {
		t.Fatal("L1")
	}
	if !almostEq(MinkowskiDistance(a, b, math.Inf(1)), 4, 1e-12) {
		t.Fatal("Chebyshev")
	}
	if !almostEq(SquaredEuclidean(a, b), 25, 1e-12) {
		t.Fatal("SquaredEuclidean")
	}
}

func TestCovariance(t *testing.T) {
	x := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	means := ColumnMeans(x)
	if means[0] != 3 || means[1] != 4 {
		t.Fatalf("means = %v", means)
	}
	cov := Covariance(x, means)
	// Both columns have variance 8/3 and covariance 8/3 (perfectly correlated).
	want := 8.0 / 3.0
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !almostEq(cov.At(i, j), want, 1e-10) {
				t.Fatalf("cov[%d][%d] = %v, want %v", i, j, cov.At(i, j), want)
			}
		}
	}
}

func TestSigmoid(t *testing.T) {
	if !almostEq(Sigmoid(0), 0.5, 1e-12) {
		t.Fatal("Sigmoid(0)")
	}
	if Sigmoid(1000) != 1 || !almostEq(Sigmoid(-1000), 0, 1e-12) {
		t.Fatal("Sigmoid saturation")
	}
	if math.IsNaN(Sigmoid(-745)) || math.IsNaN(Sigmoid(745)) {
		t.Fatal("Sigmoid NaN at extreme input")
	}
}

func TestLogSumExp(t *testing.T) {
	if !almostEq(LogSumExp(0, 0), math.Log(2), 1e-12) {
		t.Fatal("LogSumExp(0,0)")
	}
	// Must not overflow.
	if v := LogSumExp(1000, 999); math.IsInf(v, 1) || math.IsNaN(v) {
		t.Fatalf("LogSumExp overflow: %v", v)
	}
	if !almostEq(LogSumExp(-1e9, 3), 3, 1e-9) {
		t.Fatal("LogSumExp dominant term")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp")
	}
}

// Property: Sigmoid is monotone and bounded for arbitrary inputs.
func TestQuickSigmoid(t *testing.T) {
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		sx, sy := Sigmoid(x), Sigmoid(y)
		if sx < 0 || sx > 1 || sy < 0 || sy > 1 {
			return false
		}
		if x < y && sx > sy {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Minkowski distance satisfies symmetry and identity.
func TestQuickDistanceAxioms(t *testing.T) {
	f := func(a1, a2, b1, b2 float64) bool {
		for _, v := range []float64{a1, a2, b1, b2} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		a := []float64{a1, a2}
		b := []float64{b1, b2}
		d1 := MinkowskiDistance(a, b, 2)
		d2 := MinkowskiDistance(b, a, 2)
		if !almostEq(d1, d2, 1e-9*(1+d1)) {
			return false
		}
		return MinkowskiDistance(a, a, 2) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMul50(b *testing.B) {
	r := rng.New(1)
	a := NewMatrix(50, 50)
	c := NewMatrix(50, 50)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
		c.Data[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Mul(c)
	}
}

func BenchmarkSolve20(b *testing.B) {
	r := rng.New(1)
	a := NewMatrix(20, 20)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	a.AddScaledIdentity(20)
	v := make([]float64, 20)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Solve(a, v)
	}
}
