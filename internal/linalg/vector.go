package linalg

import "math"

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// Norm1 returns the L1 norm of v.
func Norm1(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// AXPY computes y += a·x in place.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	for i, xi := range x {
		y[i] += a * xi
	}
}

// Scale multiplies v by a in place.
func Scale(a float64, v []float64) {
	for i := range v {
		v[i] *= a
	}
}

// Sub returns a-b as a new vector.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("linalg: Sub length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Add returns a+b as a new vector.
func Add(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("linalg: Add length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Mean returns the arithmetic mean of v (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the population variance of v (0 for len < 2).
func Variance(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	s := 0.0
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}

// Std returns the population standard deviation of v.
func Std(v []float64) float64 { return math.Sqrt(Variance(v)) }

// MinkowskiDistance returns the Lp distance between two vectors. p must be
// >= 1; p = math.Inf(1) yields the Chebyshev distance.
func MinkowskiDistance(a, b []float64, p float64) float64 {
	if len(a) != len(b) {
		panic("linalg: distance length mismatch")
	}
	if math.IsInf(p, 1) {
		max := 0.0
		for i := range a {
			if d := math.Abs(a[i] - b[i]); d > max {
				max = d
			}
		}
		return max
	}
	s := 0.0
	for i := range a {
		s += math.Pow(math.Abs(a[i]-b[i]), p)
	}
	return math.Pow(s, 1/p)
}

// SquaredEuclidean returns the squared L2 distance, avoiding the sqrt for
// nearest-neighbour ranking.
func SquaredEuclidean(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Covariance returns the (population) covariance matrix of the rows of x
// around the provided mean vector.
func Covariance(x *Matrix, mean []float64) *Matrix {
	d := x.Cols
	cov := NewMatrix(d, d)
	if x.Rows == 0 {
		return cov
	}
	// Center each row once into a scratch buffer, then rank-1 update via
	// AXPY: identical subtract/multiply/accumulate order to the historical
	// per-element form (including its zero-deviation row skip), but the
	// O(d²) recomputation of row[b]-mean[b] drops to O(d) per row.
	centered := make([]float64, d)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j, v := range row {
			centered[j] = v - mean[j]
		}
		for a, da := range centered {
			if da == 0 {
				continue
			}
			AXPY(da, centered, cov.Row(a))
		}
	}
	inv := 1 / float64(x.Rows)
	for i := range cov.Data {
		cov.Data[i] *= inv
	}
	return cov
}

// ColumnMeans returns the per-column means of x.
func ColumnMeans(x *Matrix) []float64 {
	means := make([]float64, x.Cols)
	if x.Rows == 0 {
		return means
	}
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j, v := range row {
			means[j] += v
		}
	}
	inv := 1 / float64(x.Rows)
	for j := range means {
		means[j] *= inv
	}
	return means
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Sigmoid returns the logistic function 1/(1+e^-x), numerically stable for
// large |x|.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// LogSumExp returns log(exp(a)+exp(b)) without overflow.
func LogSumExp(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	if math.IsInf(a, -1) {
		return a
	}
	return a + math.Log1p(math.Exp(b-a))
}
