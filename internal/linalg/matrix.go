// Package linalg provides the dense linear algebra needed by the classifier
// zoo: vectors, row-major matrices, linear solves, Cholesky decomposition and
// symmetric eigendecomposition. It is deliberately small — only what LDA,
// logistic regression and the covariance-based feature selectors require —
// and uses no assembly or external BLAS.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix allocates a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must share a length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Mul returns the matrix product m · other via the blocked MulInto kernel;
// results are bit-identical to the historical naive triple loop.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d · %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	return MulInto(NewMatrix(m.Rows, other.Cols), m, other)
}

// MulVec returns the matrix-vector product m · v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic("linalg: MulVec shape mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), v)
	}
	return out
}

// AddScaledIdentity adds s·I to a square matrix in place and returns it.
func (m *Matrix) AddScaledIdentity(s float64) *Matrix {
	if m.Rows != m.Cols {
		panic("linalg: AddScaledIdentity on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] += s
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Solve solves the linear system A·x = b by Gauss-Jordan elimination with
// partial pivoting. A must be square. It returns an error when A is
// (numerically) singular.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, fmt.Errorf("linalg: Solve shape mismatch: %dx%d vs b of %d", a.Rows, a.Cols, len(b))
	}
	// Augmented working copy.
	w := a.Clone()
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(w.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(w.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, fmt.Errorf("linalg: singular matrix at column %d", col)
		}
		if pivot != col {
			wr, wc := w.Row(pivot), w.Row(col)
			for j := range wr {
				wr[j], wc[j] = wc[j], wr[j]
			}
			x[pivot], x[col] = x[col], x[pivot]
		}
		inv := 1 / w.At(col, col)
		rowC := w.Row(col)
		for j := range rowC {
			rowC[j] *= inv
		}
		x[col] *= inv
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := w.At(r, col)
			if f == 0 {
				continue
			}
			rowR := w.Row(r)
			for j := range rowR {
				rowR[j] -= f * rowC[j]
			}
			x[r] -= f * x[col]
		}
	}
	return x, nil
}

// SolveRidge solves (A + ridge·I)·x = b, retrying with growing ridge terms
// until the system is well conditioned. It is the workhorse for LDA and
// Newton steps where near-singular scatter matrices are routine.
func SolveRidge(a *Matrix, b []float64, ridge float64) []float64 {
	for attempt := 0; attempt < 8; attempt++ {
		w := a.Clone().AddScaledIdentity(ridge)
		if x, err := Solve(w, b); err == nil {
			return x
		}
		if ridge == 0 {
			ridge = 1e-8
		} else {
			ridge *= 100
		}
	}
	// Fully degenerate: fall back to the zero vector, which downstream
	// classifiers treat as an uninformative direction.
	return make([]float64, len(b))
}

// Cholesky computes the lower-triangular L with A = L·Lᵀ for a symmetric
// positive-definite A. It returns an error if A is not positive definite.
func Cholesky(a *Matrix) (*Matrix, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: Cholesky of non-square matrix")
	}
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("linalg: matrix not positive definite at %d", i)
				}
				l.Set(i, j, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// JacobiEigen computes the eigendecomposition of a symmetric matrix using
// cyclic Jacobi rotations. It returns eigenvalues (descending) and the
// corresponding eigenvectors as matrix columns.
func JacobiEigen(a *Matrix) (values []float64, vectors *Matrix, err error) {
	n := a.Rows
	if a.Cols != n {
		return nil, nil, fmt.Errorf("linalg: JacobiEigen of non-square matrix")
	}
	w := a.Clone()
	v := Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-15 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					akp, akq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*akp-s*akq)
					w.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*apk-s*aqk)
					w.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	values = make([]float64, n)
	for i := range values {
		values[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if values[idx[j]] > values[idx[i]] {
				idx[i], idx[j] = idx[j], idx[i]
			}
		}
	}
	sortedVals := make([]float64, n)
	sortedVecs := NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = values[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, sortedVecs, nil
}
