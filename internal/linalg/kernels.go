package linalg

import (
	"fmt"
	"sync/atomic"
	"time"
)

// This file is the batch-kernel layer: blocked matrix multiply, batched
// pairwise distances, and fused vector kernels that the classifier forward
// passes route through. Two contracts hold for every kernel here:
//
//  1. Determinism. For each output element the floating-point accumulation
//     order is exactly the order the naive reference loop uses (ascending
//     k for products, ascending feature index for distances). Blocking only
//     re-tiles the *independent* output dimensions, so results are
//     bit-identical to the scalar code they replace — asserted by the
//     exact-equality property tests in kernels_test.go.
//  2. No hidden allocation. Every *Into kernel writes into caller-owned
//     memory, so serving hot paths can reuse buffers across requests.
//
// Block sizes are chosen for ~32KB L1 data caches: one B-panel or one
// training-row tile stays resident while the outer dimension streams.
const (
	gemmJBlock = 128 // output columns per B panel
	gemmKBlock = 128 // inner-dimension entries per panel
	gemmRBlock = 64  // rows of B (= output columns) per MulTransBInto tile
	distRBlock = 128 // training rows per SquaredEuclideanBatch tile
)

// Kernel names reported to the kernel-timing hook (see SetKernelHook).
const (
	KernelGEMM     = "gemm"     // MulInto
	KernelGEMMNT   = "gemm_nt"  // MulTransBInto (B transposed, dot form)
	KernelGEMV     = "gemv"     // MulVecInto
	KernelDistance = "distance" // SquaredEuclideanBatch
)

// KernelFunc observes one batch-kernel invocation's wall-clock duration.
type KernelFunc func(kernel string, seconds float64)

var kernelHook atomic.Pointer[KernelFunc]

// SetKernelHook installs (or with nil removes) the process-wide observer
// called after every batch-kernel invocation — the bridge that lands kernel
// time in a telemetry registry without this package importing one. The hook
// must be safe for concurrent use; installation is atomic, so it can be
// swapped between benchmark passes.
func SetKernelHook(f KernelFunc) {
	if f == nil {
		kernelHook.Store(nil)
		return
	}
	kernelHook.Store(&f)
}

// kernelStart returns the start time when a hook is installed, else zero.
// The zero check in kernelEnd keeps un-hooked kernels at one atomic load.
func kernelStart() time.Time {
	if kernelHook.Load() == nil {
		return time.Time{}
	}
	return time.Now()
}

func kernelEnd(kernel string, start time.Time) {
	if start.IsZero() {
		return
	}
	if h := kernelHook.Load(); h != nil {
		(*h)(kernel, time.Since(start).Seconds())
	}
}

// MulInto computes dst = a·b with j/k blocking, reusing dst's backing array
// (dst is zeroed first). dst must be pre-shaped a.Rows×b.Cols and must not
// alias a or b. Each output element accumulates its products in ascending-k
// order — the same order as the naive triple loop, including its skip of
// zero a-elements — so the result is bit-identical to Mul's historical
// output while the blocking keeps one kBlock×jBlock panel of b resident in
// cache across every row of a.
func MulInto(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: MulInto shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: MulInto dst %dx%d for %dx%d product", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	start := kernelStart()
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for jj := 0; jj < b.Cols; jj += gemmJBlock {
		jMax := min(jj+gemmJBlock, b.Cols)
		for kk := 0; kk < a.Cols; kk += gemmKBlock {
			kMax := min(kk+gemmKBlock, a.Cols)
			for i := 0; i < a.Rows; i++ {
				ai := a.Data[i*a.Cols : (i+1)*a.Cols]
				di := dst.Data[i*dst.Cols+jj : i*dst.Cols+jMax]
				for k := kk; k < kMax; k++ {
					aik := ai[k]
					if aik == 0 {
						continue
					}
					bk := b.Data[k*b.Cols+jj : k*b.Cols+jMax]
					bk = bk[:len(di)]
					for j, bkj := range bk {
						di[j] += aik * bkj
					}
				}
			}
		}
	}
	kernelEnd(KernelGEMM, start)
	return dst
}

// MulTransBInto computes dst = a·bᵀ, i.e. dst[i][j] = Dot(a.Row(i),
// b.Row(j)), reusing dst's backing array. Both operands are walked along
// their contiguous rows (the natural layout for weight matrices stored as
// rows) and the j-tiling keeps a block of b's rows cache-resident while a
// streams. Four output elements are computed per pass with four independent
// accumulators: a scalar dot is latency-bound on the FP add chain, so the
// independent chains are where the batch speedup comes from. Each
// accumulator still sums its own products in ascending-k order exactly like
// Dot, so every element stays bit-identical to the per-row code. This is
// the batch forward-pass kernel: X (rows×features) against a weight matrix
// W (units×features) yields all unit pre-activations in one call.
func MulTransBInto(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: MulTransBInto width mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: MulTransBInto dst %dx%d for %dx%d product", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	start := kernelStart()
	w := b.Cols
	for jj := 0; jj < b.Rows; jj += gemmRBlock {
		jMax := min(jj+gemmRBlock, b.Rows)
		for i := 0; i < a.Rows; i++ {
			ai := a.Data[i*a.Cols : (i+1)*a.Cols]
			di := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
			j := jj
			for ; j+3 < jMax; j += 4 {
				b0 := b.Data[j*w : j*w+w][:len(ai)]
				b1 := b.Data[(j+1)*w : (j+1)*w+w][:len(ai)]
				b2 := b.Data[(j+2)*w : (j+2)*w+w][:len(ai)]
				b3 := b.Data[(j+3)*w : (j+3)*w+w][:len(ai)]
				var s0, s1, s2, s3 float64
				for k, av := range ai {
					s0 += av * b0[k]
					s1 += av * b1[k]
					s2 += av * b2[k]
					s3 += av * b3[k]
				}
				di[j], di[j+1], di[j+2], di[j+3] = s0, s1, s2, s3
			}
			for ; j < jMax; j++ {
				bj := b.Data[j*w : j*w+w]
				bj = bj[:len(ai)]
				s := 0.0
				for k, av := range ai {
					s += av * bj[k]
				}
				di[j] = s
			}
		}
	}
	kernelEnd(KernelGEMMNT, start)
	return dst
}

// MulVecInto computes dst = m·v, reusing the caller's dst (len m.Rows).
// Row-by-row ascending accumulation, identical to MulVec without the
// per-call allocation.
func MulVecInto(dst []float64, m *Matrix, v []float64) []float64 {
	if m.Cols != len(v) {
		panic("linalg: MulVecInto shape mismatch")
	}
	if len(dst) != m.Rows {
		panic("linalg: MulVecInto dst length mismatch")
	}
	start := kernelStart()
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		row = row[:len(v)]
		s := 0.0
		for k, rv := range row {
			s += rv * v[k]
		}
		dst[i] = s
	}
	kernelEnd(KernelGEMV, start)
	return dst
}

// ColInto copies column j of m into the caller's dst (len m.Rows) and
// returns it — Col without the per-call allocation, for loops that walk
// many columns (e.g. LDA's eigen solver).
func ColInto(dst []float64, m *Matrix, j int) []float64 {
	if len(dst) != m.Rows {
		panic("linalg: ColInto dst length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = m.Data[i*m.Cols+j]
	}
	return dst
}

// DotBias returns Dot(a, b) + bias with the same rounding as the two-step
// form: the products accumulate from zero in ascending order and the bias
// is added once at the end. The reslice lets the compiler drop the
// per-element bounds check that Dot pays — this is the fused kernel behind
// the linear-model forward passes (LDA, logistic regression).
func DotBias(bias float64, a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: DotBias length mismatch")
	}
	b = b[:len(a)]
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s + bias
}

// DotFrom accumulates init + Σ a[i]·b[i] starting *from* init — the
// rounding of a running accumulator seeded with a bias, as in the MLP
// output layer (z = b₂; z += w₂[h]·a[h]). Note DotFrom(x, a, b) and
// DotBias(x, a, b) differ in rounding; pick the one matching the scalar
// code being replaced.
func DotFrom(init float64, a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: DotFrom length mismatch")
	}
	b = b[:len(a)]
	s := init
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// SquaredEuclideanBatch fills dst (row-major len(qs)×x.Rows, caller-owned)
// with the squared L2 distance from every query to every row of x:
// dst[q*x.Rows+i] = SquaredEuclidean(x.Row(i), qs[q]). The training tile
// loop keeps distRBlock rows of x cache-resident across all queries, which
// is where the win over per-query streaming comes from; per (query, row)
// pair the subtract-square accumulation runs in ascending feature order,
// exactly like SquaredEuclidean, so every distance is bit-identical. Eight
// training rows are processed per pass with eight independent accumulators —
// the scalar distance loop is latency-bound on its FP add chain, and the
// independent chains (plus the query row staying in registers across all
// four) are the batch win. Queries must be at least x.Cols wide (extra
// trailing entries are ignored, matching SquaredEuclidean's
// iterate-over-the-first-argument behaviour); a narrower query panics, the
// ragged-input guard.
func SquaredEuclideanBatch(dst []float64, qs [][]float64, x *Matrix) {
	n, w := x.Rows, x.Cols
	if len(dst) < len(qs)*n {
		panic(fmt.Sprintf("linalg: SquaredEuclideanBatch dst len %d < %d×%d", len(dst), len(qs), n))
	}
	if n == 0 || len(qs) == 0 {
		return
	}
	for qi, q := range qs {
		if len(q) < w {
			panic(fmt.Sprintf("linalg: SquaredEuclideanBatch query %d has %d features, matrix has %d", qi, len(q), w))
		}
	}
	start := kernelStart()
	for xx := 0; xx < n; xx += distRBlock {
		xMax := min(xx+distRBlock, n)
		for qi, q := range qs {
			qv := q[:w]
			drow := dst[qi*n : (qi+1)*n]
			ri := xx
			for ; ri+7 < xMax; ri += 8 {
				r0 := x.Data[ri*w : ri*w+w][:len(qv)]
				r1 := x.Data[(ri+1)*w : (ri+1)*w+w][:len(qv)]
				r2 := x.Data[(ri+2)*w : (ri+2)*w+w][:len(qv)]
				r3 := x.Data[(ri+3)*w : (ri+3)*w+w][:len(qv)]
				r4 := x.Data[(ri+4)*w : (ri+4)*w+w][:len(qv)]
				r5 := x.Data[(ri+5)*w : (ri+5)*w+w][:len(qv)]
				r6 := x.Data[(ri+6)*w : (ri+6)*w+w][:len(qv)]
				r7 := x.Data[(ri+7)*w : (ri+7)*w+w][:len(qv)]
				var s0, s1, s2, s3, s4, s5, s6, s7 float64
				for j, qj := range qv {
					d0 := r0[j] - qj
					s0 += d0 * d0
					d1 := r1[j] - qj
					s1 += d1 * d1
					d2 := r2[j] - qj
					s2 += d2 * d2
					d3 := r3[j] - qj
					s3 += d3 * d3
					d4 := r4[j] - qj
					s4 += d4 * d4
					d5 := r5[j] - qj
					s5 += d5 * d5
					d6 := r6[j] - qj
					s6 += d6 * d6
					d7 := r7[j] - qj
					s7 += d7 * d7
				}
				drow[ri], drow[ri+1], drow[ri+2], drow[ri+3] = s0, s1, s2, s3
				drow[ri+4], drow[ri+5], drow[ri+6], drow[ri+7] = s4, s5, s6, s7
			}
			for ; ri < xMax; ri++ {
				row := x.Data[ri*w : ri*w+w]
				row = row[:len(qv)]
				s := 0.0
				for j, rj := range row {
					d := rj - qv[j]
					s += d * d
				}
				drow[ri] = s
			}
		}
	}
	kernelEnd(KernelDistance, start)
}
