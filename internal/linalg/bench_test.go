package linalg

import (
	"math/rand"
	"testing"
)

// BenchmarkGEMM measures the dense matrix product on a shape typical of a
// batched forward pass (a request batch against a hidden-layer weight
// matrix). Mul delegates to the blocked MulInto kernel, so this file also
// runs unmodified against trees that predate the kernel layer — the A/B
// harness behind BENCH_PR5.json relies on that.
func BenchmarkGEMM(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	const m, k, n = 256, 64, 256
	a := NewMatrix(m, k)
	bb := NewMatrix(k, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range bb.Data {
		bb.Data[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Mul(bb)
	}
}
