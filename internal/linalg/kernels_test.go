package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// naiveMul is an independent reference for the historical Mul loop: plain
// i/k/j order with the zero-skip, no blocking. The property tests compare
// kernel output against this bit-for-bit.
func naiveMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			aik := a.At(i, k)
			if aik == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += aik * b.At(k, j)
			}
		}
	}
	return out
}

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		switch rng.Intn(10) {
		case 0:
			m.Data[i] = 0 // exercise the zero-skip path
		case 1:
			m.Data[i] = rng.NormFloat64() * 1e6
		default:
			m.Data[i] = rng.NormFloat64()
		}
	}
	return m
}

func assertBitsEqual(t *testing.T, got, want []float64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", what, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: element %d differs: got %v (%#x), want %v (%#x)",
				what, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// TestMulIntoMatchesNaive drives the blocked GEMM over random shapes —
// including empty, single-row/col, and larger-than-one-block sizes — and
// requires bit-identical output to the unblocked reference.
func TestMulIntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	shapes := [][3]int{
		{0, 0, 0}, {0, 3, 2}, {1, 1, 1}, {1, 7, 1}, {3, 1, 4},
		{5, 5, 5}, {17, 9, 23}, {64, 64, 64}, {130, 140, 150}, {1, 300, 2},
	}
	for t2 := 0; t2 < 10; t2++ {
		shapes = append(shapes, [3]int{1 + rng.Intn(40), 1 + rng.Intn(40), 1 + rng.Intn(40)})
	}
	for _, sh := range shapes {
		a := randMatrix(rng, sh[0], sh[1])
		b := randMatrix(rng, sh[1], sh[2])
		want := naiveMul(a, b)
		got := MulInto(NewMatrix(sh[0], sh[2]), a, b)
		assertBitsEqual(t, got.Data, want.Data, "MulInto")
		// Mul must agree too (it delegates), and reusing a dirty dst must
		// not leak stale values.
		assertBitsEqual(t, a.Mul(b).Data, want.Data, "Mul")
		dirty := NewMatrix(sh[0], sh[2])
		for i := range dirty.Data {
			dirty.Data[i] = math.Inf(1)
		}
		assertBitsEqual(t, MulInto(dirty, a, b).Data, want.Data, "MulInto dirty dst")
	}
}

// TestMulIntoPreservesZeroSkip checks the 0·Inf corner the naive loop's
// zero-skip creates: a zero A element must not turn an Inf in B into NaN.
func TestMulIntoPreservesZeroSkip(t *testing.T) {
	a := FromRows([][]float64{{0, 1}})
	b := FromRows([][]float64{{math.Inf(1), 0}, {2, 3}})
	got := MulInto(NewMatrix(1, 2), a, b)
	want := naiveMul(a, b)
	assertBitsEqual(t, got.Data, want.Data, "zero-skip")
	if math.IsNaN(got.Data[0]) {
		t.Fatalf("zero-skip lost: got NaN from 0*Inf")
	}
}

func TestMulIntoShapePanics(t *testing.T) {
	a, b := NewMatrix(2, 3), NewMatrix(4, 2)
	assertPanics(t, "operand mismatch", func() { MulInto(NewMatrix(2, 2), a, b) })
	b2 := NewMatrix(3, 2)
	assertPanics(t, "dst mismatch", func() { MulInto(NewMatrix(2, 3), a, b2) })
}

func TestMulTransBIntoMatchesDot(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	shapes := [][3]int{
		{0, 4, 3}, {1, 1, 1}, {3, 5, 2}, {9, 17, 80}, {70, 3, 129}, {5, 200, 1},
	}
	for _, sh := range shapes {
		a := randMatrix(rng, sh[0], sh[1])
		b := randMatrix(rng, sh[2], sh[1])
		want := make([]float64, sh[0]*sh[2])
		for i := 0; i < sh[0]; i++ {
			for j := 0; j < sh[2]; j++ {
				want[i*sh[2]+j] = Dot(a.Row(i), b.Row(j))
			}
		}
		got := MulTransBInto(NewMatrix(sh[0], sh[2]), a, b)
		assertBitsEqual(t, got.Data, want, "MulTransBInto")
	}
	assertPanics(t, "width mismatch", func() {
		MulTransBInto(NewMatrix(1, 1), NewMatrix(1, 2), NewMatrix(1, 3))
	})
	assertPanics(t, "dst mismatch", func() {
		MulTransBInto(NewMatrix(1, 1), NewMatrix(2, 3), NewMatrix(4, 3))
	})
}

func TestMulVecIntoMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sh := range [][2]int{{0, 3}, {1, 1}, {7, 5}, {40, 129}} {
		m := randMatrix(rng, sh[0], sh[1])
		v := randMatrix(rng, 1, sh[1]).Data
		want := m.MulVec(v)
		got := MulVecInto(make([]float64, sh[0]), m, v)
		assertBitsEqual(t, got, want, "MulVecInto")
	}
	assertPanics(t, "shape mismatch", func() {
		MulVecInto(make([]float64, 2), NewMatrix(2, 3), make([]float64, 4))
	})
	assertPanics(t, "dst mismatch", func() {
		MulVecInto(make([]float64, 1), NewMatrix(2, 3), make([]float64, 3))
	})
}

func TestColIntoMatchesCol(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := randMatrix(rng, 6, 4)
	buf := make([]float64, 6)
	for j := 0; j < 4; j++ {
		assertBitsEqual(t, ColInto(buf, m, j), m.Col(j), "ColInto")
	}
	assertPanics(t, "dst mismatch", func() { ColInto(make([]float64, 5), m, 0) })
}

// TestDotKernels pins the two fused-dot rounding contracts: DotBias rounds
// like Dot(a,b)+bias, DotFrom like a running accumulator seeded with init.
func TestDotKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(60)
		a := randMatrix(rng, 1, n).Data
		b := randMatrix(rng, 1, n).Data
		bias := rng.NormFloat64() * 100
		if got, want := DotBias(bias, a, b), Dot(a, b)+bias; math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("DotBias: got %v, want %v", got, want)
		}
		want := bias
		for i := range a {
			want += a[i] * b[i]
		}
		if got := DotFrom(bias, a, b); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("DotFrom: got %v, want %v", got, want)
		}
	}
	assertPanics(t, "DotBias mismatch", func() { DotBias(0, make([]float64, 2), make([]float64, 3)) })
	assertPanics(t, "DotFrom mismatch", func() { DotFrom(0, make([]float64, 2), make([]float64, 3)) })
}

// TestSquaredEuclideanBatchMatchesScalar compares the blocked distance
// kernel bit-for-bit against per-pair SquaredEuclidean calls over random
// shapes, including empty matrices, empty query sets, single rows, and
// queries wider than the matrix (extra dims ignored, as the scalar form
// iterating over the training row does).
func TestSquaredEuclideanBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cases := [][3]int{ // nQueries, nRows, width
		{0, 5, 3}, {4, 0, 3}, {1, 1, 1}, {3, 7, 5}, {9, 300, 12}, {33, 129, 4},
	}
	for _, c := range cases {
		nq, n, w := c[0], c[1], c[2]
		x := randMatrix(rng, n, w)
		qs := make([][]float64, nq)
		for i := range qs {
			qw := w + rng.Intn(3) // sometimes wider than x: extras ignored
			qs[i] = randMatrix(rng, 1, qw).Data
		}
		dst := make([]float64, nq*n)
		for i := range dst {
			dst[i] = math.NaN() // dirty buffer must be fully overwritten
		}
		SquaredEuclideanBatch(dst, qs, x)
		for qi, q := range qs {
			for ri := 0; ri < n; ri++ {
				want := SquaredEuclidean(x.Row(ri), q)
				got := dst[qi*n+ri]
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("distance (%d,%d): got %v, want %v", qi, ri, got, want)
				}
			}
		}
	}
}

func TestSquaredEuclideanBatchGuards(t *testing.T) {
	x := FromRows([][]float64{{1, 2, 3}})
	assertPanics(t, "short dst", func() {
		SquaredEuclideanBatch(make([]float64, 0), [][]float64{{1, 2, 3}}, x)
	})
	assertPanics(t, "ragged query", func() {
		SquaredEuclideanBatch(make([]float64, 1), [][]float64{{1, 2}}, x)
	})
	// Empty matrix: must return before validating query widths — the scalar
	// path never touched queries when there were no training rows.
	SquaredEuclideanBatch(nil, [][]float64{{1}}, NewMatrix(0, 3))
}

func assertPanics(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	f()
}

// TestKernelHook verifies installed hooks observe every kernel family and
// that removal stops observation.
func TestKernelHook(t *testing.T) {
	seen := map[string]int{}
	SetKernelHook(func(kernel string, seconds float64) {
		if seconds < 0 {
			t.Errorf("negative duration for %s", kernel)
		}
		seen[kernel]++
	})
	defer SetKernelHook(nil)

	a := NewMatrix(2, 2)
	MulInto(NewMatrix(2, 2), a, a)
	MulTransBInto(NewMatrix(2, 2), a, a)
	MulVecInto(make([]float64, 2), a, make([]float64, 2))
	SquaredEuclideanBatch(make([]float64, 2), [][]float64{{0, 0}}, a)
	for _, k := range []string{KernelGEMM, KernelGEMMNT, KernelGEMV, KernelDistance} {
		if seen[k] != 1 {
			t.Fatalf("kernel %s observed %d times, want 1", k, seen[k])
		}
	}
	SetKernelHook(nil)
	MulInto(NewMatrix(2, 2), a, a)
	if seen[KernelGEMM] != 1 {
		t.Fatalf("hook still firing after removal")
	}
}
