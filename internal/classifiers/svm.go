package classifiers

import (
	"math"

	"mlaasbench/internal/linalg"
	"mlaasbench/internal/rng"
)

func init() {
	register(Info{
		Name:   "svm",
		Label:  "SVM",
		Linear: true,
		Params: []ParamSpec{
			{Name: "C", Kind: Numeric, Default: 1.0, Min: 1e-4, Max: 1e4},
			{Name: "loss", Kind: Categorical, Options: []any{"hinge", "squared_hinge"}},
			{Name: "penalty", Kind: Categorical, Options: []any{"l2"}},
			{Name: "max_iter", Kind: Numeric, Default: 200, Min: 2, Max: 1000, IsInt: true},
		},
	}, func(p Params) Classifier { return &LinearSVM{params: p} })
}

// LinearSVM is a linear support vector machine trained with the Pegasos
// stochastic sub-gradient algorithm on the (squared) hinge loss. Microsoft's
// SVM exposes #iterations and Lambda; the local arm exposes penalty, C and
// loss (Table 1). Lambda and C are two views of the same knob: λ = 1/(C·n).
type LinearSVM struct {
	params Params
	w      []float64
	b      float64
}

// Name implements Classifier.
func (*LinearSVM) Name() string { return "svm" }

// Fit implements Classifier.
func (s *LinearSVM) Fit(x [][]float64, y []int, r *rng.RNG) error {
	n, d, err := validateFit(x, y)
	if err != nil {
		return err
	}
	c := s.params.Float("C", 1)
	lambda := 1 / (c * float64(n))
	squared := s.params.String("loss", "hinge") == "squared_hinge"
	epochs := s.params.Int("max_iter", 200)
	ys := signedLabels(y)

	s.w = make([]float64, d)
	s.b = 0
	t := 0
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < epochs; epoch++ {
		r.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			t++
			lr := 1 / (lambda * float64(t))
			margin := ys[i] * (linalg.Dot(s.w, x[i]) + s.b)
			// Shrink by the regularizer.
			linalg.Scale(1-lr*lambda, s.w)
			if margin < 1 {
				coef := lr * ys[i]
				if squared {
					coef *= 2 * (1 - margin)
				}
				linalg.AXPY(coef, x[i], s.w)
				s.b += coef * 0.1 // small unregularized bias step
			}
			// Pegasos projection step keeps ||w|| ≤ 1/sqrt(lambda).
			norm := linalg.Norm2(s.w)
			if limit := 1 / math.Sqrt(lambda); norm > limit {
				linalg.Scale(limit/norm, s.w)
			}
		}
	}
	return nil
}

// Predict implements Classifier.
func (s *LinearSVM) Predict(x [][]float64) []int {
	out := make([]int, len(x))
	for i, row := range x {
		if linalg.Dot(s.w, row)+s.b > 0 {
			out[i] = 1
		}
	}
	return out
}
