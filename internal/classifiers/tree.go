package classifiers

import (
	"math"
	"slices"
	"sort"

	"mlaasbench/internal/rng"
)

// treeNode is one node of a CART tree. Leaves have feature == -1.
type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	value     float64 // leaf: class-1 probability (classification) or mean (regression)
}

// treeConfig controls CART growth.
type treeConfig struct {
	maxDepth      int    // 0 = unlimited
	minLeaf       int    // minimum samples per leaf
	maxFeatures   string // "all", "sqrt", "log2"
	criterion     string // "gini", "entropy" (classification), "mse" (regression)
	randomSplits  int    // >0: extra-trees style — evaluate this many random thresholds per feature
	nodeThreshold int    // stop splitting nodes smaller than this (BigML's node threshold)
}

func (c treeConfig) featureCount(d int) int {
	switch c.maxFeatures {
	case "sqrt":
		k := int(math.Sqrt(float64(d)))
		if k < 1 {
			k = 1
		}
		return k
	case "log2":
		k := int(math.Log2(float64(d)))
		if k < 1 {
			k = 1
		}
		return k
	default:
		return d
	}
}

// featurePresort holds, for every feature, all row indices of a training
// matrix sorted by that feature's value (ties by row index). It is computed
// once per Fit and shared across an ensemble's trees / a boosting run's
// rounds — each tree derives its root order from it in O(n) instead of
// re-sorting, which dominated whole-sweep CPU time.
type featurePresort struct {
	orders [][]int
}

// presortFeatures argsorts every column of x.
func presortFeatures(x [][]float64) *featurePresort {
	n, d := len(x), len(x[0])
	type keyed struct {
		v float64
		i int
	}
	buf := make([]keyed, n)
	pre := &featurePresort{orders: make([][]int, d)}
	for j := 0; j < d; j++ {
		for i := 0; i < n; i++ {
			buf[i] = keyed{v: x[i][j], i: i}
		}
		// The (value, index) key is a total order, so the unstable sort
		// yields a deterministic, stable-equivalent result.
		slices.SortFunc(buf, func(a, b keyed) int {
			switch {
			case a.v < b.v:
				return -1
			case a.v > b.v:
				return 1
			default:
				return a.i - b.i
			}
		})
		ord := make([]int, n)
		for k := range buf {
			ord[k] = buf[k].i
		}
		pre.orders[j] = ord
	}
	return pre
}

// growTree builds a CART tree over the sample indices idx. target[i] is the
// regression target (for classification pass the 0/1 label as float).
// Ensemble callers should presort once and use growTreePresorted with a
// shared treeMem.
func growTree(x [][]float64, target []float64, idx []int, cfg treeConfig, r *rng.RNG, depth int) *treeNode {
	return growTreePresorted(presortFeatures(x), &treeMem{}, x, target, idx, cfg, r, depth)
}

// treeMem is reusable growth storage. An ensemble Fit allocates one and
// passes it to every growTreePresorted call, so per-tree buffers (the
// derived orders, membership copies, partition staging) are allocated once
// per Fit instead of once per tree. The tree returned by a call does not
// reference the memory, so reuse across trees is safe.
type treeMem struct {
	counts    []int
	ordersBuf []int
	scratch   []int
	own       []int
	side      []byte
}

func (mem *treeMem) grab(n, d, m int) (counts, ordersBuf, scratch, own []int, side []byte) {
	if cap(mem.counts) < n {
		mem.counts = make([]int, n)
	}
	if cap(mem.ordersBuf) < d*m {
		mem.ordersBuf = make([]int, d*m)
	}
	if cap(mem.scratch) < m {
		mem.scratch = make([]int, m)
	}
	if cap(mem.own) < m {
		mem.own = make([]int, m)
	}
	if cap(mem.side) < n {
		mem.side = make([]byte, n)
	}
	return mem.counts[:n], mem.ordersBuf[:d*m], mem.scratch[:m], mem.own[:m], mem.side[:n]
}

// growTreePresorted grows one tree over the (multi)set idx, deriving each
// feature's sorted view of idx from the whole-matrix presort. idx is not
// modified.
func growTreePresorted(pre *featurePresort, mem *treeMem, x [][]float64, target []float64, idx []int, cfg treeConfig, r *rng.RNG, depth int) *treeNode {
	n, d, m := len(x), len(x[0]), len(idx)
	counts, ordersBuf, scratch, own, side := mem.grab(n, d, m)
	// Multiplicity of each row in idx (bootstrap samples repeat rows);
	// expanding the presorted full order by count yields idx sorted by the
	// feature, duplicates adjacent.
	dup := false
	for _, i := range idx {
		counts[i]++
		if counts[i] > 1 {
			dup = true
		}
	}
	identity := m == n && !dup // idx covers every row exactly once
	orders := make([][]int, d)
	for j := 0; j < d; j++ {
		ord := ordersBuf[j*m : (j+1)*m]
		if identity {
			copy(ord, pre.orders[j])
		} else {
			k := 0
			for _, i := range pre.orders[j] {
				for c := counts[i]; c > 0; c-- {
					ord[k] = i
					k++
				}
			}
		}
		orders[j] = ord
	}
	for _, i := range idx {
		counts[i] = 0 // leave counts zeroed for the next grab
	}
	copy(own, idx)
	g := &grower{x: x, target: target, cfg: cfg, r: r, scratch: scratch, side: side}
	return g.grow(own, orders, depth)
}

// grower carries the per-tree growth state. Node membership (idx and the
// per-feature sorted orders) lives in slices that are stably partitioned in
// place as the tree splits: children own disjoint subranges of the parent's
// storage, so growth allocates nothing per node beyond the nodes themselves.
type grower struct {
	x       [][]float64
	target  []float64
	cfg     treeConfig
	r       *rng.RNG
	scratch []int  // right-side staging for the stable in-place partitions
	side    []byte // per-row split side, computed once per split for all d partitions
}

// grow builds the subtree over idx; orders[j] holds the same members sorted
// by feature j. Both are permuted in place by the split.
func (g *grower) grow(idx []int, orders [][]int, depth int) *treeNode {
	cfg := g.cfg
	node := &treeNode{feature: -1, value: meanAt(g.target, idx)}
	if len(idx) < 2*cfg.minLeaf || (cfg.maxDepth > 0 && depth >= cfg.maxDepth) {
		return node
	}
	if cfg.nodeThreshold > 0 && len(idx) < cfg.nodeThreshold {
		return node
	}
	if pureAt(g.target, idx) {
		return node
	}
	d := len(g.x[0])
	nFeat := cfg.featureCount(d)
	var candidates []int
	if nFeat >= d {
		candidates = make([]int, d)
		for j := range candidates {
			candidates[j] = j
		}
	} else {
		candidates = g.r.Sample(d, nFeat)
	}

	// Node totals, accumulated in idx order (shared by every candidate
	// feature — the totals are independent of the sort).
	var sumAll, sqAll float64
	for _, i := range idx {
		t := g.target[i]
		sumAll += t
		sqAll += t * t
	}

	bestFeature, bestThreshold := -1, 0.0
	bestScore := math.Inf(1)
	for _, j := range candidates {
		thr, score, ok := bestSplitSorted(g.x, g.target, orders[j], j, sumAll, sqAll, cfg, g.r)
		if ok && score < bestScore {
			bestScore, bestFeature, bestThreshold = score, j, thr
		}
	}
	if bestFeature < 0 {
		return node
	}
	// Resolve each member's side of the split once; the d+1 partitions
	// below then test a byte instead of re-reading the matrix.
	for _, i := range idx {
		if g.x[i][bestFeature] <= bestThreshold {
			g.side[i] = 1
		} else {
			g.side[i] = 0
		}
	}
	nL := g.partition(idx)
	if nL < cfg.minLeaf || len(idx)-nL < cfg.minLeaf {
		return node
	}
	// Carry every feature's sorted order into the children — they may
	// sample different candidate features.
	leftOrders := make([][]int, d)
	rightOrders := make([][]int, d)
	for j := 0; j < d; j++ {
		k := g.partition(orders[j])
		leftOrders[j], rightOrders[j] = orders[j][:k], orders[j][k:]
	}
	node.feature = bestFeature
	node.threshold = bestThreshold
	node.left = g.grow(idx[:nL], leftOrders, depth+1)
	node.right = g.grow(idx[nL:], rightOrders, depth+1)
	return node
}

// partition stably reorders s in place so members on side 1 of the current
// split (per g.side) come first, in their original relative order,
// returning their count.
func (g *grower) partition(s []int) int {
	w, sc := 0, 0
	for _, i := range s {
		if g.side[i] == 1 {
			s[w] = i
			w++
		} else {
			g.scratch[sc] = i
			sc++
		}
	}
	copy(s[w:], g.scratch[:sc])
	return w
}

// bestSplit finds the impurity-minimizing threshold for feature j over idx.
// Kept as the sort-then-scan entry point for standalone callers; tree
// growth uses bestSplitSorted directly with presorted orders.
func bestSplit(x [][]float64, target []float64, idx []int, j int, cfg treeConfig, r *rng.RNG) (threshold, score float64, ok bool) {
	// Sorting (value, index) keys keeps the comparator on locals instead
	// of chasing x rows per comparison; the key is a total order, so the
	// unstable sort is deterministic.
	type keyed struct {
		v float64
		i int
	}
	buf := make([]keyed, len(idx))
	for k, i := range idx {
		buf[k] = keyed{v: x[i][j], i: i}
	}
	slices.SortFunc(buf, func(a, b keyed) int {
		switch {
		case a.v < b.v:
			return -1
		case a.v > b.v:
			return 1
		default:
			return a.i - b.i
		}
	})
	ord := make([]int, len(idx))
	for k := range buf {
		ord[k] = buf[k].i
	}
	var sumAll, sqAll float64
	for _, i := range idx {
		t := target[i]
		sumAll += t
		sqAll += t * t
	}
	return bestSplitSorted(x, target, ord, j, sumAll, sqAll, cfg, r)
}

// bestSplitSorted finds the impurity-minimizing threshold for feature j,
// given the node's member indices presorted by that feature and the node's
// target totals. With randomSplits > 0 it samples random thresholds
// (extra-trees/Decision Jungle style); otherwise it scans midpoints of the
// sorted unique values, maintaining running left/right sums — O(n) either
// way.
func bestSplitSorted(x [][]float64, target []float64, order []int, j int, sumAll, sqAll float64, cfg treeConfig, r *rng.RNG) (threshold, score float64, ok bool) {
	n := len(order)
	if n == 0 || x[order[0]][j] >= x[order[n-1]][j] {
		return 0, 0, false
	}

	// Resolve the criterion string to an int once — the impurity closure
	// runs per candidate boundary and the string switch was measurable.
	const (
		critGini = iota
		critEntropy
		critMSE
	)
	crit := critGini
	switch cfg.criterion {
	case "entropy":
		crit = critEntropy
	case "mse":
		crit = critMSE
	}
	impurity := func(nL, sumL, sqL float64) float64 {
		nR := float64(n) - nL
		sumR := sumAll - sumL
		sqR := sqAll - sqL
		switch crit {
		case critEntropy:
			return nL*entropyOf(sumL/nL) + nR*entropyOf(sumR/nR)
		case critMSE:
			// Weighted variance = Σt² − (Σt)²/n per side.
			return (sqL - sumL*sumL/nL) + (sqR - sumR*sumR/nR)
		default: // gini
			return nL*giniOf(sumL/nL) + nR*giniOf(sumR/nR)
		}
	}

	best := math.Inf(1)
	found := false
	if cfg.randomSplits > 0 {
		lo, hi := x[order[0]][j], x[order[n-1]][j]
		thresholds := make([]float64, cfg.randomSplits)
		for t := range thresholds {
			thresholds[t] = r.Uniform(lo, hi)
		}
		sortFloats(thresholds)
		var nL, sumL, sqL float64
		pi := 0
		for _, thr := range thresholds {
			for pi < n && x[order[pi]][j] <= thr {
				t := target[order[pi]]
				nL++
				sumL += t
				sqL += t * t
				pi++
			}
			if nL == 0 || int(nL) == n {
				continue
			}
			if s := impurity(nL, sumL, sqL); s < best {
				best, threshold, found = s, thr, true
			}
		}
		return threshold, best, found
	}

	// Exact scan: advance through sorted values, evaluating at each
	// boundary between distinct values. One loop per criterion so the
	// impurity arithmetic inlines — this runs for every candidate feature
	// of every node of every tree.
	var nL, sumL, sqL float64
	switch crit {
	case critMSE:
		for k := 0; k < n-1; k++ {
			i := order[k]
			t := target[i]
			nL++
			sumL += t
			sqL += t * t
			v, next := x[i][j], x[order[k+1]][j]
			if next == v {
				continue
			}
			nR := float64(n) - nL
			sumR := sumAll - sumL
			sqR := sqAll - sqL
			// Weighted variance = Σt² − (Σt)²/n per side.
			if s := (sqL - sumL*sumL/nL) + (sqR - sumR*sumR/nR); s < best {
				best = s
				threshold = (v + next) / 2
				found = true
			}
		}
	case critEntropy:
		for k := 0; k < n-1; k++ {
			i := order[k]
			t := target[i]
			nL++
			sumL += t
			sqL += t * t
			v, next := x[i][j], x[order[k+1]][j]
			if next == v {
				continue
			}
			nR := float64(n) - nL
			sumR := sumAll - sumL
			if s := nL*entropyOf(sumL/nL) + nR*entropyOf(sumR/nR); s < best {
				best = s
				threshold = (v + next) / 2
				found = true
			}
		}
	default: // gini
		for k := 0; k < n-1; k++ {
			i := order[k]
			t := target[i]
			nL++
			sumL += t
			sqL += t * t
			v, next := x[i][j], x[order[k+1]][j]
			if next == v {
				continue
			}
			nR := float64(n) - nL
			sumR := sumAll - sumL
			if s := nL*giniOf(sumL/nL) + nR*giniOf(sumR/nR); s < best {
				best = s
				threshold = (v + next) / 2
				found = true
			}
		}
	}
	return threshold, best, found
}

func (n *treeNode) predict(row []float64) float64 {
	for n.feature >= 0 {
		if row[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

func (n *treeNode) depth() int {
	if n == nil || n.feature < 0 {
		return 0
	}
	l, r := n.left.depth(), n.right.depth()
	if l > r {
		return l + 1
	}
	return r + 1
}

func giniOf(p float64) float64 { return 2 * p * (1 - p) }

func entropyOf(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

func meanAt(target []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	s := 0.0
	for _, i := range idx {
		s += target[i]
	}
	return s / float64(len(idx))
}

func pureAt(target []float64, idx []int) bool {
	if len(idx) == 0 {
		return true
	}
	first := target[idx[0]]
	for _, i := range idx[1:] {
		if target[i] != first {
			return false
		}
	}
	return true
}

// sortFloats is insertion sort for small slices (the common case inside
// split search), stdlib sort otherwise.
func sortFloats(v []float64) {
	if len(v) < 24 {
		for i := 1; i < len(v); i++ {
			for j := i; j > 0 && v[j] < v[j-1]; j-- {
				v[j], v[j-1] = v[j-1], v[j]
			}
		}
		return
	}
	sort.Float64s(v)
}

// allIndices returns [0, n).
func allIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// bootstrapIndices samples n indices with replacement.
func bootstrapIndices(n int, r *rng.RNG) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = r.Intn(n)
	}
	return idx
}

// labelsToFloats converts 0/1 ints to floats for the tree engine.
func labelsToFloats(y []int) []float64 {
	out := make([]float64, len(y))
	for i, v := range y {
		out[i] = float64(v)
	}
	return out
}
