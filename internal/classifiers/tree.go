package classifiers

import (
	"math"
	"slices"
	"sort"

	"mlaasbench/internal/rng"
)

// treeNode is one node of a CART tree. Leaves have feature == -1.
type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	value     float64 // leaf: class-1 probability (classification) or mean (regression)
}

// treeConfig controls CART growth.
type treeConfig struct {
	maxDepth      int    // 0 = unlimited
	minLeaf       int    // minimum samples per leaf
	maxFeatures   string // "all", "sqrt", "log2"
	criterion     string // "gini", "entropy" (classification), "mse" (regression)
	randomSplits  int    // >0: extra-trees style — evaluate this many random thresholds per feature
	nodeThreshold int    // stop splitting nodes smaller than this (BigML's node threshold)
}

func (c treeConfig) featureCount(d int) int {
	switch c.maxFeatures {
	case "sqrt":
		k := int(math.Sqrt(float64(d)))
		if k < 1 {
			k = 1
		}
		return k
	case "log2":
		k := int(math.Log2(float64(d)))
		if k < 1 {
			k = 1
		}
		return k
	default:
		return d
	}
}

// growTree builds a CART tree over the sample indices idx. target[i] is the
// regression target (for classification pass the 0/1 label as float).
func growTree(x [][]float64, target []float64, idx []int, cfg treeConfig, r *rng.RNG, depth int) *treeNode {
	node := &treeNode{feature: -1, value: meanAt(target, idx)}
	if len(idx) < 2*cfg.minLeaf || (cfg.maxDepth > 0 && depth >= cfg.maxDepth) {
		return node
	}
	if cfg.nodeThreshold > 0 && len(idx) < cfg.nodeThreshold {
		return node
	}
	if pureAt(target, idx) {
		return node
	}
	d := len(x[0])
	nFeat := cfg.featureCount(d)
	var candidates []int
	if nFeat >= d {
		candidates = make([]int, d)
		for j := range candidates {
			candidates[j] = j
		}
	} else {
		candidates = r.Sample(d, nFeat)
	}

	bestFeature, bestThreshold := -1, 0.0
	bestScore := math.Inf(1)
	for _, j := range candidates {
		thr, score, ok := bestSplit(x, target, idx, j, cfg, r)
		if ok && score < bestScore {
			bestScore, bestFeature, bestThreshold = score, j, thr
		}
	}
	if bestFeature < 0 {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if x[i][bestFeature] <= bestThreshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < cfg.minLeaf || len(right) < cfg.minLeaf {
		return node
	}
	node.feature = bestFeature
	node.threshold = bestThreshold
	node.left = growTree(x, target, left, cfg, r, depth+1)
	node.right = growTree(x, target, right, cfg, r, depth+1)
	return node
}

// splitPair is one (feature value, target) observation used during split
// search.
type splitPair struct {
	v, t float64
}

// bestSplit finds the impurity-minimizing threshold for feature j over idx.
// With randomSplits > 0 it samples random thresholds (extra-trees/Decision
// Jungle style); otherwise it scans midpoints of the sorted unique values.
// Both paths run in O(n log n): sort once, then maintain running left/right
// sums while advancing the threshold.
func bestSplit(x [][]float64, target []float64, idx []int, j int, cfg treeConfig, r *rng.RNG) (threshold, score float64, ok bool) {
	n := len(idx)
	pairs := make([]splitPair, n)
	var sumAll, sqAll float64
	for k, i := range idx {
		t := target[i]
		pairs[k] = splitPair{v: x[i][j], t: t}
		sumAll += t
		sqAll += t * t
	}
	slices.SortFunc(pairs, func(a, b splitPair) int {
		switch {
		case a.v < b.v:
			return -1
		case a.v > b.v:
			return 1
		default:
			return 0
		}
	})
	if pairs[0].v >= pairs[n-1].v {
		return 0, 0, false
	}

	impurity := func(nL, sumL, sqL float64) float64 {
		nR := float64(n) - nL
		sumR := sumAll - sumL
		sqR := sqAll - sqL
		switch cfg.criterion {
		case "entropy":
			return nL*entropyOf(sumL/nL) + nR*entropyOf(sumR/nR)
		case "mse":
			// Weighted variance = Σt² − (Σt)²/n per side.
			return (sqL - sumL*sumL/nL) + (sqR - sumR*sumR/nR)
		default: // gini
			return nL*giniOf(sumL/nL) + nR*giniOf(sumR/nR)
		}
	}

	best := math.Inf(1)
	found := false
	if cfg.randomSplits > 0 {
		lo, hi := pairs[0].v, pairs[n-1].v
		thresholds := make([]float64, cfg.randomSplits)
		for t := range thresholds {
			thresholds[t] = r.Uniform(lo, hi)
		}
		sortFloats(thresholds)
		var nL, sumL, sqL float64
		pi := 0
		for _, thr := range thresholds {
			for pi < n && pairs[pi].v <= thr {
				nL++
				sumL += pairs[pi].t
				sqL += pairs[pi].t * pairs[pi].t
				pi++
			}
			if nL == 0 || int(nL) == n {
				continue
			}
			if s := impurity(nL, sumL, sqL); s < best {
				best, threshold, found = s, thr, true
			}
		}
		return threshold, best, found
	}

	// Exact scan: advance through sorted values, evaluating at each
	// boundary between distinct values.
	var nL, sumL, sqL float64
	for k := 0; k < n-1; k++ {
		nL++
		sumL += pairs[k].t
		sqL += pairs[k].t * pairs[k].t
		if pairs[k+1].v == pairs[k].v {
			continue
		}
		if s := impurity(nL, sumL, sqL); s < best {
			best = s
			threshold = (pairs[k].v + pairs[k+1].v) / 2
			found = true
		}
	}
	return threshold, best, found
}

func (n *treeNode) predict(row []float64) float64 {
	for n.feature >= 0 {
		if row[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

func (n *treeNode) depth() int {
	if n == nil || n.feature < 0 {
		return 0
	}
	l, r := n.left.depth(), n.right.depth()
	if l > r {
		return l + 1
	}
	return r + 1
}

func giniOf(p float64) float64 { return 2 * p * (1 - p) }

func entropyOf(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

func meanAt(target []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	s := 0.0
	for _, i := range idx {
		s += target[i]
	}
	return s / float64(len(idx))
}

func pureAt(target []float64, idx []int) bool {
	if len(idx) == 0 {
		return true
	}
	first := target[idx[0]]
	for _, i := range idx[1:] {
		if target[i] != first {
			return false
		}
	}
	return true
}

// sortFloats is insertion sort for small slices (the common case inside
// split search), stdlib sort otherwise.
func sortFloats(v []float64) {
	if len(v) < 24 {
		for i := 1; i < len(v); i++ {
			for j := i; j > 0 && v[j] < v[j-1]; j-- {
				v[j], v[j-1] = v[j-1], v[j]
			}
		}
		return
	}
	sort.Float64s(v)
}

// allIndices returns [0, n).
func allIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// bootstrapIndices samples n indices with replacement.
func bootstrapIndices(n int, r *rng.RNG) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = r.Intn(n)
	}
	return idx
}

// labelsToFloats converts 0/1 ints to floats for the tree engine.
func labelsToFloats(y []int) []float64 {
	out := make([]float64, len(y))
	for i, v := range y {
		out[i] = float64(v)
	}
	return out
}
