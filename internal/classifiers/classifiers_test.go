package classifiers

import (
	"math"
	"testing"

	"mlaasbench/internal/rng"
)

// makeLinear builds a well-separated linear problem.
func makeLinear(n int, seed uint64) ([][]float64, []int) {
	r := rng.New(seed)
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		shift := -1.5
		if cls == 1 {
			shift = 1.5
		}
		x[i] = []float64{shift + r.NormFloat64()*0.5, shift + r.NormFloat64()*0.5, r.NormFloat64()}
		y[i] = cls
	}
	return x, y
}

// makeCircles builds the concentric-circles problem no linear model solves.
func makeCircles(n int, seed uint64) ([][]float64, []int) {
	r := rng.New(seed)
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		radius := 1.0
		if cls == 1 {
			radius = 0.4
		}
		theta := 2 * math.Pi * r.Float64()
		x[i] = []float64{radius*math.Cos(theta) + r.NormFloat64()*0.05, radius*math.Sin(theta) + r.NormFloat64()*0.05}
		y[i] = cls
	}
	return x, y
}

// makeXOR builds the checkerboard problem.
func makeXOR(n int, seed uint64) ([][]float64, []int) {
	r := rng.New(seed)
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		a, b := r.Uniform(-1, 1), r.Uniform(-1, 1)
		cls := 0
		if (a > 0) != (b > 0) {
			cls = 1
		}
		x[i] = []float64{a, b}
		y[i] = cls
	}
	return x, y
}

func accuracy(yTrue, yPred []int) float64 {
	correct := 0
	for i := range yTrue {
		if yTrue[i] == yPred[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(yTrue))
}

func trainEval(t *testing.T, name string, params Params, xTr [][]float64, yTr []int, xTe [][]float64, yTe []int) float64 {
	t.Helper()
	clf, err := New(name, params)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if err := clf.Fit(xTr, yTr, rng.New(99)); err != nil {
		t.Fatalf("%s: fit: %v", name, err)
	}
	pred := clf.Predict(xTe)
	if len(pred) != len(xTe) {
		t.Fatalf("%s: %d predictions for %d rows", name, len(pred), len(xTe))
	}
	return accuracy(yTe, pred)
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"bagging", "boosted", "bpm", "dtree", "jungle", "knn", "lda", "logreg", "mlp", "naivebayes", "perceptron", "randomforest", "svm"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registry has %d classifiers: %v", len(got), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry mismatch: %v", got)
		}
	}
}

func TestLinearFamilySplit(t *testing.T) {
	linear, nonLinear := LinearFamily()
	wantLinear := map[string]bool{"logreg": true, "naivebayes": true, "svm": true, "lda": true, "perceptron": true, "bpm": true}
	for _, name := range linear {
		if !wantLinear[name] {
			t.Errorf("%s classified linear, want non-linear (Table 5)", name)
		}
	}
	for _, name := range nonLinear {
		if wantLinear[name] {
			t.Errorf("%s classified non-linear, want linear (Table 5)", name)
		}
	}
	if len(linear)+len(nonLinear) != len(Names()) {
		t.Fatal("family split loses classifiers")
	}
}

func TestAllClassifiersLearnLinearConcept(t *testing.T) {
	xTr, yTr := makeLinear(200, 1)
	xTe, yTe := makeLinear(100, 2)
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			acc := trainEval(t, name, nil, xTr, yTr, xTe, yTe)
			if acc < 0.85 {
				t.Fatalf("%s: accuracy %.3f on separable linear data", name, acc)
			}
		})
	}
}

func TestNonLinearClassifiersLearnCircles(t *testing.T) {
	xTr, yTr := makeCircles(300, 3)
	xTe, yTe := makeCircles(150, 4)
	for _, name := range []string{"dtree", "randomforest", "bagging", "boosted", "knn", "jungle", "mlp"} {
		name := name
		t.Run(name, func(t *testing.T) {
			acc := trainEval(t, name, nil, xTr, yTr, xTe, yTe)
			if acc < 0.85 {
				t.Fatalf("%s: accuracy %.3f on circles", name, acc)
			}
		})
	}
}

func TestLinearClassifiersFailCircles(t *testing.T) {
	// The §6 inference methodology depends on this gap existing.
	xTr, yTr := makeCircles(300, 5)
	xTe, yTe := makeCircles(150, 6)
	for _, name := range []string{"logreg", "svm", "lda", "perceptron", "bpm"} {
		name := name
		t.Run(name, func(t *testing.T) {
			acc := trainEval(t, name, nil, xTr, yTr, xTe, yTe)
			if acc > 0.70 {
				t.Fatalf("%s: accuracy %.3f on circles — should be near chance for a linear model", name, acc)
			}
		})
	}
}

func TestNonLinearLearnXOR(t *testing.T) {
	xTr, yTr := makeXOR(400, 7)
	xTe, yTe := makeXOR(200, 8)
	for _, name := range []string{"dtree", "randomforest", "boosted", "knn"} {
		if acc := trainEval(t, name, nil, xTr, yTr, xTe, yTe); acc < 0.85 {
			t.Fatalf("%s: accuracy %.3f on XOR", name, acc)
		}
	}
}

func TestFitRejectsBadInput(t *testing.T) {
	for _, name := range Names() {
		clf, _ := New(name, nil)
		if err := clf.Fit(nil, nil, rng.New(1)); err == nil {
			t.Errorf("%s: no error on empty training set", name)
		}
		clf2, _ := New(name, nil)
		if err := clf2.Fit([][]float64{{1}, {2}}, []int{0}, rng.New(1)); err == nil {
			t.Errorf("%s: no error on length mismatch", name)
		}
		clf3, _ := New(name, nil)
		if err := clf3.Fit([][]float64{{1}, {2}}, []int{0, 5}, rng.New(1)); err == nil {
			t.Errorf("%s: no error on non-binary label", name)
		}
		clf4, _ := New(name, nil)
		if err := clf4.Fit([][]float64{{1, 2}, {3}}, []int{0, 1}, rng.New(1)); err == nil {
			t.Errorf("%s: no error on ragged rows", name)
		}
	}
}

func TestFitDeterministic(t *testing.T) {
	xTr, yTr := makeCircles(150, 9)
	xTe, _ := makeCircles(60, 10)
	for _, name := range Names() {
		a, _ := New(name, nil)
		b, _ := New(name, nil)
		if err := a.Fit(xTr, yTr, rng.New(42)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := b.Fit(xTr, yTr, rng.New(42)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pa, pb := a.Predict(xTe), b.Predict(xTe)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("%s: same seed, different predictions at %d", name, i)
			}
		}
	}
}

func TestSingleClassTraining(t *testing.T) {
	// All-negative training data must not panic and should predict negative.
	x := [][]float64{{1, 2}, {2, 3}, {3, 4}, {4, 5}}
	y := []int{0, 0, 0, 0}
	for _, name := range Names() {
		clf, _ := New(name, nil)
		if err := clf.Fit(x, y, rng.New(1)); err != nil {
			t.Fatalf("%s: single-class fit: %v", name, err)
		}
		pred := clf.Predict(x)
		for _, p := range pred {
			if p != 0 {
				t.Errorf("%s: predicted positive from all-negative training", name)
			}
		}
	}
}

func TestUnknownClassifier(t *testing.T) {
	if _, err := New("xgboost", nil); err == nil {
		t.Fatal("expected error")
	}
	if _, err := Lookup("xgboost"); err == nil {
		t.Fatal("expected error")
	}
}

func TestDefaultParams(t *testing.T) {
	p, err := DefaultParams("logreg")
	if err != nil {
		t.Fatal(err)
	}
	if p.String("penalty", "") != "l2" {
		t.Fatalf("default penalty %v", p["penalty"])
	}
	if p.Float("C", 0) != 1 {
		t.Fatalf("default C %v", p["C"])
	}
	if _, err := DefaultParams("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestParamsAccessors(t *testing.T) {
	p := Params{"a": 2.5, "b": 3, "c": "x", "d": true}
	if p.Float("a", 0) != 2.5 || p.Float("b", 0) != 3 || p.Float("missing", 7) != 7 {
		t.Fatal("Float")
	}
	if p.Int("a", 0) != 3 || p.Int("b", 0) != 3 || p.Int("missing", 9) != 9 {
		t.Fatal("Int")
	}
	if p.String("c", "") != "x" || p.String("missing", "z") != "z" {
		t.Fatal("String")
	}
	if p.Float("c", 1.5) != 1.5 {
		t.Fatal("type-mismatch fallback")
	}
	c := p.Clone()
	c["a"] = 0.0
	if p.Float("a", 0) != 2.5 {
		t.Fatal("Clone aliases")
	}
}

func TestGridValuesNumericRule(t *testing.T) {
	// §3.2: numeric grid is D/100, D, 100·D.
	ps := ParamSpec{Name: "C", Kind: Numeric, Default: 1, Min: 1e-6, Max: 1e6}
	vals := ps.GridValues()
	if len(vals) != 3 {
		t.Fatalf("grid %v", vals)
	}
	if vals[0].(float64) != 0.01 || vals[1].(float64) != 1.0 || vals[2].(float64) != 100.0 {
		t.Fatalf("grid %v, want [0.01 1 100]", vals)
	}
}

func TestGridValuesClampAndDedup(t *testing.T) {
	ps := ParamSpec{Name: "k", Kind: Numeric, Default: 5, Min: 1, Max: 50, IsInt: true}
	vals := ps.GridValues()
	// 0.05→1, 5, 500→50: three distinct ints.
	if len(vals) != 3 || vals[0].(int) != 1 || vals[1].(int) != 5 || vals[2].(int) != 50 {
		t.Fatalf("grid %v", vals)
	}
	// Clamping can collapse grid points: 0.01→1 and 1 dedup to one value.
	ps2 := ParamSpec{Name: "x", Kind: Numeric, Default: 1, Min: 1, Max: 2}
	if got := ps2.GridValues(); len(got) != 2 || got[0].(float64) != 1 || got[1].(float64) != 2 {
		t.Fatalf("collapsed grid %v, want [1 2]", got)
	}
}

func TestGridValuesCategorical(t *testing.T) {
	ps := ParamSpec{Name: "penalty", Kind: Categorical, Options: []any{"l1", "l2"}}
	vals := ps.GridValues()
	if len(vals) != 2 || vals[0] != "l1" {
		t.Fatalf("grid %v", vals)
	}
}

func TestDefaultValue(t *testing.T) {
	ps := ParamSpec{Kind: Categorical, Options: []any{"a", "b"}}
	if ps.DefaultValue() != "a" {
		t.Fatal("categorical default")
	}
	pn := ParamSpec{Kind: Numeric, Default: 5.5}
	if pn.DefaultValue() != 5.5 {
		t.Fatal("numeric default")
	}
	pi := ParamSpec{Kind: Numeric, Default: 5.4, IsInt: true}
	if pi.DefaultValue() != 5 {
		t.Fatal("int default")
	}
}

func TestEveryParamGridTrains(t *testing.T) {
	// Sweep each classifier's full one-dimensional grids: every value must
	// produce a trainable model. This is the §3.2 validity check
	// ("manually examine the parameter type and its acceptable range").
	xTr, yTr := makeLinear(60, 11)
	xTe, _ := makeLinear(20, 12)
	for _, name := range Names() {
		info, _ := Lookup(name)
		for _, spec := range info.Params {
			for _, val := range spec.GridValues() {
				params, _ := DefaultParams(name)
				params[spec.Name] = val
				clf, err := New(name, params)
				if err != nil {
					t.Fatalf("%s %s=%v: %v", name, spec.Name, val, err)
				}
				if err := clf.Fit(xTr, yTr, rng.New(5)); err != nil {
					t.Fatalf("%s %s=%v: fit: %v", name, spec.Name, val, err)
				}
				pred := clf.Predict(xTe)
				for _, p := range pred {
					if p != 0 && p != 1 {
						t.Fatalf("%s %s=%v: non-binary prediction %d", name, spec.Name, val, p)
					}
				}
			}
		}
	}
}
