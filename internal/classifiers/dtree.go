package classifiers

import "mlaasbench/internal/rng"

func init() {
	register(Info{
		Name:   "dtree",
		Label:  "DT",
		Linear: false,
		Params: []ParamSpec{
			{Name: "criterion", Kind: Categorical, Options: []any{"gini", "entropy"}},
			{Name: "max_features", Kind: Categorical, Options: []any{"all", "sqrt", "log2"}},
			{Name: "max_depth", Kind: Numeric, Default: 10, Min: 1, Max: 64, IsInt: true},
			{Name: "node_threshold", Kind: Numeric, Default: 2, Min: 2, Max: 1000, IsInt: true},
		},
	}, func(p Params) Classifier { return &DecisionTree{params: p} })
}

// DecisionTree is a CART binary decision tree with gini or entropy impurity,
// optional per-split feature subsampling and BigML's node-threshold stopping
// rule.
type DecisionTree struct {
	params Params
	root   *treeNode
}

// Name implements Classifier.
func (*DecisionTree) Name() string { return "dtree" }

// Fit implements Classifier.
func (t *DecisionTree) Fit(x [][]float64, y []int, r *rng.RNG) error {
	if _, _, err := validateFit(x, y); err != nil {
		return err
	}
	cfg := treeConfig{
		maxDepth:      t.params.Int("max_depth", 10),
		minLeaf:       1,
		maxFeatures:   t.params.String("max_features", "all"),
		criterion:     t.params.String("criterion", "gini"),
		nodeThreshold: t.params.Int("node_threshold", 2),
	}
	t.root = growTree(x, labelsToFloats(y), allIndices(len(x)), cfg, r, 0)
	return nil
}

// Predict implements Classifier.
func (t *DecisionTree) Predict(x [][]float64) []int {
	out := make([]int, len(x))
	for i, row := range x {
		if t.root.predict(row) > 0.5 {
			out[i] = 1
		}
	}
	return out
}

// Depth reports the grown tree's depth (diagnostics).
func (t *DecisionTree) Depth() int { return t.root.depth() }
